#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/runner.hpp"

namespace u5g {

// ---------------------------------------------------------------------------
// ShardGang: persistent window-execution crew.
//
// The PR-4 engine paid one heap-allocated std::function, one queue push and
// one pool wakeup per cell per slot window — at city scale that dispatch
// cost dwarfed the work (BENCH_scaleout recorded 0.87× at 2 threads). The
// gang amortises all of it: one window descriptor (cell array + target
// time) is published per window and workers claim cells through per-cell
// atomic epoch slots.
//
//   * Claiming. Window w publishes epoch E; worker threads copy the
//     descriptor under the gang mutex. A worker claims position p by
//     CAS-ing slots_[p] from a value < E to E; exactly one claimant wins,
//     so every cell runs exactly once per window no matter how claims race.
//     A cell pointer is dereferenced only after a successful claim, and
//     once the engine has counted n completions every position is already
//     claimed — a helper that scans late can therefore never touch a
//     descriptor the engine is rebuilding.
//   * Home ranges + stealing. Worker k starts its scan at offset k·n/width
//     and wraps: it claims "its" contiguous range first (persistent across
//     windows because width and n are stable) and then steals forward into
//     ranges whose owner lags. Stealing moves a cell between threads, never
//     between states — cells share no mutable state inside a window, so the
//     claim schedule is invisible in the results.
//   * Starvation throttle. With fewer cores than workers the helpers lose
//     every claim race, and waking them per window is a futex round-trip
//     for nothing. If helpers claim zero cells for kStarvedWindows
//     consecutive windows the engine stops notifying them (still publishing
//     epochs) except every kStarvedRetry-th window, so oversubscribed runs
//     execute essentially the single-threaded instruction stream.
//
// Correctness never depends on helpers: the engine thread claims too, so a
// helper that misses a wakeup only costs parallelism, and run() returns as
// soon as the done_ count — incremented with release order after each cell,
// matched by the engine's acquire loads — reaches n.
// ---------------------------------------------------------------------------
class ShardGang {
 public:
  ShardGang(int helpers, std::size_t capacity)
      : width_(helpers + 1), slots_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)) {
    for (std::size_t i = 0; i < capacity; ++i) slots_[i].store(0, std::memory_order_relaxed);
    helpers_.reserve(static_cast<std::size_t>(helpers));
    for (int h = 1; h <= helpers; ++h) {
      helpers_.emplace_back([this, h] { helper_loop(h); });
    }
  }

  ~ShardGang() {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : helpers_) t.join();
  }

  [[nodiscard]] int width() const { return width_; }

  /// Execute one window: advance items[0..n) to `to`, the engine thread
  /// participating as worker 0. Returns once every cell has run.
  void run(Cell* const* items, std::size_t n, Nanos to) {
    if (n == 0) return;
    const std::uint64_t before = helper_claims_.load(std::memory_order_relaxed);
    std::uint64_t epoch;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      items_ = items;
      n_ = n;
      to_ = to;
      done_.store(0, std::memory_order_relaxed);
      epoch = ++epoch_;
    }
    if (starved_windows_ < kStarvedWindows || epoch % kStarvedRetry == 0) {
      cv_.notify_all();
    }
    claim_and_run(items, n, to, epoch, /*worker=*/0);
    while (done_.load(std::memory_order_acquire) < n) std::this_thread::yield();
    if (helper_claims_.load(std::memory_order_relaxed) == before) {
      if (starved_windows_ < kStarvedWindows) ++starved_windows_;
    } else {
      starved_windows_ = 0;
    }
  }

 private:
  static constexpr int kStarvedWindows = 4;
  static constexpr std::uint64_t kStarvedRetry = 64;

  void helper_loop(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      Cell* const* items = nullptr;
      std::size_t n = 0;
      Nanos to{};
      std::uint64_t epoch = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        // Copy the *current* descriptor — a helper that slept through
        // several windows simply joins the latest one.
        seen = epoch = epoch_;
        items = items_;
        n = n_;
        to = to_;
      }
      claim_and_run(items, n, to, epoch, worker);
    }
  }

  void claim_and_run(Cell* const* items, std::size_t n, Nanos to, std::uint64_t epoch,
                     int worker) {
    const std::size_t start =
        (static_cast<std::size_t>(worker) * n) / static_cast<std::size_t>(width_);
    std::size_t claimed = 0;
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t pos = start + k;
      if (pos >= n) pos -= n;
      std::uint64_t cur = slots_[pos].load(std::memory_order_relaxed);
      if (cur >= epoch) continue;  // already claimed this window
      if (!slots_[pos].compare_exchange_strong(cur, epoch, std::memory_order_acq_rel)) {
        continue;  // lost the race to another worker
      }
      items[pos]->advance_to(to);
      ++claimed;
      done_.fetch_add(1, std::memory_order_release);
    }
    if (worker != 0 && claimed != 0) {
      helper_claims_.fetch_add(claimed, std::memory_order_relaxed);
    }
  }

  const int width_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;  ///< last claiming epoch per position
  std::atomic<std::size_t> done_{0};
  std::atomic<std::uint64_t> helper_claims_{0};
  int starved_windows_ = 0;  ///< engine thread only

  std::mutex mu_;
  std::condition_variable cv_;
  // Window descriptor + epoch, guarded by mu_.
  Cell* const* items_ = nullptr;
  std::size_t n_ = 0;
  Nanos to_{};
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  std::vector<std::thread> helpers_;
};

ShardedEngine::ShardedEngine(const StackConfig& base, ShardedOptions opt) : base_(base) {
  if (!base_.duplex) throw std::invalid_argument{"ShardedEngine: duplex config required"};
  if (base_.num_cells < 1) throw std::invalid_argument{"ShardedEngine: num_cells must be >= 1"};
  slot_ = base_.duplex->numerology().slot_duration();
  cells_.reserve(static_cast<std::size_t>(base_.num_cells));
  for (int i = 0; i < base_.num_cells; ++i) {
    cells_.push_back(std::make_unique<Cell>(base_, i));
  }
  active_.reserve(cells_.size());
  load_.resize(cells_.size());
  xlink_.resize(cells_.size());
  const int threads = std::min(resolve_threads(opt.threads), base_.num_cells);
  if (threads > 1) gang_ = std::make_unique<ShardGang>(threads - 1, cells_.size());
}

ShardedEngine::~ShardedEngine() = default;

int ShardedEngine::threads() const { return gang_ ? gang_->width() : 1; }

void ShardedEngine::send_uplink_at(Nanos at, int cell, int ue) {
  if (cell < 0 || cell >= num_cells()) throw std::out_of_range{"ShardedEngine: cell index"};
  if (at < now_) throw std::invalid_argument{"ShardedEngine: injection behind the frontier"};
  cells_[static_cast<std::size_t>(cell)]->queue_uplink(at, ue);
}

void ShardedEngine::send_downlink_at(Nanos at, int cell, int ue) {
  if (cell < 0 || cell >= num_cells()) throw std::out_of_range{"ShardedEngine: cell index"};
  if (at < now_) throw std::invalid_argument{"ShardedEngine: injection behind the frontier"};
  cells_[static_cast<std::size_t>(cell)]->queue_downlink(at, ue);
}

void ShardedEngine::advance_all(Nanos to, bool filter_idle) {
  // One reused dispatch list per window — no per-cell closures, no queue.
  // Skipping a cell whose next activity lies beyond the window is safe:
  // advancing it would only move its local clock (it still receives
  // set_neighbor_load at the barrier, and its load signal cannot change
  // without an event); the final window runs unfiltered so every clock
  // lands exactly on `until`.
  active_.clear();
  for (auto& c : cells_) {
    if (!filter_idle || c->next_activity() <= to) active_.push_back(c.get());
  }
  if (gang_) {
    gang_->run(active_.data(), active_.size(), to);
  } else {
    for (Cell* c : active_) c->advance_to(to);
  }
}

void ShardedEngine::exchange_load() {
  // Gathered and applied in fixed cell order on the engine thread, so the
  // (floating-point) aggregate is identical for every worker thread count.
  double total = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    load_[i] = static_cast<double>(cells_[i]->load_signal());
    total += load_[i];
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i]->set_neighbor_load(base_.intercell_load_coupling * (total - load_[i]));
  }
  // Dynamic-TDD cross-link: a cell's DL-upgraded symbols interfere with its
  // neighbours' uplink. Same fixed-order gather/apply as the load signal, so
  // the aggregate is identical for every worker thread count; a cell never
  // sees its own activity. Skipped entirely when the policy is disabled.
  if (base_.dynamic_tdd.enabled) {
    double activity = 0.0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      xlink_[i] = cells_[i]->dl_upgrade_activity();
      activity += xlink_[i];
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i]->set_crosslink(base_.intercell_load_coupling * (activity - xlink_[i]));
    }
  }
}

void ShardedEngine::run_until(Nanos until) {
  if (until <= now_) return;
  if (base_.intercell_load_coupling == 0.0 || cells_.size() == 1) {
    // No cross-cell dependency: the lookahead is infinite, one window.
    advance_all(until, /*filter_idle=*/false);
    now_ = until;
    return;
  }
  while (now_ < until) {
    // Adaptive window: nothing anywhere can fire before tmin, so every
    // slot-grid barrier below it would recompute and re-apply unchanged
    // loads — skip straight to the first barrier that can matter. The
    // produced barrier sequence is a no-op-free subset of the fixed
    // one-slot schedule, hence bitwise-identical results.
    Nanos tmin = Nanos::max();
    for (const auto& c : cells_) tmin = std::min(tmin, c->next_activity());
    Nanos end = until;
    if (tmin < until) {
      if (tmin < now_) tmin = now_;  // conservative estimates may trail the frontier
      const std::int64_t grid =
          (tmin.count() + slot_.count() - 1) / slot_.count() * slot_.count();
      Nanos barrier{grid};
      if (barrier <= now_) barrier = now_ + slot_;  // activity at an aligned frontier
      end = std::min(barrier, until);
    }
    advance_all(end, /*filter_idle=*/end != until);
    exchange_load();
    now_ = end;
  }
}

SampleSet ShardedEngine::latency_samples_us(Direction dir) const {
  SampleSet merged;
  for (const auto& c : cells_) merged.merge(c->system().latency_samples_us(dir));
  return merged;
}

MetricsRegistry ShardedEngine::merged_metrics() const {
  MetricsRegistry merged;
  for (const auto& c : cells_) {
    merged.merge(c->system().metrics());
    if (c->population() != nullptr) c->population()->export_metrics(merged);
  }
  return merged;
}

std::uint64_t ShardedEngine::packets_started() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().packets_started();
  return n;
}

std::uint64_t ShardedEngine::packets_delivered() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().packets_delivered();
  return n;
}

std::uint64_t ShardedEngine::radio_deadline_misses() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().radio_deadline_misses();
  return n;
}

std::uint64_t ShardedEngine::events_fired() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().simulator().events_fired();
  return n;
}

std::uint64_t ShardedEngine::punctured_retx() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().punctured_retx();
  return n;
}

std::uint64_t ShardedEngine::crosslink_ul_losses() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().crosslink_ul_losses();
  return n;
}

std::uint64_t ShardedEngine::dynamic_upgraded_slots() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().dynamic_upgraded_slots();
  return n;
}

LbtGate::Stats ShardedEngine::lbt_stats() const {
  LbtGate::Stats t;
  for (const auto& c : cells_) {
    const LbtGate::Stats s = c->system().lbt_stats();
    t.attempts += s.attempts;
    t.deferred += s.deferred;
    t.deferral_total += s.deferral_total;
    t.cw_doublings += s.cw_doublings;
    t.cw_resets += s.cw_resets;
    t.hidden_collisions += s.hidden_collisions;
    t.nru_airtime += s.nru_airtime;
    t.wifi_overlap += s.wifi_overlap;
  }
  return t;
}

ShardedEngine::PopulationTotals ShardedEngine::population_totals() const {
  PopulationTotals t;
  for (const auto& c : cells_) {
    const UePopulation* p = c->population();
    if (p == nullptr) continue;
    t.ues += p->size();
    t.offered += p->counters().offered;
    t.delivered += p->counters().delivered;
    t.harq_drops += p->counters().harq_drops;
    t.queue_drops += p->counters().queue_drops;
    t.grants_used += p->counters().grants_used;
    t.queued += p->queued_packets();
    t.storage_bytes += p->storage_bytes();
  }
  return t;
}

std::vector<TraceLane> ShardedEngine::trace_lanes() const {
  std::vector<TraceLane> lanes;
  lanes.reserve(cells_.size());
  for (const auto& c : cells_) {
    lanes.push_back(TraceLane{"cell " + std::to_string(c->index()), c->system().tracer().spans()});
  }
  return lanes;
}

}  // namespace u5g
