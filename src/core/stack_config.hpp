#pragma once
// StackConfig: the one aggregate configuration surface for a simulated
// end-to-end stack — duplexing, access mode, per-layer sub-configs
// (scheduler, SR, configured grants, processing/radio/PHY profiles, UPF,
// RLC/PDCP knobs, channel), and the TraceConfig controlling the
// observability subsystem. Benches, examples and tests all construct
// systems through the named presets below; there are no boolean-trap
// factories on this surface.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/hashing.hpp"
#include "corenet/upf.hpp"
#include "fault/scenario.hpp"
#include "mac/configured_grant.hpp"
#include "mac/ue_population.hpp"
#include "mac/sched_request.hpp"
#include "mac/scheduler.hpp"
#include "os/proc_time.hpp"
#include "phy/channel.hpp"
#include "phy/lbt.hpp"
#include "phy/phy_timing.hpp"
#include "radio/radio_head.hpp"
#include "rlc/rlc_entity.hpp"
#include "tdd/duplex_config.hpp"
#include "tdd/dynamic_format.hpp"
#include "trace/trace.hpp"

namespace u5g {

/// Full configuration of a run.
struct StackConfig {
  std::shared_ptr<const DuplexConfig> duplex;   ///< required
  bool grant_free = false;                      ///< UL access mode
  SrConfig sr{};                                ///< grant-based SR opportunities
  ConfiguredGrantConfig cg{};                   ///< grant-free occasions (UE 0; others staggered)
  SchedulerParams sched{};
  /// Number of attached UEs (§9 scalability). Grant-free occasions are
  /// staggered per UE; the gNB's processing times grow with load per the
  /// §7 observation via `gnb_load_factor_per_ue`.
  int num_ues = 1;
  double gnb_load_factor_per_ue = 0.08;  ///< gNB proc scale = 1 + f*(num_ues-1)
  /// Number of cells for the sharded scale-out engine (sim/sharded.hpp).
  /// A plain E2eSystem always models one cell; the engine builds one shard
  /// per cell from this config (cell 0 keeps `seed`, the rest get splitmix64
  /// stream seeds).
  int num_cells = 1;
  /// Inter-cell load coupling for the sharded engine: each in-flight packet
  /// at a neighbouring cell loads this cell's gNB like `coupling` extra
  /// attached UEs (through `gnb_load_factor_per_ue`). 0 = isolated cells.
  double intercell_load_coupling = 0.0;
  /// Background lite-UE population per cell (mac/ue_population.hpp):
  /// `population.background_ues` flat SoA rows driven by aggregate per-slot
  /// arrival counts, loading the gNB alongside the `num_ues` tracked full
  /// stacks. Default is disabled (0 background UEs) — every existing config,
  /// golden file and seed stream is untouched.
  PopulationConfig population{};
  ProcessingProfile gnb_proc = ProcessingProfile::gnb_i7();
  ProcessingProfile ue_proc = ProcessingProfile::ue_modem();
  RadioHeadParams gnb_radio = RadioHeadParams::usrp_b210_usb2();
  RadioHeadParams ue_radio = RadioHeadParams::pcie_sdr();  ///< modem: ASIC radio path
  PhyTimingParams phy = PhyTimingParams::software_i7();
  UpfParams upf = UpfParams::dedicated_urllc();
  RlcMode rlc_mode = RlcMode::UM;
  double channel_loss = 0.0;      ///< per-transmission loss probability
  /// PDCP t-Reordering: bound on how long the receiver holds out-of-order
  /// PDUs waiting for a missing COUNT before flushing past the gap.
  Nanos pdcp_t_reordering{5'000'000};
  /// Optional FR2 line-of-sight blockage process (§1/§5's mmWave
  /// reliability problem): while blocked, transmissions are lost with the
  /// process's loss probability, on top of `channel_loss`.
  std::optional<MmWaveBlockage::Params> blockage{};
  Nanos harq_feedback_delay{};    ///< loss detection -> retransmission planning
  int harq_max_tx = 4;
  std::size_t payload_bytes = 64;   ///< ICMP-echo-sized
  std::size_t dl_tb_slack = 64;     ///< TB headroom over the PDU
  std::uint64_t seed = 1;
  /// Scenario-scripted fault injection (src/fault/): Gilbert–Elliott burst
  /// loss, OS-jitter storms, radio-bus stalls, UPF outages — each with its
  /// own SplitMix64 stream derived from `seed`, never touching the main
  /// simulation stream. Empty (the default) = no injector consulted; the
  /// i.i.d. `channel_loss` path above stays bit-identical to pre-fault
  /// builds. Configuring any BurstLoss scenario *replaces* `channel_loss`
  /// (i.i.d. is the degenerate single-state case, GilbertElliott::Params::iid).
  std::vector<FaultScenario> faults{};
  /// Observability: per-packet spans + metrics (off by default — one dead
  /// branch per hook on the warm path).
  TraceConfig trace{};
  /// Dynamic slot-format selection + URLLC preemption (tdd/dynamic_format.hpp).
  /// Disabled by default: no decision events are scheduled, no extra RNG
  /// draws happen, and every pre-dynamic golden stays byte-identical. The
  /// block participates in the canonical identity, so the feasibility cache
  /// can never serve a static-pattern verdict for a dynamic query.
  DynamicTddConfig dynamic_tdd{};
  /// NR-U Listen-Before-Talk channel access (phy/lbt.hpp). Disabled by
  /// default = licensed spectrum: no gate is constructed, no extra RNG
  /// stream exists, and every pre-LBT golden stays byte-identical. The
  /// block participates in the canonical identity, so the feasibility cache
  /// can never serve a licensed-band verdict for an NR-U query.
  LbtConfig lbt{};

  // -- Named presets ---------------------------------------------------------

  /// The §7 testbed with the SR-grant handshake: n78, µ1 (0.5 ms slots),
  /// DDDU, USB B210, per-slot SR, one-slot scheduler lead ("the transmission
  /// must always be delayed for one slot to give enough time to the RH").
  static StackConfig testbed_grant_based(std::uint64_t seed = 1);

  /// The §7 testbed with grant-free (configured-grant) uplink — Fig 6b.
  static StackConfig testbed_grant_free(std::uint64_t seed = 1);

  /// The §5 viable design: µ2 DM pattern, grant-free, PCIe radio, RT kernel,
  /// tight margin — the configuration the paper argues can meet URLLC.
  static StackConfig urllc_design(std::uint64_t seed = 1);

  // -- Canonical identity ----------------------------------------------------
  // Two StackConfigs with the same canonical identity produce bitwise-
  // identical simulations: every knob participates by value, including the
  // `duplex` handle, which is compared by its observable direction map
  // (DuplexConfig::append_value_words) — never by pointer. This is what the
  // feasibility-query service (src/serve/) keys its replication cache on,
  // and the first way two configs can be compared at all.

  /// Flatten every field into the canonical word stream (exact identity).
  void append_canonical_words(CanonicalWords& words) const;
  /// The full word stream as a value (LRU key material).
  [[nodiscard]] CanonicalWords canonical_words() const;
  /// Stable 64-bit key folded from the word stream. Equal configs always
  /// collide; unequal configs collide with probability ~2^-64.
  [[nodiscard]] std::uint64_t canonical_key() const;

  /// Deep value equality over the canonical word stream (exact, collision-
  /// free — two distinct shared_ptr instances to equal duplex patterns
  /// compare equal).
  friend bool operator==(const StackConfig& a, const StackConfig& b);
};

/// Historic name of the aggregate config, kept as an alias.
using E2eConfig = StackConfig;

}  // namespace u5g
