#include "tdd/dynamic_format.hpp"

#include <algorithm>

namespace u5g {

std::string DecidedFormat::render() const {
  std::string s(kSymbolsPerSlot, '-');
  for (int i = 0; i < kSymbolsPerSlot; ++i) {
    const bool d = (added_dl >> i) & 1u;
    const bool u = (added_ul >> i) & 1u;
    if (d && u) {
      s[static_cast<std::size_t>(i)] = 'X';
    } else if (d) {
      s[static_cast<std::size_t>(i)] = 'D';
    } else if (u) {
      s[static_cast<std::size_t>(i)] = 'U';
    }
  }
  return s;
}

std::optional<DecidedFormat> DecidedFormat::parse(std::string_view s) {
  if (s.size() != static_cast<std::size_t>(kSymbolsPerSlot)) return std::nullopt;
  DecidedFormat f;
  for (int i = 0; i < kSymbolsPerSlot; ++i) {
    switch (s[static_cast<std::size_t>(i)]) {
      case 'X':
        f.added_dl |= static_cast<std::uint16_t>(1u << i);
        f.added_ul |= static_cast<std::uint16_t>(1u << i);
        break;
      case 'D':
        f.added_dl |= static_cast<std::uint16_t>(1u << i);
        break;
      case 'U':
        f.added_ul |= static_cast<std::uint16_t>(1u << i);
        break;
      case '-':
        break;
      default:
        return std::nullopt;
    }
  }
  return f;
}

SlotFormat DecidedFormat::to_slot_format(std::uint16_t base_dl, std::uint16_t base_ul) const {
  SlotFormat fmt;
  fmt.index = -1;  // dynamically decided, not a TS 38.213 table entry
  const std::uint16_t dl = base_dl | added_dl;
  const std::uint16_t ul = base_ul | added_ul;
  for (int i = 0; i < kSymbolsPerSlot; ++i) {
    const bool d = (dl >> i) & 1u;
    const bool u = (ul >> i) & 1u;
    fmt.symbols[static_cast<std::size_t>(i)] =
        d == u ? SymbolKind::Flexible : (d ? SymbolKind::Downlink : SymbolKind::Uplink);
  }
  return fmt;
}

DynamicFormatPolicy::DynamicFormatPolicy(const DuplexConfig& base, const DynamicTddConfig& cfg)
    : base_(base), cfg_(cfg) {
  cfg_.guard_slots = std::max(cfg_.guard_slots, 0);
  cfg_.hold_slots = std::max(cfg_.hold_slots, 1);
  cfg_.ul_guard_slots = std::max(cfg_.ul_guard_slots, 1);
}

std::uint16_t DynamicFormatPolicy::base_dl_mask(SlotIndex slot) const {
  std::uint16_t m = 0;
  for (int i = 0; i < kSymbolsPerSlot; ++i) {
    if (base_.dl_capable(slot, i)) m |= static_cast<std::uint16_t>(1u << i);
  }
  return m;
}

std::uint16_t DynamicFormatPolicy::base_ul_mask(SlotIndex slot) const {
  std::uint16_t m = 0;
  for (int i = 0; i < kSymbolsPerSlot; ++i) {
    if (base_.ul_capable(slot, i)) m |= static_cast<std::uint16_t>(1u << i);
  }
  return m;
}

DecidedFormat DynamicFormatPolicy::decide(SlotIndex k, const TddQueueState& q) {
  const SlotIndex target = k + cfg_.guard_slots;
  if (ul_demand(q)) ul_hold_until_ = std::max(ul_hold_until_, target + cfg_.hold_slots);
  if (dl_demand(q)) dl_hold_until_ = std::max(dl_hold_until_, target + cfg_.hold_slots);

  DecidedFormat f;
  if (target < ul_hold_until_) {
    f.added_ul = static_cast<std::uint16_t>(DecidedFormat::kAllSymbols & ~base_ul_mask(target));
  }
  if (target < dl_hold_until_) {
    // The starvation guard: after ul_guard_slots consecutive DL-upgraded
    // slots one clean slot goes out, whatever the demand says.
    if (dl_run_ >= cfg_.ul_guard_slots) {
      dl_run_ = 0;
    } else {
      f.added_dl = static_cast<std::uint16_t>(DecidedFormat::kAllSymbols & ~base_dl_mask(target));
      ++dl_run_;
    }
  } else {
    dl_run_ = 0;
  }
  if (f.any()) ++upgraded_;
  return f;
}

DynamicDuplexConfig::DynamicDuplexConfig(std::shared_ptr<const DuplexConfig> base)
    : DuplexConfig(base->numerology()), base_(std::move(base)) {}

void DynamicDuplexConfig::commit(SlotIndex slot, DecidedFormat f) {
  if (overlay_.empty()) first_ = slot;
  if (slot < committed_through()) return;  // already committed (idempotent)
  while (committed_through() < slot) overlay_.push_back(0);
  overlay_.push_back(static_cast<std::uint32_t>(f.added_dl) |
                     (static_cast<std::uint32_t>(f.added_ul) << 16));
}

DecidedFormat DynamicDuplexConfig::committed(SlotIndex slot) const {
  if (slot < first_ || slot >= committed_through()) return {};
  const std::uint32_t w = overlay_[static_cast<std::size_t>(slot - first_)];
  DecidedFormat f;
  f.added_dl = static_cast<std::uint16_t>(w & 0xffffu);
  f.added_ul = static_cast<std::uint16_t>(w >> 16);
  return f;
}

bool DynamicDuplexConfig::dl_capable(SlotIndex slot, int sym) const {
  if (base_->dl_capable(slot, sym)) return true;
  return (committed(slot).added_dl >> sym) & 1u;
}

bool DynamicDuplexConfig::ul_capable(SlotIndex slot, int sym) const {
  if (base_->ul_capable(slot, sym)) return true;
  return (committed(slot).added_ul >> sym) & 1u;
}

}  // namespace u5g
