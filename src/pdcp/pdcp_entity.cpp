#include "pdcp/pdcp_entity.hpp"

#include <algorithm>
#include <array>

namespace u5g {

void PdcpTx::protect(ByteBuffer& sdu) {
  const std::uint32_t count = next_count_++;

  apply_keystream(sdu.bytes(), cfg_.security, count);

  if (cfg_.integrity_enabled) {
    const std::uint32_t tag = integrity_tag(sdu.bytes(), cfg_.security, count);
    std::array<std::uint8_t, 4> mac{};
    put_be32(mac, tag);
    sdu.append(mac);
  }

  const std::uint32_t sn = count % cfg_.sn_modulus();
  if (cfg_.header_bytes() == 2) {
    // D/C=1 | R R R | SN[11:8]  ,  SN[7:0]
    std::array<std::uint8_t, 2> h{static_cast<std::uint8_t>(0x80 | ((sn >> 8) & 0x0F)),
                                  static_cast<std::uint8_t>(sn & 0xFF)};
    sdu.push_header(h);
  } else {
    std::array<std::uint8_t, 3> h{static_cast<std::uint8_t>(0x80 | ((sn >> 16) & 0x03)),
                                  static_cast<std::uint8_t>((sn >> 8) & 0xFF),
                                  static_cast<std::uint8_t>(sn & 0xFF)};
    sdu.push_header(h);
  }
}

void PdcpTx::protect_batch(std::span<ByteBuffer*> sdus) {
  // Identical to protect() per SDU, restaged: COUNTs first, then one batch
  // cipher pass, then one batch integrity pass, then the per-packet trailer
  // and header edits. The payload transformations are independent across
  // packets, so the reordering cannot change any output byte.
  constexpr std::size_t kLanes = 8;
  std::size_t done = 0;
  while (done < sdus.size()) {
    const std::size_t n = std::min(kLanes, sdus.size() - done);
    std::array<std::uint32_t, kLanes> counts{};
    std::array<CipherJob, kLanes> cjobs{};
    for (std::size_t i = 0; i < n; ++i) {
      counts[i] = next_count_++;
      cjobs[i] = CipherJob{sdus[done + i]->bytes(), counts[i]};
    }
    if (cfg_.integrity_enabled) {
      // Fused kernel: cipher and tag in one traversal of each payload.
      std::array<std::uint32_t, kLanes> tags{};
      protect_payload_batch(std::span<const CipherJob>{cjobs.data(), n}, cfg_.security,
                            std::span<std::uint32_t>{tags.data(), n});
      for (std::size_t i = 0; i < n; ++i) {
        std::array<std::uint8_t, 4> mac{};
        put_be32(mac, tags[i]);
        sdus[done + i]->append(mac);
      }
    } else {
      apply_keystream_batch(std::span<const CipherJob>{cjobs.data(), n}, cfg_.security);
    }

    for (std::size_t i = 0; i < n; ++i) {
      ByteBuffer& sdu = *sdus[done + i];
      const std::uint32_t sn = counts[i] % cfg_.sn_modulus();
      if (cfg_.header_bytes() == 2) {
        std::array<std::uint8_t, 2> h{static_cast<std::uint8_t>(0x80 | ((sn >> 8) & 0x0F)),
                                      static_cast<std::uint8_t>(sn & 0xFF)};
        sdu.push_header(h);
      } else {
        std::array<std::uint8_t, 3> h{static_cast<std::uint8_t>(0x80 | ((sn >> 16) & 0x03)),
                                      static_cast<std::uint8_t>((sn >> 8) & 0xFF),
                                      static_cast<std::uint8_t>(sn & 0xFF)};
        sdu.push_header(h);
      }
    }
    done += n;
  }
}

std::uint32_t PdcpRx::infer_count(std::uint32_t sn) const { return infer_count_from(expected_, sn); }

std::uint32_t PdcpRx::infer_count_from(std::uint32_t expected, std::uint32_t sn) const {
  // TS 38.323: pick the COUNT with this SN closest to the expected COUNT.
  const std::uint32_t mod = cfg_.sn_modulus();
  const std::uint32_t base = expected & ~(mod - 1);
  std::uint32_t best = base + sn;
  auto dist = [&](std::uint32_t c) {
    return c >= expected ? c - expected : expected - c;
  };
  for (const std::int64_t cand : {static_cast<std::int64_t>(base) - mod,
                                  static_cast<std::int64_t>(base) + mod}) {
    if (cand < 0) continue;
    const auto c = static_cast<std::uint32_t>(cand) + sn;
    if (dist(c) < dist(best)) best = c;
  }
  return best;
}

bool PdcpRx::receive(ByteBuffer&& pdu, Deliver deliver) {
  const std::size_t hdr = cfg_.header_bytes();
  if (pdu.size() < hdr + (cfg_.integrity_enabled ? 4u : 0u)) return false;

  std::uint32_t sn = 0;
  {
    const auto h = pdu.pop_header(hdr);
    sn = hdr == 2 ? (static_cast<std::uint32_t>(h[0] & 0x0F) << 8) | h[1]
                  : (static_cast<std::uint32_t>(h[0] & 0x03) << 16) |
                        (static_cast<std::uint32_t>(h[1]) << 8) | h[2];
  }
  const std::uint32_t count = infer_count(sn);

  if (count < expected_ || held_.contains(count)) return false;  // stale or duplicate

  if (cfg_.integrity_enabled) {
    const auto body = pdu.bytes();
    const std::uint32_t got = get_be32(body.subspan(body.size() - 4));
    pdu.truncate_back(4);
    const std::uint32_t want = integrity_tag(pdu.bytes(), cfg_.security, count);
    if (got != want) {
      ++integrity_failures_;
      return false;
    }
  }

  apply_keystream(pdu.bytes(), cfg_.security, count);

  if (count == expected_ && held_.empty()) {
    // In-order fast path (the loss-free steady state): deliver directly,
    // never touching the reordering map — no node allocation per packet.
    ++expected_;
    PacketMeta meta;
    meta.count = count;
    deliver(std::move(pdu), meta);
    return true;
  }

  held_.emplace(count, std::move(pdu));
  // Deliver the in-order run starting at expected_.
  for (auto it = held_.begin(); it != held_.end() && it->first == expected_;) {
    PacketMeta meta;
    meta.count = it->first;
    deliver(std::move(it->second), meta);
    it = held_.erase(it);
    ++expected_;
  }
  return true;
}

std::size_t PdcpRx::receive_batch(std::span<ByteBuffer> pdus, Deliver deliver) {
  // Fast path precondition: nothing buffered and the batch is exactly the
  // next run of COUNTs in order — the loss-free steady state. Everything
  // else falls back to scalar receive() per PDU, which this path must (and
  // tests assert does) match byte for byte and counter for counter.
  constexpr std::size_t kLanes = 8;
  const std::size_t hdr = cfg_.header_bytes();
  const std::size_t tagn = cfg_.integrity_enabled ? 4u : 0u;
  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < pdus.size()) {
    const std::size_t n = std::min(kLanes, pdus.size() - done);
    std::array<std::uint32_t, kLanes> counts{};
    bool fast = held_.empty();
    if (fast) {
      // Validate the in-order precondition without mutating any PDU, so a
      // fallback can re-run the scalar path from pristine inputs.
      std::uint32_t local_expected = expected_;
      for (std::size_t i = 0; i < n && fast; ++i) {
        const ByteBuffer& pdu = pdus[done + i];
        if (pdu.size() < hdr + tagn) {
          fast = false;
          break;
        }
        const auto h = pdu.bytes().first(hdr);
        const std::uint32_t sn =
            hdr == 2 ? (static_cast<std::uint32_t>(h[0] & 0x0F) << 8) | h[1]
                     : (static_cast<std::uint32_t>(h[0] & 0x03) << 16) |
                           (static_cast<std::uint32_t>(h[1]) << 8) | h[2];
        counts[i] = infer_count_from(local_expected, sn);
        if (counts[i] != local_expected) fast = false;
        ++local_expected;
      }
    }
    if (fast && cfg_.integrity_enabled) {
      // Fused speculative pass: tag over the ciphered body AND decipher it
      // in one traversal. Headers and trailers are untouched, so a mismatch
      // only needs the XOR undone to restore the pristine PDUs.
      std::array<CipherJob, kLanes> vjobs{};
      std::array<std::uint32_t, kLanes> tags{};
      for (std::size_t i = 0; i < n; ++i) {
        const auto bytes = pdus[done + i].bytes();
        vjobs[i] = CipherJob{bytes.subspan(hdr, bytes.size() - hdr - 4), counts[i]};
      }
      verify_decipher_batch(std::span<const CipherJob>{vjobs.data(), n}, cfg_.security,
                            std::span<std::uint32_t>{tags.data(), n});
      for (std::size_t i = 0; i < n && fast; ++i) {
        const auto bytes = pdus[done + i].bytes();
        if (get_be32(bytes.subspan(bytes.size() - 4)) != tags[i]) fast = false;
      }
      if (!fast) {
        // Re-encipher the speculatively deciphered bodies (XOR involution)
        // so the scalar fallback sees the PDUs exactly as received.
        apply_keystream_batch(std::span<const CipherJob>{vjobs.data(), n}, cfg_.security);
      }
    }
    if (!fast) {
      for (std::size_t i = 0; i < n; ++i) {
        if (receive(std::move(pdus[done + i]), deliver)) ++accepted;
      }
      done += n;
      continue;
    }
    if (!cfg_.integrity_enabled) {
      std::array<CipherJob, kLanes> cjobs{};
      for (std::size_t i = 0; i < n; ++i) {
        ByteBuffer& pdu = pdus[done + i];
        pdu.pop_header(hdr);
        cjobs[i] = CipherJob{pdu.bytes(), counts[i]};
      }
      apply_keystream_batch(std::span<const CipherJob>{cjobs.data(), n}, cfg_.security);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        pdus[done + i].pop_header(hdr);
        pdus[done + i].truncate_back(4);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      ++expected_;
      PacketMeta meta;
      meta.count = counts[i];
      deliver(std::move(pdus[done + i]), meta);
      ++accepted;
    }
    done += n;
  }
  return accepted;
}

void PdcpRx::flush(Deliver deliver) {
  for (auto& [count, buf] : held_) {
    PacketMeta meta;
    meta.count = count;
    deliver(std::move(buf), meta);
    expected_ = count + 1;
  }
  held_.clear();
}

}  // namespace u5g
