// Example: professional live audio over 5G — the Nokia/Sennheiser use case
// the paper discusses in §8 ([33]): wireless microphones need ~1 ms-class
// mouth-to-ear contributions from the link, and every late frame is an
// audible dropout.
//
// A microphone UE streams 250 µs audio frames uplink. We measure per-frame
// one-way latency and the dropout rate at a playout deadline, and show the
// §8 observation that retransmissions move latency "in steps of 0.5 ms"
// (one slot) per recovery round when the channel is lossy.

#include <cstdio>

#include "core/e2e_system.hpp"
#include "core/reliability.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kFrames = 1500;

void run(const char* title, double channel_loss, std::uint64_t seed) {
  StackConfig cfg = StackConfig::urllc_design(seed);
  cfg.channel_loss = channel_loss;
  cfg.payload_bytes = 192;  // 48 kHz * 24-bit stereo * 250 us + header
  E2eSystem sys(std::move(cfg));

  const Nanos frame_period = 250_us;
  for (int i = 0; i < kFrames; ++i) {
    sys.send_uplink_at(frame_period * i);
  }
  sys.run_until(frame_period * kFrames + 200_ms);

  auto lat = sys.latency_samples_us(Direction::Uplink);
  const Nanos playout = 2_ms;
  const auto rel = evaluate_reliability(lat, kFrames, playout);

  // Retransmission steps: count delivered frames per attempt bucket.
  int by_attempt[5] = {0, 0, 0, 0, 0};
  double mean_by_attempt[5] = {0, 0, 0, 0, 0};
  for (const PacketRecord& r : sys.records()) {
    if (!r.ok || r.dir != Direction::Uplink) continue;
    const int a = std::min(r.harq_transmissions, 4);
    ++by_attempt[a];
    mean_by_attempt[a] += r.latency().ms();
  }

  std::printf("-- %s (channel loss %.1f%%) --\n", title, channel_loss * 100);
  std::printf("   frames delivered: %zu/%d, mean %.0f us, p99 %.0f us, p99.9 %.0f us\n",
              lat.count(), kFrames, lat.mean(), lat.quantile(0.99), lat.quantile(0.999));
  std::printf("   dropouts at %.1f ms playout deadline: %.3f%% (reliability %.3f%%)\n",
              playout.ms(), (1.0 - rel.fraction_within) * 100, rel.fraction_within * 100);
  for (int a = 1; a <= 4; ++a) {
    if (by_attempt[a] == 0) continue;
    std::printf("   frames needing %d transmission(s): %5d, mean latency %.3f ms\n", a,
                by_attempt[a], mean_by_attempt[a] / by_attempt[a]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Professional live audio: 250 us frames uplink on the URLLC design point ==\n\n");
  run("clean channel", 0.0, 11);
  run("lossy channel", 0.05, 12);
  std::printf("note the per-retransmission latency step of ~one extra access round — the §8\n"
              "observation that recovery quantises latency in slot-sized steps.\n");
  return 0;
}
