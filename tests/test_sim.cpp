// Unit tests for the discrete-event kernel and the periodic process helper,
// including the slot-map tombstone machinery and the small-buffer Action's
// zero-allocation guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sim/periodic.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

// Global allocation counter: the kernel claims zero heap allocations for
// small actions in steady state, and that claim is tested below. Counting
// replacement of the global operator new/delete; single-threaded tests only
// read the counter between statements, so the atomic is plenty.
namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace u5g {
namespace {

using namespace u5g::literals;

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ns);
}

TEST(SimulatorTest, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(5_us, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, CoalescedSameTimestampFiringMatchesReferenceModel) {
  // Property test for the bucket-coalescing kernel: random workloads with
  // heavy timestamp ties — including events that schedule children at the
  // *same* timestamp mid-drain, which must join the live bucket in FIFO
  // position — fire in exactly the (time, scheduling-order) sequence of a
  // bucket-oblivious reference model.
  constexpr int kInitial = 64;
  constexpr int kTimes = 7;  // 64 events over 7 timestamps: ties everywhere
  constexpr int kSpawnBase = 10000;
  constexpr int kSpawnCap = kSpawnBase + 200;
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const auto h = [trial](int id) {
      return splitmix64(trial * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(id));
    };
    const auto time_of = [&](int id) {
      return static_cast<std::int64_t>(h(id) % kTimes) * 100;
    };

    // Reference model: a flat list ordered by (time, scheduling seq); a
    // fired event may append a child at its own timestamp or 50 ns later.
    struct Rec {
      std::int64_t t;
      std::uint64_t seq;
      int id;
    };
    std::vector<Rec> pending;
    std::vector<int> ref_order;
    std::uint64_t seq = 0;
    for (int id = 0; id < kInitial; ++id) pending.push_back({time_of(id), seq++, id});
    int ref_spawn = kSpawnBase;
    while (!pending.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].t < pending[best].t ||
            (pending[i].t == pending[best].t && pending[i].seq < pending[best].seq)) {
          best = i;
        }
      }
      const Rec r = pending[best];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
      ref_order.push_back(r.id);
      if (ref_spawn < kSpawnCap) {
        const std::uint64_t kind = h(r.id) % 3;
        if (kind == 0) pending.push_back({r.t, seq++, ref_spawn++});
        else if (kind == 1) pending.push_back({r.t + 50, seq++, ref_spawn++});
      }
    }

    // The kernel, driven by the identical spawn script.
    Simulator sim;
    std::vector<int> order;
    int spawn = kSpawnBase;
    std::function<void(int, std::int64_t)> fire = [&](int id, std::int64_t t) {
      order.push_back(id);
      if (spawn < kSpawnCap) {
        const std::uint64_t kind = h(id) % 3;
        if (kind == 0) {
          const int c = spawn++;
          sim.schedule_at(Nanos{t}, [&fire, c, t] { fire(c, t); });
        } else if (kind == 1) {
          const int c = spawn++;
          sim.schedule_at(Nanos{t + 50}, [&fire, c, t] { fire(c, t + 50); });
        }
      }
    };
    for (int id = 0; id < kInitial; ++id) {
      const std::int64_t t = time_of(id);
      sim.schedule_at(Nanos{t}, [&fire, id, t] { fire(id, t); });
    }
    sim.run_until();
    ASSERT_EQ(ref_order, order) << "trial " << trial;
  }
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  Nanos fired{-1};
  sim.schedule_at(100_ns, [&] {
    sim.schedule_after(50_ns, [&] { fired = sim.now(); });
  });
  sim.run_until();
  EXPECT_EQ(fired, 150_ns);
}

TEST(SimulatorTest, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(100_ns, [] {});
  sim.run_until();
  EXPECT_THROW(sim.schedule_at(50_ns, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilBoundsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_us, [&] { ++fired; });
  sim.schedule_at(30_us, [&] { ++fired; });
  sim.run_until(20_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_us);  // clock advanced to the bound
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(40_us);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactBoundFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(20_us, [&] { fired = true; });
  sim.run_until(20_us);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(10_ns, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double cancel is a no-op
  sim.run_until();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(1_ns, [] {});
  sim.run_until();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, CancelInvalidHandle) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(SimulatorTest, PendingAccounting) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  const auto h1 = sim.schedule_at(1_us, [] {});
  sim.schedule_at(2_us, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until();
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ns, [&] { ++fired; });
  sim.schedule_at(2_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, StepSkipsCancelled) {
  Simulator sim;
  int fired = 0;
  const auto h = sim.schedule_at(1_ns, [&] { ++fired; });
  sim.schedule_at(2_ns, [&] { ++fired; });
  sim.cancel(h);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2_ns);
}

TEST(SimulatorTest, EventsScheduledDuringRunAreFired) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(1_us, chain);
  };
  sim.schedule_at(0_ns, chain);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 4_us);
}

// ---------------------------------------------------------------------------
// Slot recycling / tombstone semantics

TEST(SimulatorTest, StaleHandleAfterSlotReuseIsInert) {
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;
  const EventHandle h1 = sim.schedule_at(10_ns, [&] { first_fired = true; });
  EXPECT_TRUE(sim.cancel(h1));
  // The next schedule may recycle h1's storage; the stale handle must not be
  // able to cancel the new event.
  const EventHandle h2 = sim.schedule_at(20_ns, [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(h1));
  sim.run_until();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
  EXPECT_FALSE(sim.cancel(h2));  // already fired
}

TEST(SimulatorTest, CancelReleasesCapturedResourcesEagerly) {
  Simulator sim;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventHandle h = sim.schedule_at(10_ns, [t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_TRUE(watch.expired());  // tombstoning destroyed the closure
  sim.run_until();
}

TEST(SimulatorTest, ManyInterleavedCancelsKeepOrdering) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule_at(Nanos{100 - i}, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(sim.cancel(handles[static_cast<std::size_t>(i)]));
  sim.run_until();
  ASSERT_EQ(order.size(), 50u);
  // Survivors are the odd i, firing at when=100-i in increasing time order.
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], 99 - static_cast<int>(2 * k));
  }
}

// ---------------------------------------------------------------------------
// Action: small-buffer storage and move semantics

TEST(ActionTest, InvokesSmallAndLargeCallables) {
  int hits = 0;
  Action small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // > kInlineSize of captured state forces the heap path.
  struct Big {
    double payload[32];
  };
  Big big{};
  big.payload[0] = 2.5;
  double seen = 0.0;
  Action large([big, &seen] { seen = big.payload[0]; });
  large();
  EXPECT_EQ(seen, 2.5);
}

TEST(ActionTest, MoveTransfersOwnership) {
  int hits = 0;
  Action a([&hits] { ++hits; });
  Action b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): testing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Action c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(ActionTest, ResetDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  Action a([t = std::move(token)] { (void)t; });
  EXPECT_FALSE(watch.expired());
  a.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(ActionTest, SmallActionIsHeapFree) {
  void* big_enough[3] = {nullptr, nullptr, nullptr};
  const std::size_t before = g_allocs.load();
  Action a([big_enough] { (void)big_enough; });  // 3 captured words
  a();
  a.reset();
  EXPECT_EQ(g_allocs.load(), before);
}

// ---------------------------------------------------------------------------
// Zero heap allocations in kernel steady state (small actions)

TEST(SimulatorTest, SteadyStateScheduleFireCancelIsHeapFree) {
  Simulator sim;
  long fired = 0;
  // Warm-up: push the queue, slot map and free list past the high-water mark
  // so the vectors keep their capacity for the measured phase.
  std::vector<EventHandle> warm;
  for (int i = 0; i < 256; ++i) {
    warm.push_back(sim.schedule_at(Nanos{i}, [&fired] { ++fired; }));
  }
  for (std::size_t i = 0; i < warm.size(); i += 2) sim.cancel(warm[i]);
  sim.run_until();
  warm.clear();
  warm.reserve(256);

  const std::size_t before = g_allocs.load();
  for (int round = 0; round < 4; ++round) {
    const Nanos base = sim.now();
    warm.clear();
    for (int i = 0; i < 128; ++i) {
      warm.push_back(sim.schedule_at(base + Nanos{i + 1}, [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < warm.size(); i += 3) sim.cancel(warm[i]);
    sim.run_until();
  }
  EXPECT_EQ(g_allocs.load(), before) << "kernel steady state must not touch the heap";
  EXPECT_GT(fired, 0);
}

// ---------------------------------------------------------------------------
// PeriodicProcess

TEST(PeriodicProcessTest, TicksAtPeriod) {
  Simulator sim;
  std::vector<Nanos> ticks;
  PeriodicProcess p(sim, 100_us, [&](Nanos now) { ticks.push_back(now); });
  sim.run_until(350_us);
  ASSERT_EQ(ticks.size(), 4u);  // 0, 100, 200, 300
  EXPECT_EQ(ticks[0], 0_us);
  EXPECT_EQ(ticks[3], 300_us);
  p.stop();
}

TEST(PeriodicProcessTest, PhaseOffset) {
  Simulator sim;
  std::vector<Nanos> ticks;
  PeriodicProcess p(sim, 100_us, [&](Nanos now) { ticks.push_back(now); }, 30_us);
  sim.run_until(250_us);
  ASSERT_GE(ticks.size(), 2u);
  EXPECT_EQ(ticks[0], 30_us);
  EXPECT_EQ(ticks[1], 130_us);
  p.stop();
}

TEST(PeriodicProcessTest, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 10_us, [&](Nanos) { ++count; });
  sim.run_until(25_us);
  p.stop();
  sim.run_until(100_us);
  EXPECT_EQ(count, 3);  // 0, 10, 20
}

TEST(PeriodicProcessTest, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess p(sim, 10_us, [&](Nanos) { ++count; });
    sim.run_until(15_us);
  }
  sim.run_until(100_us);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicProcessTest, StartedLateAlignsToGrid) {
  Simulator sim;
  sim.schedule_at(105_us, [] {});
  sim.run_until();
  std::vector<Nanos> ticks;
  PeriodicProcess p(sim, 100_us, [&](Nanos now) { ticks.push_back(now); }, 0_us);
  sim.run_until(350_us);
  ASSERT_GE(ticks.size(), 1u);
  EXPECT_EQ(ticks[0], 200_us);  // next multiple of 100 after now=105
  p.stop();
}

TEST(PeriodicProcessTest, InvalidPeriodThrows) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0_ns, [](Nanos) {}), std::invalid_argument);
}

}  // namespace
}  // namespace u5g
