#pragma once
// The one delivery-callback surface shared by every layer entity.
//
// SDAP, PDCP, RLC and MAC all hand a finished SDU upward synchronously; each
// used to declare its own FunctionRef shape (RLC passed nothing, PDCP passed
// the COUNT, MAC returned a subPDU list). `DeliveryFn` unifies them: the
// payload moves up, and a small by-value `PacketMeta` carries whichever
// layer identifiers the producing entity knows. Fields a layer does not own
// are left at their zero defaults — a PDCP delivery fills `count`, an RLC
// delivery fills `sn`, and so on.
//
// PacketMeta is a plain aggregate built on the producing entity's stack, so
// adopting this surface costs no allocation and keeps the warm datapath
// allocation-free. The same lifetime rule as FunctionRef applies: a
// DeliveryFn is a call-and-return parameter, never stored.

#include <cstdint>

#include "common/bytes.hpp"
#include "common/function_ref.hpp"

namespace u5g {

/// Layer identifiers travelling alongside a delivered SDU.
struct PacketMeta {
  std::uint32_t count = 0;  ///< PDCP COUNT (set by PDCP deliveries)
  std::uint16_t sn = 0;     ///< RLC sequence number (set by RLC deliveries)
  std::uint8_t lcid = 0;    ///< MAC logical channel id (set by MAC deliveries)
  std::uint8_t qfi = 0;     ///< SDAP QoS flow id (set by SDAP deliveries)
};

/// Unified upward-delivery callback: payload plus the producer's metadata.
using DeliveryFn = FunctionRef<void(ByteBuffer&&, const PacketMeta&)>;

}  // namespace u5g
