#pragma once
// PDCP ciphering and integrity primitives.
//
// Stand-ins for NEA/NIA (the 5G AES/SNOW/ZUC suites): a counter-keyed
// xorshift keystream for confidentiality and a 32-bit FNV-style tag for
// integrity. They reproduce the *structural* properties PDCP depends on —
// same (key, count, bearer, direction) => same keystream; any bit flip
// breaks the tag — at simulator cost. Not cryptographically secure, and
// deliberately so: this library evaluates latency, not security.

#include <cstdint>
#include <span>

namespace u5g {

/// Security context: key plus the COUNT input block parameters.
struct CipherContext {
  std::uint64_t key = 0x5deece66d2b4a1c9ULL;
  std::uint32_t bearer = 0;
  bool downlink = true;
};

/// XOR `data` with the keystream for (`ctx`, `count`). Involutory: applying
/// it twice with the same parameters restores the plaintext.
void apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx, std::uint32_t count);

/// 32-bit integrity tag over `data` under (`ctx`, `count`).
[[nodiscard]] std::uint32_t integrity_tag(std::span<const std::uint8_t> data,
                                          const CipherContext& ctx, std::uint32_t count);

// -- Batch variants ---------------------------------------------------------
//
// The FNV-style tag is a sequential multiply chain: within one packet each
// step waits ~5 cycles for the previous multiply, capping the scalar kernel
// near 700 MB/s. Across packets the chains are independent, so the batch
// kernels run four packets' words per inner-loop iteration and let the four
// multiply chains overlap in the pipeline. Results are bit-identical to
// calling the scalar functions per packet — the scalar kernels stay the
// oracles, and tests assert equality on random batches.

/// One packet's slice of a batch cipher call.
struct CipherJob {
  std::span<std::uint8_t> data;
  std::uint32_t count = 0;
};

/// One packet's slice of a batch integrity call.
struct IntegrityJob {
  std::span<const std::uint8_t> data;
  std::uint32_t count = 0;
};

/// XOR each job's payload with its (`ctx`, job.count) keystream, four
/// packets per inner loop. Equivalent to apply_keystream() on each job.
void apply_keystream_batch(std::span<const CipherJob> jobs, const CipherContext& ctx);

/// Compute each job's integrity tag into `tags_out` (same length as `jobs`),
/// four interleaved FNV chains at a time. Equivalent to integrity_tag() on
/// each job.
void integrity_tag_batch(std::span<const IntegrityJob> jobs, const CipherContext& ctx,
                         std::span<std::uint32_t> tags_out);

/// Fused transmit kernel: cipher each job's payload in place AND compute its
/// integrity tag over the *ciphered* bytes in one traversal (per word: XOR
/// keystream, store, hash the stored word). Bit-identical to
/// apply_keystream_batch() followed by integrity_tag_batch() on the result —
/// which is exactly PDCP's protect order — while streaming each payload
/// through the cache once instead of twice.
void protect_payload_batch(std::span<const CipherJob> jobs, const CipherContext& ctx,
                           std::span<std::uint32_t> tags_out);

/// Fused receive kernel: compute each job's integrity tag over the payload
/// as received (i.e. still ciphered) AND decipher it in place, one traversal
/// (per word: hash the loaded value, then XOR-store the keystream). Equals
/// integrity_tag_batch() on the input followed by apply_keystream_batch().
/// The caller compares tags afterwards; on a mismatch the mutation is undone
/// by re-applying the keystream (XOR is an involution), so speculative
/// deciphering costs nothing on the rare corrupt packet.
void verify_decipher_batch(std::span<const CipherJob> jobs, const CipherContext& ctx,
                           std::span<std::uint32_t> tags_out);

}  // namespace u5g
