#pragma once
// Dynamic slot-format selection (flexible TDD; Esswie & Pedersen,
// arXiv 1909.11305).
//
// The paper's Table 1 holds the duplex pattern fixed; this layer re-decides
// each slot's DL/UL split from MAC queue state. The central design rule is
// *monotone relaxation*: a committed per-slot format only ever ADDS
// capability on top of the static pattern, never removes it. Every static
// transmission opportunity therefore survives under the dynamic policy, and
// because each opportunity query (tdd/opportunity.hpp) is monotone in the
// direction map, the static analytic worst case (core/latency_model.hpp)
// remains a valid upper bound on the dynamic simulation by construction —
// the invariant test_analytic_vs_sim.cpp pins.
//
// The decision cycle: at the boundary of slot k the policy observes the
// cell's queue state and commits the format of slot k + guard_slots (the
// switching-latency guard — retuning and signalling need lead time). Demand
// is *excess backlog only* (retransmissions queued, SDUs beyond the one in
// flight): an isolated probe packet triggers zero upgrades, so enabling the
// policy on an unloaded cell perturbs nothing — the property that lets the
// differential sweep gate the dynamic sim at the same ≤1-symbol agreement
// as the static one.

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tdd/duplex_config.hpp"
#include "tdd/slot_format.hpp"

namespace u5g {

/// Policy knobs; lives in StackConfig as `dynamic_tdd` and participates in
/// the canonical identity (a dynamic query can never hit a static-pattern
/// cache entry).
struct DynamicTddConfig {
  bool enabled = false;
  /// Switching-latency guard: a decision at the boundary of slot k earliest
  /// affects slot k + guard_slots.
  int guard_slots = 1;
  /// A granted upgrade is held for this many slots past its grant, so
  /// traffic arriving just after a burst drains still benefits.
  int hold_slots = 4;
  /// At most this many consecutive slots may carry a DL upgrade; the policy
  /// then emits one clean slot, so added DL can never starve the static UL
  /// pattern beyond this window.
  int ul_guard_slots = 4;
  /// URLLC DL arrivals (UE 0) may puncture in-flight eMBB TBs (UEs >= 1).
  bool preemption = false;
  /// Cross-link interference: extra UL loss probability per unit of
  /// aggregate neighbouring-cell DL-upgrade activity (sharded engine).
  double xlink_ul_bler = 0.0;
};

/// MAC-observable queue state at a slot boundary, gathered from
/// E2eSystem::mac_backlog() and the per-UE RLC queues.
struct TddQueueState {
  std::uint32_t sr_pending = 0;      ///< UEs with an SR latched
  std::uint32_t cg_armed = 0;        ///< UEs with a configured-grant service queued
  std::uint32_t ul_retx_tbs = 0;     ///< queued UL HARQ retransmissions
  std::uint32_t ul_queued_sdus = 0;  ///< SDUs waiting in UL RLC queues
  std::uint32_t dl_queued_sdus = 0;  ///< SDUs waiting in gNB DL RLC queues
  std::uint32_t dl_inflight_tbs = 0; ///< DL TBs registered but not yet on the air
};

/// One committed per-slot decision: the *added* capability masks (bit s =
/// symbol s gains that direction on top of the static pattern). Lossless
/// text round trip via render()/parse() for logging and fuzzing.
struct DecidedFormat {
  static constexpr std::uint16_t kAllSymbols =
      static_cast<std::uint16_t>((1u << kSymbolsPerSlot) - 1u);

  std::uint16_t added_dl = 0;
  std::uint16_t added_ul = 0;

  [[nodiscard]] bool any() const { return (added_dl | added_ul) != 0; }
  /// 14 chars over {D, U, X, -}: the added capability of each symbol.
  [[nodiscard]] std::string render() const;
  /// Inverse of render(); nullopt on malformed input.
  [[nodiscard]] static std::optional<DecidedFormat> parse(std::string_view s);
  /// The effective slot format once the added masks overlay the static
  /// base masks: DL-only symbols render Downlink, UL-only Uplink, and
  /// both-capable (or neither) Flexible — the TS 38.213 reading where a
  /// flexible symbol awaits further dynamic signalling.
  [[nodiscard]] SlotFormat to_slot_format(std::uint16_t base_dl, std::uint16_t base_ul) const;

  friend bool operator==(const DecidedFormat&, const DecidedFormat&) = default;
};

/// The per-slot decision state machine. Pure and deterministic: no RNG, the
/// emitted sequence is a function of the (slot, queue-state) sequence alone.
/// decide() must be called once per slot boundary in increasing slot order.
class DynamicFormatPolicy {
 public:
  DynamicFormatPolicy(const DuplexConfig& base, const DynamicTddConfig& cfg);

  /// Observe `q` at the boundary of slot `k`; returns the format committed
  /// for slot k + guard_slots.
  [[nodiscard]] DecidedFormat decide(SlotIndex k, const TddQueueState& q);

  /// Excess-backlog demand signals: a single in-flight packet is *not*
  /// demand (sr_pending == 1 is the probe's own grant cycle; one queued SDU
  /// is the head being served).
  [[nodiscard]] static bool ul_demand(const TddQueueState& q) {
    return q.ul_retx_tbs > 0 || q.ul_queued_sdus > 1 || q.sr_pending > 1;
  }
  [[nodiscard]] static bool dl_demand(const TddQueueState& q) {
    return q.dl_queued_sdus > 1 || q.dl_inflight_tbs > 1;
  }

  /// Static direction masks of the base pattern for `slot` (bit s = sym s).
  [[nodiscard]] std::uint16_t base_dl_mask(SlotIndex slot) const;
  [[nodiscard]] std::uint16_t base_ul_mask(SlotIndex slot) const;

  /// Slots committed with at least one added symbol so far.
  [[nodiscard]] std::uint64_t upgraded_slots() const { return upgraded_; }
  [[nodiscard]] const DynamicTddConfig& config() const { return cfg_; }

 private:
  const DuplexConfig& base_;
  DynamicTddConfig cfg_;
  SlotIndex ul_hold_until_ = std::numeric_limits<SlotIndex>::min();
  SlotIndex dl_hold_until_ = std::numeric_limits<SlotIndex>::min();
  int dl_run_ = 0;  ///< consecutive emitted slots carrying a DL upgrade
  std::uint64_t upgraded_ = 0;
};

/// A DuplexConfig that overlays committed per-slot upgrades on a static
/// base. Uncommitted slots (past the horizon, or before t=0) fall back to
/// the base — conservative, and monotone by construction: dl_capable /
/// ul_capable are true whenever the base says so.
///
/// The overlay is aperiodic, so period_slots() reports the base skeleton's
/// period: callers that sweep "one period" sweep the static structure, which
/// is exactly the upper-bound semantics the analytic model needs. This type
/// is a runtime object of one simulation — cache identity stays with the
/// base pattern plus the DynamicTddConfig knobs, never with an overlay.
class DynamicDuplexConfig final : public DuplexConfig {
 public:
  explicit DynamicDuplexConfig(std::shared_ptr<const DuplexConfig> base);

  [[nodiscard]] bool dl_capable(SlotIndex slot, int sym) const override;
  [[nodiscard]] bool ul_capable(SlotIndex slot, int sym) const override;
  [[nodiscard]] int period_slots() const override { return base_->period_slots(); }
  [[nodiscard]] int control_granularity_symbols() const override {
    return base_->control_granularity_symbols();
  }
  [[nodiscard]] int control_symbols() const override { return base_->control_symbols(); }
  [[nodiscard]] std::string name() const override { return base_->name() + " + dynamic"; }

  /// Commit slot `slot`'s decision. Slots commit in increasing order; gaps
  /// are filled with empty overlays.
  void commit(SlotIndex slot, DecidedFormat f);
  /// First slot index not yet committed.
  [[nodiscard]] SlotIndex committed_through() const {
    return first_ + static_cast<SlotIndex>(overlay_.size());
  }
  /// The committed decision for `slot` (empty when none).
  [[nodiscard]] DecidedFormat committed(SlotIndex slot) const;
  [[nodiscard]] const DuplexConfig& base() const { return *base_; }

 private:
  std::shared_ptr<const DuplexConfig> base_;
  SlotIndex first_ = 0;                 ///< slot index of overlay_[0]
  std::vector<std::uint32_t> overlay_;  ///< added_dl | added_ul << 16
};

}  // namespace u5g
