#pragma once
// Per-cell bump arena for slot-scoped scratch memory.
//
// Batched slot execution needs short-lived arrays — cipher job descriptors,
// per-batch SDU pointer lists, staging room for subPDU walks — whose
// lifetime is exactly one slot. A freelist pool is overkill for that
// pattern: nothing survives the slot, so individual frees are wasted work.
// The arena carves slabs from the thread's `BufferPool` (layering under the
// existing pool rather than beside it), hands out pointer-bump allocations,
// and recycles *everything* with one `epoch_reset()` at the slot barrier —
// the reset is two integer stores, and warm epochs reuse the already-carved
// slabs so a batched slot touches the heap zero times.
//
// Exhaustion fallback: a request larger than one slab is served by a
// dedicated BufferPool block (which itself falls back to the heap above its
// largest class) and returned to the pool at the next epoch reset, so
// oversized one-offs work without growing the slab list.
//
// Not thread-safe; one arena per cell, used only on the thread running that
// cell's slot — the same ownership discipline as BufferPool::local().

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/buffer_pool.hpp"

namespace u5g {

class Arena {
 public:
  /// Slab granularity: big enough that a slot's scratch fits in one or two
  /// slabs, small enough that an idle cell pins little memory.
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    epoch_reset();
    for (BufferPool::Block* s : slabs_) pool().release(s);
  }

  /// `size` bytes aligned to `align` (a power of two), valid until the next
  /// epoch_reset(). Zero-size requests are allowed and return an aligned
  /// pointer into the current slab.
  [[nodiscard]] void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    stats_.bytes_served += size;
    if (size + align > kSlabBytes) {
      // Exhaustion fallback: too big to bump, borrow a dedicated block,
      // over-sized by `align` so the pointer can be aligned within it.
      BufferPool::Block* b = pool().acquire(size + align);
      oversize_.push_back(b);
      ++stats_.oversize;
      return align_up(b->data(), align);
    }
    // Align the absolute address, not the offset: a slab's payload starts
    // sizeof(Block) past the allocation, so offset alignment alone would
    // under-align any request stricter than the header size.
    for (;;) {
      if (cur_ < slabs_.size()) {
        std::uint8_t* p = align_up(slabs_[cur_]->data() + off_, align);
        const auto off = static_cast<std::size_t>(p - slabs_[cur_]->data());
        if (off + size <= kSlabBytes) {
          off_ = off + size;
          return p;
        }
      }
      if (cur_ + 1 < slabs_.size()) {
        ++cur_;
      } else {
        slabs_.push_back(pool().acquire(kSlabBytes));
        cur_ = slabs_.size() - 1;
        ++stats_.slab_acquires;
      }
      off_ = 0;
    }
  }

  /// Uninitialised storage for `n` objects of trivially-destructible `T`.
  /// The arena never runs destructors — epoch_reset() just forgets.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructor calls");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// End of slot: rewind to the first slab (retaining all slabs for the
  /// next epoch) and return oversize blocks to the pool.
  void epoch_reset() {
    cur_ = 0;
    off_ = 0;
    ++stats_.epochs;
    for (BufferPool::Block* b : oversize_) pool().release(b);
    oversize_.clear();
  }

  /// Bytes the arena can still serve this epoch without touching the pool.
  [[nodiscard]] std::size_t warm_capacity() const { return slabs_.size() * kSlabBytes; }

  struct Stats {
    std::uint64_t epochs = 0;         ///< epoch_reset() calls
    std::uint64_t slab_acquires = 0;  ///< slabs carved from the pool (cold)
    std::uint64_t oversize = 0;       ///< fallback allocations > kSlabBytes
    std::uint64_t bytes_served = 0;   ///< cumulative bytes handed out
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] static std::uint8_t* align_up(std::uint8_t* p, std::size_t align) {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    return p + ((align - (v & (align - 1))) & (align - 1));
  }

  /// Bound lazily so the arena draws slabs from the pool of the thread that
  /// actually runs the cell, not the thread that constructed it.
  [[nodiscard]] BufferPool& pool() {
    if (pool_ == nullptr) pool_ = &BufferPool::local();
    return *pool_;
  }

  BufferPool* pool_ = nullptr;
  std::vector<BufferPool::Block*> slabs_;
  std::vector<BufferPool::Block*> oversize_;
  std::size_t cur_ = 0;   ///< index of the slab being bumped
  std::size_t off_ = 0;   ///< bump offset within slabs_[cur_]
  Stats stats_;
};

}  // namespace u5g
