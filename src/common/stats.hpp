#pragma once
// Online statistics used by the measurement harnesses: running mean/std
// (Welford), fixed-bin histograms for latency distributions (Fig 6), and
// exact percentiles over retained samples for reliability analysis (§6).
//
// Every accumulator is mergeable: `a.merge(b)` equals having fed b's samples
// into `a` after a's own (for SampleSet, in b's insertion order). The
// parallel Monte-Carlo runner (sim/runner.hpp) relies on this to combine
// per-replication accumulators in index order, making merged statistics
// independent of the thread count.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace u5g {

/// Welford running mean / variance / min / max. Numerically stable; O(1) space.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  void add(Nanos t) { add(static_cast<double>(t.count())); }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance (σ² over the observed samples).
  [[nodiscard]] double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const auto n1 = static_cast<double>(n_), n2 = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    mean_ += d * n2 / (n1 + n2);
    m2_ += o.m2_ + d * d * n1 * n2 / (n1 + n2);
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so total mass is preserved. Bin probabilities reproduce the
/// paper's Fig 6 y-axis directly.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins, 0) {}

  void add(double x) {
    ++total_;
    if (x < lo_) { ++bins_.front(); return; }
    if (x >= hi_) { ++bins_.back(); return; }
    const auto i = static_cast<std::size_t>((x - lo_) / width());
    ++bins_[std::min(i, bins_.size() - 1)];
  }

  [[nodiscard]] double width() const { return (hi_ - lo_) / static_cast<double>(bins_.size()); }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_[i]; }
  [[nodiscard]] double bin_lo(std::size_t i) const { return lo_ + width() * static_cast<double>(i); }
  [[nodiscard]] double probability(std::size_t i) const {
    return total_ == 0 ? 0.0 : static_cast<double>(bins_[i]) / static_cast<double>(total_);
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Merge a histogram with the identical binning (lo, hi, bin count);
  /// throws std::invalid_argument on a geometry mismatch.
  void merge(const Histogram& o) {
    if (lo_ != o.lo_ || hi_ != o.hi_ || bins_.size() != o.bins_.size()) {
      throw std::invalid_argument{"Histogram::merge: binning mismatch"};
    }
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
    total_ += o.total_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Retains every sample; exact quantiles. URLLC reliability statements are
/// about extreme quantiles (99.999 %), where streaming estimators are too
/// coarse — latency experiments here are small enough to keep all samples.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  void add(Nanos t) { add(static_cast<double>(t.count())); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }

  /// Quantile q in [0,1], nearest-rank (q=1 is the maximum).
  [[nodiscard]] double quantile(double q) {
    sort();
    if (xs_.empty()) return 0.0;
    const auto r = static_cast<std::size_t>(q * static_cast<double>(xs_.size() - 1) + 0.5);
    return xs_[std::min(r, xs_.size() - 1)];
  }

  /// Fraction of samples <= threshold: the paper's "reliability at deadline".
  [[nodiscard]] double fraction_at_or_below(double threshold) const {
    if (xs_.empty()) return 0.0;
    std::size_t k = 0;
    for (double x : xs_) k += (x <= threshold) ? 1 : 0;
    return static_cast<double>(k) / static_cast<double>(xs_.size());
  }

  [[nodiscard]] double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  [[nodiscard]] double max() {
    sort();
    return xs_.empty() ? 0.0 : xs_.back();
  }
  [[nodiscard]] double min() {
    sort();
    return xs_.empty() ? 0.0 : xs_.front();
  }

  [[nodiscard]] const std::vector<double>& samples() const { return xs_; }

  /// Append another set's samples in their insertion order, so a merged set
  /// is byte-identical to one serial accumulation over the same stream.
  void merge(const SampleSet& o) {
    if (o.xs_.empty()) return;
    xs_.insert(xs_.end(), o.xs_.begin(), o.xs_.end());
    sorted_ = false;
  }

 private:
  void sort() {
    if (!sorted_) { std::sort(xs_.begin(), xs_.end()); sorted_ = true; }
  }
  std::vector<double> xs_;
  bool sorted_ = true;
};

}  // namespace u5g
