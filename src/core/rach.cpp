#include "core/rach.hpp"

#include "tdd/opportunity.hpp"

namespace u5g {

namespace {

void push(Timeline& tl, const char* label, Nanos a, Nanos b, LatencyCategory c) {
  if (b > a) tl.steps.push_back(TimelineStep{label, a, b, c});
}

/// First PRACH occasion at or after `t`: the first UL window of
/// `preamble_symbols` after the next PRACH grid point (the grid anchors the
/// occasion within each period).
std::optional<TxWindow> next_prach(const DuplexConfig& cfg, Nanos t, const RachConfig& rc) {
  const Nanos this_grid = align_down(t, rc.prach_periodicity);
  const auto w = next_ul_tx(cfg, this_grid, rc.preamble_symbols);
  if (w && w->start >= t) return w;
  Nanos from = align_up(t, rc.prach_periodicity);
  if (from == t) from = t + rc.prach_periodicity;
  return next_ul_tx(cfg, from, rc.preamble_symbols);
}

}  // namespace

Timeline trace_random_access(const DuplexConfig& cfg, Nanos t, const RachConfig& rc) {
  Timeline tl;
  tl.arrival = t;

  // msg1: preamble at the next PRACH occasion.
  const auto msg1 = next_prach(cfg, t, rc);
  if (!msg1) {
    tl.completion = t;
    tl.feasible = false;
    return tl;
  }
  push(tl, "wait for PRACH occasion", t, msg1->start, LatencyCategory::Protocol);
  push(tl, "msg1: preamble over the air", msg1->start, msg1->end, LatencyCategory::Protocol);

  // msg2: RAR on the next DL data window after detection.
  const Nanos detected = msg1->end + rc.gnb_detect;
  push(tl, "gNB preamble detection + RAR build", msg1->end, detected,
       LatencyCategory::Processing);
  const auto msg2 = next_dl_data(cfg, detected);
  if (!msg2) {
    tl.completion = detected;
    tl.feasible = false;
    return tl;
  }
  push(tl, "wait for RAR window", detected, msg2->start, LatencyCategory::Protocol);
  push(tl, "msg2: RAR over the air", msg2->start, msg2->end, LatencyCategory::Protocol);

  if (rc.msg3_symbols == 0) {
    // Two-step RACH: the exchange is complete.
    tl.completion = msg2->end + rc.gnb_resolve;
    push(tl, "contention resolution (2-step)", msg2->end, tl.completion,
         LatencyCategory::Processing);
    return tl;
  }

  // msg3: scheduled UL transmission after UE processing.
  const Nanos msg3_ready = msg2->end + rc.ue_msg3_prep;
  push(tl, "UE msg3 preparation", msg2->end, msg3_ready, LatencyCategory::Processing);
  const auto msg3 = next_ul_tx(cfg, msg3_ready, rc.msg3_symbols);
  if (!msg3) {
    tl.completion = msg3_ready;
    tl.feasible = false;
    return tl;
  }
  push(tl, "wait for msg3 grant window", msg3_ready, msg3->start, LatencyCategory::Protocol);
  push(tl, "msg3 over the air", msg3->start, msg3->end, LatencyCategory::Protocol);

  // msg4: contention resolution on DL.
  const Nanos resolved = msg3->end + rc.gnb_resolve;
  push(tl, "gNB contention resolution", msg3->end, resolved, LatencyCategory::Processing);
  const auto msg4 = next_dl_data(cfg, resolved);
  if (!msg4) {
    tl.completion = resolved;
    tl.feasible = false;
    return tl;
  }
  push(tl, "wait for msg4 window", resolved, msg4->start, LatencyCategory::Protocol);
  push(tl, "msg4 over the air", msg4->start, msg4->end, LatencyCategory::Protocol);
  tl.completion = msg4->end;
  return tl;
}

WorstCaseResult analyze_rach_worst_case(const DuplexConfig& cfg, const RachConfig& rc,
                                        int probes_per_period) {
  WorstCaseResult r;
  const Nanos base = align_up(cfg.period() * 8, rc.prach_periodicity);
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < probes_per_period; ++i) {
    const Nanos offset = rc.prach_periodicity * i / probes_per_period + Nanos{1};
    const Timeline tl = trace_random_access(cfg, base + offset, rc);
    if (!tl.feasible) {
      r.feasible = false;
      return r;
    }
    const Nanos lat = tl.latency();
    if (lat > r.worst) {
      r.worst = lat;
      r.worst_arrival_offset = offset;
    }
    if (lat < r.best) r.best = lat;
    sum += static_cast<double>(lat.count());
    ++n;
  }
  if (n > 0) r.mean = Nanos{static_cast<std::int64_t>(sum / n)};
  return r;
}

}  // namespace u5g
