#pragma once
// Host-to-radio-head bus models (§4 "radio latency", §6 Fig 5).
//
// The paper measures the latency of submitting IQ sample buffers to the
// radio over USB 2.0 and USB 3.0 and observes (a) a linear increase with
// buffer size and (b) spikes from OS scheduling of the submission process.
// `submit_latency` therefore is: fixed driver/URB overhead + per-sample cost
// + one OS-jitter draw.
//
// Note the per-sample cost models the *submission call* (driver memcpy, URB
// setup, DMA kick-off with asynchronous streaming), not the wire serialisation
// rate — which is why the measured slope in Fig 5 is far below the naive
// bytes/bandwidth figure. Calibration targets Fig 5's ranges: 2000–20000
// samples → ≈165–400 µs on USB 2.0 and ≈150–240 µs on USB 3.0.

#include <cstdint>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "os/jitter.hpp"

namespace u5g {

/// Static description of one bus technology.
struct BusParams {
  std::string name;
  Nanos base_overhead{};       ///< per-submission fixed cost
  Nanos per_sample{};          ///< marginal cost per IQ sample (sc16)
  JitterParams jitter = JitterParams::generic_kernel();

  static BusParams usb2() {
    return {"USB 2.0", Nanos{160'000}, Nanos{12}, JitterParams::generic_kernel()};
  }
  static BusParams usb3() {
    return {"USB 3.0", Nanos{148'000}, Nanos{5}, JitterParams::generic_kernel()};
  }
  static BusParams pcie() {
    return {"PCIe", Nanos{18'000}, Nanos{1}, JitterParams::generic_kernel()};
  }
  static BusParams ethernet_ecpri() {
    return {"Ethernet (eCPRI)", Nanos{55'000}, Nanos{2}, JitterParams::generic_kernel()};
  }

  /// Same bus with a real-time kernel driving it (ablation A4).
  [[nodiscard]] BusParams with_rt_kernel() const {
    BusParams p = *this;
    p.jitter = JitterParams::realtime_kernel();
    return p;
  }
};

/// Stochastic bus: deterministic affine cost + OS jitter.
class BusModel {
 public:
  BusModel(BusParams params, Rng rng)
      : p_(std::move(params)), jitter_(p_.jitter, rng) {}

  /// Cost without jitter — the Fig 5 "expected linear increase".
  [[nodiscard]] Nanos deterministic_latency(std::int64_t n_samples) const {
    return p_.base_overhead + p_.per_sample * n_samples;
  }

  /// One submission draw (deterministic part + jitter spike process).
  [[nodiscard]] Nanos submit_latency(std::int64_t n_samples) {
    return deterministic_latency(n_samples) + jitter_.sample();
  }

  [[nodiscard]] const BusParams& params() const { return p_; }

 private:
  BusParams p_;
  OsJitterModel jitter_;
};

}  // namespace u5g
