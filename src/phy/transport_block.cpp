#include "phy/transport_block.hpp"

#include <algorithm>
#include <cmath>

#include "phy/numerology.hpp"
#include "phy/tbs_table.hpp"

namespace u5g {

int data_re_count(const Allocation& alloc) {
  if (alloc.n_prb <= 0 || alloc.n_symbols <= 0) return 0;
  const int re_per_prb = kSubcarriersPerRb * alloc.n_symbols - alloc.dmrs_overhead_re;
  return std::max(0, re_per_prb) * alloc.n_prb;
}

int transport_block_size_bits(const Allocation& alloc, const McsEntry& mcs) {
  const int n_re = data_re_count(alloc);
  if (n_re == 0) return 0;
  const double n_info =
      n_re * mcs.code_rate() * bits_per_symbol(mcs.modulation) * alloc.n_layers;
  if (n_info < 24.0) return 0;
  // 38.214 quantisation, simplified: round down to a byte multiple, keep a
  // 24-bit CRC's worth of headroom out of the payload figure.
  const auto quantised = static_cast<int>(std::floor(n_info / 8.0)) * 8;
  return std::max(0, quantised - 24);
}

Segmentation segment_transport_block(int tbs_bits) {
  if (tbs_bits <= 0) return {0, 0};
  const int b = tbs_bits + 24;  // TB-level CRC24
  if (b <= kMaxCodeBlockBits) return {1, b};
  // Per-CB CRC24 added when segmented.
  const int c = (b + (kMaxCodeBlockBits - 24) - 1) / (kMaxCodeBlockBits - 24);
  const int per_block = (b + c * 24 + c - 1) / c;
  return {c, per_block};
}

int prbs_needed(int payload_bytes, int n_symbols, const McsEntry& mcs, int max_prb) {
  if (TbsTable::covers(mcs, n_symbols)) {
    return TbsTable::instance().prbs_needed(payload_bytes * 8, mcs, n_symbols, max_prb);
  }
  return prbs_needed_linear(payload_bytes, n_symbols, mcs, max_prb);
}

int prbs_needed_linear(int payload_bytes, int n_symbols, const McsEntry& mcs, int max_prb) {
  const int need_bits = payload_bytes * 8;
  for (int prb = 1; prb <= max_prb; ++prb) {
    Allocation a{.n_prb = prb, .n_symbols = n_symbols};
    if (transport_block_size_bits(a, mcs) >= need_bits) return prb;
  }
  return 0;
}

}  // namespace u5g
