// Example: cloud VR / AR streaming — the paper's intro motivates URLLC with
// "virtual and augmented reality (VR/AR)" [24] and low-latency benefits to
// gaming [44, 51]. A renderer in the edge cloud streams video frames
// *downlink* to a headset UE at 90 fps; each frame is far larger than one
// transport block, so RLC segments it across several DL windows and the
// frame is usable only when its last segment lands (motion-to-photon
// budget).

#include <cstdio>

#include "core/e2e_system.hpp"
#include "core/reliability.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kFrames = 400;
constexpr Nanos kFramePeriod{11'111'111};  // 90 fps

struct Outcome {
  std::size_t delivered;
  double mean_ms;
  double p99_ms;
  double in_budget_frac;
};

Outcome run(StackConfig cfg, std::size_t frame_bytes, Nanos budget) {
  cfg.payload_bytes = frame_bytes;
  cfg.dl_tb_slack = 256;
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < kFrames; ++i) {
    sys.send_downlink_at(kFramePeriod * i);
  }
  sys.run_until(kFramePeriod * (kFrames + 30));
  auto lat = sys.latency_samples_us(Direction::Downlink);
  const auto rel = evaluate_reliability(lat, kFrames, budget);
  return {lat.count(), lat.mean() / 1e3, lat.quantile(0.99) / 1e3, rel.fraction_within};
}

}  // namespace

int main() {
  std::printf("== Cloud VR streaming: 90 fps downlink frames, motion-to-photon budget ==\n\n");
  const Nanos budget = 8_ms;  // per-frame link budget within ~20 ms motion-to-photon
  std::printf("frame budget on the link: %.0f ms; %d frames per run\n\n", budget.ms(), kFrames);
  std::printf("   %-30s %10s | %9s %9s %12s\n", "configuration", "frame", "mean[ms]",
              "p99[ms]", "in-budget");

  struct Case {
    const char* label;
    StackConfig cfg;
    std::size_t frame_bytes;
  };
  Case cases[] = {
      {"testbed, 2 KB slices", StackConfig::testbed_grant_free(81), 2'000},
      {"testbed, 12 KB frames", StackConfig::testbed_grant_free(82), 12'000},
      {"URLLC design, 2 KB slices", StackConfig::urllc_design(83), 2'000},
      {"URLLC design, 12 KB frames", StackConfig::urllc_design(84), 12'000},
  };

  for (auto& c : cases) {
    const Outcome o = run(std::move(c.cfg), c.frame_bytes, budget);
    std::printf("   %-30s %7zu B | %9.2f %9.2f %11.1f%%\n", c.label, c.frame_bytes,
                o.mean_ms, o.p99_ms, o.in_budget_frac * 100);
  }

  std::printf("\nlarge frames segment across DL windows (watch mean grow with frame size);\n"
              "slicing the encoder output into smaller application units rides each DL\n"
              "window as it comes — the same protocol-geometry lesson as §5, applied to AR.\n");
  return 0;
}
