#pragma once
// Small vector: inline storage for the first N elements, heap beyond.
//
// The datapath builds short element lists per packet — MAC subPDUs in a
// transport block (1–3 entries), layer lists in a pipeline traversal — where
// a `std::vector` costs a heap allocation for two or three elements. SmallVec
// keeps up to N elements in the object and only spills to the heap past
// that, so the common case is allocation-free. Deliberately minimal: just
// the surface the datapath uses (push/emplace_back, iteration, indexing,
// clear), contiguous so it converts to `std::span`.

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

namespace u5g {

template <typename T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  SmallVec(SmallVec&& o) noexcept {
    size_ = o.size_;
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      capacity_ = o.capacity_;
      o.heap_ = nullptr;
      o.capacity_ = N;
      // The elements travelled with the heap block; o's inline buffer holds
      // no constructed objects, so o must not run destructors over it.
      o.size_ = 0;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (data() + i) T(std::move(o.data()[i]));
      }
      o.clear();
    }
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      this->~SmallVec();
      ::new (this) SmallVec(std::move(o));
    }
    return *this;
  }

  ~SmallVec() {
    clear();
    ::operator delete(heap_);
  }

  template <typename... CtorArgs>
  T& emplace_back(CtorArgs&&... args) {
    if (size_ == capacity_) grow();
    T* slot = ::new (data() + size_) T(std::forward<CtorArgs>(args)...);
    ++size_;
    return *slot;
  }
  void push_back(T&& v) { emplace_back(std::move(v)); }
  void push_back(const T& v) { emplace_back(v); }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data()[i].~T();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T* data() { return heap_ != nullptr ? heap_ : inline_ptr(); }
  [[nodiscard]] const T* data() const { return heap_ != nullptr ? heap_ : inline_ptr(); }
  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }
  [[nodiscard]] T& back() { return data()[size_ - 1]; }

  operator std::span<T>() { return {data(), size_}; }              // NOLINT
  operator std::span<const T>() const { return {data(), size_}; }  // NOLINT

 private:
  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* bigger = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (bigger + i) T(std::move(data()[i]));
      data()[i].~T();
    }
    ::operator delete(heap_);
    heap_ = bigger;
    capacity_ = new_cap;
  }

  T* inline_ptr() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* inline_ptr() const { return std::launder(reinterpret_cast<const T*>(inline_)); }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace u5g
