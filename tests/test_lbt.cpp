// Tests for NR-U Listen-Before-Talk channel access (phy/lbt.hpp) and its
// integration as the fourth traced latency source in the e2e system:
// CAT4 backoff determinism, CWS feedback dynamics, energy-detect gating,
// disabled-gate bitwise identity, span tiling with the ChannelAccess
// category, and sharded-engine determinism across worker counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/e2e_system.hpp"
#include "phy/lbt.hpp"
#include "sim/sharded.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

LbtConfig coex(Nanos busy, Nanos idle) {
  LbtConfig l;
  l.enabled = true;
  l.wifi_busy_mean = busy;
  l.wifi_idle_mean = idle;
  return l;
}

// ---------------------------------------------------------------------------
// LbtGate unit behaviour

TEST(LbtGateTest, Cat4AccessIsDeterministic) {
  const LbtConfig cfg = coex(Nanos{60'000}, Nanos{200'000});
  LbtGate a(cfg, 42);
  LbtGate b(cfg, 42);
  for (int i = 0; i < 300; ++i) {
    const Nanos wanted{static_cast<std::int64_t>(i) * 200'000};
    const LbtGate::Access ra = a.acquire(wanted, Nanos{30'000}, wanted);
    const LbtGate::Access rb = b.acquire(wanted, Nanos{30'000}, wanted);
    ASSERT_EQ(ra.start, rb.start) << "attempt " << i;
    ASSERT_EQ(ra.deferral, rb.deferral) << "attempt " << i;
    ASSERT_EQ(ra.collided, rb.collided) << "attempt " << i;
    EXPECT_GE(ra.deferral, cfg.defer);  // at least the initial defer, always
  }
  EXPECT_EQ(a.stats().deferral_total, b.stats().deferral_total);
  EXPECT_EQ(a.stats().hidden_collisions, b.stats().hidden_collisions);
  // A different seed draws a different backoff/interference history.
  LbtGate c(cfg, 43);
  Nanos total{};
  for (int i = 0; i < 300; ++i) {
    const Nanos wanted{static_cast<std::int64_t>(i) * 200'000};
    total += c.acquire(wanted, Nanos{30'000}, wanted).deferral;
  }
  EXPECT_NE(total, a.stats().deferral_total);
}

TEST(LbtGateTest, CwDoublesOnNackRatioAndResetsOnSuccess) {
  LbtConfig cfg;
  cfg.enabled = true;  // clear channel: CW dynamics only
  LbtGate g(cfg, 7);
  EXPECT_EQ(g.cw(), cfg.cw_min);

  // A full-NACK window doubles the CW at the next access evaluation.
  for (int i = 0; i < cfg.min_feedback; ++i) g.on_harq_feedback(true);
  (void)g.acquire(Nanos{1'000'000}, Nanos{10'000}, Nanos{1'000'000});
  EXPECT_EQ(g.cw(), std::min(2 * cfg.cw_min + 1, cfg.cw_max));
  EXPECT_EQ(g.stats().cw_doublings, 1u);

  // Another bad window: doubling saturates at cw_max.
  for (int i = 0; i < cfg.min_feedback; ++i) g.on_harq_feedback(true);
  (void)g.acquire(Nanos{2'000'000}, Nanos{10'000}, Nanos{2'000'000});
  EXPECT_EQ(g.cw(), cfg.cw_max);

  // Below-threshold NACK ratio (3/4 < 0.8) resets to cw_min.
  for (int i = 0; i < 3; ++i) g.on_harq_feedback(true);
  g.on_harq_feedback(false);
  (void)g.acquire(Nanos{3'000'000}, Nanos{10'000}, Nanos{3'000'000});
  EXPECT_EQ(g.cw(), cfg.cw_min);
  EXPECT_EQ(g.stats().cw_resets, 1u);

  // Too little feedback: no evaluation, the window keeps accumulating.
  for (int i = 0; i < cfg.min_feedback - 1; ++i) g.on_harq_feedback(true);
  (void)g.acquire(Nanos{4'000'000}, Nanos{10'000}, Nanos{4'000'000});
  EXPECT_EQ(g.cw(), cfg.cw_min);
}

TEST(LbtGateTest, EnergyDetectGatesWhatBusyMeans) {
  // All interference below the ED threshold: the CCA never senses busy, so
  // every deferral is exactly the defer + the drawn backoff countdown ...
  LbtConfig hidden = coex(Nanos{80'000}, Nanos{120'000});
  hidden.ed_threshold_dbm = -40.0;  // above wifi_energy_max_dbm = -45
  LbtGate blind(hidden, 11);
  const Nanos bound = hidden.defer + hidden.ed_slot * hidden.cw_max;
  std::uint64_t overlapped = 0;
  for (int i = 0; i < 400; ++i) {
    const Nanos wanted{static_cast<std::int64_t>(i) * 300'000};
    const LbtGate::Access a = blind.acquire(wanted, Nanos{30'000}, wanted);
    EXPECT_LE(a.deferral, bound);
    overlapped += a.collided ? 1u : 0u;
  }
  // ... and the interference it cannot see collides with its bursts instead.
  EXPECT_GT(overlapped, 0u);
  EXPECT_EQ(blind.stats().hidden_collisions, overlapped);

  // Same load, threshold below the energy floor: everything is sensed, the
  // gate waits out the bursts and defers far more in total.
  LbtConfig sensed = coex(Nanos{80'000}, Nanos{120'000});
  sensed.ed_threshold_dbm = -80.0;  // below wifi_energy_min_dbm = -75
  LbtGate careful(sensed, 11);
  for (int i = 0; i < 400; ++i) {
    const Nanos wanted{static_cast<std::int64_t>(i) * 300'000};
    (void)careful.acquire(wanted, Nanos{30'000}, wanted);
  }
  EXPECT_GT(careful.stats().deferral_total, blind.stats().deferral_total);
}

TEST(LbtGateTest, WifiBusyAccountingSurvivesPruning) {
  const LbtConfig cfg = coex(Nanos{50'000}, Nanos{150'000});
  // One gate queried once at the horizon; another driven through acquires
  // (which prune consumed intervals) first. The cumulative busy tally must
  // not depend on pruning.
  LbtGate oneshot(cfg, 99);
  LbtGate driven(cfg, 99);
  for (int i = 0; i < 200; ++i) {
    const Nanos wanted{static_cast<std::int64_t>(i) * 100'000};
    (void)driven.acquire(wanted, Nanos{20'000}, wanted);
  }
  const Nanos horizon{40'000'000};
  EXPECT_EQ(oneshot.wifi_busy_until(horizon), driven.wifi_busy_until(horizon));
  EXPECT_GT(driven.wifi_busy_until(horizon), Nanos{});
}

// ---------------------------------------------------------------------------
// E2e integration

std::vector<PacketRecord> run_testbed(const LbtConfig& lbt) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/7);
  cfg.lbt = lbt;
  E2eSystem sys(cfg);
  for (int i = 0; i < 16; ++i) sys.send_uplink_at(Nanos{i * 8'000'000LL});
  sys.run_until(Nanos{500'000'000});
  return sys.records();
}

TEST(LbtE2eTest, DisabledGateLeavesRunsBitIdentical) {
  // Every LBT knob may differ as long as `enabled` stays false: no gate is
  // built, no RNG stream exists, and the run is bitwise identical to a
  // default config — the pre-LBT goldens stay valid.
  LbtConfig knobs;
  knobs.cw_min = 5;
  knobs.cw_max = 15;
  knobs.wifi_busy_mean = Nanos{90'000};
  knobs.wifi_idle_mean = Nanos{110'000};
  knobs.tx_gap = Nanos{25'000};
  ASSERT_FALSE(knobs.enabled);
  const std::vector<PacketRecord> base = run_testbed(LbtConfig{});
  const std::vector<PacketRecord> with_knobs = run_testbed(knobs);
  ASSERT_EQ(base.size(), with_knobs.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].created, with_knobs[i].created);
    EXPECT_EQ(base[i].delivered, with_knobs[i].delivered);
    EXPECT_EQ(base[i].ok, with_knobs[i].ok);
    EXPECT_EQ(base[i].harq_transmissions, with_knobs[i].harq_transmissions);
  }

  StackConfig cfg = StackConfig::testbed_grant_free(7);
  E2eSystem sys(cfg);
  const LbtGate::Stats s = sys.lbt_stats();
  EXPECT_EQ(s.attempts, 0u);
  EXPECT_EQ(s.deferral_total, Nanos{});
  EXPECT_EQ(sys.wifi_busy_until(Nanos{1'000'000'000}), Nanos{});
}

TEST(LbtE2eTest, EnabledGateDefersEveryUplinkBurst) {
  StackConfig cfg = StackConfig::urllc_design(/*seed=*/5);
  cfg.lbt = coex(Nanos{}, Nanos{1'000'000});  // NR-U alone: clear channel
  E2eSystem sys(cfg);
  for (int i = 0; i < 24; ++i) sys.send_uplink_at(Nanos{1'000'000 + i * 500'000LL});
  sys.run_until(Nanos{200'000'000});
  const LbtGate::Stats s = sys.lbt_stats();
  EXPECT_GE(s.attempts, 24u);  // >= : HARQ retransmissions clear LBT too
  EXPECT_EQ(s.deferred, s.attempts);  // every access pays at least the defer
  EXPECT_GE(s.deferral_total, cfg.lbt.defer * 24);
  EXPECT_EQ(s.hidden_collisions, 0u);
  for (const PacketRecord& r : sys.records()) EXPECT_TRUE(r.ok);
}

TEST(LbtE2eTest, ChannelAccessSpansTileExactly) {
  // With LBT and interference on, every delivered packet's spans must still
  // tile [created, delivered] exactly — now across FOUR categories, with
  // the deferral attributed to ChannelAccess, never to an unattributed gap.
  StackConfig cfg = StackConfig::urllc_design(/*seed=*/5);
  cfg.lbt = coex(Nanos{60'000}, Nanos{240'000});
  cfg.trace.enabled = true;
  E2eSystem sys(cfg);
  // 8 ms spacing: one packet in flight at a time, the tracer's contract
  // (same pacing as the test_trace tiling tests).
  for (int i = 0; i < 32; ++i) sys.send_uplink_at(Nanos{1'000'000 + i * 8'000'000LL});
  sys.run_until(Nanos{500'000'000});

  Nanos channel_access_total{};
  std::size_t delivered = 0;
  for (const PacketRecord& r : sys.records()) {
    if (!r.ok) continue;  // a terminal drop closes its trace early
    ++delivered;
    Nanos categories{};
    for (LatencyCategory c : {LatencyCategory::Protocol, LatencyCategory::Processing,
                              LatencyCategory::Radio, LatencyCategory::ChannelAccess}) {
      categories += sys.tracer().category_total(r.seq, c);
    }
    EXPECT_EQ(r.latency(), categories) << "packet " << r.seq;
    EXPECT_EQ(r.latency(), sys.tracer().total(r.seq)) << "packet " << r.seq;
    channel_access_total += sys.tracer().category_total(r.seq, LatencyCategory::ChannelAccess);
  }
  ASSERT_GT(delivered, 0u);
  EXPECT_GT(channel_access_total, Nanos{});  // the fourth category is live
  for (const TraceSpan& s : sys.tracer().spans()) {
    EXPECT_NE(kUnattributedSpan, s.name)
        << "packet " << s.seq << " has an unattributed gap of " << s.duration().count() << " ns";
  }
}

TEST(LbtE2eTest, LossConservationIncludesCollisions) {
  // Hidden-interferer collisions feed HARQ like any channel loss; every
  // offered packet must end delivered or in an explicit drop bucket.
  StackConfig cfg = StackConfig::urllc_design(/*seed=*/9);
  cfg.lbt = coex(Nanos{90'000}, Nanos{110'000});  // heavy: collisions certain
  E2eSystem sys(cfg);
  const int offered = 200;
  for (int i = 0; i < offered; ++i) sys.send_uplink_at(Nanos{1'000'000 + i * 500'000LL});
  sys.run_until(Nanos{1'000'000 + offered * 500'000LL + 100'000'000LL});
  EXPECT_GT(sys.lbt_stats().hidden_collisions, 0u);
  std::uint64_t ok = 0;
  for (const PacketRecord& r : sys.records()) ok += r.ok ? 1 : 0;
  EXPECT_EQ(offered, static_cast<int>(ok + sys.harq_dropped_tbs() + sys.stranded_drops() +
                                      sys.pdcp_discards()));
}

// ---------------------------------------------------------------------------
// Sharded engine

struct ShardedRun {
  std::vector<double> ul_us;
  LbtGate::Stats lbt;
  std::uint64_t delivered = 0;
};

ShardedRun run_sharded(int workers) {
  StackConfig cfg = StackConfig::urllc_design(/*seed=*/3);
  cfg.num_cells = 4;
  cfg.lbt = coex(Nanos{60'000}, Nanos{240'000});
  ShardedEngine eng(cfg, ShardedOptions{workers});
  for (int cell = 0; cell < 4; ++cell) {
    for (int i = 0; i < 40; ++i) {
      eng.send_uplink_at(Nanos{1'000'000 + i * 500'000LL + cell * 7'000LL}, cell);
    }
  }
  eng.run_until(Nanos{120'000'000});
  ShardedRun out;
  out.ul_us = eng.latency_samples_us(Direction::Uplink).samples();
  out.lbt = eng.lbt_stats();
  out.delivered = eng.packets_delivered();
  return out;
}

TEST(LbtShardedTest, DeterministicAcrossWorkerCounts) {
  // Each cell owns an independent gate seeded from its cell seed; merged
  // results must be bitwise identical for 1, 2 and 8 workers.
  const ShardedRun one = run_sharded(1);
  EXPECT_GT(one.lbt.attempts, 0u);
  EXPECT_GT(one.lbt.deferral_total, Nanos{});
  for (int workers : {2, 8}) {
    const ShardedRun w = run_sharded(workers);
    EXPECT_EQ(one.delivered, w.delivered) << workers << " workers";
    EXPECT_EQ(one.ul_us, w.ul_us) << workers << " workers";
    EXPECT_EQ(one.lbt.attempts, w.lbt.attempts) << workers << " workers";
    EXPECT_EQ(one.lbt.deferral_total, w.lbt.deferral_total) << workers << " workers";
    EXPECT_EQ(one.lbt.hidden_collisions, w.lbt.hidden_collisions) << workers << " workers";
    EXPECT_EQ(one.lbt.nru_airtime, w.lbt.nru_airtime) << workers << " workers";
    EXPECT_EQ(one.lbt.wifi_overlap, w.lbt.wifi_overlap) << workers << " workers";
  }
}

}  // namespace
}  // namespace u5g
