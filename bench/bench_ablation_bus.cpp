// Ablation A5 (§4): the radio interface bus. "Radio latency varies
// significantly depending on the interface used, such as PCIe, Ethernet, or
// USB, to connect the RH to the processor running the 5G stack."
//
// Same testbed E2E run with four radio-head buses; the scheduler lead is
// adapted to each bus's nominal cost (as a real deployment would tune it).
// The four bus candidates run concurrently on the Monte-Carlo runner's pool;
// per-point seeds keep the legacy derivation (base seed + point index), so
// results are identical to the serial sweep at any thread count.

#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "core/e2e_system.hpp"
#include "sim/runner.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

struct Outcome {
  double dl_mean_ms;
  double dl_p99_ms;
  double ul_mean_ms;
};

Outcome run(const RadioHeadParams& rh, int packets, std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_free(seed);
  cfg.gnb_radio = rh;
  // Tune the staging lead to this bus: nominal slot-buffer cost + slack.
  RadioHead probe(rh, Rng{1});
  const Nanos nominal = probe.nominal_tx_latency(rh.sample_rate.samples_in(500_us));
  cfg.sched.radio_lead = nominal + 150_us;
  E2eSystem sys(std::move(cfg));
  Rng rng(seed + 9);
  const Nanos period = 2_ms;
  for (int i = 0; i < packets; ++i) {
    const Nanos base = period * (2 * i);
    const auto off = [&] {
      return Nanos{static_cast<std::int64_t>(rng.uniform() * static_cast<double>(period.count()))};
    };
    sys.send_downlink_at(base + off());
    sys.send_uplink_at(base + period + off());
  }
  sys.run_until(period * (2 * packets + 40));
  auto dl = sys.latency_samples_us(Direction::Downlink);
  auto ul = sys.latency_samples_us(Direction::Uplink);
  return {dl.mean() / 1e3, dl.quantile(0.99) / 1e3, ul.mean() / 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 1200;
  defaults.seed = 50;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== Ablation A5: radio-head bus vs end-to-end latency (testbed, grant-free) ==\n\n");
  std::printf("   %-20s %12s %12s %12s\n", "bus", "DL mean[ms]", "DL p99[ms]", "UL mean[ms]");

  struct Candidate {
    const char* name;
    RadioHeadParams rh;
  };
  const Candidate candidates[] = {
      {"USB 2.0 (B210)", RadioHeadParams::usrp_b210_usb2()},
      {"USB 3.0", RadioHeadParams::usrp_b210_usb3()},
      {"Ethernet (eCPRI)",
       RadioHeadParams{BusParams::ethernet_ecpri(), SampleRate{}, Nanos{20'000}, Nanos{25'000}}},
      {"PCIe", RadioHeadParams::pcie_sdr()},
  };

  const auto outcomes = run_replications(
      static_cast<int>(std::size(candidates)), opt.seed,
      [&](int i, std::uint64_t) {
        // Legacy per-point seeds (base + index): byte-identical to the
        // serial sweep regardless of the thread count.
        return run(candidates[static_cast<std::size_t>(i)].rh, opt.packets,
                   opt.seed + static_cast<std::uint64_t>(i));
      },
      {opt.threads});

  double usb2_mean = 0.0;
  double pcie_mean = 0.0;
  for (std::size_t i = 0; i < std::size(candidates); ++i) {
    const Outcome& o = outcomes[i];
    std::printf("   %-20s %12.3f %12.3f %12.3f\n", candidates[i].name, o.dl_mean_ms, o.dl_p99_ms,
                o.ul_mean_ms);
    if (i == 0) usb2_mean = o.dl_mean_ms;
    if (i + 1 == std::size(candidates)) pcie_mean = o.dl_mean_ms;
  }

  const bool ok = pcie_mean < usb2_mean;
  std::printf("\nPCIe beats USB 2.0 end to end (radio latency is a first-class bottleneck): %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
