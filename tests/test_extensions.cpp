// Tests for the §9 open-problem implementations: the analytical multi-UE
// latency model (X4) and predictive configured grants (X5).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/multi_ue_model.hpp"
#include "mac/predictive_cg.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// UL capacity

TEST(UlCapacityTest, DmTwoSymbolWindows) {
  // DM at µ2: 8 UL symbols per 0.5 ms period -> 4 two-symbol windows ->
  // 8000 windows/s.
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  EXPECT_NEAR(ul_windows_per_second(dm, 2), 8000.0, 1.0);
  EXPECT_NEAR(ul_windows_per_second(dm, 8), 2000.0, 1.0);  // one per period
  EXPECT_NEAR(ul_windows_per_second(dm, 9), 0.0, 1e-9);    // cannot fit
}

TEST(UlCapacityTest, FddIsDenser) {
  const FddConfig fdd{kMu2};
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  EXPECT_GT(ul_windows_per_second(fdd, 2), ul_windows_per_second(dm, 2) * 3);
}

// ---------------------------------------------------------------------------
// Multi-UE model

TEST(MultiUeModelTest, QueueTermGrowsWithLoad) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  MultiUeModelInput in;
  in.tx_symbols = 2;
  in.per_ue_packets_per_second = 400.0;
  Nanos prev = Nanos::zero();
  for (int n : {1, 2, 4, 8, 12}) {
    in.num_ues = n;
    const auto r = predict_multi_ue_latency(dm, in);
    ASSERT_TRUE(r.stable) << n;
    EXPECT_GE(r.queue_wait_mean, prev);
    EXPECT_EQ(r.total_mean, r.protocol_mean + r.queue_wait_mean);
    prev = r.queue_wait_mean;
  }
}

TEST(MultiUeModelTest, SaturationFlagged) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  MultiUeModelInput in;
  in.num_ues = 10;
  in.per_ue_packets_per_second = 1000.0;  // 10k > 8k capacity
  const auto r = predict_multi_ue_latency(dm, in);
  EXPECT_FALSE(r.stable);
  EXPECT_GT(r.utilisation, 1.0);
}

TEST(MultiUeModelTest, ProtocolTermMatchesAnalyticEngine) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  MultiUeModelInput in;
  in.num_ues = 1;
  in.per_ue_packets_per_second = 1.0;  // negligible load
  const auto r = predict_multi_ue_latency(dm, in);
  LatencyModelParams p;
  p.data_tx_symbols = 2;
  const auto wc = analyze_worst_case(dm, AccessMode::GrantFreeUl, p);
  EXPECT_EQ(r.protocol_mean, wc.mean);
  EXPECT_LT(r.queue_wait_mean, Nanos{1'000});
}

// ---------------------------------------------------------------------------
// Arrival predictor

TEST(ArrivalPredictorTest, LearnsExactPeriod) {
  ArrivalPredictor p;
  for (int i = 1; i <= 10; ++i) p.observe(1_ms * i);
  ASSERT_TRUE(p.warmed_up());
  EXPECT_EQ(p.period_estimate(), 1_ms);
  ASSERT_TRUE(p.predict_next().has_value());
  EXPECT_EQ(*p.predict_next(), 11_ms);
  EXPECT_EQ(p.jitter_estimate(), Nanos::zero());
}

TEST(ArrivalPredictorTest, NotWarmBeforeMinObservations) {
  ArrivalPredictor p{0.25, 3};
  p.observe(1_ms);
  p.observe(2_ms);
  EXPECT_FALSE(p.warmed_up());
  EXPECT_FALSE(p.predict_next().has_value());
  p.observe(3_ms);
  EXPECT_TRUE(p.warmed_up());
}

TEST(ArrivalPredictorTest, TracksJitteredPeriod) {
  ArrivalPredictor p;
  Rng rng(7);
  Nanos t = Nanos::zero();
  for (int i = 0; i < 200; ++i) {
    t += 1_ms + Nanos{static_cast<std::int64_t>(rng.normal(0.0, 30'000.0))};
    p.observe(t);
  }
  EXPECT_NEAR(p.period_estimate().us(), 1000.0, 40.0);
  // Jitter estimate reflects ~E|N(0, sqrt(2)*30us)| = 34us, loosely.
  EXPECT_GT(p.jitter_estimate().us(), 10.0);
  EXPECT_LT(p.jitter_estimate().us(), 90.0);
}

TEST(ArrivalPredictorTest, AdaptsToRateChange) {
  ArrivalPredictor p{0.25, 3};
  for (int i = 1; i <= 10; ++i) p.observe(1_ms * i);
  // The flow speeds up to 0.5 ms periods.
  Nanos t = 10_ms;
  for (int i = 0; i < 40; ++i) {
    t += 500_us;
    p.observe(t);
  }
  EXPECT_NEAR(p.period_estimate().us(), 500.0, 30.0);
}

// ---------------------------------------------------------------------------
// Predictive configured grant

TEST(PredictiveCgTest, ColdStartReturnsNothing) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  PredictiveConfiguredGrant pcg{UeId{1}, 2, 128, 60_us};
  EXPECT_FALSE(pcg.plan_next_occasion(dm, Nanos::zero()).has_value());
}

TEST(PredictiveCgTest, OccasionCoversPredictedArrival) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  PredictiveConfiguredGrant pcg{UeId{1}, 2, 128, 60_us};
  for (int i = 1; i <= 10; ++i) pcg.observe_arrival(1_ms * i);
  const auto occ = pcg.plan_next_occasion(dm, 10_ms + 1_us);
  ASSERT_TRUE(occ.has_value());
  // The occasion opens at or after the data would be ready (arrival at
  // 11 ms, stack lead 60 µs; zero jitter -> zero margin).
  EXPECT_GE(occ->tx_start, 11_ms + 60_us);
  // And within one TDD period of it (the next UL region).
  EXPECT_LE(occ->tx_start, 11_ms + 60_us + dm.period());
  EXPECT_TRUE(occ->configured);
}

TEST(PredictiveCgTest, MarginGrowsWithJitter) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  PredictiveConfiguredGrant calm{UeId{1}, 2, 128, 60_us};
  PredictiveConfiguredGrant noisy{UeId{1}, 2, 128, 60_us};
  Rng rng(9);
  Nanos tc = Nanos::zero();
  Nanos tn = Nanos::zero();
  for (int i = 0; i < 100; ++i) {
    tc += 1_ms;
    calm.observe_arrival(tc);
    tn += 1_ms + Nanos{static_cast<std::int64_t>(rng.normal(0.0, 80'000.0))};
    noisy.observe_arrival(tn);
  }
  const auto occ_calm = calm.plan_next_occasion(dm, tc);
  const auto occ_noisy = noisy.plan_next_occasion(dm, tn);
  ASSERT_TRUE(occ_calm && occ_noisy);
  // Relative to their predicted arrivals, the noisy flow's occasion sits
  // later (larger safety margin).
  const Nanos calm_offset = occ_calm->tx_start - (tc + 1_ms);
  const Nanos noisy_offset = occ_noisy->tx_start - (tn + noisy.predictor().period_estimate());
  EXPECT_GT(noisy_offset, calm_offset);
}

TEST(PredictiveCgTest, ReservationRateEqualsArrivalRate) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  PredictiveConfiguredGrant pcg{UeId{1}, 2, 128, 60_us};
  for (int i = 1; i <= 20; ++i) pcg.observe_arrival(2_ms * i);
  EXPECT_NEAR(pcg.reserved_windows_per_second(), 500.0, 5.0);
}

}  // namespace
}  // namespace u5g
