#pragma once
// Transport-block sizing (condensed TS 38.214 §5.1.3.2) and code-block
// segmentation (TS 38.212 §5.2.2). These determine how many bytes fit in a
// slot's allocation and how much work the encoder/decoder does, which feeds
// the PHY processing-time model.

#include <cstdint>

#include "phy/modulation.hpp"

namespace u5g {

/// Parameters of one scheduled allocation on the resource grid.
struct Allocation {
  int n_prb = 0;           ///< resource blocks across frequency
  int n_symbols = 0;       ///< OFDM symbols in time (<= 14)
  int n_layers = 1;        ///< MIMO layers
  int dmrs_overhead_re = 12;  ///< reference-signal REs per PRB (typ. one symbol)
};

/// Number of resource elements available for data in the allocation.
[[nodiscard]] int data_re_count(const Allocation& alloc);

/// Transport block size in bits for the allocation at the given MCS.
/// Follows the 38.214 procedure in spirit: REs → intermediate info bits →
/// quantised to byte-aligned sizes. Returns 0 for degenerate allocations.
[[nodiscard]] int transport_block_size_bits(const Allocation& alloc, const McsEntry& mcs);

/// LDPC code-block segmentation result.
struct Segmentation {
  int n_code_blocks = 0;
  int bits_per_block = 0;  ///< including per-block CRC when segmented
};

/// Max LDPC code block size (base graph 1).
inline constexpr int kMaxCodeBlockBits = 8448;

/// Segment a transport block of `tbs_bits` (+24-bit TB CRC) into code blocks.
[[nodiscard]] Segmentation segment_transport_block(int tbs_bits);

/// Smallest allocation (in PRBs) that fits `payload_bytes` within
/// `n_symbols` symbols at the given MCS; returns 0 if even one PRB overshoots
/// the requested ceiling `max_prb`. Binary-searches the memoized TBS table
/// (phy/tbs_table.hpp) for standard MCS entries and in-slot symbol counts;
/// falls back to the linear scan otherwise.
[[nodiscard]] int prbs_needed(int payload_bytes, int n_symbols, const McsEntry& mcs,
                              int max_prb = 273);

/// Reference O(max_prb) scan `prbs_needed` is verified against (also the
/// fallback for non-standard MCS entries or out-of-slot symbol counts).
[[nodiscard]] int prbs_needed_linear(int payload_bytes, int n_symbols, const McsEntry& mcs,
                                     int max_prb = 273);

}  // namespace u5g
