// Tests for the feasibility-query service (src/serve/) and its foundations:
// the canonical word stream + LRU cache (src/common/), DuplexConfig value
// identity, StackConfig::canonical_key / operator==, and the service's
// correctness contract — answers bit-identical to the offline analytic path
// for every Table 1 config x access mode, cache hits identical to cold
// misses, sim tails bitwise deterministic across 1/2/8 service threads, and
// LRU eviction never changing an answer.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/hashing.hpp"
#include "common/lru.hpp"
#include "core/feasibility.hpp"
#include "core/stack_config.hpp"
#include "serve/feasibility_service.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"

namespace u5g {
namespace {

bool same_worst_case(const WorstCaseResult& a, const WorstCaseResult& b) {
  return a.worst == b.worst && a.best == b.best && a.mean == b.mean &&
         a.worst_arrival_offset == b.worst_arrival_offset && a.feasible == b.feasible;
}

// ---------------------------------------------------------------------------
// CanonicalWords

TEST(CanonicalWordsTest, EqualStreamsEqualHashes) {
  CanonicalWords a;
  a.add(1);
  a.add_signed(-7);
  a.add_double(0.25);
  a.add_string("usb2");
  CanonicalWords b;
  b.add(1);
  b.add_signed(-7);
  b.add_double(0.25);
  b.add_string("usb2");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(CanonicalWordsTest, OrderIsSignificant) {
  CanonicalWords a;
  a.add(1);
  a.add(2);
  CanonicalWords b;
  b.add(2);
  b.add(1);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(CanonicalWordsTest, LengthPrefixedStringsDoNotAlias) {
  // "ab" + "c" must not equal "a" + "bc".
  CanonicalWords a;
  a.add_string("ab");
  a.add_string("c");
  CanonicalWords b;
  b.add_string("a");
  b.add_string("bc");
  EXPECT_NE(a, b);
}

TEST(CanonicalWordsTest, DoubleIdentityIsBitwise) {
  CanonicalWords a;
  a.add_double(0.0);
  CanonicalWords b;
  b.add_double(-0.0);
  EXPECT_NE(a, b);  // distinct bit patterns are distinct identities
}

// ---------------------------------------------------------------------------
// LruCache

TEST(LruCacheTest, InsertFindPromote) {
  LruCache<int, std::string> cache(2);
  cache.insert(1, "one");
  cache.insert(2, "two");
  ASSERT_NE(cache.find(1), nullptr);  // promotes 1 to MRU
  cache.insert(3, "three");           // evicts 2 (LRU)
  EXPECT_EQ(cache.find(2), nullptr);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(*cache.find(1), "one");
  ASSERT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, OverwritePromotesAndReplaces) {
  LruCache<int, int> cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(1, 11);  // overwrite promotes 1
  cache.insert(3, 30);  // evicts 2
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(*cache.find(1), 11);
  EXPECT_EQ(cache.find(2), nullptr);
}

TEST(LruCacheTest, ZeroCapacityCachesNothing) {
  LruCache<int, int> cache(0);
  cache.insert(1, 10);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, HitRateCounts) {
  LruCache<int, int> cache(4);
  cache.insert(1, 10);
  EXPECT_EQ(cache.find(1) != nullptr, true);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Duplex value identity

TEST(DuplexIdentityTest, EqualPatternsCompareEqualByValue) {
  const TddCommonConfig a = TddCommonConfig::dm(kMu2);
  const TddCommonConfig b = TddCommonConfig::dm(kMu2);
  EXPECT_NE(&a, &b);
  EXPECT_TRUE(value_equal(a, b));
  EXPECT_EQ(a.value_hash(), b.value_hash());
}

TEST(DuplexIdentityTest, DistinctPatternsDiffer) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const TddCommonConfig du = TddCommonConfig::du(kMu2);
  const FddConfig fdd(kMu2);
  EXPECT_FALSE(value_equal(dm, du));
  EXPECT_FALSE(value_equal(dm, fdd));
  EXPECT_NE(dm.value_hash(), du.value_hash());
}

TEST(DuplexIdentityTest, NumerologyParticipates) {
  const MiniSlotConfig a(kMu2, 2);
  const MiniSlotConfig b(kMu1, 2);
  EXPECT_FALSE(value_equal(a, b));
}

// ---------------------------------------------------------------------------
// StackConfig canonical identity

TEST(StackConfigIdentityTest, EqualConfigsShareKeyAndCompareEqual) {
  const StackConfig a = StackConfig::testbed_grant_free(7);
  const StackConfig b = StackConfig::testbed_grant_free(7);
  // Distinct shared_ptr instances to equal duplex patterns: identity is by
  // value, never by pointer.
  EXPECT_NE(a.duplex.get(), b.duplex.get());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(StackConfigIdentityTest, EveryKnobParticipates) {
  const StackConfig base = StackConfig::testbed_grant_free(7);
  StackConfig seed = base;
  seed.seed = 8;
  StackConfig loss = base;
  loss.channel_loss = 0.01;
  StackConfig ues = base;
  ues.num_ues = 2;
  StackConfig duplex = base;
  duplex.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  for (const StackConfig* c : {&seed, &loss, &ues, &duplex}) {
    EXPECT_FALSE(base == *c);
    EXPECT_NE(base.canonical_key(), c->canonical_key());
  }
}

TEST(StackConfigIdentityTest, ReplacingDuplexWithEqualValueKeepsKey) {
  const StackConfig a = StackConfig::testbed_grant_free(7);
  StackConfig b = a;
  b.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dddu(kMu1));
  ASSERT_NE(a.duplex.get(), b.duplex.get());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(StackConfigIdentityTest, DynamicTddKnobsParticipate) {
  // A dynamic-policy query must never hit a static-pattern cache entry: the
  // same stack with dynamic TDD switched on keys differently.
  const StackConfig base = StackConfig::testbed_grant_free(7);
  StackConfig dyn = base;
  dyn.dynamic_tdd.enabled = true;
  EXPECT_FALSE(base == dyn);
  EXPECT_NE(base.canonical_key(), dyn.canonical_key());

  // Every policy knob perturbs the key on its own.
  StackConfig guard = dyn;
  guard.dynamic_tdd.guard_slots = 2;
  StackConfig hold = dyn;
  hold.dynamic_tdd.hold_slots = 8;
  StackConfig ul_guard = dyn;
  ul_guard.dynamic_tdd.ul_guard_slots = 2;
  StackConfig preempt = dyn;
  preempt.dynamic_tdd.preemption = true;
  StackConfig xlink = dyn;
  xlink.dynamic_tdd.xlink_ul_bler = 0.1;
  for (const StackConfig* c : {&guard, &hold, &ul_guard, &preempt, &xlink}) {
    EXPECT_FALSE(dyn == *c);
    EXPECT_NE(dyn.canonical_key(), c->canonical_key());
  }

  // Equal policies still share a key, so dynamic queries cache normally.
  StackConfig same = base;
  same.dynamic_tdd.enabled = true;
  EXPECT_TRUE(dyn == same);
  EXPECT_EQ(dyn.canonical_key(), same.canonical_key());
}

// ---------------------------------------------------------------------------
// Service: analytic answers bit-identical to the offline path

TEST(FeasibilityServiceTest, BitIdenticalToOfflineForAllTable1Configs) {
  FeasibilityService service;
  auto cfgs = table1_configs();
  for (auto& cfg : cfgs) {
    const std::shared_ptr<const DuplexConfig> shared = std::move(cfg);
    for (AccessMode m :
         {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
      const WorstCaseResult direct = analyze_worst_case(*shared, m);
      const FeasibilityVerdict v =
          service.query(FeasibilityQuery::analytic(shared, m, kUrllcOneWayDeadline));
      EXPECT_TRUE(same_worst_case(v.worst_case, direct)) << shared->name();
      const bool direct_meets = direct.feasible && direct.worst <= kUrllcOneWayDeadline;
      EXPECT_EQ(v.meets_deadline, direct_meets) << shared->name();
    }
  }
}

TEST(FeasibilityServiceTest, WrapperMatchesServiceColumn) {
  FeasibilityService service;
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const FeasibilityColumn via_wrapper = evaluate_config(dm, kUrllcOneWayDeadline);
  const FeasibilityColumn via_service = service.evaluate_column(dm, kUrllcOneWayDeadline);
  ASSERT_EQ(via_wrapper.cells.size(), via_service.cells.size());
  for (std::size_t i = 0; i < via_wrapper.cells.size(); ++i) {
    EXPECT_TRUE(same_worst_case(via_wrapper.cells[i].worst_case, via_service.cells[i].worst_case));
    EXPECT_EQ(via_wrapper.cells[i].meets_deadline, via_service.cells[i].meets_deadline);
  }
}

TEST(FeasibilityServiceTest, CacheHitIdenticalToColdMiss) {
  FeasibilityService service;
  const auto cfg = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  const FeasibilityQuery q = FeasibilityQuery::analytic(cfg, AccessMode::GrantFreeUl);
  const FeasibilityVerdict cold = service.query(q);
  EXPECT_FALSE(cold.analytic_cache_hit);
  const FeasibilityVerdict warm = service.query(q);
  EXPECT_TRUE(warm.analytic_cache_hit);
  EXPECT_TRUE(same_worst_case(cold.worst_case, warm.worst_case));
  EXPECT_EQ(cold.meets_deadline, warm.meets_deadline);
}

TEST(FeasibilityServiceTest, EqualValueDistinctPointersShareCacheEntry) {
  FeasibilityService service;
  const auto a = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  const auto b = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  (void)service.query(FeasibilityQuery::analytic(a, AccessMode::GrantFreeUl));
  const FeasibilityVerdict v = service.query(FeasibilityQuery::analytic(b, AccessMode::GrantFreeUl));
  EXPECT_TRUE(v.analytic_cache_hit);  // keyed by value, not pointer
}

TEST(FeasibilityServiceTest, DeadlineDoesNotMissTheCache) {
  FeasibilityService service;
  const auto cfg = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  (void)service.query(FeasibilityQuery::analytic(cfg, AccessMode::GrantFreeUl, Nanos{500'000}));
  const FeasibilityVerdict v =
      service.query(FeasibilityQuery::analytic(cfg, AccessMode::GrantFreeUl, Nanos{1'000'000}));
  EXPECT_TRUE(v.analytic_cache_hit);  // the worst case is deadline-free
}

TEST(FeasibilityServiceTest, BatchAndAsyncMatchSync) {
  FeasibilityService service;
  std::vector<std::shared_ptr<const DuplexConfig>> cfgs;
  for (auto& c : table1_configs()) cfgs.emplace_back(std::move(c));
  QueryBatch batch;
  for (const auto& cfg : cfgs) {
    for (AccessMode m :
         {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
      batch.push_back(FeasibilityQuery::analytic(cfg, m));
    }
  }
  FeasibilityService fresh;
  std::vector<FeasibilityVerdict> sync;
  sync.reserve(batch.size());
  for (const FeasibilityQuery& q : batch) sync.push_back(fresh.query(q));

  const std::vector<FeasibilityVerdict> batched = service.query_batch(batch);
  ASSERT_EQ(batched.size(), sync.size());
  for (std::size_t i = 0; i < sync.size(); ++i) {
    EXPECT_TRUE(same_worst_case(batched[i].worst_case, sync[i].worst_case));
    EXPECT_EQ(batched[i].meets_deadline, sync[i].meets_deadline);
  }

  std::future<FeasibilityVerdict> fut = service.query_async(batch[0]);
  EXPECT_TRUE(same_worst_case(fut.get().worst_case, sync[0].worst_case));

  std::promise<std::vector<FeasibilityVerdict>> done;
  auto done_fut = done.get_future();
  service.query_batch_async(
      batch, [&done](std::vector<FeasibilityVerdict> vs) { done.set_value(std::move(vs)); });
  const std::vector<FeasibilityVerdict> cb = done_fut.get();
  ASSERT_EQ(cb.size(), sync.size());
  for (std::size_t i = 0; i < sync.size(); ++i) {
    EXPECT_TRUE(same_worst_case(cb[i].worst_case, sync[i].worst_case));
  }
}

// ---------------------------------------------------------------------------
// Service: sim-tail fallback

TEST(FeasibilityServiceTest, SimTailDeterministicAcrossServiceThreads) {
  double reference = 0.0;
  for (int threads : {1, 2, 8}) {
    FeasibilityService::Options o;
    o.sim_threads = threads;
    FeasibilityService service(o);
    const FeasibilityQuery q = FeasibilityQuery::with_tail(
        StackConfig::testbed_grant_free(7), AccessMode::GrantFreeUl, Nanos{5'000'000},
        /*replications=*/3, /*packets=*/8, /*quantile=*/0.99);
    const FeasibilityVerdict v = service.query(q);
    ASSERT_TRUE(v.tail.has_value());
    EXPECT_GT(v.tail->reliability.delivered, 0u);
    if (threads == 1) {
      reference = v.tail->quantile_latency_us;
    } else {
      EXPECT_EQ(v.tail->quantile_latency_us, reference) << "threads=" << threads;
    }
  }
}

TEST(FeasibilityServiceTest, SimTailWarmHitIdenticalToColdMiss) {
  FeasibilityService service;
  const FeasibilityQuery q = FeasibilityQuery::with_tail(
      StackConfig::testbed_grant_free(7), AccessMode::GrantFreeUl, Nanos{5'000'000},
      /*replications=*/2, /*packets=*/8, /*quantile=*/0.99);
  const FeasibilityVerdict cold = service.query(q);
  ASSERT_TRUE(cold.tail.has_value());
  EXPECT_FALSE(cold.tail_cache_hit);
  const FeasibilityVerdict warm = service.query(q);
  ASSERT_TRUE(warm.tail.has_value());
  EXPECT_TRUE(warm.tail_cache_hit);
  EXPECT_EQ(cold.tail->quantile_latency_us, warm.tail->quantile_latency_us);
  EXPECT_EQ(cold.tail->reliability.fraction_within, warm.tail->reliability.fraction_within);
}

TEST(FeasibilityServiceTest, TailSamplesAnswerAnyQuantile) {
  // Same stack, different quantile: second query must hit the tail cache
  // (the cache stores the merged sample set, not a verdict).
  FeasibilityService service;
  FeasibilityQuery q = FeasibilityQuery::with_tail(StackConfig::testbed_grant_free(7),
                                                   AccessMode::GrantFreeUl, Nanos{5'000'000},
                                                   /*replications=*/2, /*packets=*/8,
                                                   /*quantile=*/0.99);
  (void)service.query(q);
  q.tail->quantile = 0.5;
  q.deadline = Nanos{4'000'000};
  const FeasibilityVerdict v = service.query(q);
  EXPECT_TRUE(v.tail_cache_hit);
  EXPECT_EQ(v.tail->quantile, 0.5);
}

// ---------------------------------------------------------------------------
// Service: LRU eviction never changes answers

TEST(FeasibilityServiceTest, EvictionNeverChangesAnswers) {
  FeasibilityService::Options tiny;
  tiny.analytic_cache_capacity = 2;  // 15 distinct keys fight over 2 slots
  FeasibilityService service(tiny);
  FeasibilityService unbounded;

  std::vector<std::shared_ptr<const DuplexConfig>> cfgs;
  for (auto& c : table1_configs()) cfgs.emplace_back(std::move(c));
  for (int round = 0; round < 3; ++round) {
    for (const auto& cfg : cfgs) {
      for (AccessMode m :
           {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
        const FeasibilityQuery q = FeasibilityQuery::analytic(cfg, m);
        const FeasibilityVerdict thrashed = service.query(q);
        const FeasibilityVerdict cached = unbounded.query(q);
        EXPECT_TRUE(same_worst_case(thrashed.worst_case, cached.worst_case))
            << cfg->name() << " round " << round;
      }
    }
  }
  EXPECT_GT(service.stats().evictions, 0u);  // the tiny cache really thrashed
}

TEST(FeasibilityServiceTest, StatsCountQueries) {
  FeasibilityService service;
  const auto cfg = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  (void)service.query(FeasibilityQuery::analytic(cfg, AccessMode::GrantFreeUl));
  (void)service.query(FeasibilityQuery::analytic(cfg, AccessMode::GrantFreeUl));
  const FeasibilityService::Stats s = service.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.analytic_hits, 1u);
  EXPECT_EQ(s.analytic_misses, 1u);
  EXPECT_DOUBLE_EQ(s.analytic_hit_rate(), 0.5);
}

}  // namespace
}  // namespace u5g
