#include "pdcp/cipher.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace u5g {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Per-(ctx, count) keystream base; one add + mix yields each block's word.
std::uint64_t ks_base(const CipherContext& ctx, std::uint32_t count) {
  return ctx.key ^ (static_cast<std::uint64_t>(count) << 32) ^
         (static_cast<std::uint64_t>(ctx.bearer) << 8) ^ (ctx.downlink ? 1u : 0u);
}

/// SplitMix64-based per-block keystream word.
std::uint64_t ks_word(std::uint64_t base, std::uint64_t block) {
  std::uint64_t x = base + (block + 1) * kGolden;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv_seed(const CipherContext& ctx, std::uint32_t count) {
  return 0xcbf29ce484222325ULL ^ ctx.key ^ count ^
         (static_cast<std::uint64_t>(ctx.bearer) << 40) ^ (ctx.downlink ? 2u : 0u);
}

/// Load 8 payload bytes as the little-endian word the byte-serial FNV loop
/// would consume LSB first.
std::uint64_t load_le64(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    return chunk;
  } else {
    std::uint64_t chunk = 0;
    for (std::size_t k = 8; k > 0; --k) chunk = (chunk << 8) | p[k - 1];
    return chunk;
  }
}

/// Eight byte-steps of FNV-1a fed from a register.
std::uint64_t fnv8(std::uint64_t h, std::uint64_t chunk) {
  for (std::size_t k = 0; k < 8; ++k) {
    h ^= chunk & 0xFF;
    h *= kFnvPrime;
    chunk >>= 8;
  }
  return h;
}

/// Scalar FNV over `[i, n)` of `p`, continuing hash state `h`.
std::uint64_t fnv_range(std::uint64_t h, const std::uint8_t* p, std::size_t i, std::size_t n) {
  for (; i + 8 <= n; i += 8) h = fnv8(h, load_le64(p + i));
  for (; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint32_t fnv_finish(std::uint64_t h) { return static_cast<std::uint32_t>(h ^ (h >> 32)); }

/// Scalar keystream XOR over `[i, n)` of `p` for per-packet `base`.
void ks_range(std::uint64_t base, std::uint8_t* p, std::size_t i, std::size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= n; i += 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, p + i, 8);
      chunk ^= ks_word(base, i / 8);
      std::memcpy(p + i, &chunk, 8);
    }
  } else {
    for (; i + 8 <= n; i += 8) {
      std::uint64_t word = ks_word(base, i / 8);
      for (std::size_t k = 0; k < 8; ++k) {
        p[i + k] ^= static_cast<std::uint8_t>(word);
        word >>= 8;
      }
    }
  }
  if (i < n) {
    std::uint64_t word = ks_word(base, i / 8);
    for (; i < n; ++i) {
      p[i] ^= static_cast<std::uint8_t>(word);
      word >>= 8;
    }
  }
}

}  // namespace

void apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx, std::uint32_t count) {
  // One keystream word covers 8 payload bytes with byte k of the word (LSB
  // first) XORed into byte 8*block + k — the word-wise body is bit-identical
  // to that per-byte definition.
  ks_range(ks_base(ctx, count), data.data(), 0, data.size());
}

std::uint32_t integrity_tag(std::span<const std::uint8_t> data, const CipherContext& ctx,
                            std::uint32_t count) {
  // FNV-1a is inherently sequential (each multiply feeds the next XOR), so
  // the single-packet win is memory traffic — load 8 bytes in one go and
  // feed the hash from a register. Cross-packet parallelism lives in
  // integrity_tag_batch.
  return fnv_finish(fnv_range(fnv_seed(ctx, count), data.data(), 0, data.size()));
}

void apply_keystream_batch(std::span<const CipherJob> jobs, const CipherContext& ctx) {
  std::size_t j = 0;
  for (; j + 4 <= jobs.size(); j += 4) {
    const CipherJob* q = jobs.data() + j;
    std::uint8_t* p0 = q[0].data.data();
    std::uint8_t* p1 = q[1].data.data();
    std::uint8_t* p2 = q[2].data.data();
    std::uint8_t* p3 = q[3].data.data();
    const std::uint64_t b0 = ks_base(ctx, q[0].count);
    const std::uint64_t b1 = ks_base(ctx, q[1].count);
    const std::uint64_t b2 = ks_base(ctx, q[2].count);
    const std::uint64_t b3 = ks_base(ctx, q[3].count);
    const std::size_t words =
        std::min(std::min(q[0].data.size(), q[1].data.size()),
                 std::min(q[2].data.size(), q[3].data.size())) /
        8;
    if constexpr (std::endian::native == std::endian::little) {
      for (std::size_t w = 0; w < words; ++w) {
        // Four independent mix chains per iteration: the multiplies of one
        // lane hide behind the loads and XORs of the others.
        std::uint64_t c0, c1, c2, c3;
        std::memcpy(&c0, p0 + 8 * w, 8);
        std::memcpy(&c1, p1 + 8 * w, 8);
        std::memcpy(&c2, p2 + 8 * w, 8);
        std::memcpy(&c3, p3 + 8 * w, 8);
        c0 ^= ks_word(b0, w);
        c1 ^= ks_word(b1, w);
        c2 ^= ks_word(b2, w);
        c3 ^= ks_word(b3, w);
        std::memcpy(p0 + 8 * w, &c0, 8);
        std::memcpy(p1 + 8 * w, &c1, 8);
        std::memcpy(p2 + 8 * w, &c2, 8);
        std::memcpy(p3 + 8 * w, &c3, 8);
      }
    } else {
      for (std::size_t w = 0; w < words; ++w) {
        for (int l = 0; l < 4; ++l) ks_range(ks_base(ctx, q[l].count), q[l].data.data(), 8 * w, 8 * w + 8);
      }
    }
    ks_range(b0, p0, words * 8, q[0].data.size());
    ks_range(b1, p1, words * 8, q[1].data.size());
    ks_range(b2, p2, words * 8, q[2].data.size());
    ks_range(b3, p3, words * 8, q[3].data.size());
  }
  for (; j < jobs.size(); ++j) apply_keystream(jobs[j].data, ctx, jobs[j].count);
}

void protect_payload_batch(std::span<const CipherJob> jobs, const CipherContext& ctx,
                           std::span<std::uint32_t> tags_out) {
  std::size_t j = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; j + 4 <= jobs.size(); j += 4) {
      const CipherJob* q = jobs.data() + j;
      std::uint8_t* p0 = q[0].data.data();
      std::uint8_t* p1 = q[1].data.data();
      std::uint8_t* p2 = q[2].data.data();
      std::uint8_t* p3 = q[3].data.data();
      const std::uint64_t b0 = ks_base(ctx, q[0].count);
      const std::uint64_t b1 = ks_base(ctx, q[1].count);
      const std::uint64_t b2 = ks_base(ctx, q[2].count);
      const std::uint64_t b3 = ks_base(ctx, q[3].count);
      std::uint64_t h0 = fnv_seed(ctx, q[0].count);
      std::uint64_t h1 = fnv_seed(ctx, q[1].count);
      std::uint64_t h2 = fnv_seed(ctx, q[2].count);
      std::uint64_t h3 = fnv_seed(ctx, q[3].count);
      const std::size_t words =
          std::min(std::min(q[0].data.size(), q[1].data.size()),
                   std::min(q[2].data.size(), q[3].data.size())) /
          8;
      for (std::size_t w = 0; w < words; ++w) {
        // One traversal: cipher the word, store it, hash the stored value.
        // The four lanes' FNV multiply chains stay independent, so they
        // still overlap exactly as in integrity_tag_batch.
        std::uint64_t c0, c1, c2, c3;
        std::memcpy(&c0, p0 + 8 * w, 8);
        std::memcpy(&c1, p1 + 8 * w, 8);
        std::memcpy(&c2, p2 + 8 * w, 8);
        std::memcpy(&c3, p3 + 8 * w, 8);
        c0 ^= ks_word(b0, w);
        c1 ^= ks_word(b1, w);
        c2 ^= ks_word(b2, w);
        c3 ^= ks_word(b3, w);
        std::memcpy(p0 + 8 * w, &c0, 8);
        std::memcpy(p1 + 8 * w, &c1, 8);
        std::memcpy(p2 + 8 * w, &c2, 8);
        std::memcpy(p3 + 8 * w, &c3, 8);
        h0 = fnv8(h0, c0);
        h1 = fnv8(h1, c1);
        h2 = fnv8(h2, c2);
        h3 = fnv8(h3, c3);
      }
      ks_range(b0, p0, words * 8, q[0].data.size());
      ks_range(b1, p1, words * 8, q[1].data.size());
      ks_range(b2, p2, words * 8, q[2].data.size());
      ks_range(b3, p3, words * 8, q[3].data.size());
      tags_out[j + 0] = fnv_finish(fnv_range(h0, p0, words * 8, q[0].data.size()));
      tags_out[j + 1] = fnv_finish(fnv_range(h1, p1, words * 8, q[1].data.size()));
      tags_out[j + 2] = fnv_finish(fnv_range(h2, p2, words * 8, q[2].data.size()));
      tags_out[j + 3] = fnv_finish(fnv_range(h3, p3, words * 8, q[3].data.size()));
    }
  }
  for (; j < jobs.size(); ++j) {
    apply_keystream(jobs[j].data, ctx, jobs[j].count);
    tags_out[j] = integrity_tag(jobs[j].data, ctx, jobs[j].count);
  }
}

void verify_decipher_batch(std::span<const CipherJob> jobs, const CipherContext& ctx,
                           std::span<std::uint32_t> tags_out) {
  std::size_t j = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; j + 4 <= jobs.size(); j += 4) {
      const CipherJob* q = jobs.data() + j;
      std::uint8_t* p0 = q[0].data.data();
      std::uint8_t* p1 = q[1].data.data();
      std::uint8_t* p2 = q[2].data.data();
      std::uint8_t* p3 = q[3].data.data();
      const std::uint64_t b0 = ks_base(ctx, q[0].count);
      const std::uint64_t b1 = ks_base(ctx, q[1].count);
      const std::uint64_t b2 = ks_base(ctx, q[2].count);
      const std::uint64_t b3 = ks_base(ctx, q[3].count);
      std::uint64_t h0 = fnv_seed(ctx, q[0].count);
      std::uint64_t h1 = fnv_seed(ctx, q[1].count);
      std::uint64_t h2 = fnv_seed(ctx, q[2].count);
      std::uint64_t h3 = fnv_seed(ctx, q[3].count);
      const std::size_t words =
          std::min(std::min(q[0].data.size(), q[1].data.size()),
                   std::min(q[2].data.size(), q[3].data.size())) /
          8;
      for (std::size_t w = 0; w < words; ++w) {
        // Hash the ciphered word as loaded, then decipher-store it.
        std::uint64_t c0, c1, c2, c3;
        std::memcpy(&c0, p0 + 8 * w, 8);
        std::memcpy(&c1, p1 + 8 * w, 8);
        std::memcpy(&c2, p2 + 8 * w, 8);
        std::memcpy(&c3, p3 + 8 * w, 8);
        h0 = fnv8(h0, c0);
        h1 = fnv8(h1, c1);
        h2 = fnv8(h2, c2);
        h3 = fnv8(h3, c3);
        c0 ^= ks_word(b0, w);
        c1 ^= ks_word(b1, w);
        c2 ^= ks_word(b2, w);
        c3 ^= ks_word(b3, w);
        std::memcpy(p0 + 8 * w, &c0, 8);
        std::memcpy(p1 + 8 * w, &c1, 8);
        std::memcpy(p2 + 8 * w, &c2, 8);
        std::memcpy(p3 + 8 * w, &c3, 8);
      }
      // Tails: tag over the still-ciphered bytes first, then decipher them.
      tags_out[j + 0] = fnv_finish(fnv_range(h0, p0, words * 8, q[0].data.size()));
      tags_out[j + 1] = fnv_finish(fnv_range(h1, p1, words * 8, q[1].data.size()));
      tags_out[j + 2] = fnv_finish(fnv_range(h2, p2, words * 8, q[2].data.size()));
      tags_out[j + 3] = fnv_finish(fnv_range(h3, p3, words * 8, q[3].data.size()));
      ks_range(b0, p0, words * 8, q[0].data.size());
      ks_range(b1, p1, words * 8, q[1].data.size());
      ks_range(b2, p2, words * 8, q[2].data.size());
      ks_range(b3, p3, words * 8, q[3].data.size());
    }
  }
  for (; j < jobs.size(); ++j) {
    tags_out[j] = integrity_tag(jobs[j].data, ctx, jobs[j].count);
    apply_keystream(jobs[j].data, ctx, jobs[j].count);
  }
}

void integrity_tag_batch(std::span<const IntegrityJob> jobs, const CipherContext& ctx,
                         std::span<std::uint32_t> tags_out) {
  std::size_t j = 0;
  for (; j + 4 <= jobs.size(); j += 4) {
    const IntegrityJob* q = jobs.data() + j;
    const std::uint8_t* p0 = q[0].data.data();
    const std::uint8_t* p1 = q[1].data.data();
    const std::uint8_t* p2 = q[2].data.data();
    const std::uint8_t* p3 = q[3].data.data();
    std::uint64_t h0 = fnv_seed(ctx, q[0].count);
    std::uint64_t h1 = fnv_seed(ctx, q[1].count);
    std::uint64_t h2 = fnv_seed(ctx, q[2].count);
    std::uint64_t h3 = fnv_seed(ctx, q[3].count);
    const std::size_t words =
        std::min(std::min(q[0].data.size(), q[1].data.size()),
                 std::min(q[2].data.size(), q[3].data.size())) /
        8;
    for (std::size_t w = 0; w < words; ++w) {
      // The four FNV multiply chains are independent, so their ~5-cycle
      // multiply latencies overlap — this is where the batch's ~4x on long
      // payloads comes from.
      h0 = fnv8(h0, load_le64(p0 + 8 * w));
      h1 = fnv8(h1, load_le64(p1 + 8 * w));
      h2 = fnv8(h2, load_le64(p2 + 8 * w));
      h3 = fnv8(h3, load_le64(p3 + 8 * w));
    }
    tags_out[j + 0] = fnv_finish(fnv_range(h0, p0, words * 8, q[0].data.size()));
    tags_out[j + 1] = fnv_finish(fnv_range(h1, p1, words * 8, q[1].data.size()));
    tags_out[j + 2] = fnv_finish(fnv_range(h2, p2, words * 8, q[2].data.size()));
    tags_out[j + 3] = fnv_finish(fnv_range(h3, p3, words * 8, q[3].data.size()));
  }
  for (; j < jobs.size(); ++j) tags_out[j] = integrity_tag(jobs[j].data, ctx, jobs[j].count);
}

}  // namespace u5g
