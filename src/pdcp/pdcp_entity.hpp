#pragma once
// PDCP layer (TS 38.323): sequence numbering, ciphering, integrity
// protection, and receive-side reordering with in-order delivery.
//
// In the ping journey (§3) PDCP is "the encryption layer". For latency it
// matters twice: its processing time (Table 2: 8.29 µs mean at the gNB) and
// — under loss — its reordering wait, which trades latency for in-order
// delivery exactly as §6 describes for reliability mechanisms.

#include <cstdint>
#include <map>
#include <optional>
#include <span>

#include "common/bytes.hpp"
#include "common/delivery.hpp"
#include "pdcp/cipher.hpp"

namespace u5g {

/// PDCP configuration: 12-bit (default) or 18-bit sequence numbers.
struct PdcpConfig {
  int sn_bits = 12;
  bool integrity_enabled = true;
  CipherContext security{};

  [[nodiscard]] std::uint32_t sn_modulus() const { return 1u << sn_bits; }
  [[nodiscard]] std::uint32_t window_size() const { return sn_modulus() / 2; }
  [[nodiscard]] std::size_t header_bytes() const { return sn_bits == 12 ? 2 : 3; }
};

/// Transmit-side PDCP: assigns COUNTs, ciphers, tags.
class PdcpTx {
 public:
  explicit PdcpTx(PdcpConfig cfg = {}) : cfg_(cfg) {}

  /// Protect `sdu` in place: cipher payload, append MAC-I, prepend header.
  void protect(ByteBuffer& sdu);

  /// Protect a batch of SDUs, running the cipher and integrity kernels four
  /// packets per inner loop (see cipher.hpp). Exactly equivalent to calling
  /// protect() on each SDU in order — COUNT assignment and every output
  /// byte are bit-identical; tests assert this against the scalar oracle.
  void protect_batch(std::span<ByteBuffer*> sdus);

  [[nodiscard]] std::uint32_t next_count() const { return next_count_; }
  [[nodiscard]] const PdcpConfig& config() const { return cfg_; }

 private:
  PdcpConfig cfg_;
  std::uint32_t next_count_ = 0;
};

/// Receive-side PDCP: deciphers, verifies, reorders, delivers in order.
class PdcpRx {
 public:
  /// Callback receives each SDU exactly once, in COUNT order, with
  /// `PacketMeta::count` set. Non-owning: invoked synchronously before
  /// receive()/flush() return.
  using Deliver = DeliveryFn;

  explicit PdcpRx(PdcpConfig cfg = {}) : cfg_(cfg) {}

  /// Process one PDU. Returns false if the PDU was discarded (bad integrity,
  /// duplicate, or stale). In-order SDUs (and any consecutive run they
  /// unblock) are handed to `deliver`.
  bool receive(ByteBuffer&& pdu, Deliver deliver);

  /// Process a batch of PDUs. Behaviourally identical to calling receive()
  /// on each PDU in order (same deliveries, same state, same counters);
  /// returns how many PDUs were accepted. When the whole batch is the
  /// loss-free in-order steady state it verifies and deciphers with the
  /// four-lane batch kernels; any deviation (gap, duplicate, bad tag,
  /// buffered reordering state) falls back to the scalar path for the whole
  /// batch, which stays the oracle.
  std::size_t receive_batch(std::span<ByteBuffer> pdus, Deliver deliver);

  /// Force-deliver everything buffered (t-Reordering expiry): skips gaps.
  void flush(Deliver deliver);

  [[nodiscard]] std::size_t held_count() const { return held_.size(); }
  [[nodiscard]] std::uint32_t expected_count() const { return expected_; }
  [[nodiscard]] std::uint64_t integrity_failures() const { return integrity_failures_; }

 private:
  /// Reconstruct the full COUNT from a received SN (TS 38.323 §5.2.2).
  [[nodiscard]] std::uint32_t infer_count(std::uint32_t sn) const;
  [[nodiscard]] std::uint32_t infer_count_from(std::uint32_t expected, std::uint32_t sn) const;

  PdcpConfig cfg_;
  std::uint32_t expected_ = 0;             ///< next COUNT to deliver
  std::map<std::uint32_t, ByteBuffer> held_;  ///< out-of-order stash
  std::uint64_t integrity_failures_ = 0;
};

}  // namespace u5g
