#include "mac/scheduler.hpp"

#include <algorithm>

#include "phy/modulation.hpp"
#include "phy/transport_block.hpp"

namespace u5g {

std::size_t MacScheduler::dl_window_capacity_bytes(int n_symbols) {
  const int sym = std::max(n_symbols, 1);
  const bool cacheable = sym <= kCapCacheSymbols;
  if (cacheable && dl_capacity_cache_[static_cast<std::size_t>(sym)] > 0) {
    return static_cast<std::size_t>(dl_capacity_cache_[static_cast<std::size_t>(sym)]);
  }
  const Allocation alloc{.n_prb = p_.dl_prbs, .n_symbols = sym};
  const int bits = transport_block_size_bits(alloc, mcs(p_.dl_mcs_index));
  const auto bytes = static_cast<std::size_t>(std::max(bits, 256)) / 8;
  if (cacheable) {
    dl_capacity_cache_[static_cast<std::size_t>(sym)] = static_cast<std::int64_t>(bytes);
  }
  return bytes;
}

std::optional<UlGrantPlan> MacScheduler::plan_ul_grant(UeId ue, Nanos sr_decoded) {
  // Decision at the next scheduler run after the SR is known.
  const Nanos decision = next_scheduler_run(duplex_, sr_decoded);
  // The DCI must hit a control opportunity the radio pipeline can still
  // make: control tx start >= decision + lead; also after any already-booked
  // control/DL time to avoid double-booking the control region.
  const Nanos earliest_ctrl = std::max(decision + total_lead(), dl_booked_until_);
  const auto ctrl = next_dl_control(duplex_, earliest_ctrl);
  if (!ctrl) return std::nullopt;

  // PUSCH: first uplink window the UE can make after decoding the DCI, not
  // colliding with previously granted uplink.
  const Nanos earliest_pusch = std::max(ctrl->end + p_.ue_min_prep, ul_booked_until_);
  const auto pusch = next_ul_tx(duplex_, earliest_pusch, p_.ul_tx_symbols);
  if (!pusch) return std::nullopt;

  ul_booked_until_ = pusch->end;

  UlGrantPlan plan;
  plan.control = *ctrl;
  plan.grant = UlGrant{ue, pusch->start, pusch->end, p_.ul_tb_bytes, HarqId{0}, false};
  return plan;
}

std::optional<DlAssignment> MacScheduler::plan_dl(UeId ue, Nanos ready, std::size_t tb_bytes) {
  // Data is servable in the first DL granule starting after it is ready
  // plus the radio pipeline lead; skip granules already booked.
  const Nanos earliest = std::max(ready + total_lead(), dl_booked_until_);
  const auto win = next_dl_data(duplex_, earliest);
  if (!win) return std::nullopt;
  dl_booked_until_ = win->end;
  return DlAssignment{ue, win->start, win->end, tb_bytes, HarqId{0}};
}

}  // namespace u5g
