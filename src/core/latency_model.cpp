#include "core/latency_model.hpp"

#include <algorithm>

namespace u5g {

namespace {

void push_step(Timeline& tl, std::string label, Nanos start, Nanos end, LatencyCategory cat) {
  if (end > start) tl.steps.push_back(TimelineStep{std::move(label), start, end, cat});
}

Timeline infeasible(Nanos arrival) {
  Timeline tl;
  tl.arrival = arrival;
  tl.completion = arrival;
  tl.feasible = false;
  return tl;
}

Timeline trace_grant_free_ul(const DuplexConfig& cfg, Nanos arrival,
                             const LatencyModelParams& p) {
  Timeline tl;
  tl.arrival = arrival;

  const Nanos ready = arrival + p.sender_processing + p.radio_tx;
  push_step(tl, "UE stack APP\xe2\x86\x93 (SDAP/PDCP/RLC/MAC/PHY)", arrival,
            arrival + p.sender_processing, LatencyCategory::Processing);
  push_step(tl, "UE radio TX chain", arrival + p.sender_processing, ready, LatencyCategory::Radio);

  const auto w = next_ul_tx(cfg, ready, p.data_tx_symbols);
  if (!w) return infeasible(arrival);
  push_step(tl, "wait for UL opportunity", ready, w->start, LatencyCategory::Protocol);
  push_step(tl, "UL data over the air", w->start, w->end, LatencyCategory::Protocol);

  const Nanos rx_done = w->end + p.radio_rx;
  push_step(tl, "gNB radio RX chain", w->end, rx_done, LatencyCategory::Radio);
  tl.completion = rx_done + p.receiver_processing;
  push_step(tl, "gNB stack MAC\xe2\x86\x91 (PHY/MAC/RLC/PDCP/SDAP)", rx_done, tl.completion,
            LatencyCategory::Processing);
  return tl;
}

Timeline trace_grant_based_ul(const DuplexConfig& cfg, Nanos arrival,
                              const LatencyModelParams& p) {
  Timeline tl;
  tl.arrival = arrival;

  const Nanos sr_ready = arrival + p.sender_processing + p.radio_tx;
  push_step(tl, "UE stack APP\xe2\x86\x93", arrival, arrival + p.sender_processing,
            LatencyCategory::Processing);
  push_step(tl, "UE radio TX chain", arrival + p.sender_processing, sr_ready,
            LatencyCategory::Radio);

  // 1. Scheduling request at the next UL symbol (footnote 2).
  const auto sr = next_ul_tx(cfg, sr_ready, p.sr_symbols);
  if (!sr) return infeasible(arrival);
  push_step(tl, "wait for SR opportunity", sr_ready, sr->start, LatencyCategory::Protocol);
  push_step(tl, "SR over the air", sr->start, sr->end, LatencyCategory::Protocol);

  // 2. gNB decodes the SR; the scheduler acts at its next per-granule run.
  const Nanos sr_known = sr->end + p.radio_rx + p.sr_decode;
  push_step(tl, "gNB SR decode (radio+PHY)", sr->end, sr_known, LatencyCategory::Processing);
  const Nanos decision = next_scheduler_run(cfg, sr_known);
  push_step(tl, "wait for scheduler run", sr_known, decision, LatencyCategory::Protocol);

  // 3. The UL grant rides the next DL control region.
  const auto ctrl = next_dl_control(cfg, decision);
  if (!ctrl) return infeasible(arrival);
  push_step(tl, "wait for DL control opportunity", decision, ctrl->start,
            LatencyCategory::Protocol);
  push_step(tl, "UL grant over the air", ctrl->start, ctrl->end, LatencyCategory::Protocol);

  // 4. UE decodes the grant and transmits at the next UL window.
  const Nanos grant_ready = ctrl->end + p.radio_rx + p.grant_decode + p.radio_tx;
  push_step(tl, "UE grant decode + prep", ctrl->end, grant_ready, LatencyCategory::Processing);
  const auto w = next_ul_tx(cfg, grant_ready, p.data_tx_symbols);
  if (!w) return infeasible(arrival);
  push_step(tl, "wait for granted UL window", grant_ready, w->start, LatencyCategory::Protocol);
  push_step(tl, "UL data over the air", w->start, w->end, LatencyCategory::Protocol);

  const Nanos rx_done = w->end + p.radio_rx;
  push_step(tl, "gNB radio RX chain", w->end, rx_done, LatencyCategory::Radio);
  tl.completion = rx_done + p.receiver_processing;
  push_step(tl, "gNB stack MAC\xe2\x86\x91", rx_done, tl.completion, LatencyCategory::Processing);
  return tl;
}

Timeline trace_downlink(const DuplexConfig& cfg, Nanos arrival, const LatencyModelParams& p) {
  Timeline tl;
  tl.arrival = arrival;

  const Nanos ready = arrival + p.sender_processing + p.radio_tx;
  push_step(tl, "gNB stack SDAP\xe2\x86\x93 (SDAP/PDCP/RLC)", arrival,
            arrival + p.sender_processing, LatencyCategory::Processing);
  push_step(tl, "gNB radio TX chain", arrival + p.sender_processing, ready,
            LatencyCategory::Radio);

  // Served in the first granule starting at or after readiness; the current
  // granule is already allocated (§5's DL worst-case rationale).
  const auto w = next_dl_data(cfg, ready);
  if (!w) return infeasible(arrival);
  push_step(tl, "wait for DL slot", ready, w->start, LatencyCategory::Protocol);
  push_step(tl, "DL data over the air", w->start, w->end, LatencyCategory::Protocol);

  const Nanos rx_done = w->end + p.radio_rx;
  push_step(tl, "UE radio RX chain", w->end, rx_done, LatencyCategory::Radio);
  tl.completion = rx_done + p.receiver_processing;
  push_step(tl, "UE stack PHY\xe2\x86\x91 (PHY..APP)", rx_done, tl.completion,
            LatencyCategory::Processing);
  return tl;
}

}  // namespace

Nanos Timeline::category_total(LatencyCategory c) const {
  Nanos total = Nanos::zero();
  for (const TimelineStep& s : steps) {
    if (s.category == c) total += s.duration();
  }
  return total;
}

std::string Timeline::render() const {
  std::string out;
  for (const TimelineStep& s : steps) {
    out += "  [" + std::string(to_string(s.category)) + "] " + s.label + ": " +
           to_string(s.start - arrival) + " -> " + to_string(s.end - arrival) + " (+" +
           to_string(s.duration()) + ")\n";
  }
  out += "  total: " + to_string(latency()) + "\n";
  return out;
}

Timeline trace_transmission(const DuplexConfig& cfg, AccessMode mode, Nanos arrival,
                            const LatencyModelParams& p) {
  switch (mode) {
    case AccessMode::GrantFreeUl: return trace_grant_free_ul(cfg, arrival, p);
    case AccessMode::GrantBasedUl: return trace_grant_based_ul(cfg, arrival, p);
    case AccessMode::Downlink: return trace_downlink(cfg, arrival, p);
  }
  return infeasible(arrival);
}

WorstCaseResult analyze_worst_case(const DuplexConfig& cfg, AccessMode mode,
                                   const LatencyModelParams& p, int grid_per_symbol) {
  WorstCaseResult r;
  const SlotClock clk = cfg.clock();
  // Anchor the sweep away from t=0 so look-behind arithmetic stays positive.
  const Nanos base = cfg.period() * 8;
  const Nanos sym = clk.symbol_duration();

  double sum = 0.0;
  std::size_t n = 0;
  auto probe = [&](Nanos offset) {
    const Timeline tl = trace_transmission(cfg, mode, base + offset, p);
    if (!tl.feasible) {
      r.feasible = false;
      return;
    }
    const Nanos lat = tl.latency();
    if (lat > r.worst) {
      r.worst = lat;
      r.worst_arrival_offset = offset;
    }
    r.best = std::min(r.best, lat);
    sum += static_cast<double>(lat.count());
    ++n;
  };

  // Probe every symbol boundary of every slot in the period (computed the
  // same way SlotClock lays them out, so probes align with true boundaries),
  // the instant just after each ("just after a DL slot starts" is the
  // paper's worst case), and a uniform grid between boundaries.
  for (int slot = 0; slot < cfg.period_slots() && r.feasible; ++slot) {
    const Nanos slot_off = clk.slot_duration() * slot;
    for (int s = 0; s < kSymbolsPerSlot && r.feasible; ++s) {
      const Nanos boundary = slot_off + sym * s;
      probe(boundary);
      probe(boundary + Nanos{1});
      for (int g = 1; g < grid_per_symbol; ++g) {
        probe(boundary + sym * g / grid_per_symbol);
      }
    }
  }
  if (n > 0) r.mean = Nanos{static_cast<std::int64_t>(sum / static_cast<double>(n))};
  if (r.best == Nanos::max()) r.best = Nanos::zero();
  return r;
}

}  // namespace u5g
