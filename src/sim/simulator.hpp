#pragma once
// Discrete-event simulation kernel.
//
// The whole 5G system model runs on one simulated clock. Components schedule
// callbacks at absolute times; the kernel fires them in (time, sequence)
// order so same-timestamp events run in scheduling order (deterministic
// replay).
//
// Hot-path design — the kernel executes a slot as a batch, not as N
// independent heap pops:
//
//  * Timestamp coalescing. Slot-synchronous systems schedule many events at
//    the same instant (slot ticks, grant starts, HARQ feedback edges). The
//    priority queue therefore holds one entry per *distinct* timestamp; the
//    events of a timestamp live in a FIFO bucket that is drained as one
//    batch. Scheduling into an already-pending timestamp is a hash lookup
//    plus a vector append — no heap sift at all — and events scheduled *at*
//    the timestamp currently being drained are appended to the live bucket
//    and fire in the same batch, preserving (time, seq) order exactly.
//  * In-place firing. Event closures are built directly inside their slot
//    (`Action::emplace` from the templated `schedule_*` overloads) and
//    invoked from there, so the schedule/fire cycle moves zero `Action`
//    objects. Slots live in fixed-size chunks whose addresses never change,
//    which is what makes firing in place safe while callbacks schedule new
//    events.
//  * Lazy cancellation. `cancel` flips a tombstone in the slot (releasing
//    the captured resources eagerly) and the bucket entry is discarded when
//    it surfaces.
//
// Steady-state schedule/cancel/fire performs zero heap allocations once the
// buckets, map, heap, and slot chunks have reached their high-water sizes.

#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "common/time.hpp"
#include "sim/action.hpp"

namespace u5g {

/// Handle to a scheduled event, usable to cancel it. Identifies the event by
/// its (slot, seq) pair; seq is globally unique so a handle can never
/// accidentally refer to a later event recycled into the same slot.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  constexpr EventHandle(std::uint32_t slot, std::uint64_t seq) : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

/// Event-driven simulator with cancellation and run-until semantics.
class Simulator {
 public:
  using Action = u5g::Action;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule a callable at absolute time `when` (must be >= now()). The
  /// templated overload constructs the closure directly in its event slot;
  /// the `Action` overload exists for call sites that type-erased early.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventHandle schedule_at(Nanos when, F&& f) {
    const SlotRef r = prepare(when);
    r.s->action.emplace(std::forward<F>(f));
    return EventHandle{r.idx, r.s->seq};
  }
  EventHandle schedule_at(Nanos when, Action action) {
    const SlotRef r = prepare(when);
    r.s->action = std::move(action);
    return EventHandle{r.idx, r.s->seq};
  }

  /// Schedule a callable after a relative delay.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventHandle schedule_after(Nanos delay, F&& f) {
    return schedule_at(now_ + delay, std::forward<F>(f));
  }
  EventHandle schedule_after(Nanos delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns true if the event had not yet fired or
  /// been cancelled. Safe on default-constructed handles. O(1): tombstones
  /// the slot; the bucket entry is skipped when it surfaces.
  bool cancel(EventHandle h) {
    if (!h.valid() || h.slot_ >= slot_count_) return false;
    Slot& s = slot(h.slot_);
    if (s.seq != h.seq_ || s.cancelled) return false;
    s.cancelled = true;
    s.action.reset();  // release captured resources eagerly
    --live_;
    return true;
  }

  /// Run until the event queue drains or `until` is reached (whichever first).
  /// If `until` bounds the run, the clock is advanced to exactly `until`.
  void run_until(Nanos until = Nanos::max()) {
    for (;;) {
      if (draining_ == kNoBucket) {
        if (heap_.empty() || heap_.top().when > until) break;
        draining_ = heap_.top().bucket;
        heap_.pop();
      } else if (buckets_[draining_].when > until) {
        break;  // half-drained bucket left by step(); out of this run's range
      }
      while (fire_next_in(draining_)) {
      }
      finish_bucket(draining_);
      draining_ = kNoBucket;
    }
    if (until != Nanos::max() && now_ < until) now_ = until;
  }

  /// Fire exactly one live event; returns false if none remain.
  bool step() {
    for (;;) {
      if (draining_ == kNoBucket) {
        if (heap_.empty()) return false;
        draining_ = heap_.top().bucket;
        heap_.pop();
      }
      // A bucket left partially drained here is resumed before any other:
      // it holds the earliest timestamp (== now(), so nothing can be
      // scheduled before it), and new arrivals at that same timestamp keep
      // appending to it until it is finished.
      if (fire_next_in(draining_)) return true;
      finish_bucket(draining_);
      draining_ = kNoBucket;
    }
  }

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] bool idle() const { return live_ == 0; }
  /// Timestamp of the earliest pending bucket, or Nanos::max() when the
  /// queue is empty. Conservative: a bucket holding only tombstoned events
  /// still reports its time, so callers using this as a lookahead bound may
  /// under-estimate the true next firing but never over-estimate it.
  [[nodiscard]] Nanos next_event_time() const {
    if (draining_ != kNoBucket) return buckets_[draining_].when;
    return heap_.empty() ? Nanos::max() : heap_.top().when;
  }
  /// Events fired over the simulator's lifetime — an always-on kernel stat
  /// benches export into the metrics registry.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  /// Timestamp buckets drained over the lifetime. events_fired() divided by
  /// this is the average coalescing factor: how many same-timestamp events
  /// each batch executed per priority-queue pop.
  [[nodiscard]] std::uint64_t batches_drained() const { return batches_; }

 private:
  struct Slot {
    std::uint64_t seq = 0;  ///< seq of the resident event; 0 = free/fired
    bool cancelled = false;
    Action action;
  };
  struct HeapEntry {
    Nanos when;
    std::uint32_t bucket;
  };
  struct LaterTime {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const { return a.when > b.when; }
  };
  /// All events pending at one timestamp, in scheduling (seq) order.
  struct Bucket {
    Nanos when{};
    std::uint32_t head = 0;  ///< next entry to fire
    std::vector<std::uint32_t> evs;
  };
  struct SlotRef {
    Slot* s;
    std::uint32_t idx;
  };

  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  static constexpr std::uint32_t kNoBucket = 0xffffffffu;

  [[nodiscard]] Slot& slot(std::uint32_t i) { return chunks_[i >> kChunkShift][i & kChunkMask]; }

  /// Allocate a slot and a bucket entry for `when`; the caller fills the
  /// action in place. Slots come from fixed chunks so the returned pointer
  /// stays valid even if callbacks grow the kernel's containers.
  SlotRef prepare(Nanos when) {
    if (when < now_) throw std::invalid_argument{"Simulator: scheduling into the past"};
    const std::uint64_t seq = ++next_seq_;
    std::uint32_t idx;
    if (free_.empty()) {
      if ((slot_count_ & kChunkMask) == 0) chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      idx = slot_count_++;
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    Slot& s = slot(idx);
    s.seq = seq;
    s.cancelled = false;
    enqueue(when, idx);
    ++live_;
    return {&s, idx};
  }

  /// Append the slot to `when`'s bucket, activating the bucket (one heap
  /// push) only for the first event at a given pending timestamp.
  void enqueue(Nanos when, std::uint32_t slot_idx) {
    std::uint32_t bi;
    if (std::uint32_t* found = time_map_.find(when.count()); found != nullptr) {
      bi = *found;
    } else {
      if (bucket_free_.empty()) {
        bi = static_cast<std::uint32_t>(buckets_.size());
        buckets_.emplace_back();
      } else {
        bi = bucket_free_.back();
        bucket_free_.pop_back();
      }
      buckets_[bi].when = when;
      time_map_[when.count()] = bi;
      heap_.push(HeapEntry{when, bi});
    }
    buckets_[bi].evs.push_back(slot_idx);
  }

  /// Fire the next live event of bucket `b`; returns false when the bucket
  /// is exhausted (trailing tombstones included). The action runs inside its
  /// slot — chunks never move, and the slot is recycled only after it
  /// returns, so callbacks may freely schedule and cancel.
  bool fire_next_in(std::uint32_t b) {
    for (;;) {
      Bucket& bk = buckets_[b];  // re-resolve: callbacks may grow buckets_
      if (bk.head >= bk.evs.size()) return false;
      const std::uint32_t si = bk.evs[bk.head++];
      Slot& s = slot(si);
      if (s.cancelled) {
        s.seq = 0;
        s.cancelled = false;
        free_.push_back(si);
        continue;
      }
      s.seq = 0;  // firing now: the handle goes inert, exactly as if popped
      --live_;
      ++fired_;
      now_ = bk.when;
      if (s.action) s.action();
      s.action.reset();
      free_.push_back(si);
      return true;
    }
  }

  /// Retire a fully drained bucket: only now does its timestamp leave the
  /// map, so same-timestamp arrivals during the drain joined this batch.
  void finish_bucket(std::uint32_t b) {
    Bucket& bk = buckets_[b];
    ++batches_;
    time_map_.erase(bk.when.count());
    bk.evs.clear();
    bk.head = 0;
    bucket_free_.push_back(b);
  }

  Nanos now_ = Nanos::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t batches_ = 0;
  std::size_t live_ = 0;
  std::uint32_t slot_count_ = 0;
  std::uint32_t draining_ = kNoBucket;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> bucket_free_;
  FlatHashMap<std::int64_t, std::uint32_t> time_map_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, LaterTime> heap_;
};

}  // namespace u5g
