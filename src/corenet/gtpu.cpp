#include "corenet/gtpu.hpp"

#include <array>

namespace u5g {

void gtpu_encapsulate(ByteBuffer& payload, std::uint32_t teid) {
  std::array<std::uint8_t, kGtpuHeaderBytes> h{};
  h[0] = GtpuHeader::kVersionFlags;
  h[1] = GtpuHeader::kMsgTypeGpdu;
  put_be16(std::span{h}.subspan(2, 2), static_cast<std::uint16_t>(payload.size()));
  put_be32(std::span{h}.subspan(4, 4), teid);
  payload.push_header(h);
}

std::optional<GtpuHeader> gtpu_decapsulate(ByteBuffer& packet) {
  if (packet.size() < kGtpuHeaderBytes) return std::nullopt;
  const auto h = packet.pop_header(kGtpuHeaderBytes);
  if (h[0] != GtpuHeader::kVersionFlags || h[1] != GtpuHeader::kMsgTypeGpdu) return std::nullopt;
  GtpuHeader out;
  out.length = get_be16(h.subspan(2, 2));
  out.teid = get_be32(h.subspan(4, 4));
  if (out.length != packet.size()) return std::nullopt;
  return out;
}

}  // namespace u5g
