#pragma once
// OS-scheduling jitter model (§6).
//
// Software 5G stacks run on general-purpose operating systems whose
// scheduler occasionally preempts the radio thread. The paper's Fig 5 shows
// the result: a linear baseline with spikes, "due to delays in the OS
// scheduling of the sample submission process". We model jitter as a
// mixture: always-on small noise (cache misses, timer slack) plus a rare
// heavy preemption spike. A real-time kernel bounds the spike, it does not
// remove the noise — exactly the §6 mitigation.

#include <algorithm>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace u5g {

/// Parameters of the two-component jitter mixture.
struct JitterParams {
  Nanos noise_mean{3'000};       ///< always-on noise mean (lognormal)
  Nanos noise_std{2'000};
  double spike_prob = 0.02;      ///< probability a call hits a preemption
  Nanos spike_mean{60'000};      ///< preemption spike mean (exponential tail)
  Nanos spike_cap{400'000};      ///< hard cap (watchdog / priority boost)

  /// Generic desktop kernel: rare but large spikes — the Fig 5 regime.
  static JitterParams generic_kernel() { return {}; }

  /// PREEMPT_RT kernel: spikes are rarer and bounded to tens of µs.
  static JitterParams realtime_kernel() {
    return {Nanos{2'000}, Nanos{1'200}, 0.004, Nanos{12'000}, Nanos{30'000}};
  }

  /// No jitter at all — the idealised stack used by pure-protocol analyses.
  static JitterParams none() {
    return {Nanos::zero(), Nanos::zero(), 0.0, Nanos::zero(), Nanos::zero()};
  }
};

/// Draws one jitter value per call.
class OsJitterModel {
 public:
  OsJitterModel(JitterParams p, Rng rng) : p_(p), rng_(rng) {
    if (p_.noise_mean > Nanos::zero()) {
      noise_ = LognormalParams::from_mean_std(static_cast<double>(p_.noise_mean.count()),
                                              static_cast<double>(p_.noise_std.count()));
    }
  }

  /// One draw of added delay (>= 0).
  [[nodiscard]] Nanos sample() {
    std::int64_t ns = 0;
    if (p_.noise_mean > Nanos::zero()) ns += static_cast<std::int64_t>(noise_.sample(rng_));
    if (p_.spike_prob > 0.0 && rng_.bernoulli(p_.spike_prob)) {
      auto spike = static_cast<std::int64_t>(
          rng_.exponential(static_cast<double>(p_.spike_mean.count())));
      spike = std::min(spike, p_.spike_cap.count());
      ns += spike;
    }
    return Nanos{ns};
  }

  [[nodiscard]] const JitterParams& params() const { return p_; }

 private:
  JitterParams p_;
  Rng rng_;
  LognormalParams noise_{};
};

}  // namespace u5g
