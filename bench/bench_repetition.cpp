// Extension X6 (§6): repetition vs HARQ on the paper's viable configuration.
// [27] (cited in §8) argues for "avoiding retransmissions to minimize
// latency"; Rel-16 URLLC's answer is blind repetition. Same residual
// reliability by construction — the question is what each scheme does to the
// latency distribution, on the DM pattern where UL opportunities come in one
// 8-symbol burst per 0.5 ms period.

#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/repetition.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kPackets = 30'000;

struct Row {
  double delivered_frac;
  double mean_us;
  double p99_us;
  double p999_us;
};

template <typename OutcomeFn>
Row sweep(const TddCommonConfig& cfg, const ReliabilitySchemeParams& p, OutcomeFn outcome,
          std::uint64_t seed) {
  Rng rng(seed);
  Rng arrivals(seed + 1);
  SampleSet lat;
  int delivered = 0;
  for (int i = 0; i < kPackets; ++i) {
    const Nanos at = cfg.period() * (4 * i) +
                     Nanos{static_cast<std::int64_t>(
                         arrivals.uniform() * static_cast<double>(cfg.period().count()))};
    const SchemeOutcome o = outcome(cfg, at, p, rng);
    if (o.delivered) {
      ++delivered;
      lat.add((o.completion - at).us());
    }
  }
  return {static_cast<double>(delivered) / kPackets, lat.mean(), lat.quantile(0.99),
          lat.quantile(0.999)};
}

}  // namespace

int main() {
  std::printf("== X6: HARQ vs blind repetition on TDD-Common(DM), u2, grant-free UL ==\n\n");
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);

  std::printf("   %10s %9s | %9s %8s %9s %9s | %9s %8s %9s %9s\n", "", "", "HARQ", "", "", "",
              "repetition", "", "", "");
  std::printf("   %10s %9s | %9s %8s %9s %9s | %9s %8s %9s %9s\n", "BLER", "resid.loss",
              "deliv", "mean", "p99", "p99.9", "deliv", "mean", "p99", "p99.9");

  bool rep_beats_harq_tail = true;
  bool reliability_matches = true;
  for (double bler : {0.01, 0.1, 0.3}) {
    ReliabilitySchemeParams p;
    p.per_tx_bler = bler;
    p.harq_feedback_delay = dm.period();  // feedback rides the next period's DL
    const double resid = residual_loss(p);
    const Row h = sweep(dm, p, harq_outcome, 700);
    const Row r = sweep(dm, p, repetition_outcome, 701);
    std::printf("   %10.2f %9.1e | %8.1f%% %8.0f %9.0f %9.0f | %8.1f%% %8.0f %9.0f %9.0f\n",
                bler, resid, h.delivered_frac * 100, h.mean_us, h.p99_us, h.p999_us,
                r.delivered_frac * 100, r.mean_us, r.p99_us, r.p999_us);
    rep_beats_harq_tail = rep_beats_harq_tail && r.p999_us < h.p999_us;
    reliability_matches =
        reliability_matches && std::abs(h.delivered_frac - r.delivered_frac) < 0.01;
  }

  std::printf("\nrepetition buys its reliability without feedback round trips: identical\n"
              "residual loss, but the recovery happens within the same UL burst instead of\n"
              "one TDD period later — exactly why [27]/Rel-16 URLLC avoids retransmissions.\n");
  const bool ok = rep_beats_harq_tail && reliability_matches;
  std::printf("shape: %s\n", ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
