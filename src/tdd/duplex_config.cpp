#include "tdd/duplex_config.hpp"

namespace u5g {

std::string DuplexConfig::render_period() const {
  std::string out;
  for (int s = 0; s < period_slots(); ++s) {
    if (s != 0) out += '|';
    for (int k = 0; k < kSymbolsPerSlot; ++k) {
      const bool d = dl_capable(s, k);
      const bool u = ul_capable(s, k);
      out += d && u ? 'X' : d ? 'D' : u ? 'U' : '-';
    }
  }
  return out;
}

bool DuplexConfig::slot_has_dl(SlotIndex slot) const {
  for (int k = 0; k < kSymbolsPerSlot; ++k) {
    if (dl_capable(slot, k)) return true;
  }
  return false;
}

bool DuplexConfig::slot_has_ul(SlotIndex slot) const {
  for (int k = 0; k < kSymbolsPerSlot; ++k) {
    if (ul_capable(slot, k)) return true;
  }
  return false;
}

void DuplexConfig::append_value_words(CanonicalWords& words) const {
  words.add_signed(numerology().mu());
  words.add_signed(period_slots());
  words.add_signed(control_granularity_symbols());
  words.add_signed(control_symbols());
  // The direction map, two bits per symbol packed into words: bit 0 = DL
  // capability, bit 1 = UL capability, in (slot, symbol) order.
  std::uint64_t w = 0;
  int bits = 0;
  for (int s = 0; s < period_slots(); ++s) {
    for (int k = 0; k < kSymbolsPerSlot; ++k) {
      const std::uint64_t sym = (dl_capable(s, k) ? 1u : 0u) | (ul_capable(s, k) ? 2u : 0u);
      w |= sym << bits;
      bits += 2;
      if (bits == 64) {
        words.add(w);
        w = 0;
        bits = 0;
      }
    }
  }
  if (bits > 0) words.add(w);
}

std::uint64_t DuplexConfig::value_hash() const {
  CanonicalWords words;
  append_value_words(words);
  return words.hash();
}

bool value_equal(const DuplexConfig& a, const DuplexConfig& b) {
  if (&a == &b) return true;
  CanonicalWords wa, wb;
  a.append_value_words(wa);
  b.append_value_words(wb);
  return wa == wb;
}

}  // namespace u5g
