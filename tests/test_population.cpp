// City-scale population layer: seed-stream hygiene, aggregate-vs-explicit
// traffic equivalence, loss accounting, and the engine-level determinism and
// parity contracts with background populations attached.
//
// The population's RNG stream is forked from cell_seed ^ salt, so attaching
// a population must not move a single draw of the tracked E2eSystem — the
// parity tests below pin that, and the cross-thread tests pin that the
// work-stealing gang (which claims population-carrying cells) stays bitwise
// deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cell.hpp"
#include "mac/ue_population.hpp"
#include "sim/runner.hpp"
#include "sim/sharded.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr Nanos kSlot{500'000};  // µ1, matching the testbed presets

PopulationConfig lite_config(int ues) {
  PopulationConfig cfg;
  cfg.background_ues = ues;
  cfg.mean_interarrival = Nanos{5'000'000};  // 10 slots mean spacing
  cfg.grants_per_slot = 64;
  return cfg;
}

void run_slots(UePopulation& pop, int slots) {
  for (int s = 0; s < slots; ++s) pop.tick(static_cast<std::uint64_t>(s));
}

}  // namespace

// -- Seed-stream hygiene -----------------------------------------------------

TEST(SeedStreamTest, NoCollisionsAcrossTenThousandCells) {
  constexpr int kCells = 10'000;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(kCells);
  for (int i = 0; i < kCells; ++i) seeds.push_back(cell_seed(1, i));
  std::vector<std::uint64_t> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "cell_seed produced a duplicate within 10k cells";
}

TEST(SeedStreamTest, LowBitsAreBalancedAndUncorrelated) {
  constexpr int kCells = 10'000;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(kCells);
  for (int i = 0; i < kCells; ++i) seeds.push_back(cell_seed(7, i));

  // Each of the low 16 bits should be set in roughly half the seeds — a
  // counter-like stream (root + i) would fail bit 0 catastrophically.
  for (int bit = 0; bit < 16; ++bit) {
    int ones = 0;
    for (const std::uint64_t s : seeds) ones += static_cast<int>((s >> bit) & 1U);
    EXPECT_GT(ones, kCells * 45 / 100) << "bit " << bit << " mostly clear";
    EXPECT_LT(ones, kCells * 55 / 100) << "bit " << bit << " mostly set";
  }

  // Adjacent seeds must not advance by a constant pattern in the low bits:
  // the XOR of consecutive seeds (low 16 bits) should take many values.
  std::vector<std::uint64_t> deltas;
  deltas.reserve(kCells - 1);
  for (int i = 1; i < kCells; ++i) deltas.push_back((seeds[i] ^ seeds[i - 1]) & 0xffffU);
  std::sort(deltas.begin(), deltas.end());
  const auto distinct =
      static_cast<std::size_t>(std::unique(deltas.begin(), deltas.end()) - deltas.begin());
  EXPECT_GT(distinct, static_cast<std::size_t>(1000))
      << "adjacent cell seeds differ by a near-constant low-bit pattern";
}

// -- Aggregate vs explicit traffic -------------------------------------------

TEST(UePopulationTest, PeriodicAggregateExactlyMatchesExplicit) {
  PopulationConfig agg = lite_config(333);
  agg.periodic = true;
  agg.aggregate = true;
  PopulationConfig exp = agg;
  exp.aggregate = false;

  UePopulation a(agg, kSlot, 42);
  UePopulation b(exp, kSlot, 42);
  run_slots(a, 500);
  run_slots(b, 500);

  // Phase arithmetic makes the batched path bit-for-bit the per-UE walk.
  EXPECT_EQ(a.counters().offered, b.counters().offered);
  EXPECT_EQ(a.counters().delivered, b.counters().delivered);
  EXPECT_EQ(a.counters().grants_used, b.counters().grants_used);
  EXPECT_EQ(a.queued_packets(), b.queued_packets());
}

TEST(UePopulationTest, PoissonAggregateStatisticallyMatchesExplicit) {
  constexpr int kUes = 256;
  constexpr int kSlots = 2000;
  PopulationConfig agg = lite_config(kUes);
  PopulationConfig exp = agg;
  exp.aggregate = false;

  UePopulation a(agg, kSlot, 99);
  UePopulation b(exp, kSlot, 1234);
  run_slots(a, kSlots);
  run_slots(b, kSlots);

  // Expected offered load: 256 UEs × 2000 slots × 0.1 arrivals/slot = 51200,
  // σ ≈ 226 — a 5% tolerance is > 10σ for each run. (The explicit path is
  // per-slot Bernoulli thinning, i.e. Binomial(n, p) per slot; at p = 0.1
  // its mean matches the Poisson batch and its variance is within 10%.)
  const double expected = kUes * kSlots * 0.1;
  EXPECT_NEAR(static_cast<double>(a.counters().offered), expected, expected * 0.05);
  EXPECT_NEAR(static_cast<double>(b.counters().offered), expected, expected * 0.05);
  EXPECT_NEAR(static_cast<double>(a.counters().delivered),
              static_cast<double>(b.counters().delivered),
              static_cast<double>(a.counters().delivered) * 0.05);
}

TEST(UePopulationTest, FixedSeedRunsAreBitwiseReproducible) {
  const PopulationConfig cfg = [] {
    PopulationConfig c = lite_config(512);
    c.loss = 0.1;
    c.harq_max_tx = 3;
    c.grants_per_slot = 32;
    return c;
  }();
  UePopulation a(cfg, kSlot, 7);
  UePopulation b(cfg, kSlot, 7);
  run_slots(a, 1000);
  run_slots(b, 1000);

  MetricsRegistry ra;
  MetricsRegistry rb;
  a.export_metrics(ra);
  b.export_metrics(rb);
  EXPECT_EQ(ra.to_json(), rb.to_json());
  EXPECT_NE(a.counters().delivered, 0U);
}

// -- Loss accounting ---------------------------------------------------------

TEST(UePopulationTest, OfferedEqualsDeliveredPlusDropsPlusQueued) {
  PopulationConfig cfg = lite_config(400);
  cfg.mean_interarrival = Nanos{2'000'000};  // 4-slot spacing: heavy load
  cfg.loss = 0.3;
  cfg.harq_max_tx = 2;
  cfg.grants_per_slot = 16;  // starved scheduler: rings overflow
  cfg.queue_capacity = 4;
  UePopulation pop(cfg, kSlot, 11);
  for (int s = 0; s < 800; ++s) {
    pop.tick(static_cast<std::uint64_t>(s));
    const auto& c = pop.counters();
    ASSERT_EQ(c.offered, c.delivered + c.harq_drops + c.queue_drops + pop.queued_packets())
        << "accounting identity broken after slot " << s;
  }
  EXPECT_NE(pop.counters().harq_drops, 0U);
  EXPECT_NE(pop.counters().queue_drops, 0U);
  EXPECT_NE(pop.counters().delivered, 0U);
}

// -- Engine-level contracts --------------------------------------------------

namespace {

StackConfig populated_scenario(std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_free(seed);
  cfg.num_cells = 8;
  cfg.num_ues = 2;
  cfg.intercell_load_coupling = 0.02;
  cfg.population = lite_config(500);
  cfg.population.loss = 0.05;
  cfg.trace.metrics = true;
  return cfg;
}

void inject_tracked(ShardedEngine& eng) {
  for (int c = 0; c < eng.num_cells(); ++c) {
    for (int p = 0; p < 4; ++p) {
      eng.send_uplink_at(Nanos{2'000'000} * p, c, p % 2);
    }
  }
}

}  // namespace

TEST(PopulatedEngineTest, MergedResultsIdenticalAcrossWorkerCounts) {
  std::string baseline;
  std::uint64_t baseline_delivered = 0;
  for (const int threads : {1, 2, 8}) {
    ShardedEngine eng(populated_scenario(5), ShardedOptions{threads});
    inject_tracked(eng);
    eng.run_until(Nanos{40'000'000});
    const std::string merged = eng.merged_metrics().to_json();
    const auto totals = eng.population_totals();
    EXPECT_EQ(totals.ues, 8U * 500U);
    EXPECT_NE(totals.delivered, 0U);
    EXPECT_EQ(totals.offered,
              totals.delivered + totals.harq_drops + totals.queue_drops + totals.queued);
    if (baseline.empty()) {
      baseline = merged;
      baseline_delivered = totals.delivered;
    } else {
      // Work-stealing claims are live at 2 and 8 workers; results must not
      // know which thread ran which cell.
      EXPECT_EQ(merged, baseline) << "threads=" << threads;
      EXPECT_EQ(totals.delivered, baseline_delivered);
    }
  }
}

TEST(PopulatedEngineTest, ZeroLoadFactorPopulationLeavesTrackedStreamUntouched) {
  // load_factor = 0 detaches the only feedback path from background to
  // tracked UEs; the tracked packets must then be bit-identical to a run
  // with no population at all (the RNG fork means no draw is shared).
  StackConfig with_pop = StackConfig::testbed_grant_free(21);
  with_pop.population = lite_config(1000);
  with_pop.population.load_factor = 0.0;
  StackConfig without = StackConfig::testbed_grant_free(21);

  ShardedEngine a(with_pop);
  ShardedEngine b(without);
  for (int p = 0; p < 6; ++p) {
    a.send_uplink_at(Nanos{2'000'000} * p, 0, 0);
    b.send_uplink_at(Nanos{2'000'000} * p, 0, 0);
  }
  a.run_until(Nanos{40'000'000});
  b.run_until(Nanos{40'000'000});

  const SampleSet sa = a.latency_samples_us(Direction::Uplink);
  const SampleSet sb = b.latency_samples_us(Direction::Uplink);
  ASSERT_EQ(sa.samples().size(), sb.samples().size());
  for (std::size_t i = 0; i < sa.samples().size(); ++i) {
    EXPECT_EQ(sa.samples()[i], sb.samples()[i]) << "tracked packet " << i;
  }
  EXPECT_NE(a.population_totals().delivered, 0U);
}

TEST(PopulatedEngineTest, BackgroundBacklogSlowsTrackedPackets) {
  // With a positive load factor a persistently backlogged population scales
  // the gNB's processing draws up — tracked latency must rise.
  StackConfig loaded = StackConfig::testbed_grant_free(33);
  loaded.population = lite_config(2000);
  loaded.population.mean_interarrival = Nanos{1'000'000};  // 2-slot spacing
  loaded.population.grants_per_slot = 8;                   // starved: backlog grows
  loaded.population.load_factor = 0.05;
  StackConfig idle = loaded;
  idle.population.background_ues = 0;

  ShardedEngine a(loaded);
  ShardedEngine b(idle);
  for (int p = 0; p < 6; ++p) {
    a.send_uplink_at(Nanos{4'000'000} * (p + 1), 0, 0);
    b.send_uplink_at(Nanos{4'000'000} * (p + 1), 0, 0);
  }
  a.run_until(Nanos{60'000'000});
  b.run_until(Nanos{60'000'000});
  EXPECT_GT(a.latency_samples_us(Direction::Uplink).mean(),
            b.latency_samples_us(Direction::Uplink).mean());
}
