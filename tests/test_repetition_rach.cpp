// Tests for the X6 (repetition vs HARQ) and X7 (random access) extensions.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/rach.hpp"
#include "core/repetition.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/slot_format.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// nth_ul_window

TEST(NthUlWindowTest, PacksBackToBack) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto w1 = nth_ul_window(dm, 1_ns, 2, 1);
  const auto w2 = nth_ul_window(dm, 1_ns, 2, 2);
  const auto w4 = nth_ul_window(dm, 1_ns, 2, 4);
  ASSERT_TRUE(w1 && w2 && w4);
  EXPECT_EQ(w2->start, w1->end);  // consecutive legs abut
  // 8 UL symbols in one burst, ending exactly at the slot boundary (the
  // last symbol absorbs the integer-division remainder, so compare against
  // the boundary rather than 4 * duration).
  EXPECT_EQ(w4->end, Nanos{500'000});
}

TEST(NthUlWindowTest, BundleSpillsToNextPeriod) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  // DM has 4 two-symbol windows per period; the 5th leg lands next period.
  const auto w4 = nth_ul_window(dm, 1_ns, 2, 4);
  const auto w5 = nth_ul_window(dm, 1_ns, 2, 5);
  ASSERT_TRUE(w4 && w5);
  EXPECT_GE(w5->start, w4->end + 100_us);  // crossed the DL+guard gap
}

// ---------------------------------------------------------------------------
// Reliability schemes

TEST(ReliabilitySchemeTest, ResidualLossSharedByBothSchemes) {
  ReliabilitySchemeParams p;
  p.per_tx_bler = 0.1;
  p.max_attempts = 4;
  // 0.1 * 0.01 * 0.001 * 0.0001 = 1e-10.
  EXPECT_NEAR(residual_loss(p), 1e-10, 1e-12);

  // Monte-Carlo: both schemes deliver all packets at this loss level.
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  Rng rng(3);
  int h_ok = 0, r_ok = 0;
  for (int i = 0; i < 3000; ++i) {
    const Nanos at = dm.period() * (2 * i) + 13_us;
    h_ok += harq_outcome(dm, at, p, rng).delivered ? 1 : 0;
    r_ok += repetition_outcome(dm, at, p, rng).delivered ? 1 : 0;
  }
  EXPECT_EQ(h_ok, 3000);
  EXPECT_EQ(r_ok, 3000);
}

TEST(ReliabilitySchemeTest, CleanChannelIdenticalLatency) {
  ReliabilitySchemeParams p;
  p.per_tx_bler = 0.0;
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  Rng rng(4);
  const Nanos at = dm.period() * 8 + 1_ns;
  const auto h = harq_outcome(dm, at, p, rng);
  const auto r = repetition_outcome(dm, at, p, rng);
  ASSERT_TRUE(h.delivered && r.delivered);
  EXPECT_EQ(h.completion, r.completion);
  EXPECT_EQ(h.attempts, 1);
  EXPECT_EQ(r.attempts, 1);
}

TEST(ReliabilitySchemeTest, RepetitionRecoversFasterUnderLoss) {
  ReliabilitySchemeParams p;
  p.per_tx_bler = 0.5;
  p.combining_factor = 1.0;  // no combining: each leg independent
  p.harq_feedback_delay = 500_us;
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  Rng rng(5);
  RunningStats h_lat, r_lat;
  for (int i = 0; i < 5000; ++i) {
    const Nanos at = dm.period() * (3 * i) + 7_us;
    const auto h = harq_outcome(dm, at, p, rng);
    const auto r = repetition_outcome(dm, at, p, rng);
    if (h.delivered) h_lat.add((h.completion - at).us());
    if (r.delivered) r_lat.add((r.completion - at).us());
  }
  EXPECT_GT(h_lat.mean(), r_lat.mean() + 100.0);  // feedback delay shows up
  EXPECT_GT(h_lat.max(), r_lat.max());
}

TEST(ReliabilitySchemeTest, ExhaustedBudgetReportsUndelivered) {
  ReliabilitySchemeParams p;
  p.per_tx_bler = 1.0;
  p.combining_factor = 1.0;
  p.max_attempts = 3;
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  Rng rng(6);
  const auto h = harq_outcome(dm, dm.period() * 8, p, rng);
  const auto r = repetition_outcome(dm, dm.period() * 8, p, rng);
  EXPECT_FALSE(h.delivered);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(h.attempts, 3);
  EXPECT_EQ(r.attempts, 3);
}

// ---------------------------------------------------------------------------
// Random access

TEST(RachTest, TimelineIsContiguousAndFeasible) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Nanos base = align_up(dm.period() * 8, RachConfig::typical().prach_periodicity);
  const Timeline tl = trace_random_access(dm, base + 1_us);
  ASSERT_TRUE(tl.feasible);
  EXPECT_EQ(tl.steps.front().start, tl.arrival);
  EXPECT_EQ(tl.steps.back().end, tl.completion);
  for (std::size_t i = 1; i < tl.steps.size(); ++i) {
    EXPECT_EQ(tl.steps[i].start, tl.steps[i - 1].end);
  }
  // 4-step: msg1..msg4 all present.
  const std::string r = tl.render();
  EXPECT_NE(r.find("msg1"), std::string::npos);
  EXPECT_NE(r.find("msg2"), std::string::npos);
  EXPECT_NE(r.find("msg3"), std::string::npos);
  EXPECT_NE(r.find("msg4"), std::string::npos);
}

TEST(RachTest, OnGridArrivalUsesCurrentPrachPeriod) {
  // Boundary convention at the PRACH grid (same rule as SR/CG occasions):
  // a UE deciding to access exactly on a grid point takes THIS period's
  // occasion — the wait to msg1 must stay under one PRACH period, not be
  // bumped a whole period by an off-by-one in the align_up fallthrough.
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const RachConfig rc = RachConfig::typical();
  const Nanos base = align_up(dm.period() * 8, rc.prach_periodicity);
  const Timeline tl = trace_random_access(dm, base, rc);
  ASSERT_TRUE(tl.feasible);
  ASSERT_FALSE(tl.steps.empty());
  EXPECT_EQ(tl.steps.front().start, base);
  EXPECT_LT(tl.steps.front().end - base, rc.prach_periodicity);  // msg1 this period
}

TEST(RachTest, TwoStepSkipsMsg3And4) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Nanos base = align_up(dm.period() * 8, RachConfig::two_step().prach_periodicity);
  const Timeline tl = trace_random_access(dm, base + 1_us, RachConfig::two_step());
  ASSERT_TRUE(tl.feasible);
  const std::string r = tl.render();
  EXPECT_NE(r.find("msg1"), std::string::npos);
  EXPECT_NE(r.find("msg2"), std::string::npos);
  EXPECT_EQ(r.find("msg3"), std::string::npos);
  EXPECT_EQ(r.find("msg4"), std::string::npos);
}

TEST(RachTest, PrachWaitDominatesWorstCase) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto wc = analyze_rach_worst_case(dm);
  ASSERT_TRUE(wc.feasible);
  // Worst case ≈ PRACH periodicity + the handshake; far beyond 0.5 ms.
  EXPECT_GT(wc.worst, Nanos{10'000'000});
  EXPECT_LT(wc.worst, Nanos{14'000'000});
  EXPECT_GT(wc.worst, 20 * kUrllcOneWayDeadline);
}

TEST(RachTest, TwoStepFasterThanFourStep) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto four = analyze_rach_worst_case(dm, RachConfig::typical());
  const auto two = analyze_rach_worst_case(dm, RachConfig::two_step());
  EXPECT_LT(two.mean, four.mean);
  EXPECT_LT(two.best, four.best);
}

TEST(RachTest, WorksOnFddToo) {
  const FddConfig fdd{kMu2};
  const auto wc = analyze_rach_worst_case(fdd);
  ASSERT_TRUE(wc.feasible);
  // FDD removes the duplex waits but not the PRACH periodicity.
  EXPECT_GT(wc.worst, Nanos{9'000'000});
}

TEST(RachTest, InfeasibleWithoutUplink) {
  const SlotFormatConfig all_dl{kMu2, {0}};
  const Timeline tl = trace_random_access(all_dl, 1_ns);
  EXPECT_FALSE(tl.feasible);
}

}  // namespace
}  // namespace u5g
