// Example: why the paper rules out FR2 (mmWave) for URLLC despite its
// 15.625 µs slots (§1, §5): line-of-sight blockage destroys *reliability*.
// Reproduces the structure of the Fezeu et al. finding the paper cites —
// sub-millisecond latency achieved only in a small fraction of packets
// (4.4 % in [19]) — using the blockage process from phy/channel.
//
// FR1 at µ2 has 16x longer slots, yet wins on delivered-within-deadline.

#include <cstdio>

#include "core/latency_model.hpp"
#include "phy/channel.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

int main() {
  std::printf("== mmWave (FR2) vs sub-6 GHz (FR1): latency is not reliability ==\n\n");

  // FR2: µ6 gives 15.625 µs slots — protocol latency is tiny...
  const TddCommonConfig fr2_cfg{kMu6, TddPattern{500_us, 15, 4, 8, 16}};
  const auto fr2_wc = analyze_worst_case(fr2_cfg, AccessMode::GrantFreeUl, {});
  // FR1: the paper's DM design at µ2.
  const TddCommonConfig fr1_cfg = TddCommonConfig::dm(kMu2);
  const auto fr1_wc = analyze_worst_case(fr1_cfg, AccessMode::GrantFreeUl, {});

  std::printf("protocol-only worst-case UL latency:\n");
  std::printf("   FR2 (u6, 15.625 us slots): %8.1f us\n", fr2_wc.worst.us());
  std::printf("   FR1 (u2, DM):              %8.1f us\n\n", fr1_wc.worst.us());

  // ...but the FR2 link spends a large fraction of time blocked.
  constexpr int kPackets = 200'000;
  const Nanos spacing = 1_ms;

  MmWaveBlockage fr2_link{MmWaveBlockage::Params{}, Rng{101}};
  int fr2_ok = 0;
  for (int i = 0; i < kPackets; ++i) {
    if (fr2_link.transmit_ok(spacing * i)) ++fr2_ok;
  }
  // FR1 link: no blockage process; a well-adapted MCS gives ~1e-4 BLER.
  LinkModel fr1_link{/*snr_db=*/18.0};
  const McsEntry mcs = highest_mcs_below_rate(0.5);
  Rng fr1_rng{102};
  int fr1_ok = 0;
  for (int i = 0; i < kPackets; ++i) {
    if (fr1_link.transmit_ok(mcs, fr1_rng)) ++fr1_ok;
  }

  const double fr2_delivery = static_cast<double>(fr2_ok) / kPackets;
  const double fr1_delivery = static_cast<double>(fr1_ok) / kPackets;
  std::printf("first-transmission delivery over %d packets:\n", kPackets);
  std::printf("   FR2 with blockage (LoS %.0f%% of time): %7.3f%%\n",
              fr2_link.los_fraction() * 100, fr2_delivery * 100);
  std::printf("   FR1 at 18 dB SNR, MCS %d (%s r=%.2f):   %7.3f%%\n", mcs.index,
              std::string(to_string(mcs.modulation)).c_str(), mcs.code_rate(),
              fr1_delivery * 100);

  // Packets meeting BOTH the 0.5 ms deadline and delivery:
  const double fr2_urllc = fr2_delivery;  // latency always < deadline on FR2
  const double fr1_urllc = fr1_delivery;  // DM worst case is exactly at the deadline
  std::printf("\nfraction usable for URLLC (delivered AND within 0.5 ms):\n");
  std::printf("   FR2: %7.3f%%   <- nowhere near 99.99%% (the paper cites 4.4%% sub-ms in "
              "the field [19])\n",
              fr2_urllc * 100);
  std::printf("   FR1: %7.3f%%   <- reliability is attainable; latency needs §5's choices\n",
              fr1_urllc * 100);
  return 0;
}
