#include "core/budget.hpp"

#include <algorithm>

#include "serve/feasibility_service.hpp"

namespace u5g {

namespace {

/// Mean + k·std of a layer, as a duration.
Nanos tail_of(const LayerTime& t, double k) {
  return from_us(t.mean_us + k * t.std_us);
}

/// Tail of a whole stack traversal (sum of layers' tails — conservative).
Nanos stack_tail(const ProcessingProfile& p, double k) {
  return tail_of(p.sdap, k) + tail_of(p.pdcp, k) + tail_of(p.rlc, k) + tail_of(p.mac, k) +
         tail_of(p.phy, k);
}

/// Nominal radio cost for a slot-sized buffer on this head.
Nanos radio_cost(const RadioHeadParams& rh, Numerology num) {
  RadioHead probe(rh, Rng{1});
  return probe.nominal_tx_latency(rh.sample_rate.samples_in(num.slot_duration()));
}

}  // namespace

LatencyBudget compute_budget(const DuplexConfig& cfg, AccessMode mode, Nanos deadline,
                             int data_tx_symbols) {
  LatencyBudget b;
  b.mode = mode;
  b.deadline = deadline;
  LatencyModelParams p;
  p.data_tx_symbols = data_tx_symbols;
  const WorstCaseResult wc = FeasibilityService::shared().worst_case(cfg, mode, p);
  b.protocol_floor = wc.worst;
  b.protocol_feasible = wc.feasible && wc.worst <= deadline;
  b.remaining = b.protocol_feasible ? deadline - wc.worst : Nanos::zero();
  return b;
}

Platform Platform::software_testbed() {
  return {"software testbed (i7 + modem + USB2 B210)",
          ProcessingProfile::gnb_i7(),
          ProcessingProfile::ue_modem(),
          RadioHeadParams::usrp_b210_usb2(),
          RadioHeadParams::pcie_sdr(),
          3.0};
}

Platform Platform::software_tuned() {
  Platform p{"tuned software (i7 both ends, PCIe, RT kernel)",
             ProcessingProfile::gnb_i7(),
             ProcessingProfile::gnb_i7(),
             RadioHeadParams::pcie_sdr(),
             RadioHeadParams::pcie_sdr(),
             3.0};
  p.gnb_radio.bus = p.gnb_radio.bus.with_rt_kernel();
  p.ue_radio.bus = p.ue_radio.bus.with_rt_kernel();
  return p;
}

Platform Platform::hardware_asic() {
  return {"ASIC stack (the footnote-1 strawman)",
          ProcessingProfile::asic(),
          ProcessingProfile::asic(),
          RadioHeadParams::pcie_sdr(),
          RadioHeadParams::pcie_sdr(),
          3.0};
}

BudgetReport check_platform(const DuplexConfig& cfg, AccessMode mode, const Platform& platform,
                            Nanos deadline) {
  BudgetReport r;
  r.budget = compute_budget(cfg, mode, deadline);
  const Numerology num = cfg.numerology();
  const Nanos slot = num.slot_duration();

  // §5's three requirement groups, per end.
  const bool uplink = mode != AccessMode::Downlink;
  const ProcessingProfile& sender = uplink ? platform.ue_proc : platform.gnb_proc;
  const ProcessingProfile& receiver = uplink ? platform.gnb_proc : platform.ue_proc;
  const RadioHeadParams& tx_radio = uplink ? platform.ue_radio : platform.gnb_radio;
  const RadioHeadParams& rx_radio = uplink ? platform.gnb_radio : platform.ue_radio;
  const double k = platform.sigma_factor;

  r.items.push_back({"(i) MAC scheduling (gNB MAC tail)",
                     tail_of(platform.gnb_proc.mac, k), slot, false});
  r.items.push_back({"(ii) sender stack traversal", stack_tail(sender, k), slot, false});
  r.items.push_back({"(ii) receiver stack traversal", stack_tail(receiver, k), slot, false});
  r.items.push_back({"(iii) TX radio (slot buffer)", radio_cost(tx_radio, num), slot, false});
  r.items.push_back({"(iii) RX radio (slot buffer)", radio_cost(rx_radio, num), slot, false});

  r.all_within = true;
  Nanos leaked = Nanos::zero();
  Nanos hidden_tail = Nanos::zero();
  for (BudgetItem& item : r.items) {
    item.within = item.cost <= item.threshold;
    r.all_within = r.all_within && item.within;
    if (item.within) {
      // Pipelined behind a slot on the sender side; the receiver-side
      // traversal and RX radio still land on the critical path.
    } else {
      // Each slot-overflowing item leaks whole extra slots.
      leaked += align_up(item.cost, slot) - slot;
    }
  }
  // Critical-path platform cost: receiver traversal + RX radio always add;
  // sender-side costs are hidden behind the slot pipeline when within.
  hidden_tail = stack_tail(receiver, k) + radio_cost(rx_radio, num);
  r.projected_worst = r.budget.protocol_floor + hidden_tail + leaked;
  r.meets_deadline = r.budget.protocol_feasible && r.projected_worst <= deadline;
  return r;
}

}  // namespace u5g
