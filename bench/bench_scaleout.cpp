// Scale-out throughput: UE-packets/s of the sharded multi-cell engine as a
// function of worker threads, on a 16-cell x 8-UE scenario with inter-cell
// load coupling (so the slot-boundary barrier and the cross-shard load
// exchange are actually exercised).
//
// Besides throughput, this bench *verifies* the engine's determinism
// contract: the merged metrics JSON of every thread count must be
// byte-identical to the 1-thread baseline. `--strict` turns a mismatch into
// a non-zero exit (CI gate). Speedups are reported but never asserted —
// they depend on the machine's core count.
//
// CLI: [--packets N] (per UE per direction) [--seed S] [--threads T]
//      [--json FILE] [--trace FILE] [--strict]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "sim/sharded.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kCells = 16;
constexpr int kUes = 8;

StackConfig scenario(std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_free(seed);
  cfg.num_cells = kCells;
  cfg.num_ues = kUes;
  cfg.intercell_load_coupling = 0.02;  // finite lookahead: barrier every slot
  cfg.trace.enabled = true;
  cfg.trace.metrics = true;  // merged registry is the determinism witness
  return cfg;
}

/// Deterministic per-(cell, ue, packet) arrival offset within the period.
Nanos offset_in(Nanos period, std::uint64_t seed, int cell, int ue, int p) {
  const std::uint64_t h = splitmix64(seed ^ replication_seed(
                                                static_cast<std::uint64_t>(cell) * 1000003ULL +
                                                    static_cast<std::uint64_t>(ue) * 1009ULL,
                                                static_cast<std::uint64_t>(p)));
  return Nanos{static_cast<std::int64_t>(h % static_cast<std::uint64_t>(period.count()))};
}

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
  std::string metrics_json;
};

RunResult run_once(const StackConfig& cfg, int threads, int packets, Nanos period) {
  ShardedEngine eng(cfg, ShardedOptions{threads});
  for (int c = 0; c < eng.num_cells(); ++c) {
    for (int u = 0; u < cfg.num_ues; ++u) {
      for (int p = 0; p < packets; ++p) {
        const Nanos base = period * (2 * p);
        eng.send_uplink_at(base + offset_in(period, cfg.seed, c, u, p), c, u);
        eng.send_downlink_at(base + period + offset_in(period, cfg.seed ^ 0xD1, c, u, p), c, u);
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(period * (2 * packets + 20));
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.delivered = eng.packets_delivered();
  r.events = eng.events_fired();
  r.metrics_json = eng.merged_metrics().to_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 50;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);
  const int packets = opt.packets > 0 ? opt.packets : 50;
  const Nanos period = 2_ms;
  const StackConfig cfg = scenario(opt.seed);

  std::printf("== Scale-out: %d cells x %d UEs, %d UL + %d DL packets per UE ==\n\n", kCells,
              kUes, packets, packets);

  std::vector<int> sweep = {1, 2, 4, 8};
  if (opt.threads > 0 && opt.threads != 8) sweep.push_back(opt.threads);

  TextTable out({"threads", "wall [s]", "UE-packets/s", "events/s", "speedup", "delivered",
                 "identical"});
  bool identical = true;
  double base_pps = 0.0;
  std::string baseline;
  struct Row {
    int threads;
    double wall_s, pps, eps, speedup;
    std::uint64_t delivered;
    bool same;
  };
  std::vector<Row> rows;
  for (int t : sweep) {
    const RunResult r = run_once(cfg, t, packets, period);
    const double pps = static_cast<double>(r.delivered) / r.wall_s;
    const double eps = static_cast<double>(r.events) / r.wall_s;
    if (t == 1) {
      baseline = r.metrics_json;
      base_pps = pps;
    }
    const bool same = r.metrics_json == baseline;
    identical = identical && same;
    rows.push_back(Row{t, r.wall_s, pps, eps, pps / base_pps, r.delivered, same});
    out.add_row({std::to_string(t), fmt2(r.wall_s), fmt2(pps), fmt2(eps), fmt2(pps / base_pps),
                 std::to_string(r.delivered), same ? "yes" : "NO"});
  }
  std::printf("%s\n", out.render().c_str());
  std::printf("merged metrics across thread counts: %s\n",
              identical ? "bitwise-identical" : "MISMATCH");

  if (opt.json) {
    std::FILE* f = std::fopen(opt.json->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_scaleout: cannot write %s\n", opt.json->c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"scaleout\",\"cells\":%d,\"ues\":%d,\"packets_per_ue\":%d,\n",
                 kCells, kUes, packets);
    std::fprintf(f, " \"metrics_identical\":%s,\"results\":[\n", identical ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"threads\":%d,\"wall_s\":%.6f,\"ue_packets_per_s\":%.1f,"
                   "\"events_per_s\":%.1f,\"speedup\":%.3f,\"delivered\":%llu,"
                   "\"identical\":%s}%s\n",
                   r.threads, r.wall_s, r.pps, r.eps, r.speedup,
                   static_cast<unsigned long long>(r.delivered), r.same ? "true" : "false",
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
  }

  if (opt.trace) {
    // A small traced run (tracing every packet of the full sweep would dwarf
    // the trace viewer): 4 cells, 1 UE, spans on, one lane per cell.
    StackConfig tcfg = cfg;
    tcfg.num_cells = 4;
    tcfg.num_ues = 1;
    tcfg.trace.spans = true;
    ShardedEngine eng(tcfg, ShardedOptions{1});
    for (int c = 0; c < eng.num_cells(); ++c) {
      eng.send_uplink_at(offset_in(period, tcfg.seed, c, 0, 0), c, 0);
      eng.send_downlink_at(period + offset_in(period, tcfg.seed ^ 0xD1, c, 0, 0), c, 0);
    }
    eng.run_until(period * 20);
    const auto lanes = eng.trace_lanes();
    if (!write_chrome_trace(*opt.trace, lanes)) {
      std::fprintf(stderr, "bench_scaleout: cannot write %s\n", opt.trace->c_str());
      return 1;
    }
  }

  return (opt.strict && !identical) ? 1 : 0;
}
