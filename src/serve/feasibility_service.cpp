#include "serve/feasibility_service.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/e2e_system.hpp"
#include "sim/runner.hpp"
#include "tdd/mini_slot.hpp"

namespace u5g {

namespace {

/// Key-space tags: the two caches are separate LRUs, but tagging keeps a key
/// from ever being meaningful in the wrong one.
constexpr std::uint64_t kAnalyticTag = 0xA11A'11CA;
constexpr std::uint64_t kTailTag = 0x7A11'CAFE;

CanonicalWords analytic_key(const FeasibilityQuery& q) {
  CanonicalWords k;
  k.add(kAnalyticTag);
  q.duplex->append_value_words(k);
  k.add_signed(static_cast<int>(q.mode));
  k.add_signed(q.model.data_tx_symbols);
  k.add_signed(q.model.sr_symbols);
  k.add_signed(q.model.sender_processing.count());
  k.add_signed(q.model.receiver_processing.count());
  k.add_signed(q.model.grant_decode.count());
  k.add_signed(q.model.sr_decode.count());
  k.add_signed(q.model.radio_tx.count());
  k.add_signed(q.model.radio_rx.count());
  k.add_signed(q.grid_per_symbol);
  // Deliberately NOT keyed: the deadline. The worst case is deadline-free;
  // one cached result answers every deadline for the same pattern.
  return k;
}

CanonicalWords tail_key(const SimTailSpec& spec, AccessMode mode) {
  CanonicalWords k;
  k.add(kTailTag);
  spec.config.append_canonical_words(k);
  k.add_signed(static_cast<int>(mode));
  k.add_signed(spec.replications);
  k.add_signed(spec.packets);
  // Deliberately NOT keyed: quantile and deadline. The cache stores the
  // merged sample set; any (quantile, deadline) reading derives from it.
  return k;
}

}  // namespace

FeasibilityService::FeasibilityService(Options opt)
    : opt_(opt),
      analytic_(opt.analytic_cache_capacity),
      tail_(opt.tail_cache_capacity) {}

FeasibilityService::~FeasibilityService() = default;

ThreadPool& FeasibilityService::pool() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(resolve_threads(opt_.threads));
  return *pool_;
}

FeasibilityService::TailSamples FeasibilityService::run_tail(const SimTailSpec& spec,
                                                             AccessMode mode, int sim_threads) {
  if (!spec.config.duplex) {
    throw std::invalid_argument{"SimTailSpec: config.duplex is required"};
  }
  StackConfig base = spec.config;
  if (mode != AccessMode::Downlink) base.grant_free = (mode == AccessMode::GrantFreeUl);
  const Nanos period = base.duplex->period();
  const int packets = std::max(spec.packets, 1);
  auto parts = run_replications(
      std::max(spec.replications, 1), base.seed,
      [&](int, std::uint64_t seed) {
        StackConfig cfg = base;
        cfg.seed = seed;
        E2eSystem sys(cfg);
        // The paper's sparse ping workload: one packet per double period at
        // a uniform offset, so packets never queue behind each other and
        // every sample sees an independent arrival phase.
        Rng arrivals(seed ^ 0x7A11u);
        for (int p = 0; p < packets; ++p) {
          const Nanos at = period * (2 * p) +
                           Nanos{static_cast<std::int64_t>(
                               arrivals.uniform() * static_cast<double>(period.count()))};
          if (mode == AccessMode::Downlink) {
            sys.send_downlink_at(at);
          } else {
            sys.send_uplink_at(at);
          }
        }
        sys.run_until(period * (2 * packets + 20));
        TailSamples out;
        out.latency_us = sys.latency_samples_us(
            mode == AccessMode::Downlink ? Direction::Downlink : Direction::Uplink);
        out.offered = static_cast<std::size_t>(packets);
        return out;
      },
      {sim_threads});
  TailSamples merged;
  for (TailSamples& part : parts) {
    merged.latency_us.merge(part.latency_us);
    merged.offered += part.offered;
  }
  return merged;
}

FeasibilityVerdict FeasibilityService::answer(const FeasibilityQuery& q, int sim_threads) {
  if (!q.duplex) throw std::invalid_argument{"FeasibilityQuery: duplex is required"};
  FeasibilityVerdict v;
  v.mode = q.mode;
  v.deadline = q.deadline;

  // 1. Analytic fast path: probe under the lock, compute outside it.
  const CanonicalWords akey = analytic_key(q);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++queries_;
    if (const WorstCaseResult* cached = analytic_.find(akey)) {
      v.worst_case = *cached;
      v.analytic_cache_hit = true;
    }
  }
  if (!v.analytic_cache_hit) {
    const WorstCaseResult wc = analyze_worst_case(*q.duplex, q.mode, q.model, q.grid_per_symbol);
    v.worst_case = wc;
    std::lock_guard<std::mutex> lk(mu_);
    analytic_.insert(akey, wc);
  }
  v.analytic_meets = v.worst_case.feasible && v.worst_case.worst <= q.deadline;
  v.meets_deadline = v.analytic_meets;

  // 2. Sim-tail fallback, when asked for.
  if (q.tail) {
    const CanonicalWords tkey = tail_key(*q.tail, q.mode);
    TailSamples samples;
    bool hit = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (const TailSamples* cached = tail_.find(tkey)) {
        samples = *cached;  // copy out: quantile() sorts, and the pointer
        hit = true;         // dies at the next insert anyway
      }
    }
    if (!hit) {
      samples = run_tail(*q.tail, q.mode, sim_threads);
      std::lock_guard<std::mutex> lk(mu_);
      tail_.insert(tkey, samples);
    }
    SimTailResult tr;
    tr.quantile = q.tail->quantile;
    tr.quantile_latency_us = samples.latency_us.quantile(q.tail->quantile);
    tr.reliability = evaluate_reliability(samples.latency_us, samples.offered, q.deadline);
    // Loss-aware verdict: the fraction of *offered* packets delivered within
    // the deadline must reach the requested quantile (lost packets count
    // against it, exactly as §6 counts reliability).
    tr.meets_deadline = tr.reliability.fraction_within >= tr.quantile;
    v.tail_cache_hit = hit;
    v.meets_deadline = v.analytic_meets && tr.meets_deadline;
    v.tail = tr;
  }
  return v;
}

FeasibilityVerdict FeasibilityService::query(const FeasibilityQuery& q) {
  return answer(q, opt_.sim_threads);
}

std::future<FeasibilityVerdict> FeasibilityService::query_async(FeasibilityQuery q) {
  auto task = std::make_shared<std::packaged_task<FeasibilityVerdict()>>(
      [this, q = std::move(q)] { return answer(q, /*sim_threads=*/1); });
  std::future<FeasibilityVerdict> fut = task->get_future();
  pool().submit([task] { (*task)(); });
  return fut;
}

std::vector<FeasibilityVerdict> FeasibilityService::query_batch(const QueryBatch& batch) {
  std::vector<FeasibilityVerdict> out(batch.size());
  if (batch.empty()) return out;
  if (batch.size() == 1) {
    out[0] = answer(batch[0], opt_.sim_threads);
    return out;
  }
  ThreadPool& p = pool();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    p.submit([this, &batch, &out, i] { out[i] = answer(batch[i], /*sim_threads=*/1); });
  }
  p.wait_idle();
  return out;
}

void FeasibilityService::query_batch_async(
    QueryBatch batch, std::function<void(std::vector<FeasibilityVerdict>)> done) {
  struct BatchState {
    QueryBatch batch;
    std::vector<FeasibilityVerdict> out;
    std::atomic<std::size_t> remaining;
    std::function<void(std::vector<FeasibilityVerdict>)> done;
  };
  auto st = std::make_shared<BatchState>();
  st->batch = std::move(batch);
  st->out.resize(st->batch.size());
  st->remaining.store(st->batch.size());
  st->done = std::move(done);
  if (st->batch.empty()) {
    pool().submit([st] { st->done(std::move(st->out)); });
    return;
  }
  for (std::size_t i = 0; i < st->batch.size(); ++i) {
    pool().submit([this, st, i] {
      st->out[i] = answer(st->batch[i], /*sim_threads=*/1);
      if (st->remaining.fetch_sub(1) == 1) st->done(std::move(st->out));
    });
  }
}

WorstCaseResult FeasibilityService::worst_case(const DuplexConfig& cfg, AccessMode mode,
                                               const LatencyModelParams& p, int grid_per_symbol) {
  // Non-owning view: the query is answered synchronously, the handle never
  // outlives `cfg`.
  FeasibilityQuery q;
  q.duplex = std::shared_ptr<const DuplexConfig>(&cfg, [](const DuplexConfig*) {});
  q.mode = mode;
  q.model = p;
  q.grid_per_symbol = grid_per_symbol;
  return answer(q, /*sim_threads=*/1).worst_case;
}

FeasibilityColumn FeasibilityService::evaluate_column(const DuplexConfig& cfg, Nanos deadline,
                                                      const LatencyModelParams& p) {
  FeasibilityColumn col;
  col.config_name = cfg.name();
  col.period_render = cfg.render_period();
  for (AccessMode m : {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
    FeasibilityCell cell;
    cell.mode = m;
    cell.worst_case = worst_case(cfg, m, p);
    cell.deadline = deadline;
    cell.meets_deadline = cell.worst_case.feasible && cell.worst_case.worst <= deadline;
    col.cells.push_back(cell);
  }
  if (const auto* ms = dynamic_cast<const MiniSlotConfig*>(&cfg)) {
    col.standards_caveat = ms->violates_standard_recommendation();
  }
  return col;
}

FeasibilityService::Stats FeasibilityService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.queries = queries_;
  s.analytic_hits = analytic_.stats().hits;
  s.analytic_misses = analytic_.stats().misses;
  s.tail_hits = tail_.stats().hits;
  s.tail_misses = tail_.stats().misses;
  s.evictions = analytic_.stats().evictions + tail_.stats().evictions;
  return s;
}

FeasibilityService& FeasibilityService::shared() {
  static FeasibilityService service{Options{}};
  return service;
}

}  // namespace u5g
