// Tests for the ASCII Gantt renderer.

#include <gtest/gtest.h>

#include "core/gantt.hpp"
#include "core/journey.hpp"
#include "tdd/common_config.hpp"
#include "tdd/slot_format.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

LatencyModelParams with_costs() {
  LatencyModelParams p;
  p.sender_processing = 20_us;
  p.receiver_processing = 30_us;
  p.radio_tx = 10_us;
  p.radio_rx = 15_us;
  return p;
}

TEST(GanttTest, ContainsEveryStepAndGlyph) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Timeline tl =
      trace_transmission(dm, AccessMode::GrantBasedUl, dm.period() * 8 + 1_ns, with_costs());
  const std::string g = render_gantt(dm, tl);
  for (const TimelineStep& s : tl.steps) {
    EXPECT_NE(g.find(s.label), std::string::npos) << s.label;
  }
  EXPECT_NE(g.find('='), std::string::npos);  // protocol
  EXPECT_NE(g.find('#'), std::string::npos);  // processing
  EXPECT_NE(g.find('~'), std::string::npos);  // radio
  EXPECT_NE(g.find("legend:"), std::string::npos);
  EXPECT_NE(g.find("latency"), std::string::npos);
}

TEST(GanttTest, SlotTrackShowsStructure) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Timeline tl =
      trace_transmission(dm, AccessMode::GrantFreeUl, dm.period() * 8 + 1_ns, with_costs());
  const std::string g = render_gantt(dm, tl);
  // DM has both D and U symbols and guard gaps in view.
  EXPECT_NE(g.find('D'), std::string::npos);
  EXPECT_NE(g.find('U'), std::string::npos);
  EXPECT_NE(g.find('|'), std::string::npos);  // slot boundaries
}

TEST(GanttTest, OptionsRespected) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Timeline tl =
      trace_transmission(dm, AccessMode::Downlink, dm.period() * 8 + 1_ns, with_costs());
  GanttOptions opt;
  opt.show_legend = false;
  opt.show_slot_track = false;
  const std::string g = render_gantt(dm, tl, opt);
  EXPECT_EQ(g.find("legend:"), std::string::npos);
  EXPECT_EQ(g.find("slots"), std::string::npos);
}

TEST(GanttTest, RowsFitTheConfiguredWidth) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Timeline tl =
      trace_transmission(dm, AccessMode::GrantBasedUl, dm.period() * 8 + 1_ns, with_costs());
  GanttOptions opt;
  opt.columns = 48;
  opt.show_legend = false;
  const std::string g = render_gantt(dm, tl, opt);
  // Bar segments never overflow the axis: find each row's bar region length.
  std::size_t pos = 0;
  while ((pos = g.find('\n', pos)) != std::string::npos) {
    ++pos;
  }
  // Structural smoke: the narrow render is shorter than a wide one.
  GanttOptions wide;
  wide.columns = 120;
  wide.show_legend = false;
  EXPECT_LT(g.size(), render_gantt(dm, tl, wide).size());
}

TEST(GanttTest, JourneyRenderStacksAllParts) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  JourneyParams p;
  p.ran = with_costs();
  const PingJourney j = trace_ping(dddu, dddu.period() * 8 + 100_us, p);
  const std::string g = render_gantt(dddu, j);
  EXPECT_NE(g.find("uplink (ping request)"), std::string::npos);
  EXPECT_NE(g.find("core network + host"), std::string::npos);
  EXPECT_NE(g.find("downlink (ping reply)"), std::string::npos);
  EXPECT_NE(g.find("round trip:"), std::string::npos);
}

TEST(GanttTest, InfeasibleTimelineIsSafe) {
  const SlotFormatConfig all_dl{kMu2, {0}};
  const Timeline tl = trace_transmission(all_dl, AccessMode::GrantFreeUl, 1_ns, {});
  EXPECT_NE(render_gantt(all_dl, tl).find("infeasible"), std::string::npos);
}

}  // namespace
}  // namespace u5g
