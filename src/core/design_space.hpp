#pragma once
// Design-space exploration (§5's conclusion generalised): enumerate the
// feasible URLLC design points across numerologies, duplex configurations
// and access modes, annotating each with the practical constraints the
// paper raises — band availability for private 5G, standards caveats,
// grant-free scalability cost, and the processing/radio budget left over
// ("the radio and processing latency should be less than one slot").

#include <memory>
#include <string>
#include <vector>

#include "core/latency_model.hpp"
#include "phy/band.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// One evaluated design point.
struct DesignPoint {
  std::string config_name;
  int mu = 0;
  AccessMode ul_mode = AccessMode::GrantFreeUl;
  Nanos worst_ul{};
  Nanos worst_dl{};
  bool meets_deadline = false;
  bool available_to_private_5g = true;  ///< FDD points are not (§2/§9)
  bool standards_caveat = false;        ///< mini-slot below recommended slot duration
  /// Remaining per-slot budget for processing+radio before an extra slot is
  /// missed: slot duration (the §5 threshold).
  Nanos processing_radio_budget{};
};

struct DesignSpaceOptions {
  Nanos deadline = kUrllcOneWayDeadline;
  LatencyModelParams model{};
  bool fr1_only = true;  ///< the paper's scope: FR2 fails reliability
  /// Retained for source compatibility: the sweep now submits one
  /// QueryBatch to `FeasibilityService::shared()`, whose pool sizes itself;
  /// answers are pure values, identical at any worker count.
  int threads = 0;
};

/// Enumerate and evaluate every candidate design point.
[[nodiscard]] std::vector<DesignPoint> explore_design_space(const DesignSpaceOptions& opt = {});

/// Only the points that meet the deadline on both directions.
[[nodiscard]] std::vector<DesignPoint> viable_designs(const DesignSpaceOptions& opt = {});

}  // namespace u5g
