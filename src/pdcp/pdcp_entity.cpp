#include "pdcp/pdcp_entity.hpp"

#include <array>

namespace u5g {

void PdcpTx::protect(ByteBuffer& sdu) {
  const std::uint32_t count = next_count_++;

  apply_keystream(sdu.bytes(), cfg_.security, count);

  if (cfg_.integrity_enabled) {
    const std::uint32_t tag = integrity_tag(sdu.bytes(), cfg_.security, count);
    std::array<std::uint8_t, 4> mac{};
    put_be32(mac, tag);
    sdu.append(mac);
  }

  const std::uint32_t sn = count % cfg_.sn_modulus();
  if (cfg_.header_bytes() == 2) {
    // D/C=1 | R R R | SN[11:8]  ,  SN[7:0]
    std::array<std::uint8_t, 2> h{static_cast<std::uint8_t>(0x80 | ((sn >> 8) & 0x0F)),
                                  static_cast<std::uint8_t>(sn & 0xFF)};
    sdu.push_header(h);
  } else {
    std::array<std::uint8_t, 3> h{static_cast<std::uint8_t>(0x80 | ((sn >> 16) & 0x03)),
                                  static_cast<std::uint8_t>((sn >> 8) & 0xFF),
                                  static_cast<std::uint8_t>(sn & 0xFF)};
    sdu.push_header(h);
  }
}

std::uint32_t PdcpRx::infer_count(std::uint32_t sn) const {
  // TS 38.323: pick the COUNT with this SN closest to the expected COUNT.
  const std::uint32_t mod = cfg_.sn_modulus();
  const std::uint32_t base = expected_ & ~(mod - 1);
  std::uint32_t best = base + sn;
  auto dist = [&](std::uint32_t c) {
    return c >= expected_ ? c - expected_ : expected_ - c;
  };
  for (const std::int64_t cand : {static_cast<std::int64_t>(base) - mod,
                                  static_cast<std::int64_t>(base) + mod}) {
    if (cand < 0) continue;
    const auto c = static_cast<std::uint32_t>(cand) + sn;
    if (dist(c) < dist(best)) best = c;
  }
  return best;
}

bool PdcpRx::receive(ByteBuffer&& pdu, Deliver deliver) {
  const std::size_t hdr = cfg_.header_bytes();
  if (pdu.size() < hdr + (cfg_.integrity_enabled ? 4u : 0u)) return false;

  std::uint32_t sn = 0;
  {
    const auto h = pdu.pop_header(hdr);
    sn = hdr == 2 ? (static_cast<std::uint32_t>(h[0] & 0x0F) << 8) | h[1]
                  : (static_cast<std::uint32_t>(h[0] & 0x03) << 16) |
                        (static_cast<std::uint32_t>(h[1]) << 8) | h[2];
  }
  const std::uint32_t count = infer_count(sn);

  if (count < expected_ || held_.contains(count)) return false;  // stale or duplicate

  if (cfg_.integrity_enabled) {
    const auto body = pdu.bytes();
    const std::uint32_t got = get_be32(body.subspan(body.size() - 4));
    pdu.truncate_back(4);
    const std::uint32_t want = integrity_tag(pdu.bytes(), cfg_.security, count);
    if (got != want) {
      ++integrity_failures_;
      return false;
    }
  }

  apply_keystream(pdu.bytes(), cfg_.security, count);

  if (count == expected_ && held_.empty()) {
    // In-order fast path (the loss-free steady state): deliver directly,
    // never touching the reordering map — no node allocation per packet.
    ++expected_;
    PacketMeta meta;
    meta.count = count;
    deliver(std::move(pdu), meta);
    return true;
  }

  held_.emplace(count, std::move(pdu));
  // Deliver the in-order run starting at expected_.
  for (auto it = held_.begin(); it != held_.end() && it->first == expected_;) {
    PacketMeta meta;
    meta.count = it->first;
    deliver(std::move(it->second), meta);
    it = held_.erase(it);
    ++expected_;
  }
  return true;
}

void PdcpRx::flush(Deliver deliver) {
  for (auto& [count, buf] : held_) {
    PacketMeta meta;
    meta.count = count;
    deliver(std::move(buf), meta);
    expected_ = count + 1;
  }
  held_.clear();
}

}  // namespace u5g
