#pragma once
// Strongly-typed identifiers for network entities. Distinct types prevent
// accidentally passing a UE id where a HARQ process id is expected.

#include <compare>
#include <cstdint>
#include <functional>

namespace u5g {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : v_(v) {}
  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  std::uint32_t v_ = 0;
};

struct UeTag {};
struct CellTag {};
struct PacketTag {};
struct HarqTag {};
struct QosFlowTag {};
struct BearerTag {};

using UeId = Id<UeTag>;
using CellId = Id<CellTag>;
using PacketId = Id<PacketTag>;
using HarqId = Id<HarqTag>;
using QosFlowId = Id<QosFlowTag>;
using BearerId = Id<BearerTag>;

}  // namespace u5g

template <typename Tag>
struct std::hash<u5g::Id<Tag>> {
  std::size_t operator()(u5g::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
