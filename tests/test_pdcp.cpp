// Unit tests for src/pdcp: keystream/integrity primitives, protect/receive
// round trips, reordering, duplicate/stale rejection, SN inference.

#include <gtest/gtest.h>

#include <vector>

#include "pdcp/cipher.hpp"
#include "pdcp/pdcp_entity.hpp"

namespace u5g {
namespace {

ByteBuffer payload(std::size_t n, std::uint8_t seed = 1) {
  ByteBuffer b(n);
  for (std::size_t i = 0; i < n; ++i) b.bytes()[i] = static_cast<std::uint8_t>(seed + 3 * i);
  return b;
}

bool same_bytes(const ByteBuffer& a, const ByteBuffer& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.bytes()[i] != b.bytes()[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cipher primitives

TEST(CipherTest, KeystreamIsInvolutory) {
  ByteBuffer b = payload(64);
  const ByteBuffer orig = b;
  const CipherContext ctx{};
  apply_keystream(b.bytes(), ctx, 7);
  EXPECT_FALSE(same_bytes(b, orig));  // actually ciphered
  apply_keystream(b.bytes(), ctx, 7);
  EXPECT_TRUE(same_bytes(b, orig));
}

TEST(CipherTest, KeystreamDependsOnAllInputs) {
  const ByteBuffer orig = payload(32);
  auto cipher_with = [&](CipherContext ctx, std::uint32_t count) {
    ByteBuffer b = orig;
    apply_keystream(b.bytes(), ctx, count);
    return b;
  };
  const ByteBuffer base = cipher_with(CipherContext{}, 1);
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{}, 2)));                  // count
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{.key = 99}, 1)));         // key
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{.bearer = 5}, 1)));       // bearer
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{.downlink = false}, 1))); // direction
}

TEST(CipherTest, IntegrityDetectsBitFlip) {
  ByteBuffer b = payload(48);
  const CipherContext ctx{};
  const std::uint32_t tag = integrity_tag(b.bytes(), ctx, 3);
  b.bytes()[20] ^= 0x01;
  EXPECT_NE(tag, integrity_tag(b.bytes(), ctx, 3));
}

TEST(CipherTest, IntegrityBoundToCountAndDirection) {
  const ByteBuffer b = payload(16);
  const CipherContext dl{};
  CipherContext ul = dl;
  ul.downlink = false;
  EXPECT_NE(integrity_tag(b.bytes(), dl, 1), integrity_tag(b.bytes(), dl, 2));
  EXPECT_NE(integrity_tag(b.bytes(), dl, 1), integrity_tag(b.bytes(), ul, 1));
}

// ---------------------------------------------------------------------------
// Entity round trips

TEST(PdcpTest, ProtectReceiveRoundTrip) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer b = payload(100, 0x40);
  tx.protect(b);
  EXPECT_EQ(b.size(), 100u + 2 + 4);  // header + MAC-I

  std::vector<std::uint32_t> counts;
  ByteBuffer delivered(0);
  EXPECT_TRUE(rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta& m) {
    delivered = std::move(s);
    counts.push_back(m.count);
  }));
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_TRUE(same_bytes(delivered, payload(100, 0x40)));
}

TEST(PdcpTest, InOrderStreamDeliversAll) {
  PdcpTx tx;
  PdcpRx rx;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    ByteBuffer b = payload(10, static_cast<std::uint8_t>(i));
    tx.protect(b);
    rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta& m) {
      EXPECT_EQ(m.count, static_cast<std::uint32_t>(delivered));
      ++delivered;
    });
  }
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(rx.held_count(), 0u);
}

TEST(PdcpTest, ReordersOutOfOrderArrivals) {
  PdcpTx tx;
  PdcpRx rx;
  std::vector<ByteBuffer> pdus;
  for (int i = 0; i < 3; ++i) {
    ByteBuffer b = payload(10, static_cast<std::uint8_t>(i));
    tx.protect(b);
    pdus.push_back(std::move(b));
  }
  std::vector<std::uint32_t> order;
  auto deliver = [&](ByteBuffer&&, const PacketMeta& m) { order.push_back(m.count); };
  rx.receive(std::move(pdus[1]), deliver);  // out of order: held
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(rx.held_count(), 1u);
  rx.receive(std::move(pdus[0]), deliver);  // unblocks 0 and 1
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1}));
  rx.receive(std::move(pdus[2]), deliver);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PdcpTest, DuplicateRejected) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer b = payload(10);
  tx.protect(b);
  ByteBuffer dup = b;
  int delivered = 0;
  auto deliver = [&](ByteBuffer&&, const PacketMeta&) { ++delivered; };
  EXPECT_TRUE(rx.receive(std::move(b), deliver));
  EXPECT_FALSE(rx.receive(std::move(dup), deliver));  // now stale
  EXPECT_EQ(delivered, 1);
}

TEST(PdcpTest, HeldDuplicateRejected) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer burn = payload(4);
  tx.protect(burn);  // burn COUNT 0 (never delivered)
  ByteBuffer b = payload(10);
  tx.protect(b);  // COUNT 1
  ByteBuffer dup = b;
  auto deliver = [](ByteBuffer&&, const PacketMeta&) {};
  EXPECT_TRUE(rx.receive(std::move(b), deliver));    // held (waiting for 0)
  EXPECT_FALSE(rx.receive(std::move(dup), deliver)); // duplicate of held
  EXPECT_EQ(rx.held_count(), 1u);
}

TEST(PdcpTest, TamperedPduDiscarded) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer b = payload(20);
  tx.protect(b);
  b.bytes()[5] ^= 0xFF;  // corrupt ciphered payload
  int delivered = 0;
  EXPECT_FALSE(rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta&) { ++delivered; }));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rx.integrity_failures(), 1u);
}

TEST(PdcpTest, MismatchedSecurityContextFails) {
  PdcpTx tx{PdcpConfig{.security = CipherContext{.key = 1}}};
  PdcpRx rx{PdcpConfig{.security = CipherContext{.key = 2}}};
  ByteBuffer b = payload(20);
  tx.protect(b);
  EXPECT_FALSE(rx.receive(std::move(b), [](ByteBuffer&&, const PacketMeta&) {}));
}

TEST(PdcpTest, FlushSkipsGaps) {
  PdcpTx tx;
  PdcpRx rx;
  std::vector<ByteBuffer> pdus;
  for (int i = 0; i < 3; ++i) {
    ByteBuffer b = payload(10, static_cast<std::uint8_t>(i));
    tx.protect(b);
    pdus.push_back(std::move(b));
  }
  std::vector<std::uint32_t> order;
  auto deliver = [&](ByteBuffer&&, const PacketMeta& m) { order.push_back(m.count); };
  rx.receive(std::move(pdus[1]), deliver);
  rx.receive(std::move(pdus[2]), deliver);
  EXPECT_TRUE(order.empty());
  rx.flush(deliver);  // t-Reordering expiry: deliver 1, 2 without 0
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(rx.expected_count(), 3u);
}

TEST(PdcpTest, SnWrapAround) {
  // Push COUNT past the 12-bit SN modulus: the receiver must infer the
  // full COUNT across the wrap.
  PdcpTx tx;
  PdcpRx rx;
  int delivered = 0;
  for (int i = 0; i < 4096 + 50; ++i) {
    ByteBuffer b = payload(4);
    tx.protect(b);
    rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta& m) {
      EXPECT_EQ(m.count, static_cast<std::uint32_t>(delivered));
      ++delivered;
    });
  }
  EXPECT_EQ(delivered, 4096 + 50);
}

TEST(PdcpTest, EighteenBitSn) {
  const PdcpConfig cfg{.sn_bits = 18};
  PdcpTx tx{cfg};
  PdcpRx rx{cfg};
  ByteBuffer b = payload(30, 0x7);
  tx.protect(b);
  EXPECT_EQ(b.size(), 30u + 3 + 4);  // 3-byte header
  ByteBuffer out(0);
  EXPECT_TRUE(rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta&) { out = std::move(s); }));
  EXPECT_TRUE(same_bytes(out, payload(30, 0x7)));
}

TEST(PdcpTest, IntegrityDisabledMode) {
  const PdcpConfig cfg{.integrity_enabled = false};
  PdcpTx tx{cfg};
  PdcpRx rx{cfg};
  ByteBuffer b = payload(25, 0x9);
  tx.protect(b);
  EXPECT_EQ(b.size(), 25u + 2);  // no MAC-I
  ByteBuffer out(0);
  EXPECT_TRUE(rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta&) { out = std::move(s); }));
  EXPECT_TRUE(same_bytes(out, payload(25, 0x9)));
}

TEST(PdcpTest, RuntPduRejected) {
  PdcpRx rx;
  ByteBuffer tiny(3);
  EXPECT_FALSE(rx.receive(std::move(tiny), [](ByteBuffer&&, const PacketMeta&) {}));
}

// ---------------------------------------------------------------------------
// Batch cipher kernels vs the scalar oracles. The scalar functions are the
// specification; every batch/fused kernel must be bit-identical to the
// corresponding composition for arbitrary lengths and lane remainders.

std::vector<std::uint8_t> random_bytes(std::uint64_t& state, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v[i] = static_cast<std::uint8_t>(state >> 56);
  }
  return v;
}

// Lengths covering empty payloads, sub-word tails, exact words, and sizes
// that straddle the 4-lane grouping.
const std::size_t kBatchLens[] = {0, 1, 7, 8, 9, 15, 16, 17, 31, 64, 100, 333};

TEST(CipherBatchTest, KeystreamBatchMatchesScalar) {
  const CipherContext ctx{.key = 0xABCDEF0123456789ULL, .bearer = 3, .downlink = false};
  std::uint64_t state = 1;
  // 1..12 jobs: exercises full 4-lane groups plus every remainder count.
  for (std::size_t njobs = 1; njobs <= std::size(kBatchLens); ++njobs) {
    std::vector<std::vector<std::uint8_t>> batch_data, scalar_data;
    std::vector<CipherJob> jobs;
    for (std::size_t i = 0; i < njobs; ++i) {
      batch_data.push_back(random_bytes(state, kBatchLens[i]));
      scalar_data.push_back(batch_data.back());
    }
    for (std::size_t i = 0; i < njobs; ++i) {
      jobs.push_back(CipherJob{batch_data[i], static_cast<std::uint32_t>(100 + i)});
    }
    apply_keystream_batch(jobs, ctx);
    for (std::size_t i = 0; i < njobs; ++i) {
      apply_keystream(scalar_data[i], ctx, static_cast<std::uint32_t>(100 + i));
      EXPECT_EQ(scalar_data[i], batch_data[i]) << "njobs=" << njobs << " job=" << i;
    }
  }
}

TEST(CipherBatchTest, IntegrityBatchMatchesScalar) {
  const CipherContext ctx{};
  std::uint64_t state = 2;
  for (std::size_t njobs = 1; njobs <= std::size(kBatchLens); ++njobs) {
    std::vector<std::vector<std::uint8_t>> data;
    for (std::size_t i = 0; i < njobs; ++i) data.push_back(random_bytes(state, kBatchLens[i]));
    std::vector<IntegrityJob> jobs;
    for (std::size_t i = 0; i < njobs; ++i) {
      jobs.push_back(IntegrityJob{data[i], static_cast<std::uint32_t>(7 * i + 1)});
    }
    std::vector<std::uint32_t> tags(njobs);
    integrity_tag_batch(jobs, ctx, tags);
    for (std::size_t i = 0; i < njobs; ++i) {
      EXPECT_EQ(integrity_tag(data[i], ctx, static_cast<std::uint32_t>(7 * i + 1)), tags[i])
          << "njobs=" << njobs << " job=" << i;
    }
  }
}

TEST(CipherBatchTest, FusedProtectMatchesCipherThenTag) {
  // protect_payload_batch = apply_keystream_batch; integrity_tag_batch — in
  // that order, because PDCP tags the *ciphered* bytes.
  const CipherContext ctx{.bearer = 9};
  std::uint64_t state = 3;
  for (std::size_t njobs = 1; njobs <= std::size(kBatchLens); ++njobs) {
    std::vector<std::vector<std::uint8_t>> fused_data, ref_data;
    for (std::size_t i = 0; i < njobs; ++i) {
      fused_data.push_back(random_bytes(state, kBatchLens[i]));
      ref_data.push_back(fused_data.back());
    }
    std::vector<CipherJob> fused_jobs, ref_jobs;
    for (std::size_t i = 0; i < njobs; ++i) {
      fused_jobs.push_back(CipherJob{fused_data[i], static_cast<std::uint32_t>(i)});
      ref_jobs.push_back(CipherJob{ref_data[i], static_cast<std::uint32_t>(i)});
    }
    std::vector<std::uint32_t> fused_tags(njobs), ref_tags(njobs);
    protect_payload_batch(fused_jobs, ctx, fused_tags);

    apply_keystream_batch(ref_jobs, ctx);
    std::vector<IntegrityJob> tag_jobs;
    for (std::size_t i = 0; i < njobs; ++i) {
      tag_jobs.push_back(IntegrityJob{ref_data[i], static_cast<std::uint32_t>(i)});
    }
    integrity_tag_batch(tag_jobs, ctx, ref_tags);

    for (std::size_t i = 0; i < njobs; ++i) {
      EXPECT_EQ(ref_data[i], fused_data[i]) << "njobs=" << njobs << " job=" << i;
      EXPECT_EQ(ref_tags[i], fused_tags[i]) << "njobs=" << njobs << " job=" << i;
    }
  }
}

TEST(CipherBatchTest, FusedVerifyDecipherMatchesTagThenDecipher) {
  // verify_decipher_batch = integrity_tag_batch on the received (ciphered)
  // bytes; apply_keystream_batch — the receive order.
  const CipherContext ctx{.downlink = false};
  std::uint64_t state = 4;
  for (std::size_t njobs = 1; njobs <= std::size(kBatchLens); ++njobs) {
    std::vector<std::vector<std::uint8_t>> fused_data, ref_data;
    for (std::size_t i = 0; i < njobs; ++i) {
      fused_data.push_back(random_bytes(state, kBatchLens[i]));
      ref_data.push_back(fused_data.back());
    }
    std::vector<CipherJob> fused_jobs, ref_jobs;
    for (std::size_t i = 0; i < njobs; ++i) {
      fused_jobs.push_back(CipherJob{fused_data[i], static_cast<std::uint32_t>(50 + i)});
      ref_jobs.push_back(CipherJob{ref_data[i], static_cast<std::uint32_t>(50 + i)});
    }
    std::vector<std::uint32_t> fused_tags(njobs), ref_tags(njobs);
    verify_decipher_batch(fused_jobs, ctx, fused_tags);

    std::vector<IntegrityJob> tag_jobs;
    for (std::size_t i = 0; i < njobs; ++i) {
      tag_jobs.push_back(IntegrityJob{ref_data[i], static_cast<std::uint32_t>(50 + i)});
    }
    integrity_tag_batch(tag_jobs, ctx, ref_tags);
    apply_keystream_batch(ref_jobs, ctx);

    for (std::size_t i = 0; i < njobs; ++i) {
      EXPECT_EQ(ref_data[i], fused_data[i]) << "njobs=" << njobs << " job=" << i;
      EXPECT_EQ(ref_tags[i], fused_tags[i]) << "njobs=" << njobs << " job=" << i;
    }
  }
}

TEST(CipherBatchTest, SpeculativeDecipherUndoRestoresExactBytes) {
  // receive_batch deciphers before comparing tags; on a mismatch it undoes
  // the mutation by re-applying the keystream. That undo must restore the
  // received bytes exactly, for every length.
  const CipherContext ctx{};
  std::uint64_t state = 5;
  std::vector<std::vector<std::uint8_t>> data, pristine;
  std::vector<CipherJob> jobs;
  for (std::size_t i = 0; i < std::size(kBatchLens); ++i) {
    data.push_back(random_bytes(state, kBatchLens[i]));
    pristine.push_back(data.back());
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    jobs.push_back(CipherJob{data[i], static_cast<std::uint32_t>(i * 11)});
  }
  std::vector<std::uint32_t> tags(jobs.size());
  verify_decipher_batch(jobs, ctx, tags);
  apply_keystream_batch(jobs, ctx);  // the undo
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(pristine[i], data[i]) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// Batch entity paths vs the scalar entity paths. Two entities with the same
// configuration see the same inputs; every observable — delivered bytes,
// delivery order, counters, acceptance — must be identical.

struct Delivered {
  std::vector<std::uint32_t> counts;
  std::vector<std::vector<std::uint8_t>> sdus;
  void record(ByteBuffer&& sdu, const PacketMeta& meta) {
    counts.push_back(meta.count);
    sdus.emplace_back(sdu.bytes().begin(), sdu.bytes().end());
  }
  bool operator==(const Delivered&) const = default;
};

TEST(PdcpBatchTest, ProtectBatchMatchesScalarByteForByte) {
  for (const int sn_bits : {12, 18}) {
    for (const bool integrity : {true, false}) {
      const PdcpConfig cfg{.sn_bits = sn_bits, .integrity_enabled = integrity};
      PdcpTx batch_tx{cfg};
      PdcpTx scalar_tx{cfg};
      // 13 SDUs: one full 8-lane group plus a 5-lane remainder.
      std::vector<ByteBuffer> batch_sdus, scalar_sdus;
      std::vector<ByteBuffer*> ptrs;
      for (int i = 0; i < 13; ++i) {
        batch_sdus.push_back(payload(static_cast<std::size_t>(10 + 17 * i),
                                     static_cast<std::uint8_t>(i + 1)));
        scalar_sdus.push_back(batch_sdus.back());
      }
      for (ByteBuffer& b : batch_sdus) ptrs.push_back(&b);
      batch_tx.protect_batch(ptrs);
      for (ByteBuffer& b : scalar_sdus) scalar_tx.protect(b);
      EXPECT_EQ(scalar_tx.next_count(), batch_tx.next_count());
      for (int i = 0; i < 13; ++i) {
        EXPECT_TRUE(same_bytes(scalar_sdus[static_cast<std::size_t>(i)],
                               batch_sdus[static_cast<std::size_t>(i)]))
            << "sn_bits=" << sn_bits << " integrity=" << integrity << " sdu=" << i;
      }
    }
  }
}

TEST(PdcpBatchTest, ReceiveBatchInOrderMatchesScalar) {
  for (const bool integrity : {true, false}) {
    const PdcpConfig cfg{.integrity_enabled = integrity};
    PdcpTx tx{cfg};
    std::vector<ByteBuffer> pdus;
    std::vector<ByteBuffer*> ptrs;
    for (int i = 0; i < 13; ++i) {
      pdus.push_back(payload(static_cast<std::size_t>(20 + 9 * i),
                             static_cast<std::uint8_t>(0x30 + i)));
    }
    for (ByteBuffer& b : pdus) ptrs.push_back(&b);
    tx.protect_batch(ptrs);
    std::vector<ByteBuffer> scalar_pdus = pdus;  // pristine copies

    PdcpRx batch_rx{cfg};
    PdcpRx scalar_rx{cfg};
    Delivered batch_got, scalar_got;
    const std::size_t accepted =
        batch_rx.receive_batch(pdus, [&](ByteBuffer&& s, const PacketMeta& m) {
          batch_got.record(std::move(s), m);
        });
    std::size_t scalar_accepted = 0;
    for (ByteBuffer& b : scalar_pdus) {
      scalar_accepted += scalar_rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta& m) {
        scalar_got.record(std::move(s), m);
      }) ? 1u : 0u;
    }
    EXPECT_EQ(scalar_accepted, accepted);
    EXPECT_EQ(scalar_got, batch_got);
    EXPECT_EQ(scalar_rx.expected_count(), batch_rx.expected_count());
    EXPECT_EQ(scalar_rx.held_count(), batch_rx.held_count());
    EXPECT_EQ(scalar_rx.integrity_failures(), batch_rx.integrity_failures());
  }
}

TEST(PdcpBatchTest, ReceiveBatchFuzzMatchesScalarUnderDropsDupesReorderAndCorruption) {
  // Rounds of 16 protected PDUs mangled four ways; the batch path must take
  // its fallback on every deviation and end each round in exactly the state
  // the scalar oracle reaches.
  PdcpTx tx;
  PdcpRx batch_rx, scalar_rx;
  Delivered batch_got, scalar_got;
  std::uint64_t state = 0xFEEDFACE;
  auto chance = [&](int pct) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((state >> 33) % 100) < pct;
  };
  for (int round = 0; round < 40; ++round) {
    std::vector<ByteBuffer> pdus;
    std::vector<ByteBuffer*> ptrs;
    for (int i = 0; i < 16; ++i) {
      pdus.push_back(payload(static_cast<std::size_t>(8 + ((round * 16 + i) % 80)),
                             static_cast<std::uint8_t>(round + i)));
    }
    for (ByteBuffer& b : pdus) ptrs.push_back(&b);
    tx.protect_batch(ptrs);

    std::vector<ByteBuffer> mangled;
    for (ByteBuffer& b : pdus) {
      if (chance(10)) continue;              // drop
      if (chance(8)) mangled.push_back(b);   // duplicate
      if (chance(8) && b.size() > 3) {       // corrupt a body byte
        ByteBuffer bad = b;
        bad.bytes()[bad.size() / 2] ^= 0x40;
        mangled.push_back(std::move(bad));
        continue;
      }
      mangled.push_back(std::move(b));
    }
    // Local reorder: swap a few adjacent pairs.
    for (std::size_t i = 1; i < mangled.size(); i += 3) {
      if (chance(30)) std::swap(mangled[i - 1], mangled[i]);
    }

    std::vector<ByteBuffer> scalar_in = mangled;  // pristine copies
    const std::size_t accepted =
        batch_rx.receive_batch(mangled, [&](ByteBuffer&& s, const PacketMeta& m) {
          batch_got.record(std::move(s), m);
        });
    std::size_t scalar_accepted = 0;
    for (ByteBuffer& b : scalar_in) {
      scalar_accepted += scalar_rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta& m) {
        scalar_got.record(std::move(s), m);
      }) ? 1u : 0u;
    }
    ASSERT_EQ(scalar_accepted, accepted) << "round " << round;
    ASSERT_EQ(scalar_got, batch_got) << "round " << round;
    ASSERT_EQ(scalar_rx.expected_count(), batch_rx.expected_count()) << "round " << round;
    ASSERT_EQ(scalar_rx.held_count(), batch_rx.held_count()) << "round " << round;
    ASSERT_EQ(scalar_rx.integrity_failures(), batch_rx.integrity_failures()) << "round " << round;

    // End-of-round t-Reordering expiry: without it a dropped PDU stalls
    // in-order delivery for the rest of the fuzz. Also pins the flush path.
    batch_rx.flush([&](ByteBuffer&& s, const PacketMeta& m) { batch_got.record(std::move(s), m); });
    scalar_rx.flush(
        [&](ByteBuffer&& s, const PacketMeta& m) { scalar_got.record(std::move(s), m); });
    ASSERT_EQ(scalar_got, batch_got) << "round " << round << " after flush";
    ASSERT_EQ(scalar_rx.expected_count(), batch_rx.expected_count()) << "round " << round;
  }
  // The fuzz must actually have exercised both failure and success paths.
  EXPECT_GT(batch_rx.integrity_failures(), 0u);
  EXPECT_GT(batch_got.counts.size(), 100u);
}

}  // namespace
}  // namespace u5g
