#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace u5g {

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += cell;
      out.append(width[i] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t w : width) rule += w + 2;
  out.append(rule - 2, '-');
  out += '\n';
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

std::string fmt2(double value) { return fmt("%.2f", value); }
std::string fmt3(double value) { return fmt("%.3f", value); }

}  // namespace u5g
