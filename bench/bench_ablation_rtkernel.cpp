// Ablation A4 (§6): real-time vs generic kernel. "Some of these issues can
// be addressed by using, for instance, real-time kernel for the OS in
// software-based 5G network."
//
// Same testbed E2E run with a deliberately tight staging lead; only the OS
// jitter model of the radio-bus path differs. The generic kernel's
// preemption spikes corrupt slots and fatten the tail; PREEMPT_RT bounds
// them. Both kernel variants fan `--trials` replications across the
// Monte-Carlo runner; the per-replication samples and miss counters merge
// deterministically.

#include <cstdio>

#include "common/cli.hpp"
#include "core/e2e_system.hpp"
#include "core/reliability.hpp"
#include "sim/runner.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

struct Replication {
  SampleSet lat;
  std::uint64_t misses = 0;

  void merge(const Replication& o) {
    lat.merge(o.lat);
    misses += o.misses;
  }
};

struct Outcome {
  double mean_ms;
  double p99_ms;
  double p999_ms;
  std::uint64_t misses;
  double nines_at_3ms;
};

Replication run_one(bool rt, int packets, std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_based(seed);
  cfg.sched.radio_lead = Nanos{430'000};  // tight: little slack over the bus cost
  if (rt) cfg.gnb_radio.bus = cfg.gnb_radio.bus.with_rt_kernel();
  E2eSystem sys(std::move(cfg));
  Rng rng(seed + 777);
  const Nanos period = 2_ms;
  for (int i = 0; i < packets; ++i) {
    sys.send_downlink_at(period * (2 * i) +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
  }
  sys.run_until(period * (2 * packets + 40));
  return {sys.latency_samples_us(Direction::Downlink), sys.radio_deadline_misses()};
}

Outcome run(bool rt, const BenchOptions& opt) {
  Replication merged = merge_replications(run_replications(
      opt.trials, opt.seed + (rt ? 1 : 0),
      [&](int i, std::uint64_t seed) {
        return run_one(rt, split_evenly(opt.packets, opt.trials, i), seed);
      },
      {opt.threads}));
  const auto rel =
      evaluate_reliability(merged.lat, static_cast<std::size_t>(opt.packets), 3_ms);
  return {merged.lat.mean() / 1e3, merged.lat.quantile(0.99) / 1e3,
          merged.lat.quantile(0.999) / 1e3, merged.misses, rel.nines};
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 2000;
  defaults.trials = 8;
  defaults.seed = 31;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== Ablation A4: generic vs real-time kernel (DL, tight 430 us staging lead) ==\n\n");
  std::printf("   %-16s %9s %9s %9s %8s %14s\n", "kernel", "mean[ms]", "p99[ms]", "p99.9[ms]",
              "misses", "nines@3ms");

  const Outcome generic = run(false, opt);
  const Outcome rt = run(true, opt);
  std::printf("   %-16s %9.3f %9.3f %9.3f %8llu %14.2f\n", "generic", generic.mean_ms,
              generic.p99_ms, generic.p999_ms,
              static_cast<unsigned long long>(generic.misses), generic.nines_at_3ms);
  std::printf("   %-16s %9.3f %9.3f %9.3f %8llu %14.2f\n", "PREEMPT_RT", rt.mean_ms, rt.p99_ms,
              rt.p999_ms, static_cast<unsigned long long>(rt.misses), rt.nines_at_3ms);

  const bool ok = rt.misses < generic.misses && rt.p999_ms <= generic.p999_ms;
  std::printf("\nRT kernel reduces corrupted slots and the latency tail: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
