#pragma once
// Per-packet latency tracing on the simulated clock.
//
// The paper's core artifact is attribution: for every packet, where did the
// budget go — protocol waits, processing time, or radio chains (§4, Fig 3,
// Table 2)? The Tracer records that attribution as a sequence of contiguous
// spans per packet, each tagged with a LatencyCategory, using a *cursor*
// model: `open(seq, t)` plants a cursor at the packet's creation time, every
// `span_to`/`span_for` advances it, and `close(seq, t)` sweeps the cursor to
// the delivery time (emitting an explicit "(unattributed)" span for any gap
// the hooks failed to cover). By construction the spans of a packet tile
// [created, delivered] with no gaps and no overlaps, so their durations —
// and therefore the per-category subtotals — sum *exactly* to the packet's
// end-to-end latency. Attribution quality is a separate question answered by
// the absence of "(unattributed)" spans, which tests assert.
//
// Overhead contract (preserving PR 2's allocation-free warm path): every
// recording method begins with `if (!enabled_) return;` — one predicted
// branch — and the disabled path performs zero allocations and touches no
// other state. Hooks may therefore stay compiled into the hot datapath
// unconditionally. Enabled-path hooks run at event-schedule time and never
// read the simulated clock themselves; callers pass absolute times in.
//
// Span names are `string_view`s: pass string literals (the common case) or
// storage that outlives the Tracer's span list.

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_map.hpp"

#include "common/taxonomy.hpp"
#include "common/time.hpp"

namespace u5g {

/// One attributed interval of a traced packet's life, on the simulated clock.
struct TraceSpan {
  std::string_view name;
  LatencyCategory category = LatencyCategory::Protocol;
  std::int32_t seq = 0;  ///< packet sequence number the span belongs to
  Nanos start{};
  Nanos end{};
  [[nodiscard]] Nanos duration() const { return end - start; }
};

/// Name of the residual span `close()` emits when hooks left a gap.
inline constexpr std::string_view kUnattributedSpan = "(unattributed)";

/// Tracing knobs, carried inside StackConfig.
struct TraceConfig {
  bool enabled = false;  ///< master switch; false = one dead branch per hook
  bool spans = true;     ///< per-packet span capture (waterfalls)
  bool metrics = true;   ///< counters + latency histograms
  [[nodiscard]] bool spans_on() const { return enabled && spans; }
  [[nodiscard]] bool metrics_on() const { return enabled && metrics; }
};

class Tracer {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Start tracing packet `seq`: plant its cursor at creation time `at`.
  /// Re-opening an already-open seq restarts it (spans already recorded for
  /// the previous incarnation are kept and distinguishable by their times).
  void open(std::int32_t seq, Nanos at) {
    if (!enabled_) return;
    cursor_[seq] = at;
  }

  /// Record `[cursor, until]` as `name`/`cat` and advance the cursor.
  /// No-op when `seq` is not open or `until` does not advance the cursor —
  /// hooks may therefore fire defensively (e.g. a wait recorded both where
  /// it is scheduled and where it lands collapses to one span).
  void span_to(std::int32_t seq, std::string_view name, LatencyCategory cat, Nanos until) {
    if (!enabled_) return;
    Nanos* cur = cursor_.find(seq);
    if (cur == nullptr || until <= *cur) return;
    spans_.push_back(TraceSpan{name, cat, seq, *cur, until});
    *cur = until;
  }

  /// Record a span of known duration starting at the cursor.
  void span_for(std::int32_t seq, std::string_view name, LatencyCategory cat, Nanos duration) {
    if (!enabled_) return;
    Nanos* cur = cursor_.find(seq);
    if (cur == nullptr || duration <= Nanos::zero()) return;
    spans_.push_back(TraceSpan{name, cat, seq, *cur, *cur + duration});
    *cur += duration;
  }

  /// Finish packet `seq` at delivery time `at`. Any gap between the cursor
  /// and `at` becomes an explicit "(unattributed)" Protocol span, so the
  /// tiling invariant holds even with incomplete hook coverage.
  void close(std::int32_t seq, Nanos at) {
    if (!enabled_) return;
    span_to(seq, kUnattributedSpan, LatencyCategory::Protocol, at);
    if (cursor_.erase(seq)) ++closed_;
  }

  /// Drop an open packet without closing it (e.g. delivery failure).
  void abandon(std::int32_t seq) {
    if (!enabled_) return;
    cursor_.erase(seq);
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] std::size_t packets_closed() const { return closed_; }

  /// Sum of span durations for `seq` in category `c`.
  [[nodiscard]] Nanos category_total(std::int32_t seq, LatencyCategory c) const {
    Nanos t{};
    for (const TraceSpan& s : spans_) {
      if (s.seq == seq && s.category == c) t += s.duration();
    }
    return t;
  }

  /// Sum of all span durations for `seq` (== its end-to-end latency once
  /// closed, by the tiling invariant).
  [[nodiscard]] Nanos total(std::int32_t seq) const {
    Nanos t{};
    for (const TraceSpan& s : spans_) {
      if (s.seq == seq) t += s.duration();
    }
    return t;
  }

  void clear() {
    spans_.clear();
    cursor_.clear();
    closed_ = 0;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceSpan> spans_;
  FlatHashMap<std::int32_t, Nanos> cursor_;  ///< open packets -> attribution frontier
  std::size_t closed_ = 0;
};

}  // namespace u5g
