#pragma once
// HARQ (hybrid ARQ) model: stop-and-wait processes with soft-combining
// gain. Retransmissions are the standard 5G reliability tool, and each one
// costs at least a full scheduling round trip — which is why URLLC work
// ([27] in the paper) tries to avoid them entirely. The ablation benches use
// this model to show the latency cliff a single retransmission causes.

#include <array>
#include <cassert>
#include <cstdint>
#include <optional>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace u5g {

enum class HarqState : std::uint8_t { Idle, WaitingFeedback, NackedAwaitingRetx };

/// One stop-and-wait HARQ process.
struct HarqProcess {
  HarqState state = HarqState::Idle;
  int transmissions = 0;
  std::size_t tb_bytes = 0;
  Nanos first_tx{};
};

/// A node's HARQ entity: a fixed pool of processes (NR default: 16).
class HarqEntity {
 public:
  static constexpr int kProcesses = 16;

  explicit HarqEntity(int max_transmissions = 4) : max_tx_(max_transmissions) {}

  /// Claim an idle process for a new transport block; nullopt if all busy.
  std::optional<HarqId> start(std::size_t tb_bytes, Nanos now) {
    for (int i = 0; i < kProcesses; ++i) {
      HarqProcess& p = procs_[static_cast<std::size_t>(i)];
      if (p.state == HarqState::Idle) {
        p = HarqProcess{HarqState::WaitingFeedback, 1, tb_bytes, now};
        return HarqId{static_cast<std::uint32_t>(i)};
      }
    }
    return std::nullopt;
  }

  /// ACK: process returns to idle. NACK: flagged for retransmission unless
  /// the transmission budget is exhausted (then the TB is dropped).
  /// Returns true if a retransmission should be scheduled.
  bool on_feedback(HarqId id, bool ack) {
    HarqProcess& p = proc(id);
    if (ack || p.transmissions >= max_tx_) {
      if (!ack) ++dropped_;
      p = HarqProcess{};
      return false;
    }
    p.state = HarqState::NackedAwaitingRetx;
    return true;
  }

  /// Mark the retransmission as sent.
  void on_retransmit(HarqId id) {
    HarqProcess& p = proc(id);
    p.state = HarqState::WaitingFeedback;
    ++p.transmissions;
  }

  [[nodiscard]] const HarqProcess& proc(HarqId id) const {
    return procs_[static_cast<std::size_t>(id.value())];
  }
  [[nodiscard]] HarqProcess& proc(HarqId id) {
    return procs_[static_cast<std::size_t>(id.value())];
  }

  [[nodiscard]] int busy_count() const {
    int n = 0;
    for (const HarqProcess& p : procs_) n += p.state != HarqState::Idle ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] int max_transmissions() const { return max_tx_; }

 private:
  int max_tx_;
  std::array<HarqProcess, kProcesses> procs_{};
  std::uint64_t dropped_ = 0;
};

/// Effective BLER of HARQ `attempt` (1-based) with soft combining: each
/// retransmission multiplies the residual error probability by
/// `per_attempt_factor` — the geometric-decay abstraction of chase/IR
/// combining gain. The default 0.1 corresponds to ~10 dB effective SNR
/// benefit per combine on a steep BLER curve. Both `first_bler` and
/// `per_attempt_factor` are probabilities/ratios in [0, 1].
[[nodiscard]] inline double effective_bler(double first_bler, int attempt,
                                           double per_attempt_factor = 0.1) {
  assert(first_bler >= 0.0 && first_bler <= 1.0);
  assert(per_attempt_factor >= 0.0 && per_attempt_factor <= 1.0);
  double b = first_bler;
  for (int i = 1; i < attempt; ++i) b *= per_attempt_factor;
  return b;
}

}  // namespace u5g
