#include "core/design_space.hpp"

#include <iterator>

#include "sim/runner.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"

namespace u5g {

namespace {

/// All minimal-pattern TDD candidates plus mini-slot and FDD at µ.
std::vector<std::unique_ptr<DuplexConfig>> candidates_at(Numerology num) {
  std::vector<std::unique_ptr<DuplexConfig>> v;
  // The minimal 0.5 ms TDD period only exists where it is an integer number
  // of slots >= 2 (µ >= 1; at µ1 the 0.5 ms period is a single slot, which
  // cannot hold a D and a U part as separate slots — only the mixed forms).
  const int slots_in_half_ms = static_cast<int>(Nanos{500'000} / num.slot_duration());
  if (slots_in_half_ms >= 2) {
    v.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::du(num)));
    v.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::dm(num)));
    v.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::mu(num)));
  }
  v.push_back(std::make_unique<MiniSlotConfig>(num, 2));
  v.push_back(std::make_unique<FddConfig>(num));
  return v;
}

/// All design points of one numerology, in candidate x access-mode order.
std::vector<DesignPoint> points_at(Numerology num, const DesignSpaceOptions& opt) {
  std::vector<DesignPoint> out;
  for (const auto& cfg : candidates_at(num)) {
    const auto dl = analyze_worst_case(*cfg, AccessMode::Downlink, opt.model);
    for (AccessMode ul : {AccessMode::GrantFreeUl, AccessMode::GrantBasedUl}) {
      const auto wc = analyze_worst_case(*cfg, ul, opt.model);
      DesignPoint pt;
      pt.config_name = cfg->name();
      pt.mu = num.mu();
      pt.ul_mode = ul;
      pt.worst_ul = wc.worst;
      pt.worst_dl = dl.worst;
      pt.meets_deadline = wc.feasible && dl.feasible && wc.worst <= opt.deadline &&
                          dl.worst <= opt.deadline;
      pt.available_to_private_5g = dynamic_cast<const FddConfig*>(cfg.get()) == nullptr;
      if (const auto* ms = dynamic_cast<const MiniSlotConfig*>(cfg.get())) {
        pt.standards_caveat = ms->violates_standard_recommendation();
      }
      pt.processing_radio_budget = num.slot_duration();
      out.push_back(pt);
    }
  }
  return out;
}

}  // namespace

std::vector<DesignPoint> explore_design_space(const DesignSpaceOptions& opt) {
  std::vector<Numerology> nums;
  if (opt.fr1_only) {
    for (Numerology n : numerologies_in_fr1()) nums.push_back(n);
  } else {
    for (int mu = 0; mu <= 6; ++mu) nums.push_back(Numerology{mu});
  }

  // Fan the per-numerology evaluation across the pool; flattening in
  // numerology order reproduces the serial loop's output exactly.
  auto parts = run_replications(
      static_cast<int>(nums.size()), /*root_seed=*/0,
      [&](int i, std::uint64_t) { return points_at(nums[static_cast<std::size_t>(i)], opt); },
      {opt.threads});
  std::vector<DesignPoint> out;
  for (auto& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<DesignPoint> viable_designs(const DesignSpaceOptions& opt) {
  std::vector<DesignPoint> v;
  for (DesignPoint& pt : explore_design_space(opt)) {
    if (pt.meets_deadline) v.push_back(pt);
  }
  return v;
}

}  // namespace u5g
