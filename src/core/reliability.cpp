#include "core/reliability.hpp"

#include <cmath>

namespace u5g {

double reliability_nines(double fraction) {
  if (fraction >= 1.0) return 9.0;
  if (fraction <= 0.0) return 0.0;
  return std::min(9.0, -std::log10(1.0 - fraction));
}

ReliabilityReport evaluate_reliability(const SampleSet& latencies_us, std::size_t offered,
                                       Nanos deadline) {
  ReliabilityReport r;
  r.deadline = deadline;
  r.delivered = latencies_us.count();
  r.offered = offered;
  if (offered == 0) return r;
  const double within =
      latencies_us.fraction_at_or_below(deadline.us()) * static_cast<double>(r.delivered);
  r.fraction_within = within / static_cast<double>(offered);
  r.meets_urllc = r.fraction_within >= kUrllcReliabilityTarget;
  r.meets_strict = r.fraction_within >= kUrllcStrictReliability;
  r.nines = reliability_nines(r.fraction_within);
  return r;
}

std::vector<NinesPoint> nines_vs_deadline(const SampleSet& latencies_us, std::size_t offered,
                                          const std::vector<Nanos>& deadlines) {
  std::vector<NinesPoint> curve;
  curve.reserve(deadlines.size());
  for (const Nanos d : deadlines) {
    const ReliabilityReport r = evaluate_reliability(latencies_us, offered, d);
    curve.push_back({d, r.fraction_within, r.nines});
  }
  return curve;
}

}  // namespace u5g
