#pragma once
// Byte-buffer type for PDUs moving through the stack.
//
// Protocol layers prepend/strip headers; `ByteBuffer` models that with
// explicit push/pop operations over pooled backing stores:
//
//  * Storage comes from the calling thread's `BufferPool` freelists, so the
//    warm per-packet path never touches the heap. Small buffers (control
//    PDUs: a BSR CE, an SR payload) live inline in the object itself.
//  * The payload window sits between *headroom* (for `push_header`) and
//    *tailroom* (for `append`), so both directions of growth are in-place
//    writes until the reserves run out; only then does the buffer migrate
//    to a larger pooled block.
//
// Invalidation contract: spans returned by `bytes()` and `pop_header()` are
// views into the current backing store. Any mutating operation that can
// relocate or overwrite storage — `push_header`, `append`, `append_zeros`,
// `reserve_tail` — invalidates all previously returned spans (`push_header`
// reuses the very bytes a popped header span pointed at). `pop_header` and
// `truncate_back` only move the window and leave storage in place. The
// `generation()` counter increments on every invalidating operation so
// debug code and tests can assert a span is still current:
//
//   const auto gen = buf.generation();
//   auto view = buf.bytes();
//   ...
//   assert(buf.generation() == gen && "view invalidated by a mutation");

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>

#include "common/buffer_pool.hpp"

namespace u5g {

/// Growable byte sequence with cheap header prepend (headroom) and cheap
/// append (tailroom), backed by recycled pool blocks.
class ByteBuffer {
 public:
  ByteBuffer() = default;

  /// A buffer of `payload_size` bytes, each set to `fill`.
  explicit ByteBuffer(std::size_t payload_size, std::uint8_t fill = 0) {
    init_storage(payload_size);
    std::memset(storage() + begin_, fill, payload_size);
  }

  /// A buffer of `payload_size` bytes with *indeterminate* contents — for
  /// callers that immediately overwrite the whole payload (copies, RLC
  /// segment assembly), avoiding the zero-fill-then-copy double write.
  [[nodiscard]] static ByteBuffer uninitialized(std::size_t payload_size) {
    ByteBuffer b;
    b.init_storage(payload_size);
    return b;
  }

  static ByteBuffer from_bytes(std::span<const std::uint8_t> bytes) {
    ByteBuffer b = uninitialized(bytes.size());
    std::memcpy(b.storage() + b.begin_, bytes.data(), bytes.size());
    return b;
  }

  ByteBuffer(const ByteBuffer& o) { copy_from(o); }
  ByteBuffer& operator=(const ByteBuffer& o) {
    if (this != &o) {
      release();
      copy_from(o);
    }
    return *this;
  }

  ByteBuffer(ByteBuffer&& o) noexcept { steal_from(o); }
  ByteBuffer& operator=(ByteBuffer&& o) noexcept {
    if (this != &o) {
      release();
      steal_from(o);
    }
    return *this;
  }

  ~ByteBuffer() { release(); }

  [[nodiscard]] std::size_t size() const { return end_ - begin_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::span<std::uint8_t> bytes() { return {storage() + begin_, size()}; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {storage() + begin_, size()};
  }

  /// Prepend `header` in front of the current contents. Invalidates spans.
  void push_header(std::span<const std::uint8_t> header) {
    if (header.size() > begin_) grow_front(header.size());
    begin_ -= static_cast<std::uint32_t>(header.size());
    std::memcpy(storage() + begin_, header.data(), header.size());
    ++generation_;
  }

  /// Remove and return a view of the first `n` bytes. The view points into
  /// this buffer's headroom and is invalidated by the next `push_header`
  /// or storage-moving operation (see the invalidation contract above).
  /// Throws std::length_error if the buffer is shorter than `n`.
  std::span<const std::uint8_t> pop_header(std::size_t n) {
    if (n > size()) throw std::length_error{"ByteBuffer::pop_header past end"};
    std::span<const std::uint8_t> h{storage() + begin_, n};
    begin_ += static_cast<std::uint32_t>(n);
    return h;
  }

  /// Remove `n` bytes from the end (strip trailer / truncate).
  void truncate_back(std::size_t n) {
    if (n > size()) throw std::length_error{"ByteBuffer::truncate_back past end"};
    end_ -= static_cast<std::uint32_t>(n);
  }

  /// Append bytes at the end. Invalidates spans.
  void append(std::span<const std::uint8_t> tail) {
    if (end_ + tail.size() > capacity()) grow_back(tail.size());
    std::memcpy(storage() + end_, tail.data(), tail.size());
    end_ += static_cast<std::uint32_t>(tail.size());
    ++generation_;
  }

  /// Append `n` zero bytes (MAC padding) without a scratch buffer.
  void append_zeros(std::size_t n) {
    if (end_ + n > capacity()) grow_back(n);
    std::memset(storage() + end_, 0, n);
    end_ += static_cast<std::uint32_t>(n);
    ++generation_;
  }

  /// Ensure `n` bytes of tailroom so the following appends are in-place.
  /// Invalidates spans when it has to migrate storage.
  void reserve_tail(std::size_t n) {
    if (end_ + n > capacity()) grow_back(n);
  }

  /// Mutation counter for the invalidation contract: compare against a
  /// saved value to assert that previously obtained spans are still valid.
  [[nodiscard]] std::uint32_t generation() const { return generation_; }

  /// True when the payload lives in the inline small-buffer storage (no
  /// pooled block held) — control PDUs on the warm path stay inline.
  [[nodiscard]] bool is_inline() const { return block_ == nullptr; }

 private:
  /// Headroom reserved in pooled blocks for the header stack (SDAP + PDCP +
  /// RLC + GTP-U worst case is well under this) and tailroom for trailers
  /// (PDCP MAC-I) and MAC padding.
  static constexpr std::size_t kHeadroom = 64;
  static constexpr std::size_t kTailroom = 64;
  /// Inline (small-buffer) capacity and the headroom carved out of it.
  static constexpr std::size_t kInlineCapacity = 40;
  static constexpr std::size_t kInlineHeadroom = 8;

  [[nodiscard]] std::uint8_t* storage() { return block_ != nullptr ? block_->data() : inline_; }
  [[nodiscard]] const std::uint8_t* storage() const {
    return block_ != nullptr ? block_->data() : inline_;
  }
  [[nodiscard]] std::size_t capacity() const {
    return block_ != nullptr ? block_->capacity : kInlineCapacity;
  }

  void init_storage(std::size_t payload_size) {
    if (payload_size <= kInlineCapacity - kInlineHeadroom) {
      begin_ = kInlineHeadroom;
    } else {
      block_ = BufferPool::local().acquire(kHeadroom + payload_size + kTailroom);
      begin_ = kHeadroom;
    }
    end_ = begin_ + static_cast<std::uint32_t>(payload_size);
  }

  void release() {
    if (block_ != nullptr) {
      BufferPool::local().release(block_);
      block_ = nullptr;
    }
  }

  void copy_from(const ByteBuffer& o) {
    // Preserve the window offsets (and therefore the remaining head/tail
    // reserves); only the live payload bytes are copied.
    if (o.block_ != nullptr) {
      block_ = BufferPool::local().acquire(o.block_->capacity);
    } else {
      block_ = nullptr;
    }
    begin_ = o.begin_;
    end_ = o.end_;
    generation_ = o.generation_;
    std::memcpy(storage() + begin_, o.storage() + o.begin_, o.size());
  }

  void steal_from(ByteBuffer& o) noexcept {
    block_ = o.block_;
    begin_ = o.begin_;
    end_ = o.end_;
    generation_ = o.generation_;
    if (block_ == nullptr) {
      std::memcpy(inline_ + begin_, o.inline_ + begin_, o.size());
    }
    o.block_ = nullptr;
    o.begin_ = o.end_ = kInlineHeadroom;
  }

  /// Re-home the payload with at least `need` bytes of headroom (plus the
  /// standard reserve on top, mirroring the pre-pool regrowth policy).
  void grow_front(std::size_t need) {
    relocate(need + kHeadroom, kTailroom);
  }

  /// Re-home (or first promote from inline) with `need` bytes of tailroom.
  void grow_back(std::size_t need) {
    relocate(begin_ > kHeadroom ? begin_ : kHeadroom, need + kTailroom);
  }

  void relocate(std::size_t new_headroom, std::size_t new_tailroom) {
    const std::size_t n = size();
    BufferPool::Block* grown = BufferPool::local().acquire(new_headroom + n + new_tailroom);
    std::memcpy(grown->data() + new_headroom, storage() + begin_, n);
    release();
    block_ = grown;
    begin_ = static_cast<std::uint32_t>(new_headroom);
    end_ = static_cast<std::uint32_t>(new_headroom + n);
    ++generation_;
  }

  std::uint8_t inline_[kInlineCapacity];  ///< small-buffer storage (SBO)
  BufferPool::Block* block_ = nullptr;    ///< pooled storage; null = inline
  std::uint32_t begin_ = kInlineHeadroom;  ///< payload window [begin_, end_)
  std::uint32_t end_ = kInlineHeadroom;
  std::uint32_t generation_ = 0;
};

/// Big-endian integer encode/decode helpers for protocol headers.
inline void put_be16(std::span<std::uint8_t> out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}
inline void put_be32(std::span<std::uint8_t> out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}
[[nodiscard]] inline std::uint16_t get_be16(std::span<const std::uint8_t> in) {
  return static_cast<std::uint16_t>((in[0] << 8) | in[1]);
}
[[nodiscard]] inline std::uint32_t get_be32(std::span<const std::uint8_t> in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) | (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

}  // namespace u5g
