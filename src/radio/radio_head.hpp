#pragma once
// Radio head (RH) model: the SDR front end between PHY and the antenna.
//
// §4's "radio latency" = RF chain (DAC/ADC), interface-bus queuing and
// transfer. §7 observes the USRP B210's USB path adds ≈500 µs, forcing the
// gNB to delay every transmission by one slot so samples are at the radio
// on time — and §4 warns that a scheduler without enough margin produces a
// radio that is not ready, i.e. a corrupted signal. `prepare_tx` models
// exactly that: samples submitted for an air-time deadline either make it
// (ready_at <= deadline) or the slot is corrupted.

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "phy/samples.hpp"
#include "radio/bus.hpp"

namespace u5g {

struct RadioHeadParams {
  BusParams bus = BusParams::usb2();
  SampleRate sample_rate{};
  Nanos dac_adc_latency{25'000};   ///< RF chain group delay + FPGA buffering
  Nanos rx_chain_latency{30'000};  ///< ADC + host transfer setup on receive
  Nanos rx_base{20'000};           ///< host-side receive buffering floor

  /// The §7 testbed radio: USRP B210 on USB. Total TX-side latency lands
  /// near the paper's "around 500 µs" for slot-sized buffers at 0.5 ms slots.
  static RadioHeadParams usrp_b210_usb2() { return {}; }
  static RadioHeadParams usrp_b210_usb3() {
    return {BusParams::usb3(), SampleRate{}, Nanos{25'000}, Nanos{30'000}};
  }
  /// PCIe-attached SDR with a hardware-timed pipeline.
  static RadioHeadParams pcie_sdr() {
    return {BusParams::pcie(), SampleRate{}, Nanos{8'000}, Nanos{10'000}};
  }
  /// Idealised zero-latency radio path (differential analytic-vs-sim tests):
  /// free bus, no RF chain delay, no receive floor.
  static RadioHeadParams ideal() {
    return {BusParams{"free", Nanos::zero(), Nanos::zero(), JitterParams::none()}, SampleRate{},
            Nanos::zero(), Nanos::zero(), Nanos::zero()};
  }
};

/// Outcome of staging samples for an over-the-air deadline.
struct TxPreparation {
  Nanos ready_at;     ///< when the radio can start emitting the buffer
  bool on_time;       ///< ready_at <= air deadline?
  Nanos bus_latency;  ///< the (jittered) submission cost, for accounting
};

class RadioHead {
 public:
  RadioHead(RadioHeadParams params, Rng rng)
      : p_(params), bus_(p_.bus, rng) {}

  /// Stage `n_samples` at time `submit_at` for transmission at `air_deadline`.
  TxPreparation prepare_tx(Nanos submit_at, std::int64_t n_samples, Nanos air_deadline) {
    const Nanos bus = bus_.submit_latency(n_samples);
    const Nanos ready = submit_at + bus + p_.dac_adc_latency;
    return {ready, ready <= air_deadline, bus};
  }

  /// Delay from end of an over-the-air reception until the PHY has the
  /// samples in host memory.
  [[nodiscard]] Nanos rx_delivery_latency(std::int64_t n_samples) {
    return bus_.submit_latency(n_samples) - bus_.params().base_overhead + p_.rx_chain_latency +
           p_.rx_base;
  }

  /// Deterministic one-way radio latency for accounting/margins.
  [[nodiscard]] Nanos nominal_tx_latency(std::int64_t n_samples) const {
    return bus_.deterministic_latency(n_samples) + p_.dac_adc_latency;
  }

  [[nodiscard]] const RadioHeadParams& params() const { return p_; }
  [[nodiscard]] const SampleRate& sample_rate() const { return p_.sample_rate; }

 private:
  RadioHeadParams p_;
  BusModel bus_;
};

}  // namespace u5g
