#include "trace/chrome_trace.hpp"

#include <cstdio>
#include <set>

namespace u5g {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
}

void append_us(std::string& out, Nanos t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", t.us());
  out += buf;
}

}  // namespace

std::string chrome_trace_json(std::span<const TraceSpan> spans, std::string_view process_name) {
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"";
  append_escaped(out, process_name);
  out += "\"}}";

  std::set<std::int32_t> seqs;
  for (const TraceSpan& s : spans) seqs.insert(s.seq);
  for (std::int32_t seq : seqs) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(seq);
    out += ",\"args\":{\"name\":\"packet " + std::to_string(seq) + "\"}}";
  }

  for (const TraceSpan& s : spans) {
    out += ",\n{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"";
    append_escaped(out, to_string(s.category));
    out += "\",\"ph\":\"X\",\"ts\":";
    append_us(out, s.start);
    out += ",\"dur\":";
    append_us(out, s.duration());
    out += ",\"pid\":0,\"tid\":" + std::to_string(s.seq) + "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, std::span<const TraceSpan> spans,
                        std::string_view process_name) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = chrome_trace_json(spans, process_name);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace u5g
