#pragma once
// Transmission repetition vs HARQ — the Rel-16 URLLC reliability mechanism,
// extending the paper's §6 ("a range of trade-offs to achieve the
// reliability" [50, 54]; [27] "discusses avoiding retransmissions to
// minimize latency").
//
// Two ways to survive a lossy channel:
//   * HARQ: transmit once, wait for feedback, retransmit on NACK — each
//     round costs a feedback delay plus the wait for a fresh opportunity;
//   * repetition (slot/mini-slot aggregation): transmit the same TB in K
//     consecutive windows blindly — no feedback round trips; the receiver
//     decodes at the first success.
//
// This module provides the analytic latency/reliability trade for both over
// a real duplex configuration, plus a Monte-Carlo sampler used by the bench.

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "mac/harq.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

/// The k-th uplink window (1-based) of `n_symbols` at or after `t`,
/// windows packed back-to-back (a repetition bundle's k-th leg).
[[nodiscard]] std::optional<TxWindow> nth_ul_window(const DuplexConfig& cfg, Nanos t,
                                                    int n_symbols, int k);

struct ReliabilitySchemeParams {
  double per_tx_bler = 0.1;          ///< first-transmission block error rate
  double combining_factor = 0.1;     ///< per-extra-attempt BLER multiplier (soft combining)
  int max_attempts = 4;              ///< HARQ budget / repetition factor K
  int tx_symbols = 2;
  Nanos harq_feedback_delay{500'000};
};

/// Outcome of one packet under a scheme.
struct SchemeOutcome {
  bool delivered = false;
  Nanos completion{};  ///< time the decode succeeded (if delivered)
  int attempts = 0;
};

/// One packet under HARQ: attempt -> feedback -> next opportunity -> ...
[[nodiscard]] SchemeOutcome harq_outcome(const DuplexConfig& cfg, Nanos arrival,
                                         const ReliabilitySchemeParams& p, Rng& rng);

/// One packet under K-repetition: K back-to-back windows, decode at first
/// success (soft combining lowers each leg's BLER).
[[nodiscard]] SchemeOutcome repetition_outcome(const DuplexConfig& cfg, Nanos arrival,
                                               const ReliabilitySchemeParams& p, Rng& rng);

/// Residual loss probability of each scheme (same combining model).
[[nodiscard]] double residual_loss(const ReliabilitySchemeParams& p);

}  // namespace u5g
