#pragma once
// Modulation schemes and the MCS table (condensed from TS 38.214 Table
// 5.1.3.1-1). Determines bits carried per resource element and the code
// rate, which drive transport-block sizing and PHY processing time.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>

namespace u5g {

enum class Modulation : std::uint8_t { QPSK = 2, QAM16 = 4, QAM64 = 6, QAM256 = 8 };

[[nodiscard]] constexpr int bits_per_symbol(Modulation m) { return static_cast<int>(m); }

[[nodiscard]] constexpr std::string_view to_string(Modulation m) {
  switch (m) {
    case Modulation::QPSK: return "QPSK";
    case Modulation::QAM16: return "16QAM";
    case Modulation::QAM64: return "64QAM";
    case Modulation::QAM256: return "256QAM";
  }
  return "?";
}

/// One row of the MCS table: modulation plus code rate (R = rate_x1024/1024).
struct McsEntry {
  int index;
  Modulation modulation;
  int rate_x1024;
  [[nodiscard]] constexpr double code_rate() const { return rate_x1024 / 1024.0; }
  /// Spectral efficiency in information bits per resource element.
  [[nodiscard]] constexpr double bits_per_re() const {
    return bits_per_symbol(modulation) * code_rate();
  }
};

/// The 29 MCS indices of TS 38.214 Table 5.1.3.1-1 (64QAM table).
[[nodiscard]] std::span<const McsEntry> mcs_table();

/// Entry for `index`; throws std::out_of_range outside [0, 28].
[[nodiscard]] McsEntry mcs(int index);

/// Highest MCS whose code rate stays below `max_rate` — crude link adaptation
/// used by the channel-aware tests.
[[nodiscard]] McsEntry highest_mcs_below_rate(double max_rate);

}  // namespace u5g
