// Unit tests for the slot-scoped bump arena: epoch-reset slab reuse,
// alignment, the oversize fallback through BufferPool, and the counting-
// allocator proof that a warm epoch's allocations never touch the heap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/arena.hpp"
#include "common/buffer_pool.hpp"

// Counting global allocator for the warm-epoch zero-heap assertion.
namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace u5g {
namespace {

TEST(ArenaTest, EpochResetReusesTheSameSlabStorage) {
  Arena a;
  void* first = a.allocate(1024);
  std::memset(first, 0xAB, 1024);
  a.epoch_reset();
  void* again = a.allocate(1024);
  EXPECT_EQ(first, again) << "warm epoch must rewind to the retained slab";
  EXPECT_EQ(1u, a.stats().slab_acquires) << "no new slab across epochs";
  EXPECT_EQ(1u, a.stats().epochs);
}

TEST(ArenaTest, AllocationsRespectAlignment) {
  Arena a;
  (void)a.allocate(1, 1);  // misalign the bump offset
  for (const std::size_t align : {2u, 4u, 8u, 16u, 64u}) {
    void* p = a.allocate(3, align);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(p) % align) << "align " << align;
    (void)a.allocate(1, 1);  // re-misalign for the next round
  }
  auto* d = a.allocate_array<double>(5);
  EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(d) % alignof(double));
}

TEST(ArenaTest, AllocationsWithinAnEpochAreDisjoint) {
  Arena a;
  auto* x = a.allocate_array<std::uint32_t>(16);
  auto* y = a.allocate_array<std::uint32_t>(16);
  ASSERT_NE(x, y);
  for (int i = 0; i < 16; ++i) x[i] = 0x11111111u;
  for (int i = 0; i < 16; ++i) y[i] = 0x22222222u;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(0x11111111u, x[i]);
}

TEST(ArenaTest, SpillsIntoASecondSlabWhenTheFirstFills) {
  Arena a;
  // Three half-slab chunks cannot share one slab.
  void* p0 = a.allocate(Arena::kSlabBytes / 2 + 16);
  void* p1 = a.allocate(Arena::kSlabBytes / 2 + 16);
  void* p2 = a.allocate(Arena::kSlabBytes / 2 + 16);
  EXPECT_NE(p0, p1);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(3u, a.stats().slab_acquires);
  std::memset(p2, 0x5A, Arena::kSlabBytes / 2 + 16);  // writable end to end
  a.epoch_reset();
  // All three slabs are retained: the next epoch re-serves the same storage.
  EXPECT_EQ(p0, a.allocate(Arena::kSlabBytes / 2 + 16));
  EXPECT_EQ(3u, a.stats().slab_acquires);
  EXPECT_EQ(3 * Arena::kSlabBytes, a.warm_capacity());
}

TEST(ArenaTest, OversizeRequestFallsBackToAPoolBlockAndReturnsItAtReset) {
  BufferPool& pool = BufferPool::local();
  Arena a;
  (void)a.allocate(64);  // bind the arena to this thread's pool
  const std::uint64_t releases_before = pool.stats().releases;

  void* big = a.allocate(Arena::kSlabBytes + 1);
  ASSERT_NE(nullptr, big);
  std::memset(big, 0xC3, Arena::kSlabBytes + 1);  // fully usable
  EXPECT_EQ(1u, a.stats().oversize);

  a.epoch_reset();
  EXPECT_EQ(releases_before + 1, pool.stats().releases)
      << "oversize block must go back to the pool at the slot barrier";
  // The next oversize epoch recycles through the pool, not the arena slabs.
  (void)a.allocate(Arena::kSlabBytes + 1);
  EXPECT_EQ(2u, a.stats().oversize);
  a.epoch_reset();
}

TEST(ArenaTest, ZeroSizeRequestsAreAligned) {
  Arena a;
  void* p = a.allocate(0, 16);
  EXPECT_NE(nullptr, p);
  EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(p) % 16);
}

TEST(ArenaTest, WarmEpochsAreHeapAllocationFree) {
  Arena a;
  // Cold epoch: carve the slabs (and let the thread-local pool warm up).
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 64; ++i) (void)a.allocate(512, 16);
    a.epoch_reset();
  }
  const std::size_t before = g_allocs.load();
  for (int epoch = 0; epoch < 32; ++epoch) {
    for (int i = 0; i < 64; ++i) {
      void* p = a.allocate(512, 16);
      ASSERT_NE(nullptr, p);
    }
    a.epoch_reset();
  }
  EXPECT_EQ(0u, g_allocs.load() - before)
      << "a warm arena epoch must not touch the heap";
}

}  // namespace
}  // namespace u5g
