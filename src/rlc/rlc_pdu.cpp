#include "rlc/rlc_pdu.hpp"

#include <array>

namespace u5g {

void RlcHeader::encode(ByteBuffer& pdu) const {
  // byte0: SI(2) | P(1) | R(1) | SN[11:8](4)   byte1: SN[7:0]
  const auto b0 = static_cast<std::uint8_t>((static_cast<std::uint8_t>(si) << 6) |
                                            (poll ? 0x20 : 0x00) | ((sn >> 8) & 0x0F));
  const auto b1 = static_cast<std::uint8_t>(sn & 0xFF);
  if (needs_so()) {
    std::array<std::uint8_t, 4> h{b0, b1, static_cast<std::uint8_t>(so >> 8),
                                  static_cast<std::uint8_t>(so & 0xFF)};
    pdu.push_header(h);
  } else {
    std::array<std::uint8_t, 2> h{b0, b1};
    pdu.push_header(h);
  }
}

std::optional<RlcHeader> RlcHeader::decode(ByteBuffer& pdu) {
  if (pdu.size() < 2) return std::nullopt;
  RlcHeader h;
  {
    const auto b = pdu.pop_header(2);
    h.si = static_cast<SegmentInfo>(b[0] >> 6);
    h.poll = (b[0] & 0x20) != 0;
    h.sn = static_cast<std::uint16_t>((static_cast<std::uint16_t>(b[0] & 0x0F) << 8) | b[1]);
  }
  if (h.needs_so()) {
    if (pdu.size() < 2) return std::nullopt;
    const auto b = pdu.pop_header(2);
    h.so = static_cast<std::uint16_t>((static_cast<std::uint16_t>(b[0]) << 8) | b[1]);
  }
  return h;
}

}  // namespace u5g
