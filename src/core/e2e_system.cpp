#include "core/e2e_system.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <optional>
#include <utility>

#include "common/bytes.hpp"
#include "common/delivery.hpp"
#include "common/taxonomy.hpp"
#include "mac/bsr.hpp"
#include "mac/mac_pdu.hpp"
#include "mac/preemption.hpp"
#include "mac/ue_pool.hpp"
#include "node/pipeline.hpp"
#include "phy/transport_block.hpp"
#include "tdd/dynamic_format.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

namespace {

constexpr std::uint8_t kQfi = 5;
constexpr std::uint32_t kTeidBase = 0x1000;

/// Payload layout: 4-byte sequence number, rest filler. The sequence number
/// survives the round trip through cipher/segmentation and identifies the
/// packet record at delivery.
ByteBuffer make_payload(int seq, std::size_t bytes) {
  ByteBuffer b(std::max<std::size_t>(bytes, 4), 0xA5);
  put_be32(b.bytes().subspan(0, 4), static_cast<std::uint32_t>(seq));
  return b;
}

int read_seq(const ByteBuffer& b) {
  if (b.size() < 4) return -1;
  return static_cast<int>(get_be32(b.bytes().subspan(0, 4)));
}

/// Tracer span names for per-layer traversal observers, indexed by Layer.
/// Static literals: TraceSpan holds string_views.
constexpr std::array<const char*, 6> kGnbLayerSpan = {"gNB SDAP", "gNB PDCP", "gNB RLC",
                                                      "gNB MAC",  "gNB PHY",  "gNB APP"};
constexpr std::array<const char*, 6> kUeLayerSpan = {"UE SDAP", "UE PDCP", "UE RLC",
                                                     "UE MAC",  "UE PHY",  "UE APP"};

/// Cross-link RNG streams live beside — never inside — the main stream:
/// seeded from seed ^ salt so enabling the dynamic policy with zero
/// interference perturbs no tracked draw ("crosslnk" in ASCII).
constexpr std::uint64_t kCrosslinkSalt = 0x63726f'73736c'6e6bULL;

/// LBT gate stream salt ("nru-lbt" in ASCII): the gate's streams derive from
/// seed ^ salt, so enabling channel access perturbs no existing draw — and a
/// disabled config never constructs the gate at all.
constexpr std::uint64_t kLbtSalt = 0x6e'7275'2d6c'6274ULL;

}  // namespace

// ===========================================================================

struct E2eSystem::Impl {
  /// Per-UE context: its own stack (matching security contexts with the
  /// gNB's chain of the same index), SR state, configured-grant schedule,
  /// and HARQ retransmission buffer.
  struct UeCtx {
    UeCtx(int idx, const StackConfig& cfg, Rng rng, UeMacPool& pool)
        : index(idx),
          id(static_cast<std::uint32_t>(idx + 1)),
          stack(cfg.ue_proc, cfg.ue_radio, cfg.phy, cfg.rlc_mode, rng.fork(), 1,
                static_cast<std::uint32_t>(idx + 1)),
          sr(cfg.sr),
          // Stagger periodic configured grants so pre-allocations do not
          // collide (TDM within the UL region); dense (periodicity-0) grants
          // are assumed frequency-multiplexed and may overlap in time.
          cg(UeId{static_cast<std::uint32_t>(idx + 1)},
             cfg.cg.periodicity > Nanos::zero()
                 ? cfg.cg.with_offset(cfg.cg.offset +
                                      cfg.duplex->numerology().symbol_duration() *
                                          (cfg.cg.tx_symbols * idx))
                 : cfg.cg),
          sr_pending(pool.sr_pending(static_cast<std::size_t>(idx))),
          cg_scheduled(pool.cg_scheduled(static_cast<std::size_t>(idx))),
          ul_reorder_armed(pool.ul_reorder_armed(static_cast<std::size_t>(idx))),
          dl_reorder_armed(pool.dl_reorder_armed(static_cast<std::size_t>(idx))),
          ul_trace(pool.ul_trace(static_cast<std::size_t>(idx))),
          dl_trace(pool.dl_trace(static_cast<std::size_t>(idx))),
          retx_depth(pool.retx_depth(static_cast<std::size_t>(idx))) {}

    int index;
    UeId id;
    NodeStack stack;
    SrProcedure sr;
    ConfiguredGrant cg;
    // MAC-side scalar state lives in the cell's UeMacPool (struct-of-arrays);
    // these references keep the event-driven call sites reading and writing
    // the same lvalues they always did while batch sweeps scan the pool's
    // contiguous rows directly.
    bool& sr_pending;
    bool& cg_scheduled;
    bool& ul_reorder_armed;  ///< gNB-side t-Reordering for this UE's UL
    bool& dl_reorder_armed;  ///< UE-side t-Reordering for DL
    /// Tracing follows the most recently injected packet per UE and
    /// direction (-1 = none); overlapping packets on one UE attribute
    /// best-effort to the newest, the tiling invariant still holds.
    std::int32_t& ul_trace;
    std::int32_t& dl_trace;
    /// Pool mirror of retx_queue.size(); every queue mutation updates it.
    std::uint32_t& retx_depth;

    struct RetxTb {
      ByteBuffer tb;
      int attempt;
      int stranded_retries = 0;  ///< opportunity-search retries while queued
    };
    /// Lost TBs awaiting retransmission, oldest first (ordered by first
    /// transmission): a re-lost TB re-enters at the *front* so an old
    /// packet's recovery never queues behind newer ones.
    std::deque<RetxTb> retx_queue;

    [[nodiscard]] std::uint32_t teid() const {
      return kTeidBase + static_cast<std::uint32_t>(index);
    }
  };

  /// Re-arm attempts for a TB with no retransmission opportunity before it
  /// is dropped as stranded (satellite of the HARQ loss-recovery fix): one
  /// retry per slot, so the cap bounds the search to ~kStrandedRetryCap
  /// slots of scheduler starvation.
  static constexpr int kStrandedRetryCap = 64;

  StackConfig cfg;
  E2eSystem& owner;
  /// Non-null iff cfg.dynamic_tdd.enabled: the overlay wrapper swapped into
  /// cfg.duplex before any other member binds to the duplex map, so the
  /// scheduler, SR and configured-grant machinery all see committed upgrades
  /// through the one shared handle.
  std::shared_ptr<DynamicDuplexConfig> dyn;
  Simulator sim;
  Rng rng;
  NodeStack gnb;
  /// Struct-of-arrays home of the per-UE MAC scalars; sized once in the
  /// ctor before any UeCtx binds references into its rows.
  UeMacPool mac_pool;
  /// Slot-scoped scratch; epoch-reset at every run_until() barrier.
  Arena arena;
  std::vector<std::unique_ptr<UeCtx>> ues;
  Upf upf;
  MacScheduler sched;
  FaultInjector faults;
  Nanos slot_dur;

  // Per-layer gNB processing stats across all traversals (Table 2).
  std::array<RunningStats, 6> gnb_layer_stats;
  RunningStats rlc_q_stats_us;
  std::uint64_t missed_grants = 0;
  std::uint64_t harq_dropped = 0;   ///< TBs dropped: HARQ budget exhausted
  std::uint64_t stranded_drops = 0; ///< TBs/SDUs dropped: no opportunity in cap
  std::uint64_t pdcp_discards = 0;  ///< PDUs PDCP refused: stale/duplicate/integrity

  // -- Dynamic TDD state (all inert when cfg.dynamic_tdd.enabled is false) --
  std::optional<DynamicFormatPolicy> policy;  ///< engaged iff dynamic enabled
  PreemptionLedger ledger;                    ///< staged DL TBs (preemption on)
  Rng xlink_rng;                              ///< dedicated cross-link stream
  double xlink_activity = 0.0;       ///< aggregate neighbour DL-upgrade activity
  double dl_upgrade_activity = 0.0;  ///< own latest committed slot's added-DL fraction
  std::uint64_t punctured_retx = 0;  ///< eMBB TBs re-entered via puncture
  std::uint64_t xlink_losses = 0;    ///< UL transmissions lost to cross-link

  // -- NR-U channel access (inert when cfg.lbt.enabled is false) ------------
  /// Engaged iff cfg.lbt.enabled: the cell's shared-channel CAT4 gate.
  /// UL and DL data blocks both clear it; SR/PDCCH/HARQ feedback ride the
  /// short-control-signalling exemption.
  std::optional<LbtGate> lbt;

  // In-flight accounting for the scale-out load signal (sim/sharded.hpp).
  std::uint64_t packets_started = 0;
  std::uint64_t packets_delivered = 0;

  // -- Observability --------------------------------------------------------
  // The tracer records spans iff enabled; every hook starts with one
  // predicted branch. Metric handles are resolved once here and stay null
  // when metrics are off, so the disabled path is a null-pointer check.
  Tracer tracer;
  MetricsRegistry metrics;
  struct MetricHandles {
    Counter* ul_sent = nullptr;
    Counter* dl_sent = nullptr;
    Counter* delivered = nullptr;
    Counter* harq_retx = nullptr;
    Counter* harq_drop = nullptr;
    Counter* stranded = nullptr;
    Counter* radio_miss = nullptr;
    Counter* missed_grant = nullptr;
    Counter* f_burst = nullptr;
    Counter* f_storm = nullptr;
    Counter* f_stall = nullptr;
    Counter* f_upf_drop = nullptr;
    Counter* f_upf_delay = nullptr;
    Counter* punctured = nullptr;
    Counter* xlink_loss = nullptr;
    LatencyHistogram* ul_latency = nullptr;
    LatencyHistogram* dl_latency = nullptr;
    LatencyHistogram* rlc_q = nullptr;
    std::array<LatencyHistogram*, 6> gnb_layer{};
  } m;

  /// Wraps the static duplex in the dynamic overlay (and swaps the handle)
  /// when the policy is enabled; runs during member init, before `sched`
  /// binds its reference.
  static std::shared_ptr<DynamicDuplexConfig> wrap_dynamic(StackConfig& cfg) {
    if (!cfg.dynamic_tdd.enabled) return nullptr;
    auto wrapped = std::make_shared<DynamicDuplexConfig>(cfg.duplex);
    cfg.duplex = wrapped;
    return wrapped;
  }

  Impl(StackConfig c, E2eSystem& own)
      : cfg(std::move(c)),
        owner(own),
        dyn(wrap_dynamic(cfg)),
        rng(cfg.seed),
        gnb(cfg.gnb_proc, cfg.gnb_radio, cfg.phy, cfg.rlc_mode, rng.fork(),
            std::max(cfg.num_ues, 1)),
        upf(cfg.upf, rng.fork()),
        sched(*cfg.duplex, cfg.sched),
        // Fault streams derive from (seed, scenario index) via a dedicated
        // seeder — NOT from `rng` — so configuring faults perturbs no
        // existing draw sequence (golden-file equivalence when disabled).
        faults(cfg.faults, cfg.seed),
        slot_dur(cfg.duplex->numerology().slot_duration()),
        xlink_rng(hash_mix64(cfg.seed ^ kCrosslinkSalt)) {
    const FiveQi qos = urllc_five_qi();
    gnb.compute.sdap.configure_flow(kQfi, BearerId{1}, qos);
    mac_pool.resize(static_cast<std::size_t>(std::max(cfg.num_ues, 1)));
    for (int i = 0; i < std::max(cfg.num_ues, 1); ++i) {
      ues.push_back(std::make_unique<UeCtx>(i, cfg, rng.fork(), mac_pool));
      ues.back()->stack.compute.sdap.configure_flow(kQfi, BearerId{1}, qos);
      upf.bind_session(ues.back()->teid(), ues.back()->id.value());
    }
    // §7: "higher number of UEs might increase the processing times
    // noticeably" — scale the gNB's processing with attached load.
    gnb.compute.proc.set_scale(1.0 + cfg.gnb_load_factor_per_ue *
                                         static_cast<double>(ues.size() - 1));
    if (cfg.blockage) blockage.emplace(*cfg.blockage, rng.fork());
    // Channel-access gate seeded from (seed, salt) — NOT from `rng` — so
    // enabling LBT perturbs no existing draw sequence, and disabling it
    // leaves every run bitwise identical (no gate, no streams, no events).
    if (cfg.lbt.enabled) lbt.emplace(cfg.lbt, hash_mix64(cfg.seed ^ kLbtSalt));

    tracer.enable(cfg.trace.spans_on());
    if (cfg.trace.metrics_on()) {
      m.ul_sent = &metrics.counter("packets.ul_sent");
      m.dl_sent = &metrics.counter("packets.dl_sent");
      m.delivered = &metrics.counter("packets.delivered");
      m.harq_retx = &metrics.counter("packets.harq_retransmissions");
      m.harq_drop = &metrics.counter("harq.dropped_tbs");
      m.stranded = &metrics.counter("harq.stranded_drops");
      m.radio_miss = &metrics.counter("radio.deadline_misses");
      m.missed_grant = &metrics.counter("mac.missed_grants");
      m.f_burst = &metrics.counter("fault.burst_losses");
      m.f_storm = &metrics.counter("fault.os_jitter_storms");
      m.f_stall = &metrics.counter("fault.radio_bus_stalls");
      m.f_upf_drop = &metrics.counter("fault.upf_drops");
      m.f_upf_delay = &metrics.counter("fault.upf_delays");
      if (cfg.dynamic_tdd.enabled) {
        m.punctured = &metrics.counter("harq.punctured_retx");
        m.xlink_loss = &metrics.counter("xlink.ul_losses");
      }
      m.ul_latency = &metrics.histogram("latency.ul_ns");
      m.dl_latency = &metrics.histogram("latency.dl_ns");
      m.rlc_q = &metrics.histogram("gnb.rlc_queue_wait_ns");
      for (std::size_t i = 0; i < m.gnb_layer.size(); ++i) {
        m.gnb_layer[i] = &metrics.histogram(
            std::string("gnb.layer_ns.") + std::string(to_string(static_cast<Layer>(i))));
      }
    }
    if (cfg.dynamic_tdd.enabled) {
      policy.emplace(dyn->base(), cfg.dynamic_tdd);
      sim.schedule_at(Nanos::zero(), [this] { dynamic_tick(); });
    }
  }

  // -- Dynamic TDD ----------------------------------------------------------

  [[nodiscard]] bool preemption_on() const {
    return cfg.dynamic_tdd.enabled && cfg.dynamic_tdd.preemption;
  }

  /// MAC-observable queue state at a slot boundary. Pure reads: gathering it
  /// draws nothing and mutates nothing, so the decision tick is invisible
  /// when it commits no upgrade.
  [[nodiscard]] TddQueueState gather_queue_state() {
    TddQueueState q;
    q.sr_pending = static_cast<std::uint32_t>(UeMacPool::count_set(mac_pool.sr_pending_row()));
    q.cg_armed = static_cast<std::uint32_t>(UeMacPool::count_set(mac_pool.cg_scheduled_row()));
    mac_pool.for_each_retx(
        [&](std::size_t, std::uint32_t depth) { q.ul_retx_tbs += depth; });
    for (const auto& ue : ues) {
      q.ul_queued_sdus +=
          static_cast<std::uint32_t>(ue->stack.uplink().rlc_tx.queued_sdus());
      q.dl_queued_sdus += static_cast<std::uint32_t>(
          gnb.downlink(static_cast<std::size_t>(ue->index)).rlc_tx.queued_sdus());
    }
    q.dl_inflight_tbs = ledger.inflight_at(sim.now());
    return q;
  }

  /// The per-slot decision event: observe at the boundary of slot k, commit
  /// slot k + guard. Self-rescheduling; only ever armed when the policy is
  /// enabled, so disabled runs schedule zero extra events.
  void dynamic_tick() {
    const SlotClock clk = cfg.duplex->clock();
    const SlotIndex k = clk.slot_at(sim.now());
    const DecidedFormat f = policy->decide(k, gather_queue_state());
    dyn->commit(k + policy->config().guard_slots, f);
    dl_upgrade_activity =
        static_cast<double>(std::popcount(f.added_dl)) / static_cast<double>(kSymbolsPerSlot);
    sim.schedule_at(clk.slot_start(k + 1), [this] { dynamic_tick(); });
  }

  /// Extra UL loss from neighbouring cells' DL-upgraded slots. Zero draws
  /// unless both the knob and the exchanged activity are non-zero, keeping
  /// single-cell runs and disabled configs bitwise identical.
  bool crosslink_ul_lost() {
    const double p = cfg.dynamic_tdd.xlink_ul_bler * xlink_activity;
    if (p <= 0.0) return false;
    if (!xlink_rng.bernoulli(std::min(p, 1.0))) return false;
    ++xlink_losses;
    if (m.xlink_loss != nullptr) m.xlink_loss->inc();
    return true;
  }

  /// One CAT4 clearance for a data burst nominally occupying
  /// [wanted, wanted + dur). The caller's trace cursor sits at `wanted`
  /// (every data TX path advances it to the nominal air start first), so the
  /// deferral span tiles exactly between the slot wait and the over-the-air
  /// span — the fourth latency category. Only called when `lbt` is engaged.
  LbtGate::Access lbt_clear(std::int32_t tseq, Nanos wanted, Nanos dur) {
    const LbtGate::Access a = lbt->acquire(wanted, dur, sim.now());
    if (a.deferral > Nanos::zero()) {
      tracer.span_to(tseq, "LBT deferral (CAT4 backoff)", LatencyCategory::ChannelAccess,
                     wanted + a.deferral);
    }
    return a;
  }

  /// One punctured TB re-entered HARQ (never called on terminal drops: the
  /// counter tallies re-entries only, on the side of the loss identity).
  void count_punctured_retx() {
    ++punctured_retx;
    if (m.punctured != nullptr) m.punctured->inc();
  }

  PacketRecord& rec(std::size_t idx) { return owner.records_[idx]; }

  std::int64_t samples_of(const RadioHead& rh, Nanos dur) const {
    return std::max<std::int64_t>(rh.sample_rate().samples_in(dur), 64);
  }

  std::optional<MmWaveBlockage> blockage;

  bool channel_lost() {
    if (faults.models_channel_loss()) {
      // A BurstLoss scenario replaces the i.i.d. knob: the Gilbert–Elliott
      // chain (own stream) decides, and i.i.d. is its degenerate
      // single-state case (GilbertElliott::Params::iid).
      if (faults.channel_lost(sim.now())) {
        if (m.f_burst != nullptr) m.f_burst->inc();
        return true;
      }
    } else if (cfg.channel_loss > 0.0 && rng.bernoulli(cfg.channel_loss)) {
      return true;
    }
    if (blockage && !blockage->transmit_ok(sim.now())) return true;
    return false;
  }

  // -- Fault-injection hooks -------------------------------------------------
  // All zero-cost when `cfg.faults` is empty: one `empty()` branch per hook.

  /// Added radio-bus transfer latency at `now`. When `trace_span` (the RX
  /// chain sites, where spans are duration-based) the stall is emitted as
  /// its own Radio span; the TX `prepare_tx` sites fold it into `ready_at`
  /// instead, where it erodes the §4 margin and can miss the slot.
  Nanos fault_bus_stall(std::int32_t tseq, bool trace_span) {
    if (faults.empty()) return Nanos::zero();
    const Nanos stall = faults.bus_stall(sim.now());
    if (stall > Nanos::zero()) {
      if (m.f_stall != nullptr) m.f_stall->inc();
      if (trace_span) {
        tracer.span_for(tseq, "fault: radio-bus stall", LatencyCategory::Radio, stall);
      }
    }
    return stall;
  }

  /// Wrap a traversal continuation so an active OS-jitter storm adds one
  /// extra (traced) delay between the layer chain and `done` — the Fig 5
  /// preemption spike landing mid-traversal.
  template <typename Done>
  auto storm_wrapped(std::int32_t tseq, Done done) {
    return [this, tseq, done = std::move(done)](Nanos end) mutable {
      const Nanos storm = faults.empty() ? Nanos::zero() : faults.processing_jitter(sim.now());
      if (storm <= Nanos::zero()) {
        done(end);
        return;
      }
      if (m.f_storm != nullptr) m.f_storm->inc();
      tracer.span_for(tseq, "fault: OS-jitter storm", LatencyCategory::Processing, storm);
      sim.schedule_after(storm, [this, done = std::move(done)]() mutable { done(sim.now()); });
    };
  }

  /// Account a TB whose HARQ transmission budget is exhausted. `tseq` is the
  /// per-UE trace cursor for the affected direction; the traced packet is
  /// abandoned (its spans stay, it never closes).
  void drop_tb_harq(std::int32_t& tseq) {
    ++harq_dropped;
    if (m.harq_drop != nullptr) m.harq_drop->inc();
    tracer.abandon(tseq);
    tseq = -1;
  }

  /// Account a TB/SDU dropped because no opportunity appeared within the
  /// stranded-retry cap.
  void drop_stranded(std::int32_t& tseq) {
    ++stranded_drops;
    if (m.stranded != nullptr) m.stranded->inc();
    tracer.abandon(tseq);
    tseq = -1;
  }

  /// After an UL drop the grant cycle that carried the TB is over; without
  /// this, `sr_pending` stayed latched and every later packet on the UE
  /// silently starved (part of the stranded-retransmission fix). Drain any
  /// remaining lost TBs first, then restart the access flow for backlog.
  void resume_ul_after_drop(UeCtx& ue) {
    if (!ue.retx_queue.empty()) {
      retransmit_ul(ue);
      return;
    }
    if (cfg.grant_free) {
      if (ue.stack.uplink().rlc_tx.has_data()) schedule_cg_service(ue);
    } else {
      ue.sr_pending = false;
      if (ue.stack.uplink().rlc_tx.has_data()) trigger_sr(ue);
    }
  }

  /// PDCP t-Reordering (TS 38.323 §5.2.2.2): when a PDU is held waiting for
  /// a missing COUNT, a timer bounds the wait; on expiry the held run is
  /// flushed past the gap. Without this, one HARQ-exhausted loss would stall
  /// in-order delivery forever. `deliver` is copied into the timer event —
  /// PdcpRx::Deliver itself is a non-owning FunctionRef — so the early-out
  /// (the loss-free common case) pays nothing for the owning copy.
  template <typename DeliverFn>
  void arm_pdcp_reordering(PdcpRx& rx, bool& armed, const DeliverFn& deliver) {
    if (rx.held_count() == 0 || armed) return;
    armed = true;
    sim.schedule_after(cfg.pdcp_t_reordering, [this, &rx, &armed, deliver] {
      armed = false;
      rx.flush(deliver);
    });
  }

  /// Traverse gNB layers, recording draws into the global Table 2 stats,
  /// (when `ridx` is valid) the packet record, and (when tracing) packet
  /// `tseq`'s waterfall as Processing spans.
  template <typename Done>
  void gnb_traverse(std::initializer_list<Layer> layers, std::optional<std::size_t> ridx,
                    std::int32_t tseq, Done done) {
    traverse_layers(
        sim, gnb.compute.proc, layers,
        [this, ridx, tseq](Layer l, Nanos dt) {
          const auto li = static_cast<std::size_t>(l);
          gnb_layer_stats[li].add(dt.us());
          if (m.gnb_layer[li]) m.gnb_layer[li]->record(dt);
          if (ridx) rec(*ridx).gnb_layer_time[li] += dt;
          tracer.span_for(tseq, kGnbLayerSpan[li], LatencyCategory::Processing, dt);
        },
        storm_wrapped(tseq, std::move(done)));
  }

  template <typename Done>
  void ue_traverse(UeCtx& ue, std::initializer_list<Layer> layers, std::int32_t tseq, Done done) {
    traverse_layers(
        sim, ue.stack.compute.proc, layers,
        [this, tseq](Layer l, Nanos dt) {
          tracer.span_for(tseq, kUeLayerSpan[static_cast<std::size_t>(l)],
                          LatencyCategory::Processing, dt);
        },
        storm_wrapped(tseq, std::move(done)));
  }

  // =========================================================================
  // Uplink

  void start_uplink(std::size_t ridx) {
    UeCtx& ue = *ues[static_cast<std::size_t>(rec(ridx).ue)];
    if (tracer.enabled()) {
      ue.ul_trace = rec(ridx).seq;
      tracer.open(ue.ul_trace, sim.now());
    }
    if (m.ul_sent != nullptr) m.ul_sent->inc();
    ++packets_started;
    // UE application creates the packet; APP down to RLC.
    ue_traverse(ue, {Layer::APP, Layer::SDAP, Layer::PDCP, Layer::RLC}, ue.ul_trace,
                [this, ridx, &ue](Nanos end) {
                  const PacketRecord& r = rec(ridx);
                  ByteBuffer pkt = make_payload(r.seq, cfg.payload_bytes);
                  ue.stack.compute.sdap.encapsulate(pkt, kQfi);
                  ue.stack.uplink().pdcp_tx.protect(pkt);
                  ue.stack.uplink().rlc_tx.enqueue(std::move(pkt), end);
                  if (cfg.grant_free) {
                    schedule_cg_service(ue);
                  } else {
                    trigger_sr(ue);
                  }
                });
  }

  void trigger_sr(UeCtx& ue) {
    if (ue.sr_pending) return;  // a grant cycle is already in flight
    ue.sr_pending = true;
    // The UE's MAC stages the SR; it goes out at the next SR opportunity.
    const Nanos mac_delay = ue.stack.compute.proc.sample(Layer::MAC);
    const auto op = ue.sr.next_sr_opportunity(*cfg.duplex, sim.now() + mac_delay);
    if (!op) {
      ue.sr_pending = false;
      return;
    }
    tracer.span_for(ue.ul_trace, "UE MAC SR staging", LatencyCategory::Processing, mac_delay);
    tracer.span_to(ue.ul_trace, "wait for SR opportunity", LatencyCategory::Protocol, op->start);
    tracer.span_to(ue.ul_trace, "SR over the air", LatencyCategory::Protocol, op->end);
    sim.schedule_at(op->end, [this, &ue] {
      // gNB side: radio delivery of the SR samples, then PHY decode.
      const Nanos rx = gnb.compute.radio.rx_delivery_latency(
          samples_of(gnb.compute.radio, cfg.duplex->numerology().symbol_duration()));
      tracer.span_for(ue.ul_trace, "gNB radio RX chain", LatencyCategory::Radio, rx);
      sim.schedule_after(rx + fault_bus_stall(ue.ul_trace, /*trace_span=*/true), [this, &ue] {
        gnb_traverse({Layer::PHY}, std::nullopt, ue.ul_trace, [this, &ue](Nanos aware) {
          const auto plan = sched.plan_ul_grant(ue.id, aware);
          if (!plan) {
            ue.sr_pending = false;
            return;
          }
          deliver_grant(ue, *plan);
        });
      });
    });
  }

  void deliver_grant(UeCtx& ue, const UlGrantPlan& plan) {
    const UlGrant grant = plan.grant;
    tracer.span_to(ue.ul_trace, "gNB scheduler + wait for DL control", LatencyCategory::Protocol,
                   plan.control.start);
    tracer.span_to(ue.ul_trace, "UL grant over the air", LatencyCategory::Protocol,
                   plan.control.end);
    sim.schedule_at(plan.control.end, [this, &ue, grant] {
      // UE decodes the DCI: radio + PHY + MAC.
      const Nanos rx = ue.stack.compute.radio.rx_delivery_latency(
          samples_of(ue.stack.compute.radio, cfg.duplex->numerology().symbol_duration()));
      tracer.span_for(ue.ul_trace, "UE radio RX chain", LatencyCategory::Radio, rx);
      sim.schedule_after(rx + fault_bus_stall(ue.ul_trace, /*trace_span=*/true),
                         [this, &ue, grant] {
        ue_traverse(ue, {Layer::PHY, Layer::MAC}, ue.ul_trace, [this, &ue, grant](Nanos decoded) {
          if (decoded > grant.tx_start) {
            // Missed the granted window (§4's interdependency hazard):
            // the scheduler re-grants from the moment the UE was ready.
            ++missed_grants;
            if (m.missed_grant != nullptr) m.missed_grant->inc();
            const auto again = sched.plan_ul_grant(ue.id, decoded);
            if (again) {
              deliver_grant(ue, *again);
            } else {
              ue.sr_pending = false;
            }
            return;
          }
          tracer.span_to(ue.ul_trace, "wait for granted UL window", LatencyCategory::Protocol,
                         grant.tx_start);
          sim.schedule_at(grant.tx_start, [this, &ue, grant] { serve_ul_grant(ue, grant, 1); });
        });
      });
    });
  }

  void schedule_cg_service(UeCtx& ue) {
    if (ue.cg_scheduled) return;
    // UE staging lead before a configured occasion: PHY encode + radio.
    const Nanos encode =
        ue.stack.compute.phy.encode_time(static_cast<int>(cfg.cg.tb_bytes * 8));
    const Nanos radio = ue.stack.compute.radio.nominal_tx_latency(
        samples_of(ue.stack.compute.radio,
                   cfg.duplex->numerology().symbol_duration() * cfg.cg.tx_symbols));
    const auto occ = ue.cg.next_occasion(*cfg.duplex, sim.now() + encode + radio);
    if (!occ) return;
    ue.cg_scheduled = true;
    const UlGrant grant = *occ;
    tracer.span_for(ue.ul_trace, "UE PHY encode", LatencyCategory::Processing, encode);
    tracer.span_for(ue.ul_trace, "UE radio TX chain", LatencyCategory::Radio, radio);
    tracer.span_to(ue.ul_trace, "wait for UL occasion", LatencyCategory::Protocol, grant.tx_start);
    sim.schedule_at(grant.tx_start, [this, &ue, grant] {
      ue.cg_scheduled = false;
      serve_ul_grant(ue, grant, 1);
    });
  }

  void serve_ul_grant(UeCtx& ue, const UlGrant& grant, int attempt) {
    // Fill the transport block: BSR CE first, then as many RLC PDUs as fit.
    // The CE's single payload byte is written after the pulls, once the
    // remaining backlog is known.
    MacSubPdus sub;
    sub.emplace_back(MacSubPdu{Lcid::ShortBsr, ByteBuffer(1)});
    std::size_t used = kMacSubheaderBytes + 1;  // BSR CE slot
    bool any = false;
    RlcTx& rlc = ue.stack.uplink().rlc_tx;
    while (used + kMacSubheaderBytes + kMaxRlcHeader + 1 <= grant.tb_bytes) {
      auto pulled = rlc.pull(grant.tb_bytes - used - kMacSubheaderBytes);
      if (!pulled) break;
      used += kMacSubheaderBytes + pulled->pdu.size();
      sub.push_back(MacSubPdu{Lcid::Drb1, std::move(pulled->pdu)});
      any = true;
    }
    if (!any) {
      // Nothing to send: a wasted occasion/grant (§9's grant-free waste).
      if (!cfg.grant_free) ue.sr_pending = false;
      return;
    }
    // Short BSR CE reports the remaining backlog (drives follow-up grants).
    sub[0].payload.bytes()[0] = ShortBsr::for_bytes(rlc.queued_bytes()).encode();
    ByteBuffer tb = build_mac_pdu(sub, grant.tb_bytes);

    // Grant-free UEs keep their pre-allocated occasions: arm the next one
    // right away when backlog remains (it need not wait for the gNB).
    if (cfg.grant_free && rlc.has_data()) schedule_cg_service(ue);

    // NR-U: the block must win channel access first; deferral shifts the
    // whole air window (the grid slot is a scheduling opportunity, the
    // channel decides when the burst actually starts).
    Nanos air_end = grant.tx_end;
    LbtGate::Access access{};
    if (lbt) {
      access = lbt_clear(ue.ul_trace, grant.tx_start, grant.tx_end - grant.tx_start);
      air_end += access.deferral;
    }
    bool lost = channel_lost();
    // Cross-link interference: a neighbouring cell's DL-upgraded slot facing
    // this UL transmission (sharded engine, dynamic TDD).
    if (!lost && crosslink_ul_lost()) lost = true;
    // Hidden interference the energy detector could not see.
    if (!lost && access.collided) lost = true;
    if (lbt) lbt->on_harq_feedback(lost);
    if (lost && attempt < cfg.harq_max_tx) {
      // NACK path: keep the TB, and after the feedback delay retransmit on
      // the next opportunity of the same access mode.
      tracer.span_to(ue.ul_trace, "UL data over the air (lost)", LatencyCategory::Protocol,
                     air_end);
      tracer.span_to(ue.ul_trace, "HARQ feedback wait", LatencyCategory::Protocol,
                     air_end + cfg.harq_feedback_delay);
      ue.retx_queue.push_back(UeCtx::RetxTb{std::move(tb), attempt + 1});
      ue.retx_depth = static_cast<std::uint32_t>(ue.retx_queue.size());
      sim.schedule_at(air_end + cfg.harq_feedback_delay, [this, &ue] { retransmit_ul(ue); });
      return;
    }
    if (lost) {
      // HARQ budget exhausted on the first (and only) transmission.
      drop_tb_harq(ue.ul_trace);
      resume_ul_after_drop(ue);
      return;
    }

    tracer.span_to(ue.ul_trace, "UL data over the air", LatencyCategory::Protocol, air_end);
    sim.schedule_at(air_end, [this, &ue, tb = std::move(tb), attempt]() mutable {
      const Nanos rx = gnb.compute.radio.rx_delivery_latency(
          samples_of(gnb.compute.radio, Nanos{100'000}));
      tracer.span_for(ue.ul_trace, "gNB radio RX chain", LatencyCategory::Radio, rx);
      sim.schedule_after(rx + fault_bus_stall(ue.ul_trace, /*trace_span=*/true),
                         [this, &ue, tb = std::move(tb), attempt]() mutable {
                           gnb_rx_ul(ue, std::move(tb), attempt);
                         });
    });
  }

  /// Acquire a fresh opportunity of the same access mode and re-send the
  /// oldest lost TB. (AM-mode RLC would additionally recover via status
  /// reports; HARQ is the first line of defence.)
  void retransmit_ul(UeCtx& ue) {
    if (ue.retx_queue.empty()) return;
    std::optional<UlGrant> opportunity;
    if (cfg.grant_free) {
      opportunity = ue.cg.next_occasion(*cfg.duplex, sim.now());
    } else {
      const auto plan = sched.plan_ul_grant(ue.id, sim.now());
      if (plan) opportunity = plan->grant;
    }
    if (!opportunity) {
      // No opportunity inside the planner's search horizon (a starved or
      // reconfigured UL era). The TB used to sit in `retx_queue` forever,
      // uncounted — reliability silently inflated. Re-arm one slot later;
      // past the cap, drop it and account the loss explicitly.
      UeCtx::RetxTb& front = ue.retx_queue.front();
      if (++front.stranded_retries > kStrandedRetryCap) {
        ue.retx_queue.pop_front();
        ue.retx_depth = static_cast<std::uint32_t>(ue.retx_queue.size());
        drop_stranded(ue.ul_trace);
        resume_ul_after_drop(ue);
        return;
      }
      const Nanos again = sim.now() + slot_dur;
      tracer.span_to(ue.ul_trace, "stranded retransmission wait", LatencyCategory::Protocol,
                     again);
      sim.schedule_at(again, [this, &ue] { retransmit_ul(ue); });
      return;
    }
    const UlGrant g = *opportunity;
    tracer.span_to(ue.ul_trace, "wait for retransmission occasion", LatencyCategory::Protocol,
                   g.tx_start);
    sim.schedule_at(g.tx_start, [this, &ue, g] { resend_ul_tb(ue, g); });
  }

  void resend_ul_tb(UeCtx& ue, const UlGrant& grant) {
    if (ue.retx_queue.empty()) return;
    UeCtx::RetxTb entry = std::move(ue.retx_queue.front());
    ue.retx_queue.pop_front();
    ue.retx_depth = static_cast<std::uint32_t>(ue.retx_queue.size());
    // Retransmissions clear LBT like any other data burst (only short
    // control signalling is exempt).
    Nanos air_end = grant.tx_end;
    LbtGate::Access access{};
    if (lbt) {
      access = lbt_clear(ue.ul_trace, grant.tx_start, grant.tx_end - grant.tx_start);
      air_end += access.deferral;
    }
    bool lost = channel_lost();
    if (!lost && crosslink_ul_lost()) lost = true;
    if (!lost && access.collided) lost = true;
    if (lbt) lbt->on_harq_feedback(lost);
    if (lost && entry.attempt < cfg.harq_max_tx) {
      tracer.span_to(ue.ul_trace, "UL data over the air (lost)", LatencyCategory::Protocol,
                     air_end);
      tracer.span_to(ue.ul_trace, "HARQ feedback wait", LatencyCategory::Protocol,
                     air_end + cfg.harq_feedback_delay);
      ++entry.attempt;
      entry.stranded_retries = 0;
      // Back to the *front*: the queue is ordered by first transmission, and
      // a push_back here would let every newer loss overtake this (oldest)
      // packet's recovery, unboundedly delaying its delivery.
      ue.retx_queue.push_front(std::move(entry));
      ue.retx_depth = static_cast<std::uint32_t>(ue.retx_queue.size());
      sim.schedule_at(air_end + cfg.harq_feedback_delay, [this, &ue] { retransmit_ul(ue); });
      return;
    }
    if (lost) {
      // HARQ budget exhausted on a retransmission: account it, then keep
      // serving any other lost TBs (the early return used to orphan them).
      drop_tb_harq(ue.ul_trace);
      resume_ul_after_drop(ue);
      return;
    }
    const int attempt = entry.attempt;
    tracer.span_to(ue.ul_trace, "UL data over the air", LatencyCategory::Protocol, air_end);
    sim.schedule_at(air_end, [this, &ue, tb = std::move(entry.tb), attempt]() mutable {
      const Nanos rx = gnb.compute.radio.rx_delivery_latency(
          samples_of(gnb.compute.radio, Nanos{100'000}));
      tracer.span_for(ue.ul_trace, "gNB radio RX chain", LatencyCategory::Radio, rx);
      sim.schedule_after(rx + fault_bus_stall(ue.ul_trace, /*trace_span=*/true),
                         [this, &ue, tb = std::move(tb), attempt]() mutable {
                           gnb_rx_ul(ue, std::move(tb), attempt);
                         });
    });
    // More lost TBs pending? Chain another opportunity.
    if (!ue.retx_queue.empty()) retransmit_ul(ue);
  }

  void gnb_rx_ul(UeCtx& ue, ByteBuffer tb, int attempt) {
    gnb_traverse({Layer::PHY, Layer::MAC}, std::nullopt, ue.ul_trace,
                 [this, &ue, tb = std::move(tb), attempt](Nanos) mutable {
      auto subpdus = parse_mac_pdu(std::move(tb));
      if (!subpdus) return;
      bool more_data = false;
      for (MacSubPdu& sp : *subpdus) {
        if (sp.lcid == Lcid::ShortBsr) {
          more_data = bsr_bucket_bytes(ShortBsr::decode(sp.payload.bytes()[0]).index) > 0;
        } else if (sp.lcid == Lcid::Drb1) {
          process_ul_rlc_pdu(ue, std::move(sp.payload), attempt);
        }
      }
      if (!cfg.grant_free) {
        if (more_data || ue.stack.uplink().rlc_tx.has_data()) {
          const auto plan = sched.plan_ul_grant(ue.id, sim.now());
          if (plan) deliver_grant(ue, *plan);
        } else {
          ue.sr_pending = false;
        }
      } else if (ue.stack.uplink().rlc_tx.has_data()) {
        schedule_cg_service(ue);
      }
    });
  }

  void process_ul_rlc_pdu(UeCtx& ue, ByteBuffer&& pdu, int attempt) {
    const std::size_t chain = static_cast<std::size_t>(ue.index);
    gnb.uplink(chain).rlc_rx.receive(
        std::move(pdu), [this, &ue, chain, attempt](ByteBuffer&& sdu, const PacketMeta&) {
          gnb_traverse({Layer::RLC, Layer::PDCP, Layer::SDAP}, std::nullopt, ue.ul_trace,
                       [this, &ue, chain, sdu = std::move(sdu), attempt](Nanos) mutable {
                         const auto deliver = [this, &ue, attempt](ByteBuffer&& plain,
                                                                   const PacketMeta&) {
                           deliver_ul(ue, std::move(plain), attempt);
                         };
                         // A refused PDU (stale behind a t-Reordering flush,
                         // duplicate, or integrity-failed) is a terminal loss
                         // for its packet: count it, or reliability silently
                         // inflates when recovery outlasts the flush timer.
                         if (!gnb.uplink(chain).pdcp_rx.receive(std::move(sdu), deliver)) {
                           ++pdcp_discards;
                         }
                         arm_pdcp_reordering(gnb.uplink(chain).pdcp_rx, ue.ul_reorder_armed,
                                             deliver);
                       });
        });
  }

  void deliver_ul(UeCtx& ue, ByteBuffer&& sdu, int attempt) {
    (void)gnb.compute.sdap.decapsulate(sdu);
    gtpu_encapsulate(sdu, ue.teid());
    // The UPF routes (and strips the tunnel of) its own copy; the original
    // stays encapsulated for the sequence read below. Pool-backed copies:
    // one block acquire + memcpy, no heap traffic.
    ByteBuffer routed = sdu;
    const Nanos upf_latency = upf.process_uplink(routed).value_or(Nanos::zero());
    const int seq = [&] {
      (void)gtpu_decapsulate(sdu);
      return read_seq(sdu);
    }();
    // A UPF outage may eat the packet after the whole radio journey — the
    // §6 point that reliability is end-to-end, not an air-interface property.
    if (!faults.empty() && faults.upf_dropped(sim.now())) {
      if (m.f_upf_drop != nullptr) m.f_upf_drop->inc();
      std::int32_t t = seq;
      if (ue.ul_trace == seq) ue.ul_trace = -1;
      tracer.abandon(t);
      return;
    }
    Nanos upf_extra{};
    if (!faults.empty() && (upf_extra = faults.upf_extra_delay(sim.now())) > Nanos::zero()) {
      if (m.f_upf_delay != nullptr) m.f_upf_delay->inc();
      tracer.span_for(seq, "fault: UPF outage delay", LatencyCategory::Protocol, upf_extra);
    }
    tracer.span_for(seq, "core network (UPF + backhaul)", LatencyCategory::Protocol,
                    upf.backhaul() + upf_latency);
    if (ue.ul_trace == seq) ue.ul_trace = -1;
    sim.schedule_after(upf.backhaul() + upf_latency + upf_extra,
                       [this, seq, attempt] { finalize(seq, attempt); });
  }

  // =========================================================================
  // Downlink

  void start_downlink(std::size_t ridx) {
    // Packet enters at the UPF from the data network.
    const PacketRecord& r = rec(ridx);
    UeCtx& ue = *ues[static_cast<std::size_t>(r.ue)];
    if (tracer.enabled()) {
      ue.dl_trace = r.seq;
      tracer.open(ue.dl_trace, sim.now());
    }
    if (m.dl_sent != nullptr) m.dl_sent->inc();
    ++packets_started;
    ByteBuffer pkt = make_payload(r.seq, cfg.payload_bytes);
    // DL packets meet the UPF first: an outage drops or delays them before
    // the radio stack ever sees a byte.
    if (!faults.empty() && faults.upf_dropped(sim.now())) {
      if (m.f_upf_drop != nullptr) m.f_upf_drop->inc();
      tracer.abandon(ue.dl_trace);
      ue.dl_trace = -1;
      return;
    }
    Nanos upf_extra{};
    if (!faults.empty() && (upf_extra = faults.upf_extra_delay(sim.now())) > Nanos::zero()) {
      if (m.f_upf_delay != nullptr) m.f_upf_delay->inc();
      tracer.span_for(ue.dl_trace, "fault: UPF outage delay", LatencyCategory::Protocol,
                      upf_extra);
    }
    const Nanos upf_latency = upf.process_downlink(pkt, ue.teid()) + upf_extra;
    tracer.span_for(ue.dl_trace, "core network (UPF + backhaul)", LatencyCategory::Protocol,
                    upf_latency + upf.backhaul());
    sim.schedule_after(upf_latency + upf.backhaul(),
                       [this, pkt = std::move(pkt), ridx, &ue]() mutable {
                         gnb_dl_ingress(ue, std::move(pkt), ridx);
                       });
  }

  void gnb_dl_ingress(UeCtx& ue, ByteBuffer pkt, std::size_t ridx) {
    if (!gtpu_decapsulate(pkt)) return;
    gnb_traverse({Layer::SDAP, Layer::PDCP, Layer::RLC}, ridx, ue.dl_trace,
                 [this, &ue, pkt = std::move(pkt)](Nanos end) mutable {
                   const std::size_t chain = static_cast<std::size_t>(ue.index);
                   gnb.compute.sdap.encapsulate(pkt, kQfi);
                   gnb.downlink(chain).pdcp_tx.protect(pkt);
                   gnb.downlink(chain).rlc_tx.enqueue(std::move(pkt), end);
                   schedule_dl_service(ue, end);
                 });
  }

  /// Bytes one DL window can physically carry: the §2 resource grid at a
  /// typical private-5G allocation (100 PRB, MCS 19). Large SDUs therefore
  /// segment across windows, exactly as RLC would on hardware. The TBS
  /// arithmetic is memoized per symbol count inside the scheduler.
  [[nodiscard]] std::size_t window_capacity_bytes(const DlAssignment& a) {
    const auto symbols = static_cast<int>((a.tx_end - a.tx_start) /
                                          cfg.duplex->numerology().symbol_duration());
    return sched.dl_window_capacity_bytes(symbols);
  }

  void schedule_dl_service(UeCtx& ue, Nanos ready, int stranded_retries = 0) {
    const std::size_t tb = cfg.payload_bytes + cfg.dl_tb_slack;
    const auto plan = sched.plan_dl(ue.id, ready, tb);
    // URLLC preemption (UE 0 is the URLLC bearer by convention): if an
    // in-flight eMBB TB holds an air window the URLLC data can still make —
    // and it beats the scheduler's natural assignment — puncture it. The
    // victim's transmission resolves as a deterministic loss and re-enters
    // HARQ (see transmit_dl); the URLLC TB takes the stolen window.
    if (preemption_on() && ue.index == 0) {
      // Stealable: any staged window that has not started transmitting by
      // the time the URLLC data is ready. (Staging happens radio_lead ahead
      // of the air window, so `ready + total_lead` would always overshoot
      // every registered entry — the preemption gain *is* skipping that
      // staging lead via the puncturing indication.)
      const Nanos natural = plan ? plan->tx_start : Nanos::max();
      const auto victim = ledger.puncture_earliest(0, ready, natural);
      if (victim) {
        const DlAssignment a{ue.id, victim->tx_start, victim->tx_end, tb, HarqId{0}};
        tracer.span_to(ue.dl_trace, "URLLC preemption: stolen DL window",
                       LatencyCategory::Protocol, sim.now());
        const Nanos pull_time = std::max(sim.now(), a.tx_start - sched.params().radio_lead);
        sim.schedule_at(pull_time, [this, &ue, a] { serve_dl(ue, a, 1, /*stolen=*/true); });
        return;
      }
    }
    if (!plan) {
      // DL twin of the stranded-UL fix: no assignment inside the planner's
      // horizon (a DL-starved pattern). Re-arm one slot later; past the cap,
      // account the head-of-line SDU as stranded and stop re-arming (the
      // bytes stay in the RLC queue for a later explicit service call).
      if (stranded_retries >= kStrandedRetryCap) {
        drop_stranded(ue.dl_trace);
        return;
      }
      sim.schedule_at(sim.now() + slot_dur, [this, &ue, stranded_retries] {
        schedule_dl_service(ue, sim.now(), stranded_retries + 1);
      });
      return;
    }
    const DlAssignment a = *plan;
    const Nanos pull_time = std::max(sim.now(), a.tx_start - sched.params().radio_lead);
    sim.schedule_at(pull_time, [this, &ue, a] { serve_dl(ue, a, 1); });
  }

  void serve_dl(UeCtx& ue, const DlAssignment& original, int attempt, bool stolen = false) {
    DlAssignment a = original;
    a.tb_bytes = std::min(a.tb_bytes, window_capacity_bytes(a));
    const std::size_t chain = static_cast<std::size_t>(ue.index);
    auto pulled = gnb.downlink(chain).rlc_tx.pull(a.tb_bytes - kMacSubheaderBytes - 1);
    if (!pulled) return;

    // Table 2's RLC-q: how long the SDU waited in the RLC queue for the
    // per-slot scheduler to serve it.
    const Nanos q_wait = sim.now() - pulled->sdu_enqueued_at;
    rlc_q_stats_us.add(q_wait.us());
    if (m.rlc_q != nullptr) m.rlc_q->record(q_wait);
    tracer.span_to(ue.dl_trace, "RLC queue wait (slot scheduler)", LatencyCategory::Protocol,
                   sim.now());

    MacSubPdus sub;
    sub.push_back(MacSubPdu{Lcid::Drb1, std::move(pulled->pdu)});
    ByteBuffer tb = build_mac_pdu(sub, a.tb_bytes);

    // Stage the transmission in the preemption ledger: from here until the
    // air window completes, a URLLC arrival may steal it.
    const std::uint64_t token =
        preemption_on() ? ledger.register_tx(ue.index, a.tx_start, a.tx_end) : 0;

    // If segmentation left data behind, plan the remainder immediately.
    if (gnb.downlink(chain).rlc_tx.has_data()) schedule_dl_service(ue, sim.now());

    // PHY encode + radio staging against the air deadline (§4's margin).
    // Only the stochastic draw feeds the Table 2 PHY statistics; the
    // size-dependent encode cost is the deterministic pipeline part.
    const Nanos phy_draw = gnb.compute.proc.sample(Layer::PHY);
    gnb_layer_stats[static_cast<std::size_t>(Layer::PHY)].add(phy_draw.us());
    if (m.gnb_layer[static_cast<std::size_t>(Layer::PHY)] != nullptr) {
      m.gnb_layer[static_cast<std::size_t>(Layer::PHY)]->record(phy_draw);
    }
    const Nanos encode =
        gnb.compute.phy.encode_time(static_cast<int>(a.tb_bytes * 8)) + phy_draw;
    tracer.span_for(ue.dl_trace, "gNB PHY encode", LatencyCategory::Processing, encode);
    sim.schedule_after(encode, [this, &ue, a, attempt, token, stolen,
                                tb = std::move(tb)]() mutable {
      // A stolen (punctured) window skips the radio staging pipeline: the
      // victim's sample buffer already sits at the radio head on time, and
      // the puncture overwrites its resource elements in place at line rate
      // (the TS 38.214 §5.1.4 preemption-indication mechanism). Only the
      // PHY encode must still beat the air deadline.
      TxPreparation prep{};
      if (stolen) {
        prep.ready_at = sim.now();
        prep.on_time = sim.now() <= a.tx_start;
        if (prep.on_time) {
          tracer.span_to(ue.dl_trace, "PHY puncture overwrite (in place)",
                         LatencyCategory::Radio, sim.now());
        }
      } else {
        const auto n_samples = samples_of(gnb.compute.radio, a.tx_end - a.tx_start);
        prep = gnb.compute.radio.prepare_tx(sim.now(), n_samples, a.tx_start);
        // A bus stall extends the sample transfer: it erodes the §4 margin
        // and can push the buffer past the air deadline.
        prep.ready_at += fault_bus_stall(ue.dl_trace, /*trace_span=*/false);
        prep.on_time = prep.ready_at <= a.tx_start;
      }
      if (!prep.on_time) {
        // Samples missed the slot: corrupted signal (§4). Count it and treat
        // as a lost transmission — retransmit if budget remains.
        ++owner.radio_deadline_misses_;
        if (m.radio_miss != nullptr) m.radio_miss->inc();
        const bool was_punctured = token != 0 && ledger.consume(token);
        if (attempt < cfg.harq_max_tx) {
          if (was_punctured) count_punctured_retx();
          requeue_dl_tb(ue, std::move(tb), prep.ready_at, attempt + 1);
        } else {
          drop_tb_harq(ue.dl_trace);  // budget exhausted on deadline misses
        }
        return;
      }
      tracer.span_to(ue.dl_trace, "gNB radio TX chain", LatencyCategory::Radio,
                     std::min(prep.ready_at, a.tx_start));
      tracer.span_to(ue.dl_trace, "wait for DL slot", LatencyCategory::Protocol, a.tx_start);
      transmit_dl(ue, a, std::move(tb), attempt, token);
    });
  }

  /// Re-plan a DL transport block whose slot was missed or lost.
  void requeue_dl_tb(UeCtx& ue, ByteBuffer tb, Nanos ready, int attempt,
                     int stranded_retries = 0) {
    const std::size_t bytes = tb.size();
    const auto plan = sched.plan_dl(ue.id, ready, bytes);
    if (!plan) {
      // No assignment inside the planner's horizon: re-arm, then drop and
      // account past the cap (previously the TB vanished uncounted).
      if (stranded_retries >= kStrandedRetryCap) {
        drop_stranded(ue.dl_trace);
        return;
      }
      sim.schedule_at(sim.now() + slot_dur,
                      [this, &ue, tb = std::move(tb), attempt, stranded_retries]() mutable {
                        requeue_dl_tb(ue, std::move(tb), sim.now(), attempt,
                                      stranded_retries + 1);
                      });
      return;
    }
    const DlAssignment a = *plan;
    const Nanos pull_time = std::max(sim.now(), a.tx_start - sched.params().radio_lead);
    sim.schedule_at(pull_time, [this, &ue, a, attempt, tb = std::move(tb)]() mutable {
      tracer.span_to(ue.dl_trace, "wait for re-planned DL slot", LatencyCategory::Protocol,
                     sim.now());
      const std::uint64_t token =
          preemption_on() ? ledger.register_tx(ue.index, a.tx_start, a.tx_end) : 0;
      const Nanos encode = gnb.compute.phy.encode_time(static_cast<int>(a.tb_bytes * 8));
      tracer.span_for(ue.dl_trace, "gNB PHY encode", LatencyCategory::Processing, encode);
      sim.schedule_after(encode, [this, &ue, a, attempt, token, tb = std::move(tb)]() mutable {
        const auto n_samples = samples_of(gnb.compute.radio, a.tx_end - a.tx_start);
        TxPreparation prep = gnb.compute.radio.prepare_tx(sim.now(), n_samples, a.tx_start);
        prep.ready_at += fault_bus_stall(ue.dl_trace, /*trace_span=*/false);
        prep.on_time = prep.ready_at <= a.tx_start;
        if (!prep.on_time) {
          ++owner.radio_deadline_misses_;
          if (m.radio_miss != nullptr) m.radio_miss->inc();
          const bool was_punctured = token != 0 && ledger.consume(token);
          if (attempt < cfg.harq_max_tx) {
            if (was_punctured) count_punctured_retx();
            requeue_dl_tb(ue, std::move(tb), prep.ready_at, attempt + 1);
          } else {
            drop_tb_harq(ue.dl_trace);
          }
          return;
        }
        tracer.span_to(ue.dl_trace, "gNB radio TX chain", LatencyCategory::Radio,
                       std::min(prep.ready_at, a.tx_start));
        tracer.span_to(ue.dl_trace, "wait for DL slot", LatencyCategory::Protocol, a.tx_start);
        transmit_dl(ue, a, std::move(tb), attempt, token);
      });
    });
  }

  void transmit_dl(UeCtx& ue, const DlAssignment& assigned, ByteBuffer tb, int attempt,
                   std::uint64_t token = 0) {
    // NR-U: the gNB clears CAT4 before the burst; the whole assignment
    // window shifts by the deferral (the caller's cursor already sits at
    // the nominal tx_start, so the deferral span tiles exactly).
    DlAssignment a = assigned;
    LbtGate::Access access{};
    if (lbt) {
      access = lbt_clear(ue.dl_trace, a.tx_start, a.tx_end - a.tx_start);
      a.tx_start += access.deferral;
      a.tx_end += access.deferral;
    }
    bool lost = channel_lost();
    if (!lost && access.collided) lost = true;
    if (lbt) lbt->on_harq_feedback(lost);
    if (lost) {
      if (attempt < cfg.harq_max_tx) {
        tracer.span_to(ue.dl_trace, "DL data over the air (lost)", LatencyCategory::Protocol,
                       a.tx_end);
        tracer.span_to(ue.dl_trace, "HARQ feedback wait", LatencyCategory::Protocol,
                       a.tx_end + cfg.harq_feedback_delay);
        sim.schedule_at(a.tx_end + cfg.harq_feedback_delay,
                        [this, &ue, tb = std::move(tb), attempt, token]() mutable {
                          // Lost *and* punctured resolves as one re-entry.
                          if (token != 0 && ledger.consume(token)) count_punctured_retx();
                          requeue_dl_tb(ue, std::move(tb), sim.now(), attempt + 1);
                        });
      } else {
        if (token != 0) (void)ledger.consume(token);
        drop_tb_harq(ue.dl_trace);  // budget exhausted
      }
      return;
    }
    tracer.span_to(ue.dl_trace, "DL data over the air", LatencyCategory::Protocol, a.tx_end);
    sim.schedule_at(a.tx_end, [this, &ue, a, tb = std::move(tb), attempt, token]() mutable {
      if (token != 0 && ledger.consume(token)) {
        // A URLLC arrival stole this TB's air window: the transmission
        // behaves exactly like a lost one and re-enters HARQ.
        if (attempt < cfg.harq_max_tx) {
          count_punctured_retx();
          tracer.span_to(ue.dl_trace, "DL TB punctured by URLLC", LatencyCategory::Protocol,
                         a.tx_end);
          tracer.span_to(ue.dl_trace, "HARQ feedback wait", LatencyCategory::Protocol,
                         a.tx_end + cfg.harq_feedback_delay);
          sim.schedule_at(a.tx_end + cfg.harq_feedback_delay,
                          [this, &ue, tb = std::move(tb), attempt]() mutable {
                            requeue_dl_tb(ue, std::move(tb), sim.now(), attempt + 1);
                          });
        } else {
          drop_tb_harq(ue.dl_trace);  // punctured with no budget left
        }
        return;
      }
      const Nanos rx = ue.stack.compute.radio.rx_delivery_latency(
          samples_of(ue.stack.compute.radio, a.tx_end - a.tx_start));
      tracer.span_for(ue.dl_trace, "UE radio RX chain", LatencyCategory::Radio, rx);
      sim.schedule_after(rx + fault_bus_stall(ue.dl_trace, /*trace_span=*/true),
                         [this, &ue, tb = std::move(tb), attempt]() mutable {
                           ue_rx_dl(ue, std::move(tb), attempt);
                         });
    });
  }

  void ue_rx_dl(UeCtx& ue, ByteBuffer tb, int attempt) {
    ue_traverse(ue, {Layer::PHY, Layer::MAC}, ue.dl_trace,
                [this, &ue, tb = std::move(tb), attempt](Nanos) mutable {
      auto subpdus = parse_mac_pdu(std::move(tb));
      if (!subpdus) return;
      for (MacSubPdu& sp : *subpdus) {
        if (sp.lcid != Lcid::Drb1) continue;
        ue.stack.downlink().rlc_rx.receive(
            std::move(sp.payload), [this, &ue, attempt](ByteBuffer&& sdu, const PacketMeta&) {
              ue_traverse(ue, {Layer::RLC, Layer::PDCP, Layer::SDAP, Layer::APP}, ue.dl_trace,
                          [this, &ue, sdu = std::move(sdu), attempt](Nanos) mutable {
                            const auto deliver =
                                [this, &ue, attempt](ByteBuffer&& plain, const PacketMeta&) {
                                  (void)ue.stack.compute.sdap.decapsulate(plain);
                                  const int seq = read_seq(plain);
                                  if (ue.dl_trace == seq) ue.dl_trace = -1;
                                  finalize(seq, attempt);
                                };
                            if (!ue.stack.downlink().pdcp_rx.receive(std::move(sdu), deliver)) {
                              ++pdcp_discards;
                            }
                            arm_pdcp_reordering(ue.stack.downlink().pdcp_rx,
                                                ue.dl_reorder_armed, deliver);
                          });
            });
      }
    });
  }

  // =========================================================================

  void finalize(int seq, int attempt) {
    if (seq < 0 || static_cast<std::size_t>(seq) >= owner.records_.size()) return;
    PacketRecord& r = owner.records_[static_cast<std::size_t>(seq)];
    if (r.ok) return;
    r.delivered = sim.now();
    r.ok = true;
    r.harq_transmissions = attempt;
    ++packets_delivered;
    tracer.close(seq, sim.now());
    if (m.delivered != nullptr) {
      m.delivered->inc();
      if (attempt > 1) m.harq_retx->inc(static_cast<std::uint64_t>(attempt - 1));
      (r.dir == Direction::Uplink ? m.ul_latency : m.dl_latency)->record(r.latency());
    }
  }
};

// ===========================================================================

E2eSystem::E2eSystem(StackConfig cfg) {
  if (!cfg.duplex) throw std::invalid_argument{"E2eSystem: duplex config required"};
  impl_ = std::make_unique<Impl>(std::move(cfg), *this);
}

E2eSystem::~E2eSystem() = default;

Simulator& E2eSystem::simulator() { return impl_->sim; }
const Simulator& E2eSystem::simulator() const { return impl_->sim; }

Tracer& E2eSystem::tracer() { return impl_->tracer; }
const Tracer& E2eSystem::tracer() const { return impl_->tracer; }
MetricsRegistry& E2eSystem::metrics() { return impl_->metrics; }
const MetricsRegistry& E2eSystem::metrics() const { return impl_->metrics; }

void E2eSystem::send_uplink_at(Nanos at, int ue) {
  if (ue < 0 || static_cast<std::size_t>(ue) >= impl_->ues.size())
    throw std::out_of_range{"E2eSystem: UE index out of range"};
  PacketRecord r;
  r.seq = static_cast<int>(records_.size());
  r.ue = ue;
  r.dir = Direction::Uplink;
  r.created = at;
  records_.push_back(r);
  const std::size_t idx = records_.size() - 1;
  impl_->sim.schedule_at(at, [this, idx] { impl_->start_uplink(idx); });
}

void E2eSystem::send_downlink_at(Nanos at, int ue) {
  if (ue < 0 || static_cast<std::size_t>(ue) >= impl_->ues.size())
    throw std::out_of_range{"E2eSystem: UE index out of range"};
  PacketRecord r;
  r.seq = static_cast<int>(records_.size());
  r.ue = ue;
  r.dir = Direction::Downlink;
  r.created = at;
  records_.push_back(r);
  const std::size_t idx = records_.size() - 1;
  impl_->sim.schedule_at(at, [this, idx] { impl_->start_downlink(idx); });
}

void E2eSystem::run_until(Nanos until) {
  impl_->sim.run_until(until);
  // Slot barrier: the window's scratch is dead, recycle it in O(1).
  impl_->arena.epoch_reset();
}

Arena& E2eSystem::slot_arena() { return impl_->arena; }

std::uint64_t E2eSystem::packets_started() const { return impl_->packets_started; }
std::uint64_t E2eSystem::packets_delivered() const { return impl_->packets_delivered; }

std::uint64_t E2eSystem::harq_dropped_tbs() const { return impl_->harq_dropped; }
std::uint64_t E2eSystem::stranded_drops() const { return impl_->stranded_drops; }
std::uint64_t E2eSystem::pdcp_discards() const { return impl_->pdcp_discards; }
std::uint64_t E2eSystem::punctured_retx() const { return impl_->punctured_retx; }
std::uint64_t E2eSystem::crosslink_ul_losses() const { return impl_->xlink_losses; }

const DuplexConfig& E2eSystem::effective_duplex() const { return *impl_->cfg.duplex; }

std::uint64_t E2eSystem::dynamic_upgraded_slots() const {
  return impl_->policy ? impl_->policy->upgraded_slots() : 0;
}

double E2eSystem::dl_upgrade_activity() const { return impl_->dl_upgrade_activity; }

void E2eSystem::set_crosslink_dl_activity(double aggregate_activity) {
  impl_->xlink_activity = aggregate_activity;
}

LbtGate::Stats E2eSystem::lbt_stats() const {
  return impl_->lbt ? impl_->lbt->stats() : LbtGate::Stats{};
}

Nanos E2eSystem::wifi_busy_until(Nanos horizon) {
  return impl_->lbt ? impl_->lbt->wifi_busy_until(horizon) : Nanos{};
}

E2eSystem::MacBacklog E2eSystem::mac_backlog() const {
  MacBacklog b;
  b.sr_pending = UeMacPool::count_set(impl_->mac_pool.sr_pending_row());
  b.cg_armed = UeMacPool::count_set(impl_->mac_pool.cg_scheduled_row());
  impl_->mac_pool.for_each_retx([&](std::size_t, std::uint32_t depth) {
    ++b.retx_ues;
    b.retx_tbs += depth;
  });
  return b;
}
FaultInjector::Counters E2eSystem::fault_counters() const { return impl_->faults.counters(); }

void E2eSystem::set_external_load_ues(double extra_ues) {
  impl_->gnb.compute.proc.set_scale(
      1.0 + impl_->cfg.gnb_load_factor_per_ue *
                (static_cast<double>(impl_->ues.size() - 1) + extra_ues));
}

SampleSet E2eSystem::latency_samples_us(Direction dir) const {
  SampleSet s;
  for (const PacketRecord& r : records_) {
    if (r.dir == dir && r.ok) s.add(r.latency().us());
  }
  return s;
}

RunningStats E2eSystem::gnb_layer_stats_us(Layer layer) const {
  return impl_->gnb_layer_stats[static_cast<std::size_t>(layer)];
}

RunningStats E2eSystem::rlc_queue_stats_us() const { return impl_->rlc_q_stats_us; }

double E2eSystem::reliability_at(Direction dir, Nanos deadline) const {
  std::size_t total = 0;
  std::size_t within = 0;
  for (const PacketRecord& r : records_) {
    if (r.dir != dir) continue;
    ++total;
    if (r.ok && r.latency() <= deadline) ++within;
  }
  return total == 0 ? 0.0 : static_cast<double>(within) / static_cast<double>(total);
}

}  // namespace u5g
