#pragma once
// NR-U Listen-Before-Talk channel access (the ROADMAP's nru_lbt port).
//
// On unlicensed spectrum the gNB does not own the slot grid: every data
// transmission must first win a CAT4 clear-channel assessment (TS 37.213
// §4.1/§4.2 shape) — an initial defer period of idle channel, then a random
// backoff counter drawn uniformly from [0, CW] that counts down one
// energy-detect slot at a time and FREEZES whenever the channel is sensed
// busy, re-deferring before the countdown resumes. The contention window
// doubles when the HARQ NACK ratio of the reference window crosses a
// threshold (collisions look like NACK bursts) and resets to CW_min
// otherwise; energy detection gates what "busy" means — an interfering
// burst below the ED threshold is invisible to the sensor and can collide
// with the transmission instead (the hidden-interferer loss).
//
// Contention comes from a deterministic modeled Wi-Fi load process: a
// renewal sequence of busy/idle intervals with exponential durations, each
// busy interval carrying an energy level drawn uniformly in
// [wifi_energy_min_dbm, wifi_energy_max_dbm]. The process is generated
// lazily and pruned behind the (monotone) simulation watermark, so memory
// stays bounded over long horizons.
//
// Determinism hygiene (same contract as src/fault): the gate owns dedicated
// SplitMix64-salted streams forked from (seed ^ salt) — never the main
// simulation stream — and an E2eSystem with `LbtConfig::enabled == false`
// never constructs or consults a gate at all, so disabled runs stay bitwise
// identical to pre-LBT builds. Every LbtConfig field participates in
// `StackConfig::append_canonical_words`, so the feasibility cache can never
// serve a licensed-band verdict for an NR-U query.
//
// Short control signalling (SR, PDCCH grants, HARQ feedback) is exempt from
// LBT in this model, mirroring the ETSI short-control-signalling allowance;
// only data transport blocks pay the deferral.

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace u5g {

/// Channel-access knobs, carried inside StackConfig. Defaults model the
/// highest-priority LBT class (URLLC-ish: smallest defer and CW bounds);
/// `enabled == false` is licensed spectrum — no gate exists at all.
struct LbtConfig {
  bool enabled = false;

  // -- CAT4 access engine ----------------------------------------------------
  int cw_min = 3;            ///< initial / reset contention window (ED slots)
  int cw_max = 7;            ///< doubling cap (priority class 1: 7)
  Nanos defer{25'000};       ///< initial defer: 16 µs + m_p x 9 µs (m_p = 1)
  Nanos ed_slot{9'000};      ///< one energy-detect observation slot

  // -- Energy-detect gating --------------------------------------------------
  double ed_threshold_dbm = -72.0;   ///< busy only if interferer energy >= this
  double wifi_energy_min_dbm = -75.0;
  double wifi_energy_max_dbm = -45.0;
  /// A transmission overlapping a *hidden* (below-ED) busy interval is lost
  /// with this probability — the collision the sensor could not prevent.
  double hidden_collision_loss = 1.0;

  // -- CWS update from HARQ feedback -----------------------------------------
  double nack_ratio_threshold = 0.8;  ///< double CW when window ratio >= this
  int min_feedback = 4;               ///< observations before the ratio counts

  // -- Modeled Wi-Fi load (renewal process) ----------------------------------
  Nanos wifi_busy_mean{};            ///< 0 = clear channel (NR-U alone)
  Nanos wifi_idle_mean{1'000'000};   ///< mean gap between busy intervals

  // -- Gap mode --------------------------------------------------------------
  /// Enforced idle gap after each NR-U burst before the next access attempt
  /// may start (the coexistence-friendly duty-cycle axis of the bench).
  Nanos tx_gap{};

  /// Long-run Wi-Fi channel occupancy of the load process, busy/(busy+idle).
  [[nodiscard]] double wifi_duty() const {
    const double b = static_cast<double>(wifi_busy_mean.count());
    const double i = static_cast<double>(wifi_idle_mean.count());
    return b + i <= 0.0 ? 0.0 : b / (b + i);
  }
};

/// One cell's channel-access gate: the CAT4 state machine plus the Wi-Fi
/// occupancy process it senses. The e2e system consults it once per data
/// transport block (UL and DL share the cell's channel), at the block's
/// nominal air-window start; calls must be made in non-decreasing watermark
/// (simulation-time) order, which a discrete-event drain guarantees.
class LbtGate {
 public:
  LbtGate(const LbtConfig& cfg, std::uint64_t seed);

  /// Result of one channel-access attempt.
  struct Access {
    Nanos start{};     ///< granted burst start (>= wanted)
    Nanos deferral{};  ///< start - wanted: the fourth latency category
    bool collided = false;  ///< burst overlapped hidden interference and lost
  };

  /// Run one CAT4 attempt for a burst of `duration` nominally starting at
  /// `wanted`. `watermark` is the current simulation time (monotone across
  /// calls; used to prune exhausted Wi-Fi intervals). Registers the granted
  /// burst's airtime/overlap and arms the post-burst gap.
  Access acquire(Nanos wanted, Nanos duration, Nanos watermark);

  /// HARQ outcome of a transmission that went through this gate; feeds the
  /// contention-window update evaluated at the next acquire().
  void on_harq_feedback(bool nack);

  /// Current contention window (ED slots).
  [[nodiscard]] int cw() const { return cw_; }

  struct Stats {
    std::uint64_t attempts = 0;        ///< acquire() calls
    std::uint64_t deferred = 0;        ///< attempts with non-zero deferral
    Nanos deferral_total{};            ///< summed channel-access time
    std::uint64_t cw_doublings = 0;
    std::uint64_t cw_resets = 0;       ///< evaluations that returned to cw_min
    std::uint64_t hidden_collisions = 0;
    Nanos nru_airtime{};               ///< granted burst time on the channel
    Nanos wifi_overlap{};              ///< burst time overlapping Wi-Fi busy time
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Actual Wi-Fi busy time (sensed or hidden) in [0, horizon) — the
  /// coexistence bench's airtime denominator. Extends the modeled process
  /// forward as needed; intended for post-run accounting.
  [[nodiscard]] Nanos wifi_busy_until(Nanos horizon);

 private:
  struct Interval {
    Nanos start{};
    Nanos end{};
    bool sensed = false;  ///< energy >= ED threshold: visible to CCA
  };

  void extend_until(Nanos t);
  void prune_before(Nanos t);
  /// First *sensed* interval overlapping [a, b), if any; returns its end.
  bool sensed_busy_in(Nanos a, Nanos b, Nanos& busy_end);
  /// Busy time (sensed or hidden) overlapping [a, b), generating as needed.
  Nanos busy_overlap(Nanos a, Nanos b);
  void update_cw();

  LbtConfig cfg_;
  Rng backoff_rng_;    ///< backoff draws + hidden-collision coin
  Rng wifi_rng_;       ///< Wi-Fi interval durations + energies
  std::deque<Interval> wifi_;
  Nanos wifi_frontier_{};     ///< process generated up to here
  Nanos wifi_busy_gen_{};     ///< total busy time of all generated intervals
  Nanos next_access_{};       ///< burst serialisation + tx_gap enforcement
  int cw_ = 0;
  std::uint64_t fb_nacks_ = 0;
  std::uint64_t fb_total_ = 0;
  Stats stats_;
};

}  // namespace u5g
