// Ablation A3 (§4/§6): scheduler lead (radio allowance + margin) vs
// reliability. "Practical implementations require the scheduler to include a
// margin to ensure the radio is ready on time, further increasing latency" —
// and §4: without it, "the radio [is] not ready for transmission, leading to
// a corrupted signal."
//
// E2E sweep of the staging lead on the testbed configuration: a short lead
// minimises queueing but the USB bus + OS spikes miss slots (corrupted ->
// HARQ retransmission -> latency tail / loss); a generous lead wastes
// latency on every packet but is clean. The six lead points run concurrently
// on the Monte-Carlo runner's pool with the legacy per-point seeds.

#include <cstdio>

#include "common/cli.hpp"
#include "core/e2e_system.hpp"
#include "core/reliability.hpp"
#include "sim/runner.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

struct Outcome {
  double mean_ms;
  double p999_ms;
  std::uint64_t misses;
  double reliability_3ms;
};

Outcome run(Nanos lead, int packets, std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_based(seed);
  cfg.sched.radio_lead = lead;
  E2eSystem sys(std::move(cfg));
  Rng rng(seed * 13 + 5);
  const Nanos period = 2_ms;
  for (int i = 0; i < packets; ++i) {
    sys.send_downlink_at(period * (2 * i) +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
  }
  sys.run_until(period * (2 * packets + 40));
  auto lat = sys.latency_samples_us(Direction::Downlink);
  const auto rel = evaluate_reliability(lat, static_cast<std::size_t>(packets), 3_ms);
  return {lat.mean() / 1e3, lat.quantile(0.999) / 1e3, sys.radio_deadline_misses(),
          rel.fraction_within};
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 1500;
  defaults.seed = 100;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== Ablation A3: scheduler lead/margin vs DL reliability (testbed, USB2 RH) ==\n\n");
  std::printf("   %9s | %9s %9s %8s %16s\n", "lead[us]", "mean[ms]", "p99.9[ms]", "misses",
              "P(lat<=3ms)");

  const Nanos leads[] = {Nanos{350'000}, Nanos{400'000}, Nanos{450'000},
                         Nanos{500'000}, Nanos{700'000}, Nanos{1'000'000}};
  const auto outcomes = run_replications(
      static_cast<int>(std::size(leads)), opt.seed,
      [&](int i, std::uint64_t) {
        return run(leads[static_cast<std::size_t>(i)], opt.packets,
                   opt.seed + static_cast<std::uint64_t>(i));
      },
      {opt.threads});

  std::uint64_t misses_short = 0;
  std::uint64_t misses_long = 0;
  double mean_sweet = 0.0;  // the well-tuned middle (one-slot lead)
  double mean_long = 0.0;
  for (std::size_t i = 0; i < std::size(leads); ++i) {
    const Outcome& o = outcomes[i];
    std::printf("   %9.0f | %9.3f %9.3f %8llu %15.4f%%\n", leads[i].us(), o.mean_ms, o.p999_ms,
                static_cast<unsigned long long>(o.misses), o.reliability_3ms * 100.0);
    if (i == 0) misses_short = o.misses;
    if (leads[i] == Nanos{500'000}) mean_sweet = o.mean_ms;
    if (i + 1 == std::size(leads)) { misses_long = o.misses; mean_long = o.mean_ms; }
  }

  // The §4/§6 trade-off: too little lead corrupts slots (misses, retx tail);
  // extra lead beyond what the radio needs just buys latency on every packet.
  // Thresholds scale with the packet count so quick smoke configurations
  // (--packets 200) exercise the same check as the full run.
  const bool tradeoff = misses_short > static_cast<std::uint64_t>(opt.packets / 15) &&
                        misses_long == 0 && mean_long > mean_sweet;
  std::printf("\nshort lead -> corrupted slots (retx tail); oversized lead -> higher base "
              "latency than the tuned one-slot lead: %s\n",
              tradeoff ? "CONFIRMED" : "NOT OBSERVED");
  return tradeoff ? 0 : 1;
}
