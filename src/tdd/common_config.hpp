#pragma once
// TDD Common Configuration (TS 38.331 tdd-UL-DL-ConfigurationCommon; paper
// §2, Fig 1a).
//
// A period holds `dl_slots` full downlink slots, then an optional mixed slot
// (`dl_symbols` downlink symbols, guard, `ul_symbols` uplink symbols), then
// `ul_slots` full uplink slots. The standard restricts the period to
// {0.5, 0.625, 1, 1.25, 2, 2.5, 5, 10} ms, and the period must contain an
// integer number of slots at the chosen numerology. One or two consecutive
// patterns form the full configuration.

#include <array>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tdd/duplex_config.hpp"

namespace u5g {

/// One TDD pattern (one or two make a Common Configuration).
struct TddPattern {
  Nanos periodicity{};   ///< must be in the standard set and integer slots
  int dl_slots = 0;      ///< full DL slots at the start of the period
  int dl_symbols = 0;    ///< DL symbols at the start of the slot after them
  int ul_symbols = 0;    ///< UL symbols at the end of the slot before UL slots
  int ul_slots = 0;      ///< full UL slots at the end of the period

  [[nodiscard]] int slots(Numerology num) const {
    return static_cast<int>(periodicity / num.slot_duration());
  }
};

/// The standard's permissible pattern periodicities (paper §2).
[[nodiscard]] std::span<const Nanos> standard_tdd_periods();

/// Is `p` one of the standard periodicities and an integer slot count at µ?
[[nodiscard]] bool is_valid_tdd_period(Nanos p, Numerology num);

/// TDD Common Configuration: numerology + one or two patterns.
///
/// Throws std::invalid_argument on any standards violation: non-standard
/// periodicity, pattern overflowing its period, mixed-slot symbol overflow.
class TddCommonConfig final : public DuplexConfig {
 public:
  TddCommonConfig(Numerology num, TddPattern p1, std::optional<TddPattern> p2 = std::nullopt);

  [[nodiscard]] bool dl_capable(SlotIndex slot, int sym) const override;
  [[nodiscard]] bool ul_capable(SlotIndex slot, int sym) const override;
  [[nodiscard]] int period_slots() const override { return total_slots_; }
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const TddPattern& pattern1() const { return p1_; }
  [[nodiscard]] const std::optional<TddPattern>& pattern2() const { return p2_; }

  /// Guard symbols in the mixed slot of pattern 1 (14 - dl_symbols - ul_symbols),
  /// or 0 when pattern 1 has no mixed slot.
  [[nodiscard]] int guard_symbols() const;

  // -- The paper's §5 minimal configurations (0.5 ms period) ---------------
  // All take the numerology (µ2 → 0.25 ms slots → 2-slot period, the only
  // FR1 choice that can meet URLLC). `dl_symbols`/`ul_symbols` of the mixed
  // slot default to a 4 DL / 2 guard / 8 UL split.

  static TddCommonConfig du(Numerology num = kMu2);  ///< [D][U]
  static TddCommonConfig dm(Numerology num = kMu2);  ///< [D][M] — the only viable one
  static TddCommonConfig mu(Numerology num = kMu2);  ///< [M][U]

  /// The §7 testbed configuration: DDDU at the given numerology
  /// (µ1 → 0.5 ms slots → 2 ms period).
  static TddCommonConfig dddu(Numerology num = kMu1);

 private:
  /// Per-symbol direction of one pattern-local slot.
  enum class Dir : std::uint8_t { D, U, Guard };
  [[nodiscard]] Dir dir_in_pattern(const TddPattern& p, int slot_in_pattern, int sym) const;

  /// Table lookup over the period; the opportunity searches call this for
  /// every candidate symbol (millions of times per scale-out run), so the
  /// pattern arithmetic runs once per (period slot, symbol) at construction
  /// and never again.
  [[nodiscard]] Dir dir(SlotIndex slot, int sym) const {
    std::int64_t in_period = slot % total_slots_;
    if (in_period < 0) in_period += total_slots_;
    return dir_table_[static_cast<std::size_t>(in_period) * kSymbolsPerSlot +
                      static_cast<std::size_t>(sym)];
  }

  static void validate(const TddPattern& p, Numerology num);

  TddPattern p1_;
  std::optional<TddPattern> p2_;
  int p1_slots_ = 0;
  int total_slots_ = 0;
  std::vector<Dir> dir_table_;  ///< period_slots x 14, filled at construction
  std::string name_;
};

}  // namespace u5g
