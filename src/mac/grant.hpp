#pragma once
// MAC grants and downlink assignments (the DCI payloads of §3's step ③).

#include <cstdint>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "phy/frame_structure.hpp"

namespace u5g {

/// Uplink grant: permission for one UE to transmit `tb_bytes` in the window
/// [tx_start, tx_end) on the air.
struct UlGrant {
  UeId ue{};
  Nanos tx_start{};
  Nanos tx_end{};
  std::size_t tb_bytes = 0;
  HarqId harq{};
  bool configured = false;  ///< true when this is a grant-free occasion

  [[nodiscard]] Nanos duration() const { return tx_end - tx_start; }
};

/// Downlink assignment: the gNB's decision to serve a UE in a DL window.
struct DlAssignment {
  UeId ue{};
  Nanos tx_start{};
  Nanos tx_end{};
  std::size_t tb_bytes = 0;
  HarqId harq{};
};

}  // namespace u5g
