// Reproduces Fig 6: one-way DL and UL latency distributions on the §7
// testbed configuration (n78, 0.5 ms slots, DDDU, USB radio head, software
// gNB, modem-grade UE), for (a) grant-based and (b) grant-free uplink.
// Packets are generated uniformly within the TDD pattern, as in the paper.
//
// Expected shape (paper): DL mass around 1-3 ms in both; grant-based UL
// shifted right of grant-free UL by roughly one TDD period (2 ms), UL tail
// reaching several ms; URLLC requirements clearly not met.
//
// The workload fans `--trials` independent replications (each `--packets /
// --trials` packets, seeds from the SplitMix64 stream rooted at `--seed`)
// across `--threads` workers and merges the per-replication SampleSets in
// replication order, so the merged statistics are identical at any thread
// count. Pass `--out DIR` (or a positional DIR) to additionally dump the
// histogram series as CSV (fig6a.csv, fig6b.csv) for plotting.

#include <cstdio>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "core/e2e_system.hpp"
#include "sim/runner.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

struct RunOutput {
  SampleSet dl;
  SampleSet ul;

  void merge(const RunOutput& o) {
    dl.merge(o.dl);
    ul.merge(o.ul);
  }
};

RunOutput run_one(bool grant_free, int packets, std::uint64_t seed) {
  E2eSystem sys(grant_free ? StackConfig::testbed_grant_free(seed)
                           : StackConfig::testbed_grant_based(seed));
  const Nanos period = 2_ms;  // DDDU at 0.5 ms slots
  Rng rng(seed ^ 0xF16);
  // One UL and one DL packet per pattern, at independent uniform offsets;
  // patterns spaced out so packets do not queue behind each other (the
  // paper's ping workload is sparse).
  for (int i = 0; i < packets; ++i) {
    const Nanos base = period * (2 * i);
    sys.send_uplink_at(base + Nanos{static_cast<std::int64_t>(
                                  rng.uniform() * static_cast<double>(period.count()))});
    sys.send_downlink_at(base + period +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
  }
  sys.run_until(period * (2 * packets + 20));
  return {sys.latency_samples_us(Direction::Downlink), sys.latency_samples_us(Direction::Uplink)};
}

RunOutput run(bool grant_free, const BenchOptions& opt) {
  return merge_replications(run_replications(
      opt.trials, opt.seed + (grant_free ? 1 : 0),
      [&](int i, std::uint64_t seed) {
        return run_one(grant_free, split_evenly(opt.packets, opt.trials, i), seed);
      },
      {opt.threads}));
}

void maybe_write_csv(const std::optional<std::string>& dir, const char* file, SampleSet& dl,
                     SampleSet& ul) {
  if (!dir) return;
  Histogram hd(0.0, 8000.0, 32), hu(0.0, 8000.0, 32);
  for (double x : dl.samples()) hd.add(x);
  for (double x : ul.samples()) hu.add(x);
  CsvWriter csv(*dir + "/" + file, {"bin_start_ms", "dl_probability", "ul_probability"});
  for (std::size_t i = 0; i < hd.bin_count(); ++i) {
    csv.row({hd.bin_lo(i) / 1e3, hd.probability(i), hu.probability(i)});
  }
}

void print_histogram(const char* title, SampleSet& dl, SampleSet& ul) {
  std::printf("-- %s --\n", title);
  std::printf("   delivered: DL %zu, UL %zu\n", dl.count(), ul.count());
  std::printf("   DL: mean %.2f ms  p50 %.2f  p99 %.2f  max %.2f\n", dl.mean() / 1e3,
              dl.quantile(0.5) / 1e3, dl.quantile(0.99) / 1e3, dl.max() / 1e3);
  std::printf("   UL: mean %.2f ms  p50 %.2f  p99 %.2f  max %.2f\n", ul.mean() / 1e3,
              ul.quantile(0.5) / 1e3, ul.quantile(0.99) / 1e3, ul.max() / 1e3);

  Histogram hd(0.0, 8000.0, 32), hu(0.0, 8000.0, 32);
  for (double x : dl.samples()) hd.add(x);
  for (double x : ul.samples()) hu.add(x);
  std::printf("   one-way latency histogram (bin start [ms]; probability):\n");
  std::printf("   %8s %10s %10s\n", "bin[ms]", "DL", "UL");
  for (std::size_t i = 0; i < hd.bin_count(); ++i) {
    if (hd.bin(i) == 0 && hu.bin(i) == 0) continue;
    std::printf("   %8.2f %10.4f %10.4f\n", hd.bin_lo(i) / 1e3, hd.probability(i),
                hu.probability(i));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 2000;
  defaults.trials = 8;
  defaults.seed = 42;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== Fig 6: one-way latency on the testbed configuration (DDDU, 0.5 ms slots) ==\n");
  std::printf("   (%d packets over %d replications, root seed %llu, %d threads)\n\n", opt.packets,
              opt.trials, static_cast<unsigned long long>(opt.seed), resolve_threads(opt.threads));

  auto gb = run(/*grant_free=*/false, opt);
  print_histogram("(a) grant-based UL", gb.dl, gb.ul);
  maybe_write_csv(opt.out_dir, "fig6a.csv", gb.dl, gb.ul);

  auto gf = run(/*grant_free=*/true, opt);
  print_histogram("(b) grant-free UL", gf.dl, gf.ul);
  maybe_write_csv(opt.out_dir, "fig6b.csv", gf.dl, gf.ul);

  const double gap_ms = (gb.ul.mean() - gf.ul.mean()) / 1e3;
  std::printf("grant-based minus grant-free mean UL latency: %.2f ms "
              "(paper: ~ one TDD period = 2 ms, the SR+grant handshake)\n",
              gap_ms);
  const bool shape_ok = gb.ul.mean() > gf.ul.mean() && gap_ms > 0.5 &&
                        gb.dl.count() > 0 && gb.ul.count() > 0;
  std::printf("shape reproduction: %s\n", shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
