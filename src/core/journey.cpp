#include "core/journey.hpp"

namespace u5g {

Nanos PingJourney::category_total(LatencyCategory c) const {
  Nanos t = uplink.category_total(c) + downlink.category_total(c);
  if (c == LatencyCategory::Processing) t += turnaround;
  if (c == LatencyCategory::Protocol) t += core_uplink + core_downlink;
  return t;
}

std::string PingJourney::render() const {
  std::string out;
  out += "ping request (uplink):\n" + uplink.render();
  out += "core network uplink (gNB -> UPF -> host): " + to_string(core_uplink) + "\n";
  out += "host turnaround: " + to_string(turnaround) + "\n";
  out += "core network downlink (host -> UPF -> gNB): " + to_string(core_downlink) + "\n";
  out += "ping reply (downlink):\n" + downlink.render();
  out += "round trip: " + to_string(rtt) + "\n";
  return out;
}

PingJourney trace_ping(const DuplexConfig& cfg, Nanos request_time, const JourneyParams& p) {
  PingJourney j;
  j.uplink = trace_transmission(
      cfg, p.grant_free ? AccessMode::GrantFreeUl : AccessMode::GrantBasedUl, request_time, p.ran);

  j.core_uplink = p.backhaul + p.upf_latency;
  j.turnaround = p.server_turnaround;
  j.core_downlink = p.backhaul + p.upf_latency;

  const Nanos reply_at_gnb =
      j.uplink.completion + j.core_uplink + j.turnaround + j.core_downlink;
  j.downlink = trace_transmission(cfg, AccessMode::Downlink, reply_at_gnb, p.ran);
  j.rtt = j.downlink.completion - request_time;
  return j;
}

}  // namespace u5g
