// Extension X5 (§9): predictive configured grants. Static grant-free
// pre-allocation wastes every unused occasion; the predictor allocates one
// just-in-time occasion per expected packet. This bench compares the two on
// a periodic URLLC workload with timing jitter: reserved windows per second,
// wasted fraction, and the latency each packet actually sees. The jitter
// sweep points run concurrently on the Monte-Carlo runner's pool with the
// legacy per-point seeds (900 + jitter in µs).

#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mac/configured_grant.hpp"
#include "mac/predictive_cg.hpp"
#include "sim/runner.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr Nanos kStackLead{60'000};  // APP->MAC traversal before the occasion

struct Workload {
  std::vector<Nanos> arrivals;
};

Workload make_workload(int packets, Nanos period, Nanos jitter_std, std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (int i = 0; i < packets; ++i) {
    const auto jitter =
        static_cast<std::int64_t>(rng.normal(0.0, static_cast<double>(jitter_std.count())));
    w.arrivals.push_back(period * (i + 1) + Nanos{jitter});
  }
  return w;
}

struct Outcome {
  double reserved_per_s;
  double wasted_frac;
  double mean_latency_us;
  double p99_latency_us;
  int fallback_count;  ///< packets that missed their occasion (served late)
};

/// Static blanket pre-allocation: one occasion per slot-grid period.
Outcome run_static(const DuplexConfig& cfg, const Workload& w) {
  const ConfiguredGrant cg{UeId{1},
                           ConfiguredGrantConfig::periodic(cfg.period(), 128, 2)};
  SampleSet lat;
  int used = 0;
  for (const Nanos a : w.arrivals) {
    const auto occ = cg.next_occasion(cfg, a + kStackLead);
    if (!occ) continue;
    lat.add((occ->tx_end - a).us());
    ++used;
  }
  const double horizon_s = static_cast<double>(w.arrivals.back().count()) / 1e9;
  const double reserved = cg.occasions_per_second(cfg);
  return {reserved, 1.0 - used / (reserved * horizon_s), lat.mean(), lat.quantile(0.99), 0};
}

/// Predictive just-in-time allocation with SR-style fallback on a miss.
Outcome run_predictive(const DuplexConfig& cfg, const Workload& w) {
  PredictiveConfiguredGrant pcg{UeId{1}, 2, 128, kStackLead};
  SampleSet lat;
  int planned = 0;
  int used = 0;
  int fallbacks = 0;
  Nanos now = Nanos::zero();
  for (const Nanos a : w.arrivals) {
    const auto occ = pcg.plan_next_occasion(cfg, now);
    pcg.observe_arrival(a);
    const Nanos ready = a + kStackLead;
    if (occ) {
      ++planned;
      if (occ->tx_start >= ready) {
        // The planned occasion serves this packet.
        lat.add((occ->tx_end - a).us());
        ++used;
        now = occ->tx_end;
        continue;
      }
      // Occasion opened before the data was ready: wasted; fall back.
    }
    ++fallbacks;
    const auto fb = next_ul_tx(cfg, ready, 2);
    if (fb) {
      lat.add((fb->end - a).us());
      now = fb->end;
    }
  }
  const double horizon_s = static_cast<double>(w.arrivals.back().count()) / 1e9;
  const double reserved = (planned + fallbacks) / horizon_s;
  const double wasted = planned > 0 ? static_cast<double>(planned - used) / planned : 0.0;
  return {reserved, wasted, lat.mean(), lat.quantile(0.99), fallbacks};
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 4000;
  defaults.seed = 900;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== X5: predictive vs static grant-free allocation (DM, u2) ==\n\n");
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);

  std::printf("periodic workload, 1 ms period; sweep the arrival jitter:\n\n");
  std::printf("   %12s | %20s | %20s | %9s\n", "", "reserved [1/s]", "latency [us]", "");
  std::printf("   %12s | %9s %10s | %9s %10s | %9s\n", "jitter[us]", "static", "predictive",
              "static", "predictive", "fallbacks");

  const Nanos jitters[] = {0_us, 20_us, 50_us, 100_us};
  struct Row {
    Outcome st{};
    Outcome pr{};
  };
  const auto rows = run_replications(
      static_cast<int>(std::size(jitters)), opt.seed,
      [&](int i, std::uint64_t) {
        const Nanos jitter = jitters[static_cast<std::size_t>(i)];
        const Workload w = make_workload(opt.packets, 1_ms, jitter,
                                         opt.seed + static_cast<std::uint64_t>(jitter.us()));
        return Row{run_static(dm, w), run_predictive(dm, w)};
      },
      {opt.threads});

  bool waste_cut = true;
  bool latency_close = true;
  for (std::size_t i = 0; i < std::size(jitters); ++i) {
    const Nanos jitter = jitters[i];
    const auto& [st, pr] = rows[i];
    std::printf("   %12.0f | %9.0f %10.0f | %9.0f %10.0f | %9d\n", jitter.us(),
                st.reserved_per_s, pr.reserved_per_s, st.mean_latency_us, pr.mean_latency_us,
                pr.fallback_count);
    waste_cut = waste_cut && pr.reserved_per_s < st.reserved_per_s * 0.75;
    // Up to moderate jitter the predictor matches static latency; at large
    // jitter the required safety margin buys waste reduction with latency —
    // a real trade-off, reported rather than hidden.
    if (jitter <= 50_us) {
      latency_close = latency_close && pr.mean_latency_us < st.mean_latency_us * 1.25;
    }
  }

  std::printf("\nstatic reserves one occasion per TDD period (%.0f/s) regardless of traffic;\n"
              "the predictor reserves ~the packet rate (1000/s) and holds grant-free-class\n"
              "latency up to ~50 us jitter; beyond that its safety margin trades latency for\n"
              "the waste reduction (blanket pre-allocation is jitter-immune by construction).\n",
              ConfiguredGrant(UeId{1}, ConfiguredGrantConfig::periodic(dm.period(), 128, 2))
                  .occasions_per_second(dm));
  const bool ok = waste_cut && latency_close;
  std::printf("prediction cuts pre-allocation while keeping latency: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
