// §5's closing requirements as a platform scorecard: "To meet the
// requirements for (i) UL and DL MAC scheduling, (ii) UL PHY decoding and
// DL preparation, and (iii) both UL and DL radio latency, it is essential
// to provide a real-world system capable of achieving these benchmarks.
// ASIC-based processing ... can potentially achieve them ... software-based
// processing and radio transmission using SDRs present significant
// challenges."
//
// Three platforms against the paper's viable configuration (DM, µ2):
// the §7 software testbed, a tuned software stack, and the footnote-1 ASIC.

#include <cstdio>

#include "core/budget.hpp"
#include "serve/feasibility_service.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;

namespace {

void show(const DuplexConfig& cfg, AccessMode mode, const Platform& platform) {
  const BudgetReport r = check_platform(cfg, mode, platform);
  std::printf("-- %s | %s --\n", platform.name.c_str(), to_string(mode));
  std::printf("   protocol floor %.3f ms of %.3f ms deadline -> %.3f ms remaining\n",
              r.budget.protocol_floor.ms(), r.budget.deadline.ms(), r.budget.remaining.ms());
  for (const BudgetItem& item : r.items) {
    std::printf("   %-38s %9.1f us vs slot %6.1f us  [%s]\n", item.label.c_str(),
                item.cost.us(), item.threshold.us(), item.within ? "ok" : "OVER");
  }
  std::printf("   projected worst case: %.3f ms -> %s\n\n", r.projected_worst.ms(),
              r.meets_deadline ? "MEETS 0.5 ms" : "VIOLATES 0.5 ms");
}

}  // namespace

int main() {
  std::printf("== §5 platform budget check on TDD-Common(DM) at u2 ==\n\n");
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);

  const Platform platforms[] = {Platform::software_testbed(), Platform::software_tuned(),
                                Platform::hardware_asic()};
  for (const Platform& p : platforms) {
    show(dm, AccessMode::GrantFreeUl, p);
  }

  // The paper's ordering: testbed fails, ASIC passes; the tuned software
  // stack sits between — its mean behaviour is fine (the E2E sim delivers
  // sub-ms p99) but the conservative 3-sigma tail arithmetic still overflows
  // a 0.25 ms slot, which is precisely the paper's §5/§6 reservation about
  // software stacks: "the difficulty of providing hard real-time guarantees".
  const auto testbed = check_platform(dm, AccessMode::GrantFreeUl, Platform::software_testbed());
  const auto tuned = check_platform(dm, AccessMode::GrantFreeUl, Platform::software_tuned());
  const auto asic = check_platform(dm, AccessMode::GrantFreeUl, Platform::hardware_asic());
  const bool ok = !testbed.meets_deadline && asic.meets_deadline &&
                  tuned.projected_worst < testbed.projected_worst;
  std::printf("testbed fails, ASIC passes, tuned software in between: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  std::printf("(the paper: \"achieving URLLC in FR1 is feasible, but necessitates strict\n"
              "hardware and software requirements\")\n");
  // Every check_platform above asked the service for the same (DM, GF)
  // protocol floor; all but the first are warm cache hits.
  const auto stats = FeasibilityService::shared().stats();
  std::printf("service: analytic cache hit rate %.0f%% over %llu queries\n",
              100.0 * stats.analytic_hit_rate(), static_cast<unsigned long long>(stats.queries));
  return ok ? 0 : 1;
}
