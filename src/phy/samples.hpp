#pragma once
// IQ sample accounting: how many baseband samples a slot/symbol occupies at
// a given numerology and bandwidth. Feeds the radio-bus model (Fig 5's
// x-axis is "number of submitted samples").

#include <cstdint>

#include "common/time.hpp"
#include "phy/numerology.hpp"

namespace u5g {

/// Baseband sampling configuration of the SDR front end.
struct SampleRate {
  std::int64_t samples_per_second = 23'040'000;  ///< USRP-style rate for 20 MHz @ 30 kHz SCS
  int bytes_per_sample = 4;                      ///< sc16: 2 × int16 I/Q

  [[nodiscard]] constexpr std::int64_t samples_in(Nanos d) const {
    return d.count() * samples_per_second / 1'000'000'000;
  }
  [[nodiscard]] constexpr Nanos duration_of(std::int64_t n_samples) const {
    return Nanos{n_samples * 1'000'000'000 / samples_per_second};
  }
  [[nodiscard]] constexpr std::int64_t bytes_of(std::int64_t n_samples) const {
    return n_samples * bytes_per_sample;
  }

  /// Samples in one slot of numerology `num`.
  [[nodiscard]] constexpr std::int64_t samples_per_slot(Numerology num) const {
    return samples_in(num.slot_duration());
  }
};

}  // namespace u5g
