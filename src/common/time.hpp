#pragma once
// Strong nanosecond time type used across the simulator.
//
// All protocol timing (slot boundaries, symbol durations, TDD periods) is
// integer nanosecond arithmetic derived from the 5G numerology; floating
// point never defines a boundary, so two modules computing "start of slot n"
// always agree bit-for-bit.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace u5g {

/// A signed duration / point on the simulated clock, in nanoseconds.
///
/// `Nanos` is used both as a duration and as a time point (the simulation
/// epoch is 0). Arithmetic is closed over the type; division by a plain
/// integer scales, division by another `Nanos` yields a dimensionless count.
class Nanos {
 public:
  constexpr Nanos() = default;
  constexpr explicit Nanos(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }

  /// Value in (possibly fractional) microseconds — for reporting only.
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  /// Value in (possibly fractional) milliseconds — for reporting only.
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }

  static constexpr Nanos zero() { return Nanos{0}; }
  static constexpr Nanos max() { return Nanos{std::numeric_limits<std::int64_t>::max()}; }

  friend constexpr Nanos operator+(Nanos a, Nanos b) { return Nanos{a.ns_ + b.ns_}; }
  friend constexpr Nanos operator-(Nanos a, Nanos b) { return Nanos{a.ns_ - b.ns_}; }
  constexpr Nanos operator-() const { return Nanos{-ns_}; }
  friend constexpr Nanos operator*(Nanos a, std::int64_t k) { return Nanos{a.ns_ * k}; }
  friend constexpr Nanos operator*(std::int64_t k, Nanos a) { return Nanos{k * a.ns_}; }
  friend constexpr Nanos operator/(Nanos a, std::int64_t k) { return Nanos{a.ns_ / k}; }
  /// Dimensionless ratio, truncated toward zero.
  friend constexpr std::int64_t operator/(Nanos a, Nanos b) { return a.ns_ / b.ns_; }
  friend constexpr Nanos operator%(Nanos a, Nanos b) { return Nanos{a.ns_ % b.ns_}; }

  constexpr Nanos& operator+=(Nanos o) { ns_ += o.ns_; return *this; }
  constexpr Nanos& operator-=(Nanos o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(Nanos, Nanos) = default;

 private:
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Nanos operator""_ns(unsigned long long v) { return Nanos{static_cast<std::int64_t>(v)}; }
constexpr Nanos operator""_us(unsigned long long v) { return Nanos{static_cast<std::int64_t>(v) * 1'000}; }
constexpr Nanos operator""_ms(unsigned long long v) { return Nanos{static_cast<std::int64_t>(v) * 1'000'000}; }
constexpr Nanos operator""_s(unsigned long long v) { return Nanos{static_cast<std::int64_t>(v) * 1'000'000'000}; }
}  // namespace literals

/// Nanos from a floating-point microsecond count (rounds to nearest ns).
[[nodiscard]] constexpr Nanos from_us(double us) {
  return Nanos{static_cast<std::int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5))};
}
/// Nanos from a floating-point millisecond count (rounds to nearest ns).
[[nodiscard]] constexpr Nanos from_ms(double ms) {
  return Nanos{static_cast<std::int64_t>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5))};
}

/// First multiple of `step` (relative to phase `origin`) at or after `t`.
/// Precondition: step > 0.
[[nodiscard]] constexpr Nanos align_up(Nanos t, Nanos step, Nanos origin = Nanos::zero()) {
  const std::int64_t rel = (t - origin).count();
  const std::int64_t s = step.count();
  std::int64_t k = rel / s;               // truncates toward zero
  if (k * s < rel) ++k;                   // bump to ceiling when not exact
  return origin + Nanos{k * s};
}

/// Largest multiple of `step` (relative to phase `origin`) at or before `t`.
[[nodiscard]] constexpr Nanos align_down(Nanos t, Nanos step, Nanos origin = Nanos::zero()) {
  const std::int64_t rel = (t - origin).count();
  const std::int64_t s = step.count();
  std::int64_t k = rel / s;
  if (k * s > rel) --k;                   // floor for negative rel
  return origin + Nanos{k * s};
}

/// Human-readable rendering: picks ns / µs / ms / s scale.
[[nodiscard]] std::string to_string(Nanos t);

}  // namespace u5g
