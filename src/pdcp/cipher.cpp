#include "pdcp/cipher.hpp"

namespace u5g {

namespace {

/// SplitMix64-based per-block keystream word.
std::uint64_t keystream_word(const CipherContext& ctx, std::uint32_t count, std::uint64_t block) {
  std::uint64_t x = ctx.key ^ (static_cast<std::uint64_t>(count) << 32) ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 8) ^ (ctx.downlink ? 1u : 0u);
  x += (block + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx, std::uint32_t count) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t word = keystream_word(ctx, count, i / 8);
    data[i] ^= static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
}

std::uint32_t integrity_tag(std::span<const std::uint8_t> data, const CipherContext& ctx,
                            std::uint32_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ ctx.key ^ count ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 40) ^ (ctx.downlink ? 2u : 0u);
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace u5g
