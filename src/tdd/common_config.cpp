#include "tdd/common_config.hpp"

namespace u5g {

namespace {
using namespace u5g::literals;

constexpr std::array<Nanos, 8> kStandardPeriods{
    Nanos{500'000},   Nanos{625'000},   Nanos{1'000'000}, Nanos{1'250'000},
    Nanos{2'000'000}, Nanos{2'500'000}, Nanos{5'000'000}, Nanos{10'000'000},
};
}  // namespace

std::span<const Nanos> standard_tdd_periods() { return kStandardPeriods; }

bool is_valid_tdd_period(Nanos p, Numerology num) {
  bool in_set = false;
  for (Nanos q : kStandardPeriods) in_set = in_set || q == p;
  if (!in_set) return false;
  return p % num.slot_duration() == Nanos::zero();
}

void TddCommonConfig::validate(const TddPattern& p, Numerology num) {
  if (!is_valid_tdd_period(p.periodicity, num))
    throw std::invalid_argument{
        "TddCommonConfig: periodicity not in the standard set "
        "{0.5,0.625,1,1.25,2,2.5,5,10}ms or not an integer slot count at this numerology"};
  const int slots = p.slots(num);
  if (p.dl_slots < 0 || p.ul_slots < 0 || p.dl_symbols < 0 || p.ul_symbols < 0)
    throw std::invalid_argument{"TddCommonConfig: negative pattern field"};
  if (p.dl_symbols >= kSymbolsPerSlot || p.ul_symbols >= kSymbolsPerSlot)
    throw std::invalid_argument{"TddCommonConfig: partial-slot symbols must be < 14"};
  const bool has_mixed = p.dl_symbols > 0 || p.ul_symbols > 0;
  const int needed = p.dl_slots + p.ul_slots + (has_mixed ? 1 : 0);
  if (needed > slots)
    throw std::invalid_argument{"TddCommonConfig: pattern does not fit in its period"};
  // When DL and UL partial symbols share one slot it must keep >= 1 guard
  // symbol (§2: switching DL->UL requires guard symbols).
  if (has_mixed && p.dl_slots + p.ul_slots + 1 == slots &&
      p.dl_symbols + p.ul_symbols >= kSymbolsPerSlot)
    throw std::invalid_argument{"TddCommonConfig: mixed slot needs at least one guard symbol"};
}

TddCommonConfig::TddCommonConfig(Numerology num, TddPattern p1, std::optional<TddPattern> p2)
    : DuplexConfig(num), p1_(p1), p2_(p2) {
  validate(p1_, num);
  if (p2_) validate(*p2_, num);
  p1_slots_ = p1_.slots(num);
  total_slots_ = p1_slots_ + (p2_ ? p2_->slots(num) : 0);
  name_ = "TDD-Common(";
  auto letter = [&](const TddPattern& p) {
    std::string s;
    s.append(static_cast<std::size_t>(p.dl_slots), 'D');
    if (p.dl_symbols > 0 || p.ul_symbols > 0) s += 'M';
    const int flex = p.slots(num) - p.dl_slots - p.ul_slots -
                     ((p.dl_symbols > 0 || p.ul_symbols > 0) ? 1 : 0);
    s.append(static_cast<std::size_t>(flex), 'F');
    s.append(static_cast<std::size_t>(p.ul_slots), 'U');
    return s;
  };
  name_ += letter(p1_);
  if (p2_) name_ += "+" + letter(*p2_);
  name_ += ")";
  dir_table_.resize(static_cast<std::size_t>(total_slots_) * kSymbolsPerSlot);
  for (int s = 0; s < total_slots_; ++s) {
    for (int sym = 0; sym < kSymbolsPerSlot; ++sym) {
      const Dir d = s < p1_slots_ ? dir_in_pattern(p1_, s, sym)
                                  : dir_in_pattern(*p2_, s - p1_slots_, sym);
      dir_table_[static_cast<std::size_t>(s) * kSymbolsPerSlot + static_cast<std::size_t>(sym)] = d;
    }
  }
}

TddCommonConfig::Dir TddCommonConfig::dir_in_pattern(const TddPattern& p, int slot_in_pattern,
                                                     int sym) const {
  const int slots = p.slots(numerology());
  const bool has_mixed = p.dl_symbols > 0 || p.ul_symbols > 0;
  if (slot_in_pattern < p.dl_slots) return Dir::D;
  if (slot_in_pattern >= slots - p.ul_slots) return Dir::U;
  // The slot right after the DL slots carries the partial DL symbols; the
  // slot right before the UL slots carries the partial UL symbols. For the
  // common single-mixed-slot case these coincide.
  const bool carries_dl_syms = has_mixed && slot_in_pattern == p.dl_slots;
  const bool carries_ul_syms = has_mixed && slot_in_pattern == slots - p.ul_slots - 1;
  if (carries_dl_syms && sym < p.dl_symbols) return Dir::D;
  if (carries_ul_syms && sym >= kSymbolsPerSlot - p.ul_symbols) return Dir::U;
  return Dir::Guard;
}

bool TddCommonConfig::dl_capable(SlotIndex slot, int sym) const {
  return dir(slot, sym) == Dir::D;
}

bool TddCommonConfig::ul_capable(SlotIndex slot, int sym) const {
  return dir(slot, sym) == Dir::U;
}

int TddCommonConfig::guard_symbols() const {
  if (p1_.dl_symbols == 0 && p1_.ul_symbols == 0) return 0;
  return kSymbolsPerSlot - p1_.dl_symbols - p1_.ul_symbols;
}

TddCommonConfig TddCommonConfig::du(Numerology num) {
  return {num, TddPattern{Nanos{500'000}, 1, 0, 0, 1}};
}

TddCommonConfig TddCommonConfig::dm(Numerology num) {
  // [D][M: 4 DL / 2 guard / 8 UL] — §5's only viable minimal TDD config.
  return {num, TddPattern{Nanos{500'000}, 1, 4, 8, 0}};
}

TddCommonConfig TddCommonConfig::mu(Numerology num) {
  // [M: 4 DL / 2 guard / 8 UL][U]
  return {num, TddPattern{Nanos{500'000}, 0, 4, 8, 1}};
}

TddCommonConfig TddCommonConfig::dddu(Numerology num) {
  // §7 testbed: three DL slots, one UL slot; 2 ms period at µ1.
  return {num, TddPattern{num.slot_duration() * 4, 3, 0, 0, 1}};
}

}  // namespace u5g
