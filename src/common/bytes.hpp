#pragma once
// Byte-buffer type for PDUs moving through the stack.
//
// Protocol layers prepend/strip headers; `Packet` models that with explicit
// push/pop operations and carries metadata (creation time, per-category
// latency accounting) used by the journey tracer.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace u5g {

/// Growable byte sequence with cheap header prepend via front reserve.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t payload_size, std::uint8_t fill = 0)
      : data_(kHeadroom + payload_size, fill), begin_(kHeadroom) {}

  static ByteBuffer from_bytes(std::span<const std::uint8_t> bytes) {
    ByteBuffer b(bytes.size());
    std::copy(bytes.begin(), bytes.end(), b.data_.begin() + static_cast<std::ptrdiff_t>(b.begin_));
    return b;
  }

  [[nodiscard]] std::size_t size() const { return data_.size() - begin_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::span<std::uint8_t> bytes() { return {data_.data() + begin_, size()}; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return {data_.data() + begin_, size()}; }

  /// Prepend `header` in front of the current contents.
  void push_header(std::span<const std::uint8_t> header) {
    if (header.size() > begin_) {
      // Re-reserve headroom: rare, only for pathological header stacks.
      std::vector<std::uint8_t> grown(kHeadroom + header.size() + size());
      std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin_), data_.end(),
                grown.begin() + static_cast<std::ptrdiff_t>(kHeadroom + header.size()));
      data_ = std::move(grown);
      begin_ = kHeadroom + header.size();
    }
    begin_ -= header.size();
    std::copy(header.begin(), header.end(), data_.begin() + static_cast<std::ptrdiff_t>(begin_));
  }

  /// Remove and return a view of the first `n` bytes.
  /// Throws std::length_error if the buffer is shorter than `n`.
  std::span<const std::uint8_t> pop_header(std::size_t n) {
    if (n > size()) throw std::length_error{"ByteBuffer::pop_header past end"};
    std::span<const std::uint8_t> h{data_.data() + begin_, n};
    begin_ += n;
    return h;
  }

  /// Remove `n` bytes from the end (strip trailer / truncate).
  void truncate_back(std::size_t n) {
    if (n > size()) throw std::length_error{"ByteBuffer::truncate_back past end"};
    data_.resize(data_.size() - n);
  }

  /// Append bytes at the end.
  void append(std::span<const std::uint8_t> tail) {
    data_.insert(data_.end(), tail.begin(), tail.end());
  }

 private:
  static constexpr std::size_t kHeadroom = 64;
  std::vector<std::uint8_t> data_ = std::vector<std::uint8_t>(kHeadroom);
  std::size_t begin_ = kHeadroom;
};

/// Big-endian integer encode/decode helpers for protocol headers.
inline void put_be16(std::span<std::uint8_t> out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 8);
  out[1] = static_cast<std::uint8_t>(v);
}
inline void put_be32(std::span<std::uint8_t> out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}
[[nodiscard]] inline std::uint16_t get_be16(std::span<const std::uint8_t> in) {
  return static_cast<std::uint16_t>((in[0] << 8) | in[1]);
}
[[nodiscard]] inline std::uint32_t get_be32(std::span<const std::uint8_t> in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) | (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

}  // namespace u5g
