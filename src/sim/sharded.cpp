#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/runner.hpp"

namespace u5g {

ShardedEngine::ShardedEngine(const StackConfig& base, ShardedOptions opt) : base_(base) {
  if (!base_.duplex) throw std::invalid_argument{"ShardedEngine: duplex config required"};
  if (base_.num_cells < 1) throw std::invalid_argument{"ShardedEngine: num_cells must be >= 1"};
  slot_ = base_.duplex->numerology().slot_duration();
  cells_.reserve(static_cast<std::size_t>(base_.num_cells));
  for (int i = 0; i < base_.num_cells; ++i) {
    cells_.push_back(std::make_unique<Cell>(base_, i));
  }
  const int threads = std::min(resolve_threads(opt.threads), base_.num_cells);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ShardedEngine::~ShardedEngine() = default;

int ShardedEngine::threads() const { return pool_ ? pool_->size() : 1; }

void ShardedEngine::send_uplink_at(Nanos at, int cell, int ue) {
  if (cell < 0 || cell >= num_cells()) throw std::out_of_range{"ShardedEngine: cell index"};
  if (at < now_) throw std::invalid_argument{"ShardedEngine: injection behind the frontier"};
  cells_[static_cast<std::size_t>(cell)]->queue_uplink(at, ue);
}

void ShardedEngine::send_downlink_at(Nanos at, int cell, int ue) {
  if (cell < 0 || cell >= num_cells()) throw std::out_of_range{"ShardedEngine: cell index"};
  if (at < now_) throw std::invalid_argument{"ShardedEngine: injection behind the frontier"};
  cells_[static_cast<std::size_t>(cell)]->queue_downlink(at, ue);
}

void ShardedEngine::advance_all(Nanos to) {
  if (pool_) {
    for (auto& c : cells_) {
      Cell* cell = c.get();
      pool_->submit([cell, to] { cell->advance_to(to); });
    }
    pool_->wait_idle();
  } else {
    for (auto& c : cells_) c->advance_to(to);
  }
}

void ShardedEngine::exchange_load() {
  // Gathered and applied in fixed cell order on the engine thread, so the
  // (floating-point) aggregate is identical for every worker thread count.
  double total = 0.0;
  std::vector<double> load(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    load[i] = static_cast<double>(cells_[i]->inflight_packets());
    total += load[i];
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i]->set_neighbor_load(base_.intercell_load_coupling * (total - load[i]));
  }
}

void ShardedEngine::run_until(Nanos until) {
  if (until <= now_) return;
  if (base_.intercell_load_coupling == 0.0 || cells_.size() == 1) {
    // No cross-cell dependency: the lookahead is infinite, one window.
    advance_all(until);
    now_ = until;
    return;
  }
  while (now_ < until) {
    const Nanos end = std::min(now_ + slot_, until);
    advance_all(end);
    exchange_load();
    now_ = end;
  }
}

SampleSet ShardedEngine::latency_samples_us(Direction dir) const {
  SampleSet merged;
  for (const auto& c : cells_) merged.merge(c->system().latency_samples_us(dir));
  return merged;
}

MetricsRegistry ShardedEngine::merged_metrics() const {
  MetricsRegistry merged;
  for (const auto& c : cells_) merged.merge(c->system().metrics());
  return merged;
}

std::uint64_t ShardedEngine::packets_started() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().packets_started();
  return n;
}

std::uint64_t ShardedEngine::packets_delivered() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().packets_delivered();
  return n;
}

std::uint64_t ShardedEngine::radio_deadline_misses() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().radio_deadline_misses();
  return n;
}

std::uint64_t ShardedEngine::events_fired() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c->system().simulator().events_fired();
  return n;
}

std::vector<TraceLane> ShardedEngine::trace_lanes() const {
  std::vector<TraceLane> lanes;
  lanes.reserve(cells_.size());
  for (const auto& c : cells_) {
    lanes.push_back(TraceLane{"cell " + std::to_string(c->index()), c->system().tracer().spans()});
  }
  return lanes;
}

}  // namespace u5g
