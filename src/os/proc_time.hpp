#pragma once
// Per-layer processing-time model, calibrated to the paper's Table 2.
//
// Table 2 (gNB, Intel i7, software stack):
//     layer   mean[µs]  std[µs]
//     SDAP      4.65     6.71
//     PDCP      8.29     8.99
//     RLC       4.12     8.37
//     MAC      55.21    16.31
//     PHY      41.55    10.83
// (RLC-q, the queuing time of 484.20 µs, is *not* a processing draw — it
// emerges from the per-slot scheduler and is measured, not sampled.)
//
// Each layer's time is a lognormal moment-matched to (mean, std): strictly
// positive, right-skewed — the empirically observed shape of software
// processing under OS noise (§6).

#include <stdexcept>
#include <string_view>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace u5g {

enum class Layer { SDAP, PDCP, RLC, MAC, PHY, APP };

[[nodiscard]] constexpr std::string_view to_string(Layer l) {
  switch (l) {
    case Layer::SDAP: return "SDAP";
    case Layer::PDCP: return "PDCP";
    case Layer::RLC: return "RLC";
    case Layer::MAC: return "MAC";
    case Layer::PHY: return "PHY";
    case Layer::APP: return "APP";
  }
  return "?";
}

/// Mean/std pair in microseconds for one layer.
struct LayerTime {
  double mean_us = 0.0;
  double std_us = 0.0;
};

/// Per-layer processing profile of one node.
struct ProcessingProfile {
  LayerTime sdap, pdcp, rlc, mac, phy, app;
  double scale = 1.0;  ///< multi-UE load factor hook (§7: "higher number of UEs
                       ///< might increase the processing times noticeably")

  [[nodiscard]] const LayerTime& layer(Layer l) const {
    switch (l) {
      case Layer::SDAP: return sdap;
      case Layer::PDCP: return pdcp;
      case Layer::RLC: return rlc;
      case Layer::MAC: return mac;
      case Layer::PHY: return phy;
      case Layer::APP: return app;
    }
    throw std::invalid_argument{"ProcessingProfile: unknown layer"};
  }

  /// The paper's Table 2 gNB (software stack on an Intel i7).
  static ProcessingProfile gnb_i7() {
    return {{4.65, 6.71}, {8.29, 8.99}, {4.12, 8.37}, {55.21, 16.31}, {41.55, 10.83},
            {2.0, 1.0},   1.0};
  }

  /// Commercial-modem UE: slower and noisier than the gNB (§7: "the UE needs
  /// more time for processing than gNB"). Roughly 3x the gNB figures.
  static ProcessingProfile ue_modem() {
    return {{14.0, 12.0}, {25.0, 18.0}, {12.0, 15.0}, {160.0, 45.0}, {120.0, 30.0},
            {10.0, 5.0},  1.0};
  }

  /// Idealised zero-cost profile for pure-protocol analyses.
  static ProcessingProfile zero() { return {}; }

  /// Hardware-accelerated stack: an order of magnitude below Table 2.
  static ProcessingProfile asic() {
    return {{0.5, 0.2}, {0.8, 0.3}, {0.5, 0.2}, {5.0, 1.5}, {4.0, 1.2}, {0.5, 0.2}, 1.0};
  }
};

/// Stateful sampler over a ProcessingProfile.
class ProcessingModel {
 public:
  ProcessingModel(ProcessingProfile profile, Rng rng) : p_(profile), rng_(rng) {
    for (Layer l : {Layer::SDAP, Layer::PDCP, Layer::RLC, Layer::MAC, Layer::PHY, Layer::APP}) {
      const LayerTime& t = p_.layer(l);
      fits_[index(l)] = t.mean_us > 0.0
                            ? LognormalParams::from_mean_std(t.mean_us, t.std_us)
                            : LognormalParams{};
      zero_[index(l)] = t.mean_us <= 0.0;
    }
  }

  /// One processing-time draw for `layer`, scaled by the load factor.
  [[nodiscard]] Nanos sample(Layer layer) {
    const std::size_t i = index(layer);
    if (zero_[i]) return Nanos::zero();
    return from_us(fits_[i].sample(rng_) * p_.scale);
  }

  [[nodiscard]] const ProcessingProfile& profile() const { return p_; }
  void set_scale(double s) { p_.scale = s; }

 private:
  static std::size_t index(Layer l) { return static_cast<std::size_t>(l); }

  ProcessingProfile p_;
  Rng rng_;
  LognormalParams fits_[6];
  bool zero_[6]{};
};

}  // namespace u5g
