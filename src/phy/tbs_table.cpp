#include "phy/tbs_table.hpp"

#include <algorithm>

#include "phy/transport_block.hpp"

namespace u5g {

const TbsTable& TbsTable::instance() {
  static const TbsTable table;
  return table;
}

TbsTable::TbsTable() {
  for (int m = 0; m < kMcsCount; ++m) {
    const McsEntry entry = mcs(m);
    for (int sym = 1; sym <= kMaxSymbols; ++sym) {
      Row& r = rows_[static_cast<std::size_t>(m) * kMaxSymbols + static_cast<std::size_t>(sym - 1)];
      for (int prb = 1; prb <= kMaxPrb; ++prb) {
        r[prb - 1] = transport_block_size_bits(Allocation{.n_prb = prb, .n_symbols = sym}, entry);
      }
    }
  }
}

bool TbsTable::covers(const McsEntry& m, int n_symbols) {
  if (n_symbols < 1 || n_symbols > kMaxSymbols) return false;
  if (m.index < 0 || m.index >= kMcsCount) return false;
  const McsEntry standard = mcs_table()[static_cast<std::size_t>(m.index)];
  return m.modulation == standard.modulation && m.rate_x1024 == standard.rate_x1024;
}

int TbsTable::prbs_needed(int need_bits, const McsEntry& m, int n_symbols, int max_prb) const {
  const Row& r = row(m.index, n_symbols);
  const int hi = std::min(max_prb, kMaxPrb);
  if (hi >= 1) {
    const auto* end = r.begin() + hi;
    const auto* it = std::lower_bound(r.begin(), end, need_bits);
    if (it != end) return static_cast<int>(it - r.begin()) + 1;
  }
  // Caller asked for more PRBs than the table holds (non-standard carrier):
  // finish the residue the way the linear scan would.
  for (int prb = kMaxPrb + 1; prb <= max_prb; ++prb) {
    Allocation a{.n_prb = prb, .n_symbols = n_symbols};
    if (transport_block_size_bits(a, m) >= need_bits) return prb;
  }
  return 0;
}

}  // namespace u5g
