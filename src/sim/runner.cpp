#include "sim/runner.hpp"

namespace u5g {

int resolve_threads(int requested) {
  return requested >= 1 ? requested : ThreadPool::hardware_threads();
}

}  // namespace u5g
