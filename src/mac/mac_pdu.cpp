#include "mac/mac_pdu.hpp"

#include <array>
#include <stdexcept>

namespace u5g {

ByteBuffer build_mac_pdu(std::span<const MacSubPdu> subpdus, std::size_t tb_bytes) {
  std::size_t need = 0;
  for (const MacSubPdu& sp : subpdus) need += kMacSubheaderBytes + sp.payload.size();
  if (need > tb_bytes) throw std::length_error{"build_mac_pdu: subPDUs exceed transport block"};

  ByteBuffer tb(0);
  tb.reserve_tail(tb_bytes);  // one pooled block; all appends below are in-place
  for (const MacSubPdu& sp : subpdus) {
    std::array<std::uint8_t, kMacSubheaderBytes> hdr{
        static_cast<std::uint8_t>(sp.lcid),
        static_cast<std::uint8_t>(sp.payload.size() >> 8),
        static_cast<std::uint8_t>(sp.payload.size() & 0xFF)};
    tb.append(hdr);
    tb.append(sp.payload.bytes());
  }
  if (tb.size() < tb_bytes) {
    // Padding subheader (no length: consumes the remainder).
    const std::uint8_t pad_hdr = static_cast<std::uint8_t>(Lcid::Padding);
    tb.append({&pad_hdr, 1});
    tb.append_zeros(tb_bytes - tb.size());
  }
  return tb;
}

bool parse_mac_pdu_to(ByteBuffer&& tb, DeliveryFn deliver) {
  while (!tb.empty()) {
    const auto lcid = tb.pop_header(1)[0];
    if (static_cast<Lcid>(lcid) == Lcid::Padding) break;
    if (tb.size() < 2) return false;
    const auto lb = tb.pop_header(2);
    const std::size_t len = (static_cast<std::size_t>(lb[0]) << 8) | lb[1];
    if (tb.size() < len) return false;
    const auto body = tb.pop_header(len);
    PacketMeta meta;
    meta.lcid = lcid;
    deliver(ByteBuffer::from_bytes(body), meta);
  }
  return true;
}

std::optional<MacSubPdus> parse_mac_pdu(ByteBuffer&& tb) {
  MacSubPdus out;
  while (!tb.empty()) {
    const auto lcid = static_cast<Lcid>(tb.pop_header(1)[0]);
    if (lcid == Lcid::Padding) break;
    if (tb.size() < 2) return std::nullopt;
    const auto lb = tb.pop_header(2);
    const std::size_t len = (static_cast<std::size_t>(lb[0]) << 8) | lb[1];
    if (tb.size() < len) return std::nullopt;
    const auto body = tb.pop_header(len);
    out.push_back(MacSubPdu{lcid, ByteBuffer::from_bytes(body)});
  }
  return out;
}

}  // namespace u5g
