#pragma once
// Canonical value identity for configuration objects.
//
// A `CanonicalWords` is the flattened, order-significant word stream of a
// configuration's observable fields. Two configs are value-equal iff their
// word streams are identical — exact deep equality, no collision risk — and
// the stream folds into a stable 64-bit key for hashing/logging. The
// feasibility-query service (src/serve/) uses both: the word stream as the
// exact LRU key, the folded key as its hash.
//
// Stability contract: the fold is a pure function of the words (SplitMix64
// finalizer chain, no pointers, no addresses, no iteration-order
// dependence), so keys are identical across runs, platforms with the same
// field values, and thread counts. Doubles participate by bit pattern
// (canonical identity is *bitwise* field identity: -0.0 != +0.0, and any
// NaN payload is itself).

#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

namespace u5g {

/// One SplitMix64 finalizer step (same mixer as sim/runner.hpp's
/// `splitmix64`, restated here so u5g_common stays a leaf library).
[[nodiscard]] constexpr std::uint64_t hash_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class CanonicalWords {
 public:
  void add(std::uint64_t w) { words_.push_back(w); }
  void add_signed(std::int64_t v) { words_.push_back(static_cast<std::uint64_t>(v)); }
  void add_bool(bool b) { words_.push_back(b ? 1 : 0); }
  /// Bit pattern of `d` — bitwise identity, see the header comment.
  void add_double(double d) { words_.push_back(std::bit_cast<std::uint64_t>(d)); }
  /// Length-prefixed so "ab","c" and "a","bc" cannot collide.
  void add_string(std::string_view s) {
    add(s.size());
    std::uint64_t w = 0;
    int n = 0;
    for (unsigned char c : s) {
      w = (w << 8) | c;
      if (++n == 8) {
        add(w);
        w = 0;
        n = 0;
      }
    }
    if (n > 0) add(w);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }
  [[nodiscard]] std::size_t size() const { return words_.size(); }

  /// Stable 64-bit fold of the stream (length-seeded SplitMix64 chain).
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = hash_mix64(words_.size());
    for (std::uint64_t w : words_) h = hash_mix64(h ^ w);
    return h;
  }

  friend bool operator==(const CanonicalWords&, const CanonicalWords&) = default;

 private:
  std::vector<std::uint64_t> words_;
};

/// Hash functor for using CanonicalWords as an unordered-map key.
struct CanonicalWordsHash {
  [[nodiscard]] std::size_t operator()(const CanonicalWords& k) const {
    return static_cast<std::size_t>(k.hash());
  }
};

}  // namespace u5g
