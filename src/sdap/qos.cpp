#include "sdap/qos.hpp"

#include <array>

namespace u5g {

namespace {

using namespace u5g::literals;

constexpr std::array<FiveQi, 10> kTable{{
    // Non-GBR defaults.
    {9, ResourceType::NonGBR, 90, 300_ms, 1e-6, "buffered video, web"},
    {8, ResourceType::NonGBR, 80, 300_ms, 1e-6, "TCP-based services"},
    {7, ResourceType::NonGBR, 70, 100_ms, 1e-3, "voice, interactive gaming"},
    // GBR.
    {1, ResourceType::GBR, 20, 100_ms, 1e-2, "conversational voice"},
    {2, ResourceType::GBR, 40, 150_ms, 1e-3, "conversational video"},
    {3, ResourceType::GBR, 30, 50_ms, 1e-3, "real-time gaming, V2X"},
    // Delay-critical GBR: the URLLC rows.
    {82, ResourceType::DelayCriticalGBR, 19, 10_ms, 1e-4, "discrete automation (small)"},
    {83, ResourceType::DelayCriticalGBR, 22, 10_ms, 1e-4, "discrete automation"},
    {84, ResourceType::DelayCriticalGBR, 24, 30_ms, 1e-5, "intelligent transport"},
    {85, ResourceType::DelayCriticalGBR, 21, 5_ms, 1e-5, "electricity distribution"},
}};

}  // namespace

std::span<const FiveQi> five_qi_table() { return kTable; }

std::optional<FiveQi> find_five_qi(int value) {
  for (const FiveQi& q : kTable) {
    if (q.value == value) return q;
  }
  return std::nullopt;
}

FiveQi urllc_five_qi() { return *find_five_qi(85); }

}  // namespace u5g
