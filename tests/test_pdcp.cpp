// Unit tests for src/pdcp: keystream/integrity primitives, protect/receive
// round trips, reordering, duplicate/stale rejection, SN inference.

#include <gtest/gtest.h>

#include <vector>

#include "pdcp/cipher.hpp"
#include "pdcp/pdcp_entity.hpp"

namespace u5g {
namespace {

ByteBuffer payload(std::size_t n, std::uint8_t seed = 1) {
  ByteBuffer b(n);
  for (std::size_t i = 0; i < n; ++i) b.bytes()[i] = static_cast<std::uint8_t>(seed + 3 * i);
  return b;
}

bool same_bytes(const ByteBuffer& a, const ByteBuffer& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.bytes()[i] != b.bytes()[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cipher primitives

TEST(CipherTest, KeystreamIsInvolutory) {
  ByteBuffer b = payload(64);
  const ByteBuffer orig = b;
  const CipherContext ctx{};
  apply_keystream(b.bytes(), ctx, 7);
  EXPECT_FALSE(same_bytes(b, orig));  // actually ciphered
  apply_keystream(b.bytes(), ctx, 7);
  EXPECT_TRUE(same_bytes(b, orig));
}

TEST(CipherTest, KeystreamDependsOnAllInputs) {
  const ByteBuffer orig = payload(32);
  auto cipher_with = [&](CipherContext ctx, std::uint32_t count) {
    ByteBuffer b = orig;
    apply_keystream(b.bytes(), ctx, count);
    return b;
  };
  const ByteBuffer base = cipher_with(CipherContext{}, 1);
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{}, 2)));                  // count
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{.key = 99}, 1)));         // key
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{.bearer = 5}, 1)));       // bearer
  EXPECT_FALSE(same_bytes(base, cipher_with(CipherContext{.downlink = false}, 1))); // direction
}

TEST(CipherTest, IntegrityDetectsBitFlip) {
  ByteBuffer b = payload(48);
  const CipherContext ctx{};
  const std::uint32_t tag = integrity_tag(b.bytes(), ctx, 3);
  b.bytes()[20] ^= 0x01;
  EXPECT_NE(tag, integrity_tag(b.bytes(), ctx, 3));
}

TEST(CipherTest, IntegrityBoundToCountAndDirection) {
  const ByteBuffer b = payload(16);
  const CipherContext dl{};
  CipherContext ul = dl;
  ul.downlink = false;
  EXPECT_NE(integrity_tag(b.bytes(), dl, 1), integrity_tag(b.bytes(), dl, 2));
  EXPECT_NE(integrity_tag(b.bytes(), dl, 1), integrity_tag(b.bytes(), ul, 1));
}

// ---------------------------------------------------------------------------
// Entity round trips

TEST(PdcpTest, ProtectReceiveRoundTrip) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer b = payload(100, 0x40);
  tx.protect(b);
  EXPECT_EQ(b.size(), 100u + 2 + 4);  // header + MAC-I

  std::vector<std::uint32_t> counts;
  ByteBuffer delivered(0);
  EXPECT_TRUE(rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta& m) {
    delivered = std::move(s);
    counts.push_back(m.count);
  }));
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_TRUE(same_bytes(delivered, payload(100, 0x40)));
}

TEST(PdcpTest, InOrderStreamDeliversAll) {
  PdcpTx tx;
  PdcpRx rx;
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    ByteBuffer b = payload(10, static_cast<std::uint8_t>(i));
    tx.protect(b);
    rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta& m) {
      EXPECT_EQ(m.count, static_cast<std::uint32_t>(delivered));
      ++delivered;
    });
  }
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(rx.held_count(), 0u);
}

TEST(PdcpTest, ReordersOutOfOrderArrivals) {
  PdcpTx tx;
  PdcpRx rx;
  std::vector<ByteBuffer> pdus;
  for (int i = 0; i < 3; ++i) {
    ByteBuffer b = payload(10, static_cast<std::uint8_t>(i));
    tx.protect(b);
    pdus.push_back(std::move(b));
  }
  std::vector<std::uint32_t> order;
  auto deliver = [&](ByteBuffer&&, const PacketMeta& m) { order.push_back(m.count); };
  rx.receive(std::move(pdus[1]), deliver);  // out of order: held
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(rx.held_count(), 1u);
  rx.receive(std::move(pdus[0]), deliver);  // unblocks 0 and 1
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1}));
  rx.receive(std::move(pdus[2]), deliver);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PdcpTest, DuplicateRejected) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer b = payload(10);
  tx.protect(b);
  ByteBuffer dup = b;
  int delivered = 0;
  auto deliver = [&](ByteBuffer&&, const PacketMeta&) { ++delivered; };
  EXPECT_TRUE(rx.receive(std::move(b), deliver));
  EXPECT_FALSE(rx.receive(std::move(dup), deliver));  // now stale
  EXPECT_EQ(delivered, 1);
}

TEST(PdcpTest, HeldDuplicateRejected) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer burn = payload(4);
  tx.protect(burn);  // burn COUNT 0 (never delivered)
  ByteBuffer b = payload(10);
  tx.protect(b);  // COUNT 1
  ByteBuffer dup = b;
  auto deliver = [](ByteBuffer&&, const PacketMeta&) {};
  EXPECT_TRUE(rx.receive(std::move(b), deliver));    // held (waiting for 0)
  EXPECT_FALSE(rx.receive(std::move(dup), deliver)); // duplicate of held
  EXPECT_EQ(rx.held_count(), 1u);
}

TEST(PdcpTest, TamperedPduDiscarded) {
  PdcpTx tx;
  PdcpRx rx;
  ByteBuffer b = payload(20);
  tx.protect(b);
  b.bytes()[5] ^= 0xFF;  // corrupt ciphered payload
  int delivered = 0;
  EXPECT_FALSE(rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta&) { ++delivered; }));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rx.integrity_failures(), 1u);
}

TEST(PdcpTest, MismatchedSecurityContextFails) {
  PdcpTx tx{PdcpConfig{.security = CipherContext{.key = 1}}};
  PdcpRx rx{PdcpConfig{.security = CipherContext{.key = 2}}};
  ByteBuffer b = payload(20);
  tx.protect(b);
  EXPECT_FALSE(rx.receive(std::move(b), [](ByteBuffer&&, const PacketMeta&) {}));
}

TEST(PdcpTest, FlushSkipsGaps) {
  PdcpTx tx;
  PdcpRx rx;
  std::vector<ByteBuffer> pdus;
  for (int i = 0; i < 3; ++i) {
    ByteBuffer b = payload(10, static_cast<std::uint8_t>(i));
    tx.protect(b);
    pdus.push_back(std::move(b));
  }
  std::vector<std::uint32_t> order;
  auto deliver = [&](ByteBuffer&&, const PacketMeta& m) { order.push_back(m.count); };
  rx.receive(std::move(pdus[1]), deliver);
  rx.receive(std::move(pdus[2]), deliver);
  EXPECT_TRUE(order.empty());
  rx.flush(deliver);  // t-Reordering expiry: deliver 1, 2 without 0
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(rx.expected_count(), 3u);
}

TEST(PdcpTest, SnWrapAround) {
  // Push COUNT past the 12-bit SN modulus: the receiver must infer the
  // full COUNT across the wrap.
  PdcpTx tx;
  PdcpRx rx;
  int delivered = 0;
  for (int i = 0; i < 4096 + 50; ++i) {
    ByteBuffer b = payload(4);
    tx.protect(b);
    rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta& m) {
      EXPECT_EQ(m.count, static_cast<std::uint32_t>(delivered));
      ++delivered;
    });
  }
  EXPECT_EQ(delivered, 4096 + 50);
}

TEST(PdcpTest, EighteenBitSn) {
  const PdcpConfig cfg{.sn_bits = 18};
  PdcpTx tx{cfg};
  PdcpRx rx{cfg};
  ByteBuffer b = payload(30, 0x7);
  tx.protect(b);
  EXPECT_EQ(b.size(), 30u + 3 + 4);  // 3-byte header
  ByteBuffer out(0);
  EXPECT_TRUE(rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta&) { out = std::move(s); }));
  EXPECT_TRUE(same_bytes(out, payload(30, 0x7)));
}

TEST(PdcpTest, IntegrityDisabledMode) {
  const PdcpConfig cfg{.integrity_enabled = false};
  PdcpTx tx{cfg};
  PdcpRx rx{cfg};
  ByteBuffer b = payload(25, 0x9);
  tx.protect(b);
  EXPECT_EQ(b.size(), 25u + 2);  // no MAC-I
  ByteBuffer out(0);
  EXPECT_TRUE(rx.receive(std::move(b), [&](ByteBuffer&& s, const PacketMeta&) { out = std::move(s); }));
  EXPECT_TRUE(same_bytes(out, payload(25, 0x9)));
}

TEST(PdcpTest, RuntPduRejected) {
  PdcpRx rx;
  ByteBuffer tiny(3);
  EXPECT_FALSE(rx.receive(std::move(tiny), [](ByteBuffer&&, const PacketMeta&) {}));
}

}  // namespace
}  // namespace u5g
