#pragma once
// Open-addressing hash map for integer keys on simulator hot paths.
//
// `std::unordered_map` costs a heap node per entry and a pointer chase per
// lookup; profiles of bench_scaleout showed its `find` alone at ~2% of wall
// time (Tracer cursors) before this existed, and the event kernel's
// timestamp->bucket index needs a lookup per scheduled event. This map is a
// single flat array with linear probing and backward-shift deletion: no
// tombstones, no per-entry allocation, and — because capacity only grows —
// zero allocations in steady state once the high-water size is reached.
//
// Scope is deliberately narrow: trivially-copyable keys/values (entries are
// relocated by assignment during deletion and rehash), no iteration order
// guarantees, and a mixing hash applied to the raw integer key so adversarial
// or arithmetic key patterns (timestamps in fixed steps) still spread.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace u5g {

/// Final mixer of splitmix64 — full-avalanche on 64-bit integers.
struct IntHash {
  [[nodiscard]] std::size_t operator()(std::uint64_t x) const {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Flat hash map from an integer-like key to a small value.
template <typename K, typename V, typename Hash = IntHash>
class FlatHashMap {
 public:
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent. Stable only
  /// until the next insert (rehash may relocate entries).
  [[nodiscard]] V* find(K key) {
    if (count_ == 0) return nullptr;
    const std::size_t mask = table_.size() - 1;
    std::size_t i = home(key, mask);
    while (table_[i].used) {
      if (table_[i].key == key) return &table_[i].val;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  [[nodiscard]] const V* find(K key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  [[nodiscard]] bool contains(K key) const { return find(key) != nullptr; }

  /// Value for `key`, default-constructed and inserted when absent.
  V& operator[](K key) {
    grow_if_needed();
    const std::size_t mask = table_.size() - 1;
    std::size_t i = home(key, mask);
    while (table_[i].used) {
      if (table_[i].key == key) return table_[i].val;
      i = (i + 1) & mask;
    }
    table_[i].used = true;
    table_[i].key = key;
    table_[i].val = V{};
    ++count_;
    return table_[i].val;
  }

  /// Remove `key`; returns true when it was present. Backward-shift
  /// deletion keeps every remaining entry reachable without tombstones.
  bool erase(K key) {
    if (count_ == 0) return false;
    const std::size_t mask = table_.size() - 1;
    std::size_t hole = home(key, mask);
    while (true) {
      if (!table_[hole].used) return false;
      if (table_[hole].key == key) break;
      hole = (hole + 1) & mask;
    }
    std::size_t j = hole;
    for (;;) {
      j = (j + 1) & mask;
      if (!table_[j].used) break;
      // An entry probing from `home` may be pulled back into the hole only
      // if the hole still lies on its probe path: dist(home -> j) must be
      // at least dist(hole -> j), both measured forward with wraparound.
      const std::size_t h = home(table_[j].key, mask);
      if (((j - h) & mask) >= ((j - hole) & mask)) {
        table_[hole] = table_[j];
        hole = j;
      }
    }
    table_[hole].used = false;
    --count_;
    return true;
  }

  void clear() {
    for (Entry& e : table_) e.used = false;
    count_ = 0;
  }

  /// Pre-size the table for at least `n` entries without rehashing later.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 < n * 10) cap *= 2;  // keep load factor <= 0.7
    if (cap > table_.size()) rehash(cap);
  }

 private:
  struct Entry {
    K key;
    V val;
    bool used = false;
  };
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] static std::size_t home(K key, std::size_t mask) {
    return Hash{}(static_cast<std::uint64_t>(key)) & mask;
  }

  void grow_if_needed() {
    if (table_.empty()) {
      rehash(kMinCapacity);
    } else if ((count_ + 1) * 10 > table_.size() * 7) {
      rehash(table_.size() * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<Entry> old = std::move(table_);
    table_.assign(new_cap, Entry{});
    const std::size_t mask = new_cap - 1;
    for (const Entry& e : old) {
      if (!e.used) continue;
      std::size_t i = home(e.key, mask);
      while (table_[i].used) i = (i + 1) & mask;
      table_[i] = e;
    }
  }

  std::vector<Entry> table_;
  std::size_t count_ = 0;
};

}  // namespace u5g
