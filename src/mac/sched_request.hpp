#pragma once
// Scheduling-request procedure (TS 38.213 §9.2.4; paper §3 step ②).
//
// A UE with uplink data but no grant transmits a one-bit SR on PUCCH and
// waits for an uplink grant. SR opportunities are periodic; the period is a
// protocol-latency lever the paper calls out explicitly ("period of
// scheduling requests", §1). With `periodicity == symbol duration` the model
// matches footnote 2's idealisation (SR possible at any UL symbol); the
// testbed reproduction (§7) uses per-slot opportunities.

#include <optional>

#include "common/time.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

struct SrConfig {
  /// Spacing between SR opportunities on the UE's PUCCH resource. The
  /// opportunity must also fall on uplink-capable symbols.
  Nanos periodicity{};
  /// SR transmission length in symbols (one-bit PUCCH format 0: 1 symbol).
  int sr_symbols = 1;
  /// Max SRs before the UE gives up (sr-TransMax).
  int max_transmissions = 8;

  /// Idealised: SR possible at any UL symbol (periodicity = 0 means "every
  /// symbol"). Matches the §5 analysis.
  static SrConfig every_symbol() { return {Nanos::zero(), 1, 8}; }

  /// One SR opportunity per slot — the software-testbed configuration.
  static SrConfig per_slot(Numerology num) { return {num.slot_duration(), 1, 8}; }
};

/// UE-side SR state machine.
class SrProcedure {
 public:
  explicit SrProcedure(SrConfig cfg) : cfg_(cfg) {}

  /// Earliest SR transmission window at or after `t`. With a positive
  /// periodicity there is one opportunity per grid period: the first
  /// UL-capable window at or after the grid point (the PUCCH resource's
  /// offset anchors it within the period; grid points need not coincide
  /// with UL symbols). Zero periodicity = any UL symbol (footnote 2).
  [[nodiscard]] std::optional<TxWindow> next_sr_opportunity(const DuplexConfig& duplex,
                                                            Nanos t) const {
    if (cfg_.periodicity <= Nanos::zero()) {
      return next_ul_tx(duplex, t, cfg_.sr_symbols);
    }
    // The current grid period's opportunity, if `t` has not passed it yet.
    const Nanos this_grid = align_down(t, cfg_.periodicity);
    const auto w = next_ul_tx(duplex, this_grid, cfg_.sr_symbols);
    if (w && w->start >= t) return w;
    Nanos from = align_up(t, cfg_.periodicity);
    if (from == t) from = t + cfg_.periodicity;
    return next_ul_tx(duplex, from, cfg_.sr_symbols);
  }

  void on_sr_sent() { ++count_; }
  void reset() { count_ = 0; }
  [[nodiscard]] bool exhausted() const { return count_ >= cfg_.max_transmissions; }
  [[nodiscard]] int transmissions() const { return count_; }
  [[nodiscard]] const SrConfig& config() const { return cfg_; }

 private:
  SrConfig cfg_;
  int count_ = 0;
};

}  // namespace u5g
