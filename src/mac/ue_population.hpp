#pragma once
// Lite-UE background population for one cell of the city-scale engine.
//
// A full E2eSystem UE costs a protocol-stack object graph and one event per
// packet per layer crossing — fine for the handful of *tracked* UEs whose
// per-packet latency the paper's figures are about, fatal for the ~1M
// background UEs whose only job is to load the cell. This pool extends the
// PR-6 struct-of-arrays pattern (mac/ue_pool.hpp) from per-UE flags to the
// whole background population:
//
//  * All per-UE MAC state lives in flat rows carved from one BufferPool
//    block: SR and HARQ membership as 64-UE bitmask words, per-UE
//    ring-buffered arrival queues (fixed-depth rings of arrival slot
//    numbers), and byte-wide head/length/attempt counters. No per-UE
//    objects, no pointers, ~(4*ring + 3) bytes + 2 bits per UE.
//  * Traffic is an *aggregate* process (app/traffic.hpp): one batched
//    Poisson count draw — or an arithmetic periodic count — per slot,
//    distributed over the UE rows, instead of one simulator event per
//    packet. Poisson superposition makes the batch statistically identical
//    to per-UE generators; the explicit per-UE mode is kept as the
//    equivalence oracle (test_population.cpp).
//  * A lite grant loop services the queues: `grants_per_slot` uplink grants
//    per slot, HARQ-retransmission UEs first, then SR UEs in round-robin
//    word-scan order. Losses draw from the population's own RNG stream;
//    exhausted HARQ budgets and ring overflows are accounted buckets, so
//    offered == delivered + harq_drops + queue_drops + queued holds exactly.
//
// Everything is deterministic from the construction seed: one tick sequence
// per (seed, config), independent of threads, other cells, and the tracked
// E2eSystem's draw sequence (the population never touches the cell's main
// RNG stream, so enabling a population cannot perturb tracked packets).
// Not thread-safe; one population per cell, ticked only by the worker that
// runs the cell's window — the same ownership discipline as Arena.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

#include "app/traffic.hpp"
#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/metrics.hpp"

namespace u5g {

/// Background-population knobs, carried on StackConfig. `background_ues == 0`
/// (the default) means no population is built and nothing changes anywhere.
struct PopulationConfig {
  int background_ues = 0;            ///< lite UEs per cell (0 = disabled)
  Nanos mean_interarrival{100'000'000};  ///< per-UE mean packet spacing
  bool periodic = false;             ///< periodic sources instead of Poisson
  /// Batched per-slot count draw (the production path). false = one draw per
  /// UE per slot, the explicit comparator the equivalence test runs against.
  bool aggregate = true;
  double loss = 0.0;                 ///< per-transmission loss probability
  int harq_max_tx = 4;               ///< transmissions before a head drop
  int grants_per_slot = 8;           ///< lite-scheduler UL capacity per slot
  int queue_capacity = 8;            ///< per-UE arrival ring depth
  /// How strongly background backlog loads the cell's gNB: backlogged UEs ×
  /// this factor enter ProcessingProfile::set_scale as equivalent tracked
  /// UEs (same hook the inter-cell coupling uses).
  double load_factor = 0.01;
};

class UePopulation {
 public:
  UePopulation(const PopulationConfig& cfg, Nanos slot_duration, std::uint64_t seed)
      : cfg_(cfg), slot_(slot_duration), rng_(seed) {
    n_ = static_cast<std::size_t>(std::max(cfg.background_ues, 0));
    cap_ = static_cast<std::size_t>(std::max(cfg.queue_capacity, 1));
    words_ = (n_ + 63) / 64;
    const double per_ue_per_slot =
        static_cast<double>(slot_.count()) /
        static_cast<double>(std::max<std::int64_t>(cfg.mean_interarrival.count(), 1));
    mean_per_slot_ = static_cast<double>(n_) * per_ue_per_slot;
    per_ue_p_ = std::min(per_ue_per_slot, 1.0);
    period_slots_ = std::max<int>(
        1, static_cast<int>((cfg.mean_interarrival.count() + slot_.count() / 2) /
                            std::max<std::int64_t>(slot_.count(), 1)));
    if (n_ == 0) return;
    // One block, one layout: [sr words][harq words][rings][len][head][attempt].
    const std::size_t bytes = 2 * words_ * sizeof(std::uint64_t) +
                              n_ * cap_ * sizeof(std::uint32_t) + 3 * n_;
    block_ = BufferPool::local().acquire(bytes);
    std::memset(block_->data(), 0, bytes);
    sr_words_ = reinterpret_cast<std::uint64_t*>(block_->data());
    harq_words_ = sr_words_ + words_;
    rings_ = reinterpret_cast<std::uint32_t*>(harq_words_ + words_);
    q_len_ = reinterpret_cast<std::uint8_t*>(rings_ + n_ * cap_);
    q_head_ = q_len_ + n_;
    attempt_ = q_head_ + n_;
  }

  ~UePopulation() {
    if (block_ != nullptr) BufferPool::local().release(block_);
  }
  UePopulation(const UePopulation&) = delete;
  UePopulation& operator=(const UePopulation&) = delete;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Advance one slot: draw this slot's arrivals, distribute them over the
  /// UE rows, then run the lite grant loop. `slot` is the absolute slot
  /// index; ticks must be consecutive (the cell guarantees this).
  void tick(std::uint64_t slot) {
    if (n_ == 0) return;
    arrive(slot);
    serve(slot);
  }

  // -- Load signal ----------------------------------------------------------

  /// UEs with at least one queued packet — word-at-a-time popcount.
  [[nodiscard]] std::size_t backlog_ues() const {
    std::size_t c = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      c += static_cast<std::size_t>(std::popcount(sr_words_[w]));
    }
    return c;
  }
  /// Equivalent tracked-UE load this population exerts on the gNB.
  [[nodiscard]] double load_ues() const {
    return cfg_.load_factor * static_cast<double>(backlog_ues());
  }
  /// Packets sitting in rings (running counter, O(1)).
  [[nodiscard]] std::uint64_t queued_packets() const { return queued_; }

  // -- Accounting -----------------------------------------------------------
  // offered == delivered + harq_drops + queue_drops + queued_packets() holds
  // after every tick (pinned by test_population.cpp).

  struct Counters {
    std::uint64_t offered = 0;      ///< arrivals drawn from the process
    std::uint64_t delivered = 0;    ///< packets served and not lost
    std::uint64_t harq_drops = 0;   ///< head packets past the HARQ budget
    std::uint64_t queue_drops = 0;  ///< arrivals bounced off a full ring
    std::uint64_t grants_used = 0;  ///< lite-scheduler services performed
  };
  [[nodiscard]] const Counters& counters() const { return c_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

  /// Fold this population into a merged registry under `population.*`.
  /// Plain counter adds — callable regardless of the cell's TraceConfig.
  void export_metrics(MetricsRegistry& reg) const {
    reg.counter("population.offered").inc(c_.offered);
    reg.counter("population.delivered").inc(c_.delivered);
    reg.counter("population.harq_drops").inc(c_.harq_drops);
    reg.counter("population.queue_drops").inc(c_.queue_drops);
    reg.counter("population.grants_used").inc(c_.grants_used);
    reg.counter("population.queued").inc(queued_);
    reg.histogram("population.latency_ns").merge(latency_);
  }

  /// Bytes of row storage backing this population (the bytes/UE headline).
  [[nodiscard]] std::size_t storage_bytes() const {
    return n_ == 0 ? 0
                   : 2 * words_ * sizeof(std::uint64_t) +
                         n_ * cap_ * sizeof(std::uint32_t) + 3 * n_;
  }

 private:
  void push(std::size_t ue, std::uint64_t slot) {
    ++c_.offered;
    if (q_len_[ue] >= cap_) {
      ++c_.queue_drops;
      return;
    }
    const std::size_t at = (q_head_[ue] + q_len_[ue]) % cap_;
    rings_[ue * cap_ + at] = static_cast<std::uint32_t>(slot);
    ++q_len_[ue];
    ++queued_;
    sr_words_[ue >> 6] |= 1ULL << (ue & 63);
  }

  void pop(std::size_t ue) {
    q_head_[ue] = static_cast<std::uint8_t>((q_head_[ue] + 1) % cap_);
    --q_len_[ue];
    --queued_;
    attempt_[ue] = 0;
    harq_words_[ue >> 6] &= ~(1ULL << (ue & 63));
    if (q_len_[ue] == 0) sr_words_[ue >> 6] &= ~(1ULL << (ue & 63));
  }

  void arrive(std::uint64_t slot) {
    if (cfg_.aggregate) {
      if (cfg_.periodic) {
        // Sources with phase == slot % period fire: UE rows phase, phase+P,
        // phase+2P, ... — pure arithmetic, bitwise-equal to the explicit
        // per-UE walk below.
        const int count = periodic_count(slot, static_cast<int>(n_), period_slots_);
        const std::size_t phase = slot % static_cast<std::uint64_t>(period_slots_);
        for (int k = 0; k < count; ++k) {
          push(phase + static_cast<std::size_t>(k) * static_cast<std::size_t>(period_slots_),
               slot);
        }
      } else {
        const int count = poisson_count(rng_, mean_per_slot_);
        for (int k = 0; k < count; ++k) push(rng_.uniform_int(n_), slot);
      }
      return;
    }
    // Explicit comparator: one draw (or phase test) per UE per slot.
    if (cfg_.periodic) {
      const std::size_t phase = slot % static_cast<std::uint64_t>(period_slots_);
      for (std::size_t ue = phase; ue < n_;
           ue += static_cast<std::size_t>(period_slots_)) {
        push(ue, slot);
      }
    } else {
      for (std::size_t ue = 0; ue < n_; ++ue) {
        if (rng_.bernoulli(per_ue_p_)) push(ue, slot);
      }
    }
  }

  void serve(std::uint64_t slot) {
    int budget = cfg_.grants_per_slot;
    if (budget <= 0) return;
    // HARQ retransmissions first (oldest obligations), then fresh SR UEs
    // from the round-robin cursor — both as countr_zero word scans.
    budget = scan_serve(harq_words_, /*from=*/harq_cursor_, budget, slot, &harq_cursor_);
    if (budget > 0) {
      budget = scan_serve(sr_words_, /*from=*/sr_cursor_, budget, slot, &sr_cursor_);
    }
  }

  /// Serve up to `budget` set bits of `wordset`, starting at UE `from`,
  /// wrapping once around the population. Returns the unused budget and
  /// stores the next cursor position.
  int scan_serve(const std::uint64_t* wordset, std::size_t from, int budget,
                 std::uint64_t slot, std::size_t* cursor) {
    if (n_ == 0) return budget;
    std::size_t w = (from >> 6) % words_;
    std::uint64_t mask = ~0ULL << (from & 63);  // skip bits below the cursor
    for (std::size_t scanned = 0; scanned <= words_ && budget > 0; ++scanned) {
      // Snapshot: serving a HARQ UE can set/clear bits in this very word.
      std::uint64_t bits = wordset[w] & mask;
      mask = ~0ULL;
      while (bits != 0 && budget > 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t ue = (w << 6) + bit;
        if (ue >= n_) break;
        serve_ue(ue, slot);
        --budget;
        *cursor = ue + 1 >= n_ ? 0 : ue + 1;
      }
      w = w + 1 == words_ ? 0 : w + 1;
    }
    return budget;
  }

  void serve_ue(std::size_t ue, std::uint64_t slot) {
    ++c_.grants_used;
    const bool lost = cfg_.loss > 0.0 && rng_.bernoulli(cfg_.loss);
    if (lost) {
      if (++attempt_[ue] >= cfg_.harq_max_tx) {
        ++c_.harq_drops;
        // pop() counts the head as leaving the queue and resets HARQ state;
        // re-add nothing: the packet is gone.
        pop(ue);
      } else {
        harq_words_[ue >> 6] |= 1ULL << (ue & 63);  // retx next slot
      }
      return;
    }
    const std::uint32_t arrival = rings_[ue * cap_ + q_head_[ue]];
    const auto wait_slots = static_cast<std::int64_t>(slot - arrival + 1);
    latency_.record(wait_slots * slot_.count());
    ++c_.delivered;
    pop(ue);
  }

  PopulationConfig cfg_;
  Nanos slot_;
  Rng rng_;
  std::size_t n_ = 0;
  std::size_t cap_ = 1;
  std::size_t words_ = 0;
  double mean_per_slot_ = 0.0;
  double per_ue_p_ = 0.0;
  int period_slots_ = 1;

  BufferPool::Block* block_ = nullptr;
  std::uint64_t* sr_words_ = nullptr;    ///< bit = UE has queued packets
  std::uint64_t* harq_words_ = nullptr;  ///< bit = head packet awaits retx
  std::uint32_t* rings_ = nullptr;       ///< n × cap arrival slot numbers
  std::uint8_t* q_len_ = nullptr;
  std::uint8_t* q_head_ = nullptr;
  std::uint8_t* attempt_ = nullptr;

  std::size_t sr_cursor_ = 0;
  std::size_t harq_cursor_ = 0;
  std::uint64_t queued_ = 0;
  Counters c_;
  LatencyHistogram latency_;
};

}  // namespace u5g
