// Unit tests for src/phy: numerology arithmetic, frame clock, bands,
// modulation/MCS, transport-block sizing, channel models, sample accounting,
// PHY timing.

#include <gtest/gtest.h>

#include "phy/band.hpp"
#include "phy/channel.hpp"
#include "phy/frame_structure.hpp"
#include "phy/modulation.hpp"
#include "phy/numerology.hpp"
#include "phy/phy_timing.hpp"
#include "phy/samples.hpp"
#include "phy/transport_block.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Numerology

class NumerologyTest : public ::testing::TestWithParam<int> {};

TEST_P(NumerologyTest, DerivedQuantities) {
  const int mu = GetParam();
  const Numerology n{mu};
  EXPECT_EQ(n.mu(), mu);
  EXPECT_EQ(n.scs_khz(), 15 << mu);
  EXPECT_EQ(n.slot_duration().count(), 1'000'000 >> mu);
  EXPECT_EQ(n.slots_per_subframe(), 1 << mu);
  EXPECT_EQ(n.slots_per_frame(), 10 * (1 << mu));
  // Symbols tile the slot (within integer-division remainder).
  EXPECT_LE(n.symbol_duration().count() * kSymbolsPerSlot, n.slot_duration().count());
  EXPECT_GT(n.symbol_duration().count() * (kSymbolsPerSlot + 1), n.slot_duration().count());
}

INSTANTIATE_TEST_SUITE_P(AllMu, NumerologyTest, ::testing::Range(0, 7));

TEST(NumerologyTest, PaperHeadlineValues) {
  EXPECT_EQ(kMu0.slot_duration(), 1_ms);
  EXPECT_EQ(kMu1.slot_duration(), 500_us);
  EXPECT_EQ(kMu2.slot_duration(), 250_us);   // §5: the only feasible FR1 slot
  EXPECT_EQ(kMu6.slot_duration().count(), 15'625);  // §1: 15.625 µs in FR2
}

TEST(NumerologyTest, FrequencyRangeValidity) {
  // §2: µ0-µ2 are FR1, µ2-µ6 are FR2 (µ2 in both).
  EXPECT_TRUE(kMu0.valid_in(FrequencyRange::FR1));
  EXPECT_TRUE(kMu2.valid_in(FrequencyRange::FR1));
  EXPECT_TRUE(kMu2.valid_in(FrequencyRange::FR2));
  EXPECT_FALSE(kMu3.valid_in(FrequencyRange::FR1));
  EXPECT_FALSE(kMu0.valid_in(FrequencyRange::FR2));
  EXPECT_TRUE(kMu6.valid_in(FrequencyRange::FR2));
}

TEST(NumerologyTest, OutOfRangeThrows) {
  EXPECT_THROW(Numerology{-1}, std::invalid_argument);
  EXPECT_THROW(Numerology{7}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SlotClock

class SlotClockTest : public ::testing::TestWithParam<int> {};

TEST_P(SlotClockTest, SlotMapping) {
  const SlotClock clk{Numerology{GetParam()}};
  const Nanos d = clk.slot_duration();
  EXPECT_EQ(clk.slot_at(Nanos::zero()), 0);
  EXPECT_EQ(clk.slot_at(d - 1_ns), 0);
  EXPECT_EQ(clk.slot_at(d), 1);
  EXPECT_EQ(clk.slot_at(d * 7 + 1_ns), 7);
  EXPECT_EQ(clk.slot_start(3), d * 3);
  EXPECT_EQ(clk.slot_end(3), d * 4);
  EXPECT_EQ(clk.next_slot_boundary(d * 2 + 1_ns), d * 3);
  EXPECT_EQ(clk.next_slot_boundary(d * 2), d * 2);  // boundary is "at or after"
}

TEST_P(SlotClockTest, NegativeTimes) {
  const SlotClock clk{Numerology{GetParam()}};
  const Nanos d = clk.slot_duration();
  EXPECT_EQ(clk.slot_at(-1_ns), -1);
  EXPECT_EQ(clk.slot_at(-d), -1);
  EXPECT_EQ(clk.slot_at(-d - 1_ns), -2);
}

INSTANTIATE_TEST_SUITE_P(AllMu, SlotClockTest, ::testing::Range(0, 7));

TEST(SlotClockTest, SymbolMapping) {
  const SlotClock clk{kMu1};  // 500 µs slots, ~35.7 µs symbols
  EXPECT_EQ(clk.symbol_at(Nanos::zero()), 0);
  EXPECT_EQ(clk.symbol_at(clk.symbol_duration()), 1);
  EXPECT_EQ(clk.symbol_at(clk.slot_duration() - 1_ns), 13);  // remainder clamps
  EXPECT_EQ(clk.symbol_start(0, 0), 0_ns);
  EXPECT_EQ(clk.symbol_start(1, 2), clk.slot_duration() + clk.symbol_duration() * 2);
}

TEST(SlotClockTest, FramePosition) {
  const SlotClock clk{kMu1};  // 20 slots per frame
  const FramePosition p = clk.position_at(clk.slot_duration() * 23 + clk.symbol_duration() * 3);
  EXPECT_EQ(p.sfn, 1);
  EXPECT_EQ(p.slot_in_frame, 3);
  EXPECT_EQ(p.symbol, 3);
}

// ---------------------------------------------------------------------------
// Bands

TEST(BandTest, N78IsTheTestbedBand) {
  const Band b = band_n78();
  EXPECT_EQ(b.name, "n78");
  EXPECT_EQ(b.duplex, DuplexMode::TDD);
  EXPECT_EQ(b.fr, FrequencyRange::FR1);
  EXPECT_TRUE(b.usable_for_private_5g());
}

TEST(BandTest, LookupUnknown) {
  EXPECT_FALSE(find_band("n999").has_value());
  EXPECT_TRUE(find_band("n41").has_value());
}

TEST(BandTest, FddOnlyBelow2600MHz) {
  // §2: "FDD is only supported in sub-2.6 GHz bands".
  for (const Band& b : known_bands()) {
    if (b.duplex == DuplexMode::FDD) {
      EXPECT_LT(b.f_high_mhz, 2700.0) << b.name;
      EXPECT_FALSE(b.usable_for_private_5g()) << b.name;
    }
  }
}

TEST(BandTest, Fr2BandsAreMmWave) {
  for (const Band& b : known_bands()) {
    if (b.fr == FrequencyRange::FR2) {
      EXPECT_GT(b.f_low_mhz, 24'000.0) << b.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Modulation / MCS

TEST(McsTest, TableShape) {
  const auto table = mcs_table();
  ASSERT_EQ(table.size(), 29u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].index, static_cast<int>(i));
    EXPECT_GT(table[i].rate_x1024, 0);
    EXPECT_LT(table[i].rate_x1024, 1024);
  }
}

TEST(McsTest, SpectralEfficiencyMonotone) {
  // Bits per RE grows with the MCS index — except for the standard's own
  // tiny dip at the 16QAM->64QAM switch (MCS 16: 2.5703, MCS 17: 2.5664 in
  // TS 38.214 Table 5.1.3.1-1), which we reproduce faithfully.
  const auto table = mcs_table();
  for (std::size_t i = 1; i < table.size(); ++i) {
    const bool modulation_switch = table[i].modulation != table[i - 1].modulation;
    const double slack = modulation_switch ? 0.01 : 0.0;
    EXPECT_GE(table[i].bits_per_re() + slack, table[i - 1].bits_per_re()) << "at index " << i;
  }
}

TEST(McsTest, LookupAndBounds) {
  EXPECT_EQ(mcs(0).modulation, Modulation::QPSK);
  EXPECT_EQ(mcs(28).modulation, Modulation::QAM64);
  EXPECT_THROW(static_cast<void>(mcs(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(mcs(29)), std::out_of_range);
}

TEST(McsTest, HighestBelowRate) {
  const McsEntry e = highest_mcs_below_rate(0.5);
  EXPECT_LT(e.code_rate(), 0.5);
  // It must not be beaten by any other sub-0.5 entry.
  for (const McsEntry& cand : mcs_table()) {
    if (cand.code_rate() < 0.5) EXPECT_LE(cand.bits_per_re(), e.bits_per_re());
  }
}

TEST(ModulationTest, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::QPSK), 2);
  EXPECT_EQ(bits_per_symbol(Modulation::QAM256), 8);
  EXPECT_EQ(to_string(Modulation::QAM64), "64QAM");
}

// ---------------------------------------------------------------------------
// Transport blocks

TEST(TransportBlockTest, DataReCount) {
  const Allocation a{.n_prb = 10, .n_symbols = 14, .n_layers = 1, .dmrs_overhead_re = 12};
  EXPECT_EQ(data_re_count(a), 10 * (12 * 14 - 12));
  EXPECT_EQ(data_re_count(Allocation{.n_prb = 0, .n_symbols = 14}), 0);
  EXPECT_EQ(data_re_count(Allocation{.n_prb = 5, .n_symbols = 0}), 0);
}

TEST(TransportBlockTest, TbsMonotoneInResources) {
  const McsEntry m = mcs(10);
  int prev = 0;
  for (int prb = 1; prb <= 50; prb += 7) {
    const int tbs = transport_block_size_bits(Allocation{.n_prb = prb, .n_symbols = 14}, m);
    EXPECT_GE(tbs, prev);
    prev = tbs;
  }
}

TEST(TransportBlockTest, TbsMonotoneInMcs) {
  // Monotone in MCS index, modulo the standard's own efficiency dip at the
  // 16QAM->64QAM switch (see McsTest.SpectralEfficiencyMonotone).
  const Allocation a{.n_prb = 20, .n_symbols = 14};
  int prev = 0;
  for (int i = 0; i < 29; ++i) {
    const int tbs = transport_block_size_bits(a, mcs(i));
    const bool modulation_switch = i > 0 && mcs(i).modulation != mcs(i - 1).modulation;
    const int slack = modulation_switch ? data_re_count(a) / 50 : 0;  // ~0.02 bit/RE
    EXPECT_GE(tbs + slack, prev) << "MCS " << i;
    prev = tbs;
  }
}

TEST(TransportBlockTest, TbsByteAligned) {
  for (int prb : {1, 3, 17, 51}) {
    const int tbs = transport_block_size_bits(Allocation{.n_prb = prb, .n_symbols = 14}, mcs(15));
    EXPECT_EQ(tbs % 8, 0) << prb;
  }
}

TEST(TransportBlockTest, SegmentationBoundaries) {
  EXPECT_EQ(segment_transport_block(0).n_code_blocks, 0);
  EXPECT_EQ(segment_transport_block(100).n_code_blocks, 1);
  EXPECT_EQ(segment_transport_block(kMaxCodeBlockBits - 24).n_code_blocks, 1);
  EXPECT_GE(segment_transport_block(kMaxCodeBlockBits).n_code_blocks, 2);
  const auto seg = segment_transport_block(100'000);
  EXPECT_GE(seg.n_code_blocks * seg.bits_per_block, 100'000 + 24);
  EXPECT_LE(seg.bits_per_block, kMaxCodeBlockBits);
}

class PrbsNeededTest : public ::testing::TestWithParam<int> {};

TEST_P(PrbsNeededTest, AllocationFitsPayload) {
  const int payload = GetParam();
  const McsEntry m = mcs(15);
  const int prb = prbs_needed(payload, 14, m);
  ASSERT_GT(prb, 0);
  // The chosen PRB count fits, one fewer does not.
  EXPECT_GE(transport_block_size_bits(Allocation{.n_prb = prb, .n_symbols = 14}, m), payload * 8);
  if (prb > 1) {
    EXPECT_LT(transport_block_size_bits(Allocation{.n_prb = prb - 1, .n_symbols = 14}, m),
              payload * 8);
  }
}

INSTANTIATE_TEST_SUITE_P(Payloads, PrbsNeededTest, ::testing::Values(16, 64, 200, 1500, 9000));

TEST(PrbsNeededTest, ImpossibleReturnsZero) {
  EXPECT_EQ(prbs_needed(1'000'000, 2, mcs(0), 20), 0);
}

// ---------------------------------------------------------------------------
// Channel

TEST(LinkModelTest, BlerMonotoneInSnr) {
  const McsEntry m = mcs(15);
  double prev = 1.0;
  for (double snr = -10.0; snr <= 40.0; snr += 2.0) {
    const double b = LinkModel{snr}.bler(m);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(LinkModelTest, HalfAtThreshold) {
  const McsEntry m = mcs(10);
  LinkModel link{LinkModel::threshold_db(m)};
  EXPECT_NEAR(link.bler(m), 0.5, 1e-9);
}

TEST(LinkModelTest, ThresholdGrowsWithEfficiency) {
  EXPECT_LT(LinkModel::threshold_db(mcs(0)), LinkModel::threshold_db(mcs(15)));
  EXPECT_LT(LinkModel::threshold_db(mcs(15)), LinkModel::threshold_db(mcs(28)));
}

TEST(LinkModelTest, HighSnrDeliversReliably) {
  const McsEntry m = mcs(5);
  LinkModel link{LinkModel::threshold_db(m) + 12.0};
  Rng rng(3);
  int ok = 0;
  for (int i = 0; i < 10'000; ++i) ok += link.transmit_ok(m, rng) ? 1 : 0;
  EXPECT_GT(ok, 9990);
}

TEST(MmWaveBlockageTest, LosFractionMatchesParams) {
  MmWaveBlockage::Params p;
  MmWaveBlockage b{p, Rng{17}};
  EXPECT_NEAR(b.los_fraction(), 400.0 / 550.0, 1e-9);
  // Empirically: delivery over a long horizon approaches LoS fraction
  // (blocked transmissions almost always fail).
  int ok = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) ok += b.transmit_ok(Nanos{static_cast<std::int64_t>(i) * 1'000'000}) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ok) / kN, b.los_fraction(), 0.1);
}

TEST(ChannelTest, PropagationDelay) {
  EXPECT_EQ(propagation_delay(299.792458).count(), 1'000);  // ~300 m -> 1 µs
  EXPECT_EQ(propagation_delay(0.0).count(), 0);
}

// ---------------------------------------------------------------------------
// Samples / PHY timing

TEST(SampleRateTest, Conversions) {
  const SampleRate sr{};  // 23.04 Msps, 4 B/sample
  EXPECT_EQ(sr.samples_in(1_ms), 23'040);
  EXPECT_EQ(sr.samples_per_slot(kMu1), 11'520);
  EXPECT_EQ(sr.bytes_of(1000), 4'000);
  EXPECT_EQ(sr.duration_of(23'040), 1_ms);
}

TEST(PhyTimingTest, ScalesWithCodeBlocks) {
  const PhyTimingModel m;
  const Nanos small = m.decode_time(1'000);
  const Nanos large = m.decode_time(100'000);
  EXPECT_GT(large, small);
  // 100k bits -> 13 code blocks; decode grows accordingly.
  EXPECT_GE((large - small).count(), 10 * m.params().decode_per_cb.count());
}

TEST(PhyTimingTest, HarqCombiningCostsMore) {
  const PhyTimingModel m;
  EXPECT_GT(m.decode_time(5'000, true), m.decode_time(5'000, false));
}

TEST(PhyTimingTest, AsicIsFaster) {
  const PhyTimingModel sw{PhyTimingParams::software_i7()};
  const PhyTimingModel hw{PhyTimingParams::asic()};
  EXPECT_LT(hw.encode_time(8'000), sw.encode_time(8'000));
  EXPECT_LT(hw.decode_time(8'000), sw.decode_time(8'000));
}

}  // namespace
}  // namespace u5g
