// Burst loss vs i.i.d. loss at matched average BLER: how many reliability
// nines does the i.i.d. assumption overstate?
//
// URLLC analyses (and StackConfig::channel_loss) like to model the channel
// as an i.i.d. Bernoulli loss per transmission. Measured radio failures
// cluster — fading dwells, interference bursts, blockage — and clustering is
// exactly what defeats HARQ: the retransmission lands in the same bad state
// that killed the first attempt. This bench runs the §5 viable design under
// (a) i.i.d. loss and (b) a Gilbert–Elliott burst process with the *same*
// long-run average loss, and reports the reliability-nines-vs-deadline curve
// for each. Headline: at the 0.5 ms deadline the burst channel delivers
// strictly fewer nines than i.i.d. — average BLER is not a sufficient
// statistic for URLLC reliability.
//
// A third case layers the other fault kinds (OS-jitter storm, radio-bus
// stall, UPF outage windows) on top of the burst channel, exercising every
// scenario type of src/fault/ in one run; `--strict` asserts the headline
// separation, the loss-accounting invariant, and that every fault kind
// actually fired.

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/e2e_system.hpp"
#include "core/reliability.hpp"
#include "sim/runner.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr double kAvgLoss = 0.05;       ///< matched long-run average BLER
constexpr double kMeanBurstTx = 8.0;    ///< GE mean bad-state dwell (transmissions)
constexpr double kBadLoss = 0.75;       ///< GE bad-state loss probability
constexpr std::size_t kHeadline = 2;    ///< index of the 0.5 ms deadline below

const std::vector<Nanos> kDeadlines = {Nanos{300'000},   Nanos{400'000},   Nanos{500'000},
                                       Nanos{750'000},   Nanos{1'000'000}, Nanos{1'500'000},
                                       Nanos{2'000'000}, Nanos{3'000'000}};

/// Mergeable per-replication outcome: latency samples plus the loss
/// accounting that backs the `--strict` invariant.
struct RunResult {
  SampleSet lat;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t harq_dropped = 0;
  std::uint64_t stranded = 0;
  FaultInjector::Counters faults{};

  void merge(const RunResult& o) {
    lat.merge(o.lat);
    offered += o.offered;
    delivered += o.delivered;
    harq_dropped += o.harq_dropped;
    stranded += o.stranded;
    faults.burst_losses += o.faults.burst_losses;
    faults.storm_spikes += o.faults.storm_spikes;
    faults.bus_stalls += o.faults.bus_stalls;
    faults.upf_drops += o.faults.upf_drops;
    faults.upf_delays += o.faults.upf_delays;
  }
};

/// The §5 viable design pushed to µ3 with fast HARQ feedback (25 µs — NACK
/// inferred without a PUCCH round trip), so the loss-free path lands well
/// under 0.5 ms and one retransmission still fits inside the deadline: the
/// regime where burstiness, not average BLER, decides survival.
StackConfig base_config(std::uint64_t seed) {
  StackConfig cfg = StackConfig::urllc_design(seed);
  cfg.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::mu(kMu3));
  cfg.cg = ConfiguredGrantConfig::every_symbol(256, 2);
  cfg.sched.radio_lead = Nanos{80'000};
  cfg.sched.margin = Nanos{25'000};
  cfg.sched.ue_min_prep = Nanos{50'000};
  cfg.gnb_proc = ProcessingProfile::asic();
  cfg.ue_proc = ProcessingProfile::asic();
  cfg.upf.backhaul_latency = Nanos{10'000};
  cfg.harq_feedback_delay = Nanos{25'000};
  return cfg;
}

RunResult run_one(const std::vector<FaultScenario>& faults, int packets, std::uint64_t seed) {
  StackConfig cfg = base_config(seed);
  cfg.faults = faults;
  E2eSystem sys(std::move(cfg));

  Rng jitter(seed + 1);
  const Nanos spacing = 2_ms;
  for (int i = 0; i < packets; ++i) {
    sys.send_uplink_at(spacing * i + Nanos{static_cast<std::int64_t>(jitter.uniform() * 5e5)});
  }
  sys.run_until(spacing * (packets + 200));

  RunResult r;
  r.lat = sys.latency_samples_us(Direction::Uplink);
  r.offered = static_cast<std::uint64_t>(packets);
  r.delivered = sys.packets_delivered();
  r.harq_dropped = sys.harq_dropped_tbs();
  r.stranded = sys.stranded_drops();
  r.faults = sys.fault_counters();
  return r;
}

RunResult run_case(const std::vector<FaultScenario>& faults, std::uint64_t root_seed,
                   const BenchOptions& opt) {
  return merge_replications(run_replications(
      opt.trials, root_seed,
      [&](int i, std::uint64_t seed) {
        return run_one(faults, split_evenly(opt.packets, opt.trials, i), seed);
      },
      {opt.threads}));
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 4000;
  defaults.trials = 8;
  defaults.seed = 500;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  struct Case {
    const char* name;
    std::vector<FaultScenario> faults;
  };
  const Case cases[] = {
      {"iid", {FaultScenario::burst_loss(GilbertElliott::Params::iid(kAvgLoss))}},
      {"burst",
       {FaultScenario::burst_loss(
           GilbertElliott::Params::matched_average(kAvgLoss, kMeanBurstTx, kBadLoss))}},
      {"burst+storms",
       {FaultScenario::burst_loss(
            GilbertElliott::Params::matched_average(kAvgLoss, kMeanBurstTx, kBadLoss)),
        FaultScenario::os_jitter_storm(FaultWindow::periodic(50_ms, 2_ms, 250_ms)),
        FaultScenario::radio_bus_stall(FaultWindow::periodic(120_ms, 1_ms, 400_ms),
                                       Nanos{60'000}),
        FaultScenario::upf_outage(FaultWindow::periodic(200_ms, 3_ms, 500_ms), 0.5,
                                  Nanos{150'000})}},
  };

  std::printf("== Fault injection: burst loss vs i.i.d. at matched average BLER ==\n\n");
  std::printf("§5-style design (µ3 MU, grant-free, ASIC+PCIe+RT), UL every 2 ms, fast HARQ\n");
  std::printf("feedback; average loss %.1f%% in every case; GE bursts: mean %.0f tx at %.0f%%.\n",
              kAvgLoss * 100, kMeanBurstTx, kBadLoss * 100);
  std::printf("(%d packets over %d replications per case, root seed %llu, %d threads)\n\n",
              opt.packets, opt.trials, static_cast<unsigned long long>(opt.seed),
              resolve_threads(opt.threads));

  std::printf("   nines of reliability (fraction of offered delivered in time):\n");
  std::printf("   %-14s", "deadline[ms]");
  for (const Nanos d : kDeadlines) std::printf(" %7.2f", d.ms());
  std::printf("\n");

  std::vector<RunResult> results;
  std::vector<std::vector<NinesPoint>> curves;
  for (const Case& c : cases) {
    // Same root seed per case: the simulation stream is identical, only the
    // fault scenarios differ — a paired comparison.
    RunResult r = run_case(c.faults, opt.seed, opt);
    curves.push_back(nines_vs_deadline(r.lat, static_cast<std::size_t>(r.offered), kDeadlines));
    std::printf("   %-14s", c.name);
    for (const NinesPoint& p : curves.back()) std::printf(" %7.2f", p.nines);
    std::printf("\n");
    results.push_back(std::move(r));
  }

  const double iid_nines = curves[0][kHeadline].nines;
  const double burst_nines = curves[1][kHeadline].nines;
  std::printf("\nheadline @ %.2f ms: i.i.d. %.2f nines vs burst %.2f nines — matched average\n"
              "BLER, yet the burst channel loses %.2f nines: the i.i.d. assumption\n"
              "overstates achievable URLLC reliability.\n",
              kDeadlines[kHeadline].ms(), iid_nines, burst_nines, iid_nines - burst_nines);

  // Loss accounting: every offered packet ends in exactly one bucket.
  bool accounting_ok = true;
  for (const RunResult& r : results) {
    accounting_ok &= r.offered == r.delivered + r.harq_dropped + r.stranded + r.faults.upf_drops;
  }
  std::printf("loss accounting (offered == delivered + harq + stranded + upf): %s\n",
              accounting_ok ? "OK" : "VIOLATED");

  if (opt.json) {
    std::FILE* f = std::fopen(opt.json->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_fault: cannot write %s\n", opt.json->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_fault\",\n  \"packets\": %d,\n  \"trials\": %d,\n",
                 opt.packets, opt.trials);
    std::fprintf(f, "  \"seed\": %llu,\n  \"avg_loss\": %s,\n",
                 static_cast<unsigned long long>(opt.seed), fmt3(kAvgLoss).c_str());
    std::fprintf(f, "  \"deadlines_ms\": [");
    for (std::size_t i = 0; i < kDeadlines.size(); ++i) {
      std::fprintf(f, "%s%s", i ? ", " : "", fmt2(kDeadlines[i].ms()).c_str());
    }
    std::fprintf(f, "],\n  \"cases\": [\n");
    for (std::size_t i = 0; i < std::size(cases); ++i) {
      const RunResult& r = results[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"offered\": %llu, \"delivered\": %llu,\n",
                   cases[i].name, static_cast<unsigned long long>(r.offered),
                   static_cast<unsigned long long>(r.delivered));
      std::fprintf(f, "     \"harq_dropped\": %llu, \"stranded\": %llu, \"upf_drops\": %llu,\n",
                   static_cast<unsigned long long>(r.harq_dropped),
                   static_cast<unsigned long long>(r.stranded),
                   static_cast<unsigned long long>(r.faults.upf_drops));
      std::fprintf(f, "     \"nines\": [");
      for (std::size_t j = 0; j < curves[i].size(); ++j) {
        std::fprintf(f, "%s%s", j ? ", " : "", fmt2(curves[i][j].nines).c_str());
      }
      std::fprintf(f, "]}%s\n", i + 1 < std::size(cases) ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"headline\": {\"deadline_ms\": %s, \"iid_nines\": %s, ",
                 fmt2(kDeadlines[kHeadline].ms()).c_str(), fmt2(iid_nines).c_str());
    std::fprintf(f, "\"burst_nines\": %s, \"iid_overstates\": %s}\n}\n",
                 fmt2(burst_nines).c_str(), burst_nines < iid_nines ? "true" : "false");
    std::fclose(f);
  }

  if (opt.strict) {
    bool ok = true;
    if (!(burst_nines < iid_nines)) {
      std::fprintf(stderr, "strict: burst nines (%.2f) not below iid nines (%.2f)\n",
                   burst_nines, iid_nines);
      ok = false;
    }
    if (!accounting_ok) {
      std::fprintf(stderr, "strict: loss accounting violated\n");
      ok = false;
    }
    const FaultInjector::Counters& fc = results[2].faults;
    if (fc.burst_losses == 0 || fc.storm_spikes == 0 || fc.bus_stalls == 0 ||
        (fc.upf_drops == 0 && fc.upf_delays == 0)) {
      std::fprintf(stderr, "strict: a configured fault kind never fired "
                           "(burst %llu, storms %llu, stalls %llu, upf %llu+%llu)\n",
                   static_cast<unsigned long long>(fc.burst_losses),
                   static_cast<unsigned long long>(fc.storm_spikes),
                   static_cast<unsigned long long>(fc.bus_stalls),
                   static_cast<unsigned long long>(fc.upf_drops),
                   static_cast<unsigned long long>(fc.upf_delays));
      ok = false;
    }
    std::printf("strict self-checks: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
  }
  return 0;
}
