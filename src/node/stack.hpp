#pragma once
// Node stack compositions: everything a gNB or UE owns, wired together.
// The end-to-end system (core/e2e_system) drives these on the simulated
// clock; the entities here do the actual protocol work (headers, ciphering,
// segmentation) so the integration path exercises every substrate.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/rng.hpp"
#include "mac/harq.hpp"
#include "os/proc_time.hpp"
#include "pdcp/pdcp_entity.hpp"
#include "phy/phy_timing.hpp"
#include "radio/radio_head.hpp"
#include "rlc/rlc_entity.hpp"
#include "sdap/sdap_entity.hpp"

namespace u5g {

/// Per-direction bearer chain: PDCP + RLC transmit and receive halves.
/// The TX half lives on the sender of that direction, the RX half on the
/// receiver; both ends construct the same BearerChain shape (keyed by the
/// same security context) and use the half that applies.
struct BearerChain {
  explicit BearerChain(RlcMode mode, PdcpConfig pdcp_cfg = {})
      : pdcp_tx(pdcp_cfg), pdcp_rx(pdcp_cfg), rlc_tx(mode), rlc_rx(mode) {}

  PdcpTx pdcp_tx;
  PdcpRx pdcp_rx;
  RlcTx rlc_tx;
  RlcRx rlc_rx;
};

/// The PDCP configuration both ends of a UE's bearer must share.
[[nodiscard]] inline PdcpConfig bearer_pdcp_config(std::uint32_t ue, bool downlink) {
  return PdcpConfig{.sn_bits = 12,
                    .integrity_enabled = true,
                    .security = CipherContext{.key = 0x5deece66d2b4a1c9ULL ^ ue,
                                              .bearer = ue,
                                              .downlink = downlink}};
}

/// The compute-and-radio side of a node (shared across its bearers).
struct NodeCompute {
  NodeCompute(ProcessingProfile proc_profile, RadioHeadParams radio_params,
              PhyTimingParams phy_params, Rng rng)
      : proc(proc_profile, rng.fork()), radio(radio_params, rng.fork()), phy(phy_params) {}

  ProcessingModel proc;
  RadioHead radio;
  PhyTimingModel phy;
  SdapEntity sdap;
  HarqEntity harq;
};

/// One node's full stack state: compute plus its bearer chains. A UE has
/// exactly one UL and one DL chain; a gNB constructs one pair per attached
/// UE (`peer_count`).
struct NodeStack {
  /// `first_peer_id` keys the security contexts: a gNB builds chains for
  /// UE ids [first_peer_id, first_peer_id + peer_count); a UE builds its
  /// single pair with its own id so both ends agree.
  NodeStack(ProcessingProfile proc_profile, RadioHeadParams radio_params,
            PhyTimingParams phy_params, RlcMode rlc_mode, Rng rng, int peer_count = 1,
            std::uint32_t first_peer_id = 1)
      : compute(proc_profile, radio_params, phy_params, rng.fork()) {
    uplink_chains.reserve(static_cast<std::size_t>(peer_count));
    downlink_chains.reserve(static_cast<std::size_t>(peer_count));
    for (int ue = 0; ue < peer_count; ++ue) {
      const auto id = first_peer_id + static_cast<std::uint32_t>(ue);
      uplink_chains.emplace_back(rlc_mode, bearer_pdcp_config(id, false));
      downlink_chains.emplace_back(rlc_mode, bearer_pdcp_config(id, true));
    }
    // Warm the calling thread's buffer pool: typical URLLC payloads plus
    // their header stacks land in the 512-byte class, transport blocks in
    // the 1-2 KiB classes, so even the first packet through these chains
    // acquires recycled blocks rather than hitting the heap.
    BufferPool::local().prefill(512, static_cast<std::size_t>(peer_count) * 2);
    BufferPool::local().prefill(2048, 2);
  }

  [[nodiscard]] BearerChain& uplink(std::size_t peer = 0) { return uplink_chains[peer]; }
  [[nodiscard]] BearerChain& downlink(std::size_t peer = 0) { return downlink_chains[peer]; }

  NodeCompute compute;
  std::vector<BearerChain> uplink_chains;    ///< UE transmits, gNB receives
  std::vector<BearerChain> downlink_chains;  ///< gNB transmits, UE receives

  // Convenience for single-peer nodes (a UE).
  ProcessingModel& proc_model() { return compute.proc; }
};

}  // namespace u5g
