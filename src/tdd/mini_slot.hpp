#pragma once
// Mini-Slot configuration (paper §2, Fig 1b; TR 38.912).
//
// The gNB uses the first symbol(s) of each mini-slot to announce the
// characterization of the remaining symbols, so any mini-slot can be turned
// into DL or UL on demand. For single-flow latency analysis that makes every
// symbol *capable* of either direction, with decisions at mini-slot
// granularity and one control symbol of overhead per mini-slot — finer
// allocation bought with signalling overhead (§9 discusses the scalability
// cost).

#include <stdexcept>
#include <string>

#include "tdd/duplex_config.hpp"

namespace u5g {

class MiniSlotConfig final : public DuplexConfig {
 public:
  /// `mini_slot_symbols`: 2, 4 or 7 per TR 38.912.
  explicit MiniSlotConfig(Numerology num, int mini_slot_symbols = 2)
      : DuplexConfig(num), len_(mini_slot_symbols) {
    if (len_ != 2 && len_ != 4 && len_ != 7)
      throw std::invalid_argument{"MiniSlotConfig: mini-slot length must be 2, 4 or 7 symbols"};
  }

  [[nodiscard]] bool dl_capable(SlotIndex, int) const override { return true; }
  [[nodiscard]] bool ul_capable(SlotIndex, int) const override { return true; }
  [[nodiscard]] int period_slots() const override { return 1; }
  [[nodiscard]] int control_granularity_symbols() const override { return len_; }
  [[nodiscard]] int control_symbols() const override { return 1; }
  [[nodiscard]] std::string name() const override {
    return "MiniSlot(" + std::to_string(len_) + "sym)";
  }

  /// The standard's recommendation (TR 38.912; paper §5): mini-slot is
  /// targeted at slot durations of at least 0.5 ms. Using it with shorter
  /// slots "goes against the standard's recommendation" — the paper flags
  /// this as needing practical evaluation. True when this instance violates
  /// the recommendation.
  [[nodiscard]] bool violates_standard_recommendation() const {
    return numerology().slot_duration() < Nanos{500'000};
  }

 private:
  int len_;
};

}  // namespace u5g
