// Differential property test: the analytic latency engine (core/latency_model)
// against the event simulation (core/e2e_system), over every Table 1 duplex
// configuration x every access mode x a sweep of arrival offsets.
//
// Both engines are built on the same opportunity primitives
// (tdd/opportunity.hpp), so with a zero-jitter stack — zero processing
// draws, free bus, no RF chain delay or receive floor, free core network,
// idealised scheduler — the simulated end-to-end latency must (a) never
// exceed the analytic worst case and (b) meet it: the bound is tight within
// one symbol at the worst arrival offset. Any drift between the two engines
// (a scheduler booking bug, an opportunity off-by-one-symbol, a stray
// latency floor) breaks one of these properties.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/e2e_system.hpp"
#include "core/feasibility.hpp"
#include "core/latency_model.hpp"
#include "radio/radio_head.hpp"

namespace u5g {
namespace {

constexpr AccessMode kModes[] = {AccessMode::GrantFreeUl, AccessMode::GrantBasedUl,
                                 AccessMode::Downlink};

/// The zero-jitter stack for `duplex` in access mode `mode`: protocol
/// geometry is the only latency source left, exactly what the analytic
/// idealised parameters describe.
StackConfig zero_jitter_config(std::shared_ptr<const DuplexConfig> duplex, AccessMode mode) {
  StackConfig cfg;
  cfg.duplex = std::move(duplex);
  cfg.sched = SchedulerParams::idealised();
  cfg.sched.ul_tx_symbols = 2;  // = LatencyModelParams::data_tx_symbols
  cfg.gnb_proc = ProcessingProfile::zero();
  cfg.ue_proc = ProcessingProfile::zero();
  cfg.gnb_radio = RadioHeadParams::ideal();
  cfg.ue_radio = RadioHeadParams::ideal();
  cfg.phy = PhyTimingParams{Nanos::zero(), Nanos::zero(), Nanos::zero(), Nanos::zero(), 0};
  cfg.upf = UpfParams{Nanos::zero(), Nanos::zero(), 0.0, Nanos::zero()};
  cfg.seed = 1;
  if (mode == AccessMode::GrantFreeUl) {
    cfg.grant_free = true;
    cfg.cg = ConfiguredGrantConfig::every_symbol(/*tb=*/256, /*symbols=*/2);
  } else if (mode == AccessMode::GrantBasedUl) {
    cfg.grant_free = false;
    cfg.sr = SrConfig::every_symbol();  // footnote 2: SR at any UL symbol
  }
  return cfg;
}

/// Arrival offsets within one period: every symbol boundary, the instant
/// just after it (the paper's "just after a slot starts" hazard), the
/// symbol midpoint, and the analytically-worst offset itself.
std::vector<Nanos> sweep_offsets(const DuplexConfig& cfg, Nanos worst_offset) {
  const Nanos sym = cfg.numerology().symbol_duration();
  const Nanos period = cfg.period();
  std::vector<Nanos> offsets;
  for (Nanos b = Nanos::zero(); b < period; b += sym) {
    offsets.push_back(b);
    offsets.push_back(b + Nanos{1});
    offsets.push_back(b + sym / 2);
  }
  offsets.push_back(worst_offset);
  return offsets;
}

struct SweepResult {
  std::vector<Nanos> sim;       ///< simulated latency per offset
  std::vector<Nanos> analytic;  ///< analytic latency at the same offset
  std::uint64_t upgraded = 0;   ///< dynamic-TDD slots upgraded during the run
};

/// One zero-jitter system per (config, mode); one packet per offset, each in
/// its own far-apart time slice so packets never interact. The stack is
/// fully deterministic here (zero draws, no losses), so each record's
/// latency is THE latency at its arrival offset.
SweepResult run_sweep(const std::shared_ptr<const DuplexConfig>& duplex, AccessMode mode,
                      const std::vector<Nanos>& offsets, bool dynamic_tdd = false) {
  const Nanos period = duplex->period();
  const Nanos spacing = period * 8;
  StackConfig cfg = zero_jitter_config(duplex, mode);
  cfg.dynamic_tdd.enabled = dynamic_tdd;
  E2eSystem sys(cfg);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const Nanos at = spacing * static_cast<std::int64_t>(i + 1) + offsets[i];
    if (mode == AccessMode::Downlink) {
      sys.send_downlink_at(at);
    } else {
      sys.send_uplink_at(at);
    }
  }
  sys.run_until(spacing * static_cast<std::int64_t>(offsets.size() + 4));

  SweepResult r;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const PacketRecord& rec = sys.records()[i];
    EXPECT_TRUE(rec.ok) << to_string(mode) << " offset " << offsets[i].count() << "ns undelivered";
    r.sim.push_back(rec.ok ? rec.latency() : Nanos::max());
    r.analytic.push_back(trace_transmission(*duplex, mode, rec.created).latency());
  }
  r.upgraded = sys.dynamic_upgraded_slots();
  return r;
}

TEST(AnalyticVsSimTest, Table1SweepBoundHoldsAndIsTight) {
  for (auto& owned : table1_configs()) {
    const std::shared_ptr<const DuplexConfig> duplex{std::move(owned)};
    const Nanos sym = duplex->numerology().symbol_duration();
    for (AccessMode mode : kModes) {
      SCOPED_TRACE(duplex->name() + std::string{" / "} + to_string(mode));
      const WorstCaseResult wc = analyze_worst_case(*duplex, mode);
      ASSERT_TRUE(wc.feasible);

      const std::vector<Nanos> offsets = sweep_offsets(*duplex, wc.worst_arrival_offset);
      const SweepResult r = run_sweep(duplex, mode, offsets);

      Nanos sim_worst = Nanos::zero();
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        // (a) The analytic worst case upper-bounds the zero-jitter sim at
        // every offset (our probe points are a subset of the analyzer's).
        EXPECT_LE(r.sim[i].count(), wc.worst.count())
            << "offset " << offsets[i].count() << "ns exceeds the analytic worst case";
        // Differential agreement: the two engines track each other to
        // within one symbol at every single offset.
        EXPECT_LE(std::abs((r.sim[i] - r.analytic[i]).count()), sym.count())
            << "offset " << offsets[i].count() << "ns: sim " << r.sim[i].count()
            << "ns vs analytic " << r.analytic[i].count() << "ns";
        sim_worst = std::max(sim_worst, r.sim[i]);
      }
      // (b) Tightness: at the worst offset the simulation comes within one
      // symbol of the bound — the analysis is not conservatively padded.
      EXPECT_GE(sim_worst.count(), (wc.worst - sym).count())
          << "analytic worst " << wc.worst.count() << "ns is not tight (sim max "
          << sim_worst.count() << "ns)";
    }
  }
}

// The dynamic-format policy with nothing but isolated single probes commits
// zero upgrades (demand requires *excess* backlog, never a lone packet), so
// the full Table 1 sweep passes the identical ≤1-symbol differential gate
// with the policy switched on: enabling it unloaded perturbs nothing.
TEST(AnalyticVsSimTest, DynamicPolicyIdleKeepsTable1SweepGate) {
  for (auto& owned : table1_configs()) {
    const std::shared_ptr<const DuplexConfig> duplex{std::move(owned)};
    const Nanos sym = duplex->numerology().symbol_duration();
    for (AccessMode mode : kModes) {
      SCOPED_TRACE(duplex->name() + std::string{" / "} + to_string(mode) + " / dynamic");
      const WorstCaseResult wc = analyze_worst_case(*duplex, mode);
      ASSERT_TRUE(wc.feasible);

      const std::vector<Nanos> offsets = sweep_offsets(*duplex, wc.worst_arrival_offset);
      const SweepResult r = run_sweep(duplex, mode, offsets, /*dynamic_tdd=*/true);

      EXPECT_EQ(0u, r.upgraded) << "an isolated probe must never trigger an upgrade";
      Nanos sim_worst = Nanos::zero();
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        EXPECT_LE(r.sim[i].count(), wc.worst.count())
            << "offset " << offsets[i].count() << "ns exceeds the static analytic worst case";
        EXPECT_LE(std::abs((r.sim[i] - r.analytic[i]).count()), sym.count())
            << "offset " << offsets[i].count() << "ns: sim " << r.sim[i].count()
            << "ns vs analytic " << r.analytic[i].count() << "ns";
        sim_worst = std::max(sim_worst, r.sim[i]);
      }
      EXPECT_GE(sim_worst.count(), (wc.worst - sym).count());
    }
  }
}

// Under load the policy does upgrade slots — and because committed formats
// only ever *add* capability on top of the static pattern (monotone
// relaxation), adaptive operation can shorten waits but never lengthen them:
// every probe stays under the static analytic worst case.
TEST(AnalyticVsSimTest, DynamicUpgradesNeverExceedStaticBound) {
  std::uint64_t total_upgrades = 0;
  for (auto& owned : table1_configs()) {
    const std::shared_ptr<const DuplexConfig> duplex{std::move(owned)};
    for (AccessMode mode : kModes) {
      SCOPED_TRACE(duplex->name() + std::string{" / "} + to_string(mode) + " / primed");
      const WorstCaseResult wc = analyze_worst_case(*duplex, mode);
      ASSERT_TRUE(wc.feasible);
      const Nanos period = duplex->period();

      StackConfig cfg = zero_jitter_config(duplex, mode);
      cfg.dynamic_tdd.enabled = true;
      E2eSystem sys(cfg);
      const auto inject = [&](Nanos at) {
        if (mode == AccessMode::Downlink) {
          sys.send_downlink_at(at);
        } else {
          sys.send_uplink_at(at);
        }
      };

      // Prime: a near-simultaneous burst at the worst arrival offset queues
      // across slot boundaries, so decision ticks observe excess backlog.
      constexpr int kBurst = 8;
      for (int i = 0; i < kBurst; ++i) inject(wc.worst_arrival_offset + Nanos{i});
      // Probes in post-drain gaps: the analytic worst case describes a lone
      // packet, so every probe sits well past the burst's drain (8 packets
      // serve in < 16 periods even fully serialised) and 8 periods apart.
      std::vector<Nanos> probes;
      for (int k = 0; k < 4; ++k) {
        probes.push_back(period * (24 + 8 * k) + wc.worst_arrival_offset);
      }
      for (const Nanos at : probes) inject(at);
      sys.run_until(period * 64);

      for (std::size_t p = 0; p < probes.size(); ++p) {
        const PacketRecord& rec = sys.records()[static_cast<std::size_t>(kBurst) + p];
        ASSERT_TRUE(rec.ok) << "probe " << p << " undelivered";
        EXPECT_LE(rec.latency().count(), wc.worst.count())
            << "probe at " << rec.created.count()
            << "ns exceeds the static analytic worst case under the dynamic policy";
      }
      total_upgrades += sys.dynamic_upgraded_slots();
    }
  }
  // The sweep as a whole must have exercised real upgrades (FDD alone cannot:
  // there is nothing to add to an all-capable pattern).
  EXPECT_GT(total_upgrades, 0u);
}

// The idealised radio really is free: no hidden floors survive in the
// receive path (this is what makes the exact agreement above possible).
TEST(AnalyticVsSimTest, IdealRadioHasNoHiddenReceiveFloor) {
  RadioHead rh(RadioHeadParams::ideal(), Rng(1));
  EXPECT_EQ(0, rh.rx_delivery_latency(4096).count());
  EXPECT_EQ(0, rh.nominal_tx_latency(4096).count());
  // The default B210 keeps its §7 behaviour: a positive receive-side floor.
  RadioHead b210(RadioHeadParams::usrp_b210_usb2(), Rng(1));
  EXPECT_GT(b210.rx_delivery_latency(4096).count(), 0);
}

}  // namespace
}  // namespace u5g
