#pragma once
// Analytical multi-UE latency model — §9's open problem, implemented:
// "a key research problem is how to mathematically model the latency for
// multiple UEs in the end-to-end 5G network stack."
//
// Model: N UEs offer Poisson traffic at per-UE rate λ. Uplink service is a
// slotted single server: the duplex configuration provides C transmission
// windows per second (each `tx_symbols` long, serialised — one UE per
// window, as the scheduler's booking does). The sojourn decomposes as
//
//     W  =  W_protocol + W_queue
//
// where W_protocol is the single-UE mean protocol latency (from the §5
// analytic engine: waiting for opportunities, SR/grant handshake) and
// W_queue is the M/D/1 waiting time of the contention queue:
//
//     ρ = N λ / C,          W_queue = ρ / (2 C (1 − ρ)).
//
// Validity: ρ < 1; accuracy degrades near saturation (the simulation is the
// referee — see MultiUeModelTest.MatchesSimulation).

#include <memory>

#include "core/latency_model.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// Capacity of a duplex configuration's uplink: how many non-overlapping
/// `tx_symbols`-long transmission windows exist per second (serialised
/// back-to-back within UL regions).
[[nodiscard]] double ul_windows_per_second(const DuplexConfig& cfg, int tx_symbols);

struct MultiUeModelInput {
  int num_ues = 1;
  double per_ue_packets_per_second = 100.0;
  int tx_symbols = 2;
  AccessMode mode = AccessMode::GrantFreeUl;
  LatencyModelParams params{};
};

struct MultiUeModelResult {
  double utilisation = 0.0;        ///< ρ
  Nanos protocol_mean{};           ///< single-UE mean from the analytic engine
  Nanos queue_wait_mean{};         ///< M/D/1 waiting time
  Nanos total_mean{};              ///< protocol + queue
  bool stable = true;              ///< ρ < 1
  double capacity_windows_per_s = 0.0;
};

/// Closed-form prediction of the mean uplink latency for N UEs.
[[nodiscard]] MultiUeModelResult predict_multi_ue_latency(const DuplexConfig& cfg,
                                                          const MultiUeModelInput& in);

}  // namespace u5g
