#pragma once
// Ring-buffer deque: FIFO over a power-of-two circular array.
//
// `std::deque` allocates and frees fixed-size chunks as elements flow
// through; a queue that oscillates around a chunk boundary (an RLC transmit
// queue at steady state) pays a heap round trip per packet. RingDeque keeps
// one contiguous array and wraps indices, so a warm queue never allocates —
// capacity only ever grows, to the high-water mark of the run.

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace u5g {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;
  RingDeque(RingDeque&& o) noexcept
      : slots_(o.slots_), capacity_(o.capacity_), head_(o.head_), size_(o.size_) {
    o.slots_ = nullptr;
    o.capacity_ = 0;
    o.head_ = 0;
    o.size_ = 0;
  }
  RingDeque& operator=(RingDeque&& o) noexcept {
    if (this != &o) {
      this->~RingDeque();
      ::new (this) RingDeque(std::move(o));
    }
    return *this;
  }
  ~RingDeque() {
    clear();
    ::operator delete(slots_);
  }

  template <typename... CtorArgs>
  T& emplace_back(CtorArgs&&... args) {
    if (size_ == capacity_) grow();
    T* slot = ::new (slots_ + ((head_ + size_) & (capacity_ - 1))) T(std::forward<CtorArgs>(args)...);
    ++size_;
    return *slot;
  }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_front() {
    slots_[head_].~T();
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  [[nodiscard]] T& front() { return slots_[head_]; }
  [[nodiscard]] const T& front() const { return slots_[head_]; }
  [[nodiscard]] T& operator[](std::size_t i) { return slots_[(head_ + i) & (capacity_ - 1)]; }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return slots_[(head_ + i) & (capacity_ - 1)];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    while (size_ > 0) pop_front();
  }

 private:
  void grow() {
    const std::size_t new_cap = capacity_ == 0 ? 8 : capacity_ * 2;
    T* bigger = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (bigger + i) T(std::move((*this)[i]));
      (*this)[i].~T();
    }
    ::operator delete(slots_);
    slots_ = bigger;
    capacity_ = new_cap;
    head_ = 0;
  }

  T* slots_ = nullptr;
  std::size_t capacity_ = 0;  ///< always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace u5g
