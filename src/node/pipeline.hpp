#pragma once
// Layer-traversal helper: walks a packet through a sequence of stack layers
// on the simulated clock, drawing each layer's processing time from the
// node's ProcessingModel and reporting every draw (the Table 2 measurement
// hook) before invoking the completion continuation.

#include <functional>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "os/proc_time.hpp"
#include "sim/simulator.hpp"

namespace u5g {

/// Asynchronously traverse `layers` in order starting now. `per_layer` fires
/// after each layer completes with (layer, sampled duration); `done` fires
/// once with the completion time.
inline void traverse_layers(Simulator& sim, ProcessingModel& proc, std::vector<Layer> layers,
                            std::function<void(Layer, Nanos)> per_layer,
                            std::function<void(Nanos)> done) {
  struct Walker : std::enable_shared_from_this<Walker> {
    Simulator& sim;
    ProcessingModel& proc;
    std::vector<Layer> layers;
    std::function<void(Layer, Nanos)> per_layer;
    std::function<void(Nanos)> done;
    std::size_t next = 0;

    Walker(Simulator& s, ProcessingModel& p, std::vector<Layer> l,
           std::function<void(Layer, Nanos)> pl, std::function<void(Nanos)> d)
        : sim(s), proc(p), layers(std::move(l)), per_layer(std::move(pl)), done(std::move(d)) {}

    void step() {
      if (next >= layers.size()) {
        done(sim.now());
        return;
      }
      const Layer layer = layers[next++];
      const Nanos dt = proc.sample(layer);
      auto self = shared_from_this();
      sim.schedule_after(dt, [self, layer, dt] {
        if (self->per_layer) self->per_layer(layer, dt);
        self->step();
      });
    }
  };
  std::make_shared<Walker>(sim, proc, std::move(layers), std::move(per_layer), std::move(done))
      ->step();
}

}  // namespace u5g
