// Microbenchmarks of the library's own hot paths (google-benchmark): the
// event kernel, the protocol entities, the opportunity queries, and the
// analytic engine. These guard the simulator's performance — a full Fig 6
// run schedules hundreds of thousands of events.

#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "core/latency_model.hpp"
#include "pdcp/pdcp_entity.hpp"
#include "rlc/rlc_entity.hpp"
#include "sim/simulator.hpp"
#include "tdd/common_config.hpp"
#include "tdd/opportunity.hpp"

using namespace u5g;

namespace {

void BM_SimulatorScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(Nanos{i * 100}, [&fired] { ++fired; });
    }
    sim.run_until();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleFire);

void BM_PdcpProtectVerify(benchmark::State& state) {
  PdcpTx tx;
  PdcpRx rx;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ByteBuffer b(n, 0x42);
    tx.protect(b);
    int delivered = 0;
    rx.receive(std::move(b), [&](ByteBuffer&&, std::uint32_t) { ++delivered; });
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PdcpProtectVerify)->Arg(64)->Arg(1500);

void BM_RlcSegmentReassemble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RlcTx tx(RlcMode::UM);
    RlcRx rx(RlcMode::UM);
    tx.enqueue(ByteBuffer(n, 0x7), Nanos::zero());
    int delivered = 0;
    while (auto pdu = tx.pull(128)) {
      rx.receive(std::move(pdu->pdu), [&](ByteBuffer&&) { ++delivered; });
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RlcSegmentReassemble)->Arg(64)->Arg(4096);

void BM_NextUlTx(benchmark::State& state) {
  const TddCommonConfig cfg = TddCommonConfig::dm(kMu2);
  Nanos t{0};
  for (auto _ : state) {
    const auto w = next_ul_tx(cfg, t, 2);
    benchmark::DoNotOptimize(w);
    t = w ? w->start + Nanos{1} : Nanos{0};
    if (t > Nanos{1'000'000'000}) t = Nanos{0};
  }
}
BENCHMARK(BM_NextUlTx);

void BM_WorstCaseSweep(benchmark::State& state) {
  const TddCommonConfig cfg = TddCommonConfig::dm(kMu2);
  for (auto _ : state) {
    const auto wc = analyze_worst_case(cfg, AccessMode::GrantBasedUl, {});
    benchmark::DoNotOptimize(wc);
  }
}
BENCHMARK(BM_WorstCaseSweep);

}  // namespace

BENCHMARK_MAIN();
