#pragma once
// Chrome trace_event export: renders TraceSpans as the JSON Object Format
// consumed by chrome://tracing and Perfetto. Each traced packet becomes a
// "thread" (tid = packet seq) so its spans line up as one waterfall row;
// complete events ("ph":"X") carry microsecond timestamps/durations and the
// LatencyCategory as the event category.

#include <span>
#include <string>

#include "trace/trace.hpp"

namespace u5g {

/// Serialise spans to a chrome://tracing JSON document.
[[nodiscard]] std::string chrome_trace_json(std::span<const TraceSpan> spans,
                                            std::string_view process_name = "u5g");

/// Write chrome_trace_json(spans) to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path, std::span<const TraceSpan> spans,
                        std::string_view process_name = "u5g");

}  // namespace u5g
