#pragma once
// §5's feasibility analysis: which configurations meet the URLLC one-way
// deadline, for each access mode — the machinery behind Table 1.

#include <memory>
#include <string>
#include <vector>

#include "core/latency_model.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// Verdict for one (configuration, access mode) cell of Table 1.
struct FeasibilityCell {
  AccessMode mode{};
  WorstCaseResult worst_case;
  Nanos deadline{};
  bool meets_deadline = false;
};

/// One column of Table 1: a configuration with its three access-mode cells.
struct FeasibilityColumn {
  std::string config_name;
  std::string period_render;  ///< machine-readable Fig 1-style slot map
  std::vector<FeasibilityCell> cells;
  bool standards_caveat = false;  ///< e.g. mini-slot below the recommended slot duration

  [[nodiscard]] const FeasibilityCell& cell(AccessMode m) const;
};

/// Evaluate one configuration against `deadline` for all three access modes.
/// Thin wrapper over `FeasibilityService::shared().evaluate_column` (see
/// serve/feasibility_service.hpp) — the service is the one feasibility entry
/// point; this name survives for offline/batch callers and stays bit-identical
/// to the service's answers because it *is* the service's answer.
[[nodiscard]] FeasibilityColumn evaluate_config(const DuplexConfig& cfg, Nanos deadline,
                                                const LatencyModelParams& p = {});

/// The five §5 candidates at numerology µ2 (the only FR1 numerology that can
/// meet URLLC, per the paper's PHY analysis): DU, DM, MU, Mini-slot, FDD.
/// Owning handles + evaluated columns — Table 1 end to end. Wrapper over the
/// feasibility-query service, like `evaluate_config`.
struct Table1 {
  std::vector<FeasibilityColumn> columns;
};
[[nodiscard]] Table1 build_table1(Nanos deadline = kUrllcOneWayDeadline,
                                  const LatencyModelParams& p = {});

/// The five candidate configurations themselves (for tests/benches that need
/// the config objects rather than the verdicts).
[[nodiscard]] std::vector<std::unique_ptr<DuplexConfig>> table1_configs();

}  // namespace u5g
