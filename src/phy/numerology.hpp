#pragma once
// 5G NR numerology arithmetic (TS 38.211 §4).
//
// The numerology µ fixes the subcarrier spacing (15 kHz · 2^µ) and therefore
// the slot duration (1 ms / 2^µ). Every timing quantity in the system —
// symbol boundaries, TDD periods, scheduling opportunities — derives from it.
// This is the paper's first latency lever (§2): "higher numerologies are key
// enablers for low-latency communication in 5G."

#include <array>
#include <cstdint>
#include <stdexcept>

#include "common/time.hpp"

namespace u5g {

inline constexpr int kSymbolsPerSlot = 14;   // normal cyclic prefix
inline constexpr int kSubcarriersPerRb = 12;
inline constexpr Nanos kFrameDuration{10'000'000};     // 10 ms
inline constexpr Nanos kSubframeDuration{1'000'000};   // 1 ms

/// Frequency range per TS 38.104: FR1 is sub-6 GHz ("sub-6"), FR2 is mmWave.
enum class FrequencyRange { FR1, FR2 };

/// A 5G numerology µ in [0, 6].
///
/// Validity per the paper (§2): µ0–µ2 are FR1, µ2–µ6 are FR2. The slot
/// duration is exactly 1 ms / 2^µ and symbols divide the slot uniformly —
/// we model the normal-CP symbol-length variation (first symbol slightly
/// longer) as uniform, which shifts intra-slot boundaries by < 1 µs and
/// does not affect any slot-level conclusion.
class Numerology {
 public:
  constexpr explicit Numerology(int mu) : mu_(mu) {
    if (mu < 0 || mu > 6) throw std::invalid_argument{"Numerology: mu out of [0,6]"};
  }

  [[nodiscard]] constexpr int mu() const { return mu_; }
  [[nodiscard]] constexpr int scs_khz() const { return 15 << mu_; }
  [[nodiscard]] constexpr Nanos slot_duration() const { return Nanos{1'000'000 >> mu_}; }
  [[nodiscard]] constexpr Nanos symbol_duration() const {
    return Nanos{slot_duration().count() / kSymbolsPerSlot};
  }
  [[nodiscard]] constexpr int slots_per_subframe() const { return 1 << mu_; }
  [[nodiscard]] constexpr int slots_per_frame() const { return 10 * slots_per_subframe(); }

  /// Is this numerology usable in the given frequency range (paper §2)?
  [[nodiscard]] constexpr bool valid_in(FrequencyRange fr) const {
    return fr == FrequencyRange::FR1 ? mu_ <= 2 : mu_ >= 2;
  }

  friend constexpr auto operator<=>(Numerology, Numerology) = default;

 private:
  int mu_;
};

inline constexpr Numerology kMu0{0};  // 15 kHz,  1 ms slots
inline constexpr Numerology kMu1{1};  // 30 kHz,  0.5 ms slots
inline constexpr Numerology kMu2{2};  // 60 kHz,  0.25 ms slots (FR1 floor, §5)
inline constexpr Numerology kMu3{3};  // 120 kHz
inline constexpr Numerology kMu4{4};  // 240 kHz
inline constexpr Numerology kMu5{5};  // 480 kHz
inline constexpr Numerology kMu6{6};  // 960 kHz, 15.625 µs slots (paper §1, FR2)

/// All numerologies valid in `fr`, ascending µ.
[[nodiscard]] inline std::array<Numerology, 5> numerologies_in_fr2() {
  return {kMu2, kMu3, kMu4, kMu5, kMu6};
}
[[nodiscard]] inline std::array<Numerology, 3> numerologies_in_fr1() {
  return {kMu0, kMu1, kMu2};
}

}  // namespace u5g
