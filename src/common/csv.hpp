#pragma once
// Minimal CSV writer for the benchmark harnesses: every figure bench can
// dump its series as CSV (pass an output directory as argv[1]) so the
// paper's plots are regenerable with any plotting tool.

#include <fstream>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace u5g {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header) : out_(path) {
    if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
    columns_ = header.size();
    bool first = true;
    for (const std::string& h : header) {
      if (!first) out_ << ',';
      out_ << escape(h);
      first = false;
    }
    out_ << '\n';
  }

  /// One data row; must match the header's column count.
  void row(std::initializer_list<double> values) {
    if (values.size() != columns_)
      throw std::invalid_argument{"CsvWriter: column count mismatch"};
    bool first = true;
    for (double v : values) {
      if (!first) out_ << ',';
      out_ << v;
      first = false;
    }
    out_ << '\n';
  }

  /// Mixed row of pre-rendered cells.
  void row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_)
      throw std::invalid_argument{"CsvWriter: column count mismatch"};
    bool first = true;
    for (const std::string& c : cells) {
      if (!first) out_ << ',';
      out_ << escape(c);
      first = false;
    }
    out_ << '\n';
  }

 private:
  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    return q + "\"";
  }

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace u5g
