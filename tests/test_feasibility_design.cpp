// Tests for the Table 1 builder, the design-space explorer, and the
// reliability helpers.

#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "core/feasibility.hpp"
#include "tdd/slot_format.hpp"
#include "core/reliability.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Table 1 builder

TEST(Table1Test, FiveColumnsThreeCells) {
  const Table1 t = build_table1();
  ASSERT_EQ(t.columns.size(), 5u);
  for (const FeasibilityColumn& col : t.columns) {
    EXPECT_EQ(col.cells.size(), 3u);
    EXPECT_FALSE(col.period_render.empty());
  }
}

TEST(Table1Test, OnlyDmViableAmongMinimalTddForBothDirections) {
  // §5's headline: "only one configuration, DM, satisfies the latency
  // requirements of URLLC on both downlink and uplink for the grant-free
  // scenario" — among the minimal TDD Common Configurations.
  const Table1 t = build_table1();
  int viable_tdd = 0;
  std::string which;
  for (const FeasibilityColumn& col : t.columns) {
    if (col.config_name.find("TDD-Common") == std::string::npos) continue;
    const bool both = col.cell(AccessMode::GrantFreeUl).meets_deadline &&
                      col.cell(AccessMode::Downlink).meets_deadline;
    if (both) {
      ++viable_tdd;
      which = col.config_name;
    }
  }
  EXPECT_EQ(viable_tdd, 1);
  EXPECT_EQ(which, "TDD-Common(DM)");
}

TEST(Table1Test, MiniSlotCarriesStandardsCaveat) {
  const Table1 t = build_table1();
  bool found = false;
  for (const FeasibilityColumn& col : t.columns) {
    if (col.config_name.find("MiniSlot") != std::string::npos) {
      EXPECT_TRUE(col.standards_caveat);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Table1Test, UnknownModeThrows) {
  const Table1 t = build_table1();
  EXPECT_NO_THROW(t.columns.front().cell(AccessMode::Downlink));
}

TEST(Table1Test, LooserDeadlineFlipsVerdicts) {
  // At a 1 ms one-way deadline even DU's downlink (worst 0.75 ms) passes.
  const Table1 loose = build_table1(1_ms);
  for (const FeasibilityColumn& col : loose.columns) {
    if (col.config_name == "TDD-Common(DU)") {
      EXPECT_TRUE(col.cell(AccessMode::Downlink).meets_deadline);
    }
  }
}

TEST(Table1Test, TighterDeadlineKillsEverything) {
  // 50 µs one-way: nothing slot-based survives (even mini-slot needs ~70 µs).
  const Table1 tight = build_table1(Nanos{50'000});
  for (const FeasibilityColumn& col : tight.columns) {
    for (const FeasibilityCell& cell : col.cells) {
      EXPECT_FALSE(cell.meets_deadline) << col.config_name;
    }
  }
}

TEST(Table1Test, SlotFormatConfigsEvaluateThroughTheSameMachinery) {
  // The feasibility checker is config-agnostic: TS 38.213 slot-format
  // sequences slot directly in. Format 28 (DDDDDDDDDDDDFU) gives every slot
  // one UL symbol — grant-free UL becomes per-slot cheap while DL keeps the
  // full-slot cost.
  const SlotFormatConfig alternating{kMu2, {28}};
  // One UL symbol per slot: data transmissions must fit one symbol (the
  // default 2-symbol transmission has no contiguous window here).
  LatencyModelParams p;
  p.data_tx_symbols = 1;
  const FeasibilityColumn col = evaluate_config(alternating, 500_us, p);
  EXPECT_TRUE(col.cell(AccessMode::GrantFreeUl).meets_deadline);
  // Worst case for 1-symbol-per-slot UL: just under two slots.
  const auto gf = analyze_worst_case(alternating, AccessMode::GrantFreeUl, p);
  EXPECT_LT(gf.worst, 510_us);

  // A DL-only sequence is infeasible for uplink and says so.
  const SlotFormatConfig dl_only{kMu2, {0}};
  const FeasibilityColumn col2 = evaluate_config(dl_only, 500_us);
  EXPECT_FALSE(col2.cell(AccessMode::GrantFreeUl).meets_deadline);
  EXPECT_FALSE(col2.cell(AccessMode::GrantFreeUl).worst_case.feasible);
  EXPECT_TRUE(col2.cell(AccessMode::Downlink).meets_deadline);
}

// ---------------------------------------------------------------------------
// Design space

TEST(DesignSpaceTest, EnumeratesFr1Candidates) {
  const auto all = explore_design_space({});
  // µ0: mini-slot + FDD only (no 2-slot 0.5 ms pattern) = 2 configs x 2 UL
  // modes; µ1: same; µ2: 5 configs x 2 modes. Total 2*2 + 2*2 + 5*2 = 18.
  EXPECT_EQ(all.size(), 18u);
}

TEST(DesignSpaceTest, ViableSetIsSmallAndContainsDmGrantFree) {
  const auto viable = viable_designs({});
  EXPECT_FALSE(viable.empty());
  EXPECT_LT(viable.size(), 10u);  // "the set of possible system designs is quite limited"
  bool dm_gf = false;
  for (const DesignPoint& pt : viable) {
    EXPECT_LE(pt.worst_ul, kUrllcOneWayDeadline);
    EXPECT_LE(pt.worst_dl, kUrllcOneWayDeadline);
    if (pt.config_name == "TDD-Common(DM)" && pt.ul_mode == AccessMode::GrantFreeUl) dm_gf = true;
  }
  EXPECT_TRUE(dm_gf);
}

TEST(DesignSpaceTest, NoMu0Or1SlotBasedPointSurvives) {
  // §5: "only the 0.25 ms slot duration can feasibly achieve the URLLC
  // requirements" among slot-based FR1 options (mini-slot is sub-slot).
  for (const DesignPoint& pt : viable_designs({})) {
    if (pt.config_name.find("MiniSlot") != std::string::npos) continue;
    EXPECT_EQ(pt.mu, 2) << pt.config_name;
  }
}

TEST(DesignSpaceTest, FddFlaggedUnavailableToPrivate5g) {
  for (const DesignPoint& pt : explore_design_space({})) {
    EXPECT_EQ(pt.available_to_private_5g, pt.config_name != "FDD") << pt.config_name;
  }
}

TEST(DesignSpaceTest, ProcessingBudgetIsOneSlot) {
  for (const DesignPoint& pt : explore_design_space({})) {
    EXPECT_EQ(pt.processing_radio_budget, Numerology{pt.mu}.slot_duration());
  }
}

// ---------------------------------------------------------------------------
// Reliability

TEST(ReliabilityTest, CleanSamplesMeetTargets) {
  SampleSet s;
  for (int i = 0; i < 100'000; ++i) s.add(100.0);  // all at 100 µs
  const auto r = evaluate_reliability(s, 100'000, 500_us);
  EXPECT_DOUBLE_EQ(r.fraction_within, 1.0);
  EXPECT_TRUE(r.meets_urllc);
  EXPECT_TRUE(r.meets_strict);
  EXPECT_DOUBLE_EQ(r.nines, 9.0);
}

TEST(ReliabilityTest, LossChargedAgainstReliability) {
  SampleSet s;
  for (int i = 0; i < 9'999; ++i) s.add(100.0);
  // One of 10'000 offered packets was never delivered.
  const auto r = evaluate_reliability(s, 10'000, 500_us);
  EXPECT_NEAR(r.fraction_within, 0.9999, 1e-9);
  EXPECT_TRUE(r.meets_urllc);
  EXPECT_FALSE(r.meets_strict);
  EXPECT_NEAR(r.nines, 4.0, 0.01);
}

TEST(ReliabilityTest, LateDeliveriesCount) {
  SampleSet s;
  for (int i = 0; i < 96; ++i) s.add(100.0);
  for (int i = 0; i < 4; ++i) s.add(10'000.0);  // delivered but late
  const auto r = evaluate_reliability(s, 100, 500_us);
  EXPECT_NEAR(r.fraction_within, 0.96, 1e-12);
  EXPECT_FALSE(r.meets_urllc);
}

TEST(ReliabilityTest, NinesClamps) {
  EXPECT_DOUBLE_EQ(reliability_nines(0.0), 0.0);
  EXPECT_DOUBLE_EQ(reliability_nines(1.0), 9.0);
  EXPECT_NEAR(reliability_nines(0.999), 3.0, 1e-9);
  // The paper's targets.
  EXPECT_NEAR(reliability_nines(kUrllcReliabilityTarget), 4.0, 1e-6);
  EXPECT_NEAR(reliability_nines(kUrllcStrictReliability), 5.0, 1e-6);
}

TEST(ReliabilityTest, EmptyOffered) {
  SampleSet s;
  const auto r = evaluate_reliability(s, 0, 500_us);
  EXPECT_DOUBLE_EQ(r.fraction_within, 0.0);
  EXPECT_FALSE(r.meets_urllc);
}

}  // namespace
}  // namespace u5g
