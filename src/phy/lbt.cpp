#include "phy/lbt.hpp"

#include <algorithm>

#include "common/hashing.hpp"

namespace u5g {

namespace {

/// Stream salts for the gate's dedicated RNGs ("lbt!" / "wifi" in ASCII):
/// forked from (seed ^ salt) so an enabled gate draws from streams no other
/// component shares, and a disabled config constructs no gate at all.
constexpr std::uint64_t kBackoffSalt = 0x6c62'7421ULL;
constexpr std::uint64_t kWifiSalt = 0x7769'6669ULL;

}  // namespace

LbtGate::LbtGate(const LbtConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      backoff_rng_(hash_mix64(seed ^ kBackoffSalt)),
      wifi_rng_(hash_mix64(seed ^ kWifiSalt)),
      cw_(cfg.cw_min) {}

void LbtGate::extend_until(Nanos t) {
  if (cfg_.wifi_busy_mean <= Nanos::zero()) {
    wifi_frontier_ = std::max(wifi_frontier_, t);
    return;
  }
  while (wifi_frontier_ < t) {
    // One renewal: an idle gap, then a busy interval with a drawn energy.
    const Nanos idle{static_cast<std::int64_t>(
        wifi_rng_.exponential(static_cast<double>(cfg_.wifi_idle_mean.count())))};
    // Busy intervals last at least one ED slot: shorter bursts could slip
    // between two observation slots and would never gate anything.
    const Nanos busy = std::max(
        cfg_.ed_slot, Nanos{static_cast<std::int64_t>(wifi_rng_.exponential(
                          static_cast<double>(cfg_.wifi_busy_mean.count())))});
    const double energy =
        wifi_rng_.uniform(cfg_.wifi_energy_min_dbm, cfg_.wifi_energy_max_dbm);
    Interval iv;
    iv.start = wifi_frontier_ + idle;
    iv.end = iv.start + busy;
    iv.sensed = energy >= cfg_.ed_threshold_dbm;
    wifi_.push_back(iv);
    wifi_busy_gen_ += busy;
    wifi_frontier_ = iv.end;
  }
}

void LbtGate::prune_before(Nanos t) {
  while (!wifi_.empty() && wifi_.front().end <= t) wifi_.pop_front();
}

bool LbtGate::sensed_busy_in(Nanos a, Nanos b, Nanos& busy_end) {
  extend_until(b);
  for (const Interval& iv : wifi_) {
    if (iv.start >= b) break;
    if (iv.sensed && iv.end > a) {
      busy_end = iv.end;
      return true;
    }
  }
  return false;
}

Nanos LbtGate::busy_overlap(Nanos a, Nanos b) {
  extend_until(b);
  Nanos total{};
  for (const Interval& iv : wifi_) {
    if (iv.start >= b) break;
    const Nanos lo = std::max(iv.start, a);
    const Nanos hi = std::min(iv.end, b);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

void LbtGate::update_cw() {
  if (fb_total_ < static_cast<std::uint64_t>(cfg_.min_feedback)) return;
  const double ratio =
      static_cast<double>(fb_nacks_) / static_cast<double>(fb_total_);
  if (ratio >= cfg_.nack_ratio_threshold) {
    cw_ = std::min(2 * cw_ + 1, cfg_.cw_max);
    ++stats_.cw_doublings;
  } else {
    if (cw_ != cfg_.cw_min) ++stats_.cw_resets;
    cw_ = cfg_.cw_min;
  }
  fb_nacks_ = 0;
  fb_total_ = 0;
}

void LbtGate::on_harq_feedback(bool nack) {
  ++fb_total_;
  if (nack) ++fb_nacks_;
}

LbtGate::Access LbtGate::acquire(Nanos wanted, Nanos duration, Nanos watermark) {
  ++stats_.attempts;
  prune_before(std::min(watermark, next_access_));
  update_cw();

  // Access attempts on one channel are serialised, and gap mode adds an
  // enforced idle tail after each burst.
  Nanos t = std::max(wanted, next_access_);
  int counter = static_cast<int>(backoff_rng_.uniform_int(
      static_cast<std::uint64_t>(cw_) + 1));

  // CAT4: an idle defer period, then `counter` idle ED slots. Any sensed
  // busy time freezes the countdown and forces a fresh defer once the
  // channel clears; the counter itself is NOT redrawn (the standard's
  // freeze-and-resume semantics).
  for (;;) {
    Nanos busy_end{};
    if (sensed_busy_in(t, t + cfg_.defer, busy_end)) {
      t = busy_end;
      continue;
    }
    t += cfg_.defer;
    bool frozen = false;
    while (counter > 0) {
      if (sensed_busy_in(t, t + cfg_.ed_slot, busy_end)) {
        t = busy_end;
        frozen = true;
        break;
      }
      t += cfg_.ed_slot;
      --counter;
    }
    if (!frozen) break;
  }

  Access a;
  a.start = t;
  a.deferral = t - wanted;
  if (a.deferral > Nanos::zero()) ++stats_.deferred;
  stats_.deferral_total += a.deferral;

  // The granted burst occupies the channel; hidden (below-ED) interference
  // overlapping it can destroy the transport block — the sensor cleared a
  // channel that was not actually clear.
  const Nanos overlap = busy_overlap(t, t + duration);
  stats_.nru_airtime += duration;
  stats_.wifi_overlap += overlap;
  if (overlap > Nanos::zero() &&
      backoff_rng_.bernoulli(cfg_.hidden_collision_loss)) {
    a.collided = true;
    ++stats_.hidden_collisions;
  }
  next_access_ = t + duration + cfg_.tx_gap;
  return a;
}

Nanos LbtGate::wifi_busy_until(Nanos horizon) {
  extend_until(horizon);
  // All generated busy time, minus the part of still-queued intervals that
  // hangs past the horizon (pruned intervals all ended before it).
  Nanos busy = wifi_busy_gen_;
  for (const Interval& iv : wifi_) {
    if (iv.end > horizon) busy -= iv.end - std::max(iv.start, horizon);
  }
  return busy;
}

}  // namespace u5g
