// Ablation A2 (§4): TDD pattern-length trade-off for grant-based uplink.
// "If the latency exceeds one TDD pattern ... an entire pattern is missed
// before the gNB can respond to the scheduling request. To address this, it
// is better to increase the TDD pattern duration ... However, this also
// increases the latency."
//
// Sweep D...DU patterns of increasing period at µ1 and report grant-based
// UL worst/mean latency plus how many patterns the SR handshake spans.

#include <cstdio>

#include "core/latency_model.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;

int main() {
  std::printf("== Ablation A2: TDD pattern duration vs grant-based UL latency (u=1) ==\n\n");
  std::printf("   %10s %8s | %9s %9s | %9s %9s | %14s\n", "period[ms]", "pattern", "UL worst",
              "UL mean", "DL worst", "DL mean", "worst/period");

  const Numerology num = kMu1;  // 0.5 ms slots
  LatencyModelParams p;         // idealised stack: protocol effects only

  struct Probe {
    double period_ms;
    double ul_worst;
  };
  std::vector<Probe> probes;

  for (const Nanos period : standard_tdd_periods()) {
    if (!is_valid_tdd_period(period, num)) continue;
    const int slots = static_cast<int>(period / num.slot_duration());
    if (slots < 2) continue;
    // D^(n-1) U pattern.
    const TddCommonConfig cfg{num, TddPattern{period, slots - 1, 0, 0, 1}};
    const auto ul = analyze_worst_case(cfg, AccessMode::GrantBasedUl, p);
    const auto dl = analyze_worst_case(cfg, AccessMode::Downlink, p);
    const double spans = ul.worst.ms() / period.ms();
    std::printf("   %10.3f %8s | %9.3f %9.3f | %9.3f %9.3f | %13.2fx\n", period.ms(),
                cfg.name().substr(11, cfg.name().size() - 12).c_str(), ul.worst.ms(),
                ul.mean.ms(), dl.worst.ms(), dl.mean.ms(), spans);
    probes.push_back({period.ms(), ul.worst.ms()});
  }

  // The trade-off: short patterns cost multiple pattern-spans (handshake
  // misses whole patterns); very long patterns cost raw duration.
  bool short_spans_many = false;
  bool long_costs_more = false;
  for (const Probe& pr : probes) {
    // The handshake always spills past the pattern that carried the SR: the
    // grant-based worst case exceeds 1.5 patterns ("an entire pattern is
    // missed before the gNB can respond to the scheduling request").
    if (pr.period_ms <= 1.01 && pr.ul_worst > 1.5 * pr.period_ms) short_spans_many = true;
    if (pr.period_ms >= 5.0 && pr.ul_worst > 4.0) long_costs_more = true;
  }
  std::printf("\nshort patterns: SR handshake spills past the pattern (missed-pattern effect): %s\n",
              short_spans_many ? "CONFIRMED" : "NOT OBSERVED");
  std::printf("long patterns: latency grows with the period itself: %s\n",
              long_costs_more ? "CONFIRMED" : "NOT OBSERVED");
  return short_spans_many && long_costs_more ? 0 : 1;
}
