// Ablation A1 (§4): does shrinking the slot duration help when radio latency
// dominates? The paper: "if the radio latency is 0.3 ms, halving the slot
// duration from 0.25 ms might not reduce latency and could even increase it."
//
// Two views:
//  1. Quantised staging: the gNB must hide its radio latency behind whole
//     slots ("the transmission must always be delayed for one slot"), so the
//     effective lead is ceil(radio / slot) * slot — halving the slot does not
//     halve the lead when the radio is the binding term.
//  2. End-to-end: DDDU at µ1/µ2/µ3 with a lean (hardware-accelerated) stack;
//     the USB radio never attains sub-millisecond DL latency at any µ, while
//     a PCIe radio keeps improving as slots shrink.

#include <cstdio>

#include "core/e2e_system.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kPackets = 1200;

double mean_dl_latency_ms(Numerology num, const RadioHeadParams& rh, std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_free(seed);
  cfg.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dddu(num));
  cfg.gnb_radio = rh;
  cfg.ue_radio = RadioHeadParams::pcie_sdr();
  // Lean stack: isolate the radio term from software processing.
  cfg.gnb_proc = ProcessingProfile::asic();
  cfg.ue_proc = ProcessingProfile::asic();
  cfg.upf.backhaul_latency = Nanos{10'000};
  // Quantised staging lead: whole slots covering the nominal radio cost.
  RadioHead probe(rh, Rng{1});
  const Nanos nominal =
      probe.nominal_tx_latency(rh.sample_rate.samples_in(num.slot_duration())) + 60_us;
  cfg.sched.radio_lead = align_up(nominal, num.slot_duration());
  cfg.sched.margin = Nanos::zero();
  E2eSystem sys(std::move(cfg));

  Rng rng(seed + 3);
  const Nanos period = num.slot_duration() * 4;
  for (int i = 0; i < kPackets; ++i) {
    sys.send_downlink_at(period * (3 * i) +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
  }
  sys.run_until(period * (3 * kPackets + 60));
  return sys.latency_samples_us(Direction::Downlink).mean() / 1e3;
}

}  // namespace

int main() {
  std::printf("== Ablation A1: slot duration vs the radio-latency floor (DL, DDDU, lean stack) ==\n\n");

  std::printf("-- quantised staging lead: ceil(radio / slot) * slot --\n");
  std::printf("   %4s %10s | %12s %12s\n", "mu", "slot[us]", "USB2 lead", "PCIe lead");
  for (int mu = 1; mu <= 3; ++mu) {
    const Numerology num{mu};
    auto lead = [&](const RadioHeadParams& rh) {
      RadioHead probe(rh, Rng{1});
      const Nanos nominal =
          probe.nominal_tx_latency(rh.sample_rate.samples_in(num.slot_duration())) + 60_us;
      return align_up(nominal, num.slot_duration());
    };
    std::printf("   %4d %10.1f | %9.0fus %9.0fus\n", mu, num.slot_duration().us(),
                lead(RadioHeadParams::usrp_b210_usb2()).us(),
                lead(RadioHeadParams::pcie_sdr()).us());
  }

  std::printf("\n-- end-to-end DL mean latency [ms] --\n");
  std::printf("   %4s %10s | %10s %10s\n", "mu", "slot[us]", "USB 2.0", "PCIe");
  double usb2_mu1 = 0.0, usb2_mu2 = 0.0, usb2_mu3 = 0.0;
  double pcie_mu1 = 0.0, pcie_mu2 = 0.0, pcie_mu3 = 0.0;
  for (int mu = 1; mu <= 3; ++mu) {
    const Numerology num{mu};
    const double usb2 = mean_dl_latency_ms(num, RadioHeadParams::usrp_b210_usb2(),
                                           static_cast<std::uint64_t>(200 + mu));
    const double pcie =
        mean_dl_latency_ms(num, RadioHeadParams::pcie_sdr(), static_cast<std::uint64_t>(300 + mu));
    std::printf("   %4d %10.1f | %10.3f %10.3f\n", mu, num.slot_duration().us(), usb2, pcie);
    if (mu == 1) { usb2_mu1 = usb2; pcie_mu1 = pcie; }
    if (mu == 2) { usb2_mu2 = usb2; pcie_mu2 = pcie; }
    if (mu == 3) { usb2_mu3 = usb2; pcie_mu3 = pcie; }
  }

  // The paper's claim, quantified three ways:
  //  (a) halving the slot buys the USB system visibly less than the PCIe
  //      system — the staging lead is pinned at whole radio-sized slots;
  //  (b) at every µ the USB system sits above the PCIe system;
  //  (c) the USB radio never attains sub-0.5 ms mean DL latency at any µ,
  //      while PCIe at µ3 does: shrinking slots alone cannot fix a radio
  //      bottleneck.
  const double usb2_gain12 = usb2_mu1 - usb2_mu2;
  const double pcie_gain12 = pcie_mu1 - pcie_mu2;
  const bool floor = usb2_gain12 < pcie_gain12 - 0.1 && usb2_mu2 > pcie_mu2 &&
                     usb2_mu3 > 0.5 && pcie_mu3 < 0.5;
  std::printf("\ngain from halving 0.5ms slots: USB2 %.3f ms vs PCIe %.3f ms; "
              "best USB2 %.3f ms vs best PCIe %.3f ms\n",
              usb2_gain12, pcie_gain12, usb2_mu3, pcie_mu3);
  std::printf("radio latency caps the benefit of shorter slots: %s\n",
              floor ? "CONFIRMED" : "NOT OBSERVED");
  return floor ? 0 : 1;
}
