// Tests for the CSV artifact writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"

namespace u5g {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvWriterTest, HeaderAndNumericRows) {
  const std::string path = ::testing::TempDir() + "/u5g_csv_test1.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.row({1.0, 2.5, -3.0});
    csv.row({0.0, 0.125, 1e6});
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content, "a,b,c\n1,2.5,-3\n0,0.125,1e+06\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EscapesStringCells) {
  const std::string path = ::testing::TempDir() + "/u5g_csv_test2.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.row(std::vector<std::string>{"USB 2.0, bulk", "say \"hi\""});
  }
  const std::string content = slurp(path);
  EXPECT_NE(content.find("\"USB 2.0, bulk\""), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ColumnMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/u5g_csv_test3.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  EXPECT_THROW(csv.row(std::vector<std::string>{"x", "y", "z"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_u5g/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace u5g
