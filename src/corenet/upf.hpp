#pragma once
// User Plane Function model (§3: "The UPF decapsulates the payload and
// forwards it to the destination over IP"), plus the §9 "URLLC in the 5G
// Core" discussion: the UPF adds forwarding latency, and a core shared with
// eMBB adds queuing. The model distinguishes a dedicated URLLC core from a
// shared one via a load-dependent queue.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "corenet/gtpu.hpp"

namespace u5g {

struct UpfParams {
  Nanos forwarding_latency{15'000};  ///< decap + route + encap on the fast path
  Nanos backhaul_latency{50'000};    ///< gNB <-> UPF link one-way
  double embb_load = 0.0;            ///< 0 = dedicated URLLC core; >0 shared
  Nanos embb_queue_mean{200'000};    ///< queuing behind eMBB bursts when shared

  static UpfParams dedicated_urllc() { return {}; }
  static UpfParams shared_with_embb(double load) {
    return {Nanos{15'000}, Nanos{50'000}, load, Nanos{200'000}};
  }
};

/// Stateless-per-packet UPF: tunnel table + latency draws.
class Upf {
 public:
  Upf(UpfParams p, Rng rng) : p_(p), rng_(rng) {}

  /// Register a tunnel endpoint id for a UE session.
  void bind_session(std::uint32_t teid, std::uint32_t ue_address) { sessions_[teid] = ue_address; }
  [[nodiscard]] bool has_session(std::uint32_t teid) const { return sessions_.contains(teid); }

  /// Uplink: strip the tunnel, return the processing+queuing latency to add,
  /// or nullopt when the packet is malformed / unknown TEID (dropped).
  std::optional<Nanos> process_uplink(ByteBuffer& packet) {
    const auto h = gtpu_decapsulate(packet);
    if (!h || !sessions_.contains(h->teid)) return std::nullopt;
    return latency_draw();
  }

  /// Downlink: wrap for the UE's tunnel; returns the latency to add.
  Nanos process_downlink(ByteBuffer& packet, std::uint32_t teid) {
    gtpu_encapsulate(packet, teid);
    return latency_draw();
  }

  [[nodiscard]] Nanos backhaul() const { return p_.backhaul_latency; }
  [[nodiscard]] const UpfParams& params() const { return p_; }

 private:
  Nanos latency_draw() {
    Nanos t = p_.forwarding_latency;
    if (p_.embb_load > 0.0 && rng_.bernoulli(p_.embb_load)) {
      t += Nanos{static_cast<std::int64_t>(
          rng_.exponential(static_cast<double>(p_.embb_queue_mean.count())))};
    }
    return t;
  }

  UpfParams p_;
  Rng rng_;
  std::unordered_map<std::uint32_t, std::uint32_t> sessions_;
};

}  // namespace u5g
