#pragma once
// Wireless channel model: propagation delay plus a block-error process.
//
// The paper's reliability discussion (§6) splits loss into (1) channel
// unpredictability and (2) deadline violations from non-deterministic
// latency. This module provides (1): an SNR-to-BLER curve per MCS and the
// mmWave blockage process that produces the 4.4 %-of-packets-sub-ms result
// the paper cites for FR2 [19].

#include "common/rng.hpp"
#include "common/time.hpp"
#include "phy/modulation.hpp"
#include "phy/numerology.hpp"

namespace u5g {

/// AWGN-flavoured link model: BLER as a logistic function of the SNR gap to
/// the MCS decoding threshold. The threshold grows with spectral efficiency
/// (Shannon-gap rule of thumb), the slope models coding steepness.
class LinkModel {
 public:
  explicit LinkModel(double snr_db, double slope_db = 0.8) : snr_db_(snr_db), slope_db_(slope_db) {}

  [[nodiscard]] double snr_db() const { return snr_db_; }
  void set_snr_db(double snr) { snr_db_ = snr; }

  /// Decoding threshold for an MCS: SNR needed for ~50 % BLER.
  [[nodiscard]] static double threshold_db(const McsEntry& mcs);

  /// Block error probability at the current SNR.
  [[nodiscard]] double bler(const McsEntry& mcs) const;

  /// Draw one transmission outcome. true = decoded.
  [[nodiscard]] bool transmit_ok(const McsEntry& mcs, Rng& rng) const {
    return !rng.bernoulli(bler(mcs));
  }

 private:
  double snr_db_;
  double slope_db_;
};

/// FR2 (mmWave) blockage process: alternates line-of-sight and blocked
/// periods; while blocked, transmissions fail. Calibrated so that the
/// fraction of time with a usable sub-ms link is small — reproducing the
/// paper's argument that FR2 cannot carry URLLC reliability.
class MmWaveBlockage {
 public:
  struct Params {
    Nanos mean_los{400'000'000};        ///< mean line-of-sight dwell (400 ms)
    Nanos mean_blocked{150'000'000};    ///< mean blockage dwell (150 ms)
    double blocked_loss_prob = 0.98;    ///< loss probability while blocked
  };

  MmWaveBlockage(Params p, Rng rng) : p_(p), rng_(rng) { schedule_toggle(Nanos::zero()); }

  /// Advance the two-state process to `now` and report whether blocked.
  [[nodiscard]] bool blocked_at(Nanos now);

  /// Loss draw for a transmission at `now`.
  [[nodiscard]] bool transmit_ok(Nanos now) {
    if (!blocked_at(now)) return true;
    return !rng_.bernoulli(p_.blocked_loss_prob);
  }

  /// Long-run fraction of time in line-of-sight.
  [[nodiscard]] double los_fraction() const {
    const double l = static_cast<double>(p_.mean_los.count());
    const double b = static_cast<double>(p_.mean_blocked.count());
    return l / (l + b);
  }

 private:
  void schedule_toggle(Nanos from);

  Params p_;
  Rng rng_;
  bool blocked_ = false;
  Nanos next_toggle_{0};
};

/// Simple propagation: distance / c. 300 m cell => 1 µs.
[[nodiscard]] constexpr Nanos propagation_delay(double distance_m) {
  return Nanos{static_cast<std::int64_t>(distance_m / 299'792'458.0 * 1e9 + 0.5)};
}

}  // namespace u5g
