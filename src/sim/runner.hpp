#pragma once
// Parallel Monte-Carlo replication harness.
//
// Tail reliability (99.999 % at a 0.5 ms deadline, §6) is sample-hungry:
// every bench runs many independent E2eSystem replications. The harness fans
// those replications across a fixed-size thread pool with deterministic
// per-replication seeds derived from one root seed (a SplitMix64 stream), and
// collects results into index-ordered storage so the merged statistics are
// bitwise-independent of the thread count: running at T=1, T=2, or T=8
// produces byte-identical output for the same root seed.
//
// Determinism contract:
//   * replication i always receives `replication_seed(root, i)`, regardless
//     of which worker executes it or in which order replications finish;
//   * results are returned (and therefore merged by the caller) in
//     replication-index order, never completion order;
//   * replication bodies share no mutable state (each builds its own
//     E2eSystem / Rng from the seed it is handed).

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace u5g {

/// SplitMix64 output for state `x` (one mix step, no stream advance).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of replication `index` in the SplitMix64 stream rooted at `root`.
/// Distinct (root, index) pairs give independent, well-mixed seeds.
[[nodiscard]] constexpr std::uint64_t replication_seed(std::uint64_t root, std::uint64_t index) {
  return splitmix64(root + index * 0x9e3779b97f4a7c15ULL);
}

struct RunnerOptions {
  int threads = 0;  ///< worker count; 0 = hardware concurrency
};

/// Resolve a requested thread count: values >= 1 pass through, anything else
/// maps to the hardware concurrency.
[[nodiscard]] int resolve_threads(int requested);

/// Run `fn(index, seed)` for every index in [0, n) with seeds drawn from the
/// SplitMix64 stream rooted at `root_seed`, fanning across `opt.threads`
/// workers. Returns results in replication-index order. `fn` must be
/// invocable concurrently from multiple threads (share nothing mutable);
/// its result type must be default-constructible and movable. With one
/// worker (or n <= 1) everything runs inline on the calling thread.
template <typename Fn>
auto run_replications(int n, std::uint64_t root_seed, Fn&& fn, RunnerOptions opt = {})
    -> std::vector<std::invoke_result_t<Fn&, int, std::uint64_t>> {
  using Result = std::invoke_result_t<Fn&, int, std::uint64_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "run_replications: result type must be default-constructible");
  if (n <= 0) return {};
  std::vector<Result> out(static_cast<std::size_t>(n));
  const int threads = std::min(resolve_threads(opt.threads), n);
  if (threads <= 1) {
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = fn(i, replication_seed(root_seed, static_cast<std::uint64_t>(i)));
    }
    return out;
  }
  ThreadPool pool(threads);
  for (int i = 0; i < n; ++i) {
    pool.submit([&out, &fn, root_seed, i] {
      out[static_cast<std::size_t>(i)] =
          fn(i, replication_seed(root_seed, static_cast<std::uint64_t>(i)));
    });
  }
  pool.wait_idle();
  return out;
}

/// Fold index-ordered replication results with `T::merge`. The left fold in
/// index order is part of the determinism contract: merging {r0, r1, r2} is
/// always r0.merge(r1).merge(r2), whatever the thread count was.
template <typename T>
[[nodiscard]] T merge_replications(std::vector<T> parts) {
  if (parts.empty()) return T{};
  T acc = std::move(parts.front());
  for (std::size_t i = 1; i < parts.size(); ++i) acc.merge(parts[i]);
  return acc;
}

/// Split `total` work items into `parts` near-equal chunks; chunk i gets
/// `split_evenly(total, parts, i)` items and the sum over i is exactly total.
[[nodiscard]] constexpr int split_evenly(int total, int parts, int index) {
  if (parts <= 0) return total;
  return total / parts + (index < total % parts ? 1 : 0);
}

}  // namespace u5g
