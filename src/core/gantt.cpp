#include "core/gantt.hpp"

#include <algorithm>
#include <cstdio>

namespace u5g {

namespace {

char category_glyph(LatencyCategory c) {
  switch (c) {
    case LatencyCategory::Protocol: return '=';
    case LatencyCategory::Processing: return '#';
    case LatencyCategory::Radio: return '~';
    case LatencyCategory::ChannelAccess: return '!';
  }
  return '?';
}

/// Time axis: maps [t0, t1] onto [0, columns).
struct Axis {
  Nanos t0;
  Nanos t1;
  int columns;

  [[nodiscard]] int col(Nanos t) const {
    if (t <= t0) return 0;
    if (t >= t1) return columns - 1;
    const double frac =
        static_cast<double>((t - t0).count()) / static_cast<double>((t1 - t0).count());
    return std::min(columns - 1, static_cast<int>(frac * columns));
  }
};

std::string slot_track(const DuplexConfig& cfg, const Axis& ax) {
  const SlotClock clk = cfg.clock();
  std::string row(static_cast<std::size_t>(ax.columns), ' ');
  for (int c = 0; c < ax.columns; ++c) {
    const Nanos t =
        ax.t0 + (ax.t1 - ax.t0) * c / ax.columns + (ax.t1 - ax.t0) / (2 * ax.columns);
    const SlotIndex slot = clk.slot_at(t);
    const int sym = clk.symbol_at(t);
    const bool d = cfg.dl_capable(slot, sym);
    const bool u = cfg.ul_capable(slot, sym);
    row[static_cast<std::size_t>(c)] = d && u ? 'X' : d ? 'D' : u ? 'U' : '-';
  }
  // Mark slot boundaries.
  std::string ticks(static_cast<std::size_t>(ax.columns), ' ');
  for (SlotIndex s = clk.slot_at(ax.t0); clk.slot_start(s) <= ax.t1; ++s) {
    const Nanos b = clk.slot_start(s);
    if (b >= ax.t0) ticks[static_cast<std::size_t>(ax.col(b))] = '|';
  }
  return "  slots  " + ticks + "\n         " + row + "\n";
}

std::string step_rows(const Timeline& tl, const Axis& ax) {
  std::string out;
  for (const TimelineStep& s : tl.steps) {
    const int a = ax.col(s.start);
    const int b = std::max(a, ax.col(s.end) - (s.end >= ax.t1 ? 0 : 0));
    std::string row(static_cast<std::size_t>(ax.columns), ' ');
    for (int c = a; c <= b && c < ax.columns; ++c) {
      row[static_cast<std::size_t>(c)] = category_glyph(s.category);
    }
    char label[64];
    std::snprintf(label, sizeof label, "%-8.8s ",
                  s.label.substr(0, s.label.find(' ')).c_str());
    out += "  " + std::string(label) + row + "  " + s.label + " (" +
           to_string(s.duration()) + ")\n";
  }
  return out;
}

std::string legend() {
  return "  legend: '=' protocol wait/air   '#' processing   '~' radio   "
         "track: D/U/X/- per symbol, '|' slot boundary\n";
}

Axis make_axis(const DuplexConfig& cfg, Nanos from, Nanos to, int columns) {
  const SlotClock clk = cfg.clock();
  const Nanos t0 = clk.slot_start(clk.slot_at(from));
  const Nanos t1 = clk.next_slot_boundary(to) == to ? to : clk.next_slot_boundary(to);
  return Axis{t0, std::max(t1, t0 + clk.slot_duration()), columns};
}

}  // namespace

std::string render_gantt(const DuplexConfig& cfg, const Timeline& tl, const GanttOptions& opt) {
  if (!tl.feasible || tl.steps.empty()) return "  (infeasible timeline)\n";
  const Axis ax = make_axis(cfg, tl.arrival, tl.completion, opt.columns);
  std::string out;
  out += "  time     " + to_string(ax.t0) + " .. " + to_string(ax.t1) + "  (latency " +
         to_string(tl.latency()) + ")\n";
  if (opt.show_slot_track) out += slot_track(cfg, ax);
  out += step_rows(tl, ax);
  if (opt.show_legend) out += legend();
  return out;
}

std::string render_gantt(const DuplexConfig& cfg, const PingJourney& j, const GanttOptions& opt) {
  if (!j.uplink.feasible || !j.downlink.feasible) return "  (infeasible journey)\n";
  std::string out;
  out += "== uplink (ping request) ==\n";
  GanttOptions sub = opt;
  sub.show_legend = false;
  out += render_gantt(cfg, j.uplink, sub);
  out += "== core network + host ==\n";
  out += "  gNB->UPF->host " + to_string(j.core_uplink) + ", turnaround " +
         to_string(j.turnaround) + ", host->UPF->gNB " + to_string(j.core_downlink) + "\n";
  out += "== downlink (ping reply) ==\n";
  out += render_gantt(cfg, j.downlink, sub);
  if (opt.show_legend) out += legend();
  out += "round trip: " + to_string(j.rtt) + "\n";
  return out;
}

}  // namespace u5g
