// Microbenchmarks of the library's own hot paths (google-benchmark): the
// event kernel, the protocol entities, the opportunity queries, and the
// analytic engine. These guard the simulator's performance — a full Fig 6
// run schedules hundreds of thousands of events.
//
// `bench_micro --json out.json` emits the machine-readable google-benchmark
// JSON (shorthand for --benchmark_out=out.json --benchmark_out_format=json)
// so the perf trajectory (BENCH_*.json) can track kernel ops/sec and
// end-to-end bench wall-clock across commits.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "core/e2e_system.hpp"
#include "core/latency_model.hpp"
#include "pdcp/pdcp_entity.hpp"
#include "rlc/rlc_entity.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"
#include "tdd/common_config.hpp"
#include "tdd/opportunity.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

void BM_SimulatorScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(Nanos{i * 100}, [&fired] { ++fired; });
    }
    sim.run_until();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleFire);

// The bench-suite mix: schedule bursts, cancel a fraction (HARQ timers and
// periodic re-arms behave like this), fire the rest. Items = all three ops.
void BM_SimulatorScheduleFireCancelMix(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventHandle> handles;
    handles.reserve(1000);
    int fired = 0;
    int cancelled = 0;
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(sim.schedule_at(Nanos{static_cast<std::int64_t>(rng.uniform_int(100'000))},
                                        [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 3) {  // tombstone a third
      cancelled += sim.cancel(handles[i]) ? 1 : 0;
    }
    sim.run_until();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(cancelled);
  }
  state.SetItemsProcessed(state.iterations() * (1000 + 1000 / 3));
}
BENCHMARK(BM_SimulatorScheduleFireCancelMix);

// Steady-state self-rescheduling chain (the PeriodicProcess pattern): the
// queue stays tiny, so this isolates per-event overhead from heap growth.
void BM_SimulatorPeriodicChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    long ticks = 0;
    struct Chain {
      Simulator& sim;
      long& ticks;
      void operator()() const {
        ++ticks;
        if (ticks % 10'000 != 0) sim.schedule_after(Nanos{100}, Chain{sim, ticks});
      }
    };
    sim.schedule_at(Nanos::zero(), Chain{sim, ticks});
    sim.run_until();
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorPeriodicChain);

// End-to-end wall-clock proxy: one small testbed Fig-6-style run. Tracks the
// full-stack cost per packet, the number the parallel runner multiplies.
void BM_E2eTestbedRun(benchmark::State& state) {
  const int packets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    E2eSystem sys(StackConfig::testbed_grant_free(42));
    Rng rng(42 ^ 0xF16);
    const Nanos period = 2_ms;
    for (int i = 0; i < packets; ++i) {
      sys.send_uplink_at(period * (2 * i) +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
    }
    sys.run_until(period * (2 * packets + 20));
    benchmark::DoNotOptimize(sys.records().size());
  }
  state.SetItemsProcessed(state.iterations() * packets);
}
BENCHMARK(BM_E2eTestbedRun)->Arg(50);

// Fan-out overhead of the Monte-Carlo runner itself: trivial replications,
// so the measured time is pool setup + dispatch + merge bookkeeping.
void BM_RunnerFanOut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto results = run_replications(
        n, 1, [](int i, std::uint64_t seed) { return static_cast<double>(seed >> 32) + i; },
        {0});
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RunnerFanOut)->Arg(16);

void BM_PdcpProtectVerify(benchmark::State& state) {
  PdcpTx tx;
  PdcpRx rx;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ByteBuffer b(n, 0x42);
    tx.protect(b);
    int delivered = 0;
    rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta&) { ++delivered; });
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PdcpProtectVerify)->Arg(64)->Arg(1500);

void BM_RlcSegmentReassemble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RlcTx tx(RlcMode::UM);
    RlcRx rx(RlcMode::UM);
    tx.enqueue(ByteBuffer(n, 0x7), Nanos::zero());
    int delivered = 0;
    while (auto pdu = tx.pull(128)) {
      rx.receive(std::move(pdu->pdu), [&](ByteBuffer&&, const PacketMeta&) { ++delivered; });
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RlcSegmentReassemble)->Arg(64)->Arg(4096);

void BM_NextUlTx(benchmark::State& state) {
  const TddCommonConfig cfg = TddCommonConfig::dm(kMu2);
  Nanos t{0};
  for (auto _ : state) {
    const auto w = next_ul_tx(cfg, t, 2);
    benchmark::DoNotOptimize(w);
    t = w ? w->start + Nanos{1} : Nanos{0};
    if (t > Nanos{1'000'000'000}) t = Nanos{0};
  }
}
BENCHMARK(BM_NextUlTx);

void BM_WorstCaseSweep(benchmark::State& state) {
  const TddCommonConfig cfg = TddCommonConfig::dm(kMu2);
  for (auto _ : state) {
    const auto wc = analyze_worst_case(cfg, AccessMode::GrantBasedUl, {});
    benchmark::DoNotOptimize(wc);
  }
}
BENCHMARK(BM_WorstCaseSweep);

}  // namespace

int main(int argc, char** argv) {
  // Expand `--json FILE` into google-benchmark's out flags before Initialize
  // sees the command line.
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--json") == 0) {
      args.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      args.push_back("--benchmark_out_format=json");
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
