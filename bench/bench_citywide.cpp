// City-scale population throughput: cells × background-UEs sweep on the
// sharded engine with lite-UE populations (mac/ue_population.hpp).
//
// Each row runs `cells` complete shards — one tracked full-stack UE per cell
// plus `bg_ues` flat-row background UEs driven by the aggregate per-slot
// Poisson process — for a fixed simulated horizon, with inter-cell load
// coupling so the adaptive-lookahead barrier and load exchange are
// exercised at scale. Headlines per row:
//
//   events/s     simulator events + population operations (arrivals and
//                grant services — the work a per-packet event model would
//                have paid one kernel event each for)
//   UE-pkt/s     tracked + background packets delivered per wall second
//   UEs/core     UEs one core sustains at real time: total UEs × (sim
//                time / wall time) / threads
//   bytes/UE     flat-row storage per background UE
//
// The determinism tri-run executes a small coupled scenario at 1, 2 and 8
// workers (work-stealing gang live at 2 and 8) and requires byte-identical
// merged metrics. `--strict` additionally gates the sweep reaching >= 1M
// background UEs across >= 1000 cells — the ROADMAP city-scale floor.
//
// CLI: [--packets N] (tracked packets per cell) [--seed S] [--json FILE]
//      [--strict] [--smoke] (tiny sweep for sanitizer CI; --strict then
//      gates only the determinism tri-run, not the city-scale floor)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "sim/sharded.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr Nanos kHorizon{100'000'000};  // 100 ms simulated per row

StackConfig city_config(std::uint64_t seed, int cells, int bg_ues) {
  StackConfig cfg = StackConfig::testbed_grant_free(seed);
  cfg.num_cells = cells;
  cfg.num_ues = 1;  // one tracked full-stack UE per cell
  cfg.intercell_load_coupling = 0.005;
  cfg.population.background_ues = bg_ues;
  cfg.population.mean_interarrival = Nanos{10'000'000};  // 20-slot spacing
  cfg.population.grants_per_slot = 64;                   // ~78% offered load
  cfg.population.loss = 0.05;
  cfg.trace.metrics = true;
  return cfg;
}

struct Row {
  int cells = 0;
  int bg_ues = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double ue_pkt_per_s = 0.0;
  double ues_per_core = 0.0;
  double bytes_per_ue = 0.0;
  std::uint64_t bg_delivered = 0;
  std::uint64_t bg_offered = 0;
};

Row run_row(std::uint64_t seed, int cells, int bg_ues, int packets, int threads) {
  const StackConfig cfg = city_config(seed, cells, bg_ues);
  ShardedEngine eng(cfg, ShardedOptions{threads});
  for (int c = 0; c < cells; ++c) {
    for (int p = 0; p < packets; ++p) {
      const Nanos at{(splitmix64(seed ^ (static_cast<std::uint64_t>(c) * 1000003ULL +
                                         static_cast<std::uint64_t>(p))) %
                      static_cast<std::uint64_t>(kHorizon.count() / 2))};
      eng.send_uplink_at(at, c, 0);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(kHorizon);
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.cells = cells;
  r.bg_ues = bg_ues;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const auto pop = eng.population_totals();
  const double pop_ops = static_cast<double>(pop.offered + pop.grants_used);
  r.events_per_s = (static_cast<double>(eng.events_fired()) + pop_ops) / r.wall_s;
  r.ue_pkt_per_s =
      static_cast<double>(eng.packets_delivered() + pop.delivered) / r.wall_s;
  const double total_ues = static_cast<double>(pop.ues) + static_cast<double>(cells);
  const double sim_s = static_cast<double>(kHorizon.count()) * 1e-9;
  r.ues_per_core = total_ues * (sim_s / r.wall_s) / static_cast<double>(threads);
  r.bytes_per_ue = pop.ues != 0U
                       ? static_cast<double>(pop.storage_bytes) / static_cast<double>(pop.ues)
                       : 0.0;
  r.bg_delivered = pop.delivered;
  r.bg_offered = pop.offered;
  return r;
}

/// Small coupled scenario at 1/2/8 workers: merged metrics must be
/// byte-identical (stealing live at 2 and 8 workers).
bool determinism_tri_run(std::uint64_t seed) {
  std::string baseline;
  for (const int threads : {1, 2, 8}) {
    StackConfig cfg = city_config(seed, 8, 200);
    cfg.num_ues = 2;
    cfg.intercell_load_coupling = 0.02;
    ShardedEngine eng(cfg, ShardedOptions{threads});
    for (int c = 0; c < eng.num_cells(); ++c) {
      for (int p = 0; p < 4; ++p) eng.send_uplink_at(Nanos{2'000'000} * p, c, p % 2);
    }
    eng.run_until(Nanos{40'000'000});
    const std::string merged = eng.merged_metrics().to_json();
    if (baseline.empty()) {
      baseline = merged;
    } else if (merged != baseline) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 2;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);
  const int packets = opt.packets > 0 ? opt.packets : 2;
  const int threads = opt.threads > 0 ? opt.threads : 1;

  std::printf("== Citywide: cells x background-UEs sweep, %d tracked pkts/cell, %lld ms sim ==\n\n",
              packets, static_cast<long long>(kHorizon.count() / 1'000'000));

  struct Shape {
    int cells, bg_ues;
  };
  const std::vector<Shape> sweep =
      opt.smoke ? std::vector<Shape>{{4, 200}, {16, 500}}
                : std::vector<Shape>{
                      {16, 1000}, {64, 1000}, {256, 1000}, {1000, 1000}, {1000, 2000}};

  TextTable out({"cells", "bg UEs", "total UEs", "wall [s]", "events/s", "UE-pkt/s",
                 "UEs/core", "bytes/UE"});
  std::vector<Row> rows;
  for (const Shape s : sweep) {
    const Row r = run_row(opt.seed, s.cells, s.bg_ues, packets, threads);
    rows.push_back(r);
    out.add_row({std::to_string(r.cells), std::to_string(r.bg_ues),
                 std::to_string(static_cast<long long>(r.cells) * r.bg_ues), fmt2(r.wall_s),
                 fmt2(r.events_per_s), fmt2(r.ue_pkt_per_s), fmt2(r.ues_per_core),
                 fmt2(r.bytes_per_ue)});
  }
  std::printf("%s\n", out.render().c_str());

  const bool identical = determinism_tri_run(opt.seed);
  std::printf("merged metrics across 1/2/8 workers: %s\n",
              identical ? "bitwise-identical" : "MISMATCH");

  long long max_bg = 0;
  int max_cells = 0;
  for (const Row& r : rows) {
    const long long total = static_cast<long long>(r.cells) * r.bg_ues;
    if (total > max_bg) {
      max_bg = total;
      max_cells = r.cells;
    }
  }
  const bool at_scale = max_bg >= 1'000'000 && max_cells >= 1000;
  if (!opt.smoke) {
    std::printf("city-scale floor (>=1M background UEs across >=1k cells): %s\n",
                at_scale ? "reached" : "NOT reached");
  }

  if (opt.json) {
    std::FILE* f = std::fopen(opt.json->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_citywide: cannot write %s\n", opt.json->c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"citywide\",\"tracked_pkts_per_cell\":%d,\"threads\":%d,\n",
                 packets, threads);
    std::fprintf(f, " \"sim_ms\":%lld,\"metrics_identical\":%s,\"at_scale\":%s,\"results\":[\n",
                 static_cast<long long>(kHorizon.count() / 1'000'000),
                 identical ? "true" : "false", at_scale ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"cells\":%d,\"bg_ues_per_cell\":%d,\"total_bg_ues\":%lld,"
                   "\"wall_s\":%.6f,\"events_per_s\":%.1f,\"ue_pkt_per_s\":%.1f,"
                   "\"ues_per_core\":%.1f,\"bytes_per_ue\":%.2f,"
                   "\"bg_delivered\":%llu,\"bg_offered\":%llu}%s\n",
                   r.cells, r.bg_ues, static_cast<long long>(r.cells) * r.bg_ues, r.wall_s,
                   r.events_per_s, r.ue_pkt_per_s, r.ues_per_core, r.bytes_per_ue,
                   static_cast<unsigned long long>(r.bg_delivered),
                   static_cast<unsigned long long>(r.bg_offered),
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
  }

  return (opt.strict && !(identical && (at_scale || opt.smoke))) ? 1 : 0;
}
