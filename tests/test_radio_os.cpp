// Unit tests for src/radio (bus + radio head) and src/os (jitter +
// processing-time calibration).

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "os/jitter.hpp"
#include "os/proc_time.hpp"
#include "radio/bus.hpp"
#include "radio/radio_head.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Bus

TEST(BusTest, DeterministicLatencyIsAffine) {
  const BusModel bus{BusParams::usb2(), Rng{1}};
  const Nanos l0 = bus.deterministic_latency(0);
  const Nanos l1 = bus.deterministic_latency(1000);
  const Nanos l2 = bus.deterministic_latency(2000);
  EXPECT_EQ(l0, BusParams::usb2().base_overhead);
  EXPECT_EQ(l2 - l1, l1 - l0);  // constant slope
}

TEST(BusTest, Usb3FlatterThanUsb2) {
  const BusModel u2{BusParams::usb2(), Rng{1}};
  const BusModel u3{BusParams::usb3(), Rng{1}};
  const auto slope = [](const BusModel& b) {
    return (b.deterministic_latency(20'000) - b.deterministic_latency(2'000)).count();
  };
  EXPECT_LT(slope(u3), slope(u2));
  EXPECT_LT(u3.deterministic_latency(20'000), u2.deterministic_latency(20'000));
}

TEST(BusTest, PcieFastestEthernetBetween) {
  const BusModel pcie{BusParams::pcie(), Rng{1}};
  const BusModel eth{BusParams::ethernet_ecpri(), Rng{1}};
  const BusModel usb2{BusParams::usb2(), Rng{1}};
  const std::int64_t n = 10'000;
  EXPECT_LT(pcie.deterministic_latency(n), eth.deterministic_latency(n));
  EXPECT_LT(eth.deterministic_latency(n), usb2.deterministic_latency(n));
}

TEST(BusTest, SubmissionAlwaysAtLeastDeterministic) {
  BusModel bus{BusParams::usb2(), Rng{2}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(bus.submit_latency(5'000), bus.deterministic_latency(5'000));
  }
}

TEST(BusTest, Fig5Ranges) {
  // Calibration guard: the Fig 5 envelope (2000-20000 samples).
  const BusModel u2{BusParams::usb2(), Rng{1}};
  EXPECT_GT(u2.deterministic_latency(2'000), 150_us);
  EXPECT_LT(u2.deterministic_latency(2'000), 220_us);
  EXPECT_GT(u2.deterministic_latency(20'000), 350_us);
  EXPECT_LT(u2.deterministic_latency(20'000), 450_us);
}

// ---------------------------------------------------------------------------
// OS jitter

TEST(JitterTest, NoneIsExactlyZero) {
  OsJitterModel j{JitterParams::none(), Rng{3}};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(j.sample(), Nanos::zero());
}

TEST(JitterTest, GenericKernelSpikes) {
  OsJitterModel j{JitterParams::generic_kernel(), Rng{4}};
  int spikes = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const Nanos v = j.sample();
    EXPECT_GE(v, Nanos::zero());
    if (v > 30_us) ++spikes;
  }
  // ~2 % spike probability with a 60 µs mean tail.
  EXPECT_GT(spikes, kN / 200);
  EXPECT_LT(spikes, kN / 20);
}

TEST(JitterTest, RtKernelBoundsSpikes) {
  OsJitterModel generic{JitterParams::generic_kernel(), Rng{5}};
  OsJitterModel rt{JitterParams::realtime_kernel(), Rng{5}};
  Nanos generic_max = Nanos::zero();
  Nanos rt_max = Nanos::zero();
  for (int i = 0; i < 50'000; ++i) {
    generic_max = std::max(generic_max, generic.sample());
    rt_max = std::max(rt_max, rt.sample());
  }
  EXPECT_GT(generic_max, 100_us);
  EXPECT_LT(rt_max, 60_us);  // capped at 30 µs spike + noise
}

TEST(JitterTest, SpikeCapHolds) {
  JitterParams p = JitterParams::generic_kernel();
  p.spike_prob = 1.0;  // every call spikes
  OsJitterModel j{p, Rng{6}};
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_LE(j.sample(), p.spike_cap + 60_us);  // cap + generous noise bound
  }
}

// ---------------------------------------------------------------------------
// Radio head

TEST(RadioHeadTest, PrepareTxDeadline) {
  RadioHead rh{RadioHeadParams::usrp_b210_usb2(), Rng{7}};
  const std::int64_t slot_samples = 11'520;
  // Generous deadline: on time.
  const auto ok = rh.prepare_tx(0_ns, slot_samples, 2_ms);
  EXPECT_TRUE(ok.on_time);
  EXPECT_LE(ok.ready_at, 2_ms);
  // Impossible deadline: late.
  const auto late = rh.prepare_tx(0_ns, slot_samples, 100_us);
  EXPECT_FALSE(late.on_time);
  EXPECT_GT(late.ready_at, 100_us);
}

TEST(RadioHeadTest, NominalLatencyNearPaperB210Figure) {
  // §7: "the RH in use introduces around 500 µs latency" for slot-sized
  // buffers at 0.5 ms slots.
  RadioHead rh{RadioHeadParams::usrp_b210_usb2(), Rng{8}};
  const Nanos nominal = rh.nominal_tx_latency(rh.sample_rate().samples_per_slot(kMu1));
  EXPECT_GT(nominal, 280_us);
  EXPECT_LT(nominal, 600_us);
}

TEST(RadioHeadTest, PcieMuchFasterThanUsb) {
  RadioHead usb{RadioHeadParams::usrp_b210_usb2(), Rng{9}};
  RadioHead pcie{RadioHeadParams::pcie_sdr(), Rng{9}};
  const std::int64_t n = 11'520;
  EXPECT_LT(pcie.nominal_tx_latency(n) * 3, usb.nominal_tx_latency(n));
}

TEST(RadioHeadTest, RxDeliveryPositive) {
  RadioHead rh{RadioHeadParams::usrp_b210_usb2(), Rng{10}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(rh.rx_delivery_latency(1'000), Nanos::zero());
  }
}

// ---------------------------------------------------------------------------
// Processing-time calibration (Table 2)

struct LayerCase {
  Layer layer;
  double mean_us;
  double std_us;
};

class ProcessingCalibrationTest : public ::testing::TestWithParam<LayerCase> {};

TEST_P(ProcessingCalibrationTest, MatchesTable2Moments) {
  const auto& c = GetParam();
  ProcessingModel m{ProcessingProfile::gnb_i7(), Rng{11}};
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(m.sample(c.layer).us());
  EXPECT_NEAR(s.mean(), c.mean_us, 0.05 * c.mean_us);
  EXPECT_NEAR(s.stddev(), c.std_us, 0.10 * c.std_us);
}

INSTANTIATE_TEST_SUITE_P(Table2, ProcessingCalibrationTest,
                         ::testing::Values(LayerCase{Layer::SDAP, 4.65, 6.71},
                                           LayerCase{Layer::PDCP, 8.29, 8.99},
                                           LayerCase{Layer::RLC, 4.12, 8.37},
                                           LayerCase{Layer::MAC, 55.21, 16.31},
                                           LayerCase{Layer::PHY, 41.55, 10.83}));

TEST(ProcessingModelTest, ZeroProfileIsZero) {
  ProcessingModel m{ProcessingProfile::zero(), Rng{12}};
  for (Layer l : {Layer::SDAP, Layer::PDCP, Layer::RLC, Layer::MAC, Layer::PHY, Layer::APP}) {
    EXPECT_EQ(m.sample(l), Nanos::zero());
  }
}

TEST(ProcessingModelTest, ScaleMultipliesDraws) {
  // §7: "higher number of UEs might increase the processing times noticeably".
  ProcessingModel base{ProcessingProfile::gnb_i7(), Rng{13}};
  ProcessingModel loaded{ProcessingProfile::gnb_i7(), Rng{13}};
  loaded.set_scale(4.0);
  RunningStats b, l;
  for (int i = 0; i < 20'000; ++i) {
    b.add(base.sample(Layer::MAC).us());
    l.add(loaded.sample(Layer::MAC).us());
  }
  EXPECT_NEAR(l.mean() / b.mean(), 4.0, 0.2);
}

TEST(ProcessingModelTest, UeModemSlowerThanGnb) {
  const ProcessingProfile gnb = ProcessingProfile::gnb_i7();
  const ProcessingProfile ue = ProcessingProfile::ue_modem();
  for (Layer l : {Layer::SDAP, Layer::PDCP, Layer::RLC, Layer::MAC, Layer::PHY}) {
    EXPECT_GT(ue.layer(l).mean_us, gnb.layer(l).mean_us) << to_string(l);
  }
}

TEST(ProcessingModelTest, AsicOrderOfMagnitudeFaster) {
  const ProcessingProfile sw = ProcessingProfile::gnb_i7();
  const ProcessingProfile hw = ProcessingProfile::asic();
  EXPECT_LT(hw.mac.mean_us * 5, sw.mac.mean_us);
  EXPECT_LT(hw.phy.mean_us * 5, sw.phy.mean_us);
}

}  // namespace
}  // namespace u5g
