// Full-stack packet-datapath microbenchmark (the §7 per-packet protocol
// work, measured as real CPU cost rather than simulated time): for each
// packet SDAP encap → PDCP protect (cipher + integrity) → RLC enqueue/pull →
// MAC PDU build → MAC parse → RLC reassembly → PDCP verify/decipher → SDAP
// decap. Reports warm packets/s per payload size, a per-component breakdown,
// and heap allocations per warm packet (the pooled datapath claims zero).
//
//   bench_datapath [--packets N] [--json FILE] [--trace FILE]
//                  [--metrics FILE] [--strict]
//
// `--trace` writes the per-payload measurement phases as a Chrome trace;
// `--metrics` adds an instrumented pass recording per-packet wall time into
// a LatencyHistogram; `--strict` makes any nonzero allocs/packet a hard
// failure (CI's zero-allocation regression gate).
//
// Self-check: every payload must round-trip bit-identically, and the warm
// path must stay allocation-free once buffer pools and queues are warm.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/cli.hpp"
#include "common/time.hpp"
#include "mac/mac_pdu.hpp"
#include "pdcp/pdcp_entity.hpp"
#include "phy/modulation.hpp"
#include "phy/transport_block.hpp"
#include "rlc/rlc_entity.hpp"
#include "sdap/qos.hpp"
#include "sdap/sdap_entity.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator: measures heap traffic of the warm datapath.

namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace u5g {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr std::uint8_t kQfi = 5;

/// One node-pair's worth of datapath state, reused across all packets.
struct Datapath {
  explicit Datapath(std::size_t payload)
      : payload_bytes(payload), tb_bytes(payload + 64), pdcp_tx(config()), pdcp_rx(config()),
        rlc_tx(RlcMode::UM), rlc_rx(RlcMode::UM) {
    sdap.configure_flow(kQfi, BearerId{1}, urllc_five_qi());
  }

  static PdcpConfig config() {
    return PdcpConfig{.sn_bits = 12,
                      .integrity_enabled = true,
                      .security = CipherContext{.key = 0x5deece66d2b4a1c9ULL, .bearer = 1,
                                                .downlink = true}};
  }

  /// Push one packet all the way through and back; returns delivered bytes.
  std::size_t pump(std::uint8_t fill) {
    ByteBuffer pkt(payload_bytes, fill);
    sdap.encapsulate(pkt, kQfi);
    pdcp_tx.protect(pkt);
    rlc_tx.enqueue(std::move(pkt), Nanos::zero());

    MacSubPdus sub;
    std::size_t used = 0;
    while (auto pulled = rlc_tx.pull(tb_bytes - used - kMacSubheaderBytes)) {
      used += kMacSubheaderBytes + pulled->pdu.size();
      sub.push_back(MacSubPdu{Lcid::Drb1, std::move(pulled->pdu)});
    }
    ByteBuffer tb = build_mac_pdu(sub, tb_bytes);

    std::size_t delivered = 0;
    auto parsed = parse_mac_pdu(std::move(tb));
    if (!parsed) return 0;
    for (MacSubPdu& sp : *parsed) {
      if (sp.lcid != Lcid::Drb1) continue;
      rlc_rx.receive(std::move(sp.payload), [&](ByteBuffer&& sdu, const PacketMeta&) {
        pdcp_rx.receive(std::move(sdu), [&](ByteBuffer&& plain, const PacketMeta&) {
          (void)sdap.decapsulate(plain);
          if (plain.size() == payload_bytes && plain.bytes()[0] == fill) {
            delivered = plain.size();
          }
        });
      });
    }
    return delivered;
  }

  /// Batched slot execution: push `kBatch` packets through as ONE slot's
  /// worth of work — one protect_batch over all payloads (4-lane cipher and
  /// integrity kernels), one transport block multiplexing all subPDUs (as a
  /// real slot's grant does), one streaming parse, one receive_batch. The
  /// per-batch scratch comes from the slot arena and dies at epoch_reset,
  /// so the warm batched path is as allocation-free as the scalar one.
  static constexpr std::size_t kBatch = 8;

  std::size_t pump_batch(std::uint8_t fill) {
    std::array<ByteBuffer, kBatch> pkts;
    ByteBuffer** ptrs = arena.allocate_array<ByteBuffer*>(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      pkts[i] = ByteBuffer(payload_bytes, static_cast<std::uint8_t>(fill + i));
      sdap.encapsulate(pkts[i], kQfi);
      ptrs[i] = &pkts[i];
    }
    pdcp_tx.protect_batch({ptrs, kBatch});

    const std::size_t batch_tb = kBatch * tb_bytes;
    std::array<MacSubPdu, kBatch> sub;
    std::size_t nsub = 0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < kBatch; ++i) {
      rlc_tx.enqueue(std::move(pkts[i]), Nanos::zero());
    }
    while (auto pulled = rlc_tx.pull(batch_tb - used - kMacSubheaderBytes)) {
      used += kMacSubheaderBytes + pulled->pdu.size();
      sub[nsub].lcid = Lcid::Drb1;
      sub[nsub].payload = std::move(pulled->pdu);
      if (++nsub == kBatch) break;
    }
    ByteBuffer tb = build_mac_pdu({sub.data(), nsub}, used);

    std::array<ByteBuffer, kBatch> staged;
    std::size_t nstaged = 0;
    parse_mac_pdu_to(std::move(tb), [&](ByteBuffer&& payload, const PacketMeta& meta) {
      if (meta.lcid != static_cast<std::uint8_t>(Lcid::Drb1)) return;
      rlc_rx.receive(std::move(payload), [&](ByteBuffer&& sdu, const PacketMeta&) {
        if (nstaged < kBatch) staged[nstaged++] = std::move(sdu);
      });
    });

    std::size_t delivered = 0;
    pdcp_rx.receive_batch({staged.data(), nstaged},
                          [&](ByteBuffer&& plain, const PacketMeta&) {
                            (void)sdap.decapsulate(plain);
                            if (plain.size() == payload_bytes) ++delivered;
                          });
    arena.epoch_reset();
    return delivered;
  }

  std::size_t payload_bytes;
  std::size_t tb_bytes;
  SdapEntity sdap;
  PdcpTx pdcp_tx;
  PdcpRx pdcp_rx;
  RlcTx rlc_tx;
  RlcRx rlc_rx;
  Arena arena;  ///< slot-scoped batch scratch, epoch-reset per batch
};

struct FullStackResult {
  std::size_t payload = 0;
  double packets_per_sec = 0.0;         ///< batched slot execution (headline)
  double scalar_packets_per_sec = 0.0;  ///< one-packet-at-a-time reference
  double allocs_per_packet = 0.0;       ///< batched warm path
  double scalar_allocs_per_packet = 0.0;
  std::size_t allocs = 0;
};

FullStackResult run_full_stack(std::size_t payload, int packets,
                               LatencyHistogram* hist = nullptr) {
  Datapath dp(payload);
  // Warm-up: fill buffer pools, RLC queues, PDCP state and the slot arena
  // past their high-water marks so the measured phases are the steady state.
  for (int i = 0; i < 512; ++i) {
    if (dp.pump(static_cast<std::uint8_t>(i)) == 0) {
      std::fprintf(stderr, "bench_datapath: warm-up packet %d failed to round-trip\n", i);
      std::exit(1);
    }
  }
  for (int i = 0; i < 64; ++i) {
    if (dp.pump_batch(static_cast<std::uint8_t>(i)) != Datapath::kBatch) {
      std::fprintf(stderr, "bench_datapath: warm-up batch %d failed to round-trip\n", i);
      std::exit(1);
    }
  }

  // Scalar reference pass: one packet, one kernel invocation at a time.
  const std::size_t scalar_allocs_before = g_allocs.load();
  const auto s0 = Clock::now();
  std::size_t ok = 0;
  for (int i = 0; i < packets; ++i) {
    ok += dp.pump(static_cast<std::uint8_t>(i | 1)) == payload ? 1u : 0u;
  }
  const double scalar_dt = seconds_since(s0);
  const std::size_t scalar_allocs = g_allocs.load() - scalar_allocs_before;
  if (ok != static_cast<std::size_t>(packets)) {
    std::fprintf(stderr, "bench_datapath: %zu/%d packets failed the round-trip\n",
                 static_cast<std::size_t>(packets) - ok, packets);
    std::exit(1);
  }

  // Batched slot pass (the headline): same packet count, kBatch per slot.
  const int batches = packets / static_cast<int>(Datapath::kBatch);
  const std::size_t allocs_before = g_allocs.load();
  const auto t0 = Clock::now();
  std::size_t bok = 0;
  for (int i = 0; i < batches; ++i) {
    bok += dp.pump_batch(static_cast<std::uint8_t>(i | 1));
  }
  const double dt = seconds_since(t0);
  const std::size_t allocs = g_allocs.load() - allocs_before;
  const auto bpackets = static_cast<std::size_t>(batches) * Datapath::kBatch;
  if (bok != bpackets) {
    std::fprintf(stderr, "bench_datapath: %zu/%zu batched packets failed the round-trip\n",
                 bpackets - bok, bpackets);
    std::exit(1);
  }
  if (hist) {
    // Separately-timed instrumented pass: the throughput loop above stays
    // untouched; this one pays a clock read per packet to fill the histogram.
    const int sample = std::min(packets, 20'000);
    for (int i = 0; i < sample; ++i) {
      const auto s0 = Clock::now();
      dp.pump(static_cast<std::uint8_t>(i | 1));
      hist->record(std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - s0).count());
    }
  }
  return {payload,
          static_cast<double>(bpackets) / dt,
          static_cast<double>(packets) / scalar_dt,
          static_cast<double>(allocs) / static_cast<double>(bpackets),
          static_cast<double>(scalar_allocs) / static_cast<double>(packets),
          allocs + scalar_allocs};
}

// ---------------------------------------------------------------------------
// Component micro-loops (per-layer breakdown).

double bench_cipher_mbps(std::size_t n, int iters) {
  ByteBuffer b(n, 0x5A);
  const CipherContext ctx{};
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    apply_keystream(b.bytes(), ctx, static_cast<std::uint32_t>(i));
  }
  const double dt = seconds_since(t0);
  return static_cast<double>(n) * iters / dt / 1e6;
}

double bench_integrity_mbps(std::size_t n, int iters) {
  ByteBuffer b(n, 0x5A);
  const CipherContext ctx{};
  std::uint32_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink ^= integrity_tag(b.bytes(), ctx, static_cast<std::uint32_t>(i));
  }
  const double dt = seconds_since(t0);
  if (sink == 0xDEADBEEF) std::printf("~");  // keep the loop alive
  return static_cast<double>(n) * iters / dt / 1e6;
}

double bench_prbs_lookups_per_sec(int iters) {
  const McsEntry m = mcs(19);
  long long sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink += prbs_needed(64 + (i & 1023), 4, m, 273);
  }
  const double dt = seconds_since(t0);
  if (sink < 0) std::printf("~");
  return iters / dt;
}

}  // namespace
}  // namespace u5g

int main(int argc, char** argv) {
  using namespace u5g;
  BenchOptions defaults;
  defaults.packets = 200'000;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);
  const int packets = opt.packets > 0 ? opt.packets : 200'000;

  const std::size_t payloads[] = {64, 256, 1250};
  // Literal names: TraceSpan/LatencyHistogram want storage outliving them.
  const char* const phase_name[] = {"full-stack 64 B", "full-stack 256 B", "full-stack 1250 B"};
  const char* const hist_name[] = {"datapath.packet_wall_ns.64", "datapath.packet_wall_ns.256",
                                   "datapath.packet_wall_ns.1250"};
  std::vector<TraceSpan> spans;
  MetricsRegistry metrics;
  std::vector<FullStackResult> results;
  const auto bench_t0 = Clock::now();
  const auto wall = [&] {
    return Nanos{std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - bench_t0)
                     .count()};
  };
  std::printf("bench_datapath — warm full-stack datapath (batched slot vs scalar)\n");
  std::printf("%8s %16s %16s %10s %14s\n", "payload", "batched pkt/s", "scalar pkt/s", "speedup",
              "allocs/packet");
  for (std::size_t pi = 0; pi < 3; ++pi) {
    LatencyHistogram* hist = opt.metrics ? &metrics.histogram(hist_name[pi]) : nullptr;
    const Nanos t_begin = wall();
    results.push_back(run_full_stack(payloads[pi], packets, hist));
    spans.push_back(TraceSpan{phase_name[pi], LatencyCategory::Processing,
                              static_cast<std::int32_t>(pi), t_begin, wall()});
    std::printf("%8zu %16.0f %16.0f %9.2fx %14.3f\n", results.back().payload,
                results.back().packets_per_sec, results.back().scalar_packets_per_sec,
                results.back().packets_per_sec / results.back().scalar_packets_per_sec,
                results.back().allocs_per_packet);
  }

  const double cipher64 = bench_cipher_mbps(64, 2'000'000);
  const double cipher1250 = bench_cipher_mbps(1250, 400'000);
  const double integ64 = bench_integrity_mbps(64, 2'000'000);
  const double integ1250 = bench_integrity_mbps(1250, 400'000);
  const double prbs = bench_prbs_lookups_per_sec(2'000'000);
  std::printf("\ncomponent breakdown:\n");
  std::printf("  pdcp cipher      %8.0f MB/s @64B   %8.0f MB/s @1250B\n", cipher64, cipher1250);
  std::printf("  pdcp integrity   %8.0f MB/s @64B   %8.0f MB/s @1250B\n", integ64, integ1250);
  std::printf("  prbs_needed      %8.2f Mlookups/s\n", prbs / 1e6);

  if (opt.json) {
    std::FILE* f = std::fopen(opt.json->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_datapath: cannot open %s\n", opt.json->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"datapath\",\n  \"packets\": %d,\n  \"full_stack\": [\n",
                 packets);
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::fprintf(f,
                   "    {\"payload_bytes\": %zu, \"packets_per_sec\": %.1f, "
                   "\"scalar_packets_per_sec\": %.1f, \"allocs_per_packet\": %.4f, "
                   "\"scalar_allocs_per_packet\": %.4f}%s\n",
                   results[i].payload, results[i].packets_per_sec,
                   results[i].scalar_packets_per_sec, results[i].allocs_per_packet,
                   results[i].scalar_allocs_per_packet, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"cipher_mbps_64\": %.1f,\n  \"cipher_mbps_1250\": %.1f,\n"
                 "  \"integrity_mbps_64\": %.1f,\n  \"integrity_mbps_1250\": %.1f,\n"
                 "  \"prbs_lookups_per_sec\": %.1f\n}\n",
                 cipher64, cipher1250, integ64, integ1250, prbs);
    std::fclose(f);
  }

  if (opt.trace && !write_chrome_trace(*opt.trace, spans, "bench_datapath")) {
    std::fprintf(stderr, "bench_datapath: cannot write %s\n", opt.trace->c_str());
    return 1;
  }
  if (opt.metrics) {
    std::size_t total_allocs = 0;
    for (const FullStackResult& r : results) total_allocs += r.allocs;
    metrics.counter("datapath.packets").set(static_cast<std::uint64_t>(packets) * results.size());
    metrics.counter("datapath.warm_allocs").set(total_allocs);
    if (!metrics.write_json(*opt.metrics)) {
      std::fprintf(stderr, "bench_datapath: cannot write %s\n", opt.metrics->c_str());
      return 1;
    }
  }
  if (opt.strict) {
    for (const FullStackResult& r : results) {
      if (r.allocs_per_packet > 0.0 || r.scalar_allocs_per_packet > 0.0) {
        std::fprintf(stderr,
                     "bench_datapath: --strict: %zu B payload allocated %.3f/packet batched, "
                     "%.3f/packet scalar on the warm path (expected 0)\n",
                     r.payload, r.allocs_per_packet, r.scalar_allocs_per_packet);
        return 1;
      }
    }
    std::printf("\n--strict: warm path allocation-free for all payloads (batched and scalar)\n");
  }
  return 0;
}
