#pragma once
// PHY processing-time model: how long encode (DL preparation) and decode
// (UL reception) take on a software stack.
//
// §5's feasibility condition: "UL PHY decoding and DL preparation ... should
// be less than one slot", and §7/Table 2 measure PHY ≈ 41.6 µs ± 10.8 µs on
// an Intel i7. The model is affine in the LDPC code-block count (work scales
// with coded bits) plus multiplicative noise drawn by the caller's OS model.

#include "common/time.hpp"
#include "phy/transport_block.hpp"

namespace u5g {

/// Deterministic part of PHY processing time.
struct PhyTimingParams {
  Nanos encode_base{12'000};        ///< fixed cost: resource mapping, DMRS, FFT setup
  Nanos encode_per_cb{9'000};       ///< per code block (LDPC encode is cheap)
  Nanos decode_base{18'000};        ///< fixed cost: channel estimation, demap
  Nanos decode_per_cb{22'000};      ///< per code block (LDPC iterations dominate)
  int decode_harq_extra_pct = 30;   ///< extra decode cost when soft-combining

  /// Defaults calibrated so a one-code-block transport block (the ping-size
  /// payloads of §7) lands near Table 2's 41.55 µs mean for encode+decode
  /// averaged across directions once OS noise is applied.
  static PhyTimingParams software_i7() { return {}; }

  /// Hardware-accelerated PHY (ASIC/lookaside): order of magnitude faster,
  /// used by the ablation that contrasts ASIC vs software stacks (§5).
  static PhyTimingParams asic() {
    return {Nanos{1'500}, Nanos{600}, Nanos{2'500}, Nanos{1'200}, 10};
  }
};

/// Size-dependent PHY costs. Noise is injected by ProcessingModel (os/).
class PhyTimingModel {
 public:
  explicit PhyTimingModel(PhyTimingParams p = PhyTimingParams::software_i7()) : p_(p) {}

  [[nodiscard]] Nanos encode_time(int tbs_bits) const {
    const auto seg = segment_transport_block(tbs_bits);
    return p_.encode_base + p_.encode_per_cb * seg.n_code_blocks;
  }

  [[nodiscard]] Nanos decode_time(int tbs_bits, bool harq_combining = false) const {
    const auto seg = segment_transport_block(tbs_bits);
    Nanos t = p_.decode_base + p_.decode_per_cb * seg.n_code_blocks;
    if (harq_combining) t = t + t * p_.decode_harq_extra_pct / 100;
    return t;
  }

  [[nodiscard]] const PhyTimingParams& params() const { return p_; }

 private:
  PhyTimingParams p_;
};

}  // namespace u5g
