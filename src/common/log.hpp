#pragma once
// Leveled logging with a simulated-time-aware prefix. Off by default in
// benches/tests; examples turn on Info to narrate the packet journey.

#include <cstdio>
#include <string>
#include <utility>

#include "common/time.hpp"

namespace u5g {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-global log configuration (single-threaded simulator: no locking).
class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::Off;
    return lvl;
  }

  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) >= static_cast<int>(level()); }

  template <typename... Args>
  static void write(LogLevel lvl, Nanos now, const char* component, const char* format,
                    Args&&... args) {
    if (!enabled(lvl)) return;
    std::fprintf(stderr, "[%12s] %-5s %-8s ", to_string(now).c_str(), name(lvl), component);
    std::fprintf(stderr, format, std::forward<Args>(args)...);  // NOLINT(cert-err33-c)
    std::fputc('\n', stderr);
  }

 private:
  static const char* name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off:   return "OFF";
    }
    return "?";
  }
};

}  // namespace u5g
