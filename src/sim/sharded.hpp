#pragma once
// Conservative parallel discrete-event engine: N cells as independent shards.
//
// The paper models one gNB and one UE; ROADMAP's north star is a
// production-scale simulator. PR 1 parallelised *across* Monte-Carlo
// replications — this engine parallelises *within* one scenario by running
// `StackConfig::num_cells` complete cells (core/cell.hpp), each optionally
// carrying a lite-UE background population (mac/ue_population.hpp), so a
// city-scale run is a handful of tracked full stacks plus ~10^6 flat-row
// background UEs.
//
// Synchronisation model (conservative lookahead, adaptive windows):
//   * Cross-cell effects are slot-aligned: the load signal every cell
//     exposes (load_signal()) only changes when one of its events fires or
//     its population ticks, and is exchanged at barriers on the slot grid.
//   * run_until() sizes each window from *actual* upcoming activity: the
//     window ends at the first slot-grid barrier at or after the earliest
//     next_activity() across cells. Grid barriers before that instant are
//     provably no-ops — no event fired anywhere, so every load is unchanged
//     and re-exchanging it would re-apply identical values — and skipping
//     them is therefore bitwise-invisible. Cells whose next activity lies
//     beyond the window are not dispatched at all (their clocks catch up in
//     the final window). With `intercell_load_coupling == 0` the cells are
//     provably independent, the lookahead is infinite, and the whole span
//     runs as one window.
//   * Cross-shard channels: backhaul packets enter at the engine's UPF
//     ingress and are routed to the serving cell (send_downlink_at), and the
//     inter-cell load signal scales neighbours' gNB processing through
//     `intercell_load_coupling` × `gnb_load_factor_per_ue` at each barrier.
//
// Execution model: a persistent ShardGang (sharded.cpp) replaces the PR-1
// ThreadPool here. The engine thread publishes one window descriptor —
// no per-cell closures, no queue traffic — and participates as worker 0;
// helper workers claim cells through per-cell atomic epoch slots, each
// starting from its own home range and stealing forward into lagging
// ranges. When helpers win no work for several consecutive windows (the
// 1-core container), the engine stops waking them and the multi-threaded
// path degenerates to the single-threaded instruction stream.
//
// Determinism contract (matching sim/runner.hpp): cell i always receives
// `cell_seed(seed, i)`; shards share no mutable state inside a window
// (BufferPool free-lists are thread-local and migration-safe); all
// cross-shard exchange and every merge happens on the engine thread in
// fixed cell order. Which worker claims a cell affects wall-clock only,
// never state — merged results are bitwise-identical across worker thread
// counts (work-stealing included) for the same config and injections.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cell.hpp"
#include "trace/chrome_trace.hpp"

namespace u5g {

class ShardGang;

struct ShardedOptions {
  int threads = 0;  ///< worker count; 0 = hardware concurrency
};

class ShardedEngine {
 public:
  /// Builds `base.num_cells` shards from `base` (per-cell seeds from the
  /// SplitMix64 stream rooted at `base.seed`; cell 0 keeps the root seed).
  explicit ShardedEngine(const StackConfig& base, ShardedOptions opt = {});
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] int num_cells() const { return static_cast<int>(cells_.size()); }
  [[nodiscard]] int threads() const;
  /// The slot-grid pitch synchronisation barriers live on. Actual windows
  /// are adaptive multiples of this.
  [[nodiscard]] Nanos window() const { return slot_; }

  [[nodiscard]] Cell& cell(int i) { return *cells_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Cell& cell(int i) const { return *cells_.at(static_cast<std::size_t>(i)); }

  // -- Traffic --------------------------------------------------------------
  // Injection is only legal at or after the synchronisation frontier (the
  // last completed barrier); anything earlier would violate the lookahead
  // guarantee already handed to the shards.

  /// Uplink packet at cell `cell`'s UE `ue` application layer at `at`.
  void send_uplink_at(Nanos at, int cell, int ue = 0);
  /// Downlink packet entering the (shared) UPF at `at`, routed over the
  /// backhaul cross-shard channel to serving cell `cell` for UE `ue`.
  void send_downlink_at(Nanos at, int cell, int ue = 0);

  /// Advance every shard to exactly `until`, one adaptive window at a time.
  void run_until(Nanos until);

  // -- Deterministic merged views (fixed cell order) ------------------------

  [[nodiscard]] SampleSet latency_samples_us(Direction dir) const;
  /// Tracked-stack metrics merged with every population's `population.*`
  /// counters and latency histogram.
  [[nodiscard]] MetricsRegistry merged_metrics() const;
  [[nodiscard]] std::uint64_t packets_started() const;
  [[nodiscard]] std::uint64_t packets_delivered() const;
  [[nodiscard]] std::uint64_t radio_deadline_misses() const;
  [[nodiscard]] std::uint64_t events_fired() const;
  /// Dynamic-TDD aggregates (all zero unless `dynamic_tdd.enabled`).
  [[nodiscard]] std::uint64_t punctured_retx() const;
  [[nodiscard]] std::uint64_t crosslink_ul_losses() const;
  [[nodiscard]] std::uint64_t dynamic_upgraded_slots() const;
  /// NR-U channel-access stats summed over cells in fixed order (all zero
  /// unless `lbt.enabled`).
  [[nodiscard]] LbtGate::Stats lbt_stats() const;

  /// Background-population aggregates summed over cells in fixed order.
  struct PopulationTotals {
    std::uint64_t ues = 0;            ///< background UEs across all cells
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t harq_drops = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t grants_used = 0;
    std::uint64_t queued = 0;
    std::uint64_t storage_bytes = 0;  ///< flat-row bytes (bytes/UE headline)
  };
  [[nodiscard]] PopulationTotals population_totals() const;

  /// One Chrome-trace lane per cell ("cell 0", "cell 1", ...); span views
  /// stay valid while the engine lives.
  [[nodiscard]] std::vector<TraceLane> trace_lanes() const;

 private:
  void advance_all(Nanos to, bool filter_idle);
  void exchange_load();

  StackConfig base_;
  Nanos slot_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::unique_ptr<ShardGang> gang_;  ///< null when running single-threaded
  std::vector<Cell*> active_;        ///< window dispatch list, storage reused
  std::vector<double> load_;         ///< barrier scratch, storage reused
  std::vector<double> xlink_;        ///< barrier scratch: DL-upgrade activity
  Nanos now_{};                      ///< synchronisation frontier
};

}  // namespace u5g
