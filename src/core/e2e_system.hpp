#pragma once
// End-to-end 5G system simulation: the executable twin of the §7 testbed.
//
// One UE, one gNB, a UPF, a duplex configuration, and the full protocol
// machinery: SDAP/PDCP/RLC entities do real header/cipher/segmentation work,
// the MAC runs the SR-grant handshake or configured grants, PHY timing and
// radio-bus models add their (jittered) costs, and every packet's journey is
// recorded step by step. Fig 6's latency distributions and Table 2's
// per-layer times are read directly off the records this produces.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "core/stack_config.hpp"
#include "fault/injector.hpp"
#include "node/stack.hpp"
#include "sim/simulator.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace u5g {

enum class Direction { Uplink, Downlink };

[[nodiscard]] constexpr const char* to_string(Direction d) {
  return d == Direction::Uplink ? "UL" : "DL";
}

/// Everything measured about one packet.
struct PacketRecord {
  int seq = -1;
  int ue = 0;
  Direction dir = Direction::Uplink;
  Nanos created{};
  Nanos delivered{};
  bool ok = false;
  Nanos rlc_queue_wait{};   ///< Table 2 "RLC-q" (gNB DL queue wait)
  bool has_rlc_queue_wait = false;
  int harq_transmissions = 1;
  bool missed_radio_deadline = false;
  std::array<Nanos, 6> gnb_layer_time{};  ///< indexed by static_cast<int>(Layer)

  [[nodiscard]] Nanos latency() const { return delivered - created; }
};

/// The running system.
class E2eSystem {
 public:
  explicit E2eSystem(StackConfig cfg);
  ~E2eSystem();
  E2eSystem(const E2eSystem&) = delete;
  E2eSystem& operator=(const E2eSystem&) = delete;

  /// Inject an uplink packet at UE `ue`'s application layer at time `at`.
  void send_uplink_at(Nanos at, int ue = 0);
  /// Inject a downlink packet for UE `ue` at the UPF at `at`.
  void send_downlink_at(Nanos at, int ue = 0);

  /// Run the simulation until `until` (or until idle).
  void run_until(Nanos until);

  [[nodiscard]] const std::vector<PacketRecord>& records() const { return records_; }
  [[nodiscard]] Simulator& simulator();
  [[nodiscard]] const Simulator& simulator() const;

  // -- Observability --------------------------------------------------------

  /// Per-packet span tracer (recording iff `StackConfig::trace.spans_on()`).
  [[nodiscard]] Tracer& tracer();
  [[nodiscard]] const Tracer& tracer() const;
  /// Counters + latency histograms (live iff `trace.metrics_on()`);
  /// mergeable across replications.
  [[nodiscard]] MetricsRegistry& metrics();
  [[nodiscard]] const MetricsRegistry& metrics() const;

  // -- Aggregations ---------------------------------------------------------

  /// Latency samples (µs) of delivered packets in one direction.
  [[nodiscard]] SampleSet latency_samples_us(Direction dir) const;
  /// Per-layer gNB processing stats (µs) across all packets — Table 2.
  [[nodiscard]] RunningStats gnb_layer_stats_us(Layer layer) const;
  /// RLC queue waiting time stats (µs) — Table 2's RLC-q.
  [[nodiscard]] RunningStats rlc_queue_stats_us() const;
  /// Delivered fraction within `deadline` — the reliability figure of §6.
  [[nodiscard]] double reliability_at(Direction dir, Nanos deadline) const;
  [[nodiscard]] std::uint64_t radio_deadline_misses() const { return radio_deadline_misses_; }

  // -- Loss accounting ------------------------------------------------------
  // Every offered packet ends in exactly one bucket: delivered, dropped on
  // HARQ budget exhaustion, dropped stranded (no retransmission opportunity
  // within the retry cap), or dropped by a UPF outage. Tests assert
  // `offered == delivered + harq_dropped + stranded + upf_dropped` under
  // 1-packet-per-TB traffic, so silent loss cannot deflate reliability.

  /// TBs dropped after exhausting the HARQ transmission budget (UL and DL).
  [[nodiscard]] std::uint64_t harq_dropped_tbs() const;
  /// TBs/SDUs dropped after the stranded-retry cap: no opportunity found.
  [[nodiscard]] std::uint64_t stranded_drops() const;
  /// PDUs PDCP-rx refused terminally: stale (the t-Reordering flush already
  /// advanced past their COUNT — recovery took longer than the flush timer),
  /// duplicate, or integrity-failed. Without this bucket a late-but-
  /// successful HARQ recovery can still lose its packet silently.
  [[nodiscard]] std::uint64_t pdcp_discards() const;
  /// eMBB DL TBs whose air window a URLLC arrival punctured and that
  /// re-entered HARQ (dynamic_tdd.preemption). Punctures are re-entries,
  /// never terminal: the identity above stays exact with this on the side.
  [[nodiscard]] std::uint64_t punctured_retx() const;
  /// UL transmissions lost to neighbouring-cell cross-link interference
  /// (dynamic_tdd.xlink_ul_bler × neighbour DL-upgrade activity).
  [[nodiscard]] std::uint64_t crosslink_ul_losses() const;
  /// Injected-fault tallies (all zero when `StackConfig::faults` is empty).
  [[nodiscard]] FaultInjector::Counters fault_counters() const;

  /// Cell-wide MAC backlog, tallied by word-at-a-time scans over the
  /// struct-of-arrays UE pool (mac/ue_pool.hpp) rather than a walk over the
  /// per-UE contexts.
  struct MacBacklog {
    std::size_t sr_pending = 0;    ///< UEs with a scheduling request latched
    std::size_t cg_armed = 0;      ///< UEs with a configured-grant service queued
    std::size_t retx_ues = 0;      ///< UEs with HARQ retransmissions pending
    std::size_t retx_tbs = 0;      ///< total queued retransmission TBs
  };
  [[nodiscard]] MacBacklog mac_backlog() const;

  /// Slot-scoped scratch arena for this cell. Everything allocated from it
  /// dies at the next slot barrier: run_until() epoch-resets it after the
  /// window drains, so batch drivers (and the sharded engine, which advances
  /// cells in slot windows) get warm, heap-free scratch every slot.
  [[nodiscard]] Arena& slot_arena();

  // -- Scale-out hooks (sim/sharded.hpp) ------------------------------------

  /// Packets whose injection event has fired / whose delivery completed.
  /// `started - delivered` is the cell's in-flight load, the signal shards
  /// exchange at slot boundaries.
  [[nodiscard]] std::uint64_t packets_started() const;
  [[nodiscard]] std::uint64_t packets_delivered() const;
  /// Load the gNB's processing as if `extra_ues` additional UEs were
  /// attached (on top of `num_ues`), through `gnb_load_factor_per_ue`. The
  /// sharded engine applies the neighbour-cell load signal here at every
  /// slot barrier.
  void set_external_load_ues(double extra_ues);

  // -- Dynamic TDD (tdd/dynamic_format.hpp) ---------------------------------
  // All of these are inert when `StackConfig::dynamic_tdd.enabled` is false:
  // no decision events, no extra RNG draws, activity pinned at zero.

  /// The duplex map the MAC actually schedules against: the committed
  /// dynamic overlay when the policy is enabled, the static config otherwise.
  [[nodiscard]] const DuplexConfig& effective_duplex() const;
  /// Slots committed with at least one upgraded symbol so far.
  [[nodiscard]] std::uint64_t dynamic_upgraded_slots() const;
  /// Added-DL symbol fraction of the most recently committed slot — the
  /// cross-link interference a neighbouring cell's uplink faces.
  [[nodiscard]] double dl_upgrade_activity() const;
  /// Aggregate neighbour DL-upgrade activity, set by the sharded engine at
  /// slot barriers; scales UL loss by `dynamic_tdd.xlink_ul_bler`.
  void set_crosslink_dl_activity(double aggregate_activity);

  // -- NR-U channel access (phy/lbt.hpp) ------------------------------------
  // Inert when `StackConfig::lbt.enabled` is false: no gate exists, stats
  // are all-zero, and `wifi_busy_until` reports no modeled Wi-Fi airtime.

  /// CAT4 gate counters: attempts, deferrals, CW transitions, hidden
  /// collisions, and airtime tallies. All-zero when LBT is disabled.
  [[nodiscard]] LbtGate::Stats lbt_stats() const;
  /// Modeled Wi-Fi busy airtime on [0, horizon) (generates the load process
  /// up to `horizon` when LBT is enabled; 0 otherwise). Non-const: it may
  /// extend the deterministic renewal stream.
  [[nodiscard]] Nanos wifi_busy_until(Nanos horizon);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<PacketRecord> records_;
  std::uint64_t radio_deadline_misses_ = 0;

  friend struct Impl;
};

}  // namespace u5g
