#pragma once
// Configured grants — grant-free uplink (TS 38.331 ConfiguredGrantConfig;
// paper §5). Resources are pre-allocated to a UE so it can transmit without
// the SR/grant handshake, cutting one full TDD period off the uplink latency
// (§7, Fig 6a vs 6b) at the cost of scalability: occasions reserved for a UE
// are wasted when it has nothing to send (§9 "URLLC Scalability").

#include <optional>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "mac/grant.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

struct ConfiguredGrantConfig {
  /// Spacing of configured occasions. Zero = an occasion may start at any
  /// uplink-capable symbol (the §5 idealisation).
  Nanos periodicity{};
  int tx_symbols = 2;        ///< symbols per occasion
  std::size_t tb_bytes = 128;  ///< transport block reserved per occasion
  /// Time-domain offset within the period (the standard's timeDomainOffset):
  /// staggers multiple UEs' occasions so their pre-allocations do not
  /// collide. Ignored when periodicity is zero.
  Nanos offset{};

  static ConfiguredGrantConfig every_symbol(std::size_t tb = 128, int symbols = 2) {
    return {Nanos::zero(), symbols, tb, Nanos::zero()};
  }
  static ConfiguredGrantConfig periodic(Nanos period, std::size_t tb = 128, int symbols = 2,
                                        Nanos offset = Nanos::zero()) {
    return {period, symbols, tb, offset};
  }

  [[nodiscard]] ConfiguredGrantConfig with_offset(Nanos o) const {
    ConfiguredGrantConfig c = *this;
    c.offset = o;
    return c;
  }
};

/// Per-UE configured-grant schedule.
class ConfiguredGrant {
 public:
  ConfiguredGrant(UeId ue, ConfiguredGrantConfig cfg) : ue_(ue), cfg_(cfg) {}

  /// Earliest configured occasion whose transmission starts at or after `t`.
  /// With a positive periodicity there is one occasion per grid period: the
  /// first UL window at or after the grid point (the standard's
  /// timeDomainAllocation anchors the occasion within the period; the grid
  /// point and the UL region need not coincide). Zero periodicity means
  /// occasions are dense: any UL window qualifies.
  [[nodiscard]] std::optional<UlGrant> next_occasion(const DuplexConfig& duplex, Nanos t) const {
    Nanos from = t;
    if (cfg_.periodicity > Nanos::zero()) {
      // The occasion for the current grid period starts at the first UL
      // window after the period's (offset-shifted) grid point; if `t` is
      // already past that window's start, the next period's occasion applies.
      const Nanos this_grid = align_down(t, cfg_.periodicity, cfg_.offset);
      const auto w = next_ul_tx(duplex, this_grid, cfg_.tx_symbols);
      if (w && w->start >= t) {
        return UlGrant{ue_, w->start, w->end, cfg_.tb_bytes, HarqId{0}, true};
      }
      from = align_up(t, cfg_.periodicity, cfg_.offset);
      if (from == t) from = t + cfg_.periodicity;  // t exactly on grid but window passed
    }
    const auto w = next_ul_tx(duplex, from, cfg_.tx_symbols);
    if (!w) return std::nullopt;
    return UlGrant{ue_, w->start, w->end, cfg_.tb_bytes, HarqId{0}, true};
  }

  /// Occasions per second this configuration reserves — the §9 waste metric.
  [[nodiscard]] double occasions_per_second(const DuplexConfig& duplex) const;

  [[nodiscard]] UeId ue() const { return ue_; }
  [[nodiscard]] const ConfiguredGrantConfig& config() const { return cfg_; }

 private:
  UeId ue_;
  ConfiguredGrantConfig cfg_;
};

}  // namespace u5g
