#include "mac/predictive_cg.hpp"

#include <cmath>

namespace u5g {

void ArrivalPredictor::observe(Nanos arrival) {
  if (count_ > 0) {
    const auto gap = static_cast<double>((arrival - last_).count());
    if (period_ <= 0.0) {
      period_ = gap;
    } else {
      // Prediction error against the running model, before updating it.
      const double err = std::abs(gap - period_);
      jitter_rms_ = jitter_rms_ <= 0.0 ? err : (1 - alpha_) * jitter_rms_ + alpha_ * err;
      period_ = (1 - alpha_) * period_ + alpha_ * gap;
    }
  }
  last_ = arrival;
  ++count_;
}

std::optional<Nanos> ArrivalPredictor::predict_next() const {
  if (!warmed_up() || period_ <= 0.0) return std::nullopt;
  return last_ + from_double(period_);
}

std::optional<UlGrant> PredictiveConfiguredGrant::plan_next_occasion(const DuplexConfig& cfg,
                                                                     Nanos now) const {
  const auto predicted = predictor_.predict_next();
  if (!predicted) return std::nullopt;
  // The data reaches the MAC stack_lead after the application produces it.
  // The occasion must open a jitter margin *late*: an occasion that starts
  // before the data is ready is wasted, so aim past the plausible lateness
  // of the arrival. Early arrivals are still served (they just wait).
  const Nanos margin = Nanos{static_cast<std::int64_t>(
      margin_factor_ * static_cast<double>(predictor_.jitter_estimate().count()))};
  Nanos target = *predicted + stack_lead_ + margin;
  if (target < now) target = now;
  const auto w = next_ul_tx(cfg, target, tx_symbols_);
  if (!w) return std::nullopt;
  return UlGrant{ue_, w->start, w->end, tb_bytes_, HarqId{0}, true};
}

double PredictiveConfiguredGrant::reserved_windows_per_second() const {
  const Nanos period = predictor_.period_estimate();
  if (period <= Nanos::zero()) return 0.0;
  return 1e9 / static_cast<double>(period.count());
}

}  // namespace u5g
