#pragma once
// GTP-U (TS 29.281): the user-plane tunnel between gNB and UPF (§3: the gNB
// "encapsulates it into a GTP-U packet, forwarding it to the UPF").
// Standard 8-byte mandatory header: version/flags, message type 0xFF (G-PDU),
// length, TEID.

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace u5g {

struct GtpuHeader {
  std::uint32_t teid = 0;
  std::uint16_t length = 0;  ///< payload bytes following the header

  static constexpr std::uint8_t kVersionFlags = 0x30;  // v1, PT=1
  static constexpr std::uint8_t kMsgTypeGpdu = 0xFF;
};

/// Wrap `payload` in a GTP-U tunnel header for `teid`.
void gtpu_encapsulate(ByteBuffer& payload, std::uint32_t teid);

/// Strip and return the header; nullopt when malformed (bad version/type,
/// truncated, or length mismatch).
[[nodiscard]] std::optional<GtpuHeader> gtpu_decapsulate(ByteBuffer& packet);

inline constexpr std::size_t kGtpuHeaderBytes = 8;

}  // namespace u5g
