// Multi-UE integration tests (§9 "URLLC Scalability"): per-UE isolation,
// scheduler contention, staggered configured grants, load-dependent gNB
// processing, and FR2 blockage in the end-to-end path.

#include <gtest/gtest.h>

#include "core/e2e_system.hpp"
#include "tdd/common_config.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

constexpr Nanos kPattern{2'000'000};

TEST(MultiUeTest, AllUesDeliver) {
  StackConfig cfg = StackConfig::testbed_grant_free(1);
  cfg.num_ues = 4;
  E2eSystem sys(std::move(cfg));
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    for (int ue = 0; ue < 4; ++ue) {
      sys.send_uplink_at(kPattern * (4 * i) +
                             Nanos{static_cast<std::int64_t>(rng.uniform() * 2e6)},
                         ue);
      sys.send_downlink_at(kPattern * (4 * i + 2) +
                               Nanos{static_cast<std::int64_t>(rng.uniform() * 2e6)},
                           ue);
    }
  }
  sys.run_until(kPattern * 4 * 60);
  int per_ue[4] = {0, 0, 0, 0};
  for (const PacketRecord& r : sys.records()) {
    ASSERT_TRUE(r.ok) << "seq " << r.seq << " ue " << r.ue;
    ++per_ue[r.ue];
  }
  for (int ue = 0; ue < 4; ++ue) EXPECT_EQ(per_ue[ue], 100) << ue;
}

TEST(MultiUeTest, PayloadsNotCrossDelivered) {
  // Distinct per-UE security contexts: a TB protected for UE 0 must fail
  // integrity on UE 1's chain. Indirectly verified end to end: every packet
  // sent to UE k is delivered with its own record intact (the finalize path
  // would mismatch sequence numbers otherwise).
  StackConfig cfg = StackConfig::testbed_grant_free(3);
  cfg.num_ues = 2;
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < 20; ++i) {
    sys.send_downlink_at(kPattern * i + 100_us, i % 2);
  }
  sys.run_until(kPattern * 40);
  for (const PacketRecord& r : sys.records()) {
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.ue, r.seq % 2);
  }
}

TEST(MultiUeTest, ContentionRaisesUplinkLatency) {
  // Synchronised bursts: every UE has uplink data at the same instant.
  // Grants serialise on the scarce UL windows, so the *average over UEs*
  // grows with the burst size (§9's scalability problem).
  auto mean_ul = [](int n_ues, std::uint64_t seed) {
    StackConfig cfg = StackConfig::testbed_grant_based(seed);
    cfg.num_ues = n_ues;
    E2eSystem sys(std::move(cfg));
    for (int i = 0; i < 40; ++i) {
      for (int ue = 0; ue < n_ues; ++ue) {
        sys.send_uplink_at(kPattern * (4 * i) + 100_us, ue);
      }
    }
    sys.run_until(kPattern * 4 * 60);
    return sys.latency_samples_us(Direction::Uplink).mean();
  };
  const double one = mean_ul(1, 10);
  const double six = mean_ul(6, 10);
  EXPECT_GT(six, one * 1.15);
}

TEST(MultiUeTest, GnbProcessingScalesWithUes) {
  // The gNB MAC draw is recorded on the uplink receive path; its mean must
  // scale with the configured load factor: 1 + 0.08 * (11 - 1) = 1.8.
  auto mac_mean = [](int n_ues) {
    StackConfig cfg = StackConfig::testbed_grant_free(20);
    cfg.num_ues = n_ues;
    E2eSystem sys(std::move(cfg));
    for (int i = 0; i < 100; ++i) sys.send_uplink_at(kPattern * i + 50_us, i % n_ues);
    sys.run_until(kPattern * 140);
    return sys.gnb_layer_stats_us(Layer::MAC).mean();
  };
  const double base = mac_mean(1);
  const double loaded = mac_mean(11);
  EXPECT_NEAR(loaded / base, 1.8, 0.25);
}

TEST(MultiUeTest, StaggeredConfiguredGrantsDoNotCollide) {
  // Two UEs with periodic CG on the same pattern: occasions are offset by
  // the configured stagger, so simultaneous arrivals both get served within
  // one pattern of each other.
  StackConfig cfg = StackConfig::testbed_grant_free(30);
  cfg.num_ues = 2;
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < 40; ++i) {
    sys.send_uplink_at(kPattern * 2 * i + 100_us, 0);
    sys.send_uplink_at(kPattern * 2 * i + 100_us, 1);  // same instant
  }
  sys.run_until(kPattern * 2 * 60);
  auto ul = sys.latency_samples_us(Direction::Uplink);
  ASSERT_EQ(ul.count(), 80u);
  EXPECT_LT(ul.max(), 2.5 * kPattern.us());
}

TEST(MultiUeTest, PdcpReorderingTimerUnblocksAfterPermanentLoss) {
  // Regression: a packet whose HARQ budget is exhausted leaves a hole in the
  // PDCP COUNT sequence. Without t-Reordering, every later packet would be
  // held forever; with it, later packets are flushed within the timer.
  StackConfig cfg = StackConfig::testbed_grant_free(60);
  // A 40 ms blocked dwell kills packets sent during it outright.
  cfg.blockage = MmWaveBlockage::Params{.mean_los = 200_ms,
                                        .mean_blocked = 40_ms,
                                        .blocked_loss_prob = 1.0};
  cfg.pdcp_t_reordering = 5_ms;
  E2eSystem sys(std::move(cfg));
  constexpr int kPackets = 100;
  for (int i = 0; i < kPackets; ++i) sys.send_downlink_at(10_ms * i + 100_us);
  sys.run_until(10_ms * (kPackets + 30));
  const auto delivered = sys.latency_samples_us(Direction::Downlink).count();
  // Most packets are in LoS dwells (~83 % of time) and must deliver even
  // though some mid-sequence packets died.
  EXPECT_GT(delivered, kPackets * 6 / 10);
  // And flushed stragglers are bounded: nothing waits tens of ms in PDCP.
  auto lat = sys.latency_samples_us(Direction::Downlink);
  EXPECT_LT(lat.quantile(0.95) / 1e3, 12.0);
}

TEST(MultiUeTest, InvalidUeIndexThrows) {
  StackConfig cfg = StackConfig::testbed_grant_free(40);
  cfg.num_ues = 2;
  E2eSystem sys(std::move(cfg));
  EXPECT_THROW(sys.send_uplink_at(1_ms, 2), std::out_of_range);
  EXPECT_THROW(sys.send_downlink_at(1_ms, -1), std::out_of_range);
}

TEST(MultiUeTest, BlockageDegradesDelivery) {
  // FR2-style blockage: blocked dwells (50 ms) dwarf the HARQ recovery span
  // (~4 attempts in a few ms), so packets arriving while blocked are lost.
  // Sparse offered load isolates the blockage effect from queueing collapse.
  StackConfig cfg = StackConfig::testbed_grant_free(50);
  cfg.blockage = MmWaveBlockage::Params{.mean_los = 50_ms,
                                        .mean_blocked = 50_ms,
                                        .blocked_loss_prob = 1.0};
  E2eSystem sys(std::move(cfg));
  constexpr int kPackets = 200;
  const Nanos spacing = kPattern * 5;  // 10 ms apart
  for (int i = 0; i < kPackets; ++i) sys.send_downlink_at(spacing * i + 100_us);
  sys.run_until(spacing * (kPackets + 20));
  const auto delivered = sys.latency_samples_us(Direction::Downlink).count();
  // ~LoS fraction of packets get through (wide bounds: dwells correlate
  // adjacent packets).
  EXPECT_LT(delivered, 170u);
  EXPECT_GT(delivered, 50u);
}

}  // namespace
}  // namespace u5g
