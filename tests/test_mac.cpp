// Unit tests for src/mac: SR procedure, configured grants, HARQ, BSR,
// MAC PDU multiplexing, and the scheduler's timing decisions.

#include <gtest/gtest.h>

#include "mac/bsr.hpp"
#include "mac/configured_grant.hpp"
#include "mac/harq.hpp"
#include "mac/mac_pdu.hpp"
#include "mac/sched_request.hpp"
#include "mac/scheduler.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/slot_format.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

constexpr Nanos kSym{17'857};
constexpr Nanos kSlot{250'000};

// ---------------------------------------------------------------------------
// SR procedure

TEST(SrProcedureTest, EverySymbolUsesNextUlSymbol) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  SrProcedure sr{SrConfig::every_symbol()};
  const auto op = sr.next_sr_opportunity(dm, 1_ns);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->start, kSlot + kSym * 6);  // first UL symbol of the M slot
  EXPECT_EQ(op->duration(), kSym);
}

TEST(SrProcedureTest, PerSlotGridAlignsToUlSlots) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);  // U slot at 1.5 ms
  SrProcedure sr{SrConfig::per_slot(kMu1)};
  const auto op = sr.next_sr_opportunity(dddu, 1_ns);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->start, Nanos{1'500'000});
  // From inside the UL slot, the next grid point is the next period's U slot.
  const auto op2 = sr.next_sr_opportunity(dddu, Nanos{1'500'001});
  ASSERT_TRUE(op2.has_value());
  EXPECT_EQ(op2->start, Nanos{3'500'000});
}

TEST(SrProcedureTest, OnBoundaryArrivalCatchesCurrentWindow) {
  // Pins the align_up/align_down convention at the SR grid (audited in the
  // LBT PR): an arrival exactly on a grid point whose window has not yet
  // started belongs to the CURRENT period — `align_down` finds this
  // period's window and the `w->start >= t` guard accepts it; the
  // `from == t ? from + periodicity` bump only applies once the window is
  // genuinely behind the arrival.
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);  // U slot at 1.5 ms
  SrProcedure sr{SrConfig::per_slot(kMu1)};
  // 1.5 ms is both a grid point and the UL window start: usable immediately.
  const auto on = sr.next_sr_opportunity(dddu, Nanos{1'500'000});
  ASSERT_TRUE(on.has_value());
  EXPECT_EQ(on->start, Nanos{1'500'000});
  // On the grid point one slot *before* the UL slot: still this period.
  const auto before = sr.next_sr_opportunity(dddu, Nanos{1'000'000});
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->start, Nanos{1'500'000});
}

TEST(SrProcedureTest, TransmissionBudget) {
  SrProcedure sr{SrConfig{Nanos::zero(), 1, 3}};
  EXPECT_FALSE(sr.exhausted());
  for (int i = 0; i < 3; ++i) sr.on_sr_sent();
  EXPECT_TRUE(sr.exhausted());
  sr.reset();
  EXPECT_FALSE(sr.exhausted());
  EXPECT_EQ(sr.transmissions(), 0);
}

// ---------------------------------------------------------------------------
// Configured grants

TEST(ConfiguredGrantTest, DenseOccasions) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const ConfiguredGrant cg{UeId{1}, ConfiguredGrantConfig::every_symbol(128, 2)};
  const auto g = cg.next_occasion(dm, 1_ns);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->tx_start, kSlot + kSym * 6);
  EXPECT_EQ(g->tx_end, kSlot + kSym * 8);
  EXPECT_TRUE(g->configured);
  EXPECT_EQ(g->tb_bytes, 128u);
}

TEST(ConfiguredGrantTest, PeriodicOnePerGridPeriod) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);  // 2 ms period, U at 1.5
  const ConfiguredGrant cg{UeId{1}, ConfiguredGrantConfig::periodic(2_ms, 256, 4)};
  const auto g1 = cg.next_occasion(dddu, 0_ns);
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->tx_start, Nanos{1'500'000});
  // Just after that occasion started: next period's occasion.
  const auto g2 = cg.next_occasion(dddu, g1->tx_start + 1_ns);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->tx_start, Nanos{3'500'000});
}

TEST(ConfiguredGrantTest, OnBoundarySemantics) {
  // Same boundary convention as the SR grid, with the offset phase live.
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);  // 2 ms period, U at 1.5
  const ConfiguredGrant cg{UeId{1}, ConfiguredGrantConfig::periodic(2_ms, 256, 4)};
  // Arriving exactly when the occasion's window starts: usable, not skipped.
  const auto at_window = cg.next_occasion(dddu, Nanos{1'500'000});
  ASSERT_TRUE(at_window.has_value());
  EXPECT_EQ(at_window->tx_start, Nanos{1'500'000});
  // Arriving exactly on the next grid point (2 ms): that period's window.
  const auto at_grid = cg.next_occasion(dddu, 2_ms);
  ASSERT_TRUE(at_grid.has_value());
  EXPECT_EQ(at_grid->tx_start, Nanos{3'500'000});
  // Offset shifts the grid phase without changing the boundary rule.
  const ConfiguredGrant staggered{
      UeId{2}, ConfiguredGrantConfig::periodic(2_ms, 256, 4, Nanos{500'000})};
  const auto off = staggered.next_occasion(dddu, Nanos{500'000});
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->tx_start, Nanos{1'500'000});  // this offset-period's UL window
}

TEST(ConfiguredGrantTest, OccasionsPerSecond) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const ConfiguredGrant per_period{UeId{1}, ConfiguredGrantConfig::periodic(500_us, 128, 2)};
  // One occasion each 0.5 ms -> 2000/s.
  EXPECT_NEAR(per_period.occasions_per_second(dm), 2000.0, 1.0);
  const ConfiguredGrant dense{UeId{1}, ConfiguredGrantConfig::every_symbol(128, 2)};
  EXPECT_GT(dense.occasions_per_second(dm), per_period.occasions_per_second(dm));
}

// ---------------------------------------------------------------------------
// HARQ

TEST(HarqTest, ClaimAllProcesses) {
  HarqEntity h;
  for (int i = 0; i < HarqEntity::kProcesses; ++i) {
    EXPECT_TRUE(h.start(100, Nanos{i}).has_value());
  }
  EXPECT_FALSE(h.start(100, 0_ns).has_value());  // pool exhausted
  EXPECT_EQ(h.busy_count(), HarqEntity::kProcesses);
}

TEST(HarqTest, AckFreesProcess) {
  HarqEntity h;
  const auto id = h.start(100, 0_ns);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(h.on_feedback(*id, true));  // ACK: no retx
  EXPECT_EQ(h.busy_count(), 0);
}

TEST(HarqTest, NackTriggersRetxUntilBudget) {
  HarqEntity h{3};
  const auto id = h.start(100, 0_ns);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(h.on_feedback(*id, false));   // 1st NACK -> retx
  h.on_retransmit(*id);
  EXPECT_TRUE(h.on_feedback(*id, false));   // 2nd NACK -> retx (tx 3 of 3)
  h.on_retransmit(*id);
  EXPECT_FALSE(h.on_feedback(*id, false));  // budget exhausted: drop
  EXPECT_EQ(h.dropped(), 1u);
  EXPECT_EQ(h.busy_count(), 0);
}

TEST(HarqTest, EffectiveBlerDecreasesPerAttempt) {
  EXPECT_DOUBLE_EQ(effective_bler(0.1, 1), 0.1);
  EXPECT_NEAR(effective_bler(0.1, 2), 0.01, 1e-12);
  EXPECT_LT(effective_bler(0.1, 4), effective_bler(0.1, 2));
}

// ---------------------------------------------------------------------------
// BSR

class BsrRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BsrRoundTripTest, BucketCoversValue) {
  const std::size_t bytes = GetParam();
  const int idx = bsr_index(bytes);
  EXPECT_GE(idx, 0);
  EXPECT_LE(idx, 31);
  if (bytes == 0) {
    EXPECT_EQ(idx, 0);
  } else {
    EXPECT_GT(idx, 0);
    // The bucket's assumed size covers the real backlog (grants sized from
    // the index are never too small), except in the saturated top bucket.
    if (idx < 31) {
      EXPECT_GE(bsr_bucket_bytes(idx), bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BsrRoundTripTest,
                         ::testing::Values(0, 1, 10, 11, 64, 500, 9'999, 100'000, 10'000'000));

TEST(BsrTest, IndexMonotone) {
  int prev = 0;
  for (std::size_t b : {std::size_t{1}, std::size_t{20}, std::size_t{300}, std::size_t{5'000},
                        std::size_t{80'000}}) {
    const int idx = bsr_index(b);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(BsrTest, CeEncodeDecode) {
  const ShortBsr ce = ShortBsr::for_bytes(1000, /*lcg=*/3);
  const ShortBsr back = ShortBsr::decode(ce.encode());
  EXPECT_EQ(back.lcg, 3);
  EXPECT_EQ(back.index, ce.index);
}

// ---------------------------------------------------------------------------
// MAC PDU

TEST(MacPduTest, RoundTripWithPadding) {
  MacSubPdus sub;
  sub.push_back(MacSubPdu{Lcid::ShortBsr, ByteBuffer(1, 0x21)});
  sub.push_back(MacSubPdu{Lcid::Drb1, ByteBuffer(10, 0x42)});
  ByteBuffer tb = build_mac_pdu(sub, 64);
  EXPECT_EQ(tb.size(), 64u);

  const auto parsed = parse_mac_pdu(std::move(tb));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].lcid, Lcid::ShortBsr);
  EXPECT_EQ((*parsed)[1].lcid, Lcid::Drb1);
  EXPECT_EQ((*parsed)[1].payload.size(), 10u);
  EXPECT_EQ((*parsed)[1].payload.bytes()[0], 0x42);
}

TEST(MacPduTest, ExactFitNoPadding) {
  MacSubPdus sub;
  sub.push_back(MacSubPdu{Lcid::Drb1, ByteBuffer(5, 0x1)});
  ByteBuffer tb = build_mac_pdu(sub, kMacSubheaderBytes + 5);
  const auto parsed = parse_mac_pdu(std::move(tb));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(MacPduTest, OverflowThrows) {
  MacSubPdus sub;
  sub.push_back(MacSubPdu{Lcid::Drb1, ByteBuffer(100, 0x1)});
  EXPECT_THROW(build_mac_pdu(sub, 50), std::length_error);
}

TEST(MacPduTest, MalformedParseReturnsNullopt) {
  ByteBuffer bad(2, 0x01);  // LCID 1 then a truncated length field
  EXPECT_FALSE(parse_mac_pdu(std::move(bad)).has_value());
  ByteBuffer bad2(4);
  bad2.bytes()[0] = 0x01;
  bad2.bytes()[1] = 0x00;
  bad2.bytes()[2] = 0x50;  // claims 80 bytes, only 1 present
  EXPECT_FALSE(parse_mac_pdu(std::move(bad2)).has_value());
}

// ---------------------------------------------------------------------------
// Scheduler

TEST(SchedulerTest, UlGrantTimelineIdealised) {
  const FddConfig fdd{kMu2};
  MacScheduler sched{fdd, SchedulerParams::idealised()};
  // SR decoded mid-slot 0: decision at slot 1, control at slot 1, PUSCH
  // right after the control symbol.
  const auto plan = sched.plan_ul_grant(UeId{1}, Nanos{100'000});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->control.start, kSlot);
  EXPECT_EQ(plan->control.end, kSlot + kSym);
  EXPECT_EQ(plan->grant.tx_start, kSlot + kSym);
  EXPECT_EQ(plan->grant.duration(), kSym * 2);
}

TEST(SchedulerTest, UlGrantHonoursUePrep) {
  const FddConfig fdd{kMu2};
  SchedulerParams p;
  p.ue_min_prep = 100_us;
  MacScheduler sched{fdd, p};
  const auto plan = sched.plan_ul_grant(UeId{1}, 1_ns);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->grant.tx_start - plan->control.end, 100_us);
}

TEST(SchedulerTest, DmGrantBasedCrossesPeriod) {
  // The §5 headline: on DM, the SR->grant->data handshake lands the data in
  // the *next* TDD period's UL region.
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  MacScheduler sched{dm, SchedulerParams::idealised()};
  // SR decoded at the end of period 0's UL region.
  const auto plan = sched.plan_ul_grant(UeId{1}, kSlot * 2 - kSym);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->grant.tx_start, kSlot * 3);  // next period's M-slot tail
}

TEST(SchedulerTest, DlPlanWaitsForGranuleStart) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  MacScheduler sched{dm, SchedulerParams::idealised()};
  // Ready just after slot 0 starts: served in the M slot, completing at the
  // end of its DL run.
  const auto a = sched.plan_dl(UeId{1}, 1_ns, 64);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tx_start, kSlot);
  EXPECT_EQ(a->tx_end, kSlot + kSym * 4);
}

TEST(SchedulerTest, RadioLeadDelaysService) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  SchedulerParams p;
  p.radio_lead = kSlot;  // one slot of staging
  MacScheduler sched{dm, p};
  const auto a = sched.plan_dl(UeId{1}, 1_ns, 64);
  ASSERT_TRUE(a.has_value());
  EXPECT_GE(a->tx_start, kSlot + 1_ns);
  EXPECT_EQ(a->tx_start, kSlot * 2);  // slot 1 start is < ready+lead, so slot 2
}

TEST(SchedulerTest, BookingSerialisesDl) {
  const FddConfig fdd{kMu2};
  MacScheduler sched{fdd, SchedulerParams::idealised()};
  const auto a1 = sched.plan_dl(UeId{1}, 1_ns, 64);
  const auto a2 = sched.plan_dl(UeId{2}, 1_ns, 64);
  ASSERT_TRUE(a1 && a2);
  EXPECT_GE(a2->tx_start, a1->tx_end);  // no double-booking
  sched.reset();
  const auto a3 = sched.plan_dl(UeId{3}, 1_ns, 64);
  EXPECT_EQ(a3->tx_start, a1->tx_start);  // reset forgets bookings
}

TEST(SchedulerTest, BookingSerialisesUl) {
  const FddConfig fdd{kMu2};
  MacScheduler sched{fdd, SchedulerParams::idealised()};
  const auto p1 = sched.plan_ul_grant(UeId{1}, 1_ns);
  const auto p2 = sched.plan_ul_grant(UeId{2}, 1_ns);
  ASSERT_TRUE(p1 && p2);
  EXPECT_GE(p2->grant.tx_start, p1->grant.tx_end);
}

TEST(SchedulerTest, NoUplinkMeansNoGrant) {
  const SlotFormatConfig all_dl{kMu2, {0}};
  MacScheduler sched{all_dl, SchedulerParams::idealised()};
  EXPECT_FALSE(sched.plan_ul_grant(UeId{1}, 1_ns).has_value());
}

}  // namespace
}  // namespace u5g
