#pragma once
// Reliability analysis (§6): URLLC reliability is "fraction of packets
// delivered within the deadline" — both channel loss and deadline misses
// from non-deterministic latency count against it. Helpers here turn latency
// samples into the paper's reliability statements (99.99 % / 99.999 %).

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"

namespace u5g {

/// URLLC targets from the paper's abstract/§1.
inline constexpr double kUrllcReliabilityTarget = 0.9999;      // "higher than 99.99 %"
inline constexpr double kUrllcStrictReliability = 0.99999;     // "99.999 %" (abstract)

struct ReliabilityReport {
  Nanos deadline{};
  std::size_t delivered = 0;
  std::size_t offered = 0;          ///< includes lost packets
  double fraction_within = 0.0;     ///< of offered
  bool meets_urllc = false;
  bool meets_strict = false;
  double nines = 0.0;               ///< -log10(1 - fraction), capped
};

/// Evaluate a latency sample set (µs values) against a deadline. `offered`
/// counts packets that were sent; samples only exist for delivered ones, so
/// the loss difference is charged against reliability.
[[nodiscard]] ReliabilityReport evaluate_reliability(const SampleSet& latencies_us,
                                                     std::size_t offered, Nanos deadline);

/// Number of "nines" of a reliability fraction (0.999 -> 3.0), capped at 9.
[[nodiscard]] double reliability_nines(double fraction);

/// One point of a reliability-vs-deadline curve (bench_fault's headline
/// figure: how many nines survive as the deadline tightens).
struct NinesPoint {
  Nanos deadline{};
  double fraction_within = 0.0;
  double nines = 0.0;
};

/// Evaluate the same sample set against a ladder of deadlines. `deadlines`
/// need not be sorted; points come back in input order.
[[nodiscard]] std::vector<NinesPoint> nines_vs_deadline(const SampleSet& latencies_us,
                                                        std::size_t offered,
                                                        const std::vector<Nanos>& deadlines);

}  // namespace u5g
