#!/usr/bin/env python3
"""Plot the paper's figures from the CSV artifacts the benches emit.

Usage:
    mkdir -p artifacts
    ./build/bench/bench_fig5 artifacts
    ./build/bench/bench_fig6 artifacts
    python3 scripts/plot_figures.py artifacts

Writes fig5.png and fig6.png next to the CSVs. Requires matplotlib.
"""

import csv
import sys
from collections import defaultdict
from pathlib import Path


def plot_fig5(directory: Path, plt) -> None:
    path = directory / "fig5.csv"
    if not path.exists():
        print(f"skip: {path} not found (run bench_fig5 {directory})")
        return
    series = defaultdict(lambda: ([], [], []))  # bus -> (samples, mean, p99)
    with open(path) as f:
        for row in csv.DictReader(f):
            s = series[row["bus"]]
            s[0].append(int(row["samples"]))
            s[1].append(float(row["mean_us"]))
            s[2].append(float(row["p99_us"]))

    fig, ax = plt.subplots(figsize=(6, 4))
    for bus, (xs, mean, p99) in series.items():
        ax.plot(xs, mean, marker="o", label=f"{bus} (mean)")
        ax.plot(xs, p99, linestyle="--", alpha=0.5, label=f"{bus} (p99)")
    ax.set_xlabel("Number of submitted samples")
    ax.set_ylabel("Latency (µs)")
    ax.set_title("Fig 5: radio sample-submission latency")
    ax.legend(fontsize=8)
    ax.grid(alpha=0.3)
    out = directory / "fig5.png"
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print(f"wrote {out}")


def plot_fig6(directory: Path, plt) -> None:
    fig, axes = plt.subplots(1, 2, figsize=(10, 4), sharey=True)
    titles = {"fig6a.csv": "(a) grant-based", "fig6b.csv": "(b) grant-free"}
    any_found = False
    for ax, (name, title) in zip(axes, titles.items()):
        path = directory / name
        if not path.exists():
            print(f"skip: {path} not found (run bench_fig6 {directory})")
            continue
        any_found = True
        xs, dl, ul = [], [], []
        with open(path) as f:
            for row in csv.DictReader(f):
                xs.append(float(row["bin_start_ms"]))
                dl.append(float(row["dl_probability"]))
                ul.append(float(row["ul_probability"]))
        width = xs[1] - xs[0] if len(xs) > 1 else 0.25
        ax.bar(xs, dl, width=width * 0.9, align="edge", alpha=0.6, label="Downlink")
        ax.bar(xs, ul, width=width * 0.9, align="edge", alpha=0.6, label="Uplink")
        ax.set_xlabel("One-way latency (ms)")
        ax.set_title(title)
        ax.legend()
        ax.grid(alpha=0.3)
    if any_found:
        axes[0].set_ylabel("Probability")
        out = directory / "fig6.png"
        fig.savefig(out, dpi=150, bbox_inches="tight")
        print(f"wrote {out}")


def main() -> int:
    directory = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts")
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSVs remain usable with any plotting tool")
        return 1
    plot_fig5(directory, plt)
    plot_fig6(directory, plt)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
