#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace u5g {

std::string to_string(Nanos t) {
  char buf[48];
  const std::int64_t v = t.count();
  const std::int64_t a = v < 0 ? -v : v;
  if (a < 1'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(v));
  } else if (a < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(v) / 1e3);
  } else if (a < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(v) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(v) / 1e9);
  }
  return buf;
}

}  // namespace u5g
