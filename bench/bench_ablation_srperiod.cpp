// Ablation A7 (§1): the scheduling-request periodicity. The paper lists the
// "period of scheduling requests" among the protocol configurations that
// affect latency. Sweep the SR periodicity on the testbed configuration and
// measure grant-based uplink latency: sparse SR opportunities add their own
// waiting stage in front of the whole handshake.

#include <cstdio>

#include "core/e2e_system.hpp"
#include "mac/sched_request.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kPackets = 1200;

struct Outcome {
  double mean_ms;
  double p99_ms;
};

Outcome run(Nanos sr_period, std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_based(seed);
  cfg.sr = SrConfig{sr_period, 1, 8};
  E2eSystem sys(std::move(cfg));
  Rng rng(seed + 1);
  const Nanos pattern = 2_ms;
  for (int i = 0; i < kPackets; ++i) {
    sys.send_uplink_at(pattern * (3 * i) +
                       Nanos{static_cast<std::int64_t>(
                           rng.uniform() * static_cast<double>(pattern.count()))});
  }
  sys.run_until(pattern * (3 * kPackets + 60));
  auto lat = sys.latency_samples_us(Direction::Uplink);
  return {lat.mean() / 1e3, lat.quantile(0.99) / 1e3};
}

}  // namespace

int main() {
  std::printf("== Ablation A7: SR periodicity vs grant-based UL latency (testbed, DDDU) ==\n\n");
  std::printf("   %14s | %9s %9s\n", "SR period", "mean[ms]", "p99[ms]");

  struct Case {
    const char* label;
    Nanos period;
  };
  const Case cases[] = {
      {"every symbol", Nanos::zero()},  // footnote 2's idealisation
      {"0.5 ms (slot)", 500_us},
      {"2 ms", 2_ms},
      {"4 ms", 4_ms},
      {"8 ms", 8_ms},
  };

  double first_mean = 0.0;
  double last_mean = 0.0;
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Outcome o = run(cases[i].period, 300 + i);
    std::printf("   %14s | %9.3f %9.3f\n", cases[i].label, o.mean_ms, o.p99_ms);
    if (i == 0) first_mean = o.mean_ms;
    if (i + 1 == std::size(cases)) last_mean = o.mean_ms;
  }

  // Sparse SR opportunities add an extra waiting stage to the handshake;
  // with an 8 ms SR period the mean rises by more than a millisecond over
  // the dense-SR baseline.
  const bool ok = last_mean > first_mean + 1.0;
  std::printf("\nsparser SR opportunities push the whole handshake later: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
