#pragma once
// Latency-budget analysis — §5's closing requirement made checkable:
// "for all viable configurations, the radio and processing latency should
// be less than one slot. If this threshold is not met, an additional slot
// is missed, leading to a deadline violation. To meet the requirements for
// (i) UL and DL MAC scheduling, (ii) UL PHY decoding and DL preparation,
// and (iii) both UL and DL radio latency, it is essential to provide a
// real-world system capable of achieving these benchmarks."
//
// Given a duplex configuration and a deadline, the analyzer computes the
// protocol floor (nothing a better computer can fix) and the remaining
// budget; given a concrete platform (processing profile + radio heads) it
// verifies each §5 requirement and reports the verdict per item.

#include <string>
#include <vector>

#include "core/latency_model.hpp"
#include "os/proc_time.hpp"
#include "radio/radio_head.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// The protocol floor and what is left of the deadline.
struct LatencyBudget {
  AccessMode mode{};
  Nanos deadline{};
  Nanos protocol_floor{};   ///< worst-case latency with a zero-cost stack
  Nanos remaining{};        ///< deadline - protocol_floor (clamped at 0)
  bool protocol_feasible = false;  ///< floor fits the deadline at all
};

/// Compute the budget for one (configuration, access mode, deadline).
[[nodiscard]] LatencyBudget compute_budget(const DuplexConfig& cfg, AccessMode mode,
                                           Nanos deadline = kUrllcOneWayDeadline,
                                           int data_tx_symbols = 2);

/// A concrete platform to check against the §5 requirements.
struct Platform {
  std::string name;
  ProcessingProfile gnb_proc;
  ProcessingProfile ue_proc;
  RadioHeadParams gnb_radio;
  RadioHeadParams ue_radio;
  /// Processing tail to budget for (mean + k·std per layer); URLLC's
  /// reliability target makes the tail, not the mean, the binding figure.
  double sigma_factor = 3.0;

  static Platform software_testbed();   ///< §7: i7 + modem + USB B210
  static Platform software_tuned();     ///< i7 both ends + PCIe + RT kernel
  static Platform hardware_asic();      ///< the footnote-1 ASIC strawman
};

/// One §5 requirement line-item with its verdict.
struct BudgetItem {
  std::string label;
  Nanos cost{};
  Nanos threshold{};
  bool within = false;
};

/// The full §5 check of a platform against a configuration.
struct BudgetReport {
  LatencyBudget budget;
  std::vector<BudgetItem> items;
  bool all_within = false;       ///< every §5 item fits one slot
  bool meets_deadline = false;   ///< protocol floor + platform tail <= deadline
  Nanos projected_worst{};       ///< floor + per-slot-hidden platform cost
};

/// Check `platform` on `cfg` for `mode`. The §5 threshold for every item is
/// one slot: costs that fit within a slot are hidden by pipelining (the
/// scheduler leads by whole slots); costs that exceed it leak extra slots
/// into the worst case.
[[nodiscard]] BudgetReport check_platform(const DuplexConfig& cfg, AccessMode mode,
                                          const Platform& platform,
                                          Nanos deadline = kUrllcOneWayDeadline);

}  // namespace u5g
