// Reproduces Figs 2-3: the "journey of a ping request" — the numbered step
// sequence through both stacks and its decomposition into the paper's three
// latency categories (protocol / processing / radio), on a DDDU pattern as
// in Fig 3.

#include <cstdio>

#include "core/gantt.hpp"
#include "core/journey.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;

int main() {
  std::printf("== Figs 2-3: journey of a ping request (DDDU pattern) ==\n\n");

  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  std::printf("slot map: %s\n\n", dddu.render_period().c_str());

  JourneyParams p;
  // Realistic (non-idealised) stack costs so every category is visible.
  p.ran.sender_processing = Nanos{80'000};
  p.ran.receiver_processing = Nanos{120'000};
  p.ran.sr_decode = Nanos{45'000};
  p.ran.grant_decode = Nanos{150'000};
  p.ran.radio_tx = Nanos{60'000};
  p.ran.radio_rx = Nanos{70'000};
  p.grant_free = false;

  // A ping issued 0.1 ms into the pattern (mid first DL slot — it must wait).
  const PingJourney j = trace_ping(dddu, dddu.period() * 8 + Nanos{100'000}, p);
  std::printf("%s\n", j.render().c_str());

  std::printf("-- Fig 3 as a Gantt chart over the slot structure --\n%s\n",
              render_gantt(dddu, j).c_str());

  std::printf("category decomposition of the round trip (Fig 3 / §4):\n");
  Nanos total = Nanos::zero();
  for (LatencyCategory c :
       {LatencyCategory::Protocol, LatencyCategory::Processing, LatencyCategory::Radio}) {
    const Nanos t = j.category_total(c);
    total += t;
    std::printf("   %-11s %10.3f ms\n", to_string(c), t.ms());
  }
  std::printf("   %-11s %10.3f ms (rtt %.3f ms)\n", "sum", total.ms(), j.rtt.ms());

  // The paper's headline claim for §4: protocol latency dominates.
  const bool protocol_dominates =
      j.category_total(LatencyCategory::Protocol) > j.category_total(LatencyCategory::Processing) &&
      j.category_total(LatencyCategory::Protocol) > j.category_total(LatencyCategory::Radio);
  std::printf("\nprotocol latency is the largest category: %s (paper: \"the protocol latency is "
              "the most significant\")\n",
              protocol_dominates ? "YES" : "NO");
  return protocol_dominates ? 0 : 1;
}
