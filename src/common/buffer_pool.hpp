#pragma once
// Freelist pool of recycled packet-buffer backing stores.
//
// Every packet through the stack used to allocate (and free) a fresh
// `std::vector` per layer hop; at Monte-Carlo scale that heap traffic
// dominates the per-packet protocol work. The pool keeps released backing
// stores on per-size-class freelists so the warm datapath acquires and
// releases storage without touching the heap: the first few packets carve
// blocks from `operator new`, every later packet reuses them.
//
// Threading model: one pool per thread (`BufferPool::local()`), matching the
// Monte-Carlo runner where each worker owns its replications end to end.
// Blocks are self-describing (they carry their capacity), so a buffer that
// migrates across threads simply recycles into the destination thread's
// pool — safe, just not the steady-state pattern.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>

namespace u5g {

/// Per-thread freelist allocator for ByteBuffer backing stores.
class BufferPool {
 public:
  /// One backing store: this header followed by `capacity` payload bytes.
  struct Block {
    std::uint32_t capacity = 0;  ///< usable bytes following the header
    std::int8_t cls = -1;        ///< size-class index; -1 = unpooled (huge)
    Block* next = nullptr;       ///< freelist link while recycled
    [[nodiscard]] std::uint8_t* data() {
      return reinterpret_cast<std::uint8_t*>(this) + sizeof(Block);
    }
  };

  /// Smallest pooled capacity; classes double up to the largest. Requests
  /// beyond the largest class fall back to plain heap blocks (released to
  /// the heap, not the freelist) — packets that size do not exist on the
  /// warm path.
  static constexpr std::size_t kMinCapacity = 256;
  static constexpr std::size_t kMaxPooledCapacity = std::size_t{1} << 20;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() {
    for (Block*& head : free_) {
      while (head != nullptr) {
        Block* b = head;
        head = b->next;
        ::operator delete(b);
      }
    }
  }

  /// A block with at least `capacity` usable bytes: from the matching
  /// freelist when one is cached, freshly carved otherwise.
  [[nodiscard]] Block* acquire(std::size_t capacity) {
    const int cls = class_of(capacity);
    if (cls >= 0 && free_[static_cast<std::size_t>(cls)] != nullptr) {
      Block* b = free_[static_cast<std::size_t>(cls)];
      free_[static_cast<std::size_t>(cls)] = b->next;
      b->next = nullptr;
      ++stats_.reuses;
      ++stats_.outstanding;
      return b;
    }
    const std::size_t cap = cls >= 0 ? class_capacity(cls) : capacity;
    auto* b = static_cast<Block*>(::operator new(sizeof(Block) + cap));
    b->capacity = static_cast<std::uint32_t>(cap);
    b->cls = static_cast<std::int8_t>(cls);
    b->next = nullptr;
    ++stats_.heap_allocations;
    ++stats_.outstanding;
    return b;
  }

  /// Return a block: recycled onto its class freelist, or freed if unpooled.
  void release(Block* b) {
    if (b == nullptr) return;
    ++stats_.releases;
    // A block acquired on another thread releases here without ever having
    // incremented this pool's `outstanding`; guard so migration cannot wrap
    // the counter below zero.
    if (stats_.outstanding > 0) --stats_.outstanding;
    if (b->cls < 0) {
      ::operator delete(b);
      return;
    }
    b->next = free_[static_cast<std::size_t>(b->cls)];
    free_[static_cast<std::size_t>(b->cls)] = b;
  }

  /// Pre-carve `count` blocks of (at least) `capacity` so the very first
  /// packets of a run are already freelist hits. All blocks are held live
  /// until the end so each iteration carves a fresh one instead of
  /// round-tripping the same block through the freelist.
  void prefill(std::size_t capacity, std::size_t count) {
    const std::uint64_t reuses = stats_.reuses;
    const std::uint64_t releases = stats_.releases;
    Block* held = nullptr;
    for (std::size_t i = 0; i < count; ++i) {
      Block* b = acquire(capacity);
      b->next = held;
      held = b;
    }
    while (held != nullptr) {
      Block* b = held;
      held = b->next;
      b->next = nullptr;
      release(b);
    }
    // Prefilled blocks were never handed to a caller: the acquire/release
    // round trips above should not count as datapath reuse traffic.
    stats_.reuses = reuses;
    stats_.releases = releases;
  }

  /// Per-pool counters. These are exact only while blocks are released on
  /// the thread that acquired them (the steady-state pattern); a block that
  /// migrates across threads counts as outstanding on the source pool and
  /// as a release on the destination pool, skewing both.
  struct Stats {
    std::uint64_t heap_allocations = 0;  ///< blocks carved from operator new
    std::uint64_t reuses = 0;            ///< acquires served by a freelist
    std::uint64_t releases = 0;          ///< blocks returned to the pool
    std::uint64_t outstanding = 0;       ///< live blocks not in a freelist
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The calling thread's pool. ByteBuffer routes all backing-store
  /// management through this; entities never pass pools explicitly.
  static BufferPool& local() {
    static thread_local BufferPool pool;
    return pool;
  }

 private:
  static constexpr int kMinClassBits = 8;   // 256
  static constexpr int kMaxClassBits = 20;  // 1 MiB
  static constexpr std::size_t kClasses = kMaxClassBits - kMinClassBits + 1;

  /// Size-class index for `capacity`, or -1 when too large to pool.
  [[nodiscard]] static int class_of(std::size_t capacity) {
    if (capacity > kMaxPooledCapacity) return -1;
    const std::size_t c = capacity < kMinCapacity ? kMinCapacity : capacity;
    return std::bit_width(c - 1) - kMinClassBits;
  }
  [[nodiscard]] static std::size_t class_capacity(int cls) {
    return std::size_t{1} << (cls + kMinClassBits);
  }

  Block* free_[kClasses] = {};
  Stats stats_;
};

}  // namespace u5g
