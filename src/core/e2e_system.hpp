#pragma once
// End-to-end 5G system simulation: the executable twin of the §7 testbed.
//
// One UE, one gNB, a UPF, a duplex configuration, and the full protocol
// machinery: SDAP/PDCP/RLC entities do real header/cipher/segmentation work,
// the MAC runs the SR-grant handshake or configured grants, PHY timing and
// radio-bus models add their (jittered) costs, and every packet's journey is
// recorded step by step. Fig 6's latency distributions and Table 2's
// per-layer times are read directly off the records this produces.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "corenet/upf.hpp"
#include "phy/channel.hpp"
#include "mac/configured_grant.hpp"
#include "mac/sched_request.hpp"
#include "mac/scheduler.hpp"
#include "node/stack.hpp"
#include "sim/simulator.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

enum class Direction { Uplink, Downlink };

[[nodiscard]] constexpr const char* to_string(Direction d) {
  return d == Direction::Uplink ? "UL" : "DL";
}

/// Full configuration of a run.
struct E2eConfig {
  std::shared_ptr<const DuplexConfig> duplex;   ///< required
  bool grant_free = false;                      ///< UL access mode
  SrConfig sr{};                                ///< grant-based SR opportunities
  ConfiguredGrantConfig cg{};                   ///< grant-free occasions (UE 0; others staggered)
  SchedulerParams sched{};
  /// Number of attached UEs (§9 scalability). Grant-free occasions are
  /// staggered per UE; the gNB's processing times grow with load per the
  /// §7 observation via `gnb_load_factor_per_ue`.
  int num_ues = 1;
  double gnb_load_factor_per_ue = 0.08;  ///< gNB proc scale = 1 + f*(num_ues-1)
  ProcessingProfile gnb_proc = ProcessingProfile::gnb_i7();
  ProcessingProfile ue_proc = ProcessingProfile::ue_modem();
  RadioHeadParams gnb_radio = RadioHeadParams::usrp_b210_usb2();
  RadioHeadParams ue_radio = RadioHeadParams::pcie_sdr();  ///< modem: ASIC radio path
  PhyTimingParams phy = PhyTimingParams::software_i7();
  UpfParams upf = UpfParams::dedicated_urllc();
  RlcMode rlc_mode = RlcMode::UM;
  double channel_loss = 0.0;      ///< per-transmission loss probability
  /// PDCP t-Reordering: bound on how long the receiver holds out-of-order
  /// PDUs waiting for a missing COUNT before flushing past the gap.
  Nanos pdcp_t_reordering{5'000'000};
  /// Optional FR2 line-of-sight blockage process (§1/§5's mmWave
  /// reliability problem): while blocked, transmissions are lost with the
  /// process's loss probability, on top of `channel_loss`.
  std::optional<MmWaveBlockage::Params> blockage{};
  Nanos harq_feedback_delay{};    ///< loss detection -> retransmission planning
  int harq_max_tx = 4;
  std::size_t payload_bytes = 64;   ///< ICMP-echo-sized
  std::size_t dl_tb_slack = 64;     ///< TB headroom over the PDU
  std::uint64_t seed = 1;

  /// The §7 testbed: n78, µ1 (0.5 ms slots), DDDU, USB B210, per-slot SR,
  /// one-slot scheduler lead ("the transmission must always be delayed for
  /// one slot to give enough time to the RH").
  static E2eConfig testbed(bool grant_free, std::uint64_t seed = 1);

  /// The §5 viable design: µ2 DM pattern, grant-free, PCIe radio, RT kernel,
  /// tight margin — the configuration the paper argues can meet URLLC.
  static E2eConfig urllc_design(std::uint64_t seed = 1);
};

/// Everything measured about one packet.
struct PacketRecord {
  int seq = -1;
  int ue = 0;
  Direction dir = Direction::Uplink;
  Nanos created{};
  Nanos delivered{};
  bool ok = false;
  Nanos rlc_queue_wait{};   ///< Table 2 "RLC-q" (gNB DL queue wait)
  bool has_rlc_queue_wait = false;
  int harq_transmissions = 1;
  bool missed_radio_deadline = false;
  std::array<Nanos, 6> gnb_layer_time{};  ///< indexed by static_cast<int>(Layer)

  [[nodiscard]] Nanos latency() const { return delivered - created; }
};

/// The running system.
class E2eSystem {
 public:
  explicit E2eSystem(E2eConfig cfg);
  ~E2eSystem();
  E2eSystem(const E2eSystem&) = delete;
  E2eSystem& operator=(const E2eSystem&) = delete;

  /// Inject an uplink packet at UE `ue`'s application layer at time `at`.
  void send_uplink_at(Nanos at, int ue = 0);
  /// Inject a downlink packet for UE `ue` at the UPF at `at`.
  void send_downlink_at(Nanos at, int ue = 0);

  /// Run the simulation until `until` (or until idle).
  void run_until(Nanos until);

  [[nodiscard]] const std::vector<PacketRecord>& records() const { return records_; }
  [[nodiscard]] Simulator& simulator();

  // -- Aggregations ---------------------------------------------------------

  /// Latency samples (µs) of delivered packets in one direction.
  [[nodiscard]] SampleSet latency_samples_us(Direction dir) const;
  /// Per-layer gNB processing stats (µs) across all packets — Table 2.
  [[nodiscard]] RunningStats gnb_layer_stats_us(Layer layer) const;
  /// RLC queue waiting time stats (µs) — Table 2's RLC-q.
  [[nodiscard]] RunningStats rlc_queue_stats_us() const;
  /// Delivered fraction within `deadline` — the reliability figure of §6.
  [[nodiscard]] double reliability_at(Direction dir, Nanos deadline) const;
  [[nodiscard]] std::uint64_t radio_deadline_misses() const { return radio_deadline_misses_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<PacketRecord> records_;
  std::uint64_t radio_deadline_misses_ = 0;

  friend struct Impl;
};

}  // namespace u5g
