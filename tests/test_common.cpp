// Unit tests for src/common: time arithmetic, RNG, statistics, buffers,
// table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Nanos

TEST(NanosTest, LiteralsAndAccessors) {
  EXPECT_EQ((1_ms).count(), 1'000'000);
  EXPECT_EQ((1_us).count(), 1'000);
  EXPECT_EQ((1_s).count(), 1'000'000'000);
  EXPECT_DOUBLE_EQ((500_us).ms(), 0.5);
  EXPECT_DOUBLE_EQ((3_us).us(), 3.0);
}

TEST(NanosTest, Arithmetic) {
  EXPECT_EQ(2_ms + 500_us, Nanos{2'500'000});
  EXPECT_EQ(2_ms - 500_us, Nanos{1'500'000});
  EXPECT_EQ(2_ms * 3, Nanos{6'000'000});
  EXPECT_EQ(3 * (2_ms), Nanos{6'000'000});
  EXPECT_EQ(2_ms / 4, 500_us);
  EXPECT_EQ((5_ms) / (2_ms), 2);  // dimensionless
  EXPECT_EQ((5_ms) % (2_ms), 1_ms);
  EXPECT_EQ(-(2_ms), Nanos{-2'000'000});
}

TEST(NanosTest, CompoundAssignment) {
  Nanos t = 1_ms;
  t += 1_us;
  EXPECT_EQ(t, Nanos{1'001'000});
  t -= 2_us;
  EXPECT_EQ(t, Nanos{999'000});
}

TEST(NanosTest, Comparisons) {
  EXPECT_LT(1_us, 1_ms);
  EXPECT_GT(Nanos::max(), 100_s);
  EXPECT_EQ(Nanos::zero(), 0_ns);
}

TEST(NanosTest, FromFloating) {
  EXPECT_EQ(from_us(1.5), Nanos{1'500});
  EXPECT_EQ(from_ms(0.25), Nanos{250'000});
  EXPECT_EQ(from_us(0.0004), Nanos{0});  // rounds
  EXPECT_EQ(from_us(0.0006), Nanos{1});
}

TEST(NanosTest, ToStringPicksScale) {
  EXPECT_EQ(to_string(5_ns), "5ns");
  EXPECT_EQ(to_string(Nanos{1'500}), "1.500us");
  EXPECT_EQ(to_string(Nanos{2'500'000}), "2.500ms");
  EXPECT_EQ(to_string(2_s), "2.000s");
}

struct AlignCase {
  std::int64_t t, step, origin, up, down;
};

class AlignTest : public ::testing::TestWithParam<AlignCase> {};

TEST_P(AlignTest, UpAndDown) {
  const auto& c = GetParam();
  EXPECT_EQ(align_up(Nanos{c.t}, Nanos{c.step}, Nanos{c.origin}).count(), c.up);
  EXPECT_EQ(align_down(Nanos{c.t}, Nanos{c.step}, Nanos{c.origin}).count(), c.down);
}

INSTANTIATE_TEST_SUITE_P(Grid, AlignTest,
                         ::testing::Values(AlignCase{0, 10, 0, 0, 0},        // exact
                                           AlignCase{1, 10, 0, 10, 0},      // interior
                                           AlignCase{9, 10, 0, 10, 0},
                                           AlignCase{10, 10, 0, 10, 10},    // exact multiple
                                           AlignCase{11, 10, 0, 20, 10},
                                           AlignCase{-1, 10, 0, 0, -10},    // negative
                                           AlignCase{-10, 10, 0, -10, -10},
                                           AlignCase{-11, 10, 0, -10, -20},
                                           AlignCase{7, 10, 3, 13, 3},      // phased grid
                                           AlignCase{13, 10, 3, 13, 13},
                                           AlignCase{250'001, 250'000, 0, 500'000, 250'000}));

TEST(AlignTest, UpDownBracket) {
  // Property: down <= t <= up, and up - down is 0 or one step.
  for (std::int64_t t : {-1'000'007LL, -3LL, 0LL, 17LL, 999'999LL, 123'456'789LL}) {
    for (std::int64_t s : {1LL, 7LL, 250'000LL}) {
      const Nanos up = align_up(Nanos{t}, Nanos{s});
      const Nanos down = align_down(Nanos{t}, Nanos{s});
      EXPECT_LE(down.count(), t);
      EXPECT_GE(up.count(), t);
      EXPECT_TRUE(up == down || up - down == Nanos{s});
    }
  }
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng r(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = r.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(9);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng r(10);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.exponential(40.0));
  EXPECT_NEAR(s.mean(), 40.0, 1.0);
}

TEST(RngTest, ExponentialRateIdiom) {
  // `Rng::exponential` takes the MEAN, never the rate. Call sites that
  // think in events/second (the coexistence and multi-UE benches) must pass
  // 1/rate; this pins the convention so a silent mean<->rate swap (off by
  // rate^2) cannot survive the suite. Audited sites all pass means:
  // channel dwell, traffic interarrival, UPF queue, jitter spikes.
  Rng r(13);
  const double rate = 800.0;
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.exponential(1.0 / rate));
  EXPECT_NEAR(s.mean() * rate, 1.0, 0.02);
  EXPECT_NEAR(s.stddev() * rate, 1.0, 0.05);  // Exp: stddev == mean
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(12);
  Rng b = a.fork();
  // Forked stream must not replay the parent's output.
  Rng a2(12);
  a2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

struct MomentCase {
  double mean, std;
};

class LognormalFitTest : public ::testing::TestWithParam<MomentCase> {};

TEST_P(LognormalFitTest, MomentMatching) {
  const auto& c = GetParam();
  const auto fit = LognormalParams::from_mean_std(c.mean, c.std);
  EXPECT_NEAR(fit.mean(), c.mean, 1e-9 * c.mean + 1e-12);
  EXPECT_NEAR(fit.stddev(), c.std, 1e-9 * c.mean + 1e-12);
  // Empirical check.
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(fit.sample(r));
  EXPECT_NEAR(s.mean(), c.mean, 0.05 * c.mean + 0.01);
}

// The paper's Table 2 rows as fit targets.
INSTANTIATE_TEST_SUITE_P(Table2Rows, LognormalFitTest,
                         ::testing::Values(MomentCase{4.65, 6.71}, MomentCase{8.29, 8.99},
                                           MomentCase{4.12, 8.37}, MomentCase{55.21, 16.31},
                                           MomentCase{41.55, 10.83}, MomentCase{100.0, 0.0}));

// ---------------------------------------------------------------------------
// Stats

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  Rng r(14);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_DOUBLE_EQ(h.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.width(), 1.0);
}

TEST(HistogramTest, ProbabilitiesSumToOne) {
  Histogram h(0.0, 1.0, 17);
  Rng r(15);
  for (int i = 0; i < 1000; ++i) h.add(r.uniform());
  double sum = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) sum += h.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));  // 1..100
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, FractionAtOrBelow) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.fraction_at_or_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_or_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_or_below(100.0), 1.0);
}

TEST(SampleSetTest, EmptyIsSafe) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_or_below(1.0), 0.0);
}

// ---------------------------------------------------------------------------
// ByteBuffer

TEST(ByteBufferTest, SizeAndFill) {
  ByteBuffer b(16, 0xAB);
  EXPECT_EQ(b.size(), 16u);
  for (std::uint8_t x : b.bytes()) EXPECT_EQ(x, 0xAB);
}

TEST(ByteBufferTest, PushPopHeaderRoundTrip) {
  ByteBuffer b(4, 0x01);
  const std::uint8_t hdr[] = {0xDE, 0xAD};
  b.push_header(hdr);
  EXPECT_EQ(b.size(), 6u);
  const auto popped = b.pop_header(2);
  EXPECT_EQ(popped[0], 0xDE);
  EXPECT_EQ(popped[1], 0xAD);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.bytes()[0], 0x01);
}

TEST(ByteBufferTest, HeadroomRegrowth) {
  ByteBuffer b(1, 0x7F);
  std::vector<std::uint8_t> big(200, 0x55);  // exceeds the 64-byte headroom
  b.push_header(big);
  EXPECT_EQ(b.size(), 201u);
  EXPECT_EQ(b.bytes()[0], 0x55);
  EXPECT_EQ(b.bytes()[200], 0x7F);
  // And headroom is restored for further pushes.
  const std::uint8_t one[] = {0x11};
  b.push_header(one);
  EXPECT_EQ(b.size(), 202u);
  EXPECT_EQ(b.bytes()[0], 0x11);
}

TEST(ByteBufferTest, PopPastEndThrows) {
  ByteBuffer b(3);
  EXPECT_THROW(b.pop_header(4), std::length_error);
}

TEST(ByteBufferTest, TruncateAndAppend) {
  ByteBuffer b(4, 0x01);
  const std::uint8_t tail[] = {0x02, 0x03};
  b.append(tail);
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b.bytes()[5], 0x03);
  b.truncate_back(2);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_THROW(b.truncate_back(5), std::length_error);
}

TEST(ByteBufferTest, FromBytes) {
  const std::uint8_t src[] = {1, 2, 3};
  ByteBuffer b = ByteBuffer::from_bytes(src);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.bytes()[2], 3);
}

TEST(ByteBufferTest, BigEndianHelpers) {
  std::uint8_t buf[4];
  put_be16(std::span{buf}.subspan(0, 2), 0xBEEF);
  EXPECT_EQ(get_be16(std::span<const std::uint8_t>{buf, 2}), 0xBEEF);
  put_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(get_be32(std::span<const std::uint8_t>{buf, 4}), 0xDEADBEEFu);
}

// ---------------------------------------------------------------------------
// Ids / TextTable

TEST(IdsTest, StrongTyping) {
  const UeId a{1}, b{1}, c{2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<UeId>{}(a), std::hash<UeId>{}(b));
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.add_row({"xxxx", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a     long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxx  y"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, FormatHelpers) {
  EXPECT_EQ(fmt2(3.14159), "3.14");
  EXPECT_EQ(fmt3(2.0), "2.000");
}

}  // namespace
}  // namespace u5g
