#pragma once
// The paper's §4 latency taxonomy: every interval of a packet's life is
// attributed to exactly one of four budgets — protocol (waiting for
// opportunities, over-the-air time, core-network hops), processing (stack
// traversal, PHY encode/decode, server turnaround), radio (bus transfer,
// DAC/ADC chains), or channel access (NR-U Listen-Before-Talk deferral:
// CAT4 defer + backoff time spent sensing before a transmission may start;
// always zero on licensed spectrum). The analytic model (core/latency_model),
// the measured journey (core/journey), and the per-packet tracer (trace/)
// all tag their intervals with this enum so Fig-3-style decompositions
// compose across layers.

namespace u5g {

enum class LatencyCategory { Protocol, Processing, Radio, ChannelAccess };

[[nodiscard]] constexpr const char* to_string(LatencyCategory c) {
  switch (c) {
    case LatencyCategory::Protocol: return "protocol";
    case LatencyCategory::Processing: return "processing";
    case LatencyCategory::Radio: return "radio";
    case LatencyCategory::ChannelAccess: return "channel-access";
  }
  return "?";
}

/// Number of categories, for fixed-size per-category accumulators.
inline constexpr int kLatencyCategoryCount = 4;

}  // namespace u5g
