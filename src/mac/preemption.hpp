#pragma once
// DL preemption ledger (flexible-TDD URLLC puncturing, arXiv 1909.11305).
//
// Tracks the DL transport blocks the gNB has staged towards the air: each
// (re)transmission registers its assignment window before the radio pipeline
// starts, and a URLLC arrival may *puncture* the earliest eMBB entry whose
// window it can still make — the URLLC TB takes the victim's air window, the
// victim re-enters HARQ like a lost transmission. Every puncture is
// therefore accounted as a HARQ re-entry, never silent loss: the PR-5
// identity `offered == delivered + harq_dropped + stranded + upf_drops`
// stays exact, with `punctured_retx` counting the re-entries on the side.
//
// Plain deterministic bookkeeping: no RNG, entries expire as the simulation
// clock passes their windows, lookups scan the (short) live window list.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"

namespace u5g {

class PreemptionLedger {
 public:
  struct Entry {
    std::uint64_t token = 0;
    int ue_index = 0;
    Nanos tx_start{};
    Nanos tx_end{};
    bool punctured = false;
  };

  /// Register a staged DL transmission; returns its token (never 0).
  std::uint64_t register_tx(int ue_index, Nanos tx_start, Nanos tx_end) {
    Entry e;
    e.token = ++next_token_;
    e.ue_index = ue_index;
    e.tx_start = tx_start;
    e.tx_end = tx_end;
    entries_.push_back(e);
    return e.token;
  }

  /// Mark the earliest un-punctured entry of a UE other than `urllc_ue`
  /// whose window starts at or after `earliest` and strictly before
  /// `better_than`. Returns the victim's window when a puncture happened.
  std::optional<Entry> puncture_earliest(int urllc_ue, Nanos earliest, Nanos better_than) {
    Entry* victim = nullptr;
    for (Entry& e : entries_) {
      if (e.punctured || e.ue_index == urllc_ue) continue;
      if (e.tx_start < earliest || e.tx_start >= better_than) continue;
      if (victim == nullptr || e.tx_start < victim->tx_start) victim = &e;
    }
    if (victim == nullptr) return std::nullopt;
    victim->punctured = true;
    return *victim;
  }

  /// Was `token`'s window punctured? Consumes the entry either way once its
  /// transmission is resolved.
  bool consume(std::uint64_t token) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].token != token) continue;
      const bool punctured = entries_[i].punctured;
      entries_[i] = entries_.back();
      entries_.pop_back();
      return punctured;
    }
    return false;
  }

  /// Entries whose air window has not completed by `now` — the DL in-flight
  /// signal the dynamic-format policy reads.
  [[nodiscard]] std::uint32_t inflight_at(Nanos now) const {
    std::uint32_t n = 0;
    for (const Entry& e : entries_) {
      if (e.tx_end > now) ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  std::uint64_t next_token_ = 0;
};

}  // namespace u5g
