#pragma once
// Minimal ASCII table renderer used by the benchmark harnesses to print
// paper-style tables (Table 1, Table 2) and figure series.

#include <cstddef>
#include <string>
#include <vector>

namespace u5g {

/// Column-aligned text table. Rows are added as string cells; `render`
/// pads every column to its widest cell and separates header from body.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into std::string (reporting helper).
[[nodiscard]] std::string fmt(const char* format, double value);
[[nodiscard]] std::string fmt2(double value);   ///< "%.2f"
[[nodiscard]] std::string fmt3(double value);   ///< "%.3f"

}  // namespace u5g
