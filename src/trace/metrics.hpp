#pragma once
// Aggregated metrics: counters and HDR-style latency histograms, with the
// same merge contract as common/stats.hpp so per-replication registries from
// the PR-1 thread pool combine into one run-level registry.
//
// LatencyHistogram is a fixed-size log2-bucketed histogram (4 sub-bucket
// bits per octave -> relative quantile error bounded by 1/16 = 6.25%) over
// the full non-negative int64 nanosecond range. `record` is a shift, a mask
// and an increment into a flat array — no allocation, ever — which is what
// lets an enabled-metrics hot path stay on the pooled datapath. Registries
// hand out stable pointers (std::map nodes), so integration code caches
// `Counter*`/`LatencyHistogram*` once and pays a null-check branch when
// metrics are off.

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "common/time.hpp"

namespace u5g {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  void set(std::uint64_t v) { v_ = v; }
  [[nodiscard]] std::uint64_t value() const { return v_; }
  void merge(const Counter& o) { v_ += o.v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Fixed-memory latency histogram with bounded relative error.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;             ///< sub-buckets per octave = 16
  static constexpr int kSubCount = 1 << kSubBits;
  /// Linear region [0, 16) + one 16-wide row per octave up to 2^63.
  static constexpr int kBucketCount = (64 - kSubBits) * kSubCount;

  void record(std::int64_t ns) {
    ++bins_[bucket_index(ns)];
    ++n_;
    sum_ += ns;
    if (ns < min_) min_ = ns;
    if (ns > max_) max_ = ns;
  }
  void record(Nanos t) { record(t.count()); }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] std::int64_t min() const { return n_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return n_ ? max_ : 0; }
  [[nodiscard]] double mean() const { return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0; }

  /// Value at quantile `q` in [0, 1] (nearest-rank over buckets; returns the
  /// bucket's upper bound, so the result is >= the true quantile and within
  /// a 1/16 relative factor of it). 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  void merge(const LatencyHistogram& o);

  /// Lowest value mapping to bucket `idx` (for export / tests).
  [[nodiscard]] static std::int64_t bucket_lower(int idx) {
    if (idx < kSubCount) return idx;
    const int shift = idx / kSubCount - 1;
    const int sub = idx % kSubCount;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(kSubCount + sub) << shift);
  }

  [[nodiscard]] static int bucket_index(std::int64_t v) {
    if (v < 0) v = 0;
    const auto u = static_cast<std::uint64_t>(v);
    if (u < kSubCount) return static_cast<int>(u);
    const int msb = 63 - std::countl_zero(u);
    const int shift = msb - kSubBits;
    const int sub = static_cast<int>((u >> shift) & (kSubCount - 1));
    return (shift + 1) * kSubCount + sub;
  }

  [[nodiscard]] std::uint64_t bucket_count(int idx) const { return bins_[static_cast<std::size_t>(idx)]; }

 private:
  std::array<std::uint64_t, kBucketCount> bins_{};
  std::uint64_t n_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
};

/// Named counters + histograms with stable addresses and deterministic
/// (sorted-name) JSON export.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  /// Fold another registry in (union of names; same-name entries merge).
  void merge(const MetricsRegistry& o);

  /// {"counters": {...}, "histograms": {name: {count,min,max,mean,p50,...}}}
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace u5g
