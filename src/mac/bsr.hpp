#pragma once
// Buffer status reporting (TS 38.321 §5.4.5): after the first grant, the UE
// tells the gNB how much data remains so follow-up grants can be sized.
// Uses the standard's logarithmic 5-bit buffer-size index table (short BSR).

#include <array>
#include <cstdint>

namespace u5g {

/// Quantise a byte count to the short-BSR 5-bit index (TS 38.321 Table
/// 6.1.3.1-1 shape: exponential buckets from 10 B to 150 kB).
[[nodiscard]] int bsr_index(std::size_t bytes);

/// Upper edge of a BSR bucket: the byte count the gNB assumes when it sees
/// index `idx`.
[[nodiscard]] std::size_t bsr_bucket_bytes(int idx);

/// Short BSR MAC CE: one byte = LCG id (3 bits) | buffer size index (5 bits).
struct ShortBsr {
  std::uint8_t lcg = 0;
  int index = 0;

  [[nodiscard]] std::uint8_t encode() const {
    return static_cast<std::uint8_t>((lcg << 5) | (index & 0x1F));
  }
  static ShortBsr decode(std::uint8_t b) {
    return {static_cast<std::uint8_t>(b >> 5), b & 0x1F};
  }
  static ShortBsr for_bytes(std::size_t bytes, std::uint8_t lcg = 0) {
    return {lcg, bsr_index(bytes)};
  }
};

}  // namespace u5g
