// FR2 (mmWave) end-to-end reliability experiment: the structural
// reproduction of the field result the paper cites ([19], Fezeu et al.):
// "sub-millisecond latencies in 5G mmWave can be achieved only 4.4 % of the
// time rather than 99.99 % of the time."
//
// Full E2E runs at µ3 (FR2) with a fast PCIe radio and lean stack — latency
// is excellent while the line-of-sight holds — under increasingly hostile
// blockage. The metric is the paper's: fraction of offered packets delivered
// within the deadline. Each blockage case fans `--trials` replications
// across the Monte-Carlo runner and merges their latency samples.

#include <cstdio>

#include "common/cli.hpp"
#include "core/e2e_system.hpp"
#include "core/reliability.hpp"
#include "sim/runner.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

struct Outcome {
  double delivered_frac;
  double sub_ms_frac;     ///< of offered: delivered within 1 ms one-way
  double p50_ms;
};

SampleSet run_one(std::optional<MmWaveBlockage::Params> blockage, int packets,
                  std::uint64_t seed) {
  StackConfig cfg;
  cfg.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dddu(kMu3));
  cfg.grant_free = true;
  cfg.cg = ConfiguredGrantConfig::periodic(kMu3.slot_duration(), 256, 4);
  cfg.sched.radio_lead = kMu3.slot_duration();
  cfg.sched.margin = Nanos{30'000};
  cfg.sched.ue_min_prep = Nanos{60'000};
  cfg.sched.ul_tx_symbols = 4;
  cfg.gnb_radio = RadioHeadParams::pcie_sdr();
  cfg.ue_radio = RadioHeadParams::pcie_sdr();
  cfg.gnb_proc = ProcessingProfile::asic();
  cfg.ue_proc = ProcessingProfile::asic();
  cfg.upf.backhaul_latency = Nanos{10'000};
  cfg.harq_feedback_delay = kMu3.slot_duration();
  cfg.blockage = blockage;
  cfg.seed = seed;
  E2eSystem sys(std::move(cfg));

  Rng rng(seed + 1);
  const Nanos spacing = 2_ms;
  for (int i = 0; i < packets; ++i) {
    sys.send_downlink_at(spacing * i + Nanos{static_cast<std::int64_t>(rng.uniform() * 5e5)});
  }
  sys.run_until(spacing * (packets + 100));
  return sys.latency_samples_us(Direction::Downlink);
}

Outcome run(std::optional<MmWaveBlockage::Params> blockage, std::uint64_t root_seed,
            const BenchOptions& opt) {
  SampleSet lat = merge_replications(run_replications(
      opt.trials, root_seed,
      [&](int i, std::uint64_t seed) {
        return run_one(blockage, split_evenly(opt.packets, opt.trials, i), seed);
      },
      {opt.threads}));
  const auto rel = evaluate_reliability(lat, static_cast<std::size_t>(opt.packets), 1_ms);
  return {static_cast<double>(lat.count()) / opt.packets, rel.fraction_within,
          lat.quantile(0.5) / 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 2000;
  defaults.trials = 8;
  defaults.seed = 400;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== FR2 end-to-end: latency is easy, reliability is the wall (cf. [19]) ==\n\n");
  std::printf("µ3 DDDU, PCIe radio, hardware-lean stack; DL packets every 2 ms.\n");
  std::printf("(%d packets over %d replications per case, root seed %llu, %d threads)\n\n",
              opt.packets, opt.trials, static_cast<unsigned long long>(opt.seed),
              resolve_threads(opt.threads));
  std::printf("   %-34s %11s %12s %9s\n", "channel", "delivered", "sub-ms frac", "p50[ms]");

  struct Case {
    const char* label;
    std::optional<MmWaveBlockage::Params> blockage;
  };
  const Case cases[] = {
      {"clear line-of-sight", std::nullopt},
      {"light blockage (LoS 73%)", MmWaveBlockage::Params{}},
      {"mobility/urban (LoS 40%)",
       MmWaveBlockage::Params{100_ms, 150_ms, 0.98}},
      {"hostile (LoS 15%)", MmWaveBlockage::Params{30_ms, 170_ms, 0.995}},
  };

  double clear_subms = 0.0;
  double hostile_subms = 1.0;
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Outcome o = run(cases[i].blockage, opt.seed + i, opt);
    std::printf("   %-34s %10.2f%% %11.2f%% %9.3f\n", cases[i].label, o.delivered_frac * 100,
                o.sub_ms_frac * 100, o.p50_ms);
    if (i == 0) clear_subms = o.sub_ms_frac;
    if (i + 1 == std::size(cases)) hostile_subms = o.sub_ms_frac;
  }

  std::printf("\nURLLC needs %.2f%%; mmWave under blockage delivers sub-ms only a small\n"
              "fraction of the time — the [19] phenomenon, reproduced structurally.\n",
              kUrllcReliabilityTarget * 100);
  const bool ok = clear_subms > 0.99 && hostile_subms < 0.30;
  std::printf("shape reproduction: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
