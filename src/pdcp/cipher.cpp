#include "pdcp/cipher.hpp"

#include <bit>
#include <cstring>

namespace u5g {

namespace {

/// SplitMix64-based per-block keystream word.
std::uint64_t keystream_word(const CipherContext& ctx, std::uint32_t count, std::uint64_t block) {
  std::uint64_t x = ctx.key ^ (static_cast<std::uint64_t>(count) << 32) ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 8) ^ (ctx.downlink ? 1u : 0u);
  x += (block + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx, std::uint32_t count) {
  // One keystream word covers 8 payload bytes with byte k of the word (LSB
  // first) XORed into byte 8*block + k — the word-wise body below is
  // bit-identical to that per-byte definition.
  std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    // Little-endian: an in-memory uint64 already lays its bytes out LSB
    // first, so a whole word can be XORed with one load/store pair.
    for (; i + 8 <= n; i += 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, p + i, 8);
      chunk ^= keystream_word(ctx, count, i / 8);
      std::memcpy(p + i, &chunk, 8);
    }
  } else {
    for (; i + 8 <= n; i += 8) {
      std::uint64_t word = keystream_word(ctx, count, i / 8);
      for (std::size_t k = 0; k < 8; ++k) {
        p[i + k] ^= static_cast<std::uint8_t>(word);
        word >>= 8;
      }
    }
  }
  if (i < n) {
    std::uint64_t word = keystream_word(ctx, count, i / 8);
    for (; i < n; ++i) {
      p[i] ^= static_cast<std::uint8_t>(word);
      word >>= 8;
    }
  }
}

std::uint32_t integrity_tag(std::span<const std::uint8_t> data, const CipherContext& ctx,
                            std::uint32_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ ctx.key ^ count ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 40) ^ (ctx.downlink ? 2u : 0u);
  // FNV-1a is inherently sequential (each multiply feeds the next XOR), so
  // the win here is memory traffic, not parallelism: load 8 bytes in one go
  // and feed the hash from a register instead of eight separate byte loads.
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t chunk;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&chunk, p + i, 8);
    } else {
      chunk = 0;
      for (std::size_t k = 8; k > 0; --k) chunk = (chunk << 8) | p[i + k - 1];
    }
    for (std::size_t k = 0; k < 8; ++k) {
      h ^= chunk & 0xFF;
      h *= 0x100000001b3ULL;
      chunk >>= 8;
    }
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace u5g
