#include "core/stack_config.hpp"

#include "tdd/common_config.hpp"

namespace u5g {

namespace {

StackConfig testbed_base(std::uint64_t seed) {
  StackConfig c;
  c.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dddu(kMu1));
  c.sr = SrConfig::per_slot(kMu1);
  c.cg = ConfiguredGrantConfig::periodic(kMu1.slot_duration(), 256, 4);
  c.sched.radio_lead = kMu1.slot_duration();  // §7: delay one slot for the RH
  c.sched.margin = Nanos{100'000};
  c.sched.ue_min_prep = Nanos{300'000};
  c.sched.ul_tx_symbols = 4;
  c.sched.ul_tb_bytes = 256;
  c.gnb_radio = RadioHeadParams::usrp_b210_usb2();
  c.ue_radio = RadioHeadParams::pcie_sdr();
  c.harq_feedback_delay = kMu1.slot_duration();
  c.seed = seed;
  return c;
}

}  // namespace

StackConfig StackConfig::testbed_grant_based(std::uint64_t seed) {
  StackConfig c = testbed_base(seed);
  c.grant_free = false;
  return c;
}

StackConfig StackConfig::testbed_grant_free(std::uint64_t seed) {
  StackConfig c = testbed_base(seed);
  c.grant_free = true;
  return c;
}

StackConfig StackConfig::urllc_design(std::uint64_t seed) {
  StackConfig c;
  c.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  c.grant_free = true;
  c.cg = ConfiguredGrantConfig::every_symbol(256, 2);
  // The staging lead must cover PHY encode (incl. the Table 2 draw's tail),
  // the PCIe submission and the DAC chain — §4's interdependency, tuned.
  c.sched.radio_lead = Nanos{150'000};
  c.sched.margin = Nanos{50'000};
  c.sched.ue_min_prep = Nanos{100'000};
  c.sched.ul_tx_symbols = 2;
  c.sched.ul_tb_bytes = 256;
  c.gnb_radio = RadioHeadParams::pcie_sdr();
  c.gnb_radio.bus = c.gnb_radio.bus.with_rt_kernel();
  c.ue_radio = RadioHeadParams::pcie_sdr();
  c.ue_radio.bus = c.ue_radio.bus.with_rt_kernel();
  c.gnb_proc = ProcessingProfile::gnb_i7();
  c.ue_proc = ProcessingProfile::gnb_i7();  // software UE, not a modem black box
  c.harq_feedback_delay = kMu2.slot_duration();
  c.seed = seed;
  return c;
}

}  // namespace u5g
