// Extension X7: the connection-state tax. The §5 analysis assumes a
// CONNECTED UE; a UE arriving from IDLE/INACTIVE first pays the random
// access procedure. This bench quantifies that tax on the paper's viable
// configuration and shows why URLLC deployments must keep UEs connected
// (or use 2-step RACH / pre-configured INACTIVE grants).

#include <cstdio>

#include "core/latency_model.hpp"
#include "core/rach.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

int main() {
  std::printf("== X7: RACH — the cost of not being connected (DM, u2) ==\n\n");
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);

  // The CONNECTED grant-free baseline from the §5 analysis.
  const auto connected = analyze_worst_case(dm, AccessMode::GrantFreeUl, {});
  std::printf("CONNECTED grant-free UL: worst %.3f ms, mean %.3f ms\n\n", connected.worst.ms(),
              connected.mean.ms());

  const auto four_step = analyze_rach_worst_case(dm, RachConfig::typical());
  const auto two_step = analyze_rach_worst_case(dm, RachConfig::two_step());
  std::printf("4-step RACH:  worst %8.3f ms, mean %8.3f ms, best %8.3f ms\n", four_step.worst.ms(),
              four_step.mean.ms(), four_step.best.ms());
  std::printf("2-step RACH:  worst %8.3f ms, mean %8.3f ms, best %8.3f ms\n\n", two_step.worst.ms(),
              two_step.mean.ms(), two_step.best.ms());

  std::printf("one 4-step access, step by step (worst-case arrival):\n");
  const Nanos base = align_up(dm.period() * 8, RachConfig::typical().prach_periodicity);
  const Timeline tl =
      trace_random_access(dm, base + four_step.worst_arrival_offset, RachConfig::typical());
  std::printf("%s\n", tl.render().c_str());

  // The claims this bench asserts:
  //  (a) RACH costs an order of magnitude more than the 0.5 ms budget —
  //      an IDLE URLLC UE has already lost before its packet exists;
  //  (b) 2-step RACH helps but does not come close to the budget either;
  //  (c) the dominant term is the PRACH occasion wait (10 ms periodicity),
  //      which is why the fix is staying connected, not faster processing.
  const bool ok = four_step.worst > 10 * kUrllcOneWayDeadline &&
                  two_step.worst < four_step.worst &&
                  two_step.worst > 2 * kUrllcOneWayDeadline;
  std::printf("connection state dominates: a UE must already be CONNECTED (keep-alives,\n"
              "RRC_INACTIVE with pre-configured grants) for any of §5's analysis to apply.\n");
  std::printf("shape: %s\n", ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
