// Pooled-datapath verification: the word-wise PDCP kernels against the
// byte-wise reference implementation they replaced, the memoized TBS binary
// search against the linear scan, buffer-pool recycling, the ByteBuffer
// invalidation contract, and the headline claim — a warm packet through the
// datapath (entity chain and full e2e_system) performs zero heap allocations.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "common/bytes.hpp"
#include "common/small_vec.hpp"
#include "common/time.hpp"
#include "core/e2e_system.hpp"
#include "mac/mac_pdu.hpp"
#include "pdcp/cipher.hpp"
#include "pdcp/pdcp_entity.hpp"
#include "phy/modulation.hpp"
#include "phy/tbs_table.hpp"
#include "phy/transport_block.hpp"
#include "rlc/rlc_entity.hpp"
#include "sdap/qos.hpp"
#include "sdap/sdap_entity.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator: the zero-allocation assertions below measure
// heap traffic across a window of warm datapath work.

namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace u5g {
namespace {

// ---------------------------------------------------------------------------
// Byte-wise reference cipher/integrity: the pre-word-wise implementation,
// kept verbatim as the oracle. The production kernels must be bit-identical
// to these for every length and parameter combination.

std::uint64_t ref_keystream_word(const CipherContext& ctx, std::uint32_t count,
                                 std::uint64_t block) {
  std::uint64_t x = ctx.key ^ (static_cast<std::uint64_t>(count) << 32) ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 8) ^ (ctx.downlink ? 1u : 0u);
  x += (block + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void ref_apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx,
                         std::uint32_t count) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t word = ref_keystream_word(ctx, count, i / 8);
    data[i] ^= static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
}

std::uint32_t ref_integrity_tag(std::span<const std::uint8_t> data, const CipherContext& ctx,
                                std::uint32_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ ctx.key ^ count ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 40) ^ (ctx.downlink ? 2u : 0u);
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/// A deterministic context that varies key, bearer, direction and count with
/// the length so the sweep covers the parameter space, not just one key.
CipherContext ctx_for(std::size_t len) {
  return CipherContext{.key = 0x5deece66d2b4a1c9ULL ^ (len * 0x9e3779b97f4a7c15ULL),
                       .bearer = static_cast<std::uint32_t>(len % 33),
                       .downlink = (len & 1) != 0};
}

std::uint32_t count_for(std::size_t len) {
  return static_cast<std::uint32_t>(len * 2654435761u + 17u);
}

class CipherOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(0xC0FFEE);
    base_.resize(4096);
    for (auto& b : base_) b = static_cast<std::uint8_t>(rng());
  }
  std::vector<std::uint8_t> base_;
};

// Every length 0..4096 — all eight tail residues and both the small inline
// and the pooled regime — must produce byte-identical ciphertext.
TEST_F(CipherOracleTest, WordWiseCipherMatchesByteWiseReference) {
  for (std::size_t len = 0; len <= 4096; ++len) {
    std::vector<std::uint8_t> a(base_.begin(), base_.begin() + static_cast<std::ptrdiff_t>(len));
    std::vector<std::uint8_t> b = a;
    const CipherContext ctx = ctx_for(len);
    const std::uint32_t count = count_for(len);
    apply_keystream(a, ctx, count);
    ref_apply_keystream(b, ctx, count);
    ASSERT_TRUE(a == b) << "cipher diverges at length " << len;
  }
}

TEST_F(CipherOracleTest, ApplyingKeystreamTwiceRestoresPlaintext) {
  for (std::size_t len = 0; len <= 4096; ++len) {
    std::vector<std::uint8_t> a(base_.begin(), base_.begin() + static_cast<std::ptrdiff_t>(len));
    const CipherContext ctx = ctx_for(len);
    const std::uint32_t count = count_for(len);
    apply_keystream(a, ctx, count);
    if (len >= 8) {
      // The keystream must actually change the data (involution != identity).
      ASSERT_FALSE(std::equal(a.begin(), a.end(), base_.begin())) << "keystream no-op at " << len;
    }
    apply_keystream(a, ctx, count);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), base_.begin()))
        << "round trip fails at length " << len;
  }
}

TEST_F(CipherOracleTest, WordWiseIntegrityMatchesByteWiseReference) {
  for (std::size_t len = 0; len <= 4096; ++len) {
    const std::span<const std::uint8_t> data{base_.data(), len};
    const CipherContext ctx = ctx_for(len);
    const std::uint32_t count = count_for(len);
    ASSERT_EQ(ref_integrity_tag(data, ctx, count), integrity_tag(data, ctx, count))
        << "integrity tag diverges at length " << len;
  }
}

TEST_F(CipherOracleTest, IntegrityDetectsBitFlips) {
  std::mt19937_64 rng(0xBADC0DE);
  for (const std::size_t len : {1u, 7u, 8u, 9u, 63u, 64u, 1250u, 4096u}) {
    std::vector<std::uint8_t> data(base_.begin(), base_.begin() + static_cast<std::ptrdiff_t>(len));
    const CipherContext ctx = ctx_for(len);
    const std::uint32_t count = count_for(len);
    const std::uint32_t tag = integrity_tag(data, ctx, count);
    const std::size_t bit = rng() % (len * 8);
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(tag, integrity_tag(data, ctx, count)) << "flip undetected at length " << len;
  }
}

// ---------------------------------------------------------------------------
// TBS table: the binary search must equal the linear scan everywhere.

TEST(TbsTableTest, BinarySearchMatchesExhaustiveScanForAllPayloads) {
  // For every standard MCS and symbol count, sweep *every* payload from 0 to
  // one past the max TBS. The reference is a two-pointer walk over the
  // monotone row, so the whole sweep is O(total payloads).
  for (int mi = 0; mi < TbsTable::kMcsCount; ++mi) {
    const McsEntry m = mcs(mi);
    for (int sym = 1; sym <= TbsTable::kMaxSymbols; ++sym) {
      std::array<int, TbsTable::kMaxPrb> row;
      for (int prb = 1; prb <= TbsTable::kMaxPrb; ++prb) {
        row[static_cast<std::size_t>(prb - 1)] =
            transport_block_size_bits(Allocation{.n_prb = prb, .n_symbols = sym}, m);
      }
      const int max_bytes = row.back() / 8;
      int ptr = 0;
      for (int payload = 0; payload <= max_bytes; ++payload) {
        while (ptr < TbsTable::kMaxPrb && row[static_cast<std::size_t>(ptr)] < payload * 8) ++ptr;
        const int expected = ptr < TbsTable::kMaxPrb ? ptr + 1 : 0;
        const int got = prbs_needed(payload, sym, m);
        if (got != expected) {
          FAIL() << "prbs_needed(" << payload << ", " << sym << ", mcs" << mi << ") = " << got
                 << ", expected " << expected;
        }
      }
      EXPECT_EQ(0, prbs_needed(max_bytes + 1, sym, m))
          << "payload past max TBS must not fit (mcs" << mi << ", " << sym << " symbols)";
    }
  }
}

TEST(TbsTableTest, BinarySearchMatchesLinearScanAtBoundaries) {
  // Direct binary-vs-linear comparison at every PRB boundary (both sides),
  // tying the table to the declared reference implementation.
  for (int mi = 0; mi < TbsTable::kMcsCount; ++mi) {
    const McsEntry m = mcs(mi);
    for (int sym = 1; sym <= TbsTable::kMaxSymbols; ++sym) {
      for (int prb = 1; prb <= TbsTable::kMaxPrb; prb += 7) {
        const int bytes =
            transport_block_size_bits(Allocation{.n_prb = prb, .n_symbols = sym}, m) / 8;
        for (const int payload : {bytes, bytes + 1}) {
          const int got = prbs_needed(payload, sym, m);
          const int ref = prbs_needed_linear(payload, sym, m);
          if (got != ref) {
            FAIL() << "binary " << got << " != linear " << ref << " (payload " << payload
                   << ", mcs" << mi << ", " << sym << " symbols)";
          }
        }
      }
    }
  }
}

TEST(TbsTableTest, RespectsCallerPrbCeilings) {
  const McsEntry m = mcs(10);
  for (const int max_prb : {1, 2, 50, 272, 273, 300, 400}) {
    for (int payload = 0; payload <= 4096; payload += 13) {
      ASSERT_EQ(prbs_needed_linear(payload, 4, m, max_prb), prbs_needed(payload, 4, m, max_prb))
          << "max_prb " << max_prb << ", payload " << payload;
    }
  }
}

TEST(TbsTableTest, NonStandardMcsFallsBackToLinear) {
  // A hand-built entry that shares index 10 but not its contents must not be
  // served from the memoized row for mcs 10.
  const McsEntry custom{.index = 10, .modulation = Modulation::QAM256, .rate_x1024 = 999};
  EXPECT_FALSE(TbsTable::covers(custom, 4));
  for (int payload = 0; payload <= 8192; payload += 37) {
    ASSERT_EQ(prbs_needed_linear(payload, 4, custom), prbs_needed(payload, 4, custom))
        << "payload " << payload;
  }
  // Out-of-slot symbol counts are also out of the memoized domain.
  EXPECT_FALSE(TbsTable::covers(mcs(10), 0));
  EXPECT_FALSE(TbsTable::covers(mcs(10), 15));
}

// ---------------------------------------------------------------------------
// Buffer pool: recycling, prefill, and the unpooled fallback.

TEST(BufferPoolTest, ReleaseThenAcquireReusesTheSameBlock) {
  BufferPool pool;
  BufferPool::Block* first = pool.acquire(512);
  ASSERT_NE(nullptr, first);
  EXPECT_EQ(512u, first->capacity);
  pool.release(first);
  // 400 rounds up into the same 512-byte class: the freelist must serve the
  // exact block just released.
  BufferPool::Block* second = pool.acquire(400);
  EXPECT_EQ(first, second);
  EXPECT_EQ(1u, pool.stats().heap_allocations);
  EXPECT_EQ(1u, pool.stats().reuses);
  pool.release(second);
}

TEST(BufferPoolTest, PrefillStocksFreelistsWithoutSkewingStats) {
  BufferPool pool;
  pool.prefill(512, 4);
  EXPECT_EQ(4u, pool.stats().heap_allocations);
  EXPECT_EQ(0u, pool.stats().reuses);
  EXPECT_EQ(0u, pool.stats().releases);
  EXPECT_EQ(0u, pool.stats().outstanding);
  BufferPool::Block* blocks[4];
  for (auto& b : blocks) b = pool.acquire(512);
  EXPECT_EQ(4u, pool.stats().heap_allocations) << "prefilled acquires must not hit the heap";
  EXPECT_EQ(4u, pool.stats().reuses);
  for (auto* b : blocks) pool.release(b);
}

TEST(BufferPoolTest, HugeBlocksBypassTheFreelist) {
  BufferPool pool;
  const std::size_t huge = BufferPool::kMaxPooledCapacity + 1;
  BufferPool::Block* b = pool.acquire(huge);
  ASSERT_NE(nullptr, b);
  EXPECT_EQ(-1, b->cls);
  EXPECT_GE(b->capacity, huge);
  pool.release(b);
  EXPECT_EQ(0u, pool.stats().outstanding);
  // A second huge acquire goes back to the heap: no freelist kept them.
  BufferPool::Block* c = pool.acquire(huge);
  EXPECT_EQ(2u, pool.stats().heap_allocations);
  pool.release(c);
}

TEST(BufferPoolTest, WarmByteBuffersRecycleThroughTheThreadLocalPool) {
  // Warm the relevant size class, then verify a sustained create/destroy
  // loop never carves new blocks from the heap.
  for (int i = 0; i < 4; ++i) ByteBuffer dummy(300);
  const std::uint64_t heap_before = BufferPool::local().stats().heap_allocations;
  for (int i = 0; i < 256; ++i) {
    ByteBuffer b(300, static_cast<std::uint8_t>(i));
    EXPECT_FALSE(b.is_inline());
    b.append_zeros(16);
  }
  EXPECT_EQ(heap_before, BufferPool::local().stats().heap_allocations);
}

TEST(BufferPoolTest, CrossThreadReleaseKeepsEveryCounterExact) {
  // Regression: global acquire/release tallies used to be two process-wide
  // atomics; now each pool keeps its own (owner-thread-written) counters,
  // merged on read. A block released on a thread that did not acquire it
  // must (a) not underflow the destination pool's `outstanding`, (b) tick
  // its `foreign_releases`, (c) keep the source pool counting the block as
  // outstanding, and (d) leave the merged global view migration-exact.
  constexpr int kBlocks = 5;
  BufferPool source;
  BufferPool::Block* blocks[kBlocks];
  for (auto& b : blocks) b = source.acquire(512);
  EXPECT_EQ(static_cast<std::uint64_t>(kBlocks), source.stats().outstanding);
  const BufferPool::GlobalStats before = BufferPool::global_stats();

  std::thread releaser([&] {
    BufferPool sink;
    EXPECT_EQ(0u, sink.stats().outstanding);
    for (auto* b : blocks) sink.release(b);
    EXPECT_EQ(0u, sink.stats().outstanding) << "foreign release must not underflow";
    EXPECT_EQ(static_cast<std::uint64_t>(kBlocks), sink.stats().foreign_releases);
    EXPECT_EQ(static_cast<std::uint64_t>(kBlocks), sink.stats().releases);
    // `sink` is destroyed here: its release tally must fold into the
    // registry's retired counters, not vanish with the pool.
  });
  releaser.join();

  EXPECT_EQ(static_cast<std::uint64_t>(kBlocks), source.stats().outstanding)
      << "migrated blocks never come home to the source pool";
  const BufferPool::GlobalStats after = BufferPool::global_stats();
  EXPECT_EQ(before.acquires, after.acquires);
  EXPECT_EQ(before.releases + kBlocks, after.releases);
  EXPECT_EQ(before.outstanding - kBlocks, after.outstanding)
      << "global view must stay exact across migration and pool teardown";
}

TEST(BufferPoolTest, GlobalStatsPairAcquiresWithReleasesOnTheHappyPath) {
  const BufferPool::GlobalStats before = BufferPool::global_stats();
  {
    BufferPool pool;
    BufferPool::Block* a = pool.acquire(256);
    BufferPool::Block* b = pool.acquire(4096);
    pool.release(a);
    pool.release(b);
  }
  const BufferPool::GlobalStats after = BufferPool::global_stats();
  EXPECT_EQ(before.acquires + 2, after.acquires);
  EXPECT_EQ(before.releases + 2, after.releases);
  EXPECT_EQ(before.outstanding, after.outstanding);
}

// ---------------------------------------------------------------------------
// SmallVec: moving a heap-spilled vector transfers the heap block wholesale;
// the source must end up empty without running destructors over the
// never-constructed slots of its inline buffer (regression: the old move
// ctor called clear() on the source after stealing the heap block, invoking
// size_ destructors on garbage inline storage).

struct LiveCounted {
  explicit LiveCounted(int* live) : live_(live) { ++*live_; }
  LiveCounted(LiveCounted&& o) noexcept : live_(o.live_) { ++*live_; }
  ~LiveCounted() { --*live_; }
  int* live_;
};

TEST(SmallVecTest, HeapSpilledMoveRunsNoSpuriousDestructors) {
  int live = 0;
  {
    SmallVec<LiveCounted, 4> src;
    for (int i = 0; i < 6; ++i) src.emplace_back(&live);  // spills past N=4
    ASSERT_EQ(6, live);
    SmallVec<LiveCounted, 4> dst(std::move(src));
    EXPECT_EQ(6, live) << "move must transfer elements, not destroy them";
    EXPECT_EQ(6u, dst.size());
    EXPECT_TRUE(src.empty());
    src.emplace_back(&live);  // source stays usable after the move
    EXPECT_EQ(7, live);
  }
  EXPECT_EQ(0, live) << "constructions and destructions must balance";
}

TEST(SmallVecTest, MoveAssignFromHeapSpilledSource) {
  int live = 0;
  SmallVec<LiveCounted, 2> a;
  for (int i = 0; i < 5; ++i) a.emplace_back(&live);
  SmallVec<LiveCounted, 2> b;
  b.emplace_back(&live);
  b = std::move(a);
  EXPECT_EQ(5u, b.size());
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(5, live);
  b.clear();
  EXPECT_EQ(0, live);
}

TEST(SmallVecTest, ParsingManySubPdusSurvivesTheMoveOutOfParse) {
  // The reviewer's repro: 5+ subPDUs spill MacSubPdus past its inline
  // capacity, and parse_mac_pdu's `return out;` move-constructs the spilled
  // vector into the optional. Round-trip must hold and nothing may corrupt
  // the buffer pool (the pooled payloads are released on scope exit below,
  // then reacquired cleanly).
  MacSubPdus sub;
  for (int i = 0; i < 6; ++i) {
    sub.emplace_back(MacSubPdu{Lcid::Drb1, ByteBuffer(40, static_cast<std::uint8_t>(i + 1))});
  }
  ByteBuffer tb = build_mac_pdu(sub, 6 * (kMacSubheaderBytes + 40) + 10);
  auto parsed = parse_mac_pdu(std::move(tb));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(6u, parsed->size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto bytes = (*parsed)[i].payload.bytes();
    ASSERT_EQ(40u, bytes.size());
    EXPECT_EQ(static_cast<std::uint8_t>(i + 1), bytes[0]);
  }
}

// ---------------------------------------------------------------------------
// ByteBuffer: small-buffer regime, from_bytes, and the invalidation contract.

TEST(ByteBufferContractTest, SmallPayloadsStayInline) {
  ByteBuffer small(16, 0xAB);
  EXPECT_TRUE(small.is_inline());
  ByteBuffer large(64, 0xCD);
  EXPECT_FALSE(large.is_inline());
}

TEST(ByteBufferContractTest, FromBytesCopiesExactlyOnce) {
  std::array<std::uint8_t, 100> src;
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint8_t>(i * 3 + 1);
  const ByteBuffer b = ByteBuffer::from_bytes(src);
  ASSERT_EQ(src.size(), b.size());
  EXPECT_EQ(0, std::memcmp(b.bytes().data(), src.data(), src.size()));
}

TEST(ByteBufferContractTest, GenerationTracksInvalidatingMutations) {
  ByteBuffer b(32, 0x11);
  const std::uint32_t g0 = b.generation();

  // Window-only operations leave storage (and thus existing spans) intact.
  (void)b.pop_header(4);
  b.truncate_back(4);
  EXPECT_EQ(g0, b.generation());

  // Mutating operations each bump the counter.
  const std::uint8_t hdr[2] = {0xAA, 0xBB};
  b.push_header(hdr);
  const std::uint32_t g1 = b.generation();
  EXPECT_GT(g1, g0);
  b.append(hdr);
  EXPECT_GT(b.generation(), g1);
}

TEST(ByteBufferContractTest, RelocationBumpsGenerationAndPreservesContents) {
  ByteBuffer b(16, 0x5C);  // inline: any large append must migrate to a block
  EXPECT_TRUE(b.is_inline());
  const std::uint32_t g0 = b.generation();
  b.reserve_tail(200);
  EXPECT_FALSE(b.is_inline());
  EXPECT_GT(b.generation(), g0) << "storage migration must invalidate spans";
  ASSERT_EQ(16u, b.size());
  for (const std::uint8_t byte : b.bytes()) EXPECT_EQ(0x5C, byte);
}

TEST(ByteBufferContractTest, HeaderPushPastHeadroomRelocates) {
  ByteBuffer b(64, 0x01);
  std::array<std::uint8_t, 80> big_header;
  big_header.fill(0xEE);
  const std::uint32_t g0 = b.generation();
  b.push_header(big_header);  // 80 > the 64-byte headroom reserve
  EXPECT_GT(b.generation(), g0);
  ASSERT_EQ(144u, b.size());
  EXPECT_EQ(0xEE, b.bytes()[0]);
  EXPECT_EQ(0x01, b.bytes()[80]);
  // After relocation the headroom reserve is restored: another push fits.
  const std::uint8_t small[4] = {9, 9, 9, 9};
  b.push_header(small);
  EXPECT_EQ(148u, b.size());
}

// ---------------------------------------------------------------------------
// Zero-allocation assertions.

constexpr std::uint8_t kQfi = 5;

/// The bench_datapath entity chain, reused here as a test: SDAP → PDCP →
/// RLC → MAC build/parse → RLC → PDCP → SDAP.
struct EntityChain {
  explicit EntityChain(std::size_t payload)
      : payload_bytes(payload), tb_bytes(payload + 64), pdcp_tx(config()), pdcp_rx(config()),
        rlc_tx(RlcMode::UM), rlc_rx(RlcMode::UM) {
    sdap.configure_flow(kQfi, BearerId{1}, urllc_five_qi());
  }

  static PdcpConfig config() {
    return PdcpConfig{.sn_bits = 12,
                      .integrity_enabled = true,
                      .security = CipherContext{.key = 0x5deece66d2b4a1c9ULL, .bearer = 1,
                                                .downlink = true}};
  }

  std::size_t pump(std::uint8_t fill) {
    ByteBuffer pkt(payload_bytes, fill);
    sdap.encapsulate(pkt, kQfi);
    pdcp_tx.protect(pkt);
    rlc_tx.enqueue(std::move(pkt), Nanos::zero());

    MacSubPdus sub;
    std::size_t used = 0;
    while (auto pulled = rlc_tx.pull(tb_bytes - used - kMacSubheaderBytes)) {
      used += kMacSubheaderBytes + pulled->pdu.size();
      sub.push_back(MacSubPdu{Lcid::Drb1, std::move(pulled->pdu)});
    }
    ByteBuffer tb = build_mac_pdu(sub, tb_bytes);

    std::size_t delivered = 0;
    auto parsed = parse_mac_pdu(std::move(tb));
    if (!parsed) return 0;
    for (MacSubPdu& sp : *parsed) {
      if (sp.lcid != Lcid::Drb1) continue;
      rlc_rx.receive(std::move(sp.payload), [&](ByteBuffer&& sdu, const PacketMeta&) {
        pdcp_rx.receive(std::move(sdu), [&](ByteBuffer&& plain, const PacketMeta&) {
          (void)sdap.decapsulate(plain);
          if (plain.size() == payload_bytes && plain.bytes()[0] == fill) {
            delivered = plain.size();
          }
        });
      });
    }
    return delivered;
  }

  /// Batched slot: kBatch packets protected, multiplexed into one transport
  /// block, parsed and received through the batch kernels — the
  /// bench_datapath pump_batch shape, with all scratch on the slot arena.
  static constexpr std::size_t kBatch = 8;
  std::size_t pump_batch(std::uint8_t fill) {
    std::array<ByteBuffer, kBatch> pkts;
    ByteBuffer** ptrs = arena.allocate_array<ByteBuffer*>(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      pkts[i] = ByteBuffer(payload_bytes, static_cast<std::uint8_t>(fill + i));
      sdap.encapsulate(pkts[i], kQfi);
      ptrs[i] = &pkts[i];
    }
    pdcp_tx.protect_batch({ptrs, kBatch});

    for (std::size_t i = 0; i < kBatch; ++i) rlc_tx.enqueue(std::move(pkts[i]), Nanos::zero());
    std::array<MacSubPdu, kBatch> sub;
    std::size_t nsub = 0;
    std::size_t used = 0;
    while (auto pulled = rlc_tx.pull(kBatch * tb_bytes - used - kMacSubheaderBytes)) {
      used += kMacSubheaderBytes + pulled->pdu.size();
      sub[nsub].lcid = Lcid::Drb1;
      sub[nsub].payload = std::move(pulled->pdu);
      if (++nsub == kBatch) break;
    }
    ByteBuffer tb = build_mac_pdu({sub.data(), nsub}, used);

    std::array<ByteBuffer, kBatch> staged;
    std::size_t nstaged = 0;
    parse_mac_pdu_to(std::move(tb), [&](ByteBuffer&& body, const PacketMeta& meta) {
      if (meta.lcid != static_cast<std::uint8_t>(Lcid::Drb1)) return;
      rlc_rx.receive(std::move(body), [&](ByteBuffer&& sdu, const PacketMeta&) {
        if (nstaged < kBatch) staged[nstaged++] = std::move(sdu);
      });
    });

    std::size_t delivered = 0;
    pdcp_rx.receive_batch({staged.data(), nstaged}, [&](ByteBuffer&& plain, const PacketMeta&) {
      (void)sdap.decapsulate(plain);
      if (plain.size() == payload_bytes) ++delivered;
    });
    arena.epoch_reset();
    return delivered;
  }

  std::size_t payload_bytes;
  std::size_t tb_bytes;
  SdapEntity sdap;
  PdcpTx pdcp_tx;
  PdcpRx pdcp_rx;
  RlcTx rlc_tx;
  RlcRx rlc_rx;
  Arena arena;
};

TEST(ZeroAllocTest, WarmEntityChainIsAllocationFree) {
  for (const std::size_t payload : {64u, 256u, 1250u}) {
    EntityChain chain(payload);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(payload, chain.pump(static_cast<std::uint8_t>(i | 1))) << "warm-up failed";
    }
    const std::size_t before = g_allocs.load();
    for (int i = 0; i < 256; ++i) {
      ASSERT_EQ(payload, chain.pump(static_cast<std::uint8_t>(i | 1)));
    }
    EXPECT_EQ(0u, g_allocs.load() - before)
        << "warm entity chain allocated at payload " << payload;
  }
}

TEST(ZeroAllocTest, BatchedSlotRoundTripsEveryPacket) {
  // Functional check first: the batched slot (protect_batch, one multiplexed
  // TB, receive_batch) must deliver all kBatch packets per pump, at every
  // payload class, including runs long enough to wrap PDCP lanes and RLC SNs.
  for (const std::size_t payload : {64u, 256u, 1250u}) {
    EntityChain chain(payload);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(EntityChain::kBatch, chain.pump_batch(static_cast<std::uint8_t>(i)))
          << "batch " << i << " at payload " << payload;
    }
  }
}

TEST(ZeroAllocTest, WarmBatchedSlotIsAllocationFree) {
  // The batched path stages through arena scratch and std::array buffers;
  // once pools and arena slabs are warm, a full kBatch-packet slot must not
  // touch the heap — the counting allocator is the proof, the bench --strict
  // gate is the ongoing enforcement.
  for (const std::size_t payload : {64u, 256u, 1250u}) {
    EntityChain chain(payload);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(EntityChain::kBatch, chain.pump_batch(static_cast<std::uint8_t>(i)));
    }
    const std::size_t before = g_allocs.load();
    for (int i = 0; i < 128; ++i) {
      ASSERT_EQ(EntityChain::kBatch, chain.pump_batch(static_cast<std::uint8_t>(i)));
    }
    EXPECT_EQ(0u, g_allocs.load() - before)
        << "warm batched slot allocated at payload " << payload;
  }
}

TEST(ZeroAllocTest, WarmE2eUplinkPacketIsAllocationFree) {
  // Full e2e_system path, grant-free UM uplink. All packet records and
  // creation events are registered up front; the simulation then runs to
  // just before the last packet is created, a heap snapshot is taken, and
  // the last packet's complete journey — app, SDAP/PDCP/RLC, configured
  // grant, MAC PDU, radio, gNB receive chain, UPF delivery — must finish
  // without a single heap allocation.
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/7);
  E2eSystem sys(cfg);

  // 4 ms spacing keeps one packet in flight at a time: the DDDU pattern has
  // a UL occasion every 2 ms, and two packets sharing one occasion can be
  // PDCP-reordered by their independent gNB processing jitter — the
  // reordering map is the *intended* (allocating) path for that case, not
  // the in-order steady state this test pins down.
  constexpr int kPackets = 48;
  const Nanos spacing{4'000'000};
  for (int i = 0; i < kPackets; ++i) sys.send_uplink_at(Nanos{i * spacing.count()});

  const Nanos last_created{(kPackets - 1) * spacing.count()};
  sys.run_until(last_created - Nanos{1});
  const std::size_t before = g_allocs.load();
  sys.run_until(Nanos::max());
  const std::size_t during = g_allocs.load() - before;

  ASSERT_EQ(static_cast<std::size_t>(kPackets), sys.records().size());
  for (const PacketRecord& r : sys.records()) {
    ASSERT_TRUE(r.ok) << "packet " << r.seq << " not delivered";
  }
  EXPECT_EQ(0u, during) << "warm e2e uplink packet allocated on the heap";
}

}  // namespace
}  // namespace u5g
