#pragma once
// One cell of the sharded scale-out engine (sim/sharded.hpp).
//
// A Cell is a shard: it owns a complete E2eSystem — its own Simulator, gNB
// stack, and num_ues *tracked* UE stacks — built from a per-cell StackConfig
// whose seed is drawn from a SplitMix64 stream rooted at the engine-level
// seed. Cell 0 keeps the root seed, so a 1-cell sharded run reproduces a
// plain E2eSystem bit for bit.
//
// When `StackConfig::population.background_ues > 0` the cell additionally
// carries a UePopulation (mac/ue_population.hpp): a flat-row pool of lite
// background UEs ticked once per slot, interleaved with the tracked system
// inside advance_to(). The population's backlog loads the tracked gNB
// through the same external-load hook the inter-cell coupling uses, and its
// RNG stream is forked from `cell_seed ^ salt` — the tracked system's draw
// sequence never changes, so single-cell parity and every golden file
// survive with a population attached.
//
// Cells share no mutable state while a synchronisation window executes; all
// cross-cell interaction goes through the engine at slot barriers
// (queue_* / load_signal / set_neighbor_load).

#include <cstdint>
#include <memory>

#include "core/e2e_system.hpp"
#include "core/stack_config.hpp"
#include "mac/ue_population.hpp"

namespace u5g {

/// Seed of cell `index` in the engine's SplitMix64 stream. Cell 0 keeps the
/// root seed (single-cell parity with a plain E2eSystem); the rest get
/// replication-style stream seeds, mirroring the PR-1 runner's contract.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t root, int index);

/// Cell `index`'s StackConfig: the engine-level base with the per-cell seed.
[[nodiscard]] StackConfig per_cell_config(const StackConfig& base, int index);

class Cell {
 public:
  Cell(const StackConfig& base, int index);

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] E2eSystem& system() { return *sys_; }
  [[nodiscard]] const E2eSystem& system() const { return *sys_; }
  /// Background lite-UE pool, or nullptr when the config has none.
  [[nodiscard]] const UePopulation* population() const { return pop_.get(); }

  // -- Traffic (engine thread, between windows) -----------------------------

  /// Register an uplink packet at UE `ue`'s application layer at `at`.
  void queue_uplink(Nanos at, int ue);
  /// Hand a backhaul packet from the UPF shard to this (serving) cell: it
  /// enters the cell's core-network ingress at `at`.
  void queue_downlink(Nanos at, int ue);

  // -- Shard execution (worker thread, inside a window) ---------------------

  /// Advance the cell to exactly `to` (one synchronisation window; the
  /// engine guarantees no cross-cell input changes before then). With a
  /// population attached, slot ticks interleave with the event drain: slot k
  /// ticks once the tracked system has drained to the end of slot k.
  void advance_to(Nanos to);

  /// Earliest instant at which this cell can next change observable state:
  /// min of the tracked simulator's next pending event and the next
  /// population slot tick. Nanos::max() when fully idle. The engine's
  /// adaptive lookahead uses this to size synchronisation windows and to
  /// skip dispatching provably idle cells.
  [[nodiscard]] Nanos next_activity() const;

  // -- Cross-shard signals (engine thread, at the barrier) ------------------

  /// Tracked packets started but not yet delivered.
  [[nodiscard]] std::uint64_t inflight_packets() const;
  /// The load signal neighbours see: tracked in-flight packets plus queued
  /// background packets. Only changes when events fire or a slot ticks, so
  /// it is constant between consecutive next_activity() instants — the fact
  /// the adaptive lookahead's barrier-skipping rests on.
  [[nodiscard]] std::uint64_t load_signal() const;
  /// Apply the aggregate neighbour load (in equivalent extra UEs) exchanged
  /// at the barrier; effective from the next window's processing draws.
  /// Combined with the own-population backlog load before reaching the gNB.
  void set_neighbor_load(double equivalent_ues);
  /// Added-DL symbol fraction of this cell's latest dynamic-TDD commit —
  /// the cross-link interference signal neighbours' uplinks face. Pinned at
  /// zero while `dynamic_tdd.enabled` is false.
  [[nodiscard]] double dl_upgrade_activity() const;
  /// Apply the aggregate neighbour DL-upgrade activity exchanged at the
  /// barrier; scales UL loss through `dynamic_tdd.xlink_ul_bler`.
  void set_crosslink(double aggregate_activity);

 private:
  void apply_load();
  [[nodiscard]] Nanos tick_time(std::uint64_t slot) const {
    return Nanos{static_cast<std::int64_t>(slot + 1) * slot_.count()};
  }

  int index_;
  Nanos slot_{1};
  std::unique_ptr<E2eSystem> sys_;
  std::unique_ptr<UePopulation> pop_;  ///< null when background_ues == 0
  std::uint64_t ticked_slots_ = 0;     ///< population slots completed
  double neighbor_load_ = 0.0;
};

}  // namespace u5g
