#include "trace/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace u5g {

std::int64_t LatencyHistogram::quantile(double q) const {
  if (n_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n_)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += bins_[static_cast<std::size_t>(i)];
    if (cum >= rank) {
      // Upper bound of bucket i, clamped to the observed maximum.
      const std::int64_t hi = (i + 1 < kBucketCount) ? bucket_lower(i + 1) - 1
                                                     : std::numeric_limits<std::int64_t>::max();
      return hi < max_ ? hi : max_;
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  for (int i = 0; i < kBucketCount; ++i) bins_[static_cast<std::size_t>(i)] += o.bins_[static_cast<std::size_t>(i)];
  n_ += o.n_;
  sum_ += o.sum_;
  if (o.n_ != 0) {
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].merge(c);
  for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
}

void append_f(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": " + std::to_string(c.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h.count());
    out += ", \"min_ns\": " + std::to_string(h.min());
    out += ", \"max_ns\": " + std::to_string(h.max());
    out += ", \"mean_ns\": ";
    append_f(out, h.mean());
    out += ", \"p50_ns\": " + std::to_string(h.quantile(0.50));
    out += ", \"p90_ns\": " + std::to_string(h.quantile(0.90));
    out += ", \"p99_ns\": " + std::to_string(h.quantile(0.99));
    out += ", \"p999_ns\": " + std::to_string(h.quantile(0.999));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace u5g
