#pragma once
// Uniform command line for the Monte-Carlo benches:
//
//   bench_xyz [--packets N] [--trials N] [--seed S] [--threads T]
//             [--json FILE] [--out DIR]  (or a positional DIR, kept for
//             backward-compatible CSV dumping)
//             [--trace FILE] [--metrics FILE] [--strict]
//
// `--trace` enables the tracing subsystem and writes a Chrome trace_event
// JSON (chrome://tracing / Perfetto); `--metrics` enables the metrics
// registry and writes its JSON export; `--strict` turns on bench-specific
// self-check assertions (a failed assertion exits non-zero — CI's
// regression gate).
//
// Every bench fills the defaults it cares about and calls
// `parse_bench_options`; CI uses the same flags to run quick smoke
// configurations (small --packets/--trials) of every bench.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace u5g {

struct BenchOptions {
  int packets = 0;        ///< packets (or sweep work items) per configuration
  int trials = 1;         ///< independent Monte-Carlo replications to merge
  std::uint64_t seed = 1; ///< root seed of the replication stream
  int threads = 0;        ///< runner workers; 0 = hardware concurrency
  std::optional<std::string> out_dir;  ///< CSV dump directory
  std::optional<std::string> json;     ///< machine-readable result file
  std::optional<std::string> trace;    ///< Chrome trace_event JSON output
  std::optional<std::string> metrics;  ///< metrics-registry JSON output
  bool strict = false;                 ///< enable bench self-check assertions
  bool smoke = false;                  ///< shrink fixed sweeps for sanitizer CI
  // Query-service workload knobs (bench_serve and friends):
  int queries = 0;     ///< total queries to issue (0 = bench default)
  int batch = 0;       ///< queries per QueryBatch (0 = one batch per sweep)
  bool async = false;  ///< exercise the future/callback completion paths
};

namespace detail {

inline long long parse_ll(const char* flag, const char* value) {
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace detail

/// Parse the uniform bench flags over `defaults`. Unknown flags print usage
/// and exit(2); `--help` prints usage and exit(0). A bare positional argument
/// is treated as the CSV output directory (legacy calling convention).
inline BenchOptions parse_bench_options(int argc, char** argv, BenchOptions defaults = {}) {
  BenchOptions o = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--packets") == 0) {
      o.packets = static_cast<int>(detail::parse_ll(a, next(a)));
    } else if (std::strcmp(a, "--trials") == 0) {
      o.trials = std::max(1, static_cast<int>(detail::parse_ll(a, next(a))));
    } else if (std::strcmp(a, "--seed") == 0) {
      o.seed = static_cast<std::uint64_t>(detail::parse_ll(a, next(a)));
    } else if (std::strcmp(a, "--threads") == 0) {
      o.threads = static_cast<int>(detail::parse_ll(a, next(a)));
    } else if (std::strcmp(a, "--json") == 0) {
      o.json = next(a);
    } else if (std::strcmp(a, "--out") == 0) {
      o.out_dir = next(a);
    } else if (std::strcmp(a, "--trace") == 0) {
      o.trace = next(a);
    } else if (std::strcmp(a, "--metrics") == 0) {
      o.metrics = next(a);
    } else if (std::strcmp(a, "--strict") == 0) {
      o.strict = true;
    } else if (std::strcmp(a, "--smoke") == 0) {
      o.smoke = true;
    } else if (std::strcmp(a, "--queries") == 0) {
      o.queries = static_cast<int>(detail::parse_ll(a, next(a)));
    } else if (std::strcmp(a, "--batch") == 0) {
      o.batch = static_cast<int>(detail::parse_ll(a, next(a)));
    } else if (std::strcmp(a, "--async") == 0) {
      o.async = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf("usage: %s [--packets N] [--trials N] [--seed S] [--threads T] "
                  "[--json FILE] [--out DIR | DIR] [--trace FILE] [--metrics FILE] "
                  "[--strict] [--smoke] [--queries N] [--batch N] [--async]\n",
                  argv[0]);
      std::exit(0);
    } else if (a[0] != '-') {
      o.out_dir = a;  // legacy positional CSV directory
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", a);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace u5g
