#include "mac/bsr.hpp"

#include <cmath>

namespace u5g {

namespace {
// Exponential bucket edges: B(i) = ceil(10 * 1.375^i), i in [0, 30];
// index 31 means "more than B(30)". Mirrors the standard table's growth.
std::size_t edge(int i) {
  return static_cast<std::size_t>(std::ceil(10.0 * std::pow(1.375, i)));
}
}  // namespace

int bsr_index(std::size_t bytes) {
  if (bytes == 0) return 0;  // index 0: empty buffer
  for (int i = 0; i <= 30; ++i) {
    if (bytes <= edge(i)) return i + 1;  // indices 1..31 cover (0, edge(30)]
  }
  return 31;
}

std::size_t bsr_bucket_bytes(int idx) {
  if (idx <= 0) return 0;
  if (idx >= 31) return edge(30) * 2;
  return edge(idx - 1);
}

}  // namespace u5g
