// Tests for the ping-journey composition (Figs 2-3).

#include <gtest/gtest.h>

#include "core/journey.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

JourneyParams realistic() {
  JourneyParams p;
  p.ran.sender_processing = 50_us;
  p.ran.receiver_processing = 80_us;
  p.ran.radio_tx = 30_us;
  p.ran.radio_rx = 40_us;
  p.ran.sr_decode = 20_us;
  p.ran.grant_decode = 60_us;
  return p;
}

TEST(JourneyTest, RttIsSumOfParts) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  const JourneyParams p = realistic();
  const Nanos at = dddu.period() * 8 + 100_us;
  const PingJourney j = trace_ping(dddu, at, p);
  ASSERT_TRUE(j.uplink.feasible);
  ASSERT_TRUE(j.downlink.feasible);
  EXPECT_EQ(j.rtt, j.downlink.completion - at);
  // The reply enters the gNB exactly after uplink + core + turnaround + core.
  EXPECT_EQ(j.downlink.arrival,
            j.uplink.completion + j.core_uplink + j.turnaround + j.core_downlink);
  EXPECT_GT(j.rtt, j.uplink.latency() + j.downlink.latency());
}

TEST(JourneyTest, GrantFreeBeatsGrantBased) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  JourneyParams gb = realistic();
  JourneyParams gf = realistic();
  gf.grant_free = true;
  const Nanos at = dddu.period() * 8 + 100_us;
  // §7: the handshake adds roughly one TDD period to the uplink.
  const PingJourney a = trace_ping(dddu, at, gb);
  const PingJourney b = trace_ping(dddu, at, gf);
  EXPECT_GT(a.uplink.latency(), b.uplink.latency() + dddu.period() / 2);
  EXPECT_GT(a.rtt, b.rtt);
}

TEST(JourneyTest, CategoryTotalsCoverEverything) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  const PingJourney j = trace_ping(dddu, dddu.period() * 8 + 1_ns, realistic());
  const Nanos sum = j.category_total(LatencyCategory::Protocol) +
                    j.category_total(LatencyCategory::Processing) +
                    j.category_total(LatencyCategory::Radio);
  EXPECT_EQ(sum, j.rtt);
}

TEST(JourneyTest, ProtocolDominatesOnTdd) {
  // §4: "the protocol latency is the most significant".
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  const PingJourney j = trace_ping(dddu, dddu.period() * 8 + 100_us, realistic());
  EXPECT_GT(j.category_total(LatencyCategory::Protocol),
            j.category_total(LatencyCategory::Processing));
  EXPECT_GT(j.category_total(LatencyCategory::Protocol),
            j.category_total(LatencyCategory::Radio));
}

TEST(JourneyTest, RenderListsAllStages) {
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  const PingJourney j = trace_ping(dddu, dddu.period() * 8 + 1_ns, realistic());
  const std::string r = j.render();
  EXPECT_NE(r.find("ping request (uplink):"), std::string::npos);
  EXPECT_NE(r.find("core network uplink"), std::string::npos);
  EXPECT_NE(r.find("ping reply (downlink):"), std::string::npos);
  EXPECT_NE(r.find("round trip:"), std::string::npos);
}

TEST(JourneyTest, IdealisedFddPingIsSubMillisecond) {
  // The URLLC target: 1 ms round trip is attainable with the right design
  // (full duplex, grant-free, zero-cost stack).
  const FddConfig fdd{kMu2};
  JourneyParams p;
  p.grant_free = true;
  p.upf_latency = 5_us;
  p.backhaul = 10_us;
  p.server_turnaround = 1_us;
  const PingJourney j = trace_ping(fdd, fdd.period() * 8 + 1_ns, p);
  EXPECT_LT(j.rtt, 1_ms);
}

}  // namespace
}  // namespace u5g
