#pragma once
// Slot Format configuration (TS 38.213 §11.1.1; paper §2, Fig 1c).
//
// The gNB signals one of a set of standard-defined per-slot formats — a
// 14-symbol string over {Downlink, Uplink, Flexible}. Compared with
// Mini-Slot this reduces signalling overhead at the cost of coarser
// allocation, because only the predefined formats are permitted.

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tdd/duplex_config.hpp"

namespace u5g {

enum class SymbolKind : std::uint8_t { Downlink, Uplink, Flexible };

/// One standard slot format: its index and 14 symbol kinds.
struct SlotFormat {
  int index = 0;
  std::array<SymbolKind, kSymbolsPerSlot> symbols{};

  [[nodiscard]] bool has_dl() const;
  [[nodiscard]] bool has_ul() const;
  /// Render as a 14-char string over {D,U,F}.
  [[nodiscard]] std::string render() const;
};

/// Formats 0–45 of TS 38.213 Table 11.1.1-1. (Formats 46–55, the repeated
/// half-slot variants, are intentionally omitted: they add no new direction
/// structure to the latency analysis.)
[[nodiscard]] std::span<const SlotFormat> slot_format_table();

/// Format by index; throws std::out_of_range for indices we do not carry.
[[nodiscard]] const SlotFormat& slot_format(int index);

/// A duplex configuration built from a repeating sequence of slot-format
/// indices. Flexible symbols count as neither DL- nor UL-capable here: the
/// conservative reading used for worst-case analysis (a flexible symbol is
/// only usable after further dynamic signalling).
class SlotFormatConfig final : public DuplexConfig {
 public:
  SlotFormatConfig(Numerology num, std::vector<int> format_indices);

  [[nodiscard]] bool dl_capable(SlotIndex slot, int sym) const override;
  [[nodiscard]] bool ul_capable(SlotIndex slot, int sym) const override;
  [[nodiscard]] int period_slots() const override { return static_cast<int>(formats_.size()); }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const SlotFormat& format_of_slot(SlotIndex slot) const;

 private:
  std::vector<int> indices_;
  std::vector<const SlotFormat*> formats_;
};

}  // namespace u5g
