#pragma once
// PDCP ciphering and integrity primitives.
//
// Stand-ins for NEA/NIA (the 5G AES/SNOW/ZUC suites): a counter-keyed
// xorshift keystream for confidentiality and a 32-bit FNV-style tag for
// integrity. They reproduce the *structural* properties PDCP depends on —
// same (key, count, bearer, direction) => same keystream; any bit flip
// breaks the tag — at simulator cost. Not cryptographically secure, and
// deliberately so: this library evaluates latency, not security.

#include <cstdint>
#include <span>

namespace u5g {

/// Security context: key plus the COUNT input block parameters.
struct CipherContext {
  std::uint64_t key = 0x5deece66d2b4a1c9ULL;
  std::uint32_t bearer = 0;
  bool downlink = true;
};

/// XOR `data` with the keystream for (`ctx`, `count`). Involutory: applying
/// it twice with the same parameters restores the plaintext.
void apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx, std::uint32_t count);

/// 32-bit integrity tag over `data` under (`ctx`, `count`).
[[nodiscard]] std::uint32_t integrity_tag(std::span<const std::uint8_t> data,
                                          const CipherContext& ctx, std::uint32_t count);

}  // namespace u5g
