#pragma once
// FDD configuration (paper §2): separate, equal UL and DL bandwidths — a
// full-duplex channel at every instant. Every symbol is both DL- and
// UL-capable; scheduling/control remains per slot. Terrestrial FDD exists
// only below 2.6 GHz, so it is unavailable to private 5G (§2, §9) — the
// `allowed_in_band` check encodes that.

#include <string>

#include "phy/band.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

class FddConfig final : public DuplexConfig {
 public:
  explicit FddConfig(Numerology num) : DuplexConfig(num) {}

  [[nodiscard]] bool dl_capable(SlotIndex, int) const override { return true; }
  [[nodiscard]] bool ul_capable(SlotIndex, int) const override { return true; }
  [[nodiscard]] int period_slots() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "FDD"; }

  /// FDD requires an FDD band — all of which sit below 2.6 GHz.
  [[nodiscard]] static bool allowed_in_band(const Band& band) {
    return band.duplex == DuplexMode::FDD;
  }
};

}  // namespace u5g
