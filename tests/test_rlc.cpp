// Unit tests for src/rlc: header codec, UM segmentation/reassembly, AM ARQ,
// TM passthrough, and the queue instrumentation behind Table 2's RLC-q.

#include <gtest/gtest.h>

#include <vector>

#include "rlc/rlc_entity.hpp"
#include "rlc/rlc_pdu.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

ByteBuffer payload(std::size_t n, std::uint8_t seed = 1) {
  ByteBuffer b(n);
  auto bytes = b.bytes();
  for (std::size_t i = 0; i < n; ++i) bytes[i] = static_cast<std::uint8_t>(seed + i);
  return b;
}

bool same_bytes(const ByteBuffer& a, const ByteBuffer& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.bytes()[i] != b.bytes()[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Header codec

struct HeaderCase {
  SegmentInfo si;
  std::uint16_t sn;
  std::uint16_t so;
  bool poll;
};

class RlcHeaderTest : public ::testing::TestWithParam<HeaderCase> {};

TEST_P(RlcHeaderTest, EncodeDecodeRoundTrip) {
  const auto& c = GetParam();
  ByteBuffer pdu = payload(5);
  RlcHeader h{c.si, c.sn, c.so, c.poll};
  h.encode(pdu);
  EXPECT_EQ(pdu.size(), 5 + h.encoded_size());

  const auto back = RlcHeader::decode(pdu);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->si, c.si);
  EXPECT_EQ(back->sn, c.sn);
  EXPECT_EQ(back->poll, c.poll);
  if (h.needs_so()) EXPECT_EQ(back->so, c.so);
  EXPECT_EQ(pdu.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RlcHeaderTest,
    ::testing::Values(HeaderCase{SegmentInfo::Complete, 0, 0, false},
                      HeaderCase{SegmentInfo::Complete, 4095, 0, true},
                      HeaderCase{SegmentInfo::First, 17, 0, false},
                      HeaderCase{SegmentInfo::Middle, 100, 5'000, false},
                      HeaderCase{SegmentInfo::Last, 2'222, 65'000, true}));

TEST(RlcHeaderTest, TruncatedDecode) {
  ByteBuffer one(1);
  EXPECT_FALSE(RlcHeader::decode(one).has_value());
  // Middle header claims an SO but the buffer ends after the SN.
  ByteBuffer two(2);
  two.bytes()[0] = static_cast<std::uint8_t>(static_cast<int>(SegmentInfo::Middle) << 6);
  EXPECT_FALSE(RlcHeader::decode(two).has_value());
}

// ---------------------------------------------------------------------------
// UM: complete PDUs

TEST(RlcUmTest, CompleteSduRoundTrip) {
  RlcTx tx(RlcMode::UM);
  RlcRx rx(RlcMode::UM);
  tx.enqueue(payload(50), 10_us);
  const auto pdu = tx.pull(100);
  ASSERT_TRUE(pdu.has_value());
  EXPECT_EQ(pdu->sdu_enqueued_at, 10_us);
  EXPECT_FALSE(pdu->is_retransmission);

  std::vector<ByteBuffer> out;
  rx.receive(std::move(const_cast<ByteBuffer&>(pdu->pdu)), [&](ByteBuffer&& s, const PacketMeta&) {
    out.push_back(std::move(s));
  });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(same_bytes(out[0], payload(50)));
}

TEST(RlcUmTest, PullEmptyQueue) {
  RlcTx tx(RlcMode::UM);
  EXPECT_FALSE(tx.pull(100).has_value());
  EXPECT_FALSE(tx.has_data());
}

TEST(RlcUmTest, PullTooSmallGrant) {
  RlcTx tx(RlcMode::UM);
  tx.enqueue(payload(50), 0_ns);
  EXPECT_FALSE(tx.pull(4).has_value());  // cannot fit header + 1 byte
  EXPECT_TRUE(tx.has_data());            // data stays queued
}

TEST(RlcUmTest, QueueAccounting) {
  RlcTx tx(RlcMode::UM);
  tx.enqueue(payload(30), 1_us);
  tx.enqueue(payload(70), 2_us);
  EXPECT_EQ(tx.queued_sdus(), 2u);
  EXPECT_EQ(tx.queued_bytes(), 100u);
  EXPECT_EQ(tx.head_enqueued_at(), 1_us);
  (void)tx.pull(200);
  EXPECT_EQ(tx.queued_sdus(), 1u);
  EXPECT_EQ(tx.head_enqueued_at(), 2_us);
}

TEST(RlcUmTest, SnAdvancesPerSdu) {
  RlcTx tx(RlcMode::UM);
  tx.enqueue(payload(10), 0_ns);
  tx.enqueue(payload(10), 0_ns);
  const auto p1 = tx.pull(100);
  const auto p2 = tx.pull(100);
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p2->sn, static_cast<std::uint16_t>(p1->sn + 1));
}

// ---------------------------------------------------------------------------
// UM: segmentation

class SegmentationTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SegmentationTest, ReassembledEqualsOriginal) {
  const auto [sdu_size, grant] = GetParam();
  RlcTx tx(RlcMode::UM);
  RlcRx rx(RlcMode::UM);
  tx.enqueue(payload(static_cast<std::size_t>(sdu_size), 0x30), 0_ns);

  std::vector<ByteBuffer> out;
  int pdus = 0;
  while (auto pdu = tx.pull(static_cast<std::size_t>(grant))) {
    ++pdus;
    rx.receive(std::move(pdu->pdu), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
    ASSERT_LT(pdus, 1000) << "segmentation does not terminate";
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(same_bytes(out[0], payload(static_cast<std::size_t>(sdu_size), 0x30)));
  if (sdu_size + 2 > grant) EXPECT_GT(pdus, 1);  // it really segmented
  EXPECT_EQ(rx.pending_reassemblies(), 0u);
}

INSTANTIATE_TEST_SUITE_P(SizesByGrants, SegmentationTest,
                         ::testing::Combine(::testing::Values(10, 64, 100, 1000, 1500),
                                            ::testing::Values(16, 40, 64, 128, 1600)));

TEST(SegmentationTest, OutOfOrderSegmentsReassemble) {
  RlcTx tx(RlcMode::UM);
  RlcRx rx(RlcMode::UM);
  tx.enqueue(payload(100, 0x11), 0_ns);
  std::vector<ByteBuffer> pdus;
  while (auto p = tx.pull(40)) pdus.push_back(std::move(p->pdu));
  ASSERT_GE(pdus.size(), 3u);

  std::vector<ByteBuffer> out;
  // Deliver in reverse order.
  for (auto it = pdus.rbegin(); it != pdus.rend(); ++it) {
    rx.receive(std::move(*it), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(same_bytes(out[0], payload(100, 0x11)));
}

TEST(SegmentationTest, DuplicateSegmentIgnored) {
  RlcTx tx(RlcMode::UM);
  RlcRx rx(RlcMode::UM);
  tx.enqueue(payload(100, 0x22), 0_ns);
  std::vector<ByteBuffer> pdus;
  while (auto p = tx.pull(40)) pdus.push_back(std::move(p->pdu));

  std::vector<ByteBuffer> out;
  ByteBuffer dup = pdus[0];
  rx.receive(std::move(pdus[0]), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  rx.receive(std::move(dup), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  for (std::size_t i = 1; i < pdus.size(); ++i) {
    rx.receive(std::move(pdus[i]), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(same_bytes(out[0], payload(100, 0x22)));
}

TEST(SegmentationTest, MissingSegmentHoldsReassembly) {
  RlcTx tx(RlcMode::UM);
  RlcRx rx(RlcMode::UM);
  tx.enqueue(payload(100, 0x33), 0_ns);
  std::vector<ByteBuffer> pdus;
  while (auto p = tx.pull(40)) pdus.push_back(std::move(p->pdu));
  ASSERT_GE(pdus.size(), 3u);

  std::vector<ByteBuffer> out;
  // Drop the middle segment.
  rx.receive(std::move(pdus.front()), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  rx.receive(std::move(pdus.back()), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(rx.pending_reassemblies(), 1u);
}

// ---------------------------------------------------------------------------
// AM: ARQ

TEST(RlcAmTest, StatusReportsNackForMissingSn) {
  RlcTx tx(RlcMode::AM);
  RlcRx rx(RlcMode::AM);
  for (int i = 0; i < 3; ++i) tx.enqueue(payload(20, static_cast<std::uint8_t>(i)), 0_ns);
  std::vector<ByteBuffer> pdus;
  while (auto p = tx.pull(64)) pdus.push_back(std::move(p->pdu));
  ASSERT_EQ(pdus.size(), 3u);

  std::vector<ByteBuffer> out;
  rx.receive(std::move(pdus[0]), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  // pdus[1] lost.
  rx.receive(std::move(pdus[2]), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });

  const auto st = rx.build_status();
  EXPECT_EQ(st.ack_sn, 3);
  ASSERT_EQ(st.nacks.size(), 1u);
  EXPECT_EQ(st.nacks[0], 1);
}

TEST(RlcAmTest, NackTriggersRetransmission) {
  RlcTx tx(RlcMode::AM);
  for (int i = 0; i < 2; ++i) tx.enqueue(payload(20, static_cast<std::uint8_t>(i)), 0_ns);
  auto p0 = tx.pull(64);
  auto p1 = tx.pull(64);
  ASSERT_TRUE(p0 && p1);
  EXPECT_EQ(tx.unacked_pdus(), 2u);

  tx.on_status(2, {1});  // SN 0 ACKed, SN 1 NACKed
  EXPECT_EQ(tx.unacked_pdus(), 1u);
  const auto retx = tx.pull(64);
  ASSERT_TRUE(retx.has_value());
  EXPECT_TRUE(retx->is_retransmission);
  EXPECT_EQ(retx->sn, 1);
}

TEST(RlcAmTest, AckClearsRetransmissionBuffer) {
  RlcTx tx(RlcMode::AM);
  tx.enqueue(payload(20), 0_ns);
  (void)tx.pull(64);
  EXPECT_EQ(tx.unacked_pdus(), 1u);
  tx.on_status(1, {});
  EXPECT_EQ(tx.unacked_pdus(), 0u);
  EXPECT_FALSE(tx.pull(64).has_value());  // nothing to retransmit
}

TEST(RlcAmTest, RetransmittedPduDeliversCorrectly) {
  RlcTx tx(RlcMode::AM);
  RlcRx rx(RlcMode::AM);
  tx.enqueue(payload(20, 0x55), 0_ns);
  auto p = tx.pull(64);
  ASSERT_TRUE(p.has_value());
  // First copy lost; status NACKs it; the retransmission delivers.
  tx.on_status(1, {0});
  auto retx = tx.pull(64);
  ASSERT_TRUE(retx.has_value());
  std::vector<ByteBuffer> out;
  rx.receive(std::move(retx->pdu), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(same_bytes(out[0], payload(20, 0x55)));
}

TEST(RlcAmTest, StatusIgnoredInUmMode) {
  RlcTx tx(RlcMode::UM);
  tx.enqueue(payload(20), 0_ns);
  (void)tx.pull(64);
  tx.on_status(1, {0});
  EXPECT_FALSE(tx.pull(64).has_value());  // UM never retransmits
}

// ---------------------------------------------------------------------------
// TM

TEST(RlcTmTest, Passthrough) {
  RlcTx tx(RlcMode::TM);
  RlcRx rx(RlcMode::TM);
  tx.enqueue(payload(40, 0x66), 0_ns);
  auto p = tx.pull(100);
  ASSERT_TRUE(p.has_value());
  std::vector<ByteBuffer> out;
  rx.receive(std::move(p->pdu), [&](ByteBuffer&& s, const PacketMeta&) { out.push_back(std::move(s)); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(same_bytes(out[0], payload(40, 0x66)));
}

}  // namespace
}  // namespace u5g
