#pragma once
// Chrome trace_event export: renders TraceSpans as the JSON Object Format
// consumed by chrome://tracing and Perfetto. Each traced packet becomes a
// "thread" (tid = packet seq) so its spans line up as one waterfall row;
// complete events ("ph":"X") carry microsecond timestamps/durations and the
// LatencyCategory as the event category. Multi-cell runs export one lane
// (= one trace "process") per cell, so shards stack as separate swimlane
// groups in the viewer.

#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace u5g {

/// One export lane: a named span stream rendered as its own trace process.
struct TraceLane {
  std::string name;
  std::span<const TraceSpan> spans;
};

/// Serialise spans to a chrome://tracing JSON document (single lane, pid 0).
[[nodiscard]] std::string chrome_trace_json(std::span<const TraceSpan> spans,
                                            std::string_view process_name = "u5g");

/// Serialise one lane per entry (pid = lane index, process_name = lane name).
[[nodiscard]] std::string chrome_trace_json(std::span<const TraceLane> lanes);

/// Write chrome_trace_json(spans) to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path, std::span<const TraceSpan> spans,
                        std::string_view process_name = "u5g");

/// Write the multi-lane document to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path, std::span<const TraceLane> lanes);

}  // namespace u5g
