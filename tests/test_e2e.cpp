// Integration tests of the full end-to-end system (core/e2e_system): the
// testbed reproduction, the URLLC design point, payload integrity through
// the whole stack, HARQ under loss, radio deadline misses, and the
// agreement between the event simulation and the analytic worst case.

#include <gtest/gtest.h>

#include "core/e2e_system.hpp"
#include "core/latency_model.hpp"
#include "tdd/common_config.hpp"
#include "tdd/mini_slot.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

constexpr Nanos kPattern{2'000'000};  // DDDU at µ1

void offer_uniform(E2eSystem& sys, int packets, Direction dir, std::uint64_t seed,
                   Nanos spacing = kPattern * 2) {
  Rng rng(seed);
  for (int i = 0; i < packets; ++i) {
    const Nanos at = spacing * i + Nanos{static_cast<std::int64_t>(
                                        rng.uniform() * static_cast<double>(kPattern.count()))};
    if (dir == Direction::Uplink) {
      sys.send_uplink_at(at);
    } else {
      sys.send_downlink_at(at);
    }
  }
}

// ---------------------------------------------------------------------------
// Delivery and latency bands

TEST(E2eTest, TestbedDeliversEverything) {
  E2eSystem sys(StackConfig::testbed_grant_based(1));
  offer_uniform(sys, 200, Direction::Uplink, 2);
  offer_uniform(sys, 200, Direction::Downlink, 3);
  sys.run_until(kPattern * 2 * 220);
  EXPECT_EQ(sys.latency_samples_us(Direction::Uplink).count(), 200u);
  EXPECT_EQ(sys.latency_samples_us(Direction::Downlink).count(), 200u);
}

TEST(E2eTest, TestbedLatencyBandsMatchFig6) {
  // Fig 6's bands: DL ~1.3-3.2 ms; grant-based UL ~2-7 ms.
  E2eSystem sys(StackConfig::testbed_grant_based(4));
  offer_uniform(sys, 400, Direction::Uplink, 5);
  offer_uniform(sys, 400, Direction::Downlink, 6);
  sys.run_until(kPattern * 2 * 420);
  auto dl = sys.latency_samples_us(Direction::Downlink);
  auto ul = sys.latency_samples_us(Direction::Uplink);
  EXPECT_GT(dl.mean(), 1'000.0);
  EXPECT_LT(dl.mean(), 3'000.0);
  EXPECT_GT(ul.mean(), 2'000.0);
  EXPECT_LT(ul.mean(), 7'000.0);
  EXPECT_GT(ul.mean(), dl.mean());  // §7: "the latency is much bigger than the DL"
}

TEST(E2eTest, GrantFreeSavesAboutOnePattern) {
  // §7 / Fig 6: grant-free removes the SR+grant handshake, ~one TDD period.
  E2eSystem gb(StackConfig::testbed_grant_based(7));
  E2eSystem gf(StackConfig::testbed_grant_free(7));
  offer_uniform(gb, 300, Direction::Uplink, 8);
  offer_uniform(gf, 300, Direction::Uplink, 8);
  gb.run_until(kPattern * 2 * 320);
  gf.run_until(kPattern * 2 * 320);
  const double gap_us =
      gb.latency_samples_us(Direction::Uplink).mean() - gf.latency_samples_us(Direction::Uplink).mean();
  EXPECT_GT(gap_us, 1'000.0);
  EXPECT_LT(gap_us, 3'500.0);
}

TEST(E2eTest, UrllcDesignMeetsMillisecondClassLatency) {
  E2eSystem sys(StackConfig::urllc_design(9));
  Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    sys.send_uplink_at(1_ms * (2 * i) + Nanos{static_cast<std::int64_t>(rng.uniform() * 5e5)});
    sys.send_downlink_at(1_ms * (2 * i + 1) +
                         Nanos{static_cast<std::int64_t>(rng.uniform() * 5e5)});
  }
  sys.run_until(1_ms * 650);
  auto ul = sys.latency_samples_us(Direction::Uplink);
  auto dl = sys.latency_samples_us(Direction::Downlink);
  ASSERT_EQ(ul.count(), 300u);
  ASSERT_EQ(dl.count(), 300u);
  EXPECT_LT(ul.quantile(0.99), 1'000.0);  // sub-ms uplink p99
  EXPECT_LT(dl.quantile(0.99), 1'500.0);
}

// ---------------------------------------------------------------------------
// Table 2 emergence

TEST(E2eTest, RlcQueueWaitEmerges) {
  E2eSystem sys(StackConfig::testbed_grant_based(11));
  offer_uniform(sys, 500, Direction::Downlink, 12);
  sys.run_until(kPattern * 2 * 520);
  const RunningStats q = sys.rlc_queue_stats_us();
  ASSERT_EQ(q.count(), 500u);
  // The paper measures 484 µs; the emergent value is geometry-driven.
  EXPECT_GT(q.mean(), 300.0);
  EXPECT_LT(q.mean(), 700.0);
}

TEST(E2eTest, LayerStatsMatchCalibration) {
  E2eSystem sys(StackConfig::testbed_grant_based(13));
  offer_uniform(sys, 400, Direction::Uplink, 14);
  offer_uniform(sys, 400, Direction::Downlink, 15);
  sys.run_until(kPattern * 2 * 420);
  EXPECT_NEAR(sys.gnb_layer_stats_us(Layer::MAC).mean(), 55.21, 8.0);
  EXPECT_NEAR(sys.gnb_layer_stats_us(Layer::PHY).mean(), 41.55, 6.0);
  EXPECT_NEAR(sys.gnb_layer_stats_us(Layer::PDCP).mean(), 8.29, 2.0);
}

// ---------------------------------------------------------------------------
// Loss, HARQ, radio deadlines

TEST(E2eTest, ChannelLossRecoveredByHarq) {
  StackConfig cfg = StackConfig::testbed_grant_free(16);
  cfg.channel_loss = 0.1;
  E2eSystem sys(std::move(cfg));
  offer_uniform(sys, 300, Direction::Uplink, 17);
  offer_uniform(sys, 300, Direction::Downlink, 18);
  sys.run_until(kPattern * 2 * 330);
  // With 4 HARQ attempts at 10 % loss, residual loss is ~1e-4.
  EXPECT_GE(sys.latency_samples_us(Direction::Uplink).count(), 298u);
  EXPECT_GE(sys.latency_samples_us(Direction::Downlink).count(), 298u);
  // Some packets took more than one attempt and it shows in the record.
  int multi = 0;
  for (const PacketRecord& r : sys.records()) multi += r.harq_transmissions > 1 ? 1 : 0;
  EXPECT_GT(multi, 10);
}

TEST(E2eTest, MacBacklogScansTheSoAPoolRows) {
  // mac_backlog() reads the struct-of-arrays MAC state rows directly (the
  // batch-scan consumer of the UE pool). Quiesced after a loss-free run,
  // every backlog gauge must be back at idle; mid-run with pending traffic
  // the gauges must be internally consistent.
  StackConfig cfg = StackConfig::testbed_grant_free(21);
  cfg.num_ues = 4;
  E2eSystem sys(std::move(cfg));
  offer_uniform(sys, 40, Direction::Uplink, 22);
  sys.run_until(kPattern * 2 * 50);
  const E2eSystem::MacBacklog idle = sys.mac_backlog();
  EXPECT_EQ(0u, idle.sr_pending) << "no SR may stay latched after the run drains";
  EXPECT_EQ(0u, idle.retx_ues);
  EXPECT_EQ(0u, idle.retx_tbs);

  // Under loss, the retx gauges must agree with each other at any instant:
  // a UE counted in retx_ues contributes at least one TB.
  StackConfig lossy = StackConfig::testbed_grant_free(23);
  lossy.channel_loss = 0.3;
  E2eSystem sys2(std::move(lossy));
  offer_uniform(sys2, 100, Direction::Uplink, 24);
  bool saw_retx = false;
  for (int step = 1; step <= 100; ++step) {
    sys2.run_until(kPattern * 2 * step);
    const E2eSystem::MacBacklog b = sys2.mac_backlog();
    EXPECT_GE(b.retx_tbs, b.retx_ues);
    saw_retx = saw_retx || b.retx_ues > 0;
  }
  EXPECT_TRUE(saw_retx) << "30% loss must surface a HARQ retx backlog at some slot";
}

TEST(E2eTest, RetransmissionCostsVisibleInLatency) {
  StackConfig cfg = StackConfig::testbed_grant_free(19);
  cfg.channel_loss = 0.15;
  E2eSystem sys(std::move(cfg));
  offer_uniform(sys, 400, Direction::Downlink, 20);
  sys.run_until(kPattern * 2 * 420);
  RunningStats first, retx;
  for (const PacketRecord& r : sys.records()) {
    if (!r.ok) continue;
    (r.harq_transmissions == 1 ? first : retx).add(r.latency().us());
  }
  ASSERT_GT(retx.count(), 5u);
  EXPECT_GT(retx.mean(), first.mean() + 300.0);  // ~a slot or more per recovery
}

TEST(E2eTest, TightLeadCausesRadioDeadlineMisses) {
  StackConfig cfg = StackConfig::testbed_grant_based(21);
  cfg.sched.radio_lead = Nanos{360'000};  // barely covers the USB cost
  E2eSystem tight(std::move(cfg));
  offer_uniform(tight, 400, Direction::Downlink, 22);
  tight.run_until(kPattern * 2 * 420);
  EXPECT_GT(tight.radio_deadline_misses(), 0u);

  StackConfig cfg2 = StackConfig::testbed_grant_based(21);
  cfg2.sched.radio_lead = 1_ms;
  E2eSystem loose(std::move(cfg2));
  offer_uniform(loose, 400, Direction::Downlink, 22);
  loose.run_until(kPattern * 2 * 420);
  EXPECT_EQ(loose.radio_deadline_misses(), 0u);
}

// ---------------------------------------------------------------------------
// Structural integrity

TEST(E2eTest, RecordsCarryDirectionAndOrdering) {
  E2eSystem sys(StackConfig::testbed_grant_free(23));
  sys.send_uplink_at(1_ms);
  sys.send_downlink_at(2_ms);
  sys.run_until(100_ms);
  const auto& recs = sys.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].dir, Direction::Uplink);
  EXPECT_EQ(recs[1].dir, Direction::Downlink);
  for (const PacketRecord& r : recs) {
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.delivered, r.created);
    EXPECT_EQ(r.harq_transmissions, 1);
  }
}

TEST(E2eTest, DlRecordsCarryPerLayerTimes) {
  E2eSystem sys(StackConfig::testbed_grant_based(24));
  sys.send_downlink_at(1_ms);
  sys.run_until(100_ms);
  const PacketRecord& r = sys.records().front();
  ASSERT_TRUE(r.ok);
  // The DL ingress traversal recorded SDAP/PDCP/RLC draws on the record.
  EXPECT_GT(r.gnb_layer_time[static_cast<int>(Layer::SDAP)], Nanos::zero());
  EXPECT_GT(r.gnb_layer_time[static_cast<int>(Layer::PDCP)], Nanos::zero());
  EXPECT_GT(r.gnb_layer_time[static_cast<int>(Layer::RLC)], Nanos::zero());
}

TEST(E2eTest, ReliabilityHelperConsistent) {
  E2eSystem sys(StackConfig::testbed_grant_free(25));
  offer_uniform(sys, 100, Direction::Downlink, 26);
  sys.run_until(kPattern * 2 * 120);
  EXPECT_DOUBLE_EQ(sys.reliability_at(Direction::Downlink, 100_ms), 1.0);
  EXPECT_DOUBLE_EQ(sys.reliability_at(Direction::Downlink, 1_us), 0.0);
}

TEST(E2eTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    E2eSystem sys(StackConfig::testbed_grant_based(seed));
    offer_uniform(sys, 50, Direction::Uplink, 99);
    sys.run_until(kPattern * 2 * 60);
    return sys.latency_samples_us(Direction::Uplink).mean();
  };
  EXPECT_DOUBLE_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(124));
}

TEST(E2eTest, MiniSlotDuplexWorksEndToEnd) {
  // The Mini-Slot configuration drives the same E2E machinery at 2-symbol
  // granularity: everything delivers, and latency beats the DM design point
  // (denser opportunities in both directions).
  StackConfig cfg = StackConfig::urllc_design(77);
  cfg.duplex = std::make_shared<MiniSlotConfig>(kMu2, 2);
  E2eSystem mini(std::move(cfg));
  E2eSystem dm(StackConfig::urllc_design(77));
  Rng rng(78);
  for (int i = 0; i < 150; ++i) {
    const Nanos at =
        1_ms * (2 * i) + Nanos{static_cast<std::int64_t>(rng.uniform() * 5e5)};
    mini.send_uplink_at(at);
    dm.send_uplink_at(at);
    mini.send_downlink_at(at + 1_ms);
    dm.send_downlink_at(at + 1_ms);
  }
  mini.run_until(1_ms * 330);
  dm.run_until(1_ms * 330);
  auto mini_ul = mini.latency_samples_us(Direction::Uplink);
  auto dm_ul = dm.latency_samples_us(Direction::Uplink);
  ASSERT_EQ(mini_ul.count(), 150u);
  ASSERT_EQ(dm_ul.count(), 150u);
  EXPECT_LT(mini_ul.mean(), dm_ul.mean());
  auto mini_dl = mini.latency_samples_us(Direction::Downlink);
  ASSERT_EQ(mini_dl.count(), 150u);
}

TEST(E2eTest, MissingDuplexThrows) {
  StackConfig cfg;  // duplex not set
  EXPECT_THROW(E2eSystem{std::move(cfg)}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Analytic agreement: the event simulation with a near-ideal stack stays
// inside the analytic envelope.

TEST(E2eAgreementTest, SimWithinAnalyticEnvelope) {
  // Near-ideal system: zero processing, zero-jitter/zero-cost radio, free
  // core network — protocol geometry is all that remains.
  StackConfig cfg;
  cfg.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dddu(kMu1));
  cfg.grant_free = true;
  cfg.cg = ConfiguredGrantConfig::every_symbol(256, 4);
  cfg.sched = SchedulerParams::idealised();
  cfg.sched.ul_tx_symbols = 4;
  cfg.gnb_proc = ProcessingProfile::zero();
  cfg.ue_proc = ProcessingProfile::zero();
  const BusParams free_bus{"free", Nanos::zero(), Nanos::zero(), JitterParams::none()};
  cfg.gnb_radio = RadioHeadParams{free_bus, SampleRate{}, Nanos::zero(), Nanos::zero()};
  cfg.ue_radio = cfg.gnb_radio;
  cfg.phy = PhyTimingParams{Nanos::zero(), Nanos::zero(), Nanos::zero(), Nanos::zero(), 0};
  cfg.upf = UpfParams{Nanos::zero(), Nanos::zero(), 0.0, Nanos::zero()};
  cfg.seed = 30;
  E2eSystem sys(std::move(cfg));

  offer_uniform(sys, 300, Direction::Downlink, 31);
  sys.run_until(kPattern * 2 * 320);

  // The e2e radio path still has a small fixed receive floor (rx_base in
  // RadioHead); allow that as slack.
  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  LatencyModelParams p;
  const auto wc = analyze_worst_case(dddu, AccessMode::Downlink, p);
  auto dl = sys.latency_samples_us(Direction::Downlink);
  ASSERT_EQ(dl.count(), 300u);
  EXPECT_LE(dl.max(), wc.worst.us() + 60.0);
  EXPECT_GE(dl.min(), wc.best.us() * 0.5);
}

}  // namespace
}  // namespace u5g
