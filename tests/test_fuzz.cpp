// Randomised property tests ("fuzz-lite"): drive the simulator kernel and
// the protocol entities with thousands of random operation sequences and
// check the invariants that every schedule must preserve. Seeds are fixed,
// so failures replay deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "mac/mac_pdu.hpp"
#include "tdd/common_config.hpp"
#include "tdd/dynamic_format.hpp"
#include "pdcp/cipher.hpp"
#include "pdcp/pdcp_entity.hpp"
#include "rlc/rlc_entity.hpp"
#include "sim/simulator.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Simulator kernel vs a trivial reference implementation

TEST(FuzzSimulator, MatchesReferenceModel) {
  // Reference model: the set of (time, id) scheduled minus cancellations;
  // the kernel must fire exactly that set, ordered by (time, schedule id).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Simulator sim;
    std::map<int, std::int64_t> reference;  // id -> time (pending, not cancelled)
    std::map<int, EventHandle> handles;     // pending handles by id
    std::vector<int> fired;
    int next_id = 0;
    std::int64_t horizon = 0;

    for (int i = 0; i < 400; ++i) {
      const double dice = rng.uniform();
      if (dice < 0.7 || handles.empty()) {
        const auto when =
            horizon + static_cast<std::int64_t>(rng.uniform_int(1'000'000));
        const int id = next_id++;
        handles[id] = sim.schedule_at(Nanos{when}, [&fired, id] { fired.push_back(id); });
        reference[id] = when;
      } else if (dice < 0.85) {
        auto it = handles.begin();
        std::advance(it, static_cast<long>(rng.uniform_int(handles.size())));
        EXPECT_TRUE(sim.cancel(it->second)) << "seed " << seed;
        reference.erase(it->first);
        handles.erase(it);
      } else {
        horizon += static_cast<std::int64_t>(rng.uniform_int(300'000));
        sim.run_until(Nanos{horizon});
        for (auto it = handles.begin(); it != handles.end();) {
          if (reference.at(it->first) <= horizon) {
            it = handles.erase(it);  // already fired; handle no longer pending
          } else {
            ++it;
          }
        }
      }
    }
    sim.run_until();

    // Expected firing order: by (time, id).
    std::vector<std::pair<std::int64_t, int>> expected;
    for (const auto& [id, when] : reference) expected.emplace_back(when, id);
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(fired.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(fired[i], expected[i].second) << "seed " << seed << " pos " << i;
    }
  }
}

// Naive reference kernel: a plain vector of (time, id, cancelled) scanned
// for the minimum on every pop. Same (time, schedule-order) contract as the
// real kernel, trivially correct, O(n) per event.
class ReferenceKernel {
 public:
  int schedule(std::int64_t when) {
    events_.push_back({when, next_id_++, false});
    return events_.back().id;
  }

  bool cancel(int id) {
    for (Ev& e : events_) {
      if (e.id == id) {
        e.cancelled = true;
        return true;
      }
    }
    return false;
  }

  /// Fire everything with when <= until; append (id, when) to `log`.
  void run_until(std::int64_t until, std::vector<std::pair<int, std::int64_t>>& log) {
    while (true) {
      const Ev* best = nullptr;
      for (const Ev& e : events_) {
        if (e.when > until) continue;
        if (best == nullptr || e.when < best->when ||
            (e.when == best->when && e.id < best->id)) {
          best = &e;
        }
      }
      if (best == nullptr) break;
      const Ev ev = *best;
      events_.erase(events_.begin() + (best - events_.data()));
      if (!ev.cancelled) log.emplace_back(ev.id, ev.when);
    }
  }

  /// Fire exactly one live event if any; returns whether one fired.
  bool step(std::vector<std::pair<int, std::int64_t>>& log) {
    const std::size_t before = log.size();
    while (!events_.empty() && log.size() == before) {
      const Ev* best = &events_.front();
      for (const Ev& e : events_) {
        if (e.when < best->when || (e.when == best->when && e.id < best->id)) best = &e;
      }
      const Ev ev = *best;
      events_.erase(events_.begin() + (best - events_.data()));
      if (!ev.cancelled) log.emplace_back(ev.id, ev.when);
    }
    return log.size() != before;
  }

  [[nodiscard]] std::size_t live() const {
    std::size_t n = 0;
    for (const Ev& e : events_) n += e.cancelled ? 0 : 1;
    return n;
  }

 private:
  struct Ev {
    std::int64_t when;
    int id;
    bool cancelled;
  };
  std::vector<Ev> events_;
  int next_id_ = 0;
};

// Property test: randomized schedule/cancel/run_until/step sequences against
// the naive reference queue; identical firing order AND identical clock
// trace (the simulator's now() at each firing must be the scheduled time).
TEST(FuzzSimulator, MatchesNaiveReferenceKernelWithClockTrace) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 2654435761ULL);
    Simulator sim;
    ReferenceKernel ref;
    std::vector<std::pair<int, std::int64_t>> sim_log;  // (id, now at firing)
    std::vector<std::pair<int, std::int64_t>> ref_log;
    std::map<int, EventHandle> handles;  // by reference id, cancellable only
    std::int64_t horizon = 0;

    for (int op = 0; op < 600; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.55 || handles.empty()) {
        const auto when = horizon + static_cast<std::int64_t>(rng.uniform_int(500'000));
        const int id = ref.schedule(when);
        handles[id] = sim.schedule_at(Nanos{when}, [&sim_log, &sim, id] {
          sim_log.emplace_back(id, sim.now().count());
        });
      } else if (dice < 0.72) {
        auto it = handles.begin();
        std::advance(it, static_cast<long>(rng.uniform_int(handles.size())));
        EXPECT_EQ(sim.cancel(it->second), ref.cancel(it->first)) << "seed " << seed;
        handles.erase(it);
      } else if (dice < 0.88) {
        horizon += static_cast<std::int64_t>(rng.uniform_int(200'000));
        sim.run_until(Nanos{horizon});
        ref.run_until(horizon, ref_log);
      } else {
        EXPECT_EQ(sim.step(), ref.step(ref_log)) << "seed " << seed;
        if (!ref_log.empty()) horizon = std::max(horizon, ref_log.back().second);
      }
      // Fired handles stay in `handles`; both kernels must agree that
      // cancelling them fails, so they are left in deliberately. Drop only
      // what the logs say fired to keep the map small.
      for (std::size_t k = handles.size() > 64 ? ref_log.size() : std::size_t{0}; k > 0; --k) {
        handles.erase(ref_log[k - 1].first);
      }
      EXPECT_EQ(sim.pending_events(), ref.live()) << "seed " << seed << " op " << op;
    }
    sim.run_until();
    ref.run_until(std::numeric_limits<std::int64_t>::max(), ref_log);

    ASSERT_EQ(sim_log.size(), ref_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ref_log.size(); ++i) {
      EXPECT_EQ(sim_log[i].first, ref_log[i].first) << "seed " << seed << " pos " << i;
      EXPECT_EQ(sim_log[i].second, ref_log[i].second)
          << "seed " << seed << " pos " << i << ": clock trace diverged";
    }
  }
}

TEST(FuzzSimulatorOrdering, FiringLogIsTimeOrdered) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    Simulator sim;
    std::vector<std::int64_t> fire_times;
    std::vector<EventHandle> pending;
    int scheduled = 0;
    int cancelled = 0;
    for (int i = 0; i < 500; ++i) {
      const auto when = static_cast<std::int64_t>(rng.uniform_int(10'000'000));
      pending.push_back(sim.schedule_at(Nanos{when}, [&fire_times, &sim] {
        fire_times.push_back(sim.now().count());
      }));
      ++scheduled;
      if (rng.bernoulli(0.2) && !pending.empty()) {
        const auto idx = rng.uniform_int(pending.size());
        if (sim.cancel(pending[idx])) ++cancelled;
        pending.erase(pending.begin() + static_cast<long>(idx));
      }
    }
    sim.run_until();
    EXPECT_EQ(fire_times.size(), static_cast<std::size_t>(scheduled - cancelled));
    EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end())) << "seed " << seed;
    EXPECT_TRUE(sim.idle());
  }
}

// ---------------------------------------------------------------------------
// RLC under random segmentation, loss and reordering

ByteBuffer random_payload(Rng& rng, std::size_t n) {
  ByteBuffer b(n);
  for (auto& x : b.bytes()) x = static_cast<std::uint8_t>(rng.uniform_int(256));
  return b;
}

bool same_bytes(const ByteBuffer& a, const ByteBuffer& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.bytes()[i] != b.bytes()[i]) return false;
  }
  return true;
}

TEST(FuzzRlc, RandomGrantsReassembleExactly) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 7919);
    RlcTx tx(RlcMode::UM);
    RlcRx rx(RlcMode::UM);

    std::vector<ByteBuffer> sent;
    const int n_sdus = 1 + static_cast<int>(rng.uniform_int(6));
    for (int i = 0; i < n_sdus; ++i) {
      const std::size_t size = 1 + rng.uniform_int(2000);
      ByteBuffer sdu = random_payload(rng, size);
      sent.push_back(sdu);
      tx.enqueue(std::move(sdu), Nanos{static_cast<std::int64_t>(i)});
    }

    std::vector<ByteBuffer> received;
    int guard = 0;
    while (tx.has_data() && ++guard < 10'000) {
      const std::size_t grant = 5 + rng.uniform_int(300);
      auto pdu = tx.pull(grant);
      if (!pdu) continue;
      rx.receive(std::move(pdu->pdu),
                 [&](ByteBuffer&& sdu, const PacketMeta&) { received.push_back(std::move(sdu)); });
    }
    ASSERT_LT(guard, 10'000) << "seed " << seed << ": segmentation did not drain";
    ASSERT_EQ(received.size(), sent.size()) << "seed " << seed;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_TRUE(same_bytes(received[i], sent[i])) << "seed " << seed << " sdu " << i;
    }
  }
}

TEST(FuzzRlc, AmRecoversFromRandomLoss) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 104729);
    RlcTx tx(RlcMode::AM);
    RlcRx rx(RlcMode::AM);

    std::vector<ByteBuffer> sent;
    const int n_sdus = 4 + static_cast<int>(rng.uniform_int(8));
    for (int i = 0; i < n_sdus; ++i) {
      ByteBuffer sdu = random_payload(rng, 10 + rng.uniform_int(100));
      sent.push_back(sdu);
      tx.enqueue(std::move(sdu), Nanos{static_cast<std::int64_t>(i)});
    }

    std::vector<ByteBuffer> received;
    // Rounds of transmit-with-loss followed by status-driven repair.
    for (int round = 0; round < 20 && received.size() < sent.size(); ++round) {
      int guard = 0;
      while (++guard < 1000) {
        auto pdu = tx.pull(256);
        if (!pdu) break;
        if (rng.bernoulli(0.3)) continue;  // lost on the air
        rx.receive(std::move(pdu->pdu),
                   [&](ByteBuffer&& sdu, const PacketMeta&) { received.push_back(std::move(sdu)); });
      }
      const auto status = rx.build_status();
      tx.on_status(status.ack_sn, status.nacks);
      // t-PollRetransmit expiry: PDUs the receiver never saw are above its
      // ACK horizon and will never be NACKed — the sender re-queues them.
      tx.retransmit_unacked();
    }
    // AM delivers on completion, so retransmitted SDUs arrive out of order
    // (in-order delivery is PDCP's job, one layer up). Compare as sets:
    // every sent SDU delivered exactly once, bit-exact.
    ASSERT_EQ(received.size(), sent.size()) << "seed " << seed;
    std::vector<bool> matched(sent.size(), false);
    for (const ByteBuffer& got : received) {
      bool found = false;
      for (std::size_t i = 0; i < sent.size(); ++i) {
        if (!matched[i] && same_bytes(got, sent[i])) {
          matched[i] = true;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "seed " << seed << ": delivered an SDU never sent (or twice)";
    }
  }
}

// ---------------------------------------------------------------------------
// PDCP under random reordering and duplication

TEST(FuzzPdcp, RandomReorderAndDuplicatesDeliverInOrderOnce) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 31337);
    PdcpTx tx;
    PdcpRx rx;

    const int n = 30;
    std::vector<ByteBuffer> pdus;
    for (int i = 0; i < n; ++i) {
      ByteBuffer b = random_payload(rng, 8 + rng.uniform_int(64));
      tx.protect(b);
      pdus.push_back(std::move(b));
    }
    // Shuffle within a bounded window (realistic HARQ-induced reordering),
    // and duplicate a few PDUs.
    std::vector<ByteBuffer> wire;
    for (int i = 0; i < n; ++i) {
      wire.push_back(pdus[static_cast<std::size_t>(i)]);
      if (rng.bernoulli(0.2)) wire.push_back(pdus[static_cast<std::size_t>(i)]);  // dup
    }
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
      if (rng.bernoulli(0.4)) std::swap(wire[i], wire[i + 1]);
    }

    std::vector<std::uint32_t> delivered;
    for (ByteBuffer& b : wire) {
      rx.receive(std::move(b), [&](ByteBuffer&&, const PacketMeta& m) { delivered.push_back(m.count); });
    }
    rx.flush([&](ByteBuffer&&, const PacketMeta& m) { delivered.push_back(m.count); });

    // Exactly once, strictly increasing.
    EXPECT_EQ(delivered.size(), static_cast<std::size_t>(n)) << "seed " << seed;
    EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end())) << "seed " << seed;
    EXPECT_TRUE(std::adjacent_find(delivered.begin(), delivered.end()) == delivered.end());
  }
}

// ---------------------------------------------------------------------------
// MAC PDU multiplexing: randomized round trips (including subPDU counts past
// MacSubPdus' inline capacity, forcing the SmallVec heap spill) and
// truncated / bit-flipped transport blocks, which must be rejected cleanly
// or parsed into well-formed subPDUs — never read out of bounds (the
// ASan/UBSan CI job runs this test).

TEST(FuzzMacPdu, RandomRoundTripsSurviveHeapSpill) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed ^ 0x3AC0ULL);
    // 1..10 subPDUs: > 4 exercises the SmallVec<MacSubPdu, 4> heap path.
    const int n = 1 + static_cast<int>(rng.uniform_int(10));
    MacSubPdus in;
    std::size_t needed = 0;
    for (int i = 0; i < n; ++i) {
      const std::size_t len = 1 + rng.uniform_int(64);
      MacSubPdu sp;
      sp.lcid = rng.bernoulli(0.2) ? Lcid::ShortBsr : Lcid::Drb1;
      sp.payload = random_payload(rng, len);
      needed += kMacSubheaderBytes + len;
      in.push_back(std::move(sp));
    }
    // Random padding slack; occasionally large enough for a padding subPDU.
    const std::size_t tb_bytes = needed + rng.uniform_int(rng.bernoulli(0.3) ? 40 : 3);

    ByteBuffer tb = build_mac_pdu({in.data(), in.size()}, tb_bytes);
    ASSERT_EQ(tb_bytes, tb.size()) << "seed " << seed;
    auto out = parse_mac_pdu(std::move(tb));
    ASSERT_TRUE(out.has_value()) << "seed " << seed;
    ASSERT_EQ(in.size(), out->size()) << "seed " << seed;
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(in[i].lcid, (*out)[i].lcid) << "seed " << seed;
      ASSERT_EQ(in[i].payload.size(), (*out)[i].payload.size()) << "seed " << seed;
      EXPECT_TRUE(std::equal(in[i].payload.bytes().begin(), in[i].payload.bytes().end(),
                             (*out)[i].payload.bytes().begin()))
          << "seed " << seed;
    }
    // A block too small for the subPDUs must throw, not truncate silently.
    if (needed > 1) {
      EXPECT_THROW((void)build_mac_pdu({in.data(), in.size()}, needed - 1), std::length_error);
    }
  }
}

TEST(FuzzMacPdu, TruncatedAndCorruptBlocksRejectCleanly) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed ^ 0xBADC0DEULL);
    const int n = 1 + static_cast<int>(rng.uniform_int(8));
    MacSubPdus in;
    std::size_t needed = 0;
    for (int i = 0; i < n; ++i) {
      const std::size_t len = 1 + rng.uniform_int(48);
      in.push_back(MacSubPdu{Lcid::Drb1, random_payload(rng, len)});
      needed += kMacSubheaderBytes + len;
    }
    const ByteBuffer original = build_mac_pdu({in.data(), in.size()}, needed);

    // Truncation: drop a random tail. The parser must either reject the
    // block or deliver a prefix of the original subPDUs — and never a
    // payload that was not fully present.
    {
      const std::size_t cut = rng.uniform_int(original.size());
      ByteBuffer truncated(cut);
      std::copy_n(original.bytes().begin(), cut, truncated.bytes().begin());
      auto out = parse_mac_pdu(std::move(truncated));
      if (out) {
        ASSERT_LE(out->size(), in.size()) << "seed " << seed;
        for (std::size_t i = 0; i < out->size(); ++i) {
          EXPECT_EQ(in[i].payload.size(), (*out)[i].payload.size()) << "seed " << seed;
        }
      }
    }
    // Bit flips: corrupt random header/payload bytes. Any outcome is legal
    // except a crash or an out-of-bounds payload.
    {
      ByteBuffer corrupt = original;
      const int flips = 1 + static_cast<int>(rng.uniform_int(4));
      for (int f = 0; f < flips; ++f) {
        const std::size_t pos = rng.uniform_int(corrupt.size());
        corrupt.bytes()[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
      auto out = parse_mac_pdu(std::move(corrupt));
      if (out) {
        std::size_t total = 0;
        for (const MacSubPdu& sp : *out) total += kMacSubheaderBytes + sp.payload.size();
        EXPECT_LE(total, original.size()) << "seed " << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PDCP cipher + integrity: the word-wise production kernels against their
// byte-wise oracles (the pre-optimisation implementations, kept verbatim in
// test_datapath.cpp and re-stated here), over random lengths, alignments
// and security-context parameters.

std::uint64_t ref_keystream_word(const CipherContext& ctx, std::uint32_t count,
                                 std::uint64_t block) {
  std::uint64_t x = ctx.key ^ (static_cast<std::uint64_t>(count) << 32) ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 8) ^ (ctx.downlink ? 1u : 0u);
  x += (block + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void ref_apply_keystream(std::span<std::uint8_t> data, const CipherContext& ctx,
                         std::uint32_t count) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t word = ref_keystream_word(ctx, count, i / 8);
    data[i] ^= static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
}

std::uint32_t ref_integrity_tag(std::span<const std::uint8_t> data, const CipherContext& ctx,
                                std::uint32_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ ctx.key ^ count ^
                    (static_cast<std::uint64_t>(ctx.bearer) << 40) ^ (ctx.downlink ? 2u : 0u);
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

TEST(FuzzCipher, WordWiseKernelsMatchByteWiseOracles) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed ^ 0xC1F3ULL);
    const std::size_t len = rng.uniform_int(320);  // 0..319: every word tail
    const CipherContext ctx{.key = rng.next_u64(),
                            .bearer = static_cast<std::uint32_t>(rng.uniform_int(33)),
                            .downlink = rng.bernoulli(0.5)};
    const auto count = static_cast<std::uint32_t>(rng.next_u64());

    std::vector<std::uint8_t> plain(len);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next_u64());

    // Cipher: production vs oracle, plus the involution property.
    std::vector<std::uint8_t> prod = plain;
    std::vector<std::uint8_t> ref = plain;
    apply_keystream(prod, ctx, count);
    ref_apply_keystream(ref, ctx, count);
    EXPECT_EQ(ref, prod) << "seed " << seed << " len " << len;
    apply_keystream(prod, ctx, count);
    EXPECT_EQ(plain, prod) << "seed " << seed << " len " << len;

    // Integrity: production vs oracle; any single bit flip must change it.
    const std::uint32_t tag = integrity_tag(plain, ctx, count);
    EXPECT_EQ(ref_integrity_tag(plain, ctx, count), tag) << "seed " << seed;
    if (len > 0) {
      std::vector<std::uint8_t> flipped = plain;
      const std::size_t pos = rng.uniform_int(len);
      flipped[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      EXPECT_NE(tag, integrity_tag(flipped, ctx, count)) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Dynamic slot-format policy: random queue-state sequences

TEST(FuzzDynamicTdd, RandomQueueSequencesKeepPolicyInvariants) {
  // Three base skeletons with different static structure, random knobs and
  // queue-state sequences. Invariants per step:
  //   1. determinism — two identically-fed instances emit identical formats;
  //   2. UL starvation bound — at most ul_guard_slots consecutive decisions
  //      carry a DL upgrade, then a clean slot goes out;
  //   3. render()/parse() round-trips losslessly;
  //   4. monotone relaxation — the effective SlotFormat never demotes a
  //      symbol the static base could use, and a committed overlay keeps
  //      dl_capable/ul_capable a superset of the base.
  const TddCommonConfig bases[] = {TddCommonConfig::du(kMu2), TddCommonConfig::dm(kMu2),
                                   TddCommonConfig::mu(kMu2)};
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const TddCommonConfig& base = bases[seed % 3];
    Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    DynamicTddConfig cfg;
    cfg.enabled = true;
    cfg.guard_slots = static_cast<int>(rng.uniform_int(3));
    cfg.hold_slots = 1 + static_cast<int>(rng.uniform_int(8));
    cfg.ul_guard_slots = 1 + static_cast<int>(rng.uniform_int(4));

    DynamicFormatPolicy a(base, cfg);
    DynamicFormatPolicy b(base, cfg);
    auto shared = std::make_shared<TddCommonConfig>(base);
    DynamicDuplexConfig overlay(shared);
    int dl_run = 0;
    for (SlotIndex k = 0; k < 300; ++k) {
      TddQueueState q;
      q.sr_pending = static_cast<std::uint32_t>(rng.uniform_int(4));
      q.cg_armed = static_cast<std::uint32_t>(rng.uniform_int(4));
      q.ul_retx_tbs = static_cast<std::uint32_t>(rng.uniform_int(3));
      q.ul_queued_sdus = static_cast<std::uint32_t>(rng.uniform_int(5));
      q.dl_queued_sdus = static_cast<std::uint32_t>(rng.uniform_int(5));
      q.dl_inflight_tbs = static_cast<std::uint32_t>(rng.uniform_int(3));

      const DecidedFormat fa = a.decide(k, q);
      const DecidedFormat fb = b.decide(k, q);
      ASSERT_EQ(fa, fb) << "seed " << seed << " slot " << k;

      if (fa.added_dl != 0) {
        ++dl_run;
        EXPECT_LE(dl_run, cfg.ul_guard_slots) << "seed " << seed << " slot " << k;
      } else {
        dl_run = 0;
      }

      const auto parsed = DecidedFormat::parse(fa.render());
      ASSERT_TRUE(parsed.has_value()) << fa.render();
      EXPECT_EQ(fa, *parsed);

      const SlotIndex target = k + cfg.guard_slots;
      const std::uint16_t bdl = a.base_dl_mask(target);
      const std::uint16_t bul = a.base_ul_mask(target);
      const SlotFormat sf = fa.to_slot_format(bdl, bul);
      overlay.commit(target, fa);
      for (int s = 0; s < kSymbolsPerSlot; ++s) {
        const bool base_d = (bdl >> s) & 1u;
        const bool base_u = (bul >> s) & 1u;
        // A base-DL-only symbol may gain UL (becoming Flexible) but can
        // never render Uplink-only; symmetrically for base-UL symbols.
        if (base_d) EXPECT_NE(sf.symbols[static_cast<std::size_t>(s)], SymbolKind::Uplink);
        if (base_u) EXPECT_NE(sf.symbols[static_cast<std::size_t>(s)], SymbolKind::Downlink);
        if (base_d) EXPECT_TRUE(overlay.dl_capable(target, s));
        if (base_u) EXPECT_TRUE(overlay.ul_capable(target, s));
      }
    }
    // Replaying the identical sequence on a fresh policy reproduces the
    // upgrade count: the decision is a pure function of the fed sequence.
    EXPECT_EQ(a.upgraded_slots(), b.upgraded_slots());
  }
}

}  // namespace
}  // namespace u5g
