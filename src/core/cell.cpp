#include "core/cell.hpp"

#include <algorithm>

#include "sim/runner.hpp"

namespace u5g {
namespace {
// Population RNG streams live beside — never inside — the cell's main
// stream: fork from cell_seed ^ salt so attaching a population cannot
// perturb a single tracked draw ("populate" in ASCII).
constexpr std::uint64_t kPopulationSalt = 0x706f'7075'6c61'7465ULL;
}  // namespace

std::uint64_t cell_seed(std::uint64_t root, int index) {
  return index == 0 ? root : replication_seed(root, static_cast<std::uint64_t>(index));
}

StackConfig per_cell_config(const StackConfig& base, int index) {
  StackConfig c = base;
  c.seed = cell_seed(base.seed, index);
  return c;
}

Cell::Cell(const StackConfig& base, int index)
    : index_(index),
      slot_(base.duplex ? base.duplex->numerology().slot_duration() : Nanos{1}),
      sys_(std::make_unique<E2eSystem>(per_cell_config(base, index))) {
  if (base.population.background_ues > 0) {
    pop_ = std::make_unique<UePopulation>(
        base.population, slot_, splitmix64(cell_seed(base.seed, index) ^ kPopulationSalt));
  }
}

void Cell::queue_uplink(Nanos at, int ue) { sys_->send_uplink_at(at, ue); }

void Cell::queue_downlink(Nanos at, int ue) { sys_->send_downlink_at(at, ue); }

void Cell::advance_to(Nanos to) {
  if (!pop_) {
    sys_->run_until(to);
    return;
  }
  // Slot k's population tick fires at the end of slot k, after the tracked
  // system has drained to the same instant. Ticks depend only on the
  // absolute slot index, so any partitioning of time into windows crosses
  // each boundary exactly once — window sizing cannot change results.
  while (tick_time(ticked_slots_) <= to) {
    const Nanos t = tick_time(ticked_slots_);
    sys_->run_until(t);
    pop_->tick(ticked_slots_++);
    apply_load();
  }
  sys_->run_until(to);
}

Nanos Cell::next_activity() const {
  const Nanos ev = sys_->simulator().next_event_time();
  return pop_ ? std::min(ev, tick_time(ticked_slots_)) : ev;
}

std::uint64_t Cell::inflight_packets() const {
  return sys_->packets_started() - sys_->packets_delivered();
}

std::uint64_t Cell::load_signal() const {
  return inflight_packets() + (pop_ ? pop_->queued_packets() : 0);
}

void Cell::set_neighbor_load(double equivalent_ues) {
  neighbor_load_ = equivalent_ues;
  apply_load();
}

double Cell::dl_upgrade_activity() const { return sys_->dl_upgrade_activity(); }

void Cell::set_crosslink(double aggregate_activity) {
  sys_->set_crosslink_dl_activity(aggregate_activity);
}

void Cell::apply_load() {
  sys_->set_external_load_ues(neighbor_load_ + (pop_ ? pop_->load_ues() : 0.0));
}

}  // namespace u5g
