// Coexistence study: URLLC alongside eMBB — the research-context experiment.
// §1: "many research papers assume the availability of URLLC and focus on
// the coexistence of it alongside other services, e.g., enhanced Mobile
// Broadband" [11, 23, 26, 30, 39, 48, 57]. This bench implements the two
// canonical downlink policies over our slot machinery and measures both
// sides of the trade:
//
//   * slot-level queueing: URLLC waits for the first DL slot that is not
//     already committed to eMBB (the scheduler commits one slot ahead);
//   * mini-slot preemption (Rel-15 downlink preemption indication): URLLC
//     punctures the ongoing eMBB transport block at 2-symbol granularity;
//     the punctured eMBB TB is lost and retransmitted.
//
// Outputs: URLLC latency (mean/p99) and eMBB goodput fraction, vs URLLC load.

#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "phy/frame_structure.hpp"
#include "phy/numerology.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr Numerology kNum = kMu1;  // 0.5 ms slots, eMBB-style carrier
constexpr int kPackets = 20'000;

struct Outcome {
  double urllc_mean_us;
  double urllc_p99_us;
  double embb_goodput_frac;  ///< fraction of slot capacity delivering eMBB bits
};

/// All DL slots carry eMBB; URLLC packets arrive Poisson at `rate_pps`.
Outcome run(bool preemption, double rate_pps, std::uint64_t seed) {
  const SlotClock clk{kNum};
  const Nanos slot = clk.slot_duration();
  const Nanos mini = clk.symbol_duration() * 2;
  Rng rng(seed);

  SampleSet lat;
  // eMBB accounting: punctured symbols waste the whole TB (it fails CRC and
  // is retransmitted), so each preemption costs one slot of eMBB capacity;
  // under queueing, URLLC consumes whole slots instead.
  std::int64_t total_slots = 0;
  std::int64_t lost_embb_slots = 0;

  double t_s = 0.0;
  Nanos committed_until = Nanos::zero();  // queueing: slots already committed
  for (int i = 0; i < kPackets; ++i) {
    t_s += rng.exponential(1.0 / rate_pps);
    const Nanos arrival = from_us(t_s * 1e6);
    if (preemption) {
      // Next 2-symbol mini-slot boundary, puncture immediately.
      const Nanos start = align_up(arrival, mini);
      lat.add((start + mini - arrival).us());
      ++lost_embb_slots;  // the punctured eMBB TB retransmits
    } else {
      // First slot not yet committed to eMBB: the scheduler runs one slot
      // ahead, so the earliest steerable slot starts at the *second*
      // boundary after arrival — unless a previous URLLC packet already
      // claimed it.
      Nanos start = clk.next_slot_boundary(arrival) + slot;
      if (start < committed_until) start = committed_until;
      lat.add((start + slot - arrival).us());
      committed_until = start + slot;
      ++lost_embb_slots;  // that slot carries URLLC instead of eMBB
    }
  }
  const double horizon_slots = t_s * 1e9 / static_cast<double>(slot.count());
  total_slots = static_cast<std::int64_t>(horizon_slots);
  const double goodput = 1.0 - static_cast<double>(lost_embb_slots) /
                                   static_cast<double>(total_slots);
  return {lat.mean(), lat.quantile(0.99), goodput};
}

}  // namespace

int main() {
  std::printf("== URLLC/eMBB coexistence: slot-level queueing vs mini-slot preemption ==\n");
  std::printf("   (u1 carrier, 0.5 ms slots, eMBB saturating the downlink)\n\n");
  std::printf("   %12s | %21s | %21s | %19s\n", "", "URLLC queueing", "URLLC preemption",
              "eMBB goodput");
  std::printf("   %12s | %10s %10s | %10s %10s | %9s %9s\n", "load [pps]", "mean[us]",
              "p99[us]", "mean[us]", "p99[us]", "queue", "preempt");

  bool preempt_meets = true;
  bool queue_fails = false;
  bool goodput_cost_visible = false;
  for (double rate : {100.0, 400.0, 800.0, 1600.0}) {
    const Outcome q = run(false, rate, 600);
    const Outcome p = run(true, rate, 601);
    std::printf("   %12.0f | %10.1f %10.1f | %10.1f %10.1f | %8.1f%% %8.1f%%\n", rate,
                q.urllc_mean_us, q.urllc_p99_us, p.urllc_mean_us, p.urllc_p99_us,
                q.embb_goodput_frac * 100, p.embb_goodput_frac * 100);
    preempt_meets = preempt_meets && p.urllc_p99_us < 500.0;
    queue_fails = queue_fails || q.urllc_p99_us > 500.0;
    goodput_cost_visible =
        goodput_cost_visible || p.embb_goodput_frac < 0.95 || q.embb_goodput_frac < 0.95;
  }

  std::printf("\npreemption holds URLLC under the 0.5 ms deadline at every load; slot-level\n"
              "queueing cannot (the committed-slot pipeline alone costs ~2 slots = 1 ms);\n"
              "both pay eMBB goodput as URLLC load grows — the coexistence literature's\n"
              "trade, reproduced on this library's slot machinery.\n");
  const bool ok = preempt_meets && queue_fails && goodput_cost_visible;
  std::printf("shape: %s\n", ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
