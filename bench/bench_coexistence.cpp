// Coexistence study, rebuilt on the real stack: NR-U Listen-Before-Talk
// channel access (phy/lbt.hpp) in front of the §5 URLLC design, plus the
// original URLLC/eMBB scheduling-policy model with its slot accounting
// fixed.
//
// Section A — unlicensed access matrix (the tentpole): the same
// `StackConfig::urllc_design` uplink traffic runs licensed (LBT disabled),
// NR-U alone (LBT on, clear channel), and against two modeled Wi-Fi loads
// (moderate ~20% duty, heavy ~45%), each coexistence point with and without
// an enforced post-burst gap. Per scenario the bench reports the latency
// nines against the paper's 0.5 ms one-way deadline, the CAT4 gate's
// deferral/CW/collision counters, and an exact integer airtime split of the
// horizon: nru + wifi - overlap + idle == horizon, by construction and
// re-checked under --strict.
//
// Section B — the original abstract eMBB-sharing model (slot-level queueing
// vs mini-slot preemption), with the accounting bug fixed: the old code
// charged one lost eMBB slot per URLLC *arrival*, double-counting whenever
// two punctures landed in the same slot. Lost slots are now de-duplicated
// per slot index and the slot ledger must conserve
// (delivered + lost == total) under --strict.
//
// All JSON output is integer-only and fixed-layout (golden-diffable);
// `--smoke --strict` is the CI gate and the golden configuration.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/e2e_system.hpp"
#include "core/latency_model.hpp"
#include "phy/frame_structure.hpp"
#include "phy/numerology.hpp"

using namespace u5g;

namespace {

constexpr Nanos kTrafficStart{1'000'000};
constexpr Nanos kSpacing{500'000};       ///< UL inter-arrival pitch
constexpr Nanos kJitterWindow{250'000};  ///< deterministic arrival offset span
constexpr Nanos kDrainMargin{50'000'000};

// -- Section A: NR-U access matrix on the real stack -------------------------

LbtConfig nru(Nanos wifi_busy, Nanos wifi_idle, Nanos gap = Nanos{}) {
  LbtConfig l;
  l.enabled = true;
  l.wifi_busy_mean = wifi_busy;
  l.wifi_idle_mean = wifi_idle;
  l.tx_gap = gap;
  return l;
}

struct AccessRow {
  std::string scenario;
  std::int64_t tx_gap_ns = 0;
  std::int64_t offered = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;  ///< HARQ-exhausted + stranded + PDCP-discarded
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t within_deadline = 0;
  LbtGate::Stats lbt;
  std::int64_t wifi_busy_ns = 0;
  std::int64_t idle_ns = 0;  ///< horizon - nru - wifi + overlap
};

std::int64_t percentile(std::vector<std::int64_t>& sorted_ns, int pct) {
  if (sorted_ns.empty()) return 0;
  return sorted_ns[(sorted_ns.size() - 1) * static_cast<std::size_t>(pct) / 100];
}

/// One scenario: `packets` UL arrivals on the deterministic jittered grid
/// (zero packets = the Wi-Fi-alone rows, which only exercise the modeled
/// load process), run to a fixed horizon so airtime splits are comparable.
AccessRow run_access(std::string scenario, const LbtConfig& lbt, int packets,
                     std::uint64_t seed, Nanos horizon) {
  StackConfig cfg = StackConfig::urllc_design(seed);
  cfg.lbt = lbt;
  E2eSystem sys(cfg);
  for (int i = 0; i < packets; ++i) {
    const Nanos jitter{(static_cast<std::int64_t>(i) * 7919) % kJitterWindow.count()};
    sys.send_uplink_at(kTrafficStart + kSpacing * i + jitter);
  }
  sys.run_until(horizon);

  AccessRow row;
  row.scenario = std::move(scenario);
  row.tx_gap_ns = lbt.tx_gap.count();
  row.offered = packets;
  std::vector<std::int64_t> lat;
  for (const PacketRecord& r : sys.records()) {
    if (!r.ok) continue;
    ++row.delivered;
    lat.push_back(r.latency().count());
    if (r.latency() <= kUrllcOneWayDeadline) ++row.within_deadline;
  }
  std::sort(lat.begin(), lat.end());
  row.p50_ns = percentile(lat, 50);
  row.p99_ns = percentile(lat, 99);
  row.dropped = static_cast<std::int64_t>(sys.harq_dropped_tbs() + sys.stranded_drops() +
                                          sys.pdcp_discards());
  row.lbt = sys.lbt_stats();
  row.wifi_busy_ns = sys.wifi_busy_until(horizon).count();
  row.idle_ns = horizon.count() - row.lbt.nru_airtime.count() - row.wifi_busy_ns +
                row.lbt.wifi_overlap.count();
  return row;
}

// -- Section B: abstract URLLC/eMBB sharing model (accounting fixed) ---------

struct EmbbRow {
  const char* policy;
  int rate_pps;
  std::int64_t packets = 0;
  std::int64_t total_slots = 0;
  std::int64_t lost_slots = 0;       ///< de-duplicated per slot
  std::int64_t urllc_p99_ns = 0;
  std::int64_t urllc_mean_ns = 0;
};

/// All DL slots carry eMBB; URLLC packets arrive Poisson at `rate_pps`.
EmbbRow run_embb(bool preemption, int rate_pps, std::uint64_t seed, int packets) {
  const SlotClock clk{kMu1};
  const Nanos slot = clk.slot_duration();
  const Nanos mini = clk.symbol_duration() * 2;
  Rng rng(seed);

  std::vector<std::int64_t> lat;
  lat.reserve(static_cast<std::size_t>(packets));
  std::int64_t lost = 0;
  std::int64_t last_lost_slot = -1;   // preemption: de-duplicate per slot
  Nanos committed_until{};            // queueing: slots already committed
  Nanos used_until{};
  double t_s = 0.0;
  for (int i = 0; i < packets; ++i) {
    // Rng::exponential takes the MEAN, so a Poisson process at `rate_pps`
    // packets/second passes 1/rate seconds of mean inter-arrival.
    t_s += rng.exponential(1.0 / rate_pps);
    const Nanos arrival = from_us(t_s * 1e6);
    if (preemption) {
      // Next 2-symbol mini-slot boundary (an on-boundary arrival punctures
      // immediately: align_up returns its argument on exact boundaries).
      const Nanos start = align_up(arrival, mini);
      lat.push_back((start + mini - arrival).count());
      // The punctured eMBB TB retransmits — but a slot is lost ONCE no
      // matter how many URLLC arrivals puncture it (the pre-fix code
      // charged one slot per arrival, double-counting collisions).
      const std::int64_t slot_idx = start.count() / slot.count();
      if (slot_idx != last_lost_slot) {
        ++lost;
        last_lost_slot = slot_idx;
      }
      used_until = std::max(used_until, start + mini);
    } else {
      // First slot not yet committed to eMBB: the scheduler runs one slot
      // ahead, so the earliest steerable slot starts at the *second*
      // boundary after arrival — unless a previous URLLC packet already
      // claimed it. Claimed windows never overlap, so each claim costs
      // exactly one distinct slot.
      Nanos start = clk.next_slot_boundary(arrival) + slot;
      if (start < committed_until) start = committed_until;
      lat.push_back((start + slot - arrival).count());
      committed_until = start + slot;
      ++lost;
      used_until = std::max(used_until, committed_until);
    }
  }

  EmbbRow row;
  row.policy = preemption ? "preemption" : "queueing";
  row.rate_pps = rate_pps;
  row.packets = packets;
  const Nanos horizon = std::max(from_us(t_s * 1e6), used_until);
  row.total_slots = (horizon.count() + slot.count() - 1) / slot.count();
  row.lost_slots = lost;
  std::int64_t sum = 0;
  for (std::int64_t v : lat) sum += v;
  row.urllc_mean_ns = sum / static_cast<std::int64_t>(lat.size());
  std::sort(lat.begin(), lat.end());
  row.urllc_p99_ns = percentile(lat, 99);
  return row;
}

// -- Output ------------------------------------------------------------------

bool write_json(const std::string& path, Nanos horizon, int packets,
                const std::vector<AccessRow>& access, const std::vector<EmbbRow>& embb) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"bench\": \"coexistence\",\n  \"deadline_ns\": %lld,\n",
               static_cast<long long>(kUrllcOneWayDeadline.count()));
  std::fprintf(f, "  \"horizon_ns\": %lld,\n  \"packets\": %d,\n",
               static_cast<long long>(horizon.count()), packets);
  std::fprintf(f, "  \"access\": [\n");
  for (std::size_t i = 0; i < access.size(); ++i) {
    const AccessRow& r = access[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"tx_gap_ns\": %lld, \"offered\": %lld, "
                 "\"delivered\": %lld, \"dropped\": %lld, \"p50_ns\": %lld, \"p99_ns\": %lld, "
                 "\"within_deadline\": %lld,\n"
                 "     \"lbt_attempts\": %llu, \"lbt_deferred\": %llu, "
                 "\"lbt_deferral_total_ns\": %lld, \"cw_doublings\": %llu, "
                 "\"hidden_collisions\": %llu,\n"
                 "     \"airtime_nru_ns\": %lld, \"airtime_wifi_ns\": %lld, "
                 "\"airtime_overlap_ns\": %lld, \"airtime_idle_ns\": %lld}%s\n",
                 r.scenario.c_str(), static_cast<long long>(r.tx_gap_ns),
                 static_cast<long long>(r.offered), static_cast<long long>(r.delivered),
                 static_cast<long long>(r.dropped), static_cast<long long>(r.p50_ns),
                 static_cast<long long>(r.p99_ns), static_cast<long long>(r.within_deadline),
                 static_cast<unsigned long long>(r.lbt.attempts),
                 static_cast<unsigned long long>(r.lbt.deferred),
                 static_cast<long long>(r.lbt.deferral_total.count()),
                 static_cast<unsigned long long>(r.lbt.cw_doublings),
                 static_cast<unsigned long long>(r.lbt.hidden_collisions),
                 static_cast<long long>(r.lbt.nru_airtime.count()),
                 static_cast<long long>(r.wifi_busy_ns),
                 static_cast<long long>(r.lbt.wifi_overlap.count()),
                 static_cast<long long>(r.idle_ns), i + 1 < access.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"embb\": [\n");
  for (std::size_t i = 0; i < embb.size(); ++i) {
    const EmbbRow& r = embb[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"rate_pps\": %d, \"packets\": %lld, "
                 "\"total_slots\": %lld, \"lost_slots\": %lld, \"urllc_p99_ns\": %lld, "
                 "\"urllc_mean_ns\": %lld}%s\n",
                 r.policy, r.rate_pps, static_cast<long long>(r.packets),
                 static_cast<long long>(r.total_slots), static_cast<long long>(r.lost_slots),
                 static_cast<long long>(r.urllc_p99_ns), static_cast<long long>(r.urllc_mean_ns),
                 i + 1 < embb.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

double permille(std::int64_t part, std::int64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

const AccessRow& find_row(const std::vector<AccessRow>& rows, const char* name) {
  for (const AccessRow& r : rows) {
    if (r.scenario == name) return r;
  }
  std::fprintf(stderr, "bench_coexistence: missing scenario %s\n", name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv);
  const int packets = opt.packets > 0 ? opt.packets : (opt.smoke ? 240 : 1200);
  const int embb_packets = opt.smoke ? 5'000 : 20'000;
  const Nanos horizon = kTrafficStart + kSpacing * packets + kDrainMargin;

  std::printf("== NR-U coexistence: CAT4 LBT in front of the %s URLLC design ==\n",
              "u2 grant-free");
  std::printf("   (%d UL packets, fixed %lld ms horizon, 0.5 ms one-way deadline)\n\n", packets,
              static_cast<long long>(horizon.count() / 1'000'000));

  const Nanos gap{25'000};
  const LbtConfig moderate = nru(Nanos{60'000}, Nanos{240'000});
  const LbtConfig heavy = nru(Nanos{90'000}, Nanos{110'000});
  struct Scenario {
    const char* name;
    LbtConfig lbt;
    bool traffic;
  };
  const Scenario scenarios[] = {
      {"licensed", LbtConfig{}, true},
      {"nru_alone", nru(Nanos{}, Nanos{1'000'000}), true},
      {"coex_moderate", moderate, true},
      {"coex_heavy", heavy, true},
      {"coex_moderate_gap", nru(Nanos{60'000}, Nanos{240'000}, gap), true},
      {"coex_heavy_gap", nru(Nanos{90'000}, Nanos{110'000}, gap), true},
      {"wifi_alone_moderate", moderate, false},
      {"wifi_alone_heavy", heavy, false},
  };

  std::vector<AccessRow> access;
  for (const Scenario& s : scenarios) {
    access.push_back(run_access(s.name, s.lbt, s.traffic ? packets : 0, opt.seed, horizon));
  }

  std::printf("   %-20s | %9s %9s %9s | %9s %11s | %6s %6s %6s\n", "scenario", "delivered",
              "p99[us]", "<=ddl", "defer[us]", "collisions", "NR-U%", "WiFi%", "idle%");
  for (const AccessRow& r : access) {
    std::printf("   %-20s | %9lld %9lld %9lld | %9lld %11llu | %5.1f%% %5.1f%% %5.1f%%\n",
                r.scenario.c_str(), static_cast<long long>(r.delivered),
                static_cast<long long>(r.p99_ns / 1'000),
                static_cast<long long>(r.within_deadline),
                static_cast<long long>(r.lbt.deferral_total.count() / 1'000),
                static_cast<unsigned long long>(r.lbt.hidden_collisions),
                permille(r.lbt.nru_airtime.count(), horizon.count()),
                permille(r.wifi_busy_ns, horizon.count()),
                permille(r.idle_ns, horizon.count()));
  }

  std::printf("\n== URLLC/eMBB sharing (abstract model, de-duplicated slot ledger) ==\n");
  std::printf("   %10s | %21s | %21s | %9s %9s\n", "load [pps]", "queueing p99/mean [us]",
              "preemption p99/mean[us]", "q-lost", "p-lost");
  std::vector<EmbbRow> embb;
  for (int rate : {100, 400, 800, 1600}) {
    const EmbbRow q = run_embb(/*preemption=*/false, rate, opt.seed ^ 600, embb_packets);
    const EmbbRow p = run_embb(/*preemption=*/true, rate, opt.seed ^ 601, embb_packets);
    std::printf("   %10d | %10lld %10lld | %10lld %10lld | %9lld %9lld\n", rate,
                static_cast<long long>(q.urllc_p99_ns / 1'000),
                static_cast<long long>(q.urllc_mean_ns / 1'000),
                static_cast<long long>(p.urllc_p99_ns / 1'000),
                static_cast<long long>(p.urllc_mean_ns / 1'000),
                static_cast<long long>(q.lost_slots), static_cast<long long>(p.lost_slots));
    embb.push_back(q);
    embb.push_back(p);
  }

  bool ok = true;
  const auto fail = [&ok](const char* msg) {
    std::fprintf(stderr, "STRICT: %s\n", msg);
    ok = false;
  };
  if (opt.strict) {
    // Airtime tiling: the horizon splits exactly into NR-U, Wi-Fi, their
    // overlap (counted once) and idle — an integer identity, no rounding.
    for (const AccessRow& r : access) {
      const std::int64_t total = r.lbt.nru_airtime.count() + r.wifi_busy_ns -
                                 r.lbt.wifi_overlap.count() + r.idle_ns;
      if (total != horizon.count()) fail("airtime fractions do not sum to the horizon");
      if (r.idle_ns < 0) fail("negative idle airtime");
      if (r.lbt.wifi_overlap.count() > r.lbt.nru_airtime.count() ||
          r.lbt.wifi_overlap > Nanos{r.wifi_busy_ns}) {
        fail("overlap exceeds one of its components");
      }
      // Loss conservation through the new loss source: every offered packet
      // is delivered or explicitly dropped, never silently lost.
      if (r.delivered + r.dropped != r.offered) fail("offered != delivered + dropped");
    }
    const AccessRow& licensed = find_row(access, "licensed");
    const AccessRow& alone = find_row(access, "nru_alone");
    const AccessRow& heavy_row = find_row(access, "coex_heavy");
    if (licensed.lbt.attempts != 0 || licensed.lbt.deferral_total != Nanos{}) {
      fail("disabled LBT consulted the gate");
    }
    if (alone.lbt.attempts == 0 || alone.lbt.deferred != alone.lbt.attempts) {
      fail("NR-U alone: every access should pay at least the initial defer");
    }
    if (licensed.p99_ns >= alone.p99_ns) fail("LBT deferral did not show up in the nines");
    if (alone.p99_ns >= heavy_row.p99_ns) {
      fail("NR-U alone p99 should beat heavy-coexistence p99");
    }
    if (heavy_row.lbt.hidden_collisions == 0) {
      fail("heavy coexistence produced no hidden (below-ED) collisions");
    }
    if (heavy_row.lbt.deferral_total <= alone.lbt.deferral_total) {
      fail("heavy coexistence should defer more than a clear channel");
    }
    // The modeled Wi-Fi load is exogenous: the same seed draws the same
    // renewal process no matter what NR-U does on the channel.
    for (const char* base : {"coex_moderate", "coex_heavy"}) {
      const AccessRow& c = find_row(access, base);
      const AccessRow& g = find_row(access, (std::string(base) + "_gap").c_str());
      const AccessRow& w =
          find_row(access, (std::string("wifi_alone_") + (base + 5)).c_str());
      if (c.wifi_busy_ns != g.wifi_busy_ns || c.wifi_busy_ns != w.wifi_busy_ns) {
        fail("Wi-Fi load process is not exogenous across scenarios");
      }
    }
    // Section B: slot-ledger conservation and the policy shape.
    for (const EmbbRow& r : embb) {
      if (r.lost_slots < 0 || r.lost_slots > r.total_slots) {
        fail("eMBB slot ledger does not conserve (lost > total)");
      }
      const bool preempt = std::string(r.policy) == "preemption";
      if (preempt && r.urllc_p99_ns >= kUrllcOneWayDeadline.count()) {
        fail("preemption missed the URLLC deadline");
      }
      if (!preempt && r.urllc_p99_ns <= kUrllcOneWayDeadline.count()) {
        fail("slot-level queueing unexpectedly met the URLLC deadline");
      }
    }
    // De-duplication must actually bite at high load: with ~0.8 arrivals
    // per slot, same-slot punctures are certain at this sample size.
    const EmbbRow& p1600 = embb.back();
    if (p1600.lost_slots >= p1600.packets) {
      fail("per-slot de-duplication never collapsed a same-slot puncture");
    }
  }

  if (opt.json && !write_json(*opt.json, horizon, packets, access, embb)) {
    std::fprintf(stderr, "bench_coexistence: cannot write %s\n", opt.json->c_str());
    return 1;
  }
  std::printf("\n%s\n", ok ? "coexistence gates: OK" : "coexistence gates: FAILED");
  return ok ? 0 : 1;
}
