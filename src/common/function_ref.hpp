#pragma once
// Non-owning callable reference for synchronous callbacks.
//
// Layer entities (PDCP/RLC/SDAP) hand SDUs upward via a delivery callback
// that is invoked before the call returns. `std::function` is the wrong tool
// there: typical lambdas capture `this` plus a couple of locals (24+ bytes),
// which overflows libstdc++'s 16-byte small-object buffer and heap-allocates
// on every single packet. `FunctionRef` stores two words — a pointer to the
// caller's callable and a thunk — so passing a callback is always free.
//
// Lifetime rule: a FunctionRef never outlives the callable it refers to.
// Use it only for call-and-return parameters, never for stored callbacks
// (the simulator's `Action` owns its callables for that case).

#include <type_traits>
#include <utility>

namespace u5g {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by-value callback parameter
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        thunk_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return thunk_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*thunk_)(void*, Args...);
};

}  // namespace u5g
