#include "core/stack_config.hpp"

#include "tdd/common_config.hpp"

namespace u5g {

namespace {

StackConfig testbed_base(std::uint64_t seed) {
  StackConfig c;
  c.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dddu(kMu1));
  c.sr = SrConfig::per_slot(kMu1);
  c.cg = ConfiguredGrantConfig::periodic(kMu1.slot_duration(), 256, 4);
  c.sched.radio_lead = kMu1.slot_duration();  // §7: delay one slot for the RH
  c.sched.margin = Nanos{100'000};
  c.sched.ue_min_prep = Nanos{300'000};
  c.sched.ul_tx_symbols = 4;
  c.sched.ul_tb_bytes = 256;
  c.gnb_radio = RadioHeadParams::usrp_b210_usb2();
  c.ue_radio = RadioHeadParams::pcie_sdr();
  c.harq_feedback_delay = kMu1.slot_duration();
  c.seed = seed;
  return c;
}

}  // namespace

StackConfig StackConfig::testbed_grant_based(std::uint64_t seed) {
  StackConfig c = testbed_base(seed);
  c.grant_free = false;
  return c;
}

StackConfig StackConfig::testbed_grant_free(std::uint64_t seed) {
  StackConfig c = testbed_base(seed);
  c.grant_free = true;
  return c;
}

namespace {

void append(CanonicalWords& w, Nanos t) { w.add_signed(t.count()); }

void append(CanonicalWords& w, const LayerTime& t) {
  w.add_double(t.mean_us);
  w.add_double(t.std_us);
}

void append(CanonicalWords& w, const ProcessingProfile& p) {
  for (const LayerTime* t : {&p.sdap, &p.pdcp, &p.rlc, &p.mac, &p.phy, &p.app}) append(w, *t);
  w.add_double(p.scale);
}

void append(CanonicalWords& w, const JitterParams& j) {
  append(w, j.noise_mean);
  append(w, j.noise_std);
  w.add_double(j.spike_prob);
  append(w, j.spike_mean);
  append(w, j.spike_cap);
}

void append(CanonicalWords& w, const RadioHeadParams& r) {
  w.add_string(r.bus.name);
  append(w, r.bus.base_overhead);
  append(w, r.bus.per_sample);
  append(w, r.bus.jitter);
  w.add_signed(r.sample_rate.samples_per_second);
  w.add_signed(r.sample_rate.bytes_per_sample);
  append(w, r.dac_adc_latency);
  append(w, r.rx_chain_latency);
  append(w, r.rx_base);
}

void append(CanonicalWords& w, const FaultScenario& s) {
  w.add_signed(static_cast<int>(s.kind));
  append(w, s.window.start);
  append(w, s.window.duration);
  append(w, s.window.period);
  w.add_double(s.ge.p_good_loss);
  w.add_double(s.ge.p_bad_loss);
  w.add_double(s.ge.p_good_to_bad);
  w.add_double(s.ge.p_bad_to_good);
  append(w, s.storm);
  append(w, s.bus_stall);
  w.add_double(s.upf_drop_prob);
  append(w, s.upf_extra_delay);
}

}  // namespace

void StackConfig::append_canonical_words(CanonicalWords& w) const {
  // Field order is the identity contract: append-only, never reorder —
  // a stored canonical_key stays comparable across builds that do not add
  // knobs. New fields go at the end.
  w.add_bool(duplex != nullptr);
  if (duplex) duplex->append_value_words(w);
  w.add_bool(grant_free);
  append(w, sr.periodicity);
  w.add_signed(sr.sr_symbols);
  w.add_signed(sr.max_transmissions);
  append(w, cg.periodicity);
  w.add_signed(cg.tx_symbols);
  w.add(cg.tb_bytes);
  append(w, cg.offset);
  append(w, sched.radio_lead);
  append(w, sched.margin);
  append(w, sched.ue_min_prep);
  w.add_signed(sched.ul_tx_symbols);
  w.add(sched.ul_tb_bytes);
  w.add_signed(sched.dl_prbs);
  w.add_signed(sched.dl_mcs_index);
  w.add_signed(num_ues);
  w.add_double(gnb_load_factor_per_ue);
  w.add_signed(num_cells);
  w.add_double(intercell_load_coupling);
  w.add_signed(population.background_ues);
  append(w, population.mean_interarrival);
  w.add_bool(population.periodic);
  w.add_bool(population.aggregate);
  w.add_double(population.loss);
  w.add_signed(population.harq_max_tx);
  w.add_signed(population.grants_per_slot);
  w.add_signed(population.queue_capacity);
  w.add_double(population.load_factor);
  append(w, gnb_proc);
  append(w, ue_proc);
  append(w, gnb_radio);
  append(w, ue_radio);
  append(w, phy.encode_base);
  append(w, phy.encode_per_cb);
  append(w, phy.decode_base);
  append(w, phy.decode_per_cb);
  w.add_signed(phy.decode_harq_extra_pct);
  append(w, upf.forwarding_latency);
  append(w, upf.backhaul_latency);
  w.add_double(upf.embb_load);
  append(w, upf.embb_queue_mean);
  w.add_signed(static_cast<int>(rlc_mode));
  w.add_double(channel_loss);
  append(w, pdcp_t_reordering);
  w.add_bool(blockage.has_value());
  if (blockage) {
    append(w, blockage->mean_los);
    append(w, blockage->mean_blocked);
    w.add_double(blockage->blocked_loss_prob);
  }
  append(w, harq_feedback_delay);
  w.add_signed(harq_max_tx);
  w.add(payload_bytes);
  w.add(dl_tb_slack);
  w.add(seed);
  w.add(faults.size());
  for (const FaultScenario& s : faults) append(w, s);
  w.add_bool(trace.enabled);
  w.add_bool(trace.spans);
  w.add_bool(trace.metrics);
  w.add_bool(dynamic_tdd.enabled);
  w.add_signed(dynamic_tdd.guard_slots);
  w.add_signed(dynamic_tdd.hold_slots);
  w.add_signed(dynamic_tdd.ul_guard_slots);
  w.add_bool(dynamic_tdd.preemption);
  w.add_double(dynamic_tdd.xlink_ul_bler);
  w.add_bool(lbt.enabled);
  w.add_signed(lbt.cw_min);
  w.add_signed(lbt.cw_max);
  append(w, lbt.defer);
  append(w, lbt.ed_slot);
  w.add_double(lbt.ed_threshold_dbm);
  w.add_double(lbt.wifi_energy_min_dbm);
  w.add_double(lbt.wifi_energy_max_dbm);
  w.add_double(lbt.hidden_collision_loss);
  w.add_double(lbt.nack_ratio_threshold);
  w.add_signed(lbt.min_feedback);
  append(w, lbt.wifi_busy_mean);
  append(w, lbt.wifi_idle_mean);
  append(w, lbt.tx_gap);
}

CanonicalWords StackConfig::canonical_words() const {
  CanonicalWords w;
  append_canonical_words(w);
  return w;
}

std::uint64_t StackConfig::canonical_key() const { return canonical_words().hash(); }

bool operator==(const StackConfig& a, const StackConfig& b) {
  return a.canonical_words() == b.canonical_words();
}

StackConfig StackConfig::urllc_design(std::uint64_t seed) {
  StackConfig c;
  c.duplex = std::make_shared<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  c.grant_free = true;
  c.cg = ConfiguredGrantConfig::every_symbol(256, 2);
  // The staging lead must cover PHY encode (incl. the Table 2 draw's tail),
  // the PCIe submission and the DAC chain — §4's interdependency, tuned.
  c.sched.radio_lead = Nanos{150'000};
  c.sched.margin = Nanos{50'000};
  c.sched.ue_min_prep = Nanos{100'000};
  c.sched.ul_tx_symbols = 2;
  c.sched.ul_tb_bytes = 256;
  c.gnb_radio = RadioHeadParams::pcie_sdr();
  c.gnb_radio.bus = c.gnb_radio.bus.with_rt_kernel();
  c.ue_radio = RadioHeadParams::pcie_sdr();
  c.ue_radio.bus = c.ue_radio.bus.with_rt_kernel();
  c.gnb_proc = ProcessingProfile::gnb_i7();
  c.ue_proc = ProcessingProfile::gnb_i7();  // software UE, not a modem black box
  c.harq_feedback_delay = kMu2.slot_duration();
  c.seed = seed;
  return c;
}

}  // namespace u5g
