#include "core/multi_ue_model.hpp"

#include "serve/feasibility_service.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

double ul_windows_per_second(const DuplexConfig& cfg, int tx_symbols) {
  // Walk one period, packing windows back-to-back greedily (exactly what the
  // scheduler's serialisation achieves).
  const Nanos period = cfg.period();
  const Nanos base = period * 4;  // stay clear of t=0 edge effects
  int count = 0;
  Nanos t = base;
  while (true) {
    const auto w = next_ul_tx(cfg, t, tx_symbols, period * 2);
    if (!w || w->start >= base + period) break;
    ++count;
    t = w->end;
  }
  return count * (1e9 / static_cast<double>(period.count()));
}

MultiUeModelResult predict_multi_ue_latency(const DuplexConfig& cfg,
                                            const MultiUeModelInput& in) {
  MultiUeModelResult r;
  r.capacity_windows_per_s = ul_windows_per_second(cfg, in.tx_symbols);

  LatencyModelParams p = in.params;
  p.data_tx_symbols = in.tx_symbols;
  const WorstCaseResult wc = FeasibilityService::shared().worst_case(cfg, in.mode, p);
  r.protocol_mean = wc.mean;

  const double lambda = in.num_ues * in.per_ue_packets_per_second;
  if (r.capacity_windows_per_s <= 0.0) {
    r.stable = false;
    return r;
  }
  r.utilisation = lambda / r.capacity_windows_per_s;
  if (r.utilisation >= 1.0) {
    r.stable = false;
    r.total_mean = Nanos::max();
    return r;
  }
  // M/D/1: Wq = rho / (2 mu (1 - rho)), mu in windows/second.
  const double wq_seconds =
      r.utilisation / (2.0 * r.capacity_windows_per_s * (1.0 - r.utilisation));
  r.queue_wait_mean = Nanos{static_cast<std::int64_t>(wq_seconds * 1e9)};
  r.total_mean = r.protocol_mean + r.queue_wait_mean;
  return r;
}

}  // namespace u5g
