// Tests of the analytic latency engine — the executable form of §5.
// These encode the paper's published numbers: every Table 1 verdict, the
// Fig 4 worst cases, and structural invariants of the timelines.

#include <gtest/gtest.h>

#include <memory>

#include "core/latency_model.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"
#include "tdd/slot_format.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

std::unique_ptr<DuplexConfig> make_config(const std::string& name) {
  if (name == "DU") return std::make_unique<TddCommonConfig>(TddCommonConfig::du(kMu2));
  if (name == "DM") return std::make_unique<TddCommonConfig>(TddCommonConfig::dm(kMu2));
  if (name == "MU") return std::make_unique<TddCommonConfig>(TddCommonConfig::mu(kMu2));
  if (name == "MiniSlot") return std::make_unique<MiniSlotConfig>(kMu2, 2);
  return std::make_unique<FddConfig>(kMu2);
}

// ---------------------------------------------------------------------------
// Table 1: all fifteen verdicts

struct Table1Case {
  const char* config;
  AccessMode mode;
  bool paper_meets;  // Table 1's checkmark
};

class Table1Test : public ::testing::TestWithParam<Table1Case> {};

TEST_P(Table1Test, VerdictMatchesPaper) {
  const auto& c = GetParam();
  const auto cfg = make_config(c.config);
  const WorstCaseResult wc = analyze_worst_case(*cfg, c.mode, {});
  ASSERT_TRUE(wc.feasible);
  EXPECT_EQ(wc.worst <= kUrllcOneWayDeadline, c.paper_meets)
      << c.config << " " << to_string(c.mode) << " worst=" << wc.worst.ms() << "ms";
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1Test,
    ::testing::Values(
        // Grant-based UL row: only Mini-slot and FDD meet the deadline.
        Table1Case{"DU", AccessMode::GrantBasedUl, false},
        Table1Case{"DM", AccessMode::GrantBasedUl, false},
        Table1Case{"MU", AccessMode::GrantBasedUl, false},
        Table1Case{"MiniSlot", AccessMode::GrantBasedUl, true},
        Table1Case{"FDD", AccessMode::GrantBasedUl, true},
        // Grant-free UL row: every configuration meets it.
        Table1Case{"DU", AccessMode::GrantFreeUl, true},
        Table1Case{"DM", AccessMode::GrantFreeUl, true},
        Table1Case{"MU", AccessMode::GrantFreeUl, true},
        Table1Case{"MiniSlot", AccessMode::GrantFreeUl, true},
        Table1Case{"FDD", AccessMode::GrantFreeUl, true},
        // DL row: DM, Mini-slot and FDD meet it; DU and MU do not.
        Table1Case{"DU", AccessMode::Downlink, false},
        Table1Case{"DM", AccessMode::Downlink, true},
        Table1Case{"MU", AccessMode::Downlink, false},
        Table1Case{"MiniSlot", AccessMode::Downlink, true},
        Table1Case{"FDD", AccessMode::Downlink, true}),
    [](const auto& info) {
      return std::string{info.param.config} + "_" +
             (info.param.mode == AccessMode::GrantBasedUl  ? "GrantBased"
              : info.param.mode == AccessMode::GrantFreeUl ? "GrantFree"
                                                           : "Downlink");
    });

// ---------------------------------------------------------------------------
// Fig 4: the DM worst cases

TEST(Fig4Test, DmDownlinkWorstIsExactlyHalfMs) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto wc = analyze_worst_case(dm, AccessMode::Downlink, {});
  // "the worst-case latency of 0.5 ms is achieved": arrival just after the
  // M slot starts -> served in the next D slot, completing one period later.
  EXPECT_NEAR(wc.worst.ms(), 0.5, 0.001);
  EXPECT_LE(wc.worst, kUrllcOneWayDeadline);
}

TEST(Fig4Test, DmGrantFreeMeetsWithHeadroom) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto wc = analyze_worst_case(dm, AccessMode::GrantFreeUl, {});
  EXPECT_LE(wc.worst, kUrllcOneWayDeadline);
  EXPECT_GT(wc.worst, 300_us);  // waiting through D + guard is real
}

TEST(Fig4Test, DmGrantBasedCrossesIntoNextPeriod) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto wc = analyze_worst_case(dm, AccessMode::GrantBasedUl, {});
  // The SR/grant handshake pushes the data into the next TDD period: the
  // worst case lands between 1.5x and 2x the period.
  EXPECT_GT(wc.worst, 750_us);
  EXPECT_LT(wc.worst, 1_ms);
}

TEST(Fig4Test, WorstCaseArrivalIsJustAfterAnOpportunity) {
  // The paper's rationale: the DL worst case arrives "just after a DL slot
  // starts". Verify the attaining offset for DM DL is just after the M slot
  // boundary (the last DL service opportunity of the period).
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto wc = analyze_worst_case(dm, AccessMode::Downlink, {});
  EXPECT_NEAR(wc.worst_arrival_offset.ms(), 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// Timeline invariants

class TimelineInvariantTest
    : public ::testing::TestWithParam<std::tuple<const char*, AccessMode>> {};

TEST_P(TimelineInvariantTest, StepsAreContiguousAndCategorised) {
  const auto [name, mode] = GetParam();
  const auto cfg = make_config(name);
  LatencyModelParams p;
  p.sender_processing = 20_us;
  p.receiver_processing = 30_us;
  p.radio_tx = 10_us;
  p.radio_rx = 15_us;
  p.grant_decode = 25_us;
  p.sr_decode = 12_us;

  for (Nanos offset : {Nanos{1}, Nanos{100'000}, Nanos{250'001}, Nanos{333'333}}) {
    const Timeline tl = trace_transmission(*cfg, mode, cfg->period() * 8 + offset, p);
    ASSERT_TRUE(tl.feasible);
    ASSERT_FALSE(tl.steps.empty());
    // Steps tile [arrival, completion] without gaps or overlaps.
    EXPECT_EQ(tl.steps.front().start, tl.arrival);
    EXPECT_EQ(tl.steps.back().end, tl.completion);
    for (std::size_t i = 1; i < tl.steps.size(); ++i) {
      EXPECT_EQ(tl.steps[i].start, tl.steps[i - 1].end) << "gap before step " << i;
    }
    // Category totals account for the full latency.
    const Nanos sum = tl.category_total(LatencyCategory::Protocol) +
                      tl.category_total(LatencyCategory::Processing) +
                      tl.category_total(LatencyCategory::Radio);
    EXPECT_EQ(sum, tl.latency());
    EXPECT_GE(tl.latency(), Nanos::zero());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsModes, TimelineInvariantTest,
    ::testing::Combine(::testing::Values("DU", "DM", "MU", "MiniSlot", "FDD"),
                       ::testing::Values(AccessMode::GrantBasedUl, AccessMode::GrantFreeUl,
                                         AccessMode::Downlink)));

TEST(TimelineTest, ProcessingShiftsCompletion) {
  const FddConfig fdd{kMu2};
  LatencyModelParams base;
  LatencyModelParams slow = base;
  slow.receiver_processing = 100_us;
  const Nanos at = fdd.period() * 8 + 1_ns;
  const Timeline t0 = trace_transmission(fdd, AccessMode::Downlink, at, base);
  const Timeline t1 = trace_transmission(fdd, AccessMode::Downlink, at, slow);
  EXPECT_EQ(t1.latency() - t0.latency(), 100_us);
}

TEST(TimelineTest, RadioLatencyCostIsQuantisedToSlots) {
  // §4's bottleneck interdependency: radio latency does not add smoothly —
  // it pushes readiness past granule boundaries, so its cost arrives in
  // whole-slot quanta. From an arrival just after a slot start:
  //   10 µs of radio  -> same slot still caught: zero added latency;
  //   260 µs (> slot) -> one boundary crossed: exactly one slot added;
  //   510 µs          -> two boundaries crossed: exactly two slots added.
  const FddConfig fdd{kMu2};
  const Nanos at = fdd.period() * 8 + 1_ns;
  auto completion_with_radio = [&](Nanos radio) {
    LatencyModelParams p;
    p.radio_tx = radio;
    return trace_transmission(fdd, AccessMode::Downlink, at, p).completion;
  };
  const Nanos base = completion_with_radio(0_ns);
  EXPECT_EQ(completion_with_radio(10_us) - base, Nanos::zero());
  EXPECT_EQ(completion_with_radio(260_us) - base, 250_us);
  EXPECT_EQ(completion_with_radio(510_us) - base, 500_us);
}

TEST(TimelineTest, GrantBasedContainsHandshakeSteps) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Timeline tl =
      trace_transmission(dm, AccessMode::GrantBasedUl, dm.period() * 8 + 1_ns, {});
  const std::string rendered = tl.render();
  EXPECT_NE(rendered.find("SR over the air"), std::string::npos);
  EXPECT_NE(rendered.find("UL grant over the air"), std::string::npos);
  EXPECT_NE(rendered.find("UL data over the air"), std::string::npos);
}

TEST(TimelineTest, InfeasibleConfigReported) {
  const SlotFormatConfig all_dl{kMu2, {0}};
  const Timeline tl = trace_transmission(all_dl, AccessMode::GrantFreeUl, 1_ns, {});
  EXPECT_FALSE(tl.feasible);
}

// ---------------------------------------------------------------------------
// Worst-case sweep structure

class WorstCaseStructureTest
    : public ::testing::TestWithParam<std::tuple<const char*, AccessMode>> {};

TEST_P(WorstCaseStructureTest, BestLeMeanLeWorst) {
  const auto [name, mode] = GetParam();
  const auto cfg = make_config(name);
  const auto wc = analyze_worst_case(*cfg, mode, {});
  ASSERT_TRUE(wc.feasible);
  EXPECT_LE(wc.best, wc.mean);
  EXPECT_LE(wc.mean, wc.worst);
  EXPECT_GT(wc.best, Nanos::zero());
  // The reported worst offset really attains the reported worst.
  const Timeline tl =
      trace_transmission(*cfg, mode, cfg->period() * 8 + wc.worst_arrival_offset, {});
  EXPECT_EQ(tl.latency(), wc.worst);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsModes, WorstCaseStructureTest,
    ::testing::Combine(::testing::Values("DU", "DM", "MU", "MiniSlot", "FDD"),
                       ::testing::Values(AccessMode::GrantBasedUl, AccessMode::GrantFreeUl,
                                         AccessMode::Downlink)));

TEST(WorstCaseTest, PeriodShiftInvariance) {
  // The sweep is anchored periods away from zero; shifting the arrival by
  // whole periods must not change the latency (stationarity).
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  for (Nanos offset : {Nanos{1}, Nanos{123'456}, Nanos{250'001}}) {
    const Timeline a =
        trace_transmission(dm, AccessMode::GrantFreeUl, dm.period() * 8 + offset, {});
    const Timeline b =
        trace_transmission(dm, AccessMode::GrantFreeUl, dm.period() * 11 + offset, {});
    EXPECT_EQ(a.latency(), b.latency()) << offset.count();
  }
}

TEST(WorstCaseTest, LongerDataTransmissionsRaiseLatency) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  LatencyModelParams one;
  one.data_tx_symbols = 1;
  LatencyModelParams four;
  four.data_tx_symbols = 4;
  EXPECT_LT(analyze_worst_case(dm, AccessMode::GrantFreeUl, one).worst,
            analyze_worst_case(dm, AccessMode::GrantFreeUl, four).worst);
}

}  // namespace
}  // namespace u5g
