#pragma once
// Frame/slot/symbol clock: bidirectional mapping between the simulated time
// axis and NR frame structure indices (SFN, slot-in-frame, symbol-in-slot).

#include <cstdint>

#include "common/time.hpp"
#include "phy/numerology.hpp"

namespace u5g {

/// Absolute slot index since the simulation epoch (slot 0 starts at t=0).
using SlotIndex = std::int64_t;

/// Position within the NR frame structure.
struct FramePosition {
  std::int64_t sfn = 0;     ///< system frame number (not wrapped: analysis clock)
  int slot_in_frame = 0;    ///< [0, slots_per_frame)
  int symbol = 0;           ///< [0, 14)
  friend constexpr bool operator==(const FramePosition&, const FramePosition&) = default;
};

/// Pure arithmetic over one numerology's grid. All results are exact
/// (integer ns); `slot_duration` divides 1 ms for every µ.
class SlotClock {
 public:
  constexpr explicit SlotClock(Numerology num) : num_(num) {}

  [[nodiscard]] constexpr Numerology numerology() const { return num_; }
  [[nodiscard]] constexpr Nanos slot_duration() const { return num_.slot_duration(); }
  [[nodiscard]] constexpr Nanos symbol_duration() const { return num_.symbol_duration(); }

  /// Slot containing time `t` (floor).
  [[nodiscard]] constexpr SlotIndex slot_at(Nanos t) const {
    const std::int64_t d = slot_duration().count();
    std::int64_t k = t.count() / d;
    if (k * d > t.count()) --k;
    return k;
  }

  [[nodiscard]] constexpr Nanos slot_start(SlotIndex s) const {
    return Nanos{s * slot_duration().count()};
  }
  [[nodiscard]] constexpr Nanos slot_end(SlotIndex s) const { return slot_start(s + 1); }

  /// Start of symbol `sym` (0-based) within slot `s`. The nominal grid places
  /// symbol k at k/14 of the slot; remainder nanoseconds accrue to the last
  /// symbol (documented simplification, < 1 µs at any µ).
  [[nodiscard]] constexpr Nanos symbol_start(SlotIndex s, int sym) const {
    return slot_start(s) + Nanos{sym * symbol_duration().count()};
  }

  /// First slot boundary at or after `t`.
  [[nodiscard]] constexpr Nanos next_slot_boundary(Nanos t) const {
    return align_up(t, slot_duration());
  }

  /// Symbol index within the slot containing `t`, clamped to [0, 13].
  [[nodiscard]] constexpr int symbol_at(Nanos t) const {
    const Nanos in_slot = t - slot_start(slot_at(t));
    const int sym = static_cast<int>(in_slot / symbol_duration());
    return sym > kSymbolsPerSlot - 1 ? kSymbolsPerSlot - 1 : sym;
  }

  [[nodiscard]] constexpr FramePosition position_at(Nanos t) const {
    const SlotIndex s = slot_at(t);
    const int spf = num_.slots_per_frame();
    std::int64_t sfn = s / spf;
    std::int64_t sif = s % spf;
    if (sif < 0) { sif += spf; --sfn; }
    return FramePosition{sfn, static_cast<int>(sif), symbol_at(t)};
  }

 private:
  Numerology num_;
};

}  // namespace u5g
