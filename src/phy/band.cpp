#include "phy/band.hpp"

#include <array>

namespace u5g {

namespace {

constexpr std::array<Band, 10> kBands{{
    // FDD bands: only below 2.6 GHz (TS 38.101-1; paper §2).
    {"n1", 1920.0, 2170.0, DuplexMode::FDD, FrequencyRange::FR1},
    {"n3", 1710.0, 1880.0, DuplexMode::FDD, FrequencyRange::FR1},
    {"n7", 2500.0, 2690.0, DuplexMode::FDD, FrequencyRange::FR1},
    {"n28", 703.0, 803.0, DuplexMode::FDD, FrequencyRange::FR1},
    // TDD mid-band: the private-5G bands.
    {"n41", 2496.0, 2690.0, DuplexMode::TDD, FrequencyRange::FR1},
    {"n77", 3300.0, 4200.0, DuplexMode::TDD, FrequencyRange::FR1},
    {"n78", 3300.0, 3800.0, DuplexMode::TDD, FrequencyRange::FR1},
    {"n79", 4400.0, 5000.0, DuplexMode::TDD, FrequencyRange::FR1},
    // FR2 mmWave (paper §1: 15.625 µs slots possible, but unreliable).
    {"n257", 26500.0, 29500.0, DuplexMode::TDD, FrequencyRange::FR2},
    {"n258", 24250.0, 27500.0, DuplexMode::TDD, FrequencyRange::FR2},
}};

}  // namespace

std::span<const Band> known_bands() { return kBands; }

std::optional<Band> find_band(std::string_view name) {
  for (const Band& b : kBands) {
    if (b.name == name) return b;
  }
  return std::nullopt;
}

Band band_n78() { return *find_band("n78"); }

}  // namespace u5g
