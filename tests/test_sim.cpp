// Unit tests for the discrete-event kernel and the periodic process helper.

#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ns);
}

TEST(SimulatorTest, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(5_us, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  Nanos fired{-1};
  sim.schedule_at(100_ns, [&] {
    sim.schedule_after(50_ns, [&] { fired = sim.now(); });
  });
  sim.run_until();
  EXPECT_EQ(fired, 150_ns);
}

TEST(SimulatorTest, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(100_ns, [] {});
  sim.run_until();
  EXPECT_THROW(sim.schedule_at(50_ns, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilBoundsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_us, [&] { ++fired; });
  sim.schedule_at(30_us, [&] { ++fired; });
  sim.run_until(20_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_us);  // clock advanced to the bound
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(40_us);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactBoundFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(20_us, [&] { fired = true; });
  sim.run_until(20_us);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(10_ns, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double cancel is a no-op
  sim.run_until();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(1_ns, [] {});
  sim.run_until();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, CancelInvalidHandle) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(SimulatorTest, PendingAccounting) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  const auto h1 = sim.schedule_at(1_us, [] {});
  sim.schedule_at(2_us, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until();
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ns, [&] { ++fired; });
  sim.schedule_at(2_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, StepSkipsCancelled) {
  Simulator sim;
  int fired = 0;
  const auto h = sim.schedule_at(1_ns, [&] { ++fired; });
  sim.schedule_at(2_ns, [&] { ++fired; });
  sim.cancel(h);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 2_ns);
}

TEST(SimulatorTest, EventsScheduledDuringRunAreFired) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(1_us, chain);
  };
  sim.schedule_at(0_ns, chain);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 4_us);
}

// ---------------------------------------------------------------------------
// PeriodicProcess

TEST(PeriodicProcessTest, TicksAtPeriod) {
  Simulator sim;
  std::vector<Nanos> ticks;
  PeriodicProcess p(sim, 100_us, [&](Nanos now) { ticks.push_back(now); });
  sim.run_until(350_us);
  ASSERT_EQ(ticks.size(), 4u);  // 0, 100, 200, 300
  EXPECT_EQ(ticks[0], 0_us);
  EXPECT_EQ(ticks[3], 300_us);
  p.stop();
}

TEST(PeriodicProcessTest, PhaseOffset) {
  Simulator sim;
  std::vector<Nanos> ticks;
  PeriodicProcess p(sim, 100_us, [&](Nanos now) { ticks.push_back(now); }, 30_us);
  sim.run_until(250_us);
  ASSERT_GE(ticks.size(), 2u);
  EXPECT_EQ(ticks[0], 30_us);
  EXPECT_EQ(ticks[1], 130_us);
  p.stop();
}

TEST(PeriodicProcessTest, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 10_us, [&](Nanos) { ++count; });
  sim.run_until(25_us);
  p.stop();
  sim.run_until(100_us);
  EXPECT_EQ(count, 3);  // 0, 10, 20
}

TEST(PeriodicProcessTest, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess p(sim, 10_us, [&](Nanos) { ++count; });
    sim.run_until(15_us);
  }
  sim.run_until(100_us);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicProcessTest, StartedLateAlignsToGrid) {
  Simulator sim;
  sim.schedule_at(105_us, [] {});
  sim.run_until();
  std::vector<Nanos> ticks;
  PeriodicProcess p(sim, 100_us, [&](Nanos now) { ticks.push_back(now); }, 0_us);
  sim.run_until(350_us);
  ASSERT_GE(ticks.size(), 1u);
  EXPECT_EQ(ticks[0], 200_us);  // next multiple of 100 after now=105
  p.stop();
}

TEST(PeriodicProcessTest, InvalidPeriodThrows) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0_ns, [](Nanos) {}), std::invalid_argument);
}

}  // namespace
}  // namespace u5g
