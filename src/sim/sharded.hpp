#pragma once
// Conservative parallel discrete-event engine: N cells as independent shards.
//
// The paper models one gNB and one UE; ROADMAP's north star is a
// production-scale simulator. PR 1 parallelised *across* Monte-Carlo
// replications — this engine parallelises *within* one scenario by running
// `StackConfig::num_cells` complete cells (core/cell.hpp) concurrently on
// the PR-1 ThreadPool.
//
// Synchronisation model (classic conservative lookahead):
//   * Cross-cell effects are slot-aligned, so the lookahead — the horizon a
//     shard may simulate without seeing new cross-shard input — is one slot.
//     run_until() executes slot-sized windows: fan every cell's
//     `advance_to(window_end)` across the pool, `wait_idle()` as the
//     barrier, then exchange cross-shard signals on the engine thread.
//   * Cross-shard channels: backhaul packets enter at the engine's UPF
//     ingress and are routed to the serving cell (send_downlink_at), and an
//     inter-cell load signal — each cell's in-flight packet count — scales
//     neighbours' gNB processing through `intercell_load_coupling` ×
//     `gnb_load_factor_per_ue`, applied at each barrier.
//   * With `intercell_load_coupling == 0` the cells are provably
//     independent, the lookahead is infinite, and the whole span runs as
//     one window.
//
// Determinism contract (matching sim/runner.hpp): cell i always receives
// `cell_seed(seed, i)`; shards share no mutable state inside a window
// (BufferPool free-lists are thread-local and migration-safe); all
// cross-shard exchange and every merge happens on the engine thread in
// fixed cell order. Merged results are therefore bitwise-identical across
// worker thread counts for the same config and injection sequence.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/cell.hpp"
#include "trace/chrome_trace.hpp"

namespace u5g {

struct ShardedOptions {
  int threads = 0;  ///< worker count; 0 = hardware concurrency
};

class ShardedEngine {
 public:
  /// Builds `base.num_cells` shards from `base` (per-cell seeds from the
  /// SplitMix64 stream rooted at `base.seed`; cell 0 keeps the root seed).
  explicit ShardedEngine(const StackConfig& base, ShardedOptions opt = {});
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] int num_cells() const { return static_cast<int>(cells_.size()); }
  [[nodiscard]] int threads() const;
  /// The synchronisation lookahead: one slot of the base duplex config.
  [[nodiscard]] Nanos window() const { return slot_; }

  [[nodiscard]] Cell& cell(int i) { return *cells_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Cell& cell(int i) const { return *cells_.at(static_cast<std::size_t>(i)); }

  // -- Traffic --------------------------------------------------------------
  // Injection is only legal at or after the synchronisation frontier (the
  // last completed barrier); anything earlier would violate the lookahead
  // guarantee already handed to the shards.

  /// Uplink packet at cell `cell`'s UE `ue` application layer at `at`.
  void send_uplink_at(Nanos at, int cell, int ue = 0);
  /// Downlink packet entering the (shared) UPF at `at`, routed over the
  /// backhaul cross-shard channel to serving cell `cell` for UE `ue`.
  void send_downlink_at(Nanos at, int cell, int ue = 0);

  /// Advance every shard to exactly `until`, one lookahead window at a time.
  void run_until(Nanos until);

  // -- Deterministic merged views (fixed cell order) ------------------------

  [[nodiscard]] SampleSet latency_samples_us(Direction dir) const;
  [[nodiscard]] MetricsRegistry merged_metrics() const;
  [[nodiscard]] std::uint64_t packets_started() const;
  [[nodiscard]] std::uint64_t packets_delivered() const;
  [[nodiscard]] std::uint64_t radio_deadline_misses() const;
  [[nodiscard]] std::uint64_t events_fired() const;
  /// One Chrome-trace lane per cell ("cell 0", "cell 1", ...); span views
  /// stay valid while the engine lives.
  [[nodiscard]] std::vector<TraceLane> trace_lanes() const;

 private:
  void advance_all(Nanos to);
  void exchange_load();

  StackConfig base_;
  Nanos slot_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when running single-threaded
  Nanos now_{};                       ///< synchronisation frontier
};

}  // namespace u5g
