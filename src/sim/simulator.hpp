#pragma once
// Discrete-event simulation kernel.
//
// The whole 5G system model runs on one simulated clock. Components schedule
// callbacks at absolute times; the kernel pops them in (time, sequence) order
// so same-timestamp events run in scheduling order (deterministic replay).

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace u5g {

/// Handle to a scheduled event, usable to cancel it.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  constexpr explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// Event-driven simulator with cancellation and run-until semantics.
class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Nanos when, Action action) {
    if (when < now_) throw std::invalid_argument{"Simulator: scheduling into the past"};
    const std::uint64_t seq = ++next_seq_;
    queue_.push(Event{when, seq, std::move(action)});
    pending_.insert(seq);
    return EventHandle{seq};
  }

  /// Schedule `action` after a relative delay.
  EventHandle schedule_after(Nanos delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns true if the event had not yet fired or
  /// been cancelled. Safe on default-constructed handles.
  bool cancel(EventHandle h) {
    if (!h.valid() || pending_.erase(h.seq_) == 0) return false;
    cancelled_.insert(h.seq_);
    return true;
  }

  /// Run until the event queue drains or `until` is reached (whichever first).
  /// If `until` bounds the run, the clock is advanced to exactly `until`.
  void run_until(Nanos until = Nanos::max()) {
    while (!queue_.empty() && queue_.top().when <= until) pop_and_fire();
    if (until != Nanos::max() && now_ < until) now_ = until;
  }

  /// Fire exactly one live event; returns false if none remain.
  bool step() {
    while (!queue_.empty()) {
      if (pop_and_fire()) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t pending_events() const { return pending_.size(); }
  [[nodiscard]] bool idle() const { return pending_.empty(); }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    mutable Action action;  // moved out on pop; priority_queue::top() is const
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops the front event; fires it unless cancelled. Returns true if fired.
  bool pop_and_fire() {
    Event ev{queue_.top().when, queue_.top().seq,
             std::move(const_cast<Event&>(queue_.top()).action)};
    queue_.pop();
    if (cancelled_.erase(ev.seq) > 0) return false;
    pending_.erase(ev.seq);
    now_ = ev.when;
    ev.action();
    return true;
  }

  Nanos now_ = Nanos::zero();
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_;
};

}  // namespace u5g
