#pragma once
// One cell of the sharded scale-out engine (sim/sharded.hpp).
//
// A Cell is a shard: it owns a complete E2eSystem — its own Simulator, gNB
// stack, and num_ues UE stacks — built from a per-cell StackConfig whose
// seed is drawn from a SplitMix64 stream rooted at the engine-level seed.
// Cell 0 keeps the root seed, so a 1-cell sharded run reproduces a plain
// E2eSystem bit for bit. Cells share no mutable state while a
// synchronisation window executes; all cross-cell interaction goes through
// the engine at slot barriers (queue_* / inflight_packets / set_neighbor_load).

#include <cstdint>
#include <memory>

#include "core/e2e_system.hpp"
#include "core/stack_config.hpp"

namespace u5g {

/// Seed of cell `index` in the engine's SplitMix64 stream. Cell 0 keeps the
/// root seed (single-cell parity with a plain E2eSystem); the rest get
/// replication-style stream seeds, mirroring the PR-1 runner's contract.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t root, int index);

/// Cell `index`'s StackConfig: the engine-level base with the per-cell seed.
[[nodiscard]] StackConfig per_cell_config(const StackConfig& base, int index);

class Cell {
 public:
  Cell(const StackConfig& base, int index);

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] E2eSystem& system() { return *sys_; }
  [[nodiscard]] const E2eSystem& system() const { return *sys_; }

  // -- Traffic (engine thread, between windows) -----------------------------

  /// Register an uplink packet at UE `ue`'s application layer at `at`.
  void queue_uplink(Nanos at, int ue);
  /// Hand a backhaul packet from the UPF shard to this (serving) cell: it
  /// enters the cell's core-network ingress at `at`.
  void queue_downlink(Nanos at, int ue);

  // -- Shard execution (worker thread, inside a window) ---------------------

  /// Advance the cell's simulator to exactly `to` (one synchronisation
  /// window; the engine guarantees no cross-cell input changes before then).
  void advance_to(Nanos to);

  // -- Cross-shard signals (engine thread, at the barrier) ------------------

  /// Packets started but not yet delivered — the load signal neighbours see.
  [[nodiscard]] std::uint64_t inflight_packets() const;
  /// Apply the aggregate neighbour load (in equivalent extra UEs) exchanged
  /// at the barrier; effective from the next window's processing draws.
  void set_neighbor_load(double equivalent_ues);

 private:
  int index_;
  std::unique_ptr<E2eSystem> sys_;
};

}  // namespace u5g
