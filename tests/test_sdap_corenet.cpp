// Unit tests for src/sdap (QoS model, SDAP entity) and src/corenet (GTP-U,
// UPF).

#include <gtest/gtest.h>

#include "corenet/gtpu.hpp"
#include "corenet/upf.hpp"
#include "sdap/qos.hpp"
#include "sdap/sdap_entity.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// QoS

TEST(QosTest, TableLookups) {
  EXPECT_TRUE(find_five_qi(9).has_value());
  EXPECT_TRUE(find_five_qi(85).has_value());
  EXPECT_FALSE(find_five_qi(42).has_value());
}

TEST(QosTest, UrllcRowIsDelayCritical) {
  const FiveQi q = urllc_five_qi();
  EXPECT_EQ(q.value, 85);
  EXPECT_TRUE(q.delay_critical());
  EXPECT_EQ(q.packet_delay_budget, 5_ms);
  EXPECT_DOUBLE_EQ(q.packet_error_rate, 1e-5);  // the paper's 99.999 %
}

TEST(QosTest, DelayCriticalRowsHaveTightBudgets) {
  for (const FiveQi& q : five_qi_table()) {
    if (q.delay_critical()) {
      EXPECT_LE(q.packet_delay_budget, 30_ms) << q.value;
      EXPECT_LE(q.packet_error_rate, 1e-4) << q.value;
    }
  }
}

// ---------------------------------------------------------------------------
// SDAP

TEST(SdapTest, EncapDecapRoundTrip) {
  SdapEntity sdap;
  sdap.configure_flow(5, BearerId{1}, urllc_five_qi());
  ByteBuffer b(10, 0xEE);
  sdap.encapsulate(b, 5);
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(sdap.decapsulate(b), 5);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.bytes()[0], 0xEE);
}

TEST(SdapTest, UnconfiguredFlowThrows) {
  SdapEntity sdap;
  ByteBuffer b(10);
  EXPECT_THROW(sdap.encapsulate(b, 7), std::invalid_argument);
}

TEST(SdapTest, FlowMappings) {
  SdapEntity sdap;
  sdap.configure_flow(1, BearerId{10}, *find_five_qi(9));
  sdap.configure_flow(2, BearerId{20}, urllc_five_qi());
  EXPECT_EQ(sdap.flow_count(), 2u);
  EXPECT_EQ(sdap.bearer_of(1), BearerId{10});
  EXPECT_EQ(sdap.bearer_of(2), BearerId{20});
  EXPECT_FALSE(sdap.bearer_of(3).has_value());
  EXPECT_EQ(sdap.qos_of(2)->value, 85);
}

TEST(SdapTest, QfiIsSixBits) {
  const SdapHeader h{63};
  EXPECT_EQ(SdapHeader::decode(h.encode()).qfi, 63);
  const SdapHeader overflow{static_cast<std::uint8_t>(64 | 5)};
  EXPECT_EQ(overflow.encode(), 5);  // top bits masked
}

// ---------------------------------------------------------------------------
// GTP-U

TEST(GtpuTest, EncapDecapRoundTrip) {
  ByteBuffer b(40, 0x12);
  gtpu_encapsulate(b, 0xCAFE);
  EXPECT_EQ(b.size(), 48u);
  const auto h = gtpu_decapsulate(b);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->teid, 0xCAFEu);
  EXPECT_EQ(h->length, 40);
  EXPECT_EQ(b.size(), 40u);
  EXPECT_EQ(b.bytes()[0], 0x12);
}

TEST(GtpuTest, RejectsBadVersion) {
  ByteBuffer b(40);
  gtpu_encapsulate(b, 1);
  b.bytes()[0] = 0x20;  // wrong version/PT
  EXPECT_FALSE(gtpu_decapsulate(b).has_value());
}

TEST(GtpuTest, RejectsTruncation) {
  ByteBuffer tiny(4);
  EXPECT_FALSE(gtpu_decapsulate(tiny).has_value());
}

TEST(GtpuTest, RejectsLengthMismatch) {
  ByteBuffer b(40);
  gtpu_encapsulate(b, 1);
  b.truncate_back(5);  // payload shorter than the header claims
  EXPECT_FALSE(gtpu_decapsulate(b).has_value());
}

// ---------------------------------------------------------------------------
// UPF

TEST(UpfTest, UplinkKnownSession) {
  Upf upf{UpfParams::dedicated_urllc(), Rng{1}};
  upf.bind_session(7, 100);
  ByteBuffer b(30, 0x44);
  gtpu_encapsulate(b, 7);
  const auto latency = upf.process_uplink(b);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(latency->count(), 0);
  EXPECT_EQ(b.size(), 30u);  // tunnel stripped
}

TEST(UpfTest, UplinkUnknownTeidDropped) {
  Upf upf{UpfParams::dedicated_urllc(), Rng{1}};
  ByteBuffer b(30);
  gtpu_encapsulate(b, 99);
  EXPECT_FALSE(upf.process_uplink(b).has_value());
}

TEST(UpfTest, DownlinkWrapsForTunnel) {
  Upf upf{UpfParams::dedicated_urllc(), Rng{1}};
  upf.bind_session(7, 100);
  ByteBuffer b(30, 0x13);
  const Nanos latency = upf.process_downlink(b, 7);
  EXPECT_GT(latency.count(), 0);
  const auto h = gtpu_decapsulate(b);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->teid, 7u);
}

TEST(UpfTest, SharedCoreQueuesBehindEmbb) {
  // §9 "URLLC in the 5G Core": a shared core adds queuing that a dedicated
  // one does not.
  Upf dedicated{UpfParams::dedicated_urllc(), Rng{5}};
  Upf shared{UpfParams::shared_with_embb(0.5), Rng{5}};
  double ded_sum = 0.0;
  double shr_sum = 0.0;
  for (int i = 0; i < 3000; ++i) {
    ByteBuffer a(20);
    ByteBuffer b(20);
    ded_sum += static_cast<double>(dedicated.process_downlink(a, 1).count());
    shr_sum += static_cast<double>(shared.process_downlink(b, 1).count());
  }
  EXPECT_GT(shr_sum, ded_sum * 2.0);
}

}  // namespace
}  // namespace u5g
