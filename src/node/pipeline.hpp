#pragma once
// Layer-traversal helper: walks a packet through a sequence of stack layers
// on the simulated clock, drawing each layer's processing time from the
// node's ProcessingModel and reporting every draw (the Table 2 measurement
// hook) before invoking the completion continuation.
//
// All per-layer durations are sampled up front and the traversal schedules a
// single completion event at their sum, instead of one event per layer: the
// simulated completion time is identical (the layers of one packet run
// back-to-back with nothing interleaved between them), and a K-layer hop
// costs one event instead of K. `per_layer` observers therefore fire at
// schedule time, in layer order, with the sampled duration — they are
// measurement taps, not simulation actors, and must not read the simulated
// clock.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <type_traits>
#include <utility>

#include "common/time.hpp"
#include "os/proc_time.hpp"
#include "sim/simulator.hpp"

namespace u5g {

/// Traverse `layers` in order starting now. `per_layer` fires for each layer
/// with (layer, sampled duration) — pass `nullptr` to skip; `done` fires
/// once, on the simulated clock, with the completion time.
template <typename PerLayer, typename Done>
void traverse_layers(Simulator& sim, ProcessingModel& proc, std::span<const Layer> layers,
                     PerLayer per_layer, Done done) {
  Nanos total = Nanos::zero();
  for (const Layer layer : layers) {
    const Nanos dt = proc.sample(layer);
    total += dt;
    if constexpr (!std::is_same_v<PerLayer, std::nullptr_t>) {
      per_layer(layer, dt);
    }
  }
  sim.schedule_after(total, [&sim, done = std::move(done)]() mutable { done(sim.now()); });
}

template <typename PerLayer, typename Done>
void traverse_layers(Simulator& sim, ProcessingModel& proc, std::initializer_list<Layer> layers,
                     PerLayer per_layer, Done done) {
  traverse_layers(sim, proc, std::span<const Layer>{layers.begin(), layers.size()},
                  std::move(per_layer), std::move(done));
}

}  // namespace u5g
