#include "phy/channel.hpp"

#include <cmath>

namespace u5g {

double LinkModel::threshold_db(const McsEntry& mcs) {
  // Shannon with a 2 dB implementation gap: SNR_req = 2^eff - 1, in dB, + gap.
  const double eff = mcs.bits_per_re();
  const double snr_lin = std::pow(2.0, eff) - 1.0;
  return 10.0 * std::log10(snr_lin) + 2.0;
}

double LinkModel::bler(const McsEntry& mcs) const {
  const double gap = snr_db_ - threshold_db(mcs);
  // Logistic in dB: 50 % at threshold, ~1e-5 a few dB above for steep slopes.
  return 1.0 / (1.0 + std::exp(gap / slope_db_));
}

bool MmWaveBlockage::blocked_at(Nanos now) {
  while (now >= next_toggle_) {
    blocked_ = !blocked_;
    schedule_toggle(next_toggle_);
  }
  return blocked_;
}

void MmWaveBlockage::schedule_toggle(Nanos from) {
  const Nanos mean = blocked_ ? p_.mean_blocked : p_.mean_los;
  const double dwell = rng_.exponential(static_cast<double>(mean.count()));
  next_toggle_ = from + Nanos{static_cast<std::int64_t>(dwell) + 1};
}

}  // namespace u5g
