// Tests for the §5 latency-budget analyzer.

#include <gtest/gtest.h>

#include "core/budget.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

TEST(BudgetTest, ProtocolFloorAndRemaining) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const LatencyBudget b = compute_budget(dm, AccessMode::GrantFreeUl);
  EXPECT_TRUE(b.protocol_feasible);
  EXPECT_EQ(b.remaining, b.deadline - b.protocol_floor);
  EXPECT_GT(b.remaining, Nanos::zero());
  // DL on DM: floor is exactly the deadline -> nothing left for the stack.
  const LatencyBudget dl = compute_budget(dm, AccessMode::Downlink);
  EXPECT_TRUE(dl.protocol_feasible);
  EXPECT_LT(dl.remaining, Nanos{5'000});
}

TEST(BudgetTest, InfeasibleProtocolLeavesNoBudget) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const LatencyBudget b = compute_budget(dm, AccessMode::GrantBasedUl);
  EXPECT_FALSE(b.protocol_feasible);
  EXPECT_EQ(b.remaining, Nanos::zero());
}

TEST(BudgetTest, TestbedPlatformBlowsTheSlotOnRadio) {
  // §7's observation: the B210's USB path exceeds one 0.25 ms slot. On the
  // downlink the gNB radio is the *transmit* side; on the uplink it is the
  // *receive* side — either way the USB item fails the one-slot test.
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const BudgetReport dl =
      check_platform(dm, AccessMode::Downlink, Platform::software_testbed());
  bool tx_radio_failed = false;
  for (const BudgetItem& item : dl.items) {
    if (item.label.find("TX radio") != std::string::npos) tx_radio_failed = !item.within;
  }
  EXPECT_TRUE(tx_radio_failed);
  EXPECT_FALSE(dl.all_within);
  EXPECT_FALSE(dl.meets_deadline);

  const BudgetReport ul =
      check_platform(dm, AccessMode::GrantFreeUl, Platform::software_testbed());
  bool rx_radio_failed = false;
  for (const BudgetItem& item : ul.items) {
    if (item.label.find("RX radio") != std::string::npos) rx_radio_failed = !item.within;
  }
  EXPECT_TRUE(rx_radio_failed);
  EXPECT_FALSE(ul.all_within);
}

TEST(BudgetTest, AsicPlatformFitsEverywhereItCan) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const BudgetReport r = check_platform(dm, AccessMode::GrantFreeUl, Platform::hardware_asic());
  EXPECT_TRUE(r.all_within);
  EXPECT_TRUE(r.meets_deadline);
  EXPECT_LE(r.projected_worst, 500_us);
}

TEST(BudgetTest, TunedSoftwareIsBetweenTestbedAndAsic) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const auto testbed = check_platform(dm, AccessMode::GrantFreeUl, Platform::software_testbed());
  const auto tuned = check_platform(dm, AccessMode::GrantFreeUl, Platform::software_tuned());
  const auto asic = check_platform(dm, AccessMode::GrantFreeUl, Platform::hardware_asic());
  EXPECT_LT(tuned.projected_worst, testbed.projected_worst);
  EXPECT_LT(asic.projected_worst, tuned.projected_worst);
}

TEST(BudgetTest, LeakedSlotsQuantised) {
  // A platform whose radio costs 1.5 slots leaks exactly one extra slot of
  // worst case relative to one costing 0.9 slots (ceil quantisation).
  const FddConfig fdd{kMu2};
  Platform p = Platform::hardware_asic();
  p.gnb_radio = RadioHeadParams{BusParams{"slow", Nanos{370'000}, Nanos{0},
                                          JitterParams::none()},
                                SampleRate{}, Nanos{5'000}, Nanos{5'000}};
  const auto slow = check_platform(fdd, AccessMode::Downlink, p);
  EXPECT_FALSE(slow.all_within);
  const auto fast = check_platform(fdd, AccessMode::Downlink, Platform::hardware_asic());
  EXPECT_GE(slow.projected_worst - fast.projected_worst, 250_us);
}

TEST(BudgetTest, EverySectionItemPresent) {
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const BudgetReport r =
      check_platform(dm, AccessMode::Downlink, Platform::software_tuned());
  ASSERT_EQ(r.items.size(), 5u);
  EXPECT_NE(r.items[0].label.find("(i)"), std::string::npos);
  EXPECT_NE(r.items[1].label.find("(ii)"), std::string::npos);
  EXPECT_NE(r.items[3].label.find("(iii)"), std::string::npos);
  for (const BudgetItem& item : r.items) {
    EXPECT_EQ(item.threshold, kMu2.slot_duration());
    EXPECT_GT(item.cost, Nanos::zero());
  }
}

}  // namespace
}  // namespace u5g
