// Tracing + metrics verification: the cursor model's tiling invariant (per-
// category span sums equal the measured end-to-end latency EXACTLY, with no
// "(unattributed)" residual on single-flight packets), the disabled path's
// zero-allocation contract on the warm e2e datapath, histogram error bounds
// and merge semantics, and Chrome trace_event export validity via a minimal
// JSON parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "core/e2e_system.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator: the disabled-tracing overhead assertion below
// measures heap traffic across a window of warm e2e work.

namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Minimal JSON parser: full syntax validation (objects, arrays, strings with
// escapes, numbers, literals) with no DOM — enough to assert the exporters
// emit well-formed documents.

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(i, lit.size()) != lit) return false;
    i += lit.size();
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    bool digits = false;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) != 0 || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(s[i])) != 0;
      ++i;
    }
    return digits && i > start;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;  // skip the escaped character
      ++i;
    }
    return i < s.size() && s[i++] == '"';
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool parse() {
    const bool ok = value();
    ws();
    return ok && i == s.size();
  }
};

bool valid_json(std::string_view doc) { return JsonParser{doc}.parse(); }

std::size_t count_occurrences(std::string_view doc, std::string_view needle) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find(needle); pos != std::string_view::npos;
       pos = doc.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Sum of all `"dur":<µs>` fields, converted back to integer nanoseconds
/// (durations are printed with 3 decimals, so the ns value round-trips).
std::int64_t summed_dur_ns(std::string_view doc) {
  std::int64_t total = 0;
  static constexpr std::string_view kKey = "\"dur\":";
  for (std::size_t pos = doc.find(kKey); pos != std::string_view::npos;
       pos = doc.find(kKey, pos + kKey.size())) {
    const double us = std::strtod(doc.data() + pos + kKey.size(), nullptr);
    total += static_cast<std::int64_t>(us * 1000.0 + 0.5);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Tracer unit semantics.

TEST(TracerTest, SpansTileOpenToClose) {
  Tracer t;
  t.enable();
  t.open(0, Nanos{100});
  t.span_for(0, "proc", LatencyCategory::Processing, Nanos{40});
  t.span_to(0, "wait", LatencyCategory::Protocol, Nanos{200});
  t.span_to(0, "air", LatencyCategory::Radio, Nanos{260});
  t.close(0, Nanos{260});

  ASSERT_EQ(3u, t.spans().size());
  EXPECT_EQ(Nanos{160}, t.total(0));
  EXPECT_EQ(Nanos{40}, t.category_total(0, LatencyCategory::Processing));
  EXPECT_EQ(Nanos{60}, t.category_total(0, LatencyCategory::Protocol));
  EXPECT_EQ(Nanos{60}, t.category_total(0, LatencyCategory::Radio));
  // Contiguous: each span starts where the previous ended.
  EXPECT_EQ(Nanos{100}, t.spans()[0].start);
  for (std::size_t i = 1; i < t.spans().size(); ++i) {
    EXPECT_EQ(t.spans()[i - 1].end, t.spans()[i].start);
  }
  EXPECT_EQ(1u, t.packets_closed());
}

TEST(TracerTest, CloseEmitsUnattributedResidualForGaps) {
  Tracer t;
  t.enable();
  t.open(7, Nanos{0});
  t.span_for(7, "proc", LatencyCategory::Processing, Nanos{30});
  t.close(7, Nanos{100});  // hooks covered only [0, 30)

  ASSERT_EQ(2u, t.spans().size());
  EXPECT_EQ(kUnattributedSpan, t.spans()[1].name);
  EXPECT_EQ(LatencyCategory::Protocol, t.spans()[1].category);
  EXPECT_EQ(Nanos{70}, t.spans()[1].duration());
  EXPECT_EQ(Nanos{100}, t.total(7));  // tiling holds despite the gap
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer t;  // default: disabled
  t.open(0, Nanos{0});
  t.span_for(0, "proc", LatencyCategory::Processing, Nanos{10});
  t.close(0, Nanos{10});
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(0u, t.packets_closed());
}

TEST(TracerTest, UnknownSeqIsIgnored) {
  Tracer t;
  t.enable();
  t.span_for(-1, "x", LatencyCategory::Processing, Nanos{10});
  t.span_to(42, "y", LatencyCategory::Protocol, Nanos{10});
  t.close(42, Nanos{10});
  EXPECT_TRUE(t.spans().empty());
}

// ---------------------------------------------------------------------------
// Histogram error bound and merge contract.

TEST(HistogramTest, BucketBoundsRoundTrip) {
  for (std::int64_t v : {0LL, 1LL, 15LL, 16LL, 17LL, 255LL, 1'000LL, 123'456'789LL,
                         (1LL << 40) + 12345LL}) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lower(idx), v);
    EXPECT_GT(LatencyHistogram::bucket_lower(idx + 1), v);
  }
}

TEST(HistogramTest, QuantileWithinRelativeErrorBound) {
  LatencyHistogram h;
  std::vector<std::int64_t> values;
  std::uint64_t x = 88172645463325252ULL;  // xorshift64
  for (int i = 0; i < 10'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<std::int64_t>(x % 5'000'000));
  }
  for (const std::int64_t v : values) h.record(v);
  std::sort(values.begin(), values.end());

  EXPECT_EQ(10'000u, h.count());
  EXPECT_EQ(values.front(), h.min());
  EXPECT_EQ(values.back(), h.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(q * 10'000) - 1;
    const double truth = static_cast<double>(values[rank]);
    const double est = static_cast<double>(h.quantile(q));
    EXPECT_GE(est, truth) << "q=" << q;  // upper-bound estimator
    EXPECT_LE(est, truth * (1.0 + 1.0 / 16.0) + 1.0) << "q=" << q;
  }
}

TEST(HistogramTest, MergeMatchesSequentialRecording) {
  LatencyHistogram a, b, all;
  for (int i = 0; i < 1'000; ++i) {
    const std::int64_t v = 17LL * i * i + 3;
    ((i % 2 != 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(all.count(), a.count());
  EXPECT_EQ(all.min(), a.min());
  EXPECT_EQ(all.max(), a.max());
  EXPECT_DOUBLE_EQ(all.mean(), a.mean());
  for (int idx = 0; idx < LatencyHistogram::kBucketCount; ++idx) {
    ASSERT_EQ(all.bucket_count(idx), a.bucket_count(idx)) << "bucket " << idx;
  }
}

TEST(MetricsTest, RegistryMergeAndJson) {
  MetricsRegistry a, b;
  a.counter("shared").inc(2);
  b.counter("shared").inc(3);
  b.counter("only_b").inc(1);
  a.histogram("lat").record(Nanos{1'000});
  b.histogram("lat").record(Nanos{9'000});
  a.merge(b);

  EXPECT_EQ(5u, a.counter("shared").value());
  EXPECT_EQ(1u, a.counter("only_b").value());
  EXPECT_EQ(2u, a.histogram("lat").count());

  const std::string json = a.to_json();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(std::string::npos, json.find("\"shared\""));
  EXPECT_NE(std::string::npos, json.find("\"p99_ns\""));
}

// ---------------------------------------------------------------------------
// End-to-end exactness: a traced packet's spans sum to its measured latency.

void expect_exact_attribution(const E2eSystem& sys) {
  ASSERT_FALSE(sys.records().empty());
  for (const PacketRecord& r : sys.records()) {
    ASSERT_TRUE(r.ok) << "packet " << r.seq << " not delivered";
    Nanos categories{};
    for (LatencyCategory c : {LatencyCategory::Protocol, LatencyCategory::Processing,
                              LatencyCategory::Radio, LatencyCategory::ChannelAccess}) {
      categories += sys.tracer().category_total(r.seq, c);
    }
    EXPECT_EQ(r.latency(), categories) << "packet " << r.seq;
    EXPECT_EQ(r.latency(), sys.tracer().total(r.seq)) << "packet " << r.seq;
  }
  // Single-flight packets must be FULLY attributed: the hooks covered the
  // whole journey and close() never had to emit a residual.
  for (const TraceSpan& s : sys.tracer().spans()) {
    EXPECT_NE(kUnattributedSpan, s.name)
        << "packet " << s.seq << " has an unattributed gap of " << s.duration().count() << " ns";
  }
  EXPECT_EQ(sys.records().size(), sys.tracer().packets_closed());
}

TEST(TraceE2eTest, GrantFreeUplinkSumsExactly) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/7);
  cfg.trace.enabled = true;
  E2eSystem sys(cfg);
  for (int i = 0; i < 16; ++i) sys.send_uplink_at(Nanos{i * 8'000'000LL});
  sys.run_until(Nanos::max());
  expect_exact_attribution(sys);
}

TEST(TraceE2eTest, GrantBasedUplinkSumsExactly) {
  StackConfig cfg = StackConfig::testbed_grant_based(/*seed=*/11);
  cfg.trace.enabled = true;
  E2eSystem sys(cfg);
  // 8 ms spacing: one packet in flight at a time even through the full
  // SR -> grant -> data handshake, so every trace is single-flight.
  for (int i = 0; i < 16; ++i) sys.send_uplink_at(Nanos{i * 8'000'000LL});
  sys.run_until(Nanos::max());
  expect_exact_attribution(sys);
}

TEST(TraceE2eTest, DownlinkSumsExactly) {
  StackConfig cfg = StackConfig::testbed_grant_based(/*seed=*/13);
  cfg.trace.enabled = true;
  E2eSystem sys(cfg);
  for (int i = 0; i < 16; ++i) sys.send_downlink_at(Nanos{i * 8'000'000LL});
  sys.run_until(Nanos::max());
  expect_exact_attribution(sys);
}

TEST(TraceE2eTest, MetricsMatchRecords) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/7);
  cfg.trace.enabled = true;
  E2eSystem sys(cfg);
  constexpr int kPackets = 16;
  for (int i = 0; i < kPackets; ++i) sys.send_uplink_at(Nanos{i * 8'000'000LL});
  sys.run_until(Nanos::max());

  MetricsRegistry& m = sys.metrics();
  EXPECT_EQ(static_cast<std::uint64_t>(kPackets), m.counter("packets.ul_sent").value());
  EXPECT_EQ(static_cast<std::uint64_t>(kPackets), m.counter("packets.delivered").value());
  const LatencyHistogram& h = m.histogram("latency.ul_ns");
  EXPECT_EQ(static_cast<std::uint64_t>(kPackets), h.count());
  Nanos lo = Nanos::max(), hi = Nanos::zero();
  for (const PacketRecord& r : sys.records()) {
    lo = std::min(lo, r.latency());
    hi = std::max(hi, r.latency());
  }
  EXPECT_EQ(lo.count(), h.min());
  EXPECT_EQ(hi.count(), h.max());
}

// ---------------------------------------------------------------------------
// Chrome trace_event export round trip.

TEST(ChromeTraceTest, ExportIsValidJsonAndPreservesDurations) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/3);
  cfg.trace.enabled = true;
  E2eSystem sys(cfg);
  for (int i = 0; i < 4; ++i) sys.send_uplink_at(Nanos{i * 8'000'000LL});
  sys.run_until(Nanos::max());

  const std::string doc = chrome_trace_json(sys.tracer().spans(), "test");
  EXPECT_TRUE(valid_json(doc));
  // One "X" complete event per span; metadata rows for the process and each
  // of the 4 packet lanes.
  EXPECT_EQ(sys.tracer().spans().size(), count_occurrences(doc, "\"ph\":\"X\""));
  EXPECT_EQ(5u, count_occurrences(doc, "\"ph\":\"M\""));
  // Durations survive the µs formatting exactly (3 decimals = integer ns).
  Nanos total{};
  for (const TraceSpan& s : sys.tracer().spans()) total += s.duration();
  EXPECT_EQ(total.count(), summed_dur_ns(doc));
}

TEST(ChromeTraceTest, EscapesQuotesAndBackslashes) {
  const std::vector<TraceSpan> spans = {
      TraceSpan{"a \"quoted\" \\ name", LatencyCategory::Radio, 0, Nanos{0}, Nanos{5}}};
  const std::string doc = chrome_trace_json(spans, "p\"q");
  EXPECT_TRUE(valid_json(doc)) << doc;
}

// ---------------------------------------------------------------------------
// Overhead contract: with tracing compiled in but DISABLED, a warm e2e
// uplink packet performs zero heap allocations (mirrors the test_datapath
// zero-alloc assertion, now with the hooks present on every boundary).

TEST(TraceOverheadTest, DisabledTracingKeepsWarmPathAllocationFree) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/7);
  ASSERT_FALSE(cfg.trace.enabled);  // presets default to tracing off
  E2eSystem sys(cfg);

  constexpr int kPackets = 48;
  const Nanos spacing{4'000'000};
  for (int i = 0; i < kPackets; ++i) sys.send_uplink_at(Nanos{i * spacing.count()});

  const Nanos last_created{(kPackets - 1) * spacing.count()};
  sys.run_until(last_created - Nanos{1});
  const std::size_t before = g_allocs.load();
  sys.run_until(Nanos::max());
  const std::size_t during = g_allocs.load() - before;

  ASSERT_EQ(static_cast<std::size_t>(kPackets), sys.records().size());
  for (const PacketRecord& r : sys.records()) {
    ASSERT_TRUE(r.ok) << "packet " << r.seq << " not delivered";
  }
  EXPECT_EQ(0u, during) << "disabled tracing must not allocate on the warm path";
  EXPECT_TRUE(sys.tracer().spans().empty());
}

}  // namespace
}  // namespace u5g
