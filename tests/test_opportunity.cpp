// Unit tests for the transmission-opportunity queries — the primitives the
// whole §5 analysis rests on. Exact expected times are computed from the
// µ2 grid: slot 250 µs, symbol 17857 ns (last symbol absorbs the remainder).

#include <gtest/gtest.h>

#include <memory>

#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"
#include "tdd/slot_format.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

constexpr Nanos kSym{17'857};        // µ2 symbol (integer division)
constexpr Nanos kSlot{250'000};

// ---------------------------------------------------------------------------
// next_ul_tx

TEST(NextUlTxTest, DuFindsUplinkSlot) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);  // D | U
  const auto w = next_ul_tx(c, 1_ns, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot);                 // first symbol of the U slot
  EXPECT_EQ(w->end, kSlot + kSym);
}

TEST(NextUlTxTest, StartAtOrAfterT) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);
  // Exactly at a UL symbol boundary: usable.
  EXPECT_EQ(next_ul_tx(c, kSlot, 1)->start, kSlot);
  // One ns later: the next symbol.
  EXPECT_EQ(next_ul_tx(c, kSlot + 1_ns, 1)->start, kSlot + kSym);
}

TEST(NextUlTxTest, DmUplinkTail) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);  // D | DDDD--UUUUUUUU
  const auto w = next_ul_tx(c, 1_ns, 2);
  ASSERT_TRUE(w.has_value());
  // UL symbols are 6..13 of slot 1.
  EXPECT_EQ(w->start, kSlot + kSym * 6);
  EXPECT_EQ(w->end, kSlot + kSym * 8);
}

TEST(NextUlTxTest, RunCrossesSlotBoundary) {
  const TddCommonConfig c = TddCommonConfig::mu(kMu2);  // DDDD--UUUUUUUU | U...U
  // 10 consecutive UL symbols need the M tail (8) + the U slot head (2):
  // only possible because symbol 13 of slot 0 abuts symbol 0 of slot 1.
  const auto w = next_ul_tx(c, 1_ns, 10);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSym * 6);
  EXPECT_EQ(w->end, kSlot + kSym * 2);
}

TEST(NextUlTxTest, TooLongRunWaitsForNextRegion) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);
  // 9 consecutive UL symbols never exist (the tail is 8): nullopt.
  EXPECT_FALSE(next_ul_tx(c, 1_ns, 9, 10_ms).has_value());
}

TEST(NextUlTxTest, NoUplinkAnywhere) {
  const SlotFormatConfig all_dl{kMu2, {0}};
  EXPECT_FALSE(next_ul_tx(all_dl, 0_ns, 1, 5_ms).has_value());
}

TEST(NextUlTxTest, ZeroSymbolsRejected) {
  const FddConfig c{kMu2};
  EXPECT_FALSE(next_ul_tx(c, 0_ns, 0).has_value());
}

TEST(NextUlTxTest, LastSymbolWindowEndsAtSlotBoundary) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);
  // Window starting at symbol 13 of the U slot must end exactly at the slot
  // boundary (remainder absorbed), not at 14 * sym.
  const auto w = next_ul_tx(c, kSlot + kSym * 13, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot + kSym * 13);
  EXPECT_EQ(w->end, kSlot * 2);
}

class UlWindowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(UlWindowPropertyTest, ReturnedWindowsAreUplinkCapable) {
  // Property: every symbol inside a returned window is UL-capable, for all
  // §5 candidate configs and a sweep of query times and lengths.
  const int n_symbols = GetParam();
  std::vector<std::unique_ptr<DuplexConfig>> cfgs;
  cfgs.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::du(kMu2)));
  cfgs.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::dm(kMu2)));
  cfgs.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::mu(kMu2)));
  cfgs.push_back(std::make_unique<MiniSlotConfig>(kMu2, 2));
  cfgs.push_back(std::make_unique<FddConfig>(kMu2));
  for (const auto& cfg : cfgs) {
    const SlotClock clk = cfg->clock();
    for (int probe = 0; probe < 60; ++probe) {
      const Nanos t = Nanos{probe * 13'441};
      const auto w = next_ul_tx(*cfg, t, n_symbols, 20_ms);
      if (!w) continue;
      EXPECT_GE(w->start, t);
      for (Nanos s = w->start; s < w->end - 1_ns; s += clk.symbol_duration()) {
        EXPECT_TRUE(cfg->ul_capable(clk.slot_at(s), clk.symbol_at(s)))
            << cfg->name() << " t=" << t.count() << " sym at " << s.count();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, UlWindowPropertyTest, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Granule boundaries / scheduler runs

TEST(GranuleTest, SlotGranularity) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);
  EXPECT_EQ(next_granule_boundary(c, 0_ns), 0_ns);
  EXPECT_EQ(next_granule_boundary(c, 1_ns), kSlot);
  EXPECT_EQ(next_granule_boundary(c, kSlot), kSlot);
  EXPECT_EQ(next_scheduler_run(c, kSlot + 1_ns), kSlot * 2);
}

TEST(GranuleTest, MiniSlotGranularity) {
  const MiniSlotConfig c{kMu2, 2};
  EXPECT_EQ(next_granule_boundary(c, 1_ns), kSym * 2);
  EXPECT_EQ(next_granule_boundary(c, kSym * 2), kSym * 2);
  EXPECT_EQ(next_granule_boundary(c, kSym * 11), kSym * 12);
  // Past symbol 12 the next granule is the next slot's symbol 0.
  EXPECT_EQ(next_granule_boundary(c, kSym * 12 + 1_ns), kSlot);
}

TEST(GranuleTest, SevenSymbolMiniSlot) {
  const MiniSlotConfig c{kMu2, 7};
  EXPECT_EQ(next_granule_boundary(c, 1_ns), kSym * 7);
  EXPECT_EQ(next_granule_boundary(c, kSym * 7 + 1_ns), kSlot);
}

// ---------------------------------------------------------------------------
// next_dl_control

TEST(NextDlControlTest, SkipsUplinkSlot) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);
  // Just after the D slot starts: next control is the D slot of period 2.
  const auto w = next_dl_control(c, 1_ns);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot * 2);
  EXPECT_EQ(w->end, kSlot * 2 + kSym);  // 1 control symbol
}

TEST(NextDlControlTest, MixedSlotCarriesControl) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);
  // After slot 0 begins, the M slot (DL head) provides the next control.
  const auto w = next_dl_control(c, 1_ns);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot);
}

TEST(NextDlControlTest, FddEverySlot) {
  const FddConfig c{kMu2};
  EXPECT_EQ(next_dl_control(c, 1_ns)->start, kSlot);
  EXPECT_EQ(next_dl_control(c, kSlot)->start, kSlot);
}

TEST(NextDlControlTest, NoDownlinkAnywhere) {
  const SlotFormatConfig all_ul{kMu2, {1}};
  EXPECT_FALSE(next_dl_control(all_ul, 0_ns, 5_ms).has_value());
}

// ---------------------------------------------------------------------------
// next_dl_data

TEST(NextDlDataTest, FullDlSlot) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);
  const auto w = next_dl_data(c, 1_ns);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot * 2);
  EXPECT_EQ(w->end, kSlot * 3);  // full DL slot: run ends at slot end
}

TEST(NextDlDataTest, MixedSlotRunEndsAtGuard) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);
  const auto w = next_dl_data(c, 1_ns);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot);
  EXPECT_EQ(w->end, kSlot + kSym * 4);  // 4 DL symbols then guard
}

TEST(NextDlDataTest, RunMustExceedControlOverhead) {
  // A slot with a single DL symbol can carry control but no data.
  const SlotFormatConfig c{kMu2, {16, 0}};  // DFFF... then full D
  const auto w = next_dl_data(c, 1_ns);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot);  // skipped the 1-symbol-DL slot
}

TEST(NextDlDataTest, MiniSlotServesWithinGranule) {
  const MiniSlotConfig c{kMu2, 2};
  const auto w = next_dl_data(c, 1_ns);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSym * 2);
  EXPECT_EQ(w->end, kSym * 4);  // the granule itself
}

TEST(NextDlDataTest, ExactBoundaryUsable) {
  const FddConfig c{kMu2};
  const auto w = next_dl_data(c, kSlot);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, kSlot);
  EXPECT_EQ(w->end, kSlot * 2);
}

}  // namespace
}  // namespace u5g
