#pragma once
// ASCII Gantt rendering of transmission timelines over the slot map —
// Fig 3's visual language ("Overview of the system-level latency for the
// journey of a packet") as a terminal artifact.
//
// Two aligned tracks: the duplex configuration's slot structure (D/U/guard
// per symbol) and the packet's timeline steps, one row per step, with the
// paper's three latency categories marked distinctly.

#include <string>

#include "core/journey.hpp"
#include "core/latency_model.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

struct GanttOptions {
  int columns = 96;            ///< character width of the time axis
  bool show_slot_track = true; ///< render the D/U/- structure track
  bool show_legend = true;
};

/// Render one timeline against the configuration's slot structure.
/// The time axis spans [timeline.arrival, timeline.completion], snapped
/// outward to slot boundaries so the slot track is meaningful.
[[nodiscard]] std::string render_gantt(const DuplexConfig& cfg, const Timeline& timeline,
                                       const GanttOptions& opt = {});

/// Render a full ping journey: uplink, core hop, downlink, stacked on one
/// axis (Fig 3's full picture).
[[nodiscard]] std::string render_gantt(const DuplexConfig& cfg, const PingJourney& journey,
                                       const GanttOptions& opt = {});

}  // namespace u5g
