#pragma once
// Predictive configured grants — §9's second open problem, implemented:
// "Another research problem is how to predict and schedule uplink data
// arrivals for URLLC applications to efficiently pre-allocate resources,
// eliminate delays incurred in requesting, and improve scalability."
//
// URLLC traffic (control loops, audio frames) is largely periodic. The
// predictor estimates the period and phase of a UE's arrivals online and
// plans ONE just-in-time occasion per predicted arrival, instead of blanket
// per-slot pre-allocation — cutting the §9 waste by orders of magnitude
// while keeping grant-free latency.

#include <cstdint>
#include <optional>

#include "common/time.hpp"
#include "mac/grant.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

/// Online estimator of a (quasi-)periodic arrival process: exponentially
/// weighted estimates of the period and of the phase error, robust to
/// bounded jitter. Needs at least `min_observations` arrivals to predict.
class ArrivalPredictor {
 public:
  explicit ArrivalPredictor(double ewma_alpha = 0.25, int min_observations = 3)
      : alpha_(ewma_alpha), min_obs_(min_observations) {}

  /// Record an arrival (timestamps must be non-decreasing).
  void observe(Nanos arrival);

  /// Predicted time of the next arrival, or nullopt before warm-up.
  [[nodiscard]] std::optional<Nanos> predict_next() const;

  /// Current period estimate (0 before warm-up).
  [[nodiscard]] Nanos period_estimate() const { return from_double(period_); }
  /// RMS prediction error estimate — how much margin an allocation needs.
  [[nodiscard]] Nanos jitter_estimate() const { return from_double(jitter_rms_); }
  [[nodiscard]] int observations() const { return count_; }
  [[nodiscard]] bool warmed_up() const { return count_ >= min_obs_; }

 private:
  static Nanos from_double(double ns) { return Nanos{static_cast<std::int64_t>(ns)}; }

  double alpha_;
  int min_obs_;
  int count_ = 0;
  Nanos last_{};
  double period_ = 0.0;      ///< EWMA of inter-arrival times (ns)
  double jitter_rms_ = 0.0;  ///< EWMA of |prediction error| (ns)
};

/// Plans just-in-time occasions from the predictor's output.
class PredictiveConfiguredGrant {
 public:
  PredictiveConfiguredGrant(UeId ue, int tx_symbols, std::size_t tb_bytes,
                            Nanos stack_lead, double jitter_margin_factor = 3.0)
      : ue_(ue),
        tx_symbols_(tx_symbols),
        tb_bytes_(tb_bytes),
        stack_lead_(stack_lead),
        margin_factor_(jitter_margin_factor) {}

  void observe_arrival(Nanos t) { predictor_.observe(t); }
  [[nodiscard]] const ArrivalPredictor& predictor() const { return predictor_; }

  /// One occasion for the next predicted arrival: the first UL window that
  /// starts at or after (predicted arrival + stack lead − jitter margin)...
  /// but never before `now`. Returns nullopt before warm-up (callers fall
  /// back to static allocation or SR).
  [[nodiscard]] std::optional<UlGrant> plan_next_occasion(const DuplexConfig& cfg,
                                                          Nanos now) const;

  /// Windows this scheme reserves per second once warmed up: exactly the
  /// arrival rate (one per predicted packet) — the §9 waste reduction.
  [[nodiscard]] double reserved_windows_per_second() const;

 private:
  UeId ue_;
  int tx_symbols_;
  std::size_t tb_bytes_;
  Nanos stack_lead_;
  double margin_factor_;
  ArrivalPredictor predictor_;
};

}  // namespace u5g
