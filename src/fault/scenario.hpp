#pragma once
// Scenario-scripted fault injection: *what* goes wrong, *when*, on the
// simulated clock.
//
// The paper's §6 measurement says the URLLC killer is not the mean but rare
// correlated events — OS-jitter spikes, bus stalls, loss bursts. A
// FaultScenario is one such event source: a kind (bursty channel loss,
// OS-jitter storm, radio-bus stall, UPF outage) plus an activation window
// that may be one-shot, periodic, or always-on. StackConfig carries a list
// of scenarios; core/e2e_system builds a FaultInjector over them (one
// SplitMix64-derived stream per scenario, independent of the main
// simulation stream) and queries it at the affected boundaries.
//
// Determinism contract: activation is a pure function of the simulated
// clock, and every stochastic draw comes from the scenario's own stream in
// event order — so runs are bitwise-reproducible from the seed, across
// thread counts, and under the sharded engine (each cell derives its own
// fault streams from its per-cell seed). With an empty scenario list the
// injector is never consulted and the legacy i.i.d. `channel_loss` path is
// taken verbatim: existing seeds and goldens are bit-identical.

#include <cstdint>

#include "common/time.hpp"
#include "fault/gilbert_elliott.hpp"
#include "os/jitter.hpp"

namespace u5g {

/// When a scenario is active, on the simulated clock.
struct FaultWindow {
  Nanos start{};     ///< first activation instant
  Nanos duration{};  ///< window length; <= 0 means "active forever from start"
  Nanos period{};    ///< repeat spacing; <= 0 means one-shot

  /// Active from t=0 for the whole run (the natural choice for BurstLoss).
  static FaultWindow always() { return {}; }
  static FaultWindow once(Nanos start, Nanos duration) { return {start, duration, Nanos::zero()}; }
  static FaultWindow periodic(Nanos start, Nanos duration, Nanos period) {
    return {start, duration, period};
  }

  [[nodiscard]] bool active_at(Nanos now) const {
    if (now < start) return false;
    if (duration <= Nanos::zero()) return true;
    const Nanos since = now - start;
    if (period <= Nanos::zero()) return since < duration;
    return since % period < duration;
  }
};

enum class FaultKind : std::uint8_t {
  BurstLoss,      ///< Gilbert–Elliott channel process replacing i.i.d. loss
  OsJitterStorm,  ///< extra OS-scheduling jitter on stack traversals (Fig 5 spikes)
  RadioBusStall,  ///< fixed stall added to radio-bus transfers (USB URB backlog)
  UpfOutage,      ///< core-network brown-out: drops and/or added forwarding delay
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::BurstLoss: return "burst_loss";
    case FaultKind::OsJitterStorm: return "os_jitter_storm";
    case FaultKind::RadioBusStall: return "radio_bus_stall";
    case FaultKind::UpfOutage: return "upf_outage";
  }
  return "?";
}

/// One scripted fault source. Only the parameter block matching `kind` is
/// read; the factories below keep construction misuses impossible.
struct FaultScenario {
  FaultKind kind = FaultKind::BurstLoss;
  FaultWindow window = FaultWindow::always();

  GilbertElliott::Params ge{};        ///< BurstLoss
  JitterParams storm{};               ///< OsJitterStorm: *additional* jitter mixture
  Nanos bus_stall{};                  ///< RadioBusStall: added per-transfer latency
  double upf_drop_prob = 0.0;         ///< UpfOutage: per-packet drop probability
  Nanos upf_extra_delay{};            ///< UpfOutage: added forwarding latency

  static FaultScenario burst_loss(GilbertElliott::Params p,
                                  FaultWindow w = FaultWindow::always()) {
    FaultScenario s;
    s.kind = FaultKind::BurstLoss;
    s.window = w;
    s.ge = p;
    return s;
  }

  /// The Fig 5 spike regime as an injectable event: while the window is
  /// active, every stack traversal draws one extra jitter sample from
  /// `storm` (default: frequent, large preemption spikes).
  static FaultScenario os_jitter_storm(FaultWindow w,
                                       JitterParams storm = {Nanos::zero(), Nanos::zero(), 0.5,
                                                             Nanos{200'000}, Nanos{800'000}}) {
    FaultScenario s;
    s.kind = FaultKind::OsJitterStorm;
    s.window = w;
    s.storm = storm;
    return s;
  }

  static FaultScenario radio_bus_stall(FaultWindow w, Nanos stall) {
    FaultScenario s;
    s.kind = FaultKind::RadioBusStall;
    s.window = w;
    s.bus_stall = stall;
    return s;
  }

  static FaultScenario upf_outage(FaultWindow w, double drop_prob, Nanos extra_delay) {
    FaultScenario s;
    s.kind = FaultKind::UpfOutage;
    s.window = w;
    s.upf_drop_prob = drop_prob;
    s.upf_extra_delay = extra_delay;
    return s;
  }
};

}  // namespace u5g
