#pragma once
// Bounded least-recently-used cache.
//
// The feasibility-query service memoizes analytic worst-case results and
// fixed-seed sim replication sets keyed on canonical config identity
// (common/hashing.hpp). The cache is exact: keys compare by full value, the
// hash only buckets — an eviction can cost a recomputation but can never
// change an answer. Not thread-safe; callers that share one cache across
// threads hold their own lock (the service serialises cache access and runs
// the expensive compute outside the lock).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace u5g {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// A zero capacity degenerates to "cache nothing" (every find misses).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Lookup; a hit promotes the entry to most-recently-used. The returned
  /// pointer is invalidated by the next insert().
  [[nodiscard]] const Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Insert (or overwrite) as most-recently-used, evicting from the LRU end
  /// while over capacity.
  void insert(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) return;
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    while (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
    }
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash> index_;
  Stats stats_;
};

}  // namespace u5g
