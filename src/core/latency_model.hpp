#pragma once
// The paper's §5 analysis as an executable model: closed-form transmission
// timelines for any duplex configuration and access mode, plus worst-case
// search over arrival offsets.
//
// Semantics (derived in §3-§5 and Fig 4):
//  * UL (grant-free): data may start at any symbol boundary inside an
//    uplink-capable region with enough contiguous symbols left; completion
//    is the end of the transmission.
//  * UL (grant-based): SR at the next SR opportunity (any UL symbol,
//    footnote 2) -> gNB scheduling at the next per-granule scheduler run ->
//    grant in the next DL control region -> data at the next UL window the
//    UE can make.
//  * DL: the slot-granular scheduler serves data in the first granule whose
//    start is at or after readiness ("a packet may arrive at the RLC queue
//    just after MAC scheduling [and] has to wait until it is scheduled in
//    the next slot", §5); completion is the end of that granule's DL run —
//    the worst position of the data within the slot.
//
// Each timeline step is tagged with the paper's three latency categories
// (protocol / processing / radio, §4) so the Fig 3 decomposition falls out.

#include <optional>
#include <string>
#include <vector>

#include "common/taxonomy.hpp"
#include "common/time.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

enum class AccessMode { GrantBasedUl, GrantFreeUl, Downlink };

[[nodiscard]] constexpr const char* to_string(AccessMode m) {
  switch (m) {
    case AccessMode::GrantBasedUl: return "Grant-Based UL";
    case AccessMode::GrantFreeUl: return "Grant-Free UL";
    case AccessMode::Downlink: return "DL";
  }
  return "?";
}

/// Knobs of the analytic model. All-zero processing/radio with 1-2 symbol
/// transmissions reproduces the idealised Table 1 analysis; non-zero values
/// let the same engine express §4's bottleneck interdependencies.
struct LatencyModelParams {
  int data_tx_symbols = 2;   ///< symbols one data transmission occupies
  int sr_symbols = 1;        ///< SR length (PUCCH format 0)
  Nanos sender_processing{};    ///< APP->PHY stack traversal before the air
  Nanos receiver_processing{};  ///< PHY->APP traversal after the air
  Nanos grant_decode{};         ///< UE time from DCI end to being ready (K2 floor)
  Nanos sr_decode{};            ///< gNB time from SR end until scheduler aware
  Nanos radio_tx{};             ///< sender radio latency (bus + DAC), per §4
  Nanos radio_rx{};             ///< receiver radio latency (ADC + bus)

  static LatencyModelParams idealised() { return {}; }
};

/// One labelled interval of a transmission timeline.
struct TimelineStep {
  std::string label;
  Nanos start;
  Nanos end;
  LatencyCategory category;
  [[nodiscard]] Nanos duration() const { return end - start; }
};

/// Full decomposition of one transmission.
struct Timeline {
  Nanos arrival{};
  Nanos completion{};
  std::vector<TimelineStep> steps;
  bool feasible = true;  ///< false when no opportunity exists (degenerate config)

  [[nodiscard]] Nanos latency() const { return completion - arrival; }
  /// Sum of step durations in one category (Fig 3's breakdown).
  [[nodiscard]] Nanos category_total(LatencyCategory c) const;
  /// Human-readable rendering of the step list.
  [[nodiscard]] std::string render() const;
};

/// Trace one transmission arriving at absolute time `arrival`.
[[nodiscard]] Timeline trace_transmission(const DuplexConfig& cfg, AccessMode mode, Nanos arrival,
                                          const LatencyModelParams& p = {});

/// Worst/best case over arrival offsets across one configuration period.
struct WorstCaseResult {
  Nanos worst{};
  Nanos best{Nanos::max()};
  Nanos mean{};
  Nanos worst_arrival_offset{};  ///< offset within the period attaining worst
  bool feasible = true;
};

/// Sweeps arrivals over one full period: every symbol boundary, the instant
/// just after it (+1 ns, the paper's "just after a DL slot starts" worst
/// case), and `grid_per_symbol` interior points.
[[nodiscard]] WorstCaseResult analyze_worst_case(const DuplexConfig& cfg, AccessMode mode,
                                                 const LatencyModelParams& p = {},
                                                 int grid_per_symbol = 4);

/// The URLLC one-way deadline the paper evaluates against (abstract, §1).
inline constexpr Nanos kUrllcOneWayDeadline{500'000};

}  // namespace u5g
