// Sharded multi-cell engine: the determinism contract.
//
// The engine promises (a) merged results bitwise-identical across worker
// thread counts — the conservative lookahead windows, per-cell SplitMix64
// seed streams and fixed-order merges make a shard's evolution independent
// of which worker runs it — and (b) single-cell parity: a 1-cell sharded
// run IS a plain E2eSystem run, bit for bit, because cell 0 keeps the root
// seed and windowed run_until calls cannot change a discrete-event outcome.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "sim/sharded.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr Nanos kPeriod{2'000'000};

StackConfig eight_cell_scenario(std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_free(seed);
  cfg.num_cells = 8;
  cfg.num_ues = 2;
  cfg.intercell_load_coupling = 0.05;  // finite lookahead: barrier every slot
  cfg.trace.enabled = true;
  cfg.trace.metrics = true;
  return cfg;
}

Nanos offset_of(int cell, int ue, int p) {
  const auto h = replication_seed(static_cast<std::uint64_t>(cell * 131 + ue),
                                  static_cast<std::uint64_t>(p));
  return Nanos{static_cast<std::int64_t>(h % static_cast<std::uint64_t>(kPeriod.count()))};
}

void inject_traffic(ShardedEngine& eng, int num_ues, int packets) {
  for (int c = 0; c < eng.num_cells(); ++c) {
    for (int u = 0; u < num_ues; ++u) {
      for (int p = 0; p < packets; ++p) {
        const Nanos base = kPeriod * (2 * p);
        eng.send_uplink_at(base + offset_of(c, u, p), c, u);
        eng.send_downlink_at(base + kPeriod + offset_of(c, u, p + 1000), c, u);
      }
    }
  }
}

}  // namespace

TEST(ShardedEngineTest, MergedResultsIdenticalAcrossThreadCounts) {
  constexpr int kPackets = 5;
  std::string baseline_metrics;
  std::vector<double> baseline_samples;
  std::uint64_t baseline_events = 0;

  for (int threads : {1, 2, 8}) {
    StackConfig cfg = eight_cell_scenario(/*seed=*/42);
    ShardedEngine eng(cfg, ShardedOptions{threads});
    inject_traffic(eng, cfg.num_ues, kPackets);
    eng.run_until(kPeriod * (2 * kPackets + 10));

    ASSERT_GT(eng.packets_delivered(), 0u);
    const std::string metrics = eng.merged_metrics().to_json();
    SampleSet ul = eng.latency_samples_us(Direction::Uplink);
    SampleSet dl = eng.latency_samples_us(Direction::Downlink);
    SampleSet merged = ul;
    merged.merge(dl);
    if (threads == 1) {
      baseline_metrics = metrics;
      baseline_samples = merged.samples();
      baseline_events = eng.events_fired();
      continue;
    }
    // Bitwise: identical JSON (counters + histogram buckets), identical
    // latency samples in identical merge order, identical event counts.
    EXPECT_EQ(baseline_metrics, metrics) << "threads=" << threads;
    EXPECT_EQ(baseline_samples, merged.samples()) << "threads=" << threads;
    EXPECT_EQ(baseline_events, eng.events_fired()) << "threads=" << threads;
  }
}

TEST(ShardedEngineTest, SingleCellReproducesE2eSystemExactly) {
  // Same config, same injection sequence: the sharded path must not perturb
  // a single cell's evolution in any way.
  StackConfig cfg = StackConfig::testbed_grant_based(/*seed=*/5);
  cfg.num_ues = 2;

  E2eSystem plain(cfg);
  ShardedEngine sharded(cfg, ShardedOptions{1});
  ASSERT_EQ(1, sharded.num_cells());

  for (int u = 0; u < cfg.num_ues; ++u) {
    for (int p = 0; p < 6; ++p) {
      const Nanos base = kPeriod * (2 * p);
      const Nanos ul = base + offset_of(0, u, p);
      const Nanos dl = base + kPeriod + offset_of(0, u, p + 500);
      plain.send_uplink_at(ul, u);
      plain.send_downlink_at(dl, u);
      sharded.send_uplink_at(ul, 0, u);
      sharded.send_downlink_at(dl, 0, u);
    }
  }
  const Nanos horizon = kPeriod * 24;
  plain.run_until(horizon);
  sharded.run_until(horizon);

  const auto& a = plain.records();
  const auto& b = sharded.cell(0).system().records();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(plain.packets_delivered(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok) << "record " << i;
    EXPECT_EQ(a[i].created.count(), b[i].created.count()) << "record " << i;
    EXPECT_EQ(a[i].delivered.count(), b[i].delivered.count()) << "record " << i;
    EXPECT_EQ(a[i].harq_transmissions, b[i].harq_transmissions) << "record " << i;
  }
  EXPECT_EQ(plain.simulator().events_fired(), sharded.events_fired());
  EXPECT_EQ(plain.packets_delivered(), sharded.packets_delivered());
}

TEST(ShardedEngineTest, ZeroCouplingMatchesIndependentSystems) {
  // With intercell_load_coupling == 0 the shards are provably independent:
  // an N-cell engine must equal N standalone E2eSystems seeded from the
  // same SplitMix64 stream.
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/11);
  cfg.num_cells = 3;
  cfg.intercell_load_coupling = 0.0;

  ShardedEngine eng(cfg, ShardedOptions{2});
  for (int c = 0; c < 3; ++c) eng.send_uplink_at(offset_of(c, 0, c), c, 0);
  eng.run_until(kPeriod * 10);

  for (int c = 0; c < 3; ++c) {
    StackConfig solo = cfg;
    solo.num_cells = 1;
    solo.seed = cell_seed(cfg.seed, c);
    E2eSystem sys(solo);
    sys.send_uplink_at(offset_of(c, 0, c), 0);
    sys.run_until(kPeriod * 10);
    const auto& a = sys.records();
    const auto& b = eng.cell(c).system().records();
    ASSERT_EQ(a.size(), b.size()) << "cell " << c;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].ok, b[i].ok) << "cell " << c;
      EXPECT_EQ(a[i].delivered.count(), b[i].delivered.count()) << "cell " << c;
    }
  }
}

TEST(ShardedEngineTest, CellSeedsFollowTheReplicationStream) {
  EXPECT_EQ(77u, cell_seed(77, 0));  // cell 0 keeps the root: E2eSystem parity
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(replication_seed(77, static_cast<std::uint64_t>(i)), cell_seed(77, i));
  }
}

TEST(ShardedEngineTest, RejectsInjectionBehindTheFrontier) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/3);
  cfg.num_cells = 2;
  cfg.intercell_load_coupling = 0.01;
  ShardedEngine eng(cfg, ShardedOptions{1});
  eng.run_until(Nanos{5'000'000});
  EXPECT_THROW(eng.send_uplink_at(Nanos{1'000'000}, 0, 0), std::invalid_argument);
  EXPECT_THROW(eng.send_uplink_at(Nanos{10'000'000}, 7, 0), std::out_of_range);
  eng.send_uplink_at(Nanos{10'000'000}, 1, 0);  // at the frontier or later: fine
}

TEST(ShardedEngineTest, TraceLanesExportOneProcessPerCell) {
  StackConfig cfg = StackConfig::testbed_grant_free(/*seed=*/9);
  cfg.num_cells = 2;
  cfg.trace.enabled = true;
  cfg.trace.spans = true;
  ShardedEngine eng(cfg, ShardedOptions{1});
  for (int c = 0; c < 2; ++c) eng.send_uplink_at(Nanos{c * 100'000}, c, 0);
  eng.run_until(kPeriod * 10);

  const std::vector<TraceLane> lanes = eng.trace_lanes();
  ASSERT_EQ(2u, lanes.size());
  EXPECT_EQ("cell 0", lanes[0].name);
  EXPECT_EQ("cell 1", lanes[1].name);
  EXPECT_FALSE(lanes[0].spans.empty());
  EXPECT_FALSE(lanes[1].spans.empty());

  const std::string doc = chrome_trace_json(lanes);
  EXPECT_NE(std::string::npos, doc.find("\"name\":\"cell 0\""));
  EXPECT_NE(std::string::npos, doc.find("\"name\":\"cell 1\""));
  EXPECT_NE(std::string::npos, doc.find("\"pid\":1"));
}
