#pragma once
// Fixed-size worker pool for fanning independent jobs across cores.
//
// The Monte-Carlo harness (sim/runner.hpp) submits one job per replication;
// workers drain a FIFO queue. The pool deliberately has no futures or
// per-job synchronisation — callers write results into pre-sized storage
// indexed by replication and `wait_idle()` once, which keeps the fan-out
// overhead negligible next to a single E2eSystem run.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace u5g {

class ThreadPool {
 public:
  /// Spin up `threads` workers (>= 1).
  explicit ThreadPool(int threads) {
    if (threads < 1) threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a job. Jobs must not submit further jobs and then destroy the
  /// pool from inside the pool (the usual fork-join discipline).
  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lk(m_);
      jobs_.push_back(std::move(job));
    }
    cv_job_.notify_one();
  }

  /// Block until the queue is empty and every worker is idle. If any job
  /// threw, rethrows the first captured exception (remaining jobs still ran).
  void wait_idle() {
    std::unique_lock<std::mutex> lk(m_);
    cv_idle_.wait(lk, [this] { return jobs_.empty() && in_flight_ == 0; });
    if (first_error_) {
      std::exception_ptr e = std::exchange(first_error_, nullptr);
      lk.unlock();
      std::rethrow_exception(e);
    }
  }

  /// Hardware concurrency with a sane floor of 1.
  static int hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_job_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ and drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
        ++in_flight_;
      }
      try {
        job();
      } catch (...) {
        std::lock_guard<std::mutex> lk(m_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(m_);
        --in_flight_;
        if (jobs_.empty() && in_flight_ == 0) cv_idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  std::mutex m_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace u5g
