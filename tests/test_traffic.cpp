// Tests for the traffic generators (src/app).

#include <gtest/gtest.h>

#include <vector>

#include "app/traffic.hpp"
#include "common/stats.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

TEST(UniformInPatternTest, OneArrivalPerPeriodInsideIt) {
  Simulator sim;
  UniformInPattern src{2_ms, Rng{5}};
  std::vector<Nanos> arrivals;
  std::vector<int> seqs;
  src.start(sim, 50, [&](Nanos now, int seq) {
    arrivals.push_back(now);
    seqs.push_back(seq);
  });
  sim.run_until();
  ASSERT_EQ(arrivals.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], i);
    // Arrival i lies within period i.
    EXPECT_GE(arrivals[static_cast<std::size_t>(i)], 2_ms * i);
    EXPECT_LT(arrivals[static_cast<std::size_t>(i)], 2_ms * (i + 1));
  }
}

TEST(UniformInPatternTest, OffsetsAreSpread) {
  Simulator sim;
  UniformInPattern src{1_ms, Rng{6}};
  RunningStats offsets;
  src.start(sim, 500, [&](Nanos now, int seq) {
    offsets.add((now - 1_ms * seq).us());
  });
  sim.run_until();
  // Uniform over [0, 1000) µs: mean ~500, std ~289.
  EXPECT_NEAR(offsets.mean(), 500.0, 50.0);
  EXPECT_NEAR(offsets.stddev(), 289.0, 40.0);
}

TEST(PeriodicTrafficTest, ExactGrid) {
  Simulator sim;
  PeriodicTraffic src{500_us, 100_us};
  std::vector<Nanos> arrivals;
  src.start(sim, 5, [&](Nanos now, int) { arrivals.push_back(now); });
  sim.run_until();
  ASSERT_EQ(arrivals.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(arrivals[static_cast<std::size_t>(i)], 100_us + 500_us * i);
  }
}

TEST(PoissonTrafficTest, MeanInterarrival) {
  Simulator sim;
  PoissonTraffic src{1_ms, Rng{7}};
  std::vector<Nanos> arrivals;
  src.start(sim, 2000, [&](Nanos now, int) { arrivals.push_back(now); });
  sim.run_until();
  ASSERT_EQ(arrivals.size(), 2000u);
  RunningStats gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.add((arrivals[i] - arrivals[i - 1]).us());
  }
  EXPECT_NEAR(gaps.mean(), 1000.0, 60.0);
  // Exponential: std ~ mean.
  EXPECT_NEAR(gaps.stddev(), 1000.0, 120.0);
}

TEST(TrafficTest, StopsAfterCount) {
  Simulator sim;
  PoissonTraffic src{10_us, Rng{8}};
  int n = 0;
  src.start(sim, 7, [&](Nanos, int) { ++n; });
  sim.run_until();
  EXPECT_EQ(n, 7);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace u5g
