#pragma once
// The feasibility-query service: Table 1's verdict as a long-running,
// cache-backed query engine.
//
// Layering (DESIGN §11):
//   1. **Analytic fast path** — `analyze_worst_case` over the duplex
//      pattern, memoized in an LRU keyed on the pattern's *value identity*
//      (direction map + granularity, never the pointer), the same way the
//      TBS table memoizes `prbs_needed`. Warm queries are a lock, a hash
//      and a map probe; answers are bit-identical to offline
//      `evaluate_config` because they are produced by the same code, once.
//   2. **Sim-tail fallback** — stochastic quantiles the closed form cannot
//      bound come from fixed-seed E2eSystem replications fanned over the
//      PR-1 runner, merged in replication order (bitwise thread-count
//      independent), cached in an LRU keyed on
//      `StackConfig::canonical_words()` + mode + replication plan. The
//      cache stores the merged *sample set*, so one sim run answers any
//      (deadline, quantile) follow-up for the same stack.
//   3. **Batch + async APIs** — whole sweeps submit as one `QueryBatch`
//      (one pool job per query, results in request order); single queries
//      can complete through a `std::future` or a callback.
//
// Thread safety: all public methods may be called concurrently. The caches
// sit behind one mutex; compute runs outside the lock, so two racing misses
// on the same key at worst compute the identical answer twice.
//
// Determinism contract: answers are pure functions of the query value.
// Cache hits return the stored answer verbatim; evictions only ever cost a
// recomputation of the same pure function. tests/test_serve.cpp pins all of
// this (bit-identity vs offline, hit == miss, 1/2/8-thread tails, eviction
// invariance).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hashing.hpp"
#include "common/lru.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/feasibility.hpp"
#include "serve/query.hpp"

namespace u5g {

class FeasibilityService {
 public:
  struct Options {
    std::size_t analytic_cache_capacity = 1 << 16;  ///< worst-case results
    std::size_t tail_cache_capacity = 512;          ///< merged sim sample sets
    /// Workers for batch/async completion (0 = hardware concurrency). The
    /// pool spins up lazily on the first batch/async call; purely synchronous
    /// use never starts a thread.
    int threads = 0;
    /// Replication fan-out for a *synchronous* query's sim tail (0 =
    /// hardware concurrency). Batch/async jobs always run their replications
    /// inline — the batch is already parallel — which the runner contract
    /// makes bitwise-identical to any other thread count.
    int sim_threads = 0;
  };

  struct Stats {
    std::uint64_t queries = 0;          ///< total queries answered
    std::uint64_t analytic_hits = 0;
    std::uint64_t analytic_misses = 0;
    std::uint64_t tail_hits = 0;
    std::uint64_t tail_misses = 0;
    std::uint64_t evictions = 0;        ///< both caches
    [[nodiscard]] double analytic_hit_rate() const {
      const std::uint64_t t = analytic_hits + analytic_misses;
      return t == 0 ? 0.0 : static_cast<double>(analytic_hits) / static_cast<double>(t);
    }
  };

  FeasibilityService() : FeasibilityService(Options{}) {}
  explicit FeasibilityService(Options opt);
  ~FeasibilityService();
  FeasibilityService(const FeasibilityService&) = delete;
  FeasibilityService& operator=(const FeasibilityService&) = delete;

  // -- Query APIs ------------------------------------------------------------

  /// Answer one query synchronously. Sim tails fan their replications over
  /// `Options::sim_threads` workers.
  [[nodiscard]] FeasibilityVerdict query(const FeasibilityQuery& q);

  /// Answer one query on the service pool; completion via std::future.
  [[nodiscard]] std::future<FeasibilityVerdict> query_async(FeasibilityQuery q);

  /// Answer a whole sweep: one pool job per query, verdicts returned in
  /// request order (batch[i] -> result[i]).
  [[nodiscard]] std::vector<FeasibilityVerdict> query_batch(const QueryBatch& batch);

  /// Batch with callback completion: `done` runs on a pool worker once every
  /// verdict is in, receiving them in request order.
  void query_batch_async(QueryBatch batch,
                         std::function<void(std::vector<FeasibilityVerdict>)> done);

  // -- Compatibility surface for the offline wrappers ------------------------

  /// Memoized analytic worst case for one (pattern, mode, model) — the fast
  /// path without verdict assembly. Bit-identical to `analyze_worst_case`.
  [[nodiscard]] WorstCaseResult worst_case(const DuplexConfig& cfg, AccessMode mode,
                                           const LatencyModelParams& p = {},
                                           int grid_per_symbol = 4);

  /// One Table 1 column through the service (what `evaluate_config` wraps):
  /// all three access modes against `deadline`, cells in the historical
  /// GrantBasedUl, GrantFreeUl, Downlink order.
  [[nodiscard]] FeasibilityColumn evaluate_column(const DuplexConfig& cfg, Nanos deadline,
                                                  const LatencyModelParams& p = {});

  [[nodiscard]] Stats stats() const;

  /// Process-wide instance behind the thin offline wrappers
  /// (`evaluate_config`, `build_table1`, `compute_budget`). Lazy; never
  /// starts threads unless someone uses its batch/async APIs.
  static FeasibilityService& shared();

 private:
  /// Merged fixed-seed replication output — the tail cache value. Stored
  /// once per (stack, mode, plan); quantile/deadline are applied per query.
  struct TailSamples {
    SampleSet latency_us;     ///< delivered one-way latencies, merge order
    std::size_t offered = 0;  ///< replications x packets
  };

  [[nodiscard]] FeasibilityVerdict answer(const FeasibilityQuery& q, int sim_threads);
  [[nodiscard]] TailSamples run_tail(const SimTailSpec& spec, AccessMode mode, int sim_threads);
  [[nodiscard]] ThreadPool& pool();

  Options opt_;
  mutable std::mutex mu_;  ///< guards caches_, stats_
  LruCache<CanonicalWords, WorstCaseResult, CanonicalWordsHash> analytic_;
  LruCache<CanonicalWords, TailSamples, CanonicalWordsHash> tail_;
  std::uint64_t queries_ = 0;
  std::mutex pool_mu_;  ///< guards lazy pool_ creation
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace u5g
