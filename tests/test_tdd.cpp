// Unit tests for src/tdd: Common Configuration validation and direction
// maps, Slot Format table, Mini-Slot, FDD, and the render helpers.

#include <gtest/gtest.h>

#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"
#include "tdd/slot_format.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// Standard periods

TEST(TddPeriodTest, StandardSet) {
  const auto periods = standard_tdd_periods();
  ASSERT_EQ(periods.size(), 8u);
  EXPECT_EQ(periods[0], 500_us);
  EXPECT_EQ(periods[1], Nanos{625'000});
  EXPECT_EQ(periods.back(), 10_ms);
}

TEST(TddPeriodTest, ValidityDependsOnNumerology) {
  EXPECT_TRUE(is_valid_tdd_period(500_us, kMu1));   // 1 slot
  EXPECT_TRUE(is_valid_tdd_period(500_us, kMu2));   // 2 slots
  EXPECT_FALSE(is_valid_tdd_period(500_us, kMu0));  // half a slot: invalid
  EXPECT_FALSE(is_valid_tdd_period(Nanos{625'000}, kMu2));  // 2.5 slots
  EXPECT_TRUE(is_valid_tdd_period(Nanos{625'000}, kMu3));   // 5 slots
  EXPECT_FALSE(is_valid_tdd_period(Nanos{750'000}, kMu2));  // not in the set
}

// ---------------------------------------------------------------------------
// Common Configuration validation

TEST(TddCommonConfigTest, RejectsNonStandardPeriod) {
  EXPECT_THROW((TddCommonConfig{kMu2, TddPattern{Nanos{300'000}, 1, 0, 0, 0}}),
               std::invalid_argument);
}

TEST(TddCommonConfigTest, RejectsOverflowingPattern) {
  // 0.5 ms at µ2 = 2 slots; 2 DL + 1 UL does not fit.
  EXPECT_THROW((TddCommonConfig{kMu2, TddPattern{500_us, 2, 0, 0, 1}}), std::invalid_argument);
  // Mixed slot needs its own slot on top of D and U.
  EXPECT_THROW((TddCommonConfig{kMu2, TddPattern{500_us, 1, 4, 4, 1}}), std::invalid_argument);
}

TEST(TddCommonConfigTest, RejectsMixedSlotWithoutGuard) {
  // 14 DL+UL symbols leave no guard symbol (§2: guard is mandatory).
  EXPECT_THROW((TddCommonConfig{kMu2, TddPattern{500_us, 1, 7, 7, 0}}), std::invalid_argument);
}

TEST(TddCommonConfigTest, RejectsNegativeAndOversizeFields) {
  EXPECT_THROW((TddCommonConfig{kMu2, TddPattern{500_us, -1, 0, 0, 1}}), std::invalid_argument);
  EXPECT_THROW((TddCommonConfig{kMu2, TddPattern{500_us, 0, 14, 0, 1}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The paper's configurations

TEST(TddCommonConfigTest, DuMap) {
  const TddCommonConfig c = TddCommonConfig::du(kMu2);
  EXPECT_EQ(c.period_slots(), 2);
  EXPECT_EQ(c.render_period(), "DDDDDDDDDDDDDD|UUUUUUUUUUUUUU");
  EXPECT_EQ(c.name(), "TDD-Common(DU)");
  EXPECT_EQ(c.guard_symbols(), 0);
}

TEST(TddCommonConfigTest, DmMap) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);
  EXPECT_EQ(c.render_period(), "DDDDDDDDDDDDDD|DDDD--UUUUUUUU");
  EXPECT_EQ(c.guard_symbols(), 2);
  // Slot 1 is the mixed slot: DL head, guard, UL tail.
  EXPECT_TRUE(c.dl_capable(1, 0));
  EXPECT_TRUE(c.dl_capable(1, 3));
  EXPECT_FALSE(c.dl_capable(1, 4));
  EXPECT_FALSE(c.ul_capable(1, 5));
  EXPECT_TRUE(c.ul_capable(1, 6));
  EXPECT_TRUE(c.ul_capable(1, 13));
}

TEST(TddCommonConfigTest, MuMap) {
  const TddCommonConfig c = TddCommonConfig::mu(kMu2);
  EXPECT_EQ(c.render_period(), "DDDD--UUUUUUUU|UUUUUUUUUUUUUU");
}

TEST(TddCommonConfigTest, DdduMap) {
  const TddCommonConfig c = TddCommonConfig::dddu(kMu1);
  EXPECT_EQ(c.period_slots(), 4);
  EXPECT_EQ(c.period(), 2_ms);
  EXPECT_EQ(c.name(), "TDD-Common(DDDU)");
  for (int s : {0, 1, 2}) {
    EXPECT_TRUE(c.dl_capable(s, 0)) << s;
    EXPECT_FALSE(c.ul_capable(s, 13)) << s;
  }
  EXPECT_TRUE(c.ul_capable(3, 0));
  EXPECT_FALSE(c.dl_capable(3, 0));
}

TEST(TddCommonConfigTest, MapIsPeriodic) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);
  for (int sym = 0; sym < kSymbolsPerSlot; ++sym) {
    for (SlotIndex s : {SlotIndex{0}, SlotIndex{1}}) {
      EXPECT_EQ(c.dl_capable(s, sym), c.dl_capable(s + 2 * 1000, sym));
      EXPECT_EQ(c.ul_capable(s, sym), c.ul_capable(s + 2 * 1000, sym));
      // Negative slots too (analysis can look behind t=0).
      EXPECT_EQ(c.dl_capable(s, sym), c.dl_capable(s - 2 * 1000, sym));
    }
  }
}

TEST(TddCommonConfigTest, SlotHasQueries) {
  const TddCommonConfig c = TddCommonConfig::dm(kMu2);
  EXPECT_TRUE(c.slot_has_dl(0));
  EXPECT_FALSE(c.slot_has_ul(0));
  EXPECT_TRUE(c.slot_has_dl(1));  // mixed slot has both
  EXPECT_TRUE(c.slot_has_ul(1));
}

TEST(TddCommonConfigTest, TwoPatternConfig) {
  // DDDU + DU at µ1: total 2 ms + 1 ms = 3 ms, 6 slots.
  const TddCommonConfig c{kMu1, TddPattern{2_ms, 3, 0, 0, 1},
                          TddPattern{1_ms, 1, 0, 0, 1}};
  EXPECT_EQ(c.period_slots(), 6);
  EXPECT_EQ(c.period(), 3_ms);
  // Pattern 2 slots: slot 4 = D, slot 5 = U.
  EXPECT_TRUE(c.dl_capable(4, 0));
  EXPECT_TRUE(c.ul_capable(5, 0));
  EXPECT_EQ(c.name(), "TDD-Common(DDDU+DU)");
}

TEST(TddCommonConfigTest, MinimalPatternsNeedMu2) {
  // DU needs two slots in 0.5 ms -> impossible at µ1.
  EXPECT_THROW(TddCommonConfig::du(kMu1), std::invalid_argument);
}

TEST(TddCommonConfigTest, FlexibleSlotsInLongPattern) {
  // 2 ms at µ2 = 8 slots: 2 D + mixed + 1 U leaves 4 flexible (guard) slots.
  const TddCommonConfig c{kMu2, TddPattern{2_ms, 2, 4, 4, 1}};
  EXPECT_TRUE(c.dl_capable(0, 0));
  EXPECT_TRUE(c.dl_capable(2, 0));       // partial DL symbols
  EXPECT_FALSE(c.dl_capable(2, 4));
  EXPECT_TRUE(c.ul_capable(6, 13));      // partial UL symbols in slot before U
  EXPECT_FALSE(c.ul_capable(4, 7));      // interior flexible slot: neither
  EXPECT_FALSE(c.dl_capable(4, 7));
  EXPECT_TRUE(c.ul_capable(7, 0));
}

// ---------------------------------------------------------------------------
// Slot formats

TEST(SlotFormatTest, TableBasics) {
  ASSERT_EQ(slot_format_table().size(), 46u);
  EXPECT_EQ(slot_format(0).render(), "DDDDDDDDDDDDDD");
  EXPECT_EQ(slot_format(1).render(), "UUUUUUUUUUUUUU");
  EXPECT_EQ(slot_format(2).render(), "FFFFFFFFFFFFFF");
  EXPECT_EQ(slot_format(28).render(), "DDDDDDDDDDDDFU");
  EXPECT_THROW(slot_format(46), std::out_of_range);
  EXPECT_THROW(slot_format(-1), std::out_of_range);
}

class SlotFormatIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(SlotFormatIndexTest, SelfConsistent) {
  const SlotFormat& f = slot_format(GetParam());
  EXPECT_EQ(f.index, GetParam());
  const std::string r = f.render();
  ASSERT_EQ(r.size(), 14u);
  EXPECT_EQ(f.has_dl(), r.find('D') != std::string::npos);
  EXPECT_EQ(f.has_ul(), r.find('U') != std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(All, SlotFormatIndexTest, ::testing::Range(0, 46));

TEST(SlotFormatConfigTest, CyclicSequence) {
  const SlotFormatConfig c{kMu1, {0, 0, 28, 1}};  // D D (DDDDDDDDDDDDFU) U
  EXPECT_EQ(c.period_slots(), 4);
  EXPECT_TRUE(c.dl_capable(0, 5));
  EXPECT_TRUE(c.dl_capable(2, 0));
  EXPECT_FALSE(c.dl_capable(2, 12));  // flexible: conservative neither
  EXPECT_FALSE(c.ul_capable(2, 12));
  EXPECT_TRUE(c.ul_capable(2, 13));
  EXPECT_TRUE(c.ul_capable(3, 0));
  // Cycles, including for negative slot indices.
  EXPECT_TRUE(c.ul_capable(7, 0));
  EXPECT_TRUE(c.ul_capable(-1, 0));
  EXPECT_EQ(c.name(), "SlotFormat(0,0,28,1)");
}

TEST(SlotFormatConfigTest, EmptySequenceThrows) {
  EXPECT_THROW((SlotFormatConfig{kMu1, {}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mini-slot & FDD

TEST(MiniSlotTest, Granularity) {
  const MiniSlotConfig c{kMu2, 2};
  EXPECT_EQ(c.control_granularity_symbols(), 2);
  EXPECT_EQ(c.period_slots(), 1);
  EXPECT_TRUE(c.dl_capable(123, 7));
  EXPECT_TRUE(c.ul_capable(-5, 0));
}

TEST(MiniSlotTest, LengthValidation) {
  EXPECT_NO_THROW((MiniSlotConfig{kMu2, 2}));
  EXPECT_NO_THROW((MiniSlotConfig{kMu2, 4}));
  EXPECT_NO_THROW((MiniSlotConfig{kMu2, 7}));
  EXPECT_THROW((MiniSlotConfig{kMu2, 3}), std::invalid_argument);
  EXPECT_THROW((MiniSlotConfig{kMu2, 14}), std::invalid_argument);
}

TEST(MiniSlotTest, StandardsRecommendationFlag) {
  // §5: the standard targets mini-slot at slot durations >= 0.5 ms.
  EXPECT_TRUE(MiniSlotConfig(kMu2, 2).violates_standard_recommendation());
  EXPECT_FALSE(MiniSlotConfig(kMu1, 2).violates_standard_recommendation());
  EXPECT_FALSE(MiniSlotConfig(kMu0, 7).violates_standard_recommendation());
}

TEST(FddTest, FullDuplexEverywhere) {
  const FddConfig c{kMu2};
  EXPECT_TRUE(c.dl_capable(9, 9));
  EXPECT_TRUE(c.ul_capable(9, 9));
  EXPECT_EQ(c.render_period(), "XXXXXXXXXXXXXX");
}

TEST(FddTest, BandRestriction) {
  EXPECT_TRUE(FddConfig::allowed_in_band(*find_band("n1")));
  EXPECT_FALSE(FddConfig::allowed_in_band(band_n78()));
}

}  // namespace
}  // namespace u5g
