#pragma once
// Traffic generators for the measurement harnesses.
//
// The §7 demonstration generates packets "uniformly within the pattern" —
// `UniformInPattern` reproduces that: one packet per TDD period at a uniform
// random offset, which is what makes Fig 6's distributions sweep the whole
// protocol geometry. Periodic and Poisson generators support the example
// workloads (industrial control loops, audio frames, background load).

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace u5g {

/// Produces the arrival instants of a workload; the callback generates the
/// packet. All generators stop themselves after `count` arrivals.
class TrafficSource {
 public:
  using Emit = std::function<void(Nanos now, int seq)>;

  virtual ~TrafficSource() = default;
  virtual void start(Simulator& sim, int count, Emit emit) = 0;
};

/// One arrival per `period`, at a fresh uniform offset inside each period —
/// the paper's §7 workload.
class UniformInPattern final : public TrafficSource {
 public:
  UniformInPattern(Nanos period, Rng rng) : period_(period), rng_(rng) {}

  void start(Simulator& sim, int count, Emit emit) override {
    struct State {
      Nanos period;
      Rng rng;
      Emit emit;
      int remaining;
      int seq = 0;
    };
    auto st = std::make_shared<State>(State{period_, rng_, std::move(emit), count});
    schedule_next(sim, st, sim.now());
  }

 private:
  template <typename StatePtr>
  static void schedule_next(Simulator& sim, StatePtr st, Nanos period_start) {
    if (st->remaining <= 0) return;
    const Nanos offset{static_cast<std::int64_t>(
        st->rng.uniform() * static_cast<double>(st->period.count()))};
    sim.schedule_at(period_start + offset, [&sim, st, period_start] {
      st->emit(sim.now(), st->seq++);
      --st->remaining;
      schedule_next(sim, st, period_start + st->period);
    });
  }

  Nanos period_;
  Rng rng_;
};

/// Fixed-rate periodic arrivals (industrial control loops).
class PeriodicTraffic final : public TrafficSource {
 public:
  PeriodicTraffic(Nanos period, Nanos phase = Nanos::zero()) : period_(period), phase_(phase) {}

  void start(Simulator& sim, int count, Emit emit) override {
    auto shared_emit = std::make_shared<Emit>(std::move(emit));
    for (int i = 0; i < count; ++i) {
      const int seq = i;
      sim.schedule_at(phase_ + period_ * i,
                      [&sim, shared_emit, seq] { (*shared_emit)(sim.now(), seq); });
    }
  }

 private:
  Nanos period_;
  Nanos phase_;
};

// ---------------------------------------------------------------------------
// Aggregate (batched) arrival processes.
//
// The city-scale population engine (mac/ue_population.hpp) does not schedule
// one event per background packet — at 10^6 UEs that alone would dwarf the
// tracked-UE simulation. Instead it draws the *count* of arrivals per slot
// from the aggregate process and distributes the count over the UE rows.
// Poisson superposition makes this exact: the sum of n independent Poisson
// streams of rate λ is one Poisson stream of rate nλ, so one batched draw
// per slot is statistically identical to n per-UE draws (test_population.cpp
// pins the equivalence against the explicit per-UE path).

/// One Poisson(mean) count. Knuth's product method below `kExactMeanCap`
/// (exact, O(mean) uniforms); above it a moment-matched rounded normal
/// (the error is < the Monte-Carlo noise of any run that large, and the
/// draw stays O(1) so a 100k-UE cell costs the same as a 1k-UE cell).
[[nodiscard]] inline int poisson_count(Rng& rng, double mean) {
  constexpr double kExactMeanCap = 64.0;
  if (mean <= 0.0) return 0;
  if (mean <= kExactMeanCap) {
    const double limit = std::exp(-mean);
    int k = 0;
    double prod = rng.uniform();
    while (prod > limit) {
      ++k;
      prod *= rng.uniform();
    }
    return k;
  }
  const double draw = rng.normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

/// Deterministic periodic aggregate: `n` sources with period `period_slots`,
/// source i phased at i % period_slots. Returns how many fire in slot `slot`
/// (every source exactly once per period; phases are spread round-robin).
[[nodiscard]] constexpr int periodic_count(std::uint64_t slot, int n, int period_slots) {
  if (n <= 0 || period_slots <= 0) return 0;
  const int phase = static_cast<int>(slot % static_cast<std::uint64_t>(period_slots));
  return n / period_slots + (phase < n % period_slots ? 1 : 0);
}

/// Poisson arrivals with the given mean inter-arrival time.
class PoissonTraffic final : public TrafficSource {
 public:
  PoissonTraffic(Nanos mean_interarrival, Rng rng) : mean_(mean_interarrival), rng_(rng) {}

  void start(Simulator& sim, int count, Emit emit) override {
    struct State {
      Nanos mean;
      Rng rng;
      Emit emit;
      int remaining;
      int seq = 0;
    };
    auto st = std::make_shared<State>(State{mean_, rng_, std::move(emit), count});
    arm(sim, st);
  }

 private:
  template <typename StatePtr>
  static void arm(Simulator& sim, StatePtr st) {
    if (st->remaining <= 0) return;
    const Nanos gap{static_cast<std::int64_t>(
                        st->rng.exponential(static_cast<double>(st->mean.count()))) +
                    1};
    sim.schedule_after(gap, [&sim, st] {
      st->emit(sim.now(), st->seq++);
      --st->remaining;
      arm(sim, st);
    });
  }

  Nanos mean_;
  Rng rng_;
};

}  // namespace u5g
