// Unit tests for the open-addressing FlatHashMap: random operation hammer
// against std::unordered_map, backward-shift deletion on forced collision
// chains (an identity hash makes probe sequences deterministic), growth,
// and steady-state allocation behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "common/flat_map.hpp"
#include "sim/runner.hpp"

namespace u5g {
namespace {

TEST(FlatHashMapTest, RandomOpsMatchUnorderedMapReference) {
  FlatHashMap<std::uint64_t, std::uint32_t> fm;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::uint64_t state = 0xBADC0FFEEULL;
  for (int op = 0; op < 20000; ++op) {
    state = splitmix64(state);
    // A small key universe forces heavy insert/erase/re-insert churn.
    const std::uint64_t key = state % 257;
    state = splitmix64(state);
    switch (state % 4) {
      case 0:
      case 1: {  // insert / overwrite
        const auto val = static_cast<std::uint32_t>(state >> 32);
        fm[key] = val;
        ref[key] = val;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(ref.erase(key) == 1, fm.erase(key)) << "op " << op;
        break;
      }
      default: {  // lookup
        const auto* v = fm.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(it != ref.end(), v != nullptr) << "op " << op;
        if (v != nullptr) EXPECT_EQ(it->second, *v);
        break;
      }
    }
    ASSERT_EQ(ref.size(), fm.size());
  }
  // Final sweep: every reference entry is reachable with the right value.
  for (const auto& [k, v] : ref) {
    const auto* got = fm.find(k);
    ASSERT_NE(nullptr, got) << "key " << k;
    EXPECT_EQ(v, *got);
  }
}

/// Identity hash: keys chosen by the test collide exactly where it wants.
struct IdentityHash {
  [[nodiscard]] std::size_t operator()(std::uint64_t x) const {
    return static_cast<std::size_t>(x);
  }
};

TEST(FlatHashMapTest, BackwardShiftDeletionKeepsDisplacedEntriesReachable) {
  // All keys share home slot (k % 16 == 3 at the minimum capacity of 16),
  // forming one probe chain. Erasing from the front/middle must shift the
  // displaced tail back so every survivor is still found — the failure mode
  // tombstone-free deletion exists to prevent.
  FlatHashMap<std::uint64_t, int, IdentityHash> fm;
  const std::uint64_t keys[] = {3, 19, 35, 51, 67};
  for (int i = 0; i < 5; ++i) fm[keys[i]] = i;

  EXPECT_TRUE(fm.erase(3));  // head of the chain
  for (int i = 1; i < 5; ++i) {
    const int* v = fm.find(keys[i]);
    ASSERT_NE(nullptr, v) << "key " << keys[i] << " lost after head erase";
    EXPECT_EQ(i, *v);
  }
  EXPECT_TRUE(fm.erase(35));  // middle
  EXPECT_EQ(nullptr, fm.find(35));
  for (const std::uint64_t k : {19u, 51u, 67u}) {
    EXPECT_NE(nullptr, fm.find(k)) << "key " << k << " lost after middle erase";
  }
  EXPECT_EQ(3u, fm.size());
}

TEST(FlatHashMapTest, WrapAroundProbeChainSurvivesErase) {
  // Chain homed near the top of the 16-slot table wraps past index 0.
  FlatHashMap<std::uint64_t, int, IdentityHash> fm;
  const std::uint64_t keys[] = {14, 30, 46, 62};  // all home at slot 14
  for (int i = 0; i < 4; ++i) fm[keys[i]] = i;    // occupy 14, 15, 0, 1
  EXPECT_TRUE(fm.erase(30));
  for (const std::uint64_t k : {14u, 46u, 62u}) {
    ASSERT_NE(nullptr, fm.find(k)) << "key " << k << " lost across the wrap";
  }
}

TEST(FlatHashMapTest, GrowthRehashPreservesAllEntries) {
  FlatHashMap<std::uint64_t, std::uint64_t> fm;
  for (std::uint64_t k = 0; k < 1000; ++k) fm[k * 1'000'003ULL] = k;
  ASSERT_EQ(1000u, fm.size());
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const auto* v = fm.find(k * 1'000'003ULL);
    ASSERT_NE(nullptr, v) << "key " << k;
    EXPECT_EQ(k, *v);
  }
}

TEST(FlatHashMapTest, ClearEmptiesButRetainsCapacityForReuse) {
  FlatHashMap<std::uint64_t, int> fm;
  for (std::uint64_t k = 0; k < 100; ++k) fm[k] = 1;
  fm.clear();
  EXPECT_TRUE(fm.empty());
  EXPECT_EQ(nullptr, fm.find(5));
  EXPECT_FALSE(fm.erase(5));
  for (std::uint64_t k = 0; k < 100; ++k) fm[k] = 2;
  EXPECT_EQ(100u, fm.size());
  EXPECT_EQ(2, *fm.find(42));
}

}  // namespace
}  // namespace u5g
