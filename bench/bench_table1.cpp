// Reproduces Table 1: "Evaluation of the 0.5 ms latency requirement for all
// minimal TDD Common Configurations" — plus the Fig 1-style slot maps of each
// candidate configuration (machine-readable rendering of the schematic).
//
// Expected (paper):
//                    DU   DM   MU   Mini-slot  FDD
//   Grant-Based UL   x    x    x    ok         ok
//   Grant-Free  UL   ok   ok   ok   ok         ok
//   DL               x    ok   x    ok         ok

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/feasibility.hpp"
#include "serve/feasibility_service.hpp"
#include "tdd/mini_slot.hpp"

using namespace u5g;

namespace {

const char* paper_verdict(AccessMode m, const std::string& name) {
  const bool du = name.find("(DU)") != std::string::npos;
  const bool dm = name.find("(DM)") != std::string::npos;
  const bool mu = name.find("(MU)") != std::string::npos;
  const bool tdd_min = du || dm || mu;
  switch (m) {
    case AccessMode::GrantBasedUl: return tdd_min ? "x" : "ok";
    case AccessMode::GrantFreeUl: return "ok";
    case AccessMode::Downlink: return (du || mu) ? "x" : "ok";
  }
  return "?";
}

/// Fixed-layout JSON export: every number is printed through fmt3, so the
/// file is byte-stable for a given build — the golden-file regression test
/// (tests/golden/) diffs it bit for bit.
bool write_json(const std::string& path, const Table1& table, bool all_match) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"bench\": \"bench_table1\",\n  \"deadline_ms\": %s,\n",
               fmt3(kUrllcOneWayDeadline.ms()).c_str());
  std::fprintf(f, "  \"columns\": [\n");
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    const FeasibilityColumn& col = table.columns[i];
    std::fprintf(f, "    {\"config\": \"%s\", \"slot_map\": \"%s\", \"standards_caveat\": %s,\n",
                 col.config_name.c_str(), col.period_render.c_str(),
                 col.standards_caveat ? "true" : "false");
    std::fprintf(f, "     \"cells\": [\n");
    for (std::size_t j = 0; j < col.cells.size(); ++j) {
      const FeasibilityCell& c = col.cells[j];
      std::fprintf(f,
                   "      {\"mode\": \"%s\", \"worst_ms\": %s, \"best_ms\": %s, "
                   "\"verdict\": \"%s\", \"paper\": \"%s\"}%s\n",
                   to_string(c.mode), fmt3(c.worst_case.worst.ms()).c_str(),
                   fmt3(c.worst_case.best.ms()).c_str(), c.meets_deadline ? "ok" : "x",
                   paper_verdict(c.mode, col.config_name),
                   j + 1 < col.cells.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < table.columns.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"matches_paper\": %s\n}\n", all_match ? "true" : "false");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv);
  std::printf("== Table 1: 0.5 ms one-way deadline, minimal configurations (u=2, 0.25 ms slots) ==\n\n");

  // The whole table as one QueryBatch against the feasibility-query service:
  // 5 candidate configurations x 3 access modes, answers in request order.
  // Bit-identical to the historical build_table1() because the service runs
  // the same analytic worst-case search once and memoizes it.
  std::vector<std::shared_ptr<const DuplexConfig>> cfgs;
  for (auto& c : table1_configs()) cfgs.emplace_back(std::move(c));
  constexpr AccessMode kModes[] = {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl,
                                   AccessMode::Downlink};
  QueryBatch batch;
  for (const auto& cfg : cfgs) {
    for (AccessMode m : kModes) batch.push_back(FeasibilityQuery::analytic(cfg, m));
  }
  FeasibilityService& service = FeasibilityService::shared();
  const std::vector<FeasibilityVerdict> verdicts = service.query_batch(batch);

  Table1 table;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    FeasibilityColumn col;
    col.config_name = cfgs[i]->name();
    col.period_render = cfgs[i]->render_period();
    for (std::size_t j = 0; j < 3; ++j) {
      const FeasibilityVerdict& v = verdicts[3 * i + j];
      col.cells.push_back({v.mode, v.worst_case, v.deadline, v.meets_deadline});
    }
    if (const auto* ms = dynamic_cast<const MiniSlotConfig*>(cfgs[i].get())) {
      col.standards_caveat = ms->violates_standard_recommendation();
    }
    table.columns.push_back(std::move(col));
  }

  std::printf("-- Fig 1-style slot maps (one char per symbol, '|' separates slots) --\n");
  for (const FeasibilityColumn& col : table.columns) {
    std::printf("  %-22s %s%s\n", col.config_name.c_str(), col.period_render.c_str(),
                col.standards_caveat ? "   [!] below the standard's recommended mini-slot target"
                                     : "");
  }
  std::printf("\n");

  TextTable out({"access mode", "config", "worst [ms]", "best [ms]", "verdict", "paper"});
  bool all_match = true;
  for (AccessMode m : {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
    for (const FeasibilityColumn& col : table.columns) {
      const FeasibilityCell& c = col.cell(m);
      const char* verdict = c.meets_deadline ? "ok" : "x";
      const char* paper = paper_verdict(m, col.config_name);
      all_match = all_match && std::string{verdict} == paper;
      out.add_row({to_string(m), col.config_name, fmt3(c.worst_case.worst.ms()),
                   fmt3(c.worst_case.best.ms()), verdict, paper});
    }
  }
  std::printf("%s\n", out.render().c_str());
  std::printf("reproduction %s the paper's Table 1\n", all_match ? "MATCHES" : "DIFFERS FROM");
  const FeasibilityService::Stats stats = service.stats();
  std::printf("service: %llu queries, analytic cache %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.analytic_hits),
              static_cast<unsigned long long>(stats.analytic_misses));
  if (opt.json && !write_json(*opt.json, table, all_match)) {
    std::fprintf(stderr, "bench_table1: cannot write %s\n", opt.json->c_str());
    return 1;
  }
  return all_match ? 0 : 1;
}
