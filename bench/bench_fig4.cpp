// Reproduces Fig 4: worst-case latency timelines for the DM configuration
// (µ2: [D][M], 0.5 ms period) under grant-free UL, grant-based UL, and DL.
//
// Expected (paper): grant-free UL and DL achieve 0.5 ms in the worst case;
// grant-based UL violates the requirement (the SR+grant handshake pushes the
// data into the next TDD period).

#include <cstdio>

#include "core/latency_model.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;

namespace {

void show(const DuplexConfig& cfg, AccessMode mode, const LatencyModelParams& p) {
  const WorstCaseResult wc = analyze_worst_case(cfg, mode, p);
  std::printf("-- %s --\n", to_string(mode));
  std::printf("   worst-case latency: %.3f ms (arrival offset %.3f ms into the period), "
              "best %.3f ms\n",
              wc.worst.ms(), wc.worst_arrival_offset.ms(), wc.best.ms());

  // The timeline attaining the worst case, step by step (the figure's bars).
  const Nanos base = cfg.period() * 8;
  const Timeline tl = trace_transmission(cfg, mode, base + wc.worst_arrival_offset, p);
  std::printf("%s", tl.render().c_str());
  std::printf("   verdict vs 0.5 ms: %s\n\n", wc.worst <= kUrllcOneWayDeadline ? "MEETS" : "VIOLATES");
}

}  // namespace

int main() {
  std::printf("== Fig 4: worst-case latency for the DM configuration (u=2, 0.25 ms slots) ==\n\n");
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  std::printf("slot map: %s\n\n", dm.render_period().c_str());

  LatencyModelParams p;  // idealised protocol-only analysis, 2-symbol data tx
  show(dm, AccessMode::GrantFreeUl, p);
  show(dm, AccessMode::GrantBasedUl, p);
  show(dm, AccessMode::Downlink, p);

  // Verdicts must match the paper: grant-free ok, DL ok, grant-based not.
  const bool ok =
      analyze_worst_case(dm, AccessMode::GrantFreeUl, p).worst <= kUrllcOneWayDeadline &&
      analyze_worst_case(dm, AccessMode::Downlink, p).worst <= kUrllcOneWayDeadline &&
      analyze_worst_case(dm, AccessMode::GrantBasedUl, p).worst > kUrllcOneWayDeadline;
  std::printf("reproduction %s the paper's Fig 4 conclusions\n", ok ? "MATCHES" : "DIFFERS FROM");
  return ok ? 0 : 1;
}
