#pragma once
// Feasibility-query request/response types — the one public entry point for
// "can deadline D be met with pattern P / access mode M / bus B / jitter J?".
//
// The paper's core artifact is the Table 1 verdict: worst-case one-way
// latency of a stack configuration versus the URLLC deadline. Offline that
// verdict lived in three ad-hoc call patterns (bench_table1's table loop,
// design_explorer's design-space sweep, bench_budget's platform check); the
// serve layer replaces all three with one request/response surface that a
// planning tool can hit millions of times:
//
//   * the **analytic fast path** answers from latency_model's closed-form
//     worst-case search, memoized in an LRU keyed on the duplex pattern's
//     value identity — bit-identical to offline `evaluate_config`;
//   * the optional **sim tail** answers what the analytic model cannot
//     bound — stochastic latency quantiles under OS jitter, radio-bus
//     spikes, loss — from cached fixed-seed E2eSystem replications keyed on
//     `StackConfig::canonical_key()`.
//
// A query is a value; batches are vectors of values. Completion is sync
// (`query`), future-based (`query_async`) or callback-based
// (`query_batch_async`) — see serve/feasibility_service.hpp.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/latency_model.hpp"
#include "core/reliability.hpp"
#include "core/stack_config.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// Fallback request: bound the stochastic tail by simulation. Fixed-seed
/// replications make the answer a pure function of the spec — cacheable and
/// bitwise-reproducible at any service/sim thread count.
struct SimTailSpec {
  /// Full stack for the replications. Its `duplex` is authoritative for the
  /// sim; `grant_free` is overridden to match the query's access mode.
  StackConfig config;
  int replications = 4;  ///< independent fixed-seed E2eSystem runs
  int packets = 128;     ///< packets per replication (one direction)
  /// Latency quantile that must meet the deadline (URLLC reads: 0.99999).
  double quantile = 0.999;
};

/// One feasibility question.
struct FeasibilityQuery {
  std::shared_ptr<const DuplexConfig> duplex;  ///< pattern P (required)
  AccessMode mode = AccessMode::GrantFreeUl;   ///< access mode M
  Nanos deadline = kUrllcOneWayDeadline;       ///< deadline D
  LatencyModelParams model{};                  ///< analytic knobs (tx symbols, proc, radio)
  int grid_per_symbol = 4;                     ///< worst-case arrival grid density
  std::optional<SimTailSpec> tail{};           ///< stochastic-tail fallback request

  /// Pure analytic query (the Table 1 cell).
  static FeasibilityQuery analytic(std::shared_ptr<const DuplexConfig> duplex, AccessMode mode,
                                   Nanos deadline = kUrllcOneWayDeadline,
                                   const LatencyModelParams& model = {}) {
    FeasibilityQuery q;
    q.duplex = std::move(duplex);
    q.mode = mode;
    q.deadline = deadline;
    q.model = model;
    return q;
  }

  /// Analytic + sim-tail query over a full stack configuration; the query's
  /// duplex handle is taken from the config.
  static FeasibilityQuery with_tail(StackConfig config, AccessMode mode,
                                    Nanos deadline = kUrllcOneWayDeadline,
                                    int replications = 4, int packets = 128,
                                    double quantile = 0.999) {
    FeasibilityQuery q;
    q.duplex = config.duplex;
    q.mode = mode;
    q.deadline = deadline;
    q.tail = SimTailSpec{std::move(config), replications, packets, quantile};
    return q;
  }
};

/// A whole sweep in one call (design_explorer submits its full design space
/// as one batch; answers come back in request order).
using QueryBatch = std::vector<FeasibilityQuery>;

/// Stochastic-tail portion of a verdict.
struct SimTailResult {
  double quantile = 0.0;            ///< the quantile that was evaluated
  double quantile_latency_us = 0.0; ///< latency at that quantile (µs)
  ReliabilityReport reliability;    ///< delivered-within-deadline figures
  bool meets_deadline = false;      ///< quantile latency <= deadline
};

/// The answer to one FeasibilityQuery.
struct FeasibilityVerdict {
  AccessMode mode{};
  Nanos deadline{};
  WorstCaseResult worst_case;        ///< analytic fast path (bit-identical to
                                     ///< offline analyze_worst_case)
  bool analytic_meets = false;       ///< worst_case.worst <= deadline
  std::optional<SimTailResult> tail; ///< present iff the query asked for it
  /// Overall verdict: the analytic bound holds and, when a tail was
  /// requested, the simulated quantile also meets the deadline.
  bool meets_deadline = false;
  // Diagnostics (not part of the answer's identity): where it came from.
  bool analytic_cache_hit = false;
  bool tail_cache_hit = false;
};

}  // namespace u5g
