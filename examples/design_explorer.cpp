// Example: design-space exploration — §5 end to end. Enumerates every
// candidate configuration across the FR1 numerologies, filters by the URLLC
// deadline, and annotates each survivor with the paper's practical caveats
// (private-5G band availability, mini-slot standards recommendation, the
// per-slot processing/radio budget).

#include <cstdio>

#include "core/design_space.hpp"
#include "serve/feasibility_service.hpp"

using namespace u5g;

int main() {
  std::printf("== URLLC design-space explorer (FR1, 0.5 ms one-way deadline) ==\n\n");

  DesignSpaceOptions opt;
  const auto all = explore_design_space(opt);
  std::printf("evaluated %zu design points\n\n", all.size());

  std::printf("   %-22s %3s %-15s %9s %9s %6s %9s %7s\n", "config", "mu", "UL mode", "UL worst",
              "DL worst", "meets", "private5G", "caveat");
  for (const DesignPoint& pt : all) {
    std::printf("   %-22s %3d %-15s %8.3f %8.3f  %6s %9s %7s\n", pt.config_name.c_str(), pt.mu,
                to_string(pt.ul_mode), pt.worst_ul.ms(), pt.worst_dl.ms(),
                pt.meets_deadline ? "yes" : "no", pt.available_to_private_5g ? "yes" : "NO",
                pt.standards_caveat ? "[!]" : "");
  }

  const auto viable = viable_designs(opt);
  std::printf("\n%zu viable design points. Of these:\n", viable.size());
  int private_ok = 0;
  int clean = 0;
  for (const DesignPoint& pt : viable) {
    private_ok += pt.available_to_private_5g ? 1 : 0;
    clean += (pt.available_to_private_5g && !pt.standards_caveat &&
              pt.ul_mode == AccessMode::GrantFreeUl)
                 ? 1
                 : 0;
  }
  std::printf("  - usable in private 5G (TDD bands only): %d\n", private_ok);
  std::printf("  - clean (private-5G-capable, no standards caveat, grant-free): %d\n", clean);
  std::printf("\nthe paper's conclusion, reproduced: \"the set of possible system designs is\n"
              "quite limited, and some might not be practical once additional factors are\n"
              "considered.\"\n");

  // Both sweeps above went through the feasibility-query service as one
  // QueryBatch each; the second (viable_designs) re-asked the same questions
  // and was answered from the analytic cache.
  const auto stats = FeasibilityService::shared().stats();
  std::printf("\nservice: %llu queries, analytic cache hit rate %.0f%%\n",
              static_cast<unsigned long long>(stats.queries),
              100.0 * stats.analytic_hit_rate());
  return 0;
}
