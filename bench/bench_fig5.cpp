// Reproduces Fig 5: "OS and hardware-imposed delay of submitted samples to
// the radio" — submission latency vs number of samples for USB 2.0 and
// USB 3.0, with the OS-scheduling spikes the paper highlights (§6).
//
// Expected shape: linear baseline (~165-400 us for USB2, flatter for USB3
// across 2000-20000 samples) with sporadic spikes of tens to hundreds of µs.

// Pass an output directory as argv[1] to additionally dump the series as
// CSV (fig5.csv) for plotting.

#include <cstdio>
#include <optional>
#include <string>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "radio/bus.hpp"

using namespace u5g;

namespace {

constexpr int kSubmissionsPerPoint = 1000;

std::optional<CsvWriter> g_csv;

struct Point {
  std::int64_t n_samples;
  double base_us;
  double mean_us;
  double p99_us;
  double max_us;
  int spikes;  ///< submissions >25 us above baseline
};

Point measure(BusModel& bus, std::int64_t n) {
  SampleSet lat;
  const double base = bus.deterministic_latency(n).us();
  int spikes = 0;
  for (int i = 0; i < kSubmissionsPerPoint; ++i) {
    const double v = bus.submit_latency(n).us();
    lat.add(v);
    if (v > base + 25.0) ++spikes;
  }
  return {n, base, lat.mean(), lat.quantile(0.99), lat.max(), spikes};
}

void sweep(const char* title, BusParams params, std::uint64_t seed) {
  BusModel bus(params, Rng{seed});
  std::printf("-- %s --\n", title);
  std::printf("   %9s %10s %10s %10s %10s %8s\n", "samples", "base[us]", "mean[us]", "p99[us]",
              "max[us]", "spikes");
  for (std::int64_t n = 2000; n <= 20000; n += 1500) {
    const Point p = measure(bus, n);
    std::printf("   %9lld %10.1f %10.1f %10.1f %10.1f %7d\n", static_cast<long long>(p.n_samples),
                p.base_us, p.mean_us, p.p99_us, p.max_us, p.spikes);
    if (g_csv) {
      g_csv->row({title, std::to_string(p.n_samples), std::to_string(p.base_us),
                  std::to_string(p.mean_us), std::to_string(p.p99_us),
                  std::to_string(p.max_us)});
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig 5: radio sample-submission latency vs buffer size ==\n\n");
  if (argc > 1) {
    g_csv.emplace(std::string{argv[1]} + "/fig5.csv",
                  std::vector<std::string>{"bus", "samples", "base_us", "mean_us", "p99_us",
                                           "max_us"});
  }
  sweep("USB 2.0", BusParams::usb2(), 11);
  sweep("USB 3.0", BusParams::usb3(), 12);
  sweep("USB 2.0 + real-time kernel (the §6 mitigation)", BusParams::usb2().with_rt_kernel(), 13);

  // Shape checks: linearity and ordering.
  BusModel usb2(BusParams::usb2(), Rng{21});
  BusModel usb3(BusParams::usb3(), Rng{22});
  const double u2_lo = usb2.deterministic_latency(2000).us();
  const double u2_hi = usb2.deterministic_latency(20000).us();
  const double u3_hi = usb3.deterministic_latency(20000).us();
  const bool ok = u2_hi > u2_lo && u3_hi < u2_hi && u2_lo > 100.0 && u2_hi < 500.0;
  std::printf("shape: USB2 grows %.0f -> %.0f us over 2k->20k samples; USB3 at 20k = %.0f us\n",
              u2_lo, u2_hi, u3_hi);
  std::printf("reproduction %s Fig 5's ranges\n", ok ? "MATCHES" : "DIFFERS FROM");
  return ok ? 0 : 1;
}
