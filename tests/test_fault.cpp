// Fault-injection subsystem (src/fault/): the Gilbert–Elliott channel
// process, scenario windows, injector determinism, every fault kind's
// end-to-end effect, the HARQ loss-recovery regressions this PR fixes, and
// the loss-accounting invariant that makes silent packet loss impossible:
//
//   offered == delivered + harq_dropped + stranded + upf_dropped
//
// under one-packet-per-TB traffic, for UL grant-based, UL grant-free and DL.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/e2e_system.hpp"
#include "core/reliability.hpp"
#include "fault/gilbert_elliott.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "mac/harq.hpp"
#include "sim/sharded.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

// ===========================================================================
// Gilbert–Elliott channel process

TEST(GilbertElliottTest, IidIsTheDegenerateSingleStateCase) {
  const auto p = GilbertElliott::Params::iid(0.1);
  EXPECT_DOUBLE_EQ(p.stationary_bad(), 0.0);
  EXPECT_DOUBLE_EQ(p.average_loss(), 0.1);

  GilbertElliott ge(p);
  Rng rng(7);
  int losses = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) losses += ge.transmit_lost(rng) ? 1 : 0;
  EXPECT_FALSE(ge.in_bad_state());  // p_good_to_bad == 0: never leaves Good
  EXPECT_NEAR(static_cast<double>(losses) / kDraws, 0.1, 0.01);
}

TEST(GilbertElliottTest, MatchedAverageHitsTargetAndClusters) {
  const double avg = 0.05;
  const auto p = GilbertElliott::Params::matched_average(avg, 8.0, 0.75);
  EXPECT_NEAR(p.average_loss(), avg, 1e-12);
  EXPECT_NEAR(p.stationary_bad(), avg / 0.75, 1e-12);
  EXPECT_NEAR(p.p_bad_to_good, 1.0 / 8.0, 1e-12);

  // Empirical: long-run loss matches the target, and losses cluster — the
  // conditional loss probability after a loss is far above the average.
  GilbertElliott ge(p);
  Rng rng(11);
  constexpr int kDraws = 400'000;
  int losses = 0, pairs = 0, after_loss = 0;
  bool prev = false;
  for (int i = 0; i < kDraws; ++i) {
    const bool lost = ge.transmit_lost(rng);
    losses += lost ? 1 : 0;
    if (prev) {
      ++pairs;
      after_loss += lost ? 1 : 0;
    }
    prev = lost;
  }
  EXPECT_NEAR(static_cast<double>(losses) / kDraws, avg, 0.005);
  const double cond = static_cast<double>(after_loss) / pairs;
  EXPECT_GT(cond, 5.0 * avg);  // bursty: ~0.66 vs 0.05 average
}

TEST(GilbertElliottTest, InvalidParametersThrow) {
  EXPECT_THROW(GilbertElliott({1.5, 0.5, 0.1, 0.1}), std::invalid_argument);
  EXPECT_THROW(GilbertElliott({0.1, -0.1, 0.1, 0.1}), std::invalid_argument);
  EXPECT_THROW(GilbertElliott::Params::matched_average(0.8, 8.0, 0.75), std::invalid_argument);
  EXPECT_NO_THROW(GilbertElliott(GilbertElliott::Params::matched_average(0.05)));
}

// ===========================================================================
// Fault windows + injector

TEST(FaultWindowTest, OncePeriodicAlwaysSemantics) {
  const auto always = FaultWindow::always();
  EXPECT_TRUE(always.active_at(Nanos{0}));
  EXPECT_TRUE(always.active_at(Nanos{1'000'000'000}));

  const auto once = FaultWindow::once(1_ms, 2_ms);
  EXPECT_FALSE(once.active_at(Nanos{999'999}));
  EXPECT_TRUE(once.active_at(1_ms));                 // start inclusive
  EXPECT_TRUE(once.active_at(Nanos{2'999'999}));
  EXPECT_FALSE(once.active_at(3_ms));                // end exclusive
  EXPECT_FALSE(once.active_at(10_ms));               // one-shot: never again

  const auto periodic = FaultWindow::periodic(1_ms, 2_ms, 10_ms);
  EXPECT_TRUE(periodic.active_at(1_ms));
  EXPECT_FALSE(periodic.active_at(4_ms));
  EXPECT_TRUE(periodic.active_at(11_ms));            // next period
  EXPECT_TRUE(periodic.active_at(Nanos{12'999'999}));
  EXPECT_FALSE(periodic.active_at(13_ms));
}

TEST(FaultInjectorTest, DeterministicAcrossInstances) {
  const std::vector<FaultScenario> sc = {
      FaultScenario::burst_loss(GilbertElliott::Params::matched_average(0.1)),
      FaultScenario::upf_outage(FaultWindow::always(), 0.3, Nanos{10'000})};
  FaultInjector a(sc, 42), b(sc, 42), c(sc, 43);
  bool diverged_from_c = false;
  for (int i = 0; i < 2'000; ++i) {
    const Nanos now{i * 1'000};
    const bool la = a.channel_lost(now);
    EXPECT_EQ(la, b.channel_lost(now));
    if (la != c.channel_lost(now)) diverged_from_c = true;
    EXPECT_EQ(a.upf_dropped(now), b.upf_dropped(now));
    (void)c.upf_dropped(now);
  }
  EXPECT_TRUE(diverged_from_c);  // a different seed gives a different stream
  EXPECT_EQ(a.counters().burst_losses, b.counters().burst_losses);
  EXPECT_EQ(a.counters().upf_drops, b.counters().upf_drops);
  EXPECT_GT(a.counters().burst_losses, 0u);
}

TEST(FaultInjectorTest, WindowGatesEveryEffect) {
  const std::vector<FaultScenario> sc = {
      FaultScenario::burst_loss(GilbertElliott::Params::iid(1.0), FaultWindow::once(1_ms, 1_ms)),
      FaultScenario::radio_bus_stall(FaultWindow::once(5_ms, 1_ms), Nanos{70'000})};
  FaultInjector inj(sc, 1);
  EXPECT_TRUE(inj.models_channel_loss());
  EXPECT_FALSE(inj.channel_lost(Nanos{0}));       // before the window
  EXPECT_TRUE(inj.channel_lost(Nanos{1'500'000}));  // inside: certain loss
  EXPECT_FALSE(inj.channel_lost(Nanos{3'000'000}));
  EXPECT_EQ(inj.bus_stall(Nanos{0}), Nanos::zero());
  EXPECT_EQ(inj.bus_stall(Nanos{5'500'000}), Nanos{70'000});
  EXPECT_EQ(inj.counters().burst_losses, 1u);
  EXPECT_EQ(inj.counters().bus_stalls, 1u);
}

// ===========================================================================
// End-to-end: determinism contract

namespace {

std::vector<double> ul_latencies(const StackConfig& cfg, int packets) {
  StackConfig c = cfg;
  E2eSystem sys(std::move(c));
  for (int i = 0; i < packets; ++i) sys.send_uplink_at(2_ms * i + Nanos{100'000});
  sys.run_until(2_ms * (packets + 50));
  return sys.latency_samples_us(Direction::Uplink).samples();
}

}  // namespace

TEST(FaultE2eTest, InactiveScenariosLeaveRunsBitIdentical) {
  // Scenarios whose windows never activate within the run must not perturb
  // a single draw of the main simulation stream — the same contract that
  // keeps existing goldens byte-identical with the subsystem compiled in.
  StackConfig base = StackConfig::testbed_grant_free(3);
  base.channel_loss = 0.1;

  StackConfig with_idle_faults = base;
  with_idle_faults.faults = {
      FaultScenario::os_jitter_storm(FaultWindow::once(10'000_ms, 1_ms)),
      FaultScenario::radio_bus_stall(FaultWindow::once(10'000_ms, 1_ms), Nanos{50'000}),
      FaultScenario::upf_outage(FaultWindow::once(10'000_ms, 1_ms), 0.5, 1_ms)};

  EXPECT_EQ(ul_latencies(base, 40), ul_latencies(with_idle_faults, 40));
}

TEST(FaultE2eTest, IidScenarioMatchesChannelLossDistributionally) {
  // The degenerate GE scenario replaces `channel_loss` with its own stream:
  // not bitwise the same run, but the same loss process — delivered
  // fractions must agree closely at identical seeds and load.
  StackConfig iid_knob = StackConfig::testbed_grant_free(5);
  iid_knob.channel_loss = 0.2;
  StackConfig iid_scenario = StackConfig::testbed_grant_free(5);
  iid_scenario.faults = {FaultScenario::burst_loss(GilbertElliott::Params::iid(0.2))};

  const auto a = ul_latencies(iid_knob, 400);
  const auto b = ul_latencies(iid_scenario, 400);
  EXPECT_NEAR(static_cast<double>(a.size()) / 400.0, static_cast<double>(b.size()) / 400.0,
              0.05);
}

// ===========================================================================
// End-to-end: each fault kind has its advertised effect

TEST(FaultE2eTest, StormDelaysEveryTraversalMonotonically) {
  StackConfig base = StackConfig::testbed_grant_free(9);
  StackConfig stormy = base;
  stormy.faults = {FaultScenario::os_jitter_storm(FaultWindow::always())};

  constexpr int kPackets = 30;
  StackConfig b2 = base;
  E2eSystem sys_a(std::move(b2));
  E2eSystem sys_b(std::move(stormy));
  for (int i = 0; i < kPackets; ++i) {
    sys_a.send_uplink_at(2_ms * i);
    sys_b.send_uplink_at(2_ms * i);
  }
  sys_a.run_until(2_ms * (kPackets + 50));
  sys_b.run_until(2_ms * (kPackets + 50));

  ASSERT_EQ(sys_a.records().size(), sys_b.records().size());
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < sys_a.records().size(); ++i) {
    ASSERT_TRUE(sys_a.records()[i].ok);
    ASSERT_TRUE(sys_b.records()[i].ok);
    // Storm jitter only ever postpones: per-packet latency is >= baseline.
    EXPECT_GE(sys_b.records()[i].latency(), sys_a.records()[i].latency());
    sum_a += sys_a.records()[i].latency().us();
    sum_b += sys_b.records()[i].latency().us();
  }
  EXPECT_GT(sum_b, sum_a);
  EXPECT_GT(sys_b.fault_counters().storm_spikes, 0u);
  EXPECT_EQ(sys_a.fault_counters().storm_spikes, 0u);
}

TEST(FaultE2eTest, BusStallAddsAtLeastTheStallPerPacket) {
  StackConfig base = StackConfig::testbed_grant_free(13);
  StackConfig stalled = base;
  const Nanos stall{100'000};
  stalled.faults = {FaultScenario::radio_bus_stall(FaultWindow::always(), stall)};

  constexpr int kPackets = 20;
  StackConfig b2 = base;
  E2eSystem sys_a(std::move(b2));
  E2eSystem sys_b(std::move(stalled));
  for (int i = 0; i < kPackets; ++i) {
    sys_a.send_uplink_at(2_ms * i);
    sys_b.send_uplink_at(2_ms * i);
  }
  sys_a.run_until(2_ms * (kPackets + 50));
  sys_b.run_until(2_ms * (kPackets + 50));

  for (std::size_t i = 0; i < sys_a.records().size(); ++i) {
    ASSERT_TRUE(sys_b.records()[i].ok);
    // The UL path crosses the radio bus at least once (gNB RX delivery).
    EXPECT_GE(sys_b.records()[i].latency(), sys_a.records()[i].latency() + stall);
  }
  EXPECT_GT(sys_b.fault_counters().bus_stalls, 0u);
}

TEST(FaultE2eTest, UpfOutageDropsAreAccounted) {
  for (const Direction dir : {Direction::Uplink, Direction::Downlink}) {
    StackConfig cfg = StackConfig::testbed_grant_based(17);
    cfg.faults = {FaultScenario::upf_outage(FaultWindow::always(), 1.0, Nanos::zero())};
    E2eSystem sys(std::move(cfg));
    constexpr int kPackets = 10;
    for (int i = 0; i < kPackets; ++i) {
      if (dir == Direction::Uplink) {
        sys.send_uplink_at(2_ms * i);
      } else {
        sys.send_downlink_at(2_ms * i);
      }
    }
    sys.run_until(2_ms * (kPackets + 50));
    EXPECT_EQ(sys.packets_delivered(), 0u);
    EXPECT_EQ(sys.fault_counters().upf_drops, static_cast<std::uint64_t>(kPackets));
    EXPECT_EQ(sys.records().size() - sys.packets_delivered() - sys.harq_dropped_tbs() -
                  sys.stranded_drops(),
              sys.fault_counters().upf_drops);
  }
}

// ===========================================================================
// Regressions: HARQ loss recovery

namespace {

/// A duplex whose UL capability ends after `last_ul_slot`: the starved
/// scheduler scenario in which a lost TB has no retransmission opportunity.
class UlEraDuplex final : public DuplexConfig {
 public:
  UlEraDuplex(TddCommonConfig inner, SlotIndex last_ul_slot)
      : DuplexConfig(inner.numerology()), inner_(std::move(inner)), last_(last_ul_slot) {}
  [[nodiscard]] bool dl_capable(SlotIndex s, int sym) const override {
    return inner_.dl_capable(s, sym);
  }
  [[nodiscard]] bool ul_capable(SlotIndex s, int sym) const override {
    return s <= last_ && inner_.ul_capable(s, sym);
  }
  [[nodiscard]] int period_slots() const override { return inner_.period_slots(); }
  [[nodiscard]] std::string name() const override { return "ul-era"; }

 private:
  TddCommonConfig inner_;
  SlotIndex last_;
};

}  // namespace

TEST(FaultRegressionTest, StrandedUlRetransmissionIsCountedNotLeaked) {
  // One UL packet, grant-based. Every in-era transmission is killed by a
  // certain-loss window; the UL era then ends, so no retransmission
  // opportunity ever appears. Before the fix the TB sat in the retx queue
  // forever — uncounted, silently inflating reliability. Now it must be
  // re-armed up to the cap and then dropped as `stranded`.
  StackConfig cfg = StackConfig::testbed_grant_based(21);
  cfg.duplex = std::make_shared<UlEraDuplex>(TddCommonConfig::dddu(kMu1), /*last_ul_slot=*/11);
  cfg.harq_max_tx = 8;  // budget never exhausts inside the era
  cfg.faults = {FaultScenario::burst_loss(GilbertElliott::Params::iid(1.0),
                                          FaultWindow::once(Nanos::zero(), 6_ms))};
  E2eSystem sys(std::move(cfg));
  sys.send_uplink_at(Nanos{100'000});
  sys.run_until(100_ms);  // past the re-arm cap (64 slots = 32 ms)

  EXPECT_EQ(sys.packets_delivered(), 0u);
  EXPECT_EQ(sys.stranded_drops(), 1u);
  EXPECT_EQ(sys.harq_dropped_tbs(), 0u);
  EXPECT_FALSE(sys.records()[0].ok);
  EXPECT_EQ(sys.records().size(),
            sys.packets_delivered() + sys.harq_dropped_tbs() + sys.stranded_drops() +
                sys.fault_counters().upf_drops);
}

TEST(FaultRegressionTest, ReLostTbKeepsOldestFirstRecoveryOrder) {
  // Two UL packets whose TBs are both lost repeatedly inside a certain-loss
  // burst window. A re-lost TB must re-enter the retransmission queue at the
  // *front* (ordered by first transmission): when the burst ends, packet 0
  // recovers before packet 1. The old push_back let the newer TB overtake.
  StackConfig cfg = StackConfig::testbed_grant_free(23);
  cfg.payload_bytes = 128;  // one SDU per 256-byte TB: packets keep their own TB
  cfg.harq_max_tx = 100;
  cfg.faults = {FaultScenario::burst_loss(GilbertElliott::Params::iid(1.0),
                                          FaultWindow::once(Nanos::zero(), 6_ms))};
  E2eSystem sys(std::move(cfg));
  sys.send_uplink_at(Nanos{50'000});
  sys.send_uplink_at(Nanos{600'000});
  sys.run_until(60_ms);

  ASSERT_TRUE(sys.records()[0].ok);
  ASSERT_TRUE(sys.records()[1].ok);
  EXPECT_GT(sys.records()[0].harq_transmissions, 1);
  EXPECT_LT(sys.records()[0].delivered, sys.records()[1].delivered);
}

// ===========================================================================
// Loss accounting invariant

namespace {

void expect_accounting_invariant(StackConfig cfg, Direction dir, int packets) {
  // One SDU per 256-byte TB, so TB drops == packet drops. 236 payload bytes
  // + 7 (SDAP + PDCP header + integrity tag) fill the TB past the point
  // where the MAC could pull a leading segment of the *next* SDU — a dropped
  // TB then never takes part of another packet with it.
  cfg.payload_bytes = 236;
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < packets; ++i) {
    if (dir == Direction::Uplink) {
      sys.send_uplink_at(2_ms * i + Nanos{100'000});
    } else {
      sys.send_downlink_at(2_ms * i + Nanos{100'000});
    }
  }
  // Generous drain margin: under heavy HARQ churn the scheduler's monotonic
  // window booking pushes recovery grants far past the last send time.
  sys.run_until(2_ms * packets + 2000_ms);

  std::uint64_t delivered = 0;
  for (const PacketRecord& r : sys.records()) delivered += r.ok ? 1 : 0;
  EXPECT_EQ(delivered, sys.packets_delivered());
  EXPECT_EQ(static_cast<std::uint64_t>(packets),
            delivered + sys.harq_dropped_tbs() + sys.stranded_drops() +
                sys.fault_counters().upf_drops)
      << "silent packet loss: some offered packet ended in no bucket";
  EXPECT_EQ(sys.stranded_drops(), 0u);  // nothing starves in these configs
  EXPECT_GT(sys.harq_dropped_tbs(), 0u);  // loss 0.35, budget 2: drops happen
}

}  // namespace

TEST(FaultAccountingTest, UplinkGrantBasedUnderLoss) {
  StackConfig cfg = StackConfig::testbed_grant_based(31);
  cfg.channel_loss = 0.35;
  cfg.harq_max_tx = 2;
  expect_accounting_invariant(std::move(cfg), Direction::Uplink, 80);
}

TEST(FaultAccountingTest, UplinkGrantFreeUnderLoss) {
  StackConfig cfg = StackConfig::testbed_grant_free(32);
  cfg.channel_loss = 0.35;
  cfg.harq_max_tx = 2;
  expect_accounting_invariant(std::move(cfg), Direction::Uplink, 80);
}

TEST(FaultAccountingTest, DownlinkUnderLoss) {
  StackConfig cfg = StackConfig::testbed_grant_based(33);
  cfg.channel_loss = 0.35;
  cfg.harq_max_tx = 2;
  expect_accounting_invariant(std::move(cfg), Direction::Downlink, 80);
}

TEST(FaultAccountingTest, BurstLossScenarioUnderLoss) {
  StackConfig cfg = StackConfig::testbed_grant_free(34);
  cfg.harq_max_tx = 2;
  cfg.faults = {
      FaultScenario::burst_loss(GilbertElliott::Params::matched_average(0.2, 6.0, 0.8))};
  expect_accounting_invariant(std::move(cfg), Direction::Uplink, 80);
}

// ===========================================================================
// Metrics mirror + sharded determinism with faults enabled

TEST(FaultMetricsTest, FaultCountersMirrorIntoRegistry) {
  StackConfig cfg = StackConfig::testbed_grant_free(41);
  cfg.trace.enabled = true;
  cfg.trace.metrics = true;
  cfg.faults = {
      FaultScenario::burst_loss(GilbertElliott::Params::matched_average(0.3, 4.0, 0.9)),
      FaultScenario::os_jitter_storm(FaultWindow::always()),
      FaultScenario::radio_bus_stall(FaultWindow::always(), Nanos{30'000})};
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < 60; ++i) sys.send_uplink_at(2_ms * i);
  sys.run_until(250_ms);

  const FaultInjector::Counters fc = sys.fault_counters();
  EXPECT_GT(fc.burst_losses, 0u);
  EXPECT_GT(fc.storm_spikes, 0u);
  EXPECT_GT(fc.bus_stalls, 0u);
  EXPECT_EQ(sys.metrics().counter("fault.burst_losses").value(), fc.burst_losses);
  EXPECT_EQ(sys.metrics().counter("fault.os_jitter_storms").value(), fc.storm_spikes);
  EXPECT_EQ(sys.metrics().counter("fault.radio_bus_stalls").value(), fc.bus_stalls);
  EXPECT_EQ(sys.metrics().counter("harq.dropped_tbs").value(), sys.harq_dropped_tbs());
  EXPECT_EQ(sys.metrics().counter("harq.stranded_drops").value(), sys.stranded_drops());
}

TEST(FaultShardedTest, MergedResultsIdenticalAcrossWorkerCountsWithFaults) {
  constexpr Nanos kPeriod{2'000'000};
  constexpr int kPackets = 4;
  std::string baseline_metrics;
  std::vector<double> baseline_samples;

  for (const int threads : {1, 2, 8}) {
    StackConfig cfg = StackConfig::testbed_grant_free(77);
    cfg.num_cells = 4;
    cfg.num_ues = 1;
    cfg.intercell_load_coupling = 0.05;
    cfg.trace.enabled = true;
    cfg.trace.metrics = true;
    cfg.faults = {
        FaultScenario::burst_loss(GilbertElliott::Params::matched_average(0.1, 6.0, 0.8)),
        FaultScenario::os_jitter_storm(FaultWindow::periodic(2_ms, 1_ms, 8_ms)),
        FaultScenario::radio_bus_stall(FaultWindow::periodic(3_ms, 1_ms, 8_ms), Nanos{40'000}),
        FaultScenario::upf_outage(FaultWindow::periodic(5_ms, 1_ms, 16_ms), 0.3, Nanos{50'000})};

    ShardedEngine eng(cfg, ShardedOptions{threads});
    for (int c = 0; c < eng.num_cells(); ++c) {
      for (int p = 0; p < kPackets; ++p) {
        eng.send_uplink_at(kPeriod * (2 * p) + Nanos{100'000} * (c + 1), c, 0);
        eng.send_downlink_at(kPeriod * (2 * p + 1) + Nanos{70'000} * (c + 1), c, 0);
      }
    }
    eng.run_until(kPeriod * (2 * kPackets + 10));

    ASSERT_GT(eng.packets_delivered(), 0u);
    const std::string metrics = eng.merged_metrics().to_json();
    SampleSet merged = eng.latency_samples_us(Direction::Uplink);
    merged.merge(eng.latency_samples_us(Direction::Downlink));
    if (threads == 1) {
      baseline_metrics = metrics;
      baseline_samples = merged.samples();
      continue;
    }
    EXPECT_EQ(metrics, baseline_metrics) << "thread count " << threads;
    EXPECT_EQ(merged.samples(), baseline_samples) << "thread count " << threads;
  }
}

// ===========================================================================
// Satellite: effective_bler contract

TEST(HarqModelTest, EffectiveBlerGeometricDecay) {
  EXPECT_DOUBLE_EQ(effective_bler(0.1, 1), 0.1);
  EXPECT_DOUBLE_EQ(effective_bler(0.1, 2), 0.01);
  EXPECT_DOUBLE_EQ(effective_bler(0.1, 3, 0.5), 0.025);
  EXPECT_DOUBLE_EQ(effective_bler(0.0, 4), 0.0);
  // Factor 1.0: no combining gain — BLER stays flat across attempts.
  EXPECT_DOUBLE_EQ(effective_bler(0.3, 5, 1.0), 0.3);
}
