#pragma once
// Discrete-event simulation kernel.
//
// The whole 5G system model runs on one simulated clock. Components schedule
// callbacks at absolute times; the kernel pops them in (time, sequence) order
// so same-timestamp events run in scheduling order (deterministic replay).
//
// Hot-path design: the priority queue holds only (time, seq, slot) triples;
// the callable lives in a slot map indexed by a recycled slot id, so a
// schedule/fire cycle touches no node-based containers. Cancellation is a
// lazy tombstone — `cancel` flips a flag in the slot and the queue entry is
// discarded when it surfaces — and `Action` keeps small closures inline, so
// steady-state schedule/cancel/fire performs zero heap allocations once the
// queue and slot vectors have reached their high-water capacity.

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/time.hpp"
#include "sim/action.hpp"

namespace u5g {

/// Handle to a scheduled event, usable to cancel it. Identifies the event by
/// its (slot, seq) pair; seq is globally unique so a handle can never
/// accidentally refer to a later event recycled into the same slot.
class EventHandle {
 public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  constexpr EventHandle(std::uint32_t slot, std::uint64_t seq) : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

/// Event-driven simulator with cancellation and run-until semantics.
class Simulator {
 public:
  using Action = u5g::Action;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Nanos when, Action action) {
    if (when < now_) throw std::invalid_argument{"Simulator: scheduling into the past"};
    const std::uint64_t seq = ++next_seq_;
    std::uint32_t idx;
    if (free_.empty()) {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    Slot& s = slots_[idx];
    s.seq = seq;
    s.cancelled = false;
    s.action = std::move(action);
    queue_.push(QueueEntry{when, seq, idx});
    ++live_;
    return EventHandle{idx, seq};
  }

  /// Schedule `action` after a relative delay.
  EventHandle schedule_after(Nanos delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns true if the event had not yet fired or
  /// been cancelled. Safe on default-constructed handles. O(1): tombstones
  /// the slot; the queue entry is skipped when it reaches the front.
  bool cancel(EventHandle h) {
    if (!h.valid() || h.slot_ >= slots_.size()) return false;
    Slot& s = slots_[h.slot_];
    if (s.seq != h.seq_ || s.cancelled) return false;
    s.cancelled = true;
    s.action.reset();  // release captured resources eagerly
    --live_;
    return true;
  }

  /// Run until the event queue drains or `until` is reached (whichever first).
  /// If `until` bounds the run, the clock is advanced to exactly `until`.
  void run_until(Nanos until = Nanos::max()) {
    while (!queue_.empty() && queue_.top().when <= until) pop_and_fire();
    if (until != Nanos::max() && now_ < until) now_ = until;
  }

  /// Fire exactly one live event; returns false if none remain.
  bool step() {
    while (!queue_.empty()) {
      if (pop_and_fire()) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] bool idle() const { return live_ == 0; }
  /// Events fired over the simulator's lifetime — an always-on kernel stat
  /// benches export into the metrics registry.
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Slot {
    std::uint64_t seq = 0;  ///< seq of the resident event; 0 = free
    bool cancelled = false;
    Action action;
  };
  struct QueueEntry {
    Nanos when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops the front entry; fires it unless tombstoned. Returns true if fired.
  bool pop_and_fire() {
    const QueueEntry e = queue_.top();
    queue_.pop();
    Slot& s = slots_[e.slot];
    // The slot is recycled only after its queue entry surfaces, so it still
    // belongs to this event here.
    const bool tombstoned = s.cancelled;
    Action action = std::move(s.action);
    s.seq = 0;
    s.cancelled = false;
    s.action.reset();
    free_.push_back(e.slot);
    if (tombstoned) return false;
    --live_;
    now_ = e.when;
    ++fired_;
    action();  // may schedule new events; the slot was already released
    return true;
  }

  Nanos now_ = Nanos::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace u5g
