// Unit tests for the struct-of-arrays per-UE MAC state pool: the word-wise
// row scans against a naive per-element reference (including sizes that are
// not multiples of the 8-flag word), reference binding into rows, and the
// idle-value reset contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mac/ue_pool.hpp"
#include "sim/runner.hpp"

namespace u5g {
namespace {

/// Naive reference for the batch scans.
std::size_t ref_count(std::span<const bool> row) {
  std::size_t c = 0;
  for (const bool b : row) c += static_cast<std::size_t>(b);
  return c;
}

std::vector<std::size_t> ref_indices(std::span<const bool> row) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i]) out.push_back(i);
  }
  return out;
}

TEST(UeMacPoolTest, WordWiseScansMatchReferenceAcrossSizesAndPatterns) {
  // Odd sizes exercise both the 8-at-a-time body and the scalar tail.
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 65u, 200u}) {
    UeMacPool pool(n);
    std::uint64_t state = 0x9E3779B97F4A7C15ULL ^ n;
    for (int round = 0; round < 32; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        state = splitmix64(state);
        pool.sr_pending(i) = (state & 3) == 0;  // ~25% density
      }
      const auto row = pool.sr_pending_row();
      EXPECT_EQ(ref_count(row), UeMacPool::count_set(row)) << "n=" << n;
      EXPECT_EQ(ref_count(row) > 0, UeMacPool::any_set(row)) << "n=" << n;
      std::vector<std::size_t> seen;
      UeMacPool::for_each_set(row, [&](std::size_t i) { seen.push_back(i); });
      EXPECT_EQ(ref_indices(row), seen) << "n=" << n;
    }
  }
}

TEST(UeMacPoolTest, ScansHandleAllSetAndAllClear) {
  UeMacPool pool(23);
  EXPECT_EQ(0u, UeMacPool::count_set(pool.sr_pending_row()));
  EXPECT_FALSE(UeMacPool::any_set(pool.sr_pending_row()));
  for (std::size_t i = 0; i < 23; ++i) pool.sr_pending(i) = true;
  EXPECT_EQ(23u, UeMacPool::count_set(pool.sr_pending_row()));
  EXPECT_TRUE(UeMacPool::any_set(pool.sr_pending_row()));
}

TEST(UeMacPoolTest, ReferencesAliasTheRows) {
  // The datapath's contract: a UeCtx binds `bool&` / `uint32_t&` into the
  // rows and mutates through them; batch scans must observe those writes.
  UeMacPool pool(8);
  bool& sr3 = pool.sr_pending(3);
  std::uint32_t& rd5 = pool.retx_depth(5);
  sr3 = true;
  rd5 = 4;
  EXPECT_TRUE(pool.sr_pending_row()[3]);
  EXPECT_EQ(1u, UeMacPool::count_set(pool.sr_pending_row()));
  std::size_t retx_ues = 0;
  std::uint32_t retx_tbs = 0;
  pool.for_each_retx([&](std::size_t i, std::uint32_t depth) {
    EXPECT_EQ(5u, i);
    ++retx_ues;
    retx_tbs += depth;
  });
  EXPECT_EQ(1u, retx_ues);
  EXPECT_EQ(4u, retx_tbs);
}

TEST(UeMacPoolTest, ResizeResetsEveryFieldToItsIdleValue) {
  UeMacPool pool(4);
  pool.sr_pending(2) = true;
  pool.cg_scheduled(1) = true;
  pool.ul_trace(0) = 42;
  pool.retx_depth(3) = 9;
  pool.resize(6);
  EXPECT_EQ(6u, pool.size());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(pool.sr_pending(i));
    EXPECT_FALSE(pool.cg_scheduled(i));
    EXPECT_FALSE(pool.ul_reorder_armed(i));
    EXPECT_FALSE(pool.dl_reorder_armed(i));
    EXPECT_EQ(-1, pool.ul_trace(i));
    EXPECT_EQ(-1, pool.dl_trace(i));
    EXPECT_EQ(0u, pool.retx_depth(i));
  }
}

}  // namespace
}  // namespace u5g
